#!/usr/bin/env python3
"""Compares two bench JSON documents and reports every difference.

The CI perf-regression gate runs each figure/table bench with `--json` and
diffs the result against the committed baseline in bench/baselines/ (see
tools/regen_bench_baselines.sh for the pinned recipe). The determinism
contract (DESIGN.md Sect. 9) makes this a byte-level question for the
*results*: series rows and registry snapshots must match exactly, for any
thread count. Wall-clock numbers are honest noise, so they are quarantined:

* `rtsmooth-bench-v1` documents — `schema`, `bench`, `options.frames`,
  `options.quick` and every `series` / `registry` entry compare exactly;
  `options.threads`, the `runner` block and the `timers` section are
  timing/execution-width facts and are skipped unless `--time-tolerance`
  asks for a bounded wall-clock comparison (relative, e.g. 0.5 = +/-50% on
  `runner.wall_us`).

* google-benchmark documents (micro benches) — compared by benchmark name
  sets only; per-iteration times are machine noise.

Usage: bench_diff.py BASELINE CURRENT [--time-tolerance FRAC]

Exits 0 when the documents match, 1 with one line per difference when they
do not, 2 on unreadable or unrecognised input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        print(f"ERROR {path}: unreadable: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(f"ERROR {path}: invalid JSON: {e}", file=sys.stderr)
        sys.exit(2)


def diff_value(diffs, where, base, cur):
    """Recursive exact comparison, one diff line per leaf mismatch."""
    if type(base) is not type(cur) and not (
            isinstance(base, (int, float)) and isinstance(cur, (int, float))):
        diffs.append(f"{where}: type {type(base).__name__} -> "
                     f"{type(cur).__name__}")
        return
    if isinstance(base, dict):
        for key in base:
            if key not in cur:
                diffs.append(f"{where}.{key}: removed")
            else:
                diff_value(diffs, f"{where}.{key}", base[key], cur[key])
        for key in cur:
            if key not in base:
                diffs.append(f"{where}.{key}: added")
    elif isinstance(base, list):
        if len(base) != len(cur):
            diffs.append(f"{where}: length {len(base)} -> {len(cur)}")
            return
        for i, (b, c) in enumerate(zip(base, cur)):
            diff_value(diffs, f"{where}[{i}]", b, c)
    elif base != cur:
        diffs.append(f"{where}: {base!r} -> {cur!r}")


def diff_rtsmooth(diffs, base, cur, tolerance):
    diff_value(diffs, "bench", base.get("bench"), cur.get("bench"))

    base_opts = dict(base.get("options", {}))
    cur_opts = dict(cur.get("options", {}))
    base_opts.pop("threads", None)  # execution width, not a result
    cur_opts.pop("threads", None)
    diff_value(diffs, "options", base_opts, cur_opts)

    diff_value(diffs, "series", base.get("series"), cur.get("series"))
    diff_value(diffs, "registry", base.get("registry"), cur.get("registry"))

    if tolerance is not None:
        base_wall = base.get("runner", {}).get("wall_us")
        cur_wall = cur.get("runner", {}).get("wall_us")
        if base_wall and cur_wall:
            ratio = cur_wall / base_wall
            if abs(ratio - 1.0) > tolerance:
                diffs.append(
                    f"runner.wall_us: {base_wall} -> {cur_wall} "
                    f"({ratio:.2f}x exceeds +/-{tolerance:.0%} tolerance)")


def diff_google_benchmark(diffs, base, cur):
    base_names = [b.get("name") for b in base.get("benchmarks", [])]
    cur_names = [b.get("name") for b in cur.get("benchmarks", [])]
    for name in base_names:
        if name not in cur_names:
            diffs.append(f"benchmarks: {name!r} removed")
    for name in cur_names:
        if name not in base_names:
            diffs.append(f"benchmarks: {name!r} added")


def kind(doc):
    if doc.get("schema") == "rtsmooth-bench-v1":
        return "rtsmooth"
    if "benchmarks" in doc and "context" in doc:
        return "google-benchmark"
    return None


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--time-tolerance", type=float, default=None, metavar="FRAC",
        help="also compare runner.wall_us within this relative tolerance "
             "(default: skip wall-clock entirely)")
    args = parser.parse_args(argv[1:])

    base, cur = load(args.baseline), load(args.current)
    base_kind, cur_kind = kind(base), kind(cur)
    if base_kind is None:
        print(f"ERROR {args.baseline}: unrecognised schema", file=sys.stderr)
        return 2
    if base_kind != cur_kind:
        print(f"ERROR: document kinds differ ({base_kind} vs {cur_kind})",
              file=sys.stderr)
        return 2

    diffs = []
    if base_kind == "rtsmooth":
        diff_rtsmooth(diffs, base, cur, args.time_tolerance)
    else:
        diff_google_benchmark(diffs, base, cur)

    if diffs:
        print(f"DIFF {args.baseline} vs {args.current}: "
              f"{len(diffs)} difference(s)")
        for d in diffs:
            print(f"  {d}")
        return 1
    print(f"MATCH {args.baseline} vs {args.current}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
