#!/usr/bin/env python3
"""Selftests for bench_diff.py (run via ctest or directly)."""

import copy
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402


def bench_doc(threads=1, wall_us=1000):
    return {
        "schema": "rtsmooth-bench-v1",
        "bench": "fig_test",
        "options": {"frames": 120, "quick": True, "threads": threads},
        "series": [{"name": "main", "header": ["a", "b"],
                    "rows": [["1", "2"]]}],
        "runner": {"tasks": 2, "threads": threads, "total_task_us": 10,
                   "max_task_us": 7, "queue_us": 1, "wall_us": wall_us},
        "registry": {"counters": {"c": 1}, "gauges": {}, "histograms": {}},
    }


class DiffTest(unittest.TestCase):
    def run_diff(self, base, cur, *extra):
        paths = []
        for doc in (base, cur):
            with tempfile.NamedTemporaryFile(
                    "w", suffix=".json", delete=False) as f:
                json.dump(doc, f)
                paths.append(f.name)
        try:
            return bench_diff.main(["bench_diff.py", *paths, *extra])
        finally:
            for p in paths:
                os.unlink(p)

    def test_identical_docs_match(self):
        self.assertEqual(self.run_diff(bench_doc(), bench_doc()), 0)

    def test_thread_count_and_wall_clock_are_quarantined(self):
        # The determinism contract: a 4-thread rerun must diff clean against
        # a serial baseline even though runner/threads/wall differ.
        self.assertEqual(
            self.run_diff(bench_doc(threads=1, wall_us=1000),
                          bench_doc(threads=4, wall_us=400)), 0)

    def test_perturbed_registry_fails(self):
        cur = bench_doc()
        cur["registry"]["counters"]["c"] = 2
        self.assertEqual(self.run_diff(bench_doc(), cur), 1)

    def test_perturbed_series_row_fails(self):
        cur = bench_doc()
        cur["series"][0]["rows"][0][1] = "999"
        self.assertEqual(self.run_diff(bench_doc(), cur), 1)

    def test_added_registry_counter_fails(self):
        cur = bench_doc()
        cur["registry"]["counters"]["new"] = 5
        self.assertEqual(self.run_diff(bench_doc(), cur), 1)

    def test_changed_options_fail(self):
        cur = bench_doc()
        cur["options"]["frames"] = 240
        self.assertEqual(self.run_diff(bench_doc(), cur), 1)

    def test_time_tolerance_gate(self):
        base = bench_doc(wall_us=1000)
        slow = bench_doc(wall_us=3000)
        self.assertEqual(self.run_diff(base, slow), 0)  # skipped by default
        self.assertEqual(
            self.run_diff(base, slow, "--time-tolerance", "0.5"), 1)
        self.assertEqual(
            self.run_diff(base, bench_doc(wall_us=1200),
                          "--time-tolerance", "0.5"), 0)

    def test_google_benchmark_name_sets(self):
        base = {"context": {}, "benchmarks": [{"name": "BM_A"},
                                              {"name": "BM_B"}]}
        same = copy.deepcopy(base)
        same["benchmarks"][0]["real_time"] = 123.4  # timing noise: ignored
        self.assertEqual(self.run_diff(base, same), 0)
        missing = {"context": {}, "benchmarks": [{"name": "BM_A"}]}
        self.assertEqual(self.run_diff(base, missing), 1)

    def test_mismatched_kinds_error(self):
        gb = {"context": {}, "benchmarks": [{"name": "BM_A"}]}
        self.assertEqual(self.run_diff(bench_doc(), gb), 2)


if __name__ == "__main__":
    unittest.main()
