// rtsmooth_stat: scrape a running rtsmoothd/soak_driver stats endpoint
// (DESIGN.md Sect. 15) over its unix socket.
//
// Default mode pretty-prints the load-bearing numbers of the
// rtsmooth-soak-v1 document — steps, throughput, loss, lateness, ingest
// health, degradation state — one block per scrape. --json and --metrics
// emit the raw documents (the same bytes the daemon published) for piping
// into files or other tools. --interval N repeats every N milliseconds,
// --count bounds the repeats, so `rtsmooth_stat --socket S --interval 1000`
// is a poor man's `watch` over a soak.
//
// --series switches to the timeline view: it scrapes /series
// (rtsmooth-series-v1) and renders per-interval deltas plus unicode
// sparklines for a selectable set of metrics (--metric NAME, repeatable;
// counters show per-slot deltas, gauges their sampled values), followed by
// the burn-rate section. Composes with --interval/--count for watching.
//
// Exit status: 0 on success, 1 when the endpoint answered but not with 200
// (e.g. 503 before the first publish), 2 on bad invocation or a socket
// error. One failed scrape in interval mode ends the run — a soak that
// stops serving is a result, not something to silently retry.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <chrono>

#include "obs/json.h"
#include "util/cli.h"

namespace {

constexpr const char* kUsage = R"(usage: rtsmooth_stat --socket PATH [options]
  --socket PATH   unix socket of the stats endpoint (required)
  --json          emit the raw rtsmooth-soak-v1 JSON document
  --metrics       emit the raw Prometheus text exposition
  --series        render the /series timeline: deltas + sparklines + burn
  --metric NAME   metric to render in --series mode (repeatable; counters
                  plot per-slot deltas, gauges their sampled values)
  --health        probe /healthz and print the answer
  --interval N    repeat every N milliseconds (0 = scrape once) [0]
  --count N       stop after N scrapes in interval mode (0 = forever) [0])";

enum class Mode { Pretty, Json, Metrics, Series, Health };

struct ScrapeResult {
  int status = 0;
  std::string body;
};

/// One HTTP/1.0 exchange over the unix socket. Throws std::runtime_error on
/// connect/read/write failures; HTTP-level errors come back in `status`.
ScrapeResult scrape(const std::string& socket_path, const char* target) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("connect " + socket_path + ": " +
                             std::strerror(err));
  }
  std::string request = std::string("GET ") + target + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error(std::string("send: ") + std::strerror(err));
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error(std::string("recv: ") + std::strerror(err));
    }
    if (n == 0) break;  // Connection: close — EOF delimits the response.
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  ScrapeResult result;
  const std::size_t line_end = response.find("\r\n");
  if (line_end == std::string::npos || response.rfind("HTTP/", 0) != 0) {
    throw std::runtime_error("malformed response from " + socket_path);
  }
  const std::size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 4 > line_end) {
    throw std::runtime_error("malformed status line from " + socket_path);
  }
  result.status = static_cast<int>(rtsmooth::cli::require_int(
      std::string_view(response).substr(sp + 1, 3), "http status", kUsage,
      100, 599));
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    result.body = response.substr(header_end + 4);
  }
  return result;
}

std::int64_t opt_int(const rtsmooth::obs::Json& obj, std::string_view key) {
  const rtsmooth::obs::Json* v = obj.find(key);
  return v != nullptr && v->is_int() ? v->as_int() : 0;
}

double opt_double(const rtsmooth::obs::Json& obj, std::string_view key) {
  const rtsmooth::obs::Json* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_double() : 0.0;
}

void print_pretty(const std::string& body) {
  namespace obs = rtsmooth::obs;
  const obs::Json doc = obs::Json::parse(body);
  const obs::Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    throw std::runtime_error("document has no schema field");
  }
  std::printf("schema    %s\n", schema->as_string().c_str());
  std::printf("steps     %lld (engine %lld)\n",
              static_cast<long long>(opt_int(doc, "steps")),
              static_cast<long long>(opt_int(doc, "engine_steps")));
  if (const obs::Json* d = doc.find("daemon")) {
    std::printf("plan      policy=%s B_s=%lld B_c=%lld R=%lld D=%lld%s\n",
                d->at("policy").as_string().c_str(),
                static_cast<long long>(opt_int(*d, "server_buffer")),
                static_cast<long long>(opt_int(*d, "client_buffer")),
                static_cast<long long>(opt_int(*d, "rate")),
                static_cast<long long>(opt_int(*d, "smoothing_delay")),
                d->at("balanced").as_bool() ? " (balanced)" : "");
  }
  if (const obs::Json* rep = doc.find("report")) {
    std::printf("report    offered=%lldB played=%lldB loss=%.4f "
                "stalls=%lld max-late=%lld conserves=%s\n",
                static_cast<long long>(opt_int(*rep, "offered_bytes")),
                static_cast<long long>(opt_int(*rep, "played_bytes")),
                opt_double(*rep, "weighted_loss"),
                static_cast<long long>(opt_int(*rep, "stall_steps")),
                static_cast<long long>(opt_int(*rep, "max_lateness")),
                rep->at("conserves").as_bool() ? "yes" : "NO");
  }
  if (const obs::Json* ing = doc.find("ingest")) {
    std::printf("ingest    polled=%lld frames/%lldB stalled=%lld retries=%lld "
                "pending=%lld truncated=%lldB rejected=%lld\n",
                static_cast<long long>(opt_int(*ing, "polled_frames")),
                static_cast<long long>(opt_int(*ing, "polled_bytes")),
                static_cast<long long>(opt_int(*ing, "stalled_polls")),
                static_cast<long long>(opt_int(*ing, "retries")),
                static_cast<long long>(opt_int(*ing, "pending_depth")),
                static_cast<long long>(opt_int(*ing, "truncated_tail_bytes")),
                static_cast<long long>(opt_int(*ing, "rejected_records")));
  }
  if (const obs::Json* deg = doc.find("degradation")) {
    std::printf("degrade   level=%s rung=%lld floor=%.3f shed=%lld\n",
                deg->at("level").as_string().c_str(),
                static_cast<long long>(opt_int(*deg, "rung")),
                opt_double(*deg, "value_floor"),
                static_cast<long long>(opt_int(*deg, "shed_channels")));
  }
  if (const obs::Json* rc = doc.find("reconfigs")) {
    std::printf("reconfig  applied=%lld rejected=%lld queued=%lld "
                "max-lag=%lld\n",
                static_cast<long long>(opt_int(*rc, "applied")),
                static_cast<long long>(opt_int(*rc, "rejected")),
                static_cast<long long>(opt_int(*rc, "queued")),
                static_cast<long long>(opt_int(*rc, "max_lag")));
  }
  if (const obs::Json* slo = doc.find("slo")) {
    const obs::Json* breaches = slo->find("breaches");
    std::printf("slo       stall=%lld loss=%lld occupancy=%lld burn=%lld "
                "incidents=%lld\n",
                breaches != nullptr ? static_cast<long long>(
                                          opt_int(*breaches, "stall"))
                                    : 0LL,
                breaches != nullptr ? static_cast<long long>(
                                          opt_int(*breaches, "loss"))
                                    : 0LL,
                breaches != nullptr ? static_cast<long long>(
                                          opt_int(*breaches, "occupancy"))
                                    : 0LL,
                breaches != nullptr ? static_cast<long long>(
                                          opt_int(*breaches, "burn"))
                                    : 0LL,
                static_cast<long long>(opt_int(*slo, "incidents_captured")));
  }
  if (const obs::Json* st = doc.find("stats")) {
    std::printf("endpoint  accepted=%lld json=%lld metrics=%lld "
                "bad=%lld io-errors=%lld\n",
                static_cast<long long>(opt_int(*st, "accepted")),
                static_cast<long long>(opt_int(*st, "served_json")),
                static_cast<long long>(opt_int(*st, "served_metrics")),
                static_cast<long long>(opt_int(*st, "bad_requests")),
                static_cast<long long>(opt_int(*st, "io_errors")));
  }
}

/// Unicode block sparkline over the last (up to) `width` values, scaled to
/// the window's maximum; an all-zero window is a flat floor.
std::string sparkline(const std::vector<std::int64_t>& values,
                      std::size_t width = 48) {
  static const char* const kBlocks[8] = {"▁", "▂", "▃", "▄",
                                         "▅", "▆", "▇", "█"};
  const std::size_t n = std::min(width, values.size());
  const std::size_t start = values.size() - n;
  std::int64_t max = 0;
  for (std::size_t i = start; i < values.size(); ++i) {
    max = std::max(max, values[i]);
  }
  std::string out;
  for (std::size_t i = start; i < values.size(); ++i) {
    const std::int64_t v = std::max<std::int64_t>(0, values[i]);
    const std::size_t level =
        max > 0 ? static_cast<std::size_t>((v * 7 + max - 1) / max) : 0;
    out += kBlocks[std::min<std::size_t>(level, 7)];
  }
  return out;
}

std::vector<std::int64_t> int_array(const rtsmooth::obs::Json& arr) {
  std::vector<std::int64_t> out;
  out.reserve(arr.size());
  for (const rtsmooth::obs::Json& v : arr.items()) {
    out.push_back(v.is_int() ? v.as_int() : 0);
  }
  return out;
}

void print_series(const std::string& body,
                  const std::vector<std::string>& metrics) {
  namespace obs = rtsmooth::obs;
  const obs::Json doc = obs::Json::parse(body);
  const obs::Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "rtsmooth-series-v1") {
    throw std::runtime_error("/series did not answer rtsmooth-series-v1");
  }
  const obs::Json& ends = doc.at("slot_end_steps");
  const long long first =
      ends.size() > 0 ? static_cast<long long>(ends.at(std::size_t{0}).as_int())
                      : 0;
  const long long last =
      ends.size() > 0
          ? static_cast<long long>(ends.at(ends.size() - 1).as_int())
          : 0;
  std::printf("series    slots=%lld x %lld steps, evicted=%lld, "
              "covering steps %lld..%lld\n",
              static_cast<long long>(opt_int(doc, "slots")),
              static_cast<long long>(opt_int(doc, "slot_steps")),
              static_cast<long long>(opt_int(doc, "evicted")), first, last);
  const obs::Json* counters = doc.find("counters");
  const obs::Json* gauges = doc.find("gauges");
  for (const std::string& name : metrics) {
    const obs::Json* c =
        counters != nullptr ? counters->find(name) : nullptr;
    if (c != nullptr) {
      const std::vector<std::int64_t> deltas = int_array(c->at("deltas"));
      const std::int64_t last_delta = deltas.empty() ? 0 : deltas.back();
      std::printf("  %-40s %s Δ%lld total=%lld\n", name.c_str(),
                  sparkline(deltas).c_str(),
                  static_cast<long long>(last_delta),
                  static_cast<long long>(opt_int(*c, "total")));
      continue;
    }
    const obs::Json* g = gauges != nullptr ? gauges->find(name) : nullptr;
    if (g != nullptr) {
      const std::vector<std::int64_t> values = int_array(*g);
      std::printf("  %-40s %s now=%lld\n", name.c_str(),
                  sparkline(values).c_str(),
                  static_cast<long long>(values.empty() ? 0 : values.back()));
      continue;
    }
    std::printf("  %-40s (not in series)\n", name.c_str());
  }
  if (const obs::Json* burn = doc.find("burn")) {
    const obs::Json* budgets = burn->find("budgets");
    if (budgets != nullptr) {
      for (const obs::Json& b : budgets->items()) {
        std::printf("burn      %-14s budget=%.4f short=%.3f long=%.3f "
                    "%s alerts=%lld\n",
                    b.at("name").as_string().c_str(),
                    opt_double(b, "budget"), opt_double(b, "short_burn"),
                    opt_double(b, "long_burn"),
                    b.at("firing").as_bool() ? "FIRING" : "ok",
                    static_cast<long long>(opt_int(b, "alerts")));
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using rtsmooth::cli::require_int;
  std::string socket_path;
  Mode mode = Mode::Pretty;
  std::int64_t interval_ms = 0;
  std::int64_t count = 0;
  std::vector<std::string> series_metrics;
  const auto need = [&](int& i) -> std::string_view {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      rtsmooth::cli::usage_exit(kUsage);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--socket") {
      socket_path = std::string(need(i));
    } else if (arg == "--json") {
      mode = Mode::Json;
    } else if (arg == "--metrics") {
      mode = Mode::Metrics;
    } else if (arg == "--series") {
      mode = Mode::Series;
    } else if (arg == "--metric") {
      series_metrics.emplace_back(need(i));
    } else if (arg == "--health") {
      mode = Mode::Health;
    } else if (arg == "--interval") {
      interval_ms = require_int(need(i), "--interval", kUsage, 0, 86400000);
    } else if (arg == "--count") {
      count = require_int(need(i), "--count", kUsage, 0, INT64_MAX / 2);
    } else if (arg == "--help" || arg == "-h") {
      std::puts(kUsage);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      rtsmooth::cli::usage_exit(kUsage);
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "--socket is required\n");
    rtsmooth::cli::usage_exit(kUsage);
  }
  if (series_metrics.empty()) {
    // Default watch set: ingest pressure in, playback out, lateness and
    // admission shed — the burn budgets' raw material.
    series_metrics = {"daemon.ingest.polled_bytes", "client.played_bytes",
                      "client.late_bytes",
                      "daemon.admission.slot_refused_bytes"};
  }
  const char* target = mode == Mode::Metrics   ? "/metrics"
                       : mode == Mode::Series ? "/series"
                       : mode == Mode::Health ? "/healthz"
                                              : "/json";
  std::int64_t done = 0;
  try {
    for (;;) {
      const ScrapeResult r = scrape(socket_path, target);
      if (r.status != 200) {
        std::fprintf(stderr, "rtsmooth_stat: %s answered %d\n",
                     target, r.status);
        return 1;
      }
      switch (mode) {
        case Mode::Json:
        case Mode::Metrics:
        case Mode::Health:
          std::fwrite(r.body.data(), 1, r.body.size(), stdout);
          break;
        case Mode::Pretty:
          if (done > 0) std::printf("\n");
          print_pretty(r.body);
          break;
        case Mode::Series:
          if (done > 0) std::printf("\n");
          print_series(r.body, series_metrics);
          break;
      }
      std::fflush(stdout);
      ++done;
      if (interval_ms <= 0) break;
      if (count > 0 && done >= count) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rtsmooth_stat: %s\n", e.what());
    return 2;
  }
  return 0;
}
