#!/usr/bin/env python3
"""Selftests for validate_bench_json.py (run via ctest or directly)."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import validate_bench_json as v  # noqa: E402


def bench_doc():
    return {
        "schema": "rtsmooth-bench-v1",
        "bench": "fig_test",
        "options": {"frames": 120, "quick": True, "threads": 0},
        "series": [{"name": "main", "header": ["a", "b"],
                    "rows": [["1", "2"], ["3", "4"]]}],
        "runner": {"tasks": 2, "threads": 1, "total_task_us": 10,
                   "max_task_us": 7, "queue_us": 1, "wall_us": 12},
        "registry": {
            "counters": {"c": 1}, "gauges": {}, "histograms": {
                "h": {"count": 2, "sum": 3, "min": 1, "max": 2,
                      "bounds": [2], "counts": [1, 1]}}},
    }


def step(t):
    return {"t": t, "arrived": 1, "sent": 1, "delivered": 1, "played": 0,
            "dropped_server": 0, "dropped_client": 0, "retransmitted": 0,
            "server_occupancy": 5, "client_occupancy": 3,
            "link_idle": False, "stalled": False}


def incident_doc():
    return {
        "schema": "rtsmooth-incident-v1",
        "incident": 0,
        "trigger": {"type": "violation", "t": 11,
                    "kind": "client_underflow", "magnitude": 1},
        "context": {"policy": "greedy"},
        "steps_recorded": 12,
        "window_capacity": 4,
        "truncated": True,
        "window": [step(8), step(9), step(10), step(11)],
    }


class CheckFileTest(unittest.TestCase):
    def check(self, doc):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as f:
            json.dump(doc, f)
            path = f.name
        try:
            return v.check_file(path)
        finally:
            os.unlink(path)

    def test_valid_bench_doc(self):
        self.assertEqual(self.check(bench_doc()), [])

    def test_valid_incident_doc(self):
        self.assertEqual(self.check(incident_doc()), [])

    def test_reports_all_violations_not_just_first(self):
        doc = bench_doc()
        doc["series"][0]["rows"].append(["lonely"])        # wrong width
        doc["registry"]["histograms"]["h"]["counts"] = [5]  # wrong buckets
        errors = self.check(doc)
        self.assertGreaterEqual(len(errors), 2)
        self.assertTrue(any("row width" in e for e in errors))
        self.assertTrue(any("bounds+1" in e for e in errors))

    def test_incident_window_must_be_chronological(self):
        doc = incident_doc()
        doc["window"][2]["t"] = 8
        errors = self.check(doc)
        self.assertTrue(any("not after" in e for e in errors))

    def test_incident_window_over_capacity(self):
        doc = incident_doc()
        doc["window_capacity"] = 3
        errors = self.check(doc)
        self.assertTrue(any("over the" in e for e in errors))

    def test_truncated_incident_needs_full_window(self):
        doc = incident_doc()
        doc["window"].pop()
        doc["steps_recorded"] = 3
        errors = self.check(doc)
        self.assertTrue(any("full window" in e for e in errors))

    def test_incident_steps_recorded_floor(self):
        doc = incident_doc()
        doc["steps_recorded"] = 2
        errors = self.check(doc)
        self.assertTrue(any("steps_recorded" in e for e in errors))

    def test_incident_missing_step_key(self):
        doc = incident_doc()
        del doc["window"][1]["stalled"]
        errors = self.check(doc)
        self.assertTrue(any("window[1] lacks" in e for e in errors))

    def test_unrecognised_schema(self):
        errors = self.check({"schema": "nope"})
        self.assertTrue(any("unrecognised schema" in e for e in errors))

    def test_google_benchmark_doc(self):
        doc = {"context": {}, "benchmarks": [{"name": "BM_X"}]}
        self.assertEqual(self.check(doc), [])
        doc["benchmarks"] = []
        self.assertTrue(self.check(doc))


if __name__ == "__main__":
    unittest.main()
