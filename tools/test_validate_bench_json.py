#!/usr/bin/env python3
"""Selftests for validate_bench_json.py (run via ctest or directly)."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import validate_bench_json as v  # noqa: E402


def bench_doc():
    return {
        "schema": "rtsmooth-bench-v1",
        "bench": "fig_test",
        "options": {"frames": 120, "quick": True, "threads": 0},
        "series": [{"name": "main", "header": ["a", "b"],
                    "rows": [["1", "2"], ["3", "4"]]}],
        "runner": {"tasks": 2, "threads": 1, "total_task_us": 10,
                   "max_task_us": 7, "queue_us": 1, "wall_us": 12},
        "registry": {
            "counters": {"c": 1}, "gauges": {}, "histograms": {
                "h": {"count": 2, "sum": 3, "min": 1, "max": 2,
                      "bounds": [2], "counts": [1, 1]}}},
    }


def gateway_doc():
    doc = bench_doc()
    doc["bench"] = "gateway"
    doc["registry"]["counters"] = {
        "gateway.admitted_bytes": 1000, "gateway.served_bytes": 900,
        "gateway.dropped_bytes": 50, "gateway.unserved_bytes": 25,
    }
    doc["gateway"] = {"streams": 8192, "steps": 120,
                      "stream_steps": 8192 * 120, "wall_us": 16000,
                      "stream_steps_per_sec": 6.1e7}
    return doc


def step(t):
    return {"t": t, "arrived": 1, "sent": 1, "delivered": 1, "played": 0,
            "dropped_server": 0, "dropped_client": 0, "retransmitted": 0,
            "server_occupancy": 5, "client_occupancy": 3,
            "link_idle": False, "stalled": False}


def incident_doc():
    return {
        "schema": "rtsmooth-incident-v1",
        "incident": 0,
        "trigger": {"type": "violation", "t": 11,
                    "kind": "client_underflow", "magnitude": 1},
        "context": {"policy": "greedy"},
        "steps_recorded": 12,
        "window_capacity": 4,
        "truncated": True,
        "window": [step(8), step(9), step(10), step(11)],
    }


def soak_doc():
    return {
        "schema": "rtsmooth-soak-v1",
        "daemon": {"channels": 4, "policy": "greedy", "server_buffer": 1024,
                   "client_buffer": 1024, "rate": 256, "smoothing_delay": 4,
                   "link_delay": 1, "max_live_runs": 4096, "balanced": True},
        "steps": 60000,
        "engine_steps": 60013,
        "stop_signal": 15,
        "reconfigs": {"applied": 119, "rejected": 1, "drain_steps": 5,
                      "max_lag": 5, "queued": 0, "forced_residual": False},
        "degradation": {"level": "normal", "rung": 0, "escalations": 3,
                        "deescalations": 3, "value_floor": 1,
                        "shed_channels": 0},
        "slo": {"breaches": {"stall": 2, "loss": 0, "occupancy": 0,
                             "burn": 1},
                "incidents_captured": 2, "incidents_written": 2,
                "cooldown_suppressed": 0, "triggers": 2,
                "stall_rate": 0.01, "loss_rate": 0.0,
                "occupancy_step_frac": 0.4},
        "ingest": {"polled_frames": 120000, "polled_bytes": 1500000,
                   "stalled_polls": 0, "retries": 0, "source_ended": True,
                   "timed_out": False, "pending_depth": 0,
                   "truncated_tail_bytes": 0, "rejected_records": 0},
        "admission": {"admitted_bytes": 1400000, "admitted_frames": 110000,
                      "budget_refused_bytes": 50000,
                      "budget_refused_frames": 5000,
                      "channel_shed_bytes": 30000,
                      "channel_shed_frames": 3000,
                      "slot_refused_bytes": 10000,
                      "slot_refused_frames": 1000,
                      "unserved_bytes": 10000, "unserved_frames": 1000,
                      "floor_shed_bytes": 0, "ledger_conserves": True},
        "report": {"offered_bytes": 1400000, "offered_weight": 2800000,
                   "played_bytes": 1350000, "dropped_server_bytes": 40000,
                   "dropped_client_overflow_bytes": 0,
                   "dropped_client_late_bytes": 10000,
                   "lost_link_bytes": 0, "residual_bytes": 0,
                   "retransmitted_bytes": 0, "stall_steps": 12,
                   "max_server_occupancy": 1024,
                   "max_client_occupancy": 1024, "max_lateness": 0,
                   "weighted_loss": 0.03, "conserves": True},
        "registry": {"counters": {"daemon.steps": 60000}, "gauges": {},
                     "histograms": {}},
    }


def stats_section():
    return {"schema": "rtsmooth-stats-v1", "socket_path": "/tmp/rts.sock",
            "running": True, "accepted": 12, "served_json": 5,
            "served_metrics": 5, "served_series": 2, "served_health": 1,
            "unavailable": 0, "bad_requests": 1, "not_found": 0,
            "io_errors": 0}


def series_doc():
    return {
        "schema": "rtsmooth-series-v1",
        "slot_steps": 100,
        "capacity": 4,
        "slots": 3,
        "evicted": 2,
        "slot_end_steps": [300, 400, 500],
        "counters": {
            "daemon.steps": {"base": 200, "deltas": [100, 100, 100],
                             "total": 500},
            "client.late_bytes": {"base": 0, "deltas": [0, 40, 10],
                                  "total": 50},
        },
        "gauges": {"client.max_occupancy": [512, 512, 1024]},
        "histograms": {
            "daemon.poll_bytes": {
                "bounds": [16, 64],
                "count": {"base": 4, "deltas": [2, 0, 3], "total": 9},
                "sum": {"base": 90, "deltas": [40, 0, 70], "total": 200},
                "bucket_base": [1, 3, 0],
                "buckets": [[1, 1, 0], [0, 0, 0], [0, 2, 1]],
            },
        },
        "burn": {
            "short_slots": 2,
            "long_slots": 3,
            "budgets": [{
                "name": "deadline_miss",
                "budget": 0.01,
                "threshold": 1.0,
                "bad": ["client.late_bytes"],
                "total": ["client.played_bytes", "client.late_bytes"],
                "short_burn": 2.5,
                "long_burn": 1.7,
                "firing": True,
                "alerts": 2,
            }],
        },
    }


PROM_TEXT = """\
# TYPE rtsmooth_daemon_steps counter
rtsmooth_daemon_steps 60000
# TYPE rtsmooth_client_max_occupancy gauge
rtsmooth_client_max_occupancy 1024
# TYPE rtsmooth_gateway_slack_steps histogram
rtsmooth_gateway_slack_steps_bucket{le="1"} 3
rtsmooth_gateway_slack_steps_bucket{le="2"} 5
rtsmooth_gateway_slack_steps_bucket{le="+Inf"} 7
rtsmooth_gateway_slack_steps_sum 19
rtsmooth_gateway_slack_steps_count 7
"""


class CheckFileTest(unittest.TestCase):
    def check(self, doc):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as f:
            json.dump(doc, f)
            path = f.name
        try:
            return v.check_file(path)
        finally:
            os.unlink(path)

    def check_text(self, text, suffix=".prom"):
        with tempfile.NamedTemporaryFile(
                "w", suffix=suffix, delete=False) as f:
            f.write(text)
            path = f.name
        try:
            return v.check_file(path)
        finally:
            os.unlink(path)

    def test_valid_bench_doc(self):
        self.assertEqual(self.check(bench_doc()), [])

    def test_valid_gateway_doc(self):
        self.assertEqual(self.check(gateway_doc()), [])

    def test_gateway_section_missing_key(self):
        doc = gateway_doc()
        del doc["gateway"]["wall_us"]
        errors = self.check(doc)
        self.assertTrue(any("gateway section lacks ['wall_us']" in e
                            for e in errors))

    def test_gateway_section_inconsistent_stream_steps(self):
        doc = gateway_doc()
        doc["gateway"]["stream_steps"] = 7
        errors = self.check(doc)
        self.assertTrue(any("stream_steps 7 !=" in e for e in errors))

    def test_gateway_section_nonpositive_counts(self):
        doc = gateway_doc()
        doc["gateway"]["streams"] = 0
        doc["gateway"]["stream_steps_per_sec"] = 0
        errors = self.check(doc)
        self.assertTrue(any("streams must be a positive int" in e
                            for e in errors))
        self.assertTrue(any("stream_steps_per_sec" in e for e in errors))

    def test_gateway_section_requires_ledger_counters(self):
        doc = gateway_doc()
        del doc["registry"]["counters"]["gateway.served_bytes"]
        errors = self.check(doc)
        self.assertTrue(any("ledger counters" in e and "served_bytes" in e
                            for e in errors))

    def test_bench_doc_without_gateway_section_still_valid(self):
        self.assertEqual(self.check(bench_doc()), [])

    def test_valid_incident_doc(self):
        self.assertEqual(self.check(incident_doc()), [])

    def test_reports_all_violations_not_just_first(self):
        doc = bench_doc()
        doc["series"][0]["rows"].append(["lonely"])        # wrong width
        doc["registry"]["histograms"]["h"]["counts"] = [5]  # wrong buckets
        errors = self.check(doc)
        self.assertGreaterEqual(len(errors), 2)
        self.assertTrue(any("row width" in e for e in errors))
        self.assertTrue(any("bounds+1" in e for e in errors))

    def test_incident_window_must_be_chronological(self):
        doc = incident_doc()
        doc["window"][2]["t"] = 8
        errors = self.check(doc)
        self.assertTrue(any("not after" in e for e in errors))

    def test_incident_window_over_capacity(self):
        doc = incident_doc()
        doc["window_capacity"] = 3
        errors = self.check(doc)
        self.assertTrue(any("over the" in e for e in errors))

    def test_truncated_incident_needs_full_window(self):
        doc = incident_doc()
        doc["window"].pop()
        doc["steps_recorded"] = 3
        errors = self.check(doc)
        self.assertTrue(any("full window" in e for e in errors))

    def test_incident_steps_recorded_floor(self):
        doc = incident_doc()
        doc["steps_recorded"] = 2
        errors = self.check(doc)
        self.assertTrue(any("steps_recorded" in e for e in errors))

    def test_incident_missing_step_key(self):
        doc = incident_doc()
        del doc["window"][1]["stalled"]
        errors = self.check(doc)
        self.assertTrue(any("window[1] lacks" in e for e in errors))

    def test_valid_soak_doc(self):
        self.assertEqual(self.check(soak_doc()), [])

    def test_soak_missing_section_and_key(self):
        doc = soak_doc()
        del doc["ingest"]
        del doc["reconfigs"]["max_lag"]
        errors = self.check(doc)
        self.assertTrue(any("['ingest']" in e for e in errors))
        self.assertTrue(any("reconfigs lacks ['max_lag']" in e
                            for e in errors))

    def test_soak_flags_broken_invariants(self):
        doc = soak_doc()
        doc["admission"]["ledger_conserves"] = False
        doc["report"]["conserves"] = False
        errors = self.check(doc)
        self.assertTrue(any("ledger" in e for e in errors))
        self.assertTrue(any("report does not conserve" in e for e in errors))

    def test_soak_rates_bounded(self):
        doc = soak_doc()
        doc["slo"]["stall_rate"] = 1.5
        doc["report"]["weighted_loss"] = -0.1
        errors = self.check(doc)
        self.assertTrue(any("stall_rate" in e for e in errors))
        self.assertTrue(any("weighted_loss" in e for e in errors))

    def test_soak_negative_steps(self):
        doc = soak_doc()
        doc["steps"] = -1
        errors = self.check(doc)
        self.assertTrue(any("steps must be a non-negative int" in e
                            for e in errors))

    def test_soak_live_doc_may_not_conserve(self):
        doc = soak_doc()
        doc["stop_signal"] = 0          # mid-run scrape: bytes in flight
        doc["report"]["conserves"] = False
        self.assertEqual(self.check(doc), [])

    def test_soak_doc_with_stats_section(self):
        doc = soak_doc()
        doc["stats"] = stats_section()
        self.assertEqual(self.check(doc), [])

    def test_soak_stats_section_wrong_schema(self):
        doc = soak_doc()
        doc["stats"] = stats_section()
        doc["stats"]["schema"] = "rtsmooth-stats-v2"
        errors = self.check(doc)
        self.assertTrue(any("rtsmooth-stats-v1" in e for e in errors))

    def test_soak_stats_section_missing_and_negative(self):
        doc = soak_doc()
        doc["stats"] = stats_section()
        del doc["stats"]["io_errors"]
        doc["stats"]["accepted"] = -1
        errors = self.check(doc)
        self.assertTrue(any("stats section lacks ['io_errors']" in e
                            for e in errors))
        self.assertTrue(any("accepted must be a non-negative int" in e
                            for e in errors))

    def test_soak_missing_new_ingest_and_report_keys(self):
        doc = soak_doc()
        del doc["ingest"]["truncated_tail_bytes"]
        del doc["report"]["max_lateness"]
        errors = self.check(doc)
        self.assertTrue(any("ingest lacks ['truncated_tail_bytes']" in e
                            for e in errors))
        self.assertTrue(any("report lacks ['max_lateness']" in e
                            for e in errors))

    def test_soak_negative_max_lateness(self):
        doc = soak_doc()
        doc["report"]["max_lateness"] = -3
        errors = self.check(doc)
        self.assertTrue(any("max_lateness" in e for e in errors))

    def test_valid_series_doc(self):
        self.assertEqual(self.check(series_doc()), [])

    def test_series_broken_counter_conservation(self):
        doc = series_doc()
        doc["counters"]["daemon.steps"]["total"] = 499
        errors = self.check(doc)
        self.assertTrue(any("base 200 + deltas 300 != total 499" in e
                            for e in errors))

    def test_series_negative_counter_delta(self):
        doc = series_doc()
        doc["counters"]["daemon.steps"]["deltas"] = [100, -100, 500]
        errors = self.check(doc)
        self.assertTrue(any("negative delta" in e for e in errors))

    def test_series_slots_mismatch(self):
        doc = series_doc()
        doc["slots"] = 2
        errors = self.check(doc)
        self.assertTrue(any("slots 2 != len(slot_end_steps) 3" in e
                            for e in errors))

    def test_series_slot_ends_not_rising(self):
        doc = series_doc()
        doc["slot_end_steps"] = [300, 300, 500]
        errors = self.check(doc)
        self.assertTrue(any("not strictly rising" in e for e in errors))

    def test_series_over_capacity(self):
        doc = series_doc()
        doc["capacity"] = 2
        errors = self.check(doc)
        self.assertTrue(any("over its capacity" in e for e in errors))

    def test_series_wrong_delta_length(self):
        doc = series_doc()
        doc["counters"]["daemon.steps"]["deltas"] = [300]
        doc["counters"]["daemon.steps"]["total"] = 500
        errors = self.check(doc)
        self.assertTrue(any("1 deltas for 3 slots" in e for e in errors))

    def test_series_gauge_must_not_decrease(self):
        doc = series_doc()
        doc["gauges"]["client.max_occupancy"] = [1024, 512, 512]
        errors = self.check(doc)
        self.assertTrue(any("decreases" in e for e in errors))

    def test_series_histogram_row_count_mismatch(self):
        doc = series_doc()
        doc["histograms"]["daemon.poll_bytes"]["buckets"][0] = [1, 0, 0]
        errors = self.check(doc)
        self.assertTrue(any("row 0 bucket deltas sum to 1" in e
                            for e in errors))

    def test_series_histogram_bucket_base_mismatch(self):
        doc = series_doc()
        doc["histograms"]["daemon.poll_bytes"]["bucket_base"] = [1, 1, 0]
        errors = self.check(doc)
        self.assertTrue(any("bucket_base sums to 2" in e for e in errors))

    def test_series_burn_budget_fraction_bounds(self):
        doc = series_doc()
        doc["burn"]["budgets"][0]["budget"] = 1.5
        errors = self.check(doc)
        self.assertTrue(any("outside (0, 1]" in e for e in errors))

    def test_series_burn_windows_ordered(self):
        doc = series_doc()
        doc["burn"]["long_slots"] = 1
        errors = self.check(doc)
        self.assertTrue(any("long_slots" in e and ">= short_slots" in e
                            for e in errors))

    def test_series_burn_empty_bad_list(self):
        doc = series_doc()
        doc["burn"]["budgets"][0]["bad"] = []
        errors = self.check(doc)
        self.assertTrue(any("non-empty list of counter names" in e
                            for e in errors))

    def test_soak_doc_with_embedded_series(self):
        doc = soak_doc()
        series = series_doc()
        series["counters"] = {"daemon.steps": {
            "base": 59000, "deltas": [400, 300, 300], "total": 60000}}
        doc["series"] = series
        self.assertEqual(self.check(doc), [])

    def test_soak_embedded_series_exceeds_registry(self):
        doc = soak_doc()
        series = series_doc()
        # The registry pins daemon.steps at 60000; a series total beyond
        # the live value cannot happen (the series lags, never leads).
        series["counters"] = {"daemon.steps": {
            "base": 60000, "deltas": [1, 0, 0], "total": 60001}}
        doc["series"] = series
        errors = self.check(doc)
        self.assertTrue(any("exceeds registry value 60000" in e
                            for e in errors))

    def test_soak_slo_missing_burn_breach(self):
        doc = soak_doc()
        del doc["slo"]["breaches"]["burn"]
        errors = self.check(doc)
        self.assertTrue(any("breaches lacks ['burn']" in e for e in errors))

    def test_valid_prometheus_exposition(self):
        self.assertEqual(self.check_text(PROM_TEXT), [])

    def test_prometheus_sample_without_type(self):
        errors = self.check_text("rtsmooth_orphan 1\n")
        self.assertTrue(any("precedes its # TYPE" in e for e in errors))

    def test_prometheus_type_without_samples(self):
        errors = self.check_text("# TYPE rtsmooth_ghost counter\n")
        self.assertTrue(any("never sampled" in e for e in errors))

    def test_prometheus_missing_prefix(self):
        errors = self.check_text("# TYPE naked counter\nnaked 1\n")
        self.assertTrue(any("rtsmooth_ prefix" in e for e in errors))

    def test_prometheus_histogram_not_cumulative(self):
        bad = PROM_TEXT.replace(
            'rtsmooth_gateway_slack_steps_bucket{le="2"} 5',
            'rtsmooth_gateway_slack_steps_bucket{le="2"} 2')
        errors = self.check_text(bad)
        self.assertTrue(any("not cumulative" in e for e in errors))

    def test_prometheus_histogram_count_mismatch(self):
        bad = PROM_TEXT.replace("rtsmooth_gateway_slack_steps_count 7",
                                "rtsmooth_gateway_slack_steps_count 9")
        errors = self.check_text(bad)
        self.assertTrue(any("_count" in e for e in errors))

    def test_prometheus_histogram_needs_inf_bucket(self):
        bad = PROM_TEXT.replace(
            'rtsmooth_gateway_slack_steps_bucket{le="+Inf"} 7\n', "")
        errors = self.check_text(bad)
        self.assertTrue(any('le="+Inf"' in e for e in errors))

    def test_prometheus_malformed_sample(self):
        errors = self.check_text(
            "# TYPE rtsmooth_x counter\nrtsmooth_x one\n")
        self.assertTrue(any("malformed sample" in e for e in errors))

    def test_unrecognised_schema(self):
        errors = self.check({"schema": "nope"})
        self.assertTrue(any("unrecognised schema" in e for e in errors))

    def test_google_benchmark_doc(self):
        doc = {"context": {}, "benchmarks": [{"name": "BM_X"}]}
        self.assertEqual(self.check(doc), [])
        doc["benchmarks"] = []
        self.assertTrue(self.check(doc))


if __name__ == "__main__":
    unittest.main()
