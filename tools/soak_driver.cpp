// soak_driver: long-running churn harness for rtsmoothd (DESIGN.md Sect. 13).
//
// Runs the daemon against a synthetic, replayed, or piped frame source with
// an optional scheduled fault program (faults/fault_schedule.h) and a cycle
// of periodic reconfiguration plans chosen to visit the Sect. 3.3 waste
// cases (balanced -> rate doubled -> server-buffer deficit -> balanced).
// SIGTERM/SIGINT trigger the daemon's clean drain, so the CI soak job can
// run it unbounded and stop it on the clock; the process exits 0 iff the
// daemon's byte ledgers conserve.
//
// --alloc-guard switches to the steady-state allocation-flatness check: two
// fresh daemons serve T and 2T steps on identical configs and the marginal
// allocation count for the extra T steps must be flat (within a small
// slack), proving the serving loop recycles every buffer it touches.
// Allocations are counted by a replaced global operator new, or — under
// AddressSanitizer, which must own malloc — by ASan's allocator hooks.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "core/link.h"
#include "daemon/frame_source.h"
#include "daemon/rtsmoothd.h"
#include "faults/fault_schedule.h"
#include "trace/stock_clips.h"
#include "util/cli.h"
#include "util/rng.h"

#if defined(__SANITIZE_ADDRESS__)
#define SOAK_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SOAK_ASAN 1
#endif
#endif
#ifndef SOAK_ASAN
#define SOAK_ASAN 0
#endif

#if SOAK_ASAN && __has_include(<sanitizer/allocator_interface.h>)
#include <sanitizer/allocator_interface.h>
#define SOAK_ASAN_HOOKS 1
#else
#define SOAK_ASAN_HOOKS 0
#endif

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

#if SOAK_ASAN_HOOKS

namespace {
void soak_malloc_hook(const volatile void*, std::size_t) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
}
void soak_free_hook(const volatile void*) {}
void install_alloc_counter() {
  __sanitizer_install_malloc_and_free_hooks(soak_malloc_hook, soak_free_hook);
}
}  // namespace

#elif !SOAK_ASAN

// GCC pairs each replaced operator new with the library delete and flags
// the std::free inside our own matched replacements; the pairing below is
// malloc/aligned_alloc <-> free throughout.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   n != 0 ? n : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return ::operator new(n, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

namespace {
void install_alloc_counter() {}
}  // namespace

#else

namespace {
// ASan build without the hooks header: run_alloc_guard compiles to the
// "skipped" branch and never calls the installer.
[[maybe_unused]] void install_alloc_counter() {}
}  // namespace

#endif

namespace {

namespace rts = rtsmooth;
using rts::Bytes;
using rts::Time;

constexpr const char* kUsage = R"(usage: soak_driver [options]
  --steps N               serving steps (0 = until source end / SIGTERM) [200000]
  --channels N            generator channels [4]
  --mean-frame N          generator mean frame bytes [64]
  --frames-per-channel N  frames per channel before End (0 = endless) [0]
  --source KIND           gen | replay:CLIP | pipe:FD [gen]
  --rate R                link rate, bytes/step [256]
  --delay D               smoothing delay [4]
  --link-delay P          propagation delay [1]
  --buffer B              server+client buffer (0 = balanced R*D) [0]
  --policy NAME           drop policy [greedy]
  --seed N                rng seed [1]
  --reconfig-every N      cycling reconfig every N steps (0 = never) [0]
  --fault-schedule S      scheduled fault program, from:loss:cap[,...]
  --fault-period N        repeat the fault program every N steps (0 = once) [0]
  --slo-stall X           stall-rate SLO [0.05]
  --slo-loss X            weighted-loss-rate SLO [0.10]
  --slo-occupancy X       occupancy SLO fraction of B [0.95]
  --slo-window N          SLO sliding window, steps [512]
  --slo-cooldown N        incident cooldown per SLO kind, steps [2048]
  --no-slo                disable the watchdog
  --no-ladder             disable the degradation ladder
  --stall-timeout N       stalled steps before the source is declared dead [0]
  --max-drain N           drain ceiling override (0 = auto) [0]
  --snapshot PATH         write the rtsmooth-soak-v1 snapshot here
  --snapshot-every N      also write the snapshot every N steps [0]
  --incident-dir DIR      write captured incidents here
  --stats-socket PATH     serve live stats on this unix socket
  --stats-publish-every N republish the endpoint payload every N steps [0]
  --series-every N        sample the registry timeline every N steps (0 = off) [0]
  --series-capacity N     timeline ring capacity, slots [256]
  --burn-short N          short burn window, slots [6]
  --burn-long N           long burn window, slots [36]
  --alloc-guard           steady-state allocation-flatness check, then exit
  --quiet                 suppress the event log)";

struct DriverOptions {
  Time steps = 200000;
  std::int64_t channels = 4;
  Bytes mean_frame = 64;
  std::int64_t frames_per_channel = 0;
  std::string source = "gen";
  Bytes rate = 256;
  Time delay = 4;
  Time link_delay = 1;
  Bytes buffer = 0;
  std::string policy = "greedy";
  std::uint64_t seed = 1;
  Time reconfig_every = 0;
  std::string fault_schedule;
  Time fault_period = 0;
  std::string snapshot_path;
  Time snapshot_every = 0;
  std::string incident_dir;
  std::string stats_socket;
  Time stats_publish_every = 0;
  Time series_every = 0;
  std::int64_t series_capacity = 256;
  std::int64_t burn_short = 6;
  std::int64_t burn_long = 36;
  Time stall_timeout = 0;
  Time max_drain = 0;
  rts::daemon::SloConfig slo;
  bool ladder = true;
  bool alloc_guard = false;
  bool quiet = false;
};

std::unique_ptr<rts::daemon::FrameSource> make_source(
    const DriverOptions& opt) {
  if (opt.source == "gen") {
    rts::daemon::GeneratorConfig cfg;
    cfg.channels = static_cast<std::int32_t>(opt.channels);
    cfg.mean_frame_bytes = opt.mean_frame;
    cfg.min_frame_bytes = std::min<Bytes>(64, std::max<Bytes>(1, opt.mean_frame / 4));
    cfg.max_frame_bytes = opt.mean_frame * 4;
    cfg.seed = opt.seed;
    cfg.frames_per_channel = opt.frames_per_channel;
    return std::make_unique<rts::daemon::GeneratorSource>(cfg);
  }
  if (opt.source.rfind("replay:", 0) == 0) {
    const std::string clip = opt.source.substr(7);
    const std::size_t frames = opt.frames_per_channel > 0
                                   ? static_cast<std::size_t>(opt.frames_per_channel)
                                   : 5000;
    return std::make_unique<rts::daemon::ReplaySource>(
        rts::trace::stock_clip(clip, frames));
  }
  if (opt.source.rfind("pipe:", 0) == 0) {
    const std::int64_t fd = rts::cli::require_int(
        std::string_view(opt.source).substr(5), "--source pipe fd", kUsage, 0,
        1 << 20);
    return std::make_unique<rts::daemon::PipeSource>(
        static_cast<int>(fd), static_cast<std::int32_t>(opt.channels));
  }
  std::fprintf(stderr, "unknown --source '%s'\n", opt.source.c_str());
  rts::cli::usage_exit(kUsage);
}

rts::daemon::DaemonOptions daemon_options(const DriverOptions& opt) {
  rts::daemon::DaemonOptions d;
  d.engine.rate = opt.rate;
  d.engine.smoothing_delay = opt.delay;
  d.engine.link_delay = opt.link_delay;
  const Bytes buffer = opt.buffer > 0 ? opt.buffer : opt.rate * opt.delay;
  d.engine.server_buffer = buffer;
  d.engine.client_buffer = buffer;
  d.engine.policy = opt.policy;
  d.engine.policy_seed = opt.seed;
  d.slo = opt.slo;
  d.ladder.enabled = opt.ladder;
  d.max_steps = opt.steps;
  d.max_drain_steps = opt.max_drain;
  d.ingest.stall_timeout_steps = opt.stall_timeout;
  d.snapshot_path = opt.snapshot_path;
  d.snapshot_every = opt.snapshot_every;
  d.incident_dir = opt.incident_dir;
  d.stats_socket_path = opt.stats_socket;
  d.stats_publish_every = opt.stats_publish_every;
  if (opt.series_every > 0) {
    d.timeline.slot_steps = opt.series_every;
    d.timeline.capacity = static_cast<std::size_t>(opt.series_capacity);
    d.timeline.short_slots = static_cast<std::size_t>(opt.burn_short);
    d.timeline.long_slots = static_cast<std::size_t>(opt.burn_long);
    d.timeline.budgets = rts::daemon::default_slo_budgets();
  }
  d.log = opt.quiet ? nullptr : &std::cerr;
  return d;
}

rts::daemon::Daemon::LinkFactory make_link_factory(const DriverOptions& opt) {
  if (opt.fault_schedule.empty()) return {};
  const std::vector<rts::faults::FaultPhase> phases =
      rts::faults::parse_fault_schedule(opt.fault_schedule);
  const std::uint64_t seed = opt.seed;
  const Time period = opt.fault_period;
  return [phases, seed, period](const rts::daemon::EngineConfig& cfg)
             -> std::unique_ptr<rts::Link> {
    return std::make_unique<rts::faults::ScheduledFaultLink>(
        std::make_unique<rts::FixedDelayLink>(cfg.link_delay), phases,
        rts::Rng(seed ^ 0x9e3779b97f4a7c15ull), -1, period);
  };
}

// Three-plan cycle visiting the Sect. 3.3 cases: double the rate (balanced
// at a new operating point), halve the server buffer (deficit + mismatch),
// return to base (balanced).
void schedule_reconfigs(rts::daemon::Daemon& daemon,
                        const DriverOptions& opt) {
  if (opt.reconfig_every <= 0) return;
  const Bytes buffer = opt.buffer > 0 ? opt.buffer : opt.rate * opt.delay;
  std::vector<rts::daemon::EnginePlan> plans;
  plans.push_back({opt.rate * 2 * opt.delay, opt.rate * 2 * opt.delay,
                   opt.rate * 2, opt.delay, opt.link_delay, ""});
  plans.push_back({std::max<Bytes>(1, buffer / 2), buffer, opt.rate,
                   opt.delay, opt.link_delay, ""});
  plans.push_back({buffer, buffer, opt.rate, opt.delay, opt.link_delay, ""});
  // A cycling program rather than a pre-enumerated schedule: endless
  // (--steps 0) soaks keep churning instead of going quiet once a fixed
  // horizon's worth of requests is exhausted.
  daemon.schedule_reconfig_cycle(opt.reconfig_every, std::move(plans));
}

int run_soak(const DriverOptions& opt) {
  rts::daemon::Daemon daemon(daemon_options(opt), make_source(opt),
                             make_link_factory(opt));
  schedule_reconfigs(daemon, opt);
  rts::daemon::install_signal_handlers(daemon);
  const int rc = daemon.serve();
  if (!opt.quiet) {
    const rts::SimReport report = daemon.total_report();
    std::fprintf(
        stderr,
        "soak: steps=%lld polled=%lld bytes, played=%lld bytes, "
        "reconfigs=%lld applied/%lld rejected, breaches=%lld, "
        "incidents=%zu captured/%lld written, rc=%d\n",
        static_cast<long long>(daemon.steps()),
        static_cast<long long>(daemon.polled_bytes()),
        static_cast<long long>(report.played.bytes),
        static_cast<long long>(daemon.reconfigs_applied()),
        static_cast<long long>(daemon.reconfigs_rejected()),
        static_cast<long long>(daemon.watchdog().breaches().total()),
        daemon.recorder().incidents().size(),
        static_cast<long long>(daemon.incidents_written()), rc);
  }
  return rc;
}

int run_alloc_guard(const DriverOptions& opt) {
#if SOAK_ASAN && !SOAK_ASAN_HOOKS
  (void)opt;
  std::fprintf(stderr,
               "alloc-guard: skipped (ASan build without allocator hooks)\n");
  return 0;
#else
  install_alloc_counter();
  // The guard measures the serving core: lossless link, no reconfigs, no
  // watchdog (incident capture allocates by design), no output files.
  DriverOptions guard = opt;
  guard.slo.enabled = false;
  guard.fault_schedule.clear();
  guard.reconfig_every = 0;
  guard.snapshot_path.clear();
  guard.snapshot_every = 0;
  guard.incident_dir.clear();
  guard.stats_socket.clear();
  guard.stats_publish_every = 0;
  guard.series_every = 0;  // timeline sampling allocates ring slots
  guard.quiet = true;
  const Time t = opt.steps > 0 ? opt.steps : 50000;
  const auto measure = [&guard](Time steps) -> std::uint64_t {
    DriverOptions run = guard;
    run.steps = steps;
    rts::daemon::Daemon daemon(daemon_options(run), make_source(run));
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    const int rc = daemon.serve();
    if (rc != 0) {
      std::fprintf(stderr, "alloc-guard: daemon ledger failure (rc=%d)\n",
                   rc);
      std::exit(1);
    }
    return g_allocs.load(std::memory_order_relaxed) - before;
  };
  const std::uint64_t short_run = measure(t);
  const std::uint64_t long_run = measure(2 * t);
  const std::uint64_t growth = long_run > short_run ? long_run - short_run : 0;
  // Slack absorbs one-off lazy growth (a deque block, a pool warm-up); any
  // per-step leak at 10^4+ steps dwarfs it.
  constexpr std::uint64_t kSlack = 512;
  std::fprintf(stderr,
               "alloc-guard: %llu allocs in %lld steps vs %llu in %lld; "
               "marginal growth %llu (slack %llu)\n",
               static_cast<unsigned long long>(short_run),
               static_cast<long long>(t),
               static_cast<unsigned long long>(long_run),
               static_cast<long long>(2 * t),
               static_cast<unsigned long long>(growth),
               static_cast<unsigned long long>(kSlack));
  if (growth > kSlack) {
    std::fprintf(stderr, "alloc-guard: FAIL — steady state allocates\n");
    return 1;
  }
  return 0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  using rts::cli::require_double;
  using rts::cli::require_int;
  DriverOptions opt;
  const auto need = [&](int& i) -> std::string_view {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      rts::cli::usage_exit(kUsage);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--steps") {
      opt.steps = require_int(need(i), "--steps", kUsage, 0, INT64_MAX / 4);
    } else if (arg == "--channels") {
      opt.channels = require_int(need(i), "--channels", kUsage, 1, 65536);
    } else if (arg == "--mean-frame") {
      opt.mean_frame = require_int(need(i), "--mean-frame", kUsage, 1,
                                   INT64_MAX / 8);
    } else if (arg == "--frames-per-channel") {
      opt.frames_per_channel = require_int(need(i), "--frames-per-channel",
                                           kUsage, 0, INT64_MAX / 4);
    } else if (arg == "--source") {
      opt.source = std::string(need(i));
    } else if (arg == "--rate") {
      opt.rate = require_int(need(i), "--rate", kUsage, 1, INT64_MAX / 8);
    } else if (arg == "--delay") {
      opt.delay = require_int(need(i), "--delay", kUsage, 0, 1 << 24);
    } else if (arg == "--link-delay") {
      opt.link_delay = require_int(need(i), "--link-delay", kUsage, 0,
                                   1 << 24);
    } else if (arg == "--buffer") {
      opt.buffer = require_int(need(i), "--buffer", kUsage, 0, INT64_MAX / 8);
    } else if (arg == "--policy") {
      opt.policy = std::string(need(i));
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(
          require_int(need(i), "--seed", kUsage, 0, INT64_MAX));
    } else if (arg == "--reconfig-every") {
      opt.reconfig_every = require_int(need(i), "--reconfig-every", kUsage, 0,
                                       INT64_MAX / 4);
    } else if (arg == "--fault-schedule") {
      opt.fault_schedule = std::string(need(i));
    } else if (arg == "--fault-period") {
      opt.fault_period = require_int(need(i), "--fault-period", kUsage, 0,
                                     INT64_MAX / 4);
    } else if (arg == "--slo-stall") {
      opt.slo.max_stall_rate =
          require_double(need(i), "--slo-stall", kUsage, 0.0, 1.0);
    } else if (arg == "--slo-loss") {
      opt.slo.max_weighted_loss_rate =
          require_double(need(i), "--slo-loss", kUsage, 0.0, 1.0);
    } else if (arg == "--slo-occupancy") {
      opt.slo.max_occupancy_frac =
          require_double(need(i), "--slo-occupancy", kUsage, 0.0, 1.0);
    } else if (arg == "--slo-window") {
      opt.slo.window = require_int(need(i), "--slo-window", kUsage, 1,
                                   1 << 24);
    } else if (arg == "--slo-cooldown") {
      opt.slo.cooldown = require_int(need(i), "--slo-cooldown", kUsage, 0,
                                     INT64_MAX / 4);
    } else if (arg == "--no-slo") {
      opt.slo.enabled = false;
    } else if (arg == "--no-ladder") {
      opt.ladder = false;
    } else if (arg == "--stall-timeout") {
      opt.stall_timeout = require_int(need(i), "--stall-timeout", kUsage, 0,
                                      INT64_MAX / 4);
    } else if (arg == "--max-drain") {
      opt.max_drain = require_int(need(i), "--max-drain", kUsage, 0,
                                  INT64_MAX / 4);
    } else if (arg == "--snapshot") {
      opt.snapshot_path = std::string(need(i));
    } else if (arg == "--snapshot-every") {
      opt.snapshot_every = require_int(need(i), "--snapshot-every", kUsage, 0,
                                       INT64_MAX / 4);
    } else if (arg == "--incident-dir") {
      opt.incident_dir = std::string(need(i));
    } else if (arg == "--stats-socket") {
      opt.stats_socket = std::string(need(i));
    } else if (arg == "--stats-publish-every") {
      opt.stats_publish_every = require_int(need(i), "--stats-publish-every",
                                            kUsage, 0, INT64_MAX / 4);
    } else if (arg == "--series-every") {
      opt.series_every = require_int(need(i), "--series-every", kUsage, 0,
                                     INT64_MAX / 4);
    } else if (arg == "--series-capacity") {
      opt.series_capacity = require_int(need(i), "--series-capacity", kUsage,
                                        1, 1 << 20);
    } else if (arg == "--burn-short") {
      opt.burn_short = require_int(need(i), "--burn-short", kUsage, 1,
                                   1 << 20);
    } else if (arg == "--burn-long") {
      opt.burn_long = require_int(need(i), "--burn-long", kUsage, 1, 1 << 20);
    } else if (arg == "--alloc-guard") {
      opt.alloc_guard = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::puts(kUsage);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      rts::cli::usage_exit(kUsage);
    }
  }
  try {
    return opt.alloc_guard ? run_alloc_guard(opt) : run_soak(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "soak_driver: %s\n", e.what());
    return 2;
  }
}
