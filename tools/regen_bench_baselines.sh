#!/usr/bin/env bash
# Regenerates the committed perf-regression baselines in bench/baselines/.
#
# The recipe is pinned: every figure/table bench runs with
# `--quick --frames 120 --threads 1 --json` — the same workload the CI
# bench-smoke and bench-regression jobs use. Results are deterministic
# (DESIGN.md Sect. 9), so a baseline only changes when the simulation or
# the report schema genuinely changes; wall-clock fields differ run to run
# but tools/bench_diff.py quarantines them.
#
# Usage: tools/regen_bench_baselines.sh [BUILD_DIR]   (default: build)
#
# Rerun this after any intentional behaviour change, eyeball the diff, and
# commit the updated BENCH_*.json files together with the change.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
out="$repo/bench/baselines"

benches=(
  fig2_weighted_loss_above_rate
  fig3_weighted_loss_below_rate
  fig4_benefit_vs_rate
  fig5_optimal_slice_granularity
  fig6_weighted_loss_slice_granularity
  fig_robustness
  tab_tradeoff
  tab_competitive
  tab_lossless
  tab_alternatives
  abl_proactive
  abl_jitter
  abl_dependency
  abl_tandem
  abl_event_engine
  gateway
)

mkdir -p "$out"
for bench in "${benches[@]}"; do
  bin="$build/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "missing $bin — build the bench targets first" >&2
    exit 1
  fi
  echo "baseline: $bench"
  "$bin" --quick --frames 120 --threads 1 --json "$out/BENCH_$bench.json" \
    > /dev/null
done

echo "wrote ${#benches[@]} baselines to $out"
