#!/usr/bin/env python3
"""Validates BENCH_*.json artifacts produced by the bench `--json` mode.

Two document kinds are accepted:

* the repo's own `rtsmooth-bench-v1` schema (figure/table benches):
    {
      "schema": "rtsmooth-bench-v1",
      "bench": "<name>",
      "options": {"frames": int, "quick": bool, "threads": int},
      "series": [{"name": str, "header": [str], "rows": [[str]]}, ...],
      "runner": {"tasks": int, "threads": int, "total_task_us": int,
                 "max_task_us": int, "queue_us": int, "wall_us": int},
      "registry": {"counters": {...}, "gauges": {...},
                   "histograms": {...}, "timers": {...}},
    }
  with at least one series, every series non-empty, and every row the same
  width as its header;

* google-benchmark's native JSON (micro benches), recognised by its
  "context"/"benchmarks" top-level keys, with at least one benchmark entry.

Usage: validate_bench_json.py FILE [FILE...]; exits non-zero on the first
invalid or empty document, printing the reason.
"""

import json
import sys


def fail(path, reason):
    print(f"FAIL {path}: {reason}", file=sys.stderr)
    sys.exit(1)


def check_histogram(path, name, hist):
    for key in ("count", "sum", "min", "max", "bounds", "counts"):
        if key not in hist:
            fail(path, f"histogram {name!r} lacks {key!r}")
    if len(hist["counts"]) != len(hist["bounds"]) + 1:
        fail(path, f"histogram {name!r}: counts must be bounds+1 buckets")
    if sum(hist["counts"]) != hist["count"]:
        fail(path, f"histogram {name!r}: bucket counts do not sum to count")
    if list(hist["bounds"]) != sorted(set(hist["bounds"])):
        fail(path, f"histogram {name!r}: bounds not strictly increasing")


def check_registry(path, registry):
    for section in ("counters", "gauges", "histograms"):
        if section not in registry:
            fail(path, f"registry lacks {section!r}")
        if not isinstance(registry[section], dict):
            fail(path, f"registry {section!r} is not an object")
    for name, hist in registry["histograms"].items():
        check_histogram(path, name, hist)
    for name, hist in registry.get("timers", {}).items():
        check_histogram(path, name, hist)


def check_rtsmooth(path, doc):
    for key in ("bench", "options", "series", "runner", "registry"):
        if key not in doc:
            fail(path, f"missing top-level key {key!r}")
    if not doc["bench"]:
        fail(path, "empty bench name")
    if not isinstance(doc["series"], list) or not doc["series"]:
        fail(path, "series must be a non-empty array")
    for series in doc["series"]:
        name = series.get("name", "<unnamed>")
        header, rows = series.get("header"), series.get("rows")
        if not header:
            fail(path, f"series {name!r} has an empty header")
        if not rows:
            fail(path, f"series {name!r} has no rows")
        for row in rows:
            if len(row) != len(header):
                fail(path, f"series {name!r}: row width {len(row)} != "
                           f"header width {len(header)}")
    runner = doc["runner"]
    for key in ("tasks", "threads", "total_task_us", "max_task_us",
                "queue_us", "wall_us"):
        if key not in runner:
            fail(path, f"runner lacks {key!r}")
    check_registry(path, doc["registry"])


def check_google_benchmark(path, doc):
    if not doc.get("benchmarks"):
        fail(path, "google-benchmark document has no benchmark entries")
    for entry in doc["benchmarks"]:
        if "name" not in entry:
            fail(path, "benchmark entry lacks a name")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            fail(path, f"unreadable: {e}")
        if not text.strip():
            fail(path, "empty file")
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as e:
            fail(path, f"invalid JSON: {e}")
        if not isinstance(doc, dict):
            fail(path, "top level is not an object")
        if doc.get("schema") == "rtsmooth-bench-v1":
            check_rtsmooth(path, doc)
        elif "benchmarks" in doc and "context" in doc:
            check_google_benchmark(path, doc)
        else:
            fail(path, "unrecognised schema (neither rtsmooth-bench-v1 nor "
                       "google-benchmark output)")
        print(f"OK   {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
