#!/usr/bin/env python3
"""Validates the repo's machine-readable JSON artifacts.

Five document kinds are accepted:

* the repo's own `rtsmooth-bench-v1` schema (figure/table benches):
    {
      "schema": "rtsmooth-bench-v1",
      "bench": "<name>",
      "options": {"frames": int, "quick": bool, "threads": int},
      "series": [{"name": str, "header": [str], "rows": [[str]]}, ...],
      "runner": {"tasks": int, "threads": int, "total_task_us": int,
                 "max_task_us": int, "queue_us": int, "wall_us": int},
      "registry": {"counters": {...}, "gauges": {...},
                   "histograms": {...}, "timers": {...}},
    }
  with at least one series, every series non-empty, and every row the same
  width as its header. The gateway bench attaches an optional quarantined
  top-level `gateway` section (wall-clock throughput, never diffed):
    {"streams": int, "steps": int, "stream_steps": int, "wall_us": int,
     "stream_steps_per_sec": number}
  which, when present, must carry its full key set with positive counts and
  be accompanied by the gateway.* ledger counters in the registry;

* the flight recorder's `rtsmooth-incident-v1` schema
  (obs/flight_recorder.h):
    {
      "schema": "rtsmooth-incident-v1",
      "incident": int,                  # index among captured incidents
      "trigger": {"type": str, "t": int, ...},
      "context": {...},                 # run parameters, self-contained
      "steps_recorded": int,            # >= len(window)
      "window_capacity": int,           # >= 1
      "truncated": bool,                # ring wrapped before capture
      "window": [{step record}, ...],   # chronological, t strictly rising
    }

* the serving daemon's `rtsmooth-soak-v1` snapshot (daemon/rtsmoothd.h):
    {
      "schema": "rtsmooth-soak-v1",
      "daemon": {...},                  # effective engine configuration
      "steps": int, "engine_steps": int, "stop_signal": int,
      "reconfigs": {...}, "degradation": {...}, "slo": {...},
      "ingest": {...}, "admission": {...}, "report": {...},
      "stats": {...},                   # optional: rtsmooth-stats-v1
      "registry": {...},                # same shape as the bench registry
    }
  with every section carrying its full key set, the ingest ledger holding,
  the byte-conservation invariant holding in terminal snapshots (a live
  mid-run document has bytes in flight), and rates inside [0, 1]. The
  optional `stats` section (present when the daemon served a live stats
  endpoint) carries its own `rtsmooth-stats-v1` schema tag and the
  endpoint-side tallies, all non-negative. The optional `series`
  section embeds a timeline export (below) cross-checked against the
  snapshot's registry;

* the daemon timeline's `rtsmooth-series-v1` export (obs/timeline.h,
  the stats endpoint's /series route), standalone or embedded:
    {
      "schema": "rtsmooth-series-v1",
      "slot_steps": int, "capacity": int, "slots": int, "evicted": int,
      "slot_end_steps": [int],          # strictly rising, <= capacity
      "counters": {name: {"base": int, "deltas": [int], "total": int}},
      "gauges": {name: [int]},          # non-decreasing high-watermarks
      "histograms": {name: {"bounds": [...], "count": {...}, "sum": {...},
                            "bucket_base": [...], "buckets": [[...]]}},
      "burn": {"short_slots": int, "long_slots": int, "budgets": [...]},
    }
  where every delta column satisfies base + sum(deltas) == total, every
  per-slot histogram bucket row sums to that slot's count delta, counter
  deltas are non-negative, and burn budgets carry sane fractions,
  thresholds, and window burns;

* google-benchmark's native JSON (micro benches), recognised by its
  "context"/"benchmarks" top-level keys, with at least one benchmark entry.

A file that is not JSON but whose first non-blank line is a `# TYPE`
comment or a Prometheus sample line is linted as Prometheus text
exposition (the stats endpoint's /metrics route): every sample must have a
`# TYPE` of counter/gauge/histogram, every declared metric must have
samples, names carry the rtsmooth_ prefix, and histogram series must be
cumulative with a closing le="+Inf" bucket that equals _count.

Usage: validate_bench_json.py FILE [FILE...]; checks every file, reports
ALL violations found (not just the first), and exits non-zero when any
file is invalid.
"""

import json
import re
import sys

STEP_RECORD_KEYS = (
    "t", "arrived", "sent", "delivered", "played", "dropped_server",
    "dropped_client", "retransmitted", "server_occupancy",
    "client_occupancy", "link_idle", "stalled",
)


def check_histogram(errors, name, hist):
    missing = [k for k in ("count", "sum", "min", "max", "bounds", "counts")
               if k not in hist]
    if missing:
        errors.append(f"histogram {name!r} lacks {missing}")
        return
    if len(hist["counts"]) != len(hist["bounds"]) + 1:
        errors.append(f"histogram {name!r}: counts must be bounds+1 buckets")
    if sum(hist["counts"]) != hist["count"]:
        errors.append(f"histogram {name!r}: bucket counts do not sum to count")
    if list(hist["bounds"]) != sorted(set(hist["bounds"])):
        errors.append(f"histogram {name!r}: bounds not strictly increasing")


def check_registry(errors, registry):
    for section in ("counters", "gauges", "histograms"):
        if section not in registry:
            errors.append(f"registry lacks {section!r}")
        elif not isinstance(registry[section], dict):
            errors.append(f"registry {section!r} is not an object")
    for name, hist in registry.get("histograms", {}).items():
        check_histogram(errors, name, hist)
    for name, hist in registry.get("timers", {}).items():
        check_histogram(errors, name, hist)


GATEWAY_SECTION_KEYS = ("streams", "steps", "stream_steps", "wall_us",
                        "stream_steps_per_sec")

GATEWAY_LEDGER_COUNTERS = ("gateway.admitted_bytes", "gateway.served_bytes",
                           "gateway.dropped_bytes", "gateway.unserved_bytes")


def check_gateway_section(errors, doc):
    """The gateway bench's quarantined wall-clock section, when present."""
    section = doc["gateway"]
    if not isinstance(section, dict):
        errors.append("gateway section is not an object")
        return
    missing = [k for k in GATEWAY_SECTION_KEYS if k not in section]
    if missing:
        errors.append(f"gateway section lacks {missing}")
    for key in ("streams", "steps", "stream_steps", "wall_us"):
        value = section.get(key)
        if key in section and (not isinstance(value, int) or value < 1):
            errors.append(f"gateway {key} must be a positive int, "
                          f"got {value!r}")
    streams, steps = section.get("streams"), section.get("steps")
    total = section.get("stream_steps")
    if all(isinstance(v, int) for v in (streams, steps, total)) \
            and total != streams * steps:
        errors.append(f"gateway stream_steps {total} != "
                      f"streams * steps ({streams} * {steps})")
    rate = section.get("stream_steps_per_sec")
    if "stream_steps_per_sec" in section \
            and (not isinstance(rate, (int, float)) or rate <= 0):
        errors.append(f"gateway stream_steps_per_sec must be a positive "
                      f"number, got {rate!r}")
    counters = doc.get("registry", {}).get("counters", {})
    lacks = [k for k in GATEWAY_LEDGER_COUNTERS if k not in counters]
    if lacks:
        errors.append(f"gateway document lacks ledger counters {lacks}")


def check_rtsmooth(errors, doc):
    missing = [k for k in ("bench", "options", "series", "runner", "registry")
               if k not in doc]
    if missing:
        errors.append(f"missing top-level keys {missing}")
    if "bench" in doc and not doc["bench"]:
        errors.append("empty bench name")
    series = doc.get("series")
    if not isinstance(series, list) or not series:
        errors.append("series must be a non-empty array")
        series = []
    for entry in series:
        name = entry.get("name", "<unnamed>")
        header, rows = entry.get("header"), entry.get("rows")
        if not header:
            errors.append(f"series {name!r} has an empty header")
        if not rows:
            errors.append(f"series {name!r} has no rows")
        for row in rows or []:
            if header and len(row) != len(header):
                errors.append(f"series {name!r}: row width {len(row)} != "
                              f"header width {len(header)}")
    runner = doc.get("runner", {})
    missing = [k for k in ("tasks", "threads", "total_task_us", "max_task_us",
                           "queue_us", "wall_us") if k not in runner]
    if missing:
        errors.append(f"runner lacks {missing}")
    check_registry(errors, doc.get("registry", {}))
    if "gateway" in doc:
        check_gateway_section(errors, doc)


def check_incident(errors, doc):
    missing = [k for k in ("incident", "trigger", "context", "steps_recorded",
                           "window_capacity", "truncated", "window")
               if k not in doc]
    if missing:
        errors.append(f"missing top-level keys {missing}")
        return
    trigger = doc["trigger"]
    if not isinstance(trigger, dict):
        errors.append("trigger is not an object")
    else:
        if not trigger.get("type"):
            errors.append("trigger lacks a type")
        if not isinstance(trigger.get("t"), int):
            errors.append("trigger lacks an integer time 't'")
    if not isinstance(doc["context"], dict):
        errors.append("context is not an object")
    if not isinstance(doc["truncated"], bool):
        errors.append("truncated is not a bool")
    capacity = doc["window_capacity"]
    if not isinstance(capacity, int) or capacity < 1:
        errors.append(f"window_capacity must be a positive int, "
                      f"got {capacity!r}")
    window = doc["window"]
    if not isinstance(window, list) or not window:
        errors.append("window must be a non-empty array")
        return
    if isinstance(capacity, int) and len(window) > capacity:
        errors.append(f"window has {len(window)} steps, over the "
                      f"capacity {capacity}")
    if doc["truncated"] is True and isinstance(capacity, int) \
            and len(window) != capacity:
        errors.append("truncated incident must carry a full window "
                      f"({len(window)} != {capacity})")
    steps = doc["steps_recorded"]
    if not isinstance(steps, int) or steps < len(window):
        errors.append(f"steps_recorded ({steps!r}) < window length "
                      f"({len(window)})")
    prev_t = None
    for i, record in enumerate(window):
        if not isinstance(record, dict):
            errors.append(f"window[{i}] is not an object")
            continue
        missing = [k for k in STEP_RECORD_KEYS if k not in record]
        if missing:
            errors.append(f"window[{i}] lacks {missing}")
        t = record.get("t")
        if prev_t is not None and isinstance(t, int) and t <= prev_t:
            errors.append(f"window[{i}]: t={t} not after t={prev_t}")
        if isinstance(t, int):
            prev_t = t


SOAK_SECTION_KEYS = {
    "daemon": ("channels", "policy", "server_buffer", "client_buffer",
               "rate", "smoothing_delay", "link_delay", "max_live_runs",
               "balanced"),
    "reconfigs": ("applied", "rejected", "drain_steps", "max_lag",
                  "queued", "forced_residual"),
    "degradation": ("level", "rung", "escalations", "deescalations",
                    "value_floor", "shed_channels"),
    "slo": ("breaches", "incidents_captured", "incidents_written",
            "cooldown_suppressed", "triggers", "stall_rate", "loss_rate",
            "occupancy_step_frac"),
    "ingest": ("polled_frames", "polled_bytes", "stalled_polls", "retries",
               "source_ended", "timed_out", "pending_depth",
               "truncated_tail_bytes", "rejected_records"),
    "admission": ("admitted_bytes", "admitted_frames",
                  "budget_refused_bytes", "budget_refused_frames",
                  "channel_shed_bytes", "channel_shed_frames",
                  "slot_refused_bytes", "slot_refused_frames",
                  "unserved_bytes", "unserved_frames", "floor_shed_bytes",
                  "ledger_conserves"),
    "report": ("offered_bytes", "offered_weight", "played_bytes",
               "dropped_server_bytes", "dropped_client_overflow_bytes",
               "dropped_client_late_bytes", "lost_link_bytes",
               "residual_bytes", "retransmitted_bytes", "stall_steps",
               "max_server_occupancy", "max_client_occupancy",
               "max_lateness", "weighted_loss", "conserves"),
}

STATS_COUNT_KEYS = ("accepted", "served_json", "served_metrics",
                    "served_series", "served_health", "unavailable",
                    "bad_requests", "not_found", "io_errors")


def check_stats_section(errors, section):
    """The optional endpoint-tally section (rtsmooth-stats-v1)."""
    if not isinstance(section, dict):
        errors.append("stats section is not an object")
        return
    if section.get("schema") != "rtsmooth-stats-v1":
        errors.append(f"stats schema must be 'rtsmooth-stats-v1', "
                      f"got {section.get('schema')!r}")
    missing = [k for k in ("socket_path", "running") + STATS_COUNT_KEYS
               if k not in section]
    if missing:
        errors.append(f"stats section lacks {missing}")
    if "socket_path" in section and not section["socket_path"]:
        errors.append("stats socket_path is empty")
    for key in STATS_COUNT_KEYS:
        value = section.get(key)
        if key in section and (not isinstance(value, int) or value < 0):
            errors.append(f"stats {key} must be a non-negative int, "
                          f"got {value!r}")


def _int_list(value):
    return isinstance(value, list) and all(isinstance(v, int) for v in value)


def check_delta_series(errors, label, series, slots, monotone=True):
    """One {base, deltas, total} column of a rtsmooth-series-v1 document.

    The conservation invariant base + sum(deltas) == total is structural:
    the timeline folds evicted slots into base, so any violation means the
    exporter dropped or double-counted a delta."""
    if not isinstance(series, dict):
        errors.append(f"series {label} is not an object")
        return
    missing = [k for k in ("base", "deltas", "total") if k not in series]
    if missing:
        errors.append(f"series {label} lacks {missing}")
        return
    base, deltas, total = series["base"], series["deltas"], series["total"]
    if not isinstance(base, int) or not isinstance(total, int) \
            or not _int_list(deltas):
        errors.append(f"series {label}: base/deltas/total must be ints")
        return
    if len(deltas) != slots:
        errors.append(f"series {label}: {len(deltas)} deltas for "
                      f"{slots} slots")
    if monotone and any(d < 0 for d in deltas):
        errors.append(f"series {label}: negative delta "
                      "(the underlying metric is monotone)")
    if base + sum(deltas) != total:
        errors.append(f"series {label}: base {base} + deltas "
                      f"{sum(deltas)} != total {total}")


def check_series_histogram(errors, name, hist, slots):
    if not isinstance(hist, dict):
        errors.append(f"series histogram {name!r} is not an object")
        return
    missing = [k for k in ("bounds", "count", "sum", "bucket_base",
                           "buckets") if k not in hist]
    if missing:
        errors.append(f"series histogram {name!r} lacks {missing}")
        return
    bounds = hist["bounds"]
    if not _int_list(bounds) or list(bounds) != sorted(set(bounds)):
        errors.append(f"series histogram {name!r}: bounds not strictly "
                      "increasing ints")
        return
    width = len(bounds) + 1
    check_delta_series(errors, f"histogram {name!r} count", hist["count"],
                       slots)
    # Sum deltas may be negative when samples are (weights are not).
    check_delta_series(errors, f"histogram {name!r} sum", hist["sum"],
                       slots, monotone=False)
    base = hist["bucket_base"]
    if not _int_list(base) or len(base) != width:
        errors.append(f"series histogram {name!r}: bucket_base must hold "
                      f"{width} ints")
        base = None
    rows = hist["buckets"]
    if not isinstance(rows, list) or len(rows) != slots:
        held = len(rows) if isinstance(rows, list) else "?"
        errors.append(f"series histogram {name!r}: {held} bucket rows "
                      f"for {slots} slots")
        return
    count = hist["count"] if isinstance(hist["count"], dict) else {}
    count_deltas = count.get("deltas")
    for i, row in enumerate(rows):
        if not _int_list(row) or len(row) != width:
            errors.append(f"series histogram {name!r}: bucket row {i} "
                          f"must hold {width} ints")
            return
        if any(v < 0 for v in row):
            errors.append(f"series histogram {name!r}: negative bucket "
                          f"delta in row {i}")
        # Every record lands its weight in exactly one bucket AND in
        # count, so per slot the bucket deltas must sum to the count
        # delta.
        if _int_list(count_deltas) and i < len(count_deltas) \
                and sum(row) != count_deltas[i]:
            errors.append(f"series histogram {name!r}: row {i} bucket "
                          f"deltas sum to {sum(row)}, count delta is "
                          f"{count_deltas[i]}")
    if base is not None and isinstance(count.get("base"), int) \
            and sum(base) != count["base"]:
        errors.append(f"series histogram {name!r}: bucket_base sums to "
                      f"{sum(base)}, count base is {count['base']}")


def check_series_burn(errors, burn):
    if not isinstance(burn, dict):
        errors.append("series burn is not an object")
        return
    missing = [k for k in ("short_slots", "long_slots", "budgets")
               if k not in burn]
    if missing:
        errors.append(f"series burn lacks {missing}")
        return
    short, long_ = burn["short_slots"], burn["long_slots"]
    if not isinstance(short, int) or short < 1:
        errors.append(f"series burn short_slots must be a positive int, "
                      f"got {short!r}")
    if not isinstance(long_, int) \
            or (isinstance(short, int) and long_ < short):
        errors.append(f"series burn long_slots {long_!r} must be >= "
                      f"short_slots {short!r}")
    budgets = burn["budgets"]
    if not isinstance(budgets, list):
        errors.append("series burn budgets is not a list")
        return
    for i, budget in enumerate(budgets):
        if not isinstance(budget, dict):
            errors.append(f"series burn budget {i} is not an object")
            continue
        label = budget.get("name", i)
        missing = [k for k in ("name", "budget", "threshold", "bad",
                               "total", "short_burn", "long_burn",
                               "firing", "alerts") if k not in budget]
        if missing:
            errors.append(f"series burn budget {label!r} lacks {missing}")
            continue
        fraction = budget["budget"]
        if not isinstance(fraction, (int, float)) or not 0 < fraction <= 1:
            errors.append(f"series burn budget {label!r}: budget fraction "
                          f"{fraction!r} outside (0, 1]")
        threshold = budget["threshold"]
        if not isinstance(threshold, (int, float)) or threshold <= 0:
            errors.append(f"series burn budget {label!r}: threshold "
                          f"{threshold!r} must be positive")
        for key in ("bad", "total"):
            names = budget[key]
            if not isinstance(names, list) or not names \
                    or not all(isinstance(n, str) for n in names):
                errors.append(f"series burn budget {label!r}: {key} must "
                              "be a non-empty list of counter names")
        for key in ("short_burn", "long_burn"):
            value = budget[key]
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"series burn budget {label!r}: {key} "
                              f"{value!r} must be non-negative")
        if not isinstance(budget["firing"], bool):
            errors.append(f"series burn budget {label!r}: firing must be "
                          "a bool")
        if not isinstance(budget["alerts"], int) or budget["alerts"] < 0:
            errors.append(f"series burn budget {label!r}: alerts must be "
                          "a non-negative int")


def check_series(errors, doc, registry=None):
    """The in-daemon timeline export (rtsmooth-series-v1, obs/timeline.h):
    delta-encoded counter/gauge/histogram history over a ring of
    fixed-cadence slots, plus SLO burn-rate windows. When the enclosing
    snapshot's registry is supplied, series totals may not exceed the
    live registry values — equality is only guaranteed in a terminal
    snapshot, where the daemon samples the timeline one last time right
    before serialising (a live document's registry can be ahead of the
    last sampling cadence)."""
    if not isinstance(doc, dict):
        errors.append("series section is not an object")
        return
    if doc.get("schema") != "rtsmooth-series-v1":
        errors.append(f"series schema must be 'rtsmooth-series-v1', "
                      f"got {doc.get('schema')!r}")
    missing = [k for k in ("slot_steps", "capacity", "slots", "evicted",
                           "slot_end_steps", "counters", "gauges",
                           "histograms", "burn") if k not in doc]
    if missing:
        errors.append(f"series lacks {missing}")
        return
    for key in ("slot_steps", "capacity"):
        value = doc.get(key)
        if not isinstance(value, int) or value < 1:
            errors.append(f"series {key} must be a positive int, "
                          f"got {value!r}")
    for key in ("slots", "evicted"):
        value = doc.get(key)
        if not isinstance(value, int) or value < 0:
            errors.append(f"series {key} must be a non-negative int, "
                          f"got {value!r}")
    ends = doc.get("slot_end_steps")
    if not _int_list(ends):
        errors.append("series slot_end_steps must be a list of ints")
        return
    if isinstance(doc.get("slots"), int) and len(ends) != doc["slots"]:
        errors.append(f"series slots {doc['slots']} != "
                      f"len(slot_end_steps) {len(ends)}")
    if isinstance(doc.get("capacity"), int) and len(ends) > doc["capacity"]:
        errors.append(f"series holds {len(ends)} slots, over its "
                      f"capacity {doc['capacity']}")
    for a, b in zip(ends, ends[1:]):
        if b <= a:
            errors.append(f"series slot_end_steps not strictly rising "
                          f"at {a} -> {b}")
            break
    nslots = len(ends)
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        errors.append("series counters is not an object")
        counters = {}
    for name, column in counters.items():
        check_delta_series(errors, f"counter {name!r}", column, nslots)
    gauges = doc.get("gauges")
    if not isinstance(gauges, dict):
        errors.append("series gauges is not an object")
        gauges = {}
    for name, values in gauges.items():
        if not _int_list(values):
            errors.append(f"series gauge {name!r} is not a list of ints")
            continue
        if len(values) != nslots:
            errors.append(f"series gauge {name!r}: {len(values)} values "
                          f"for {nslots} slots")
        if any(b < a for a, b in zip(values, values[1:])):
            errors.append(f"series gauge {name!r} decreases (gauges are "
                          "high-watermarks)")
    hists = doc.get("histograms")
    if not isinstance(hists, dict):
        errors.append("series histograms is not an object")
        hists = {}
    for name, hist in hists.items():
        check_series_histogram(errors, name, hist, nslots)
    check_series_burn(errors, doc.get("burn"))
    if isinstance(registry, dict):
        live = registry.get("counters", {})
        if isinstance(live, dict):
            for name, column in counters.items():
                if not isinstance(column, dict):
                    continue
                total, value = column.get("total"), live.get(name)
                if isinstance(total, int) and isinstance(value, int) \
                        and total > value:
                    errors.append(f"series counter {name!r} total {total} "
                                  f"exceeds registry value {value}")


def check_soak(errors, doc):
    missing = [k for k in ("daemon", "steps", "engine_steps", "stop_signal",
                           "reconfigs", "degradation", "slo", "ingest",
                           "admission", "report", "registry")
               if k not in doc]
    if missing:
        errors.append(f"missing top-level keys {missing}")
    for key in ("steps", "engine_steps", "stop_signal"):
        value = doc.get(key)
        if key in doc and (not isinstance(value, int) or value < 0):
            errors.append(f"{key} must be a non-negative int, got {value!r}")
    for section, keys in SOAK_SECTION_KEYS.items():
        body = doc.get(section)
        if section not in doc:
            continue
        if not isinstance(body, dict):
            errors.append(f"{section} is not an object")
            continue
        lacks = [k for k in keys if k not in body]
        if lacks:
            errors.append(f"{section} lacks {lacks}")
    slo = doc.get("slo", {})
    if isinstance(slo, dict):
        breaches = slo.get("breaches")
        if breaches is not None:
            if not isinstance(breaches, dict):
                errors.append("slo breaches is not an object")
            else:
                lacks = [k for k in ("stall", "loss", "occupancy", "burn")
                         if k not in breaches]
                if lacks:
                    errors.append(f"slo breaches lacks {lacks}")
        for key in ("stall_rate", "loss_rate", "occupancy_step_frac"):
            rate = slo.get(key)
            if isinstance(rate, (int, float)) and not 0 <= rate <= 1:
                errors.append(f"slo {key} {rate!r} outside [0, 1]")
    admission = doc.get("admission", {})
    if isinstance(admission, dict) \
            and admission.get("ledger_conserves") is False:
        errors.append("ingest ledger does not conserve "
                      "(frames were lost outside the admission accounts)")
    report = doc.get("report", {})
    if isinstance(report, dict):
        # Bytes in flight make a *live* document (periodic write or
        # endpoint scrape) legitimately non-conserving; only a terminal
        # snapshot — written after the shutdown drain — must balance.
        if report.get("conserves") is False and doc.get("stop_signal") != 0:
            errors.append("report does not conserve "
                          "(offered bytes != played + dropped + residual)")
        loss = report.get("weighted_loss")
        if isinstance(loss, (int, float)) and not 0 <= loss <= 1:
            errors.append(f"report weighted_loss {loss!r} outside [0, 1]")
        late = report.get("max_lateness")
        if "max_lateness" in report \
                and (not isinstance(late, int) or late < 0):
            errors.append(f"report max_lateness must be a non-negative "
                          f"int, got {late!r}")
    if "stats" in doc:
        check_stats_section(errors, doc["stats"])
    if "series" in doc:
        check_series(errors, doc["series"], doc.get("registry"))
    check_registry(errors, doc.get("registry", {}))


PROM_TYPES = ("counter", "gauge", "histogram")

PROM_SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'          # metric name
    r'(\{[^{}]*\})?'                         # optional label set
    r' (-?[0-9]+(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?|[-+]?Inf|NaN)$')

PROM_LE_RE = re.compile(r'le="([^"]*)"')


def looks_like_prometheus(text):
    """True when the first non-blank line is exposition-format."""
    for line in text.splitlines():
        if not line.strip():
            continue
        return line.startswith("# TYPE ") or bool(PROM_SAMPLE_RE.match(line))
    return False


def check_prometheus(errors, text):
    """Lints Prometheus 0.0.4 text exposition as obs/prometheus.cpp emits
    it: TYPE-before-samples, rtsmooth_-prefixed names, and internally
    consistent cumulative histogram series."""
    types = {}          # metric name -> declared type
    sampled = set()     # metric names with at least one sample
    buckets = {}        # histogram name -> [(le, cumulative count)]
    counts = {}         # histogram name -> _count value
    sums = set()        # histogram names with a _sum sample
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "TYPE":
                errors.append(f"line {lineno}: unexpected comment {line!r} "
                              "(only '# TYPE <name> <type>' is emitted)")
                continue
            name, kind = parts[2], parts[3]
            if kind not in PROM_TYPES:
                errors.append(f"line {lineno}: unknown type {kind!r} "
                              f"for {name!r}")
            if not name.startswith("rtsmooth_"):
                errors.append(f"line {lineno}: metric {name!r} lacks the "
                              "rtsmooth_ prefix")
            if name in types:
                errors.append(f"line {lineno}: duplicate # TYPE for "
                              f"{name!r}")
            types[name] = kind
            continue
        m = PROM_SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name, labels, value = m.groups()
        base, suffix = name, None
        for sfx in ("_bucket", "_sum", "_count"):
            if name.endswith(sfx) \
                    and types.get(name[:-len(sfx)]) == "histogram":
                base, suffix = name[:-len(sfx)], sfx
                break
        if base not in types:
            errors.append(f"line {lineno}: sample {name!r} precedes its "
                          "# TYPE declaration")
            continue
        kind = types[base]
        if kind == "histogram" and suffix is None:
            errors.append(f"line {lineno}: bare sample for histogram "
                          f"{base!r} (expected _bucket/_sum/_count)")
            continue
        if kind != "histogram" and labels:
            errors.append(f"line {lineno}: unexpected labels on {kind} "
                          f"{name!r}")
        sampled.add(base)
        if suffix == "_bucket":
            le = PROM_LE_RE.search(labels or "")
            if le is None:
                errors.append(f"line {lineno}: bucket of {base!r} without "
                              "an le label")
                continue
            bound = float("inf") if le.group(1) == "+Inf" \
                else float(le.group(1))
            buckets.setdefault(base, []).append((bound, float(value)))
        elif suffix == "_count":
            counts[base] = float(value)
        elif suffix == "_sum":
            sums.add(base)
    for name in types:
        if name not in sampled:
            errors.append(f"# TYPE {name} declared but never sampled")
    for name, kind in types.items():
        if kind != "histogram" or name not in sampled:
            continue
        series = buckets.get(name, [])
        bounds = [b for b, _ in series]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            errors.append(f"histogram {name}: le bounds not strictly "
                          "increasing")
        if not bounds or bounds[-1] != float("inf"):
            errors.append(f'histogram {name}: missing le="+Inf" bucket')
        cumulative = [c for _, c in series]
        if any(a > b for a, b in zip(cumulative, cumulative[1:])):
            errors.append(f"histogram {name}: bucket counts not cumulative")
        if name not in counts:
            errors.append(f"histogram {name}: missing _count sample")
        elif cumulative and cumulative[-1] != counts[name]:
            errors.append(f"histogram {name}: _count {counts[name]} != "
                          f'le="+Inf" bucket {cumulative[-1]}')
        if name not in sums:
            errors.append(f"histogram {name}: missing _sum sample")


def check_google_benchmark(errors, doc):
    if not doc.get("benchmarks"):
        errors.append("google-benchmark document has no benchmark entries")
        return
    for i, entry in enumerate(doc["benchmarks"]):
        if "name" not in entry:
            errors.append(f"benchmark entry {i} lacks a name")


def check_file(path):
    """Returns the list of violations in `path` (empty = valid)."""
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        return [f"unreadable: {e}"]
    if not text.strip():
        return ["empty file"]
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        if looks_like_prometheus(text):
            check_prometheus(errors, text)
            return errors
        return [f"invalid JSON: {e}"]
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    if doc.get("schema") == "rtsmooth-bench-v1":
        check_rtsmooth(errors, doc)
    elif doc.get("schema") == "rtsmooth-incident-v1":
        check_incident(errors, doc)
    elif doc.get("schema") == "rtsmooth-soak-v1":
        check_soak(errors, doc)
    elif doc.get("schema") == "rtsmooth-series-v1":
        check_series(errors, doc)
    elif "benchmarks" in doc and "context" in doc:
        check_google_benchmark(errors, doc)
    else:
        errors.append("unrecognised schema (not rtsmooth-bench-v1, "
                      "rtsmooth-incident-v1, rtsmooth-soak-v1, "
                      "rtsmooth-series-v1, or google-benchmark output)")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failed = True
            for reason in errors:
                print(f"FAIL {path}: {reason}", file=sys.stderr)
        else:
            print(f"OK   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
