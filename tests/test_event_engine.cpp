// The event-driven core (core/event_engine.h), pinned three ways:
//
//   - EventQueue unit tests: (at, kind) ordering and the documented
//     tie-break so span bounds are deterministic.
//   - Link::next_activity() / advance_to() contracts per link flavour —
//     including the Gilbert-Elliott lazy-replay property (batch catch-up
//     consumes the identical RNG draws as per-step polling).
//   - Slot-vs-event byte identity: full EngineArtifacts (SimReport, JSONL
//     trace, registry snapshot, flight-recorder incidents) under
//     ErasureLink, GilbertElliottLink, ThrottledLink and BoundedJitterLink
//     across seeds, sparse and dense streams, recovery on and off; plus
//     ScheduleRecorder step/run equality with the event core's back-fill.
//   - sweep() grids on the event core: results and merged registry
//     snapshots byte-identical to the slot core at RTSMOOTH_THREADS
//     widths 1, 4 and 8 (mirroring the existing thread-invariance ctests).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/event_engine.h"
#include "core/link.h"
#include "core/schedule.h"
#include "differential.h"
#include "faults/fault_links.h"
#include "policies/policy_factory.h"
#include "random_instances.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"
#include "util/rng.h"

namespace rtsmooth {
namespace {

using sim::EngineKind;
using sim::Event;
using sim::EventKind;
using sim::EventQueue;

// ------------------------------------------------------------- EventQueue

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.push({7, EventKind::Arrival});
  queue.push({3, EventKind::Deadline});
  queue.push({11, EventKind::Drain});
  queue.push({5, EventKind::Horizon});
  std::vector<Time> order;
  while (!queue.empty()) {
    order.push_back(queue.top().at);
    queue.pop();
  }
  EXPECT_EQ(order, (std::vector<Time>{3, 5, 7, 11}));
}

TEST(EventQueue, TieBreaksByKindInDeclarationOrder) {
  EventQueue queue;
  queue.push({4, EventKind::Horizon});
  queue.push({4, EventKind::Deadline});
  queue.push({4, EventKind::Arrival});
  queue.push({4, EventKind::FaultState});
  queue.push({4, EventKind::Drain});
  std::vector<EventKind> order;
  while (!queue.empty()) {
    order.push_back(queue.top().kind);
    queue.pop();
  }
  EXPECT_EQ(order,
            (std::vector<EventKind>{EventKind::Arrival, EventKind::Drain,
                                    EventKind::Deadline,
                                    EventKind::FaultState,
                                    EventKind::Horizon}));
}

TEST(EventQueue, ClearEmptiesTheQueue) {
  EventQueue queue;
  queue.push({1, EventKind::Arrival});
  queue.push({2, EventKind::Drain});
  EXPECT_EQ(queue.size(), 2u);
  queue.clear();
  EXPECT_TRUE(queue.empty());
}

// ---------------------------------------------- Link::next_activity hooks

/// A piece needs a live SliceRun behind it; one static run serves all the
/// direct link tests below.
const SliceRun& test_run() {
  static const SliceRun run = [] {
    SliceRun r;
    r.arrival = 0;
    r.slice_size = 1;
    r.count = 100;
    r.weight = 1.0;
    return r;
  }();
  return run;
}

std::vector<SentPiece> one_piece(Bytes bytes) {
  SentPiece piece;
  piece.run = &test_run();
  piece.bytes = bytes;
  return {piece};
}

TEST(NextActivity, FixedDelayLinkReportsHeadDeliveryStep) {
  FixedDelayLink link(3);
  EXPECT_EQ(link.next_activity(0), kNever);
  link.submit(2, one_piece(8));
  EXPECT_EQ(link.next_activity(3), 5);  // submitted at 2, delay 3
  (void)link.deliver(5);
  EXPECT_EQ(link.next_activity(6), kNever);
}

TEST(NextActivity, ThrottledLinkBacklogWaitsForOpenWindow) {
  // cap_at: 0 at steps 0..2 (mod 4), 4 bytes at step 3 (mod 4).
  faults::ThrottledLink link(std::make_unique<FixedDelayLink>(1),
                             std::vector<Bytes>{0, 0, 0, 4});
  link.submit(0, one_piece(8));  // nothing admitted, 8 bytes queued
  EXPECT_EQ(link.next_activity(1), 3);  // the next positive-cap step
}

TEST(NextActivity, ErasureLinkPendingNackBoundsTheSpan) {
  // loss 1.0: the piece never reaches the inner link; the NACK surfaces at
  // t + 2 * min_delay (symmetric feedback path).
  faults::ErasureLink link(std::make_unique<FixedDelayLink>(2), 1.0,
                           Rng(99));
  (void)link.deliver(0);
  link.submit(0, one_piece(4));
  EXPECT_EQ(link.next_activity(1), 4);
  EXPECT_TRUE(link.deliver(4).empty());
  EXPECT_EQ(link.collect_nacks(4).size(), 1u);
}

// The lazy-replay contract: catching the loss chain up in one advance_to()
// batch must consume the identical RNG draws as polling deliver(t) every
// step, so the state (and every draw after it) agrees.
TEST(NextActivity, GilbertElliottAdvanceToMatchesPerStepPolling) {
  const faults::GilbertElliottConfig ge{.p_good_to_bad = 0.35,
                                        .p_bad_to_good = 0.35,
                                        .loss_good = 0.0,
                                        .loss_bad = 1.0};
  faults::GilbertElliottLink polled(std::make_unique<FixedDelayLink>(1), ge,
                                    Rng(4242));
  faults::GilbertElliottLink batched(std::make_unique<FixedDelayLink>(1), ge,
                                     Rng(4242));
  for (Time t = 0; t <= 60; ++t) (void)polled.deliver(t);
  batched.advance_to(60);
  // With loss probabilities 0/1 the fate of each piece is a pure function
  // of the chain state, so identical states show up as identical delivery
  // and NACK sequences from here on.
  for (Time t = 61; t <= 90; ++t) {
    polled.submit(t, one_piece(1));
    batched.submit(t, one_piece(1));
    const auto a = polled.deliver(t);
    const auto b = batched.deliver(t);
    ASSERT_EQ(a.size(), b.size()) << "delivery divergence at t=" << t;
    ASSERT_EQ(polled.collect_nacks(t).size(), batched.collect_nacks(t).size())
        << "NACK divergence at t=" << t;
  }
}

// ------------------------------------- slot vs event: full byte identity

void expect_slot_event_identical(const Stream& stream,
                                 const sim::SimConfig& config,
                                 std::string_view policy,
                                 const std::string& reproducer,
                                 const difftest::LinkFactory& link = {}) {
  const difftest::EngineArtifacts slot = difftest::run_engine(
      stream, config, policy, EngineKind::SlotStepped, link);
  const difftest::EngineArtifacts event = difftest::run_engine(
      stream, config, policy, EngineKind::EventDriven, link);
  difftest::expect_engines_identical(slot, event, reproducer);
}

struct LinkCase {
  const char* name;
  std::function<std::unique_ptr<Link>(Time delay, std::uint64_t seed)> make;
};

std::vector<LinkCase> fault_link_cases() {
  return {
      {"erasure",
       [](Time delay, std::uint64_t seed) -> std::unique_ptr<Link> {
         return std::make_unique<faults::ErasureLink>(
             std::make_unique<FixedDelayLink>(delay), 0.15, Rng(seed));
       }},
      {"gilbert-elliott",
       [](Time delay, std::uint64_t seed) -> std::unique_ptr<Link> {
         const faults::GilbertElliottConfig ge{.p_good_to_bad = 0.08,
                                               .p_bad_to_good = 0.3,
                                               .loss_good = 0.0,
                                               .loss_bad = 0.95};
         return std::make_unique<faults::GilbertElliottLink>(
             std::make_unique<FixedDelayLink>(delay), ge, Rng(seed));
       }},
      {"throttled",
       [](Time delay, std::uint64_t seed) -> std::unique_ptr<Link> {
         (void)seed;  // the throttle pattern is deterministic
         return std::make_unique<faults::ThrottledLink>(
             std::make_unique<FixedDelayLink>(delay),
             std::vector<Bytes>{900, 0, 0, 300, 0, 1500});
       }},
      {"jitter",
       [](Time delay, std::uint64_t seed) -> std::unique_ptr<Link> {
         return std::make_unique<BoundedJitterLink>(delay, 2, Rng(seed));
       }},
  };
}

/// The satellite matrix: every fault flavour × seeds × recovery on/off ×
/// dense and sparse streams, each cell checked for full-artifact identity.
TEST(EventEngineIdentity, FaultMatrixAcrossSeedsAndRecovery) {
  const std::vector<LinkCase> cases = fault_link_cases();
  const std::vector<std::string> policies = {"tail-drop", "greedy"};
  std::size_t pick = 0;
  for (const std::uint64_t seed : {101u, 202u, 303u, 404u}) {
    for (const bool sparse : {false, true}) {
      Rng rng(0xe7e27000 + seed * 2 + (sparse ? 1 : 0));
      const Stream stream =
          sparse ? testgen::corner_stream(rng,
                                          testgen::Corner::ZeroLengthBursts)
                 : testgen::random_stream(rng);
      const sim::SimConfig base =
          sparse ? testgen::corner_config(rng, stream,
                                          testgen::Corner::ZeroLengthBursts)
                 : testgen::random_config(rng, stream);
      for (const LinkCase& link_case : cases) {
        for (const bool recovery : {false, true}) {
          sim::SimConfig config = base;
          config.recovery.enabled = recovery;
          if (recovery && config.recovery.max_retries == 0) {
            config.recovery.max_retries = 2;
          }
          const std::string& policy = policies[pick++ % policies.size()];
          const std::string reproducer =
              "link=" + std::string(link_case.name) +
              (sparse ? " stream=sparse" : " stream=dense") +
              " recovery=" + (recovery ? "on" : "off") +
              " policy=" + policy + "\n" +
              testgen::describe_instance(seed, stream, config);
          expect_slot_event_identical(
              stream, config, policy, reproducer,
              [&link_case, &config, seed] {
                return link_case.make(config.link_delay, seed);
              });
          if (HasFailure()) return;  // one reproducer is enough
        }
      }
    }
  }
}

/// The event core back-fills one StepSets record per skipped slot, so a
/// RunsAndSteps ScheduleRecorder must come out element-identical too.
TEST(EventEngineIdentity, ScheduleRecorderStepsAndRunsMatch) {
  Rng rng(0x5ced5ced);
  const Stream stream =
      testgen::corner_stream(rng, testgen::Corner::ZeroLengthBursts);
  const sim::SimConfig base =
      testgen::corner_config(rng, stream, testgen::Corner::ZeroLengthBursts);
  auto record = [&](EngineKind engine) {
    sim::SimConfig config = base;
    config.engine = engine;
    sim::SmoothingSimulator simulator(stream, config,
                                      make_policy("tail-drop"));
    auto rec = std::make_unique<ScheduleRecorder>(
        stream.run_count(), ScheduleRecorder::Level::RunsAndSteps);
    (void)simulator.run(rec.get());
    return rec;
  };
  const auto slot = record(EngineKind::SlotStepped);
  const auto event = record(EngineKind::EventDriven);
  ASSERT_EQ(slot->steps().size(), event->steps().size());
  for (std::size_t i = 0; i < slot->steps().size(); ++i) {
    ASSERT_TRUE(slot->steps()[i] == event->steps()[i])
        << "StepSets divergence at index " << i
        << " (t=" << slot->steps()[i].t << ")";
  }
  ASSERT_EQ(slot->run_count(), event->run_count());
  for (std::size_t i = 0; i < slot->run_count(); ++i) {
    ASSERT_TRUE(slot->run(i) == event->run(i))
        << "RunOutcome divergence at run " << i;
  }
}

// -------------------------------------- sweep() grids on the event core

/// Registry-carrying sweep at a given engine and width; returns the result
/// and the determinism unit of the merged snapshot.
std::pair<sim::SweepResult, std::string> run_grid(const Stream& stream,
                                                  EngineKind engine,
                                                  unsigned threads) {
  obs::Registry registry;
  sim::SweepSpec spec;
  spec.axis = sim::SweepAxis::BufferMultiple;
  spec.values = {2.0, 3.0, 4.0};
  spec.policies = {"tail-drop", "greedy"};
  spec.engine = engine;
  spec.threads = threads;
  spec.registry = &registry;
  sim::SweepResult result = sim::sweep(stream, spec);
  return {std::move(result),
          registry.to_json(/*include_timers=*/false).dump()};
}

/// Satellite invariance check: the event-core grid must equal the slot-core
/// grid — including the merged registry snapshot — at every thread width.
TEST(EventEngineSweep, GridMatchesSlotCoreAtEveryThreadWidth) {
  const Stream stream = trace::slice_frames(
      trace::stock_clip("cnn-news", 60), trace::ValueModel::mpeg_default(),
      trace::Slicing::ByteSlices);
  const auto [slot_result, slot_registry] =
      run_grid(stream, EngineKind::SlotStepped, 1);
  for (const unsigned threads : {1u, 4u, 8u}) {
    const auto [event_result, event_registry] =
        run_grid(stream, EngineKind::EventDriven, threads);
    EXPECT_TRUE(event_result.points == slot_result.points)
        << "sweep points diverge (slot@1 vs event@" << threads << ")";
    EXPECT_EQ(event_registry, slot_registry)
        << "merged registry diverges (slot@1 vs event@" << threads << ")";
  }
}

TEST(EventEngineSweep, FaultAxisMatchesSlotCore) {
  const Stream stream = trace::slice_frames(
      trace::stock_clip("cnn-news", 40), trace::ValueModel::mpeg_default(),
      trace::Slicing::ByteSlices);
  auto run_axis = [&stream](EngineKind engine, unsigned threads) {
    sim::SweepSpec spec;
    spec.axis = sim::SweepAxis::FaultSeverity;
    spec.values = {0.0, 0.1, 0.3};
    spec.policies = {"tail-drop"};
    spec.recovery.enabled = true;
    spec.recovery.max_retries = 2;
    spec.engine = engine;
    spec.threads = threads;
    spec.link_factory = [](double severity, Time delay) {
      return std::make_unique<faults::ErasureLink>(
          std::make_unique<FixedDelayLink>(delay), severity, Rng(7));
    };
    return sim::sweep(stream, spec);
  };
  const sim::SweepResult slot = run_axis(EngineKind::SlotStepped, 1);
  for (const unsigned threads : {1u, 4u}) {
    const sim::SweepResult event = run_axis(EngineKind::EventDriven, threads);
    EXPECT_TRUE(event.faults == slot.faults)
        << "fault axis diverges (slot@1 vs event@" << threads << ")";
  }
}

}  // namespace
}  // namespace rtsmooth
