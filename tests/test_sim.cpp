// Integration tests for the end-to-end simulator: conservation, the
// real-time property (every played frame plays exactly at AT + P + D), the
// client-transparency lemmas at B = R*D, and report sanity on real clips.

#include <gtest/gtest.h>

#include "core/link.h"
#include "policies/policy_factory.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "stream_helpers.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace rtsmooth {
namespace {

using sim::SimConfig;
using sim::SmoothingSimulator;
using testing::stream_of;
using testing::units;

Stream small_clip_stream(trace::Slicing slicing, std::size_t frames = 120) {
  return trace::slice_frames(trace::stock_clip("cnn-news", frames),
                             trace::ValueModel::mpeg_default(), slicing);
}

TEST(Simulator, LosslessWhenResourcesSuffice) {
  const Stream s = stream_of({units(0, 4, 2.0), units(1, 2), units(3, 5)});
  const Plan plan = Planner::from_delay_rate(4, 3);  // B=12 >= any burst
  const SimReport report = sim::simulate(s, plan, "tail-drop");
  EXPECT_TRUE(report.conserves());
  EXPECT_EQ(report.played.bytes, s.total_bytes());
  EXPECT_EQ(report.dropped_server.bytes, 0);
  EXPECT_DOUBLE_EQ(report.weighted_loss(), 0.0);
  EXPECT_DOUBLE_EQ(report.benefit_fraction(), 1.0);
}

TEST(Simulator, PlayoutTimesAreArrivalPlusPPlusD) {
  const Stream s = stream_of({units(0, 6), units(2, 3), units(5, 4)});
  const Plan plan = Planner::from_delay_rate(3, 2);
  const Time link_delay = 2;
  SmoothingSimulator simulator(s, SimConfig::balanced(plan, link_delay),
                               make_policy("tail-drop"));
  ScheduleRecorder rec(s.run_count());
  const SimReport report = simulator.run(&rec);
  EXPECT_TRUE(report.conserves());
  for (std::size_t i = 0; i < s.run_count(); ++i) {
    if (rec.run(i).played == 0) continue;
    EXPECT_EQ(rec.run(i).play_time,
              s.runs()[i].arrival + link_delay + plan.delay);
  }
}

TEST(Simulator, ReceiveTimesSatisfyLemma33) {
  // t + P <= RT <= t + P + B/R for every delivered byte.
  const Stream s = stream_of({units(0, 12), units(1, 9), units(4, 8)});
  const Plan plan = Planner::from_delay_rate(4, 2);  // B=8
  const Time p = 3;
  SmoothingSimulator simulator(s, SimConfig::balanced(plan, p),
                               make_policy("tail-drop"));
  ScheduleRecorder rec(s.run_count());
  simulator.run(&rec);
  for (std::size_t i = 0; i < s.run_count(); ++i) {
    const RunOutcome& out = rec.run(i);
    if (out.first_receive == kNever) continue;
    EXPECT_GE(out.first_receive, s.runs()[i].arrival + p);
    EXPECT_LE(out.last_receive,
              s.runs()[i].arrival + p + plan.buffer / plan.rate);
  }
}

TEST(Simulator, NoClientLossAtBalancedPlan) {
  // Lemmas 3.3 + 3.4: with B = RD and Bc = B, the client neither overflows
  // nor misses deadlines, for every policy.
  const Stream s = small_clip_stream(trace::Slicing::ByteSlices);
  const Bytes rate = sim::relative_rate(s, 0.9);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  for (const auto& policy : known_policies()) {
    const SimReport report = sim::simulate(s, plan, policy);
    EXPECT_TRUE(report.conserves()) << policy;
    EXPECT_EQ(report.dropped_client_overflow.bytes, 0) << policy;
    EXPECT_EQ(report.dropped_client_late.bytes, 0) << policy;
    EXPECT_EQ(report.residual.bytes, 0) << policy;
    EXPECT_LE(report.max_client_occupancy, plan.buffer) << policy;
    EXPECT_LE(report.max_server_occupancy, plan.buffer) << policy;
    EXPECT_LE(report.max_link_bytes_per_step, plan.rate) << policy;
  }
}

TEST(Simulator, UndersizedClientBufferOverflows) {
  // Sect. 3.3: Bc < B wastes data. Give the client a quarter of B.
  const Stream s = small_clip_stream(trace::Slicing::ByteSlices);
  const Bytes rate = sim::relative_rate(s, 1.0);
  const Plan plan = Planner::from_buffer_rate(4 * s.max_frame_bytes(), rate);
  SimConfig config = SimConfig::balanced(plan);
  config.client_buffer = plan.buffer / 4;
  SmoothingSimulator simulator(s, config, make_policy("tail-drop"));
  const SimReport report = simulator.run();
  EXPECT_TRUE(report.conserves());
  EXPECT_GT(report.dropped_client_overflow.bytes, 0);
}

TEST(Simulator, TooSmallDelayCausesDeadlineMisses) {
  // D < B/R makes late deliveries possible (Sect. 3.3 observation 1).
  const Stream s = stream_of({units(0, 12), units(1, 2), units(2, 2)});
  SimConfig config{.server_buffer = 12,
                   .client_buffer = 12,
                   .rate = 2,
                   .smoothing_delay = 1,  // B/R = 6 needed
                   .link_delay = 1};
  SmoothingSimulator simulator(s, config, make_policy("tail-drop"));
  const SimReport report = simulator.run();
  EXPECT_TRUE(report.conserves());
  EXPECT_GT(report.dropped_client_late.bytes, 0);
}

TEST(Simulator, GreedyBeatsTailDropOnWeightedClip) {
  // The headline experimental observation (Fig. 2): under pressure, Greedy's
  // weighted loss is at most Tail-Drop's.
  const Stream s = small_clip_stream(trace::Slicing::ByteSlices, 260);
  const Bytes rate = sim::relative_rate(s, 0.9);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  const SimReport greedy = sim::simulate(s, plan, "greedy");
  const SimReport tail = sim::simulate(s, plan, "tail-drop");
  EXPECT_GT(tail.dropped_server.bytes, 0);
  EXPECT_LE(greedy.weighted_loss(), tail.weighted_loss());
}

TEST(Simulator, ByteLossesMatchAcrossPoliciesOnUnitSlices) {
  // Theorem 3.5 corollary: with unit slices the *byte* loss is identical
  // for every pure-overflow policy; only the weighted loss differs.
  const Stream s = small_clip_stream(trace::Slicing::ByteSlices, 200);
  const Bytes rate = sim::relative_rate(s, 0.85);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  const Bytes reference =
      sim::simulate(s, plan, "tail-drop").dropped_server.bytes;
  for (const char* policy : {"greedy", "head-drop", "random"}) {
    EXPECT_EQ(sim::simulate(s, plan, policy).dropped_server.bytes, reference)
        << policy;
  }
}

TEST(Simulator, WholeFrameSlicingConserves) {
  const Stream s = small_clip_stream(trace::Slicing::WholeFrame, 150);
  const Bytes rate = sim::relative_rate(s, 0.8);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  for (const char* policy : {"tail-drop", "greedy"}) {
    const SimReport report = sim::simulate(s, plan, policy);
    EXPECT_TRUE(report.conserves()) << policy;
    EXPECT_GT(report.played.bytes, 0) << policy;
  }
}

TEST(Simulator, OfflineOptimalNeverWorseThanOnline) {
  const Stream s = small_clip_stream(trace::Slicing::ByteSlices, 150);
  const Bytes rate = sim::relative_rate(s, 0.8);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  const auto optimal = sim::offline_optimal(s, plan.buffer, plan.rate);
  for (const auto& policy : known_policies()) {
    const SimReport report = sim::simulate(s, plan, policy);
    EXPECT_LE(report.benefit_fraction(), optimal.benefit_fraction + 1e-9)
        << policy;
  }
}

TEST(Simulator, PerTypeTalliesSumToTotals) {
  const Stream s = small_clip_stream(trace::Slicing::ByteSlices, 150);
  const Bytes rate = sim::relative_rate(s, 0.9);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  const SimReport report = sim::simulate(s, plan, "greedy");
  Bytes offered = 0;
  Bytes played = 0;
  for (const auto& tally : report.offered_by_type) offered += tally.bytes;
  for (const auto& tally : report.played_by_type) played += tally.bytes;
  EXPECT_EQ(offered, report.offered.bytes);
  EXPECT_EQ(played, report.played.bytes);
}

TEST(Simulator, RunPoliciesHelperCoversAll) {
  const Stream s = small_clip_stream(trace::Slicing::ByteSlices, 60);
  const Plan plan =
      Planner::from_buffer_rate(2 * s.max_frame_bytes(),
                                sim::relative_rate(s, 1.0));
  const std::vector<std::string> names = known_policies();
  const auto outcomes = sim::run_policies(s, plan, names);
  ASSERT_EQ(outcomes.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(outcomes[i].policy, names[i]);
    EXPECT_TRUE(outcomes[i].report.conserves());
  }
}

TEST(Simulator, TimerPlayoutEquivalentToFormulaOnFixedLink) {
  // Sect. 3.3: "the algorithm works without explicit clock
  // synchronization" — the timer-armed client produces the identical
  // schedule under the generic server on a zero-jitter link.
  const Stream s = small_clip_stream(trace::Slicing::ByteSlices, 200);
  const Bytes rate = sim::relative_rate(s, 0.9);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  for (const char* policy : {"tail-drop", "greedy"}) {
    SimConfig formula = SimConfig::balanced(plan, /*link_delay=*/3);
    SimConfig timer = formula;
    timer.playout = PlayoutMode::TimerFromFirstDelivery;
    SmoothingSimulator sim_formula(s, formula, make_policy(policy));
    SmoothingSimulator sim_timer(s, timer, make_policy(policy));
    ScheduleRecorder rec_formula(s.run_count());
    ScheduleRecorder rec_timer(s.run_count());
    const SimReport a = sim_formula.run(&rec_formula);
    const SimReport b = sim_timer.run(&rec_timer);
    EXPECT_EQ(a.played.bytes, b.played.bytes) << policy;
    EXPECT_DOUBLE_EQ(a.played.weight, b.played.weight) << policy;
    for (std::size_t i = 0; i < s.run_count(); ++i) {
      EXPECT_EQ(rec_formula.run(i).play_time, rec_timer.run(i).play_time)
          << policy << " run " << i;
    }
  }
}

TEST(Simulator, TimerPlayoutSelfCalibratesUnderJitter) {
  // On a jittery link the formula client misses deadlines, while the timer
  // client anchors to the first byte's *actual* delay — it can only be
  // late by jitter variation, never by the full jitter.
  const Stream s = small_clip_stream(trace::Slicing::ByteSlices, 200);
  const Bytes rate = sim::relative_rate(s, 0.9);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  const Time j = 6;
  auto run_mode = [&](PlayoutMode mode) {
    SimConfig config = SimConfig::balanced(plan, /*link_delay=*/2);
    config.playout = mode;
    config.client_buffer += j * plan.rate;  // room for delivery bunching
    SmoothingSimulator simulator(
        s, config, make_policy("greedy"),
        std::make_unique<BoundedJitterLink>(2, j, Rng(42)));
    return simulator.run();
  };
  const SimReport formula = run_mode(PlayoutMode::ArrivalPlusOffset);
  const SimReport timer = run_mode(PlayoutMode::TimerFromFirstDelivery);
  EXPECT_TRUE(timer.conserves());
  EXPECT_GT(formula.dropped_client_late.bytes, 0);
  EXPECT_LT(timer.dropped_client_late.bytes,
            formula.dropped_client_late.bytes);
}

TEST(Simulator, EnlargingOnlyOneBufferDoesNotHelp) {
  // Sect. 3.1: "The buffer space needed at the client and the server is
  // equal to B: making only one of the buffers bigger does not help."
  const Stream s = small_clip_stream(trace::Slicing::ByteSlices, 200);
  const Bytes rate = sim::relative_rate(s, 0.85);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  SimConfig balanced = SimConfig::balanced(plan);
  SimConfig big_server = balanced;
  big_server.server_buffer *= 4;  // D unchanged: extra space admits bytes
                                  // that then miss their deadline
  SimConfig big_client = balanced;
  big_client.client_buffer *= 4;
  SmoothingSimulator sim_balanced(s, balanced, make_policy("tail-drop"));
  SmoothingSimulator sim_server(s, big_server, make_policy("tail-drop"));
  SmoothingSimulator sim_client(s, big_client, make_policy("tail-drop"));
  const Bytes base = sim_balanced.run().played.bytes;
  EXPECT_LE(sim_server.run().played.bytes, base);
  EXPECT_EQ(sim_client.run().played.bytes, base);
}

using SimulatorDeathTest = ::testing::Test;

TEST(Simulator, BufferSmallerThanLargestSliceIsADescriptiveError) {
  const Stream s = stream_of({testing::slice(0, 10)});
  SimConfig config{.server_buffer = 5,
                   .client_buffer = 5,
                   .rate = 1,
                   .smoothing_delay = 5,
                   .link_delay = 1};
  EXPECT_FALSE(config.validate(s).empty());
  try {
    SmoothingSimulator sim(s, config, make_policy("tail-drop"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("largest slice"), std::string::npos) << what;
    EXPECT_NE(what.find("10"), std::string::npos) << what;  // the slice size
  }
}

TEST(Simulator, ValidateAcceptsRunnableConfigs) {
  const Stream s = stream_of({testing::slice(0, 10)});
  SimConfig config{.server_buffer = 10,
                   .client_buffer = 10,
                   .rate = 2,
                   .smoothing_delay = 5,
                   .link_delay = 1};
  EXPECT_EQ(config.validate(s), "");
  SimConfig bad_rate = config;
  bad_rate.rate = 0;
  EXPECT_NE(bad_rate.validate(s), "");
  SimConfig bad_backoff = config;
  bad_backoff.recovery.backoff_base = 0;
  EXPECT_NE(bad_backoff.validate(s), "");
}

TEST(SimulatorDeathTest, RunTwiceAborts) {
  const Stream s = stream_of({units(0, 2)});
  SmoothingSimulator simulator(
      s, SimConfig::balanced(Planner::from_delay_rate(2, 1)),
      make_policy("tail-drop"));
  simulator.run();
  EXPECT_DEATH(simulator.run(), "precondition");
}

}  // namespace
}  // namespace rtsmooth
