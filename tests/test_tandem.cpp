// Tests for the multi-hop tandem substrate: conservation, per-hop drop
// placement, homogeneous-path properties, bottleneck dominance and the
// end-to-end delay law.

#include <gtest/gtest.h>

#include "analysis/competitive.h"
#include "policies/policy_factory.h"
#include "policies/tail_drop.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "stream_helpers.h"
#include "tandem/tandem.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"
#include "util/rng.h"

namespace rtsmooth::tandem {
namespace {

using testing::stream_of;
using testing::units;

Stream clip(std::size_t frames, double rate_fraction, Bytes* rate_out) {
  Stream s = trace::slice_frames(trace::stock_clip("cnn-news", frames),
                                 trace::ValueModel::mpeg_default(),
                                 trace::Slicing::ByteSlices);
  *rate_out = sim::relative_rate(s, rate_fraction);
  return s;
}

TEST(Tandem, SingleHopMatchesSingleLinkSimulator) {
  Bytes rate = 0;
  const Stream s = clip(150, 0.9, &rate);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  TandemSimulator tandem(s, {HopConfig{.buffer = plan.buffer,
                                       .rate = plan.rate,
                                       .link_delay = 1}},
                         TailDropPolicy{}, plan.delay, plan.buffer);
  const TandemReport report = tandem.run();
  const SimReport single = sim::simulate(s, plan, "tail-drop");
  EXPECT_EQ(report.end_to_end.played.bytes, single.played.bytes);
  EXPECT_EQ(report.end_to_end.dropped_server.bytes,
            single.dropped_server.bytes);
}

TEST(Tandem, HomogeneousPathDropsOnlyAtTheFirstHop) {
  // After hop 1 shapes traffic to <= R per slot, a downstream hop with
  // B >= R never overflows.
  Bytes rate = 0;
  const Stream s = clip(200, 0.85, &rate);
  std::vector<HopConfig> hops;
  for (int h = 0; h < 4; ++h) {
    hops.push_back(HopConfig{.buffer = (h == 0 ? 2 * s.max_frame_bytes()
                                               : rate),
                             .rate = rate,
                             .link_delay = 2});
  }
  TandemSimulator tandem(s, hops, TailDropPolicy{});
  const TandemReport report = tandem.run();
  EXPECT_TRUE(report.end_to_end.conserves());
  EXPECT_GT(report.hop_drops[0].bytes, 0);
  for (std::size_t h = 1; h < report.hop_drops.size(); ++h) {
    EXPECT_EQ(report.hop_drops[h].bytes, 0) << "hop " << h;
  }
  EXPECT_EQ(report.end_to_end.dropped_client_late.bytes, 0);
  EXPECT_EQ(report.end_to_end.dropped_client_overflow.bytes, 0);
  EXPECT_EQ(report.end_to_end.residual.bytes, 0);
}

TEST(Tandem, HomogeneousPathThroughputEqualsSingleLink) {
  Bytes rate = 0;
  const Stream s = clip(200, 0.85, &rate);
  // Use the plan's (rate-aligned) buffer for hop 1 so the comparison is
  // byte-exact against the single-link simulator.
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  std::vector<HopConfig> hops;
  for (int h = 0; h < 3; ++h) {
    hops.push_back(HopConfig{.buffer = (h == 0 ? plan.buffer : rate),
                             .rate = rate,
                             .link_delay = 1});
  }
  TandemSimulator tandem(s, hops, TailDropPolicy{});
  EXPECT_EQ(tandem.run().end_to_end.played.bytes,
            sim::simulate(s, plan, "tail-drop").played.bytes);
}

TEST(Tandem, BottleneckHopDoesTheDropping) {
  Bytes rate = 0;
  const Stream s = clip(200, 1.2, &rate);  // fast edges...
  const Bytes slow = sim::relative_rate(s, 0.8);  // ...slow middle
  std::vector<HopConfig> hops = {
      HopConfig{.buffer = 2 * s.max_frame_bytes(), .rate = rate,
                .link_delay = 1},
      HopConfig{.buffer = 2 * s.max_frame_bytes(), .rate = slow,
                .link_delay = 1},
      HopConfig{.buffer = slow, .rate = rate, .link_delay = 1},
  };
  TandemSimulator tandem(s, hops, TailDropPolicy{});
  const TandemReport report = tandem.run();
  EXPECT_TRUE(report.end_to_end.conserves());
  EXPECT_GT(report.hop_drops[1].bytes, 0);
  EXPECT_EQ(report.hop_drops[2].bytes, 0);
  // Anything the fast first hop drops, the bottleneck would have dropped
  // anyway; end-to-end loss should be within a whisker of the single
  // bottleneck link's loss with the same bottleneck buffer.
  const Plan bottleneck =
      Planner::from_buffer_rate(2 * s.max_frame_bytes(), slow);
  const SimReport single = sim::simulate(s, bottleneck, "tail-drop");
  EXPECT_NEAR(static_cast<double>(report.end_to_end.played.bytes),
              static_cast<double>(single.played.bytes),
              0.02 * static_cast<double>(single.played.bytes));
}

TEST(Tandem, PlayoutOffsetIsSumOfDelaysPlusD) {
  const Stream s = stream_of({units(0, 6), units(1, 4)});
  std::vector<HopConfig> hops = {
      HopConfig{.buffer = 6, .rate = 2, .link_delay = 3},
      HopConfig{.buffer = 4, .rate = 2, .link_delay = 2},
  };
  TandemSimulator tandem(s, hops, TailDropPolicy{});
  const TandemReport report = tandem.run();
  EXPECT_EQ(report.smoothing_delay, 3 + 2);  // ceil(6/2) + ceil(4/2)
  EXPECT_EQ(report.playout_offset, (3 + 2) + (3 + 2));
  EXPECT_TRUE(report.end_to_end.conserves());
  EXPECT_EQ(report.end_to_end.played.bytes, s.total_bytes());
}

TEST(Tandem, GreedyPolicyAppliesPerHop) {
  Bytes rate = 0;
  const Stream s = clip(200, 0.85, &rate);
  std::vector<HopConfig> hops = {
      HopConfig{.buffer = 2 * s.max_frame_bytes(), .rate = rate,
                .link_delay = 1},
      HopConfig{.buffer = rate, .rate = rate, .link_delay = 1},
  };
  TandemSimulator greedy(s, hops, *make_policy("greedy"));
  TandemSimulator tail(s, hops, *make_policy("tail-drop"));
  const TandemReport g = greedy.run();
  const TandemReport t = tail.run();
  EXPECT_EQ(g.end_to_end.played.bytes, t.end_to_end.played.bytes);
  EXPECT_GE(g.end_to_end.played.weight, t.end_to_end.played.weight);
}

TEST(Tandem, RandomPathsConserve) {
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    const Stream s = analysis::random_unit_stream(rng, 30, 10, 5.0);
    std::vector<HopConfig> hops;
    const auto hop_count = static_cast<std::size_t>(rng.uniform_int(1, 4));
    for (std::size_t h = 0; h < hop_count; ++h) {
      hops.push_back(HopConfig{.buffer = rng.uniform_int(2, 10),
                               .rate = rng.uniform_int(1, 4),
                               .link_delay = rng.uniform_int(0, 3)});
    }
    TandemSimulator tandem(s, hops, TailDropPolicy{});
    const TandemReport report = tandem.run();
    EXPECT_TRUE(report.end_to_end.conserves()) << "trial " << trial;
    EXPECT_EQ(report.end_to_end.dropped_client_late.bytes, 0)
        << "trial " << trial;
  }
}

using TandemDeathTest = ::testing::Test;

TEST(TandemDeathTest, RejectsVariableSizeSlices) {
  const Stream s = stream_of({testing::slice(0, 5)});
  EXPECT_DEATH(TandemSimulator(s, {HopConfig{.buffer = 8, .rate = 2}},
                               TailDropPolicy{}),
               "precondition");
}

}  // namespace
}  // namespace rtsmooth::tandem
