// Three-way differential harness: the deque-based reference oracle
// (reference_core.h) vs the slot-stepped production core vs the
// event-driven production core (core/event_engine.h) on one instance.
//
// Per run the harness captures four artifacts:
//   - the SimReport (operator==: every tally, breakdown, maximum and
//     invariant-violation count),
//   - the JSONL trace (config / violation / step / run events — the
//     event core back-fills one zero-delta step event per skipped slot,
//     so the traces are comparable line-for-line),
//   - the Registry snapshot, to_json(/*include_timers=*/false) — the
//     byte-identity determinism unit (span timers measure wall clock and
//     are quarantined, DESIGN.md Sect. 8),
//   - the FlightRecorder incident list plus its step/trigger counters.
//
// The reference oracle carries no registry or recorder, so the oracle
// legs compare report + trace, while the slot-vs-event leg compares all
// four artifacts. Failures name the disagreeing engine pair and print
// the caller's reproducer (normally testgen::describe_instance).

#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "obs/trace_writer.h"
#include "policies/policy_factory.h"
#include "reference_core.h"
#include "sim/simulator.h"

namespace rtsmooth::difftest {

/// Builds a fresh link for one engine run. Links are stateful and consumed
/// by the simulator, so every engine leg needs its own copy — factories
/// must return identically-seeded links on every call. Empty: each
/// simulator constructs its own default FixedDelayLink.
using LinkFactory = std::function<std::unique_ptr<Link>()>;

/// Everything one engine run produces that byte-identity pins.
struct EngineArtifacts {
  SimReport report;
  std::string trace;      ///< JSONL, one event per line
  std::string registry;   ///< Registry::to_json(false).dump()
  std::string incidents;  ///< incident documents, one JSON line each
  std::int64_t steps_recorded = 0;
  std::int64_t triggers_total = 0;
};

/// Small window / few incidents: enough to catch a divergence without
/// making fuzz iterations pay for a 256-step ring.
inline obs::FlightRecorderConfig differential_recorder_config() {
  obs::FlightRecorderConfig config;
  config.window = 48;
  config.max_incidents = 4;
  return config;
}

/// One production run (slot-stepped or event-driven) with the full
/// observability plane attached.
inline EngineArtifacts run_engine(const Stream& stream,
                                  const sim::SimConfig& config,
                                  std::string_view policy,
                                  sim::EngineKind engine,
                                  const LinkFactory& link = {}) {
  std::ostringstream trace;
  obs::TraceWriter writer(trace);
  obs::Registry registry;
  obs::FlightRecorder recorder(differential_recorder_config());
  sim::SimConfig cfg = config;
  cfg.engine = engine;
  cfg.telemetry.tracer = &writer;
  cfg.telemetry.registry = &registry;
  cfg.telemetry.recorder = &recorder;
  sim::SmoothingSimulator simulator(stream, cfg, make_policy(policy),
                                    link ? link() : nullptr);
  EngineArtifacts out;
  out.report = simulator.run();
  out.trace = std::move(trace).str();
  out.registry = registry.to_json(/*include_timers=*/false).dump();
  std::ostringstream incidents;
  for (const obs::Json& incident : recorder.incidents()) {
    incidents << incident.dump() << '\n';
  }
  out.incidents = std::move(incidents).str();
  out.steps_recorded = recorder.steps_recorded();
  out.triggers_total = recorder.triggers_total();
  return out;
}

/// The deque-oracle run. Registry / incident fields stay empty — the
/// reference core predates the observability plane on purpose (it stays
/// simple enough to trust by inspection).
inline EngineArtifacts run_oracle(const Stream& stream,
                                  const sim::SimConfig& config,
                                  std::string_view policy,
                                  const LinkFactory& link = {}) {
  std::ostringstream trace;
  obs::TraceWriter writer(trace);
  refcore::ReferenceSimulator simulator(stream, config, policy,
                                        link ? link() : nullptr);
  EngineArtifacts out;
  out.report = simulator.run(&writer);
  out.trace = std::move(trace).str();
  return out;
}

/// Line-by-line diff of one artifact between two named engines: a
/// full-string EXPECT_EQ would dump thousands of lines; the first
/// divergent line is what identifies the bug and the failing pair.
inline void expect_same_lines(std::string_view artifact,
                              std::string_view label_a, const std::string& a,
                              std::string_view label_b, const std::string& b,
                              const std::string& reproducer) {
  if (a == b) return;
  std::istringstream a_in(a);
  std::istringstream b_in(b);
  std::string a_line;
  std::string b_line;
  std::size_t line = 0;
  while (true) {
    const bool a_ok = static_cast<bool>(std::getline(a_in, a_line));
    const bool b_ok = static_cast<bool>(std::getline(b_in, b_line));
    ++line;
    if (!a_ok && !b_ok) break;
    if (a_ok != b_ok || a_line != b_line) {
      ADD_FAILURE() << artifact << " divergence (" << label_a << " vs "
                    << label_b << ") at line " << line << "\n  " << label_a
                    << ": " << (a_ok ? a_line : std::string("<end>"))
                    << "\n  " << label_b << ": "
                    << (b_ok ? b_line : std::string("<end>")) << "\n"
                    << reproducer;
      return;
    }
  }
  ADD_FAILURE() << artifact << " mismatch (" << label_a << " vs " << label_b
                << ") with no differing line\n" << reproducer;
}

/// Slot vs event: full-artifact byte-identity (report, trace, registry
/// snapshot, incident list and recorder counters).
inline void expect_engines_identical(const EngineArtifacts& slot,
                                     const EngineArtifacts& event,
                                     const std::string& reproducer) {
  EXPECT_TRUE(slot.report == event.report)
      << "SimReport mismatch (slot vs event)\n" << reproducer;
  expect_same_lines("trace", "slot", slot.trace, "event", event.trace,
                    reproducer);
  expect_same_lines("registry", "slot", slot.registry, "event",
                    event.registry, reproducer);
  expect_same_lines("incidents", "slot", slot.incidents, "event",
                    event.incidents, reproducer);
  EXPECT_EQ(slot.steps_recorded, event.steps_recorded)
      << "flight-recorder step count mismatch (slot vs event)\n"
      << reproducer;
  EXPECT_EQ(slot.triggers_total, event.triggers_total)
      << "flight-recorder trigger count mismatch (slot vs event)\n"
      << reproducer;
}

/// The full three-way check. `link` builds the production link (used for
/// both the slot and event legs); `oracle_link` builds the
/// reference-flavoured link for the deque oracle. Both default to each
/// simulator's own FixedDelayLink.
inline void expect_three_way(const Stream& stream,
                             const sim::SimConfig& config,
                             std::string_view policy,
                             const std::string& reproducer,
                             const LinkFactory& link = {},
                             const LinkFactory& oracle_link = {}) {
  const EngineArtifacts slot =
      run_engine(stream, config, policy, sim::EngineKind::SlotStepped, link);
  const EngineArtifacts event =
      run_engine(stream, config, policy, sim::EngineKind::EventDriven, link);
  const EngineArtifacts oracle =
      run_oracle(stream, config, policy, oracle_link);
  EXPECT_TRUE(oracle.report == slot.report)
      << "SimReport mismatch (reference vs slot)\n" << reproducer;
  expect_same_lines("trace", "reference", oracle.trace, "slot", slot.trace,
                    reproducer);
  // Diff the oracle against the event core directly too: when the two
  // production engines agree with each other but not the oracle, the
  // failure should still name both pairs.
  EXPECT_TRUE(oracle.report == event.report)
      << "SimReport mismatch (reference vs event)\n" << reproducer;
  expect_same_lines("trace", "reference", oracle.trace, "event", event.trace,
                    reproducer);
  expect_engines_identical(slot, event, reproducer);
}

}  // namespace rtsmooth::difftest
