// Tests for the sweep helpers that drive the figure benches, plus
// figure-level shape assertions (the qualitative claims of Sect. 5 must
// hold for any seed of the synthetic clip, not just the one in the bench).

#include <gtest/gtest.h>

#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace rtsmooth::sim {
namespace {

Stream clip(std::size_t frames) {
  return trace::slice_frames(trace::stock_clip("cnn-news", frames),
                             trace::ValueModel::mpeg_default(),
                             trace::Slicing::ByteSlices);
}

TEST(RelativeRate, ScalesAverageAndClampsToOne) {
  const Stream s = clip(200);
  EXPECT_NEAR(static_cast<double>(relative_rate(s, 1.0)), s.average_rate(),
              1.0);
  EXPECT_NEAR(static_cast<double>(relative_rate(s, 0.5)),
              0.5 * s.average_rate(), 1.0);
  // A microscopic fraction still yields a usable rate.
  EXPECT_GE(relative_rate(s, 1e-9), 1);
}

TEST(BufferSweep, ProducesOnePointPerMultiple) {
  const Stream s = clip(150);
  const auto result =
      sweep(s, SweepSpec{.axis = SweepAxis::BufferMultiple,
                         .values = {1, 2, 4},
                         .policies = {"tail-drop", "greedy"},
                         .with_optimal = true,
                         .rate = relative_rate(s, 1.0)});
  const auto& points = result.points;
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(result.stats.tasks, 9u);  // 3 points x (2 policies + optimal)
  for (const auto& point : points) {
    EXPECT_EQ(point.policies.size(), 2u);
    EXPECT_TRUE(point.has_optimal);
    // B = D*R and B at least the requested multiple of the max frame.
    EXPECT_EQ(point.plan.buffer, point.plan.delay * point.plan.rate);
    EXPECT_GE(point.plan.buffer,
              static_cast<Bytes>(point.x) * s.max_frame_bytes());
  }
}

TEST(BufferSweep, Fig2ShapeHolds) {
  // More buffer never hurts, Greedy <= Tail-Drop, Optimal <= Greedy.
  const Stream s = clip(400);
  const auto points =
      sweep(s, SweepSpec{.axis = SweepAxis::BufferMultiple,
                         .values = {1, 3, 9},
                         .policies = {"tail-drop", "greedy"},
                         .with_optimal = true,
                         .rate = relative_rate(s, 0.95)})
          .points;
  double last_tail = 1.0;
  for (const auto& point : points) {
    const double tail = point.policies[0].report.weighted_loss();
    const double greedy = point.policies[1].report.weighted_loss();
    EXPECT_LE(greedy, tail + 1e-9) << "x=" << point.x;
    EXPECT_LE(point.optimal.weighted_loss, greedy + 1e-9) << "x=" << point.x;
    EXPECT_LE(tail, last_tail + 1e-9) << "x=" << point.x;
    last_tail = tail;
  }
}

TEST(RateSweep, Fig4ShapeHolds) {
  // Benefit is nondecreasing in the link rate, for every policy and the
  // optimum.
  const Stream s = clip(400);
  const std::vector<std::string> policies = {"tail-drop", "greedy"};
  const auto points = sweep(s, SweepSpec{.axis = SweepAxis::RateFraction,
                                         .values = {0.5, 0.8, 1.1, 1.4},
                                         .policies = policies,
                                         .with_optimal = true,
                                         .buffer_multiple = 4.0})
                          .points;
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      EXPECT_GE(points[i].policies[p].report.benefit_fraction() + 1e-9,
                points[i - 1].policies[p].report.benefit_fraction())
          << policies[p] << " at x=" << points[i].x;
    }
    EXPECT_GE(points[i].optimal.benefit_fraction + 1e-9,
              points[i - 1].optimal.benefit_fraction);
  }
  // Past the average rate with a real buffer, losses are minor.
  EXPECT_GE(points.back().policies[1].report.benefit_fraction(), 0.99);
}

TEST(RateSweep, OptimalDominatesEveryPolicyEverywhere) {
  const Stream s = clip(250);
  const auto points =
      sweep(s, SweepSpec{.axis = SweepAxis::RateFraction,
                         .values = {0.6, 1.0},
                         .policies = {"tail-drop", "greedy", "head-drop"},
                         .with_optimal = true,
                         .buffer_multiple = 2.0})
          .points;
  for (const auto& point : points) {
    for (const auto& outcome : point.policies) {
      EXPECT_LE(outcome.report.benefit_fraction(),
                point.optimal.benefit_fraction + 1e-9)
          << outcome.policy << " at x=" << point.x;
    }
  }
}

}  // namespace
}  // namespace rtsmooth::sim
