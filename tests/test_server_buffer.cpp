// Unit tests for the chunked FIFO server buffer: push/merge, FIFO sends
// across slice boundaries, drop legality and the no-preemption rule.

#include <gtest/gtest.h>

#include "core/server_buffer.h"
#include "stream_helpers.h"

namespace rtsmooth {
namespace {

using testing::stream_of;
using testing::units;

class ServerBufferTest : public ::testing::Test {
 protected:
  // Keep a stream alive for stable SliceRun pointers.
  Stream stream_ = stream_of({
      units(0, 10, 2.0),                                 // run 0: 10 x 1B
      SliceRun{.arrival = 1, .slice_size = 5, .count = 3, .weight = 10.0},
      SliceRun{.arrival = 2, .slice_size = 3, .count = 2, .weight = 3.0},
  });
  const SliceRun& run(std::size_t i) { return stream_.runs()[i]; }
};

TEST_F(ServerBufferTest, StartsEmpty) {
  ServerBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.occupancy(), 0);
  EXPECT_EQ(buf.chunk_count(), 0u);
}

TEST_F(ServerBufferTest, PushAccumulatesOccupancy) {
  ServerBuffer buf;
  buf.push(run(0), 0, 10);
  buf.push(run(1), 1, 3);
  EXPECT_EQ(buf.occupancy(), 10 + 15);
  EXPECT_EQ(buf.chunk_count(), 2u);
}

TEST_F(ServerBufferTest, PushMergesSameRunAtTail) {
  ServerBuffer buf;
  buf.push(run(0), 0, 4);
  buf.push(run(0), 0, 6);
  EXPECT_EQ(buf.chunk_count(), 1u);
  EXPECT_EQ(buf.chunk(0).slices, 10);
}

TEST_F(ServerBufferTest, SendTakesFifoAcrossChunks) {
  ServerBuffer buf;
  buf.push(run(0), 0, 2);  // 2 bytes
  buf.push(run(1), 1, 1);  // 5 bytes
  std::vector<SentPiece> pieces;
  EXPECT_EQ(buf.send(4, pieces), 4);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].run_index, 0u);
  EXPECT_EQ(pieces[0].bytes, 2);
  EXPECT_EQ(pieces[0].completed_slices, 2);
  EXPECT_EQ(pieces[1].run_index, 1u);
  EXPECT_EQ(pieces[1].bytes, 2);
  EXPECT_EQ(pieces[1].completed_slices, 0);  // 2 of 5 bytes sent
  EXPECT_TRUE(buf.head_in_transmission());
  EXPECT_EQ(buf.occupancy(), 3);
}

TEST_F(ServerBufferTest, SendCompletesPartialSliceAcrossCalls) {
  ServerBuffer buf;
  buf.push(run(1), 1, 2);  // two 5-byte slices
  std::vector<SentPiece> pieces;
  buf.send(3, pieces);
  EXPECT_TRUE(buf.head_in_transmission());
  pieces.clear();
  buf.send(2, pieces);  // finishes the first slice exactly
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].completed_slices, 1);
  EXPECT_FALSE(buf.head_in_transmission());
  EXPECT_EQ(buf.occupancy(), 5);
}

TEST_F(ServerBufferTest, SendClampsToOccupancy) {
  ServerBuffer buf;
  buf.push(run(0), 0, 3);
  std::vector<SentPiece> pieces;
  EXPECT_EQ(buf.send(100, pieces), 3);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.chunk_count(), 0u);
}

TEST_F(ServerBufferTest, SendZeroBudgetIsNoop) {
  ServerBuffer buf;
  buf.push(run(0), 0, 3);
  std::vector<SentPiece> pieces;
  EXPECT_EQ(buf.send(0, pieces), 0);
  EXPECT_TRUE(pieces.empty());
}

TEST_F(ServerBufferTest, DropFreesBytesAndWeight) {
  ServerBuffer buf;
  buf.push(run(1), 1, 3);  // 3 slices x 5B x weight 10
  const DropResult freed = buf.drop_slices(0, 2);
  EXPECT_EQ(freed.bytes, 10);
  EXPECT_DOUBLE_EQ(freed.weight, 20.0);
  EXPECT_EQ(freed.slices, 2);
  EXPECT_EQ(buf.occupancy(), 5);
}

TEST_F(ServerBufferTest, DropRemovesEmptiedChunk) {
  ServerBuffer buf;
  buf.push(run(0), 0, 2);
  buf.push(run(2), 2, 2);
  buf.drop_slices(0, 2);
  EXPECT_EQ(buf.chunk_count(), 1u);
  EXPECT_EQ(buf.chunk(0).run_index, 2u);
}

TEST_F(ServerBufferTest, HeadSliceInTransmissionIsProtected) {
  ServerBuffer buf;
  buf.push(run(1), 1, 3);
  std::vector<SentPiece> pieces;
  buf.send(2, pieces);  // partially send first slice
  EXPECT_EQ(buf.droppable_slices(0), 2);  // only the two untouched slices
  const DropResult freed = buf.drop_slices(0, 2);
  EXPECT_EQ(freed.slices, 2);
  // The partially-sent slice remains, with 3 bytes outstanding.
  EXPECT_EQ(buf.occupancy(), 3);
  EXPECT_TRUE(buf.head_in_transmission());
}

TEST_F(ServerBufferTest, DropObserverSeesEveryDrop) {
  ServerBuffer buf;
  std::int64_t observed = 0;
  std::size_t last_run = 99;
  buf.set_drop_observer([&](const SliceRun&, std::size_t run_index,
                            std::int64_t slices) {
    observed += slices;
    last_run = run_index;
  });
  buf.push(run(0), 0, 5);
  buf.push(run(2), 2, 2);
  buf.drop_slices(0, 3);
  buf.drop_slices(1, 1);
  EXPECT_EQ(observed, 4);
  EXPECT_EQ(last_run, 2u);
}

using ServerBufferDeathTest = ServerBufferTest;

TEST_F(ServerBufferDeathTest, OverDropAborts) {
  ServerBuffer buf;
  buf.push(run(0), 0, 2);
  EXPECT_DEATH(buf.drop_slices(0, 3), "precondition");
}

TEST_F(ServerBufferDeathTest, DroppingTransmittingSliceAborts) {
  ServerBuffer buf;
  buf.push(run(1), 1, 1);
  std::vector<SentPiece> pieces;
  buf.send(1, pieces);
  EXPECT_DEATH(buf.drop_slices(0, 1), "precondition");
}

}  // namespace
}  // namespace rtsmooth
