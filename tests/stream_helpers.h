// Shared helpers for building small test streams tersely.

#pragma once

#include <vector>

#include "core/slice.h"

namespace rtsmooth::testing {

/// One run of `count` unit slices at time t, each of weight w.
inline SliceRun units(Time t, std::int64_t count, Weight w = 1.0) {
  return SliceRun{.arrival = t, .slice_size = 1, .count = count, .weight = w};
}

/// One slice of the given size at time t; weight defaults to the size
/// (byte value 1).
inline SliceRun slice(Time t, Bytes size, Weight w = -1.0) {
  return SliceRun{.arrival = t,
                  .slice_size = size,
                  .count = 1,
                  .weight = w < 0 ? static_cast<Weight>(size) : w};
}

inline Stream stream_of(std::vector<SliceRun> runs) {
  return Stream::from_runs(std::move(runs));
}

}  // namespace rtsmooth::testing
