// Model-based testing: drive ServerBuffer (+ Tail-Drop shedding) with long
// random operation sequences and compare every observable step against a
// deliberately naive reference implementation (a flat list of slices).
// Divergence in occupancy, per-run sent bytes, FIFO order or head state
// fails the test with the generating seed in the message.

#include <gtest/gtest.h>

#include <deque>

#include "core/server_buffer.h"
#include "policies/tail_drop.h"
#include "stream_helpers.h"
#include "util/rng.h"

namespace rtsmooth {
namespace {

/// The reference: one entry per slice, bytes consumed from the front.
class NaiveBuffer {
 public:
  struct Entry {
    std::size_t run_index;
    Bytes size;
    Bytes sent = 0;  ///< bytes of this slice already transmitted
  };

  void push(std::size_t run_index, Bytes slice_size, std::int64_t count) {
    for (std::int64_t k = 0; k < count; ++k) {
      slices_.push_back(Entry{.run_index = run_index, .size = slice_size});
    }
  }

  Bytes occupancy() const {
    Bytes total = 0;
    for (const Entry& e : slices_) total += e.size - e.sent;
    return total;
  }

  /// Sends up to `budget` bytes FIFO; returns bytes sent per run index.
  std::map<std::size_t, Bytes> send(Bytes budget) {
    std::map<std::size_t, Bytes> sent;
    while (budget > 0 && !slices_.empty()) {
      Entry& head = slices_.front();
      const Bytes take = std::min(budget, head.size - head.sent);
      head.sent += take;
      sent[head.run_index] += take;
      budget -= take;
      if (head.sent == head.size) slices_.pop_front();
    }
    return sent;
  }

  /// Tail-Drop shedding: drop whole untouched slices from the back until
  /// occupancy <= target.
  void shed_tail(Bytes target) {
    while (occupancy() > target) {
      ASSERT_FALSE(slices_.empty());
      // The newest slice is droppable unless it is the transmitting head.
      Entry& last = slices_.back();
      ASSERT_EQ(last.sent, 0);  // only the head can be partially sent
      slices_.pop_back();
    }
  }

  bool head_in_transmission() const {
    return !slices_.empty() && slices_.front().sent > 0;
  }

 private:
  std::deque<Entry> slices_;
};

TEST(ModelBased, BufferMatchesNaiveReferenceUnderRandomOps) {
  // A fixed palette of runs to push from (sizes 1..6, assorted weights).
  const Stream palette = testing::stream_of({
      testing::units(0, 1000, 1.0),
      SliceRun{.arrival = 0, .slice_size = 3, .count = 1000, .weight = 2.0},
      SliceRun{.arrival = 0, .slice_size = 6, .count = 1000, .weight = 12.0},
      SliceRun{.arrival = 0, .slice_size = 2, .count = 1000, .weight = 0.5},
  });

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0xABCD);
    ServerBuffer real;
    NaiveBuffer naive;
    TailDropPolicy tail;
    std::map<std::size_t, Bytes> real_sent;

    for (int op = 0; op < 2000; ++op) {
      const auto choice = rng.uniform_int(0, 2);
      if (choice == 0) {
        const auto run_index =
            static_cast<std::size_t>(rng.uniform_int(0, 3));
        const std::int64_t count = rng.uniform_int(1, 5);
        const SliceRun& run = palette.runs()[run_index];
        real.push(run, run_index, count);
        naive.push(run_index, run.slice_size, count);
      } else if (choice == 1) {
        const Bytes budget = rng.uniform_int(0, 12);
        std::vector<SentPiece> pieces;
        real.send(budget, pieces);
        auto naive_sent = naive.send(budget);
        std::map<std::size_t, Bytes> real_step;
        for (const SentPiece& piece : pieces) {
          real_step[piece.run_index] += piece.bytes;
          real_sent[piece.run_index] += piece.bytes;
        }
        EXPECT_EQ(real_step, naive_sent) << "seed " << seed << " op " << op;
      } else {
        // Shed to a random target at or below current occupancy, but never
        // below what the in-transmission head pins in place.
        const Bytes pinned =
            real.head_in_transmission()
                ? real.chunk(0).run->slice_size - real.chunk(0).head_sent
                : 0;
        const Bytes target =
            pinned + rng.uniform_int(0, std::max<Bytes>(0, real.occupancy() -
                                                               pinned));
        if (real.occupancy() > target) {
          tail.shed(real, target);
          naive.shed_tail(real.occupancy());  // match the achieved level
        }
      }
      ASSERT_EQ(real.occupancy(), naive.occupancy())
          << "seed " << seed << " op " << op;
      ASSERT_EQ(real.head_in_transmission(), naive.head_in_transmission())
          << "seed " << seed << " op " << op;
    }
  }
}

TEST(ModelBased, ShedToExactTargetWhenUnitSlices) {
  // With unit slices, Tail-Drop must land exactly on the target.
  const Stream palette = testing::stream_of({testing::units(0, 100000)});
  Rng rng(99);
  ServerBuffer real;
  TailDropPolicy tail;
  for (int op = 0; op < 500; ++op) {
    real.push(palette.runs()[0], 0, rng.uniform_int(1, 50));
    const Bytes target = rng.uniform_int(0, real.occupancy());
    tail.shed(real, target);
    ASSERT_EQ(real.occupancy(), target) << "op " << op;
  }
}

}  // namespace
}  // namespace rtsmooth
