// Tests for the ParallelRunner and the determinism contract of sweep():
// for any thread count, a parallel batch must produce results byte-identical
// to the serial (threads = 1) path, in submission order — including the
// merged telemetry registry, which folds per-cell registries in submission
// order. Also covers the progress callback and queue-wait accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "faults/fault_links.h"
#include "obs/telemetry.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace rtsmooth::sim {
namespace {

Stream clip(std::size_t frames) {
  return trace::slice_frames(trace::stock_clip("cnn-news", frames),
                             trace::ValueModel::mpeg_default(),
                             trace::Slicing::ByteSlices);
}

FaultLinkFactory erasure_factory() {
  return [](double severity, Time link_delay) -> std::unique_ptr<Link> {
    return std::make_unique<faults::ErasureLink>(link_delay, severity,
                                                 Rng(41));
  };
}

// ------------------------------------------------------------ ParallelRunner

TEST(ParallelRunner, ResolveThreadsPrefersExplicitArgument) {
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_GE(resolve_threads(0), 1u);  // env or hardware, but never 0
}

TEST(ParallelRunner, MapReturnsResultsInSubmissionOrder) {
  for (unsigned threads : {1u, 2u, 8u}) {
    ParallelRunner runner(threads);
    EXPECT_EQ(runner.threads(), threads);
    const auto out = runner.map<std::size_t>(
        100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u) << "threads=" << threads;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], i * i) << "threads=" << threads;
    }
  }
}

TEST(ParallelRunner, RunExecutesEveryTaskExactlyOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    std::atomic<int> calls{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 37; ++i) {
      tasks.push_back([&calls] { calls.fetch_add(1); });
    }
    const RunStats stats = ParallelRunner(threads).run(std::move(tasks));
    EXPECT_EQ(calls.load(), 37);
    EXPECT_EQ(stats.tasks, 37u);
    EXPECT_EQ(stats.threads, threads);
    EXPECT_GE(stats.wall_us, 0);
  }
}

TEST(ParallelRunner, LowestIndexedExceptionWinsDeterministically) {
  for (unsigned threads : {1u, 2u, 8u}) {
    ParallelRunner runner(threads);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back([i] {
        if (i == 5) throw std::runtime_error("task five");
        if (i == 11) throw std::runtime_error("task eleven");
      });
    }
    try {
      runner.run(std::move(tasks));
      FAIL() << "expected a rethrow, threads=" << threads;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task five") << "threads=" << threads;
    }
  }
}

TEST(ParallelRunner, StatsAccumulateAcrossBatches) {
  RunStats total;
  ParallelRunner runner(2);
  runner.map<int>(4, [](std::size_t i) { return static_cast<int>(i); },
                  &total);
  runner.map<int>(6, [](std::size_t i) { return static_cast<int>(i); },
                  &total);
  EXPECT_EQ(total.tasks, 10u);
  EXPECT_GE(total.speedup(), 0.0);
  EXPECT_FALSE(total.summary().empty());
}

// ------------------------------------------- sweep() determinism contract

TEST(SweepDeterminism, BufferAxisIsByteIdenticalAcrossThreadCounts) {
  const Stream s = clip(200);
  SweepSpec spec{.axis = SweepAxis::BufferMultiple,
                 .values = {1, 2, 4},
                 .policies = {"tail-drop", "greedy", "random"},
                 .with_optimal = true,
                 .threads = 1};
  const auto serial = sweep(s, spec);
  for (unsigned threads : {2u, 8u}) {
    spec.threads = threads;
    const auto parallel = sweep(s, spec);
    EXPECT_EQ(parallel.points, serial.points) << "threads=" << threads;
    EXPECT_TRUE(parallel.faults.empty());
  }
}

TEST(SweepDeterminism, RateAxisIsByteIdenticalAcrossThreadCounts) {
  const Stream s = clip(200);
  SweepSpec spec{.axis = SweepAxis::RateFraction,
                 .values = {0.6, 0.9, 1.2},
                 .policies = {"tail-drop", "greedy"},
                 .with_optimal = true,
                 .buffer_multiple = 2.0,
                 .threads = 1};
  const auto serial = sweep(s, spec);
  for (unsigned threads : {2u, 8u}) {
    spec.threads = threads;
    EXPECT_EQ(sweep(s, spec).points, serial.points) << "threads=" << threads;
  }
}

TEST(SweepDeterminism, FaultAxisIsByteIdenticalAcrossThreadCounts) {
  const Stream s = clip(200);
  SweepSpec spec{.axis = SweepAxis::FaultSeverity,
                 .values = {0.0, 0.1, 0.3},
                 .policies = {"greedy"},
                 .link_factory = erasure_factory(),
                 .recovery = RecoveryConfig{.enabled = true},
                 .threads = 1};
  const auto serial = sweep(s, spec);
  ASSERT_EQ(serial.faults.size(), 3u);
  EXPECT_TRUE(serial.points.empty());
  for (unsigned threads : {2u, 8u}) {
    spec.threads = threads;
    EXPECT_EQ(sweep(s, spec).faults, serial.faults) << "threads=" << threads;
  }
}

TEST(SweepDeterminism, PointsStayInValueOrderUnderParallelism) {
  const Stream s = clip(150);
  const auto result =
      sweep(s, SweepSpec{.axis = SweepAxis::BufferMultiple,
                         .values = {8, 1, 4, 2},  // deliberately unsorted
                         .policies = {"greedy"},
                         .threads = 8});
  ASSERT_EQ(result.points.size(), 4u);
  EXPECT_EQ(result.points[0].x, 8.0);
  EXPECT_EQ(result.points[1].x, 1.0);
  EXPECT_EQ(result.points[2].x, 4.0);
  EXPECT_EQ(result.points[3].x, 2.0);
  for (const auto& point : result.points) {
    ASSERT_EQ(point.policies.size(), 1u);
    EXPECT_EQ(point.policies[0].policy, "greedy");
  }
}

TEST(SweepSpecValidation, RejectsUnrunnableSpecs) {
  const Stream s = clip(100);
  EXPECT_THROW(
      sweep(s, SweepSpec{.axis = SweepAxis::BufferMultiple,
                         .values = {2.0},
                         .policies = {}}),
      std::invalid_argument);
  EXPECT_THROW(
      sweep(s, SweepSpec{.axis = SweepAxis::FaultSeverity,
                         .values = {0.1},
                         .policies = {"greedy"}}),  // no link_factory
      std::invalid_argument);
}

// ------------------------------------------------ progress & queue wait

TEST(RunnerProgress, SerialReportsEveryTaskInOrder) {
  ParallelRunner runner(1);
  std::vector<std::function<void()>> tasks(5, [] {});
  std::vector<std::size_t> seen;
  const RunStats stats = runner.run(
      std::move(tasks),
      [&seen](std::size_t done, std::size_t total) {
        EXPECT_EQ(total, 5u);
        seen.push_back(done);
      });
  EXPECT_EQ(seen, (std::vector<std::size_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(stats.tasks, 5u);
}

TEST(RunnerProgress, ParallelReportsEveryTaskExactlyOnce) {
  ParallelRunner runner(4);
  std::vector<std::function<void()>> tasks(32, [] {});
  std::vector<std::size_t> seen;
  runner.run(std::move(tasks),
             [&seen](std::size_t done, std::size_t total) {
               EXPECT_EQ(total, 32u);
               seen.push_back(done);  // serialized under the merge lock
             });
  ASSERT_EQ(seen.size(), 32u);
  // `done` is a running count, so the serialized invocations see 1..32.
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(RunnerQueueWait, AccumulatesAcrossTasks) {
  ParallelRunner runner(2);
  std::vector<std::function<void()>> tasks(
      8, [] { std::this_thread::sleep_for(std::chrono::milliseconds(1)); });
  const RunStats stats = runner.run(std::move(tasks));
  // Later tasks start after earlier ones finish, so total queueing delay is
  // strictly positive on any batch with more tasks than threads.
  EXPECT_GT(stats.queue_us, 0);
  RunStats sum = stats;
  sum += stats;
  EXPECT_EQ(sum.queue_us, 2 * stats.queue_us);
}

TEST(SweepProgress, FiresOncePerCell) {
  const Stream s = clip(120);
  std::size_t calls = 0;
  SweepSpec spec{.axis = SweepAxis::BufferMultiple,
                 .values = {2, 4},
                 .policies = {"tail-drop", "greedy"},
                 .threads = 2};
  spec.progress = [&calls](std::size_t, std::size_t total) {
    EXPECT_EQ(total, 4u);
    ++calls;
  };
  sweep(s, spec);
  EXPECT_EQ(calls, 4u);
}

// ------------------------------------------- registry thread-determinism

TEST(SweepTelemetry, RegistrySnapshotIdenticalAcrossThreadCounts) {
  const Stream s = clip(150);
  const auto snapshot = [&s](unsigned threads) {
    obs::Registry reg;
    SweepSpec spec{.axis = SweepAxis::BufferMultiple,
                   .values = {1, 2, 4},
                   .policies = {"tail-drop", "greedy"},
                   .with_optimal = true,
                   .threads = threads};
    spec.registry = &reg;
    sweep(s, spec);
    // Timers are wall-clock noise; the deterministic snapshot excludes them.
    return reg.to_json(/*include_timers=*/false).dump();
  };
  const std::string serial = snapshot(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, snapshot(4));
  EXPECT_EQ(serial, snapshot(8));
}

TEST(SweepTelemetry, FaultAxisRegistryIdenticalAcrossThreadCounts) {
  const Stream s = clip(150);
  const auto snapshot = [&s](unsigned threads) {
    obs::Registry reg;
    SweepSpec spec{.axis = SweepAxis::FaultSeverity,
                   .values = {0.0, 0.1, 0.3},
                   .policies = {"greedy"},
                   .link_factory = erasure_factory(),
                   .threads = threads};
    spec.registry = &reg;
    sweep(s, spec);
    return reg.to_json(/*include_timers=*/false).dump();
  };
  const std::string serial = snapshot(1);
  EXPECT_EQ(serial, snapshot(4));
}

TEST(SweepTelemetry, CellSpansLandInTimers) {
  const Stream s = clip(100);
  obs::Registry reg;
  SweepSpec spec{.axis = SweepAxis::BufferMultiple,
                 .values = {2, 4},
                 .policies = {"greedy"},
                 .threads = 1};
  spec.registry = &reg;
  sweep(s, spec);
  const auto it = reg.timers().find("sweep.cell");
  ASSERT_NE(it, reg.timers().end());
  EXPECT_EQ(it->second.count(), 2);  // one sample per cell
}

}  // namespace
}  // namespace rtsmooth::sim
