// Tests-only reference implementation of the simulation core — the oracle
// for the differential equivalence suite (test_equivalence.cpp).
//
// The optimized core (ring buffers, recycled piece vectors, monotone playout
// cursor — DESIGN.md Sect. 12) must be *observationally identical* to the
// straightforward implementation it replaced. This header preserves that
// straightforward implementation: std::deque everywhere, a fresh
// std::vector per step, binary-search playout lookup. It is deliberately
// boring — the value of an oracle is that nobody ever optimizes it.
//
// Two rules keep the differential surface honest:
//   1. Policy logic is NOT duplicated: both cores instantiate the same
//      templates from policies/shed_algorithms.h, so a divergence can only
//      come from the data structures under test.
//   2. Reference links subclass the production `Link` interface, so the
//      production fault decorators (ErasureLink, GilbertElliottLink, ...)
//      wrap them unchanged and the lossy/recovery paths are compared too.
//
// The ReferenceSimulator emits the same JSONL events (config / violation /
// step / run) as SmoothingSimulator given a tracer-only telemetry handle,
// and its SimReport is compared with operator==.

#pragma once

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "core/client.h"
#include "core/generic_algorithm.h"
#include "core/link.h"
#include "core/metrics.h"
#include "core/server_buffer.h"
#include "core/slice.h"
#include "core/types.h"
#include "obs/trace_writer.h"
#include "policies/proactive_threshold.h"
#include "policies/shed_algorithms.h"
#include "sim/simulator.h"
#include "util/assert.h"
#include "util/rng.h"

namespace rtsmooth::refcore {

// ---------------------------------------------------------------------------
// Server buffer: deque of chunk descriptors (the pre-ring implementation).
// ---------------------------------------------------------------------------

class ReferenceServerBuffer {
 public:
  Bytes occupancy() const { return occupancy_; }
  bool empty() const { return occupancy_ == 0; }
  std::size_t chunk_count() const { return chunks_.size(); }

  const Chunk& chunk(std::size_t i) const {
    RTS_EXPECTS(i < chunks_.size());
    return chunks_[i];
  }

  std::int64_t droppable_slices(std::size_t i) const {
    const Chunk& c = chunk(i);
    if (i == 0 && c.head_sent > 0) return c.slices - 1;
    return c.slices;
  }

  void push(const SliceRun& run, std::size_t run_index, std::int64_t count) {
    RTS_EXPECTS(count >= 1);
    occupancy_ += run.slice_size * count;
    if (!chunks_.empty() && chunks_.back().run == &run) {
      chunks_.back().slices += count;
      return;
    }
    chunks_.push_back(Chunk{.run = &run, .run_index = run_index,
                            .slices = count, .head_sent = 0});
  }

  DropResult drop_slices(std::size_t i, std::int64_t k) {
    RTS_EXPECTS(i < chunks_.size());
    RTS_EXPECTS(k >= 1 && k <= droppable_slices(i));
    Chunk& c = chunks_[i];
    c.slices -= k;
    const DropResult freed{.bytes = c.run->slice_size * k,
                           .weight = c.run->weight * static_cast<Weight>(k),
                           .slices = k};
    occupancy_ -= freed.bytes;
    RTS_ASSERT(occupancy_ >= 0);
    if (on_drop_) on_drop_(*c.run, c.run_index, k);
    if (c.slices == 0) {
      RTS_ASSERT(c.head_sent == 0);
      chunks_.erase(chunks_.begin() +
                    static_cast<std::ptrdiff_t>(i));
    }
    return freed;
  }

  Bytes send(Bytes budget, std::vector<SentPiece>& out) {
    RTS_EXPECTS(budget >= 0);
    Bytes remaining = std::min(budget, occupancy_);
    const Bytes sent = remaining;
    while (remaining > 0) {
      RTS_ASSERT(!chunks_.empty());
      Chunk& head = chunks_.front();
      const Bytes take = std::min(remaining, head.bytes());
      const Bytes progress = head.head_sent + take;
      const std::int64_t completed = progress / head.run->slice_size;
      out.push_back(SentPiece{.run = head.run,
                              .run_index = head.run_index,
                              .bytes = take,
                              .completed_slices = completed});
      head.slices -= completed;
      head.head_sent = progress % head.run->slice_size;
      occupancy_ -= take;
      remaining -= take;
      if (head.slices == 0) {
        RTS_ASSERT(head.head_sent == 0);
        chunks_.pop_front();
      }
    }
    RTS_ENSURES(occupancy_ >= 0);
    return sent;
  }

  bool head_in_transmission() const {
    return !chunks_.empty() && chunks_.front().head_sent > 0;
  }

  using DropObserver = std::function<void(const SliceRun&, std::size_t,
                                          std::int64_t)>;
  void set_drop_observer(DropObserver observer) {
    on_drop_ = std::move(observer);
  }

 private:
  std::deque<Chunk> chunks_;
  Bytes occupancy_ = 0;
  DropObserver on_drop_;
};

// ---------------------------------------------------------------------------
// Links: deque-backed, fresh delivery vector per step (the pre-ring
// implementations). They implement the production Link interface so the
// fault decorators in src/faults/ wrap them unchanged.
// ---------------------------------------------------------------------------

class ReferenceFixedDelayLink final : public Link {
 public:
  explicit ReferenceFixedDelayLink(Time propagation_delay)
      : p_(propagation_delay) {
    RTS_EXPECTS(propagation_delay >= 0);
  }

  void submit(Time t, std::vector<SentPiece> pieces) override {
    if (pieces.empty()) return;
    RTS_EXPECTS(in_flight_.empty() ||
                in_flight_.back().deliver_at <= t + p_);
    in_flight_.push_back(
        Batch{.deliver_at = t + p_, .pieces = std::move(pieces)});
  }

  std::vector<SentPiece> deliver(Time t) override {
    std::vector<SentPiece> out;
    while (!in_flight_.empty() && in_flight_.front().deliver_at <= t) {
      RTS_ASSERT(in_flight_.front().deliver_at == t);  // polled every step
      auto& pieces = in_flight_.front().pieces;
      out.insert(out.end(), pieces.begin(), pieces.end());
      in_flight_.pop_front();
    }
    return out;
  }

  bool idle() const override { return in_flight_.empty(); }
  Time min_delay() const override { return p_; }

 private:
  struct Batch {
    Time deliver_at = 0;
    std::vector<SentPiece> pieces;
  };
  Time p_;
  std::deque<Batch> in_flight_;
};

class ReferenceBoundedJitterLink final : public Link {
 public:
  ReferenceBoundedJitterLink(Time propagation_delay, Time max_jitter, Rng rng)
      : p_(propagation_delay), j_(max_jitter), rng_(rng) {
    RTS_EXPECTS(propagation_delay >= 0);
    RTS_EXPECTS(max_jitter >= 0);
  }

  void submit(Time t, std::vector<SentPiece> pieces) override {
    if (pieces.empty()) return;
    const Time jitter = j_ == 0 ? 0 : rng_.uniform_int(0, j_);
    // Clamp so deliveries stay FIFO: a later submission never arrives
    // before an earlier one.
    const Time at = std::max(t + p_ + jitter, last_delivery_);
    last_delivery_ = at;
    in_flight_.push_back(Batch{.deliver_at = at, .pieces = std::move(pieces)});
  }

  std::vector<SentPiece> deliver(Time t) override {
    std::vector<SentPiece> out;
    while (!in_flight_.empty() && in_flight_.front().deliver_at <= t) {
      auto& pieces = in_flight_.front().pieces;
      out.insert(out.end(), pieces.begin(), pieces.end());
      in_flight_.pop_front();
    }
    return out;
  }

  bool idle() const override { return in_flight_.empty(); }
  Time min_delay() const override { return p_; }

 private:
  struct Batch {
    Time deliver_at = 0;
    std::vector<SentPiece> pieces;
  };
  Time p_;
  Time j_;
  Rng rng_;
  Time last_delivery_ = 0;
  std::deque<Batch> in_flight_;
};

// ---------------------------------------------------------------------------
// Policies: the same shed templates as production, instantiated over the
// reference buffer. Mirrors make_policy()'s name registry and defaults.
// ---------------------------------------------------------------------------

class ReferencePolicy {
 public:
  explicit ReferencePolicy(std::string_view name, std::uint64_t seed = 7)
      : rng_(seed) {
    if (name == "tail-drop") {
      kind_ = Kind::Tail;
    } else if (name == "greedy") {
      kind_ = Kind::Greedy;
    } else if (name == "head-drop") {
      kind_ = Kind::Head;
    } else if (name == "random") {
      kind_ = Kind::Random;
    } else if (name == "proactive") {
      kind_ = Kind::Proactive;
    } else {
      RTS_ASSERT(false && "unknown reference policy name");
    }
  }

  DropResult shed(ReferenceServerBuffer& buf, Bytes target) {
    switch (kind_) {
      case Kind::Tail: return shed::tail_shed(buf, target);
      case Kind::Greedy: return shed::greedy_shed(buf, target, 1e300);
      case Kind::Head: return shed::head_shed(buf, target);
      case Kind::Random: return shed::random_shed(buf, target, rng_);
      case Kind::Proactive: return shed::greedy_shed(buf, target, 1e300);
    }
    return {};
  }

  DropResult early_drop(ReferenceServerBuffer& buf, Bytes bound) {
    if (kind_ != Kind::Proactive) return {};
    const auto threshold = static_cast<Bytes>(
        std::floor(proactive_.watermark * static_cast<double>(bound)));
    if (buf.occupancy() <= threshold) return {};
    return shed::greedy_shed(buf, threshold, proactive_.value_floor);
  }

 private:
  enum class Kind { Tail, Greedy, Head, Random, Proactive };
  Kind kind_ = Kind::Tail;
  Rng rng_;
  ProactiveConfig proactive_{};
};

// ---------------------------------------------------------------------------
// Server: the generic algorithm with a deque retransmission queue and a
// fresh output vector per step (the pre-step_into interface).
// ---------------------------------------------------------------------------

class ReferenceServer {
 public:
  ReferenceServer(ServerConfig config, std::string_view policy_name)
      : config_(config), policy_(policy_name) {
    RTS_EXPECTS(config_.buffer >= 1);
    RTS_EXPECTS(config_.rate >= 1);
    buffer_.set_drop_observer(
        [this](const SliceRun& run, std::size_t /*run_index*/,
               std::int64_t slices) {
          RTS_ASSERT(current_report_ != nullptr);
          const Bytes bytes = run.slice_size * slices;
          current_report_->dropped_server.add(
              bytes, run.weight * static_cast<Weight>(slices), slices);
        });
  }

  using LinkLossSink = std::function<void(const SliceRun&, std::size_t,
                                          Bytes)>;
  void set_link_loss_sink(LinkLossSink sink) { loss_sink_ = std::move(sink); }

  const ReferenceServerBuffer& buffer() const { return buffer_; }
  bool idle() const { return buffer_.empty() && retx_queue_.empty(); }

  std::vector<SentPiece> step(Time t, const ArrivalBatch& arrivals,
                              std::span<const Nack> nacks,
                              SimReport& report) {
    current_report_ = &report;
    std::vector<SentPiece> out;

    for (const Nack& nack : nacks) handle_nack(nack, t);

    policy_.early_drop(buffer_, config_.buffer);

    for (std::size_t i = 0; i < arrivals.runs.size(); ++i) {
      const SliceRun& run = arrivals.runs[i];
      buffer_.push(run, arrivals.first_index + i, run.count);
      report.offered.add(run.total_bytes(), run.total_weight(), run.count);
      report.offered_by_type[static_cast<std::size_t>(run.frame_type)].add(
          run.total_bytes(), run.total_weight(), run.count);
    }

    const Bytes retx_sent = send_retransmissions(t, config_.rate, out);

    const Bytes planned_send =
        std::min(config_.rate - retx_sent, buffer_.occupancy());

    const Bytes target = config_.buffer + planned_send;
    if (buffer_.occupancy() > target) {
      policy_.shed(buffer_, target);
      RTS_ASSERT(buffer_.occupancy() <= target);
    }

    const Bytes sent = buffer_.send(planned_send, out);
    RTS_ASSERT(sent == planned_send);
    report.max_link_bytes_per_step =
        std::max(report.max_link_bytes_per_step, retx_sent + sent);
    report.max_server_occupancy =
        std::max(report.max_server_occupancy, buffer_.occupancy());
    RTS_ENSURES(buffer_.occupancy() <= config_.buffer);
    current_report_ = nullptr;
    return out;
  }

  void account_residual(SimReport& report) const {
    for (std::size_t i = 0; i < buffer_.chunk_count(); ++i) {
      const Chunk& c = buffer_.chunk(i);
      report.residual.add(c.bytes(),
                          c.run->weight * static_cast<Weight>(c.slices),
                          c.slices);
    }
    for (const RetxEntry& entry : retx_queue_) {
      const SliceRun& run = *entry.piece.run;
      const std::int64_t whole = entry.piece.bytes / run.slice_size;
      report.residual.add(entry.piece.bytes,
                          run.weight * static_cast<Weight>(whole), whole);
    }
  }

 private:
  struct RetxEntry {
    SentPiece piece;
    Time ready_at = 0;
  };

  void write_off(const SentPiece& piece) {
    if (loss_sink_) loss_sink_(*piece.run, piece.run_index, piece.bytes);
  }

  void handle_nack(const Nack& nack, Time t) {
    const RecoveryConfig& cfg = config_.recovery;
    const std::int32_t next_attempt = nack.piece.retx_attempt + 1;
    const Time deadline = nack.piece.run->arrival + cfg.smoothing_delay;
    if (!cfg.enabled || next_attempt > cfg.max_retries) {
      write_off(nack.piece);
      return;
    }
    const Time ready = t + (cfg.backoff_base << (next_attempt - 1));
    if (ready > deadline) {
      write_off(nack.piece);
      return;
    }
    SentPiece copy = nack.piece;
    copy.retx_attempt = next_attempt;
    retx_queue_.push_back(RetxEntry{.piece = copy, .ready_at = ready});
  }

  Bytes send_retransmissions(Time t, Bytes budget,
                             std::vector<SentPiece>& out) {
    Bytes sent = 0;
    for (auto it = retx_queue_.begin(); it != retx_queue_.end();) {
      if (t > it->piece.run->arrival + config_.recovery.smoothing_delay) {
        write_off(it->piece);
        it = retx_queue_.erase(it);
        continue;
      }
      if (it->ready_at > t) {
        ++it;
        continue;
      }
      if (it->piece.bytes > budget - sent) break;
      sent += it->piece.bytes;
      out.push_back(it->piece);
      if (current_report_ != nullptr) {
        current_report_->retransmitted_bytes += it->piece.bytes;
      }
      it = retx_queue_.erase(it);
    }
    return sent;
  }

  ServerConfig config_;
  ReferencePolicy policy_;
  ReferenceServerBuffer buffer_;
  std::deque<RetxEntry> retx_queue_;
  LinkLossSink loss_sink_;
  SimReport* current_report_ = nullptr;
};

// ---------------------------------------------------------------------------
// Client: reconstruction buffer with the pre-cursor playout lookup
// (Stream::arrivals_at binary search every step). Telemetry- and
// recorder-free: the equivalence suite compares tracer-only runs.
// ---------------------------------------------------------------------------

class ReferenceClient {
 public:
  ReferenceClient(const Stream& stream, Bytes capacity, Time playout_offset,
                  PlayoutMode mode, Time smoothing_delay,
                  UnderflowPolicy underflow, Time max_stall)
      : stream_(&stream),
        capacity_(capacity),
        offset_(playout_offset),
        mode_(mode),
        smoothing_delay_(smoothing_delay),
        underflow_(underflow),
        max_stall_(max_stall),
        runs_(stream.run_count()) {
    RTS_EXPECTS(capacity >= 1);
    RTS_EXPECTS(playout_offset >= 0);
    RTS_EXPECTS(mode == PlayoutMode::ArrivalPlusOffset ||
                smoothing_delay >= 0);
    RTS_EXPECTS(max_stall >= 0);
  }

  void deliver(Time t, std::span<const SentPiece> pieces, SimReport& report) {
    (void)report;
    for (const SentPiece& piece : pieces) {
      RTS_ASSERT(piece.bytes > 0);
      RunState& rs = runs_[piece.run_index];
      if (mode_ == PlayoutMode::TimerFromFirstDelivery &&
          timer_base_ == kNever) {
        timer_frame_ = piece.run->arrival;
        timer_base_ = t + smoothing_delay_;
      }
      const Time playout_at = playout_step(piece.run->arrival);
      if (rs.played_out || playout_at < t) {
        rs.late_lost += piece.bytes;
        total_late_ += piece.bytes;
        continue;
      }
      rs.stored += piece.bytes;
      occupancy_ += piece.bytes;
      arrived_this_step_.push_back({piece.run_index, piece.bytes});
    }
  }

  void play(Time t, SimReport& report) {
    play_frame(t, report);
    settle_capacity();
    report.max_client_occupancy =
        std::max(report.max_client_occupancy, occupancy_);
    RTS_ENSURES(occupancy_ >= 0);
  }

  void add_link_loss(std::size_t run_index, Bytes bytes) {
    RTS_EXPECTS(run_index < runs_.size());
    RTS_EXPECTS(bytes > 0);
    runs_[run_index].link_lost += bytes;
  }

  void finalize(SimReport& report) {
    RTS_EXPECTS(!finalized_);
    finalized_ = true;
    const auto runs = stream_->runs();
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      RunState& rs = runs_[i];
      const SliceRun& run = runs[i];
      if (rs.stored > 0) {
        const std::int64_t whole = rs.stored / run.slice_size;
        report.residual.add(rs.stored,
                            run.weight * static_cast<Weight>(whole), whole);
        if (rs.stored % run.slice_size != 0) report.residual.slices += 1;
        occupancy_ -= rs.stored;
        rs.stored = 0;
        continue;
      }
      const Bytes lost_bytes =
          rs.overflow_lost + rs.late_lost + rs.leftover_lost + rs.link_lost;
      if (lost_bytes == 0) continue;
      RTS_ASSERT(lost_bytes % run.slice_size == 0);
      const std::int64_t lost_slices = lost_bytes / run.slice_size;
      const std::int64_t overflow_slices = rs.overflow_lost / run.slice_size;
      const std::int64_t link_slices = rs.link_lost / run.slice_size;
      const std::int64_t late_slices =
          lost_slices - overflow_slices - link_slices;
      RTS_ASSERT(late_slices >= 0);
      report.dropped_client_overflow.add(
          rs.overflow_lost, run.weight * static_cast<Weight>(overflow_slices),
          overflow_slices);
      report.lost_link.add(rs.link_lost,
                           run.weight * static_cast<Weight>(link_slices),
                           link_slices);
      report.dropped_client_late.add(
          rs.late_lost + rs.leftover_lost,
          run.weight * static_cast<Weight>(late_slices), late_slices);
    }
    report.stall_steps += stall_shift_;
  }

  Bytes occupancy() const { return occupancy_; }
  Time stall_steps() const { return stall_shift_; }
  std::int64_t underflow_events() const { return underflow_events_; }
  Bytes late_bytes_so_far() const { return total_late_; }
  Bytes overflow_bytes_so_far() const { return total_overflow_; }
  Bytes leftover_bytes_so_far() const { return total_leftover_; }

 private:
  struct RunState {
    Bytes stored = 0;
    Bytes overflow_lost = 0;
    Bytes late_lost = 0;
    Bytes leftover_lost = 0;
    Bytes link_lost = 0;
    std::int64_t played = 0;
    bool played_out = false;
  };

  Time playout_step(Time arrival) const {
    if (mode_ == PlayoutMode::ArrivalPlusOffset) {
      return arrival + offset_ + stall_shift_;
    }
    if (timer_base_ == kNever) return kNever;
    return timer_base_ + stall_shift_ + (arrival - timer_frame_);
  }

  void play_frame(Time t, SimReport& report) {
    Time frame_time;
    if (mode_ == PlayoutMode::ArrivalPlusOffset) {
      frame_time = t - offset_ - stall_shift_;
    } else {
      if (timer_base_ == kNever || t < timer_base_ + stall_shift_) return;
      frame_time = timer_frame_ + (t - timer_base_ - stall_shift_);
    }
    if (frame_time < 0) return;
    // The pre-cursor lookup: binary search the run table every step.
    const auto due = stream_->arrivals_at(frame_time);
    if (underflow_ == UnderflowPolicy::Stall && !due.empty() &&
        current_frame_stall_ < max_stall_) {
      for (const SliceRun& run : due) {
        const auto run_index =
            static_cast<std::size_t>(&run - stream_->runs().data());
        const RunState& rs = runs_[run_index];
        if (!rs.played_out &&
            (rs.stored + rs.link_lost) % run.slice_size != 0) {
          ++stall_shift_;
          ++current_frame_stall_;
          return;
        }
      }
    }
    current_frame_stall_ = 0;
    for (const SliceRun& run : due) {
      const auto run_index =
          static_cast<std::size_t>(&run - stream_->runs().data());
      RunState& rs = runs_[run_index];
      RTS_ASSERT(!rs.played_out);
      rs.played_out = true;
      const std::int64_t complete = rs.stored / run.slice_size;
      const Bytes played_bytes = complete * run.slice_size;
      const Bytes leftover = rs.stored - played_bytes;
      rs.played = complete;
      rs.leftover_lost += leftover;
      total_leftover_ += leftover;
      if (leftover > 0) ++underflow_events_;
      occupancy_ -= rs.stored;
      rs.stored = 0;
      report.played.add(played_bytes,
                        run.weight * static_cast<Weight>(complete), complete);
      report.played_by_type[static_cast<std::size_t>(run.frame_type)].add(
          played_bytes, run.weight * static_cast<Weight>(complete), complete);
    }
  }

  void settle_capacity() {
    while (occupancy_ > capacity_ && !arrived_this_step_.empty()) {
      auto& [run_index, bytes] = arrived_this_step_.back();
      RunState& rs = runs_[run_index];
      const Bytes excess = occupancy_ - capacity_;
      const Bytes evict = std::min({excess, bytes, rs.stored});
      if (evict == 0) {
        arrived_this_step_.pop_back();
        continue;
      }
      rs.stored -= evict;
      rs.overflow_lost += evict;
      total_overflow_ += evict;
      occupancy_ -= evict;
      bytes -= evict;
      if (bytes == 0) arrived_this_step_.pop_back();
    }
    RTS_ASSERT(occupancy_ <= capacity_);
    arrived_this_step_.clear();
  }

  const Stream* stream_;
  Bytes capacity_;
  Time offset_;
  PlayoutMode mode_;
  Time smoothing_delay_;
  UnderflowPolicy underflow_;
  Time max_stall_;
  Time timer_base_ = kNever;
  Time timer_frame_ = kNever;
  Time stall_shift_ = 0;
  Time current_frame_stall_ = 0;
  std::int64_t underflow_events_ = 0;
  Bytes total_late_ = 0;
  Bytes total_overflow_ = 0;
  Bytes total_leftover_ = 0;
  Bytes occupancy_ = 0;
  std::vector<RunState> runs_;
  std::vector<std::pair<std::size_t, Bytes>> arrived_this_step_;
  bool finalized_ = false;
};

// ---------------------------------------------------------------------------
// Simulator: the production step loop over the reference components, with
// the invariant monitor replicated inline (it reads production types).
// Emits the same config / violation / step / run JSONL events.
// ---------------------------------------------------------------------------

class ReferenceSimulator {
 public:
  /// `link` defaults to ReferenceFixedDelayLink(config.link_delay). Pass a
  /// production fault decorator wrapped around a reference link to compare
  /// lossy runs.
  ReferenceSimulator(const Stream& stream, sim::SimConfig config,
                     std::string_view policy_name,
                     std::unique_ptr<Link> link = nullptr)
      : stream_(&stream),
        config_(config),
        server_(make_server_config(config), policy_name),
        link_(link ? std::move(link)
                   : std::make_unique<ReferenceFixedDelayLink>(
                         config.link_delay)),
        client_(stream, config.client_buffer,
                config.link_delay + config.smoothing_delay, config.playout,
                config.smoothing_delay, config.underflow, config.max_stall) {
    RTS_EXPECTS(config.validate(stream).empty());
  }

  SimReport run(obs::TraceWriter* tracer = nullptr) {
    RTS_EXPECTS(!ran_);
    ran_ = true;
    SimReport report;
    ArrivalCursor cursor(*stream_);
    server_.set_link_loss_sink(
        [this](const SliceRun& /*run*/, std::size_t run_index, Bytes bytes) {
          client_.add_link_loss(run_index, bytes);
        });

    if (tracer != nullptr) {
      obs::Json event = obs::Json::object();
      event["type"] = "config";
      fill_config(event);
      tracer->write(event);
    }

    const Time horizon = stream_->horizon();
    const Time playout_offset = config_.link_delay + config_.smoothing_delay;
    const Time last_playout = horizon - 1 + playout_offset;
    const Time limit = horizon + playout_offset +
                       stream_->total_bytes() / config_.rate + 16 +
                       8 * (link_->min_delay() + 1) + 256;
    const Time sojourn_bound =
        (config_.server_buffer + config_.rate - 1) / config_.rate;
    Time t = 0;
    for (; t <= last_playout || !server_.idle() || !link_->idle() ||
           client_.occupancy() > 0;
         ++t) {
      RTS_ASSERT(t <= limit + client_.stall_steps());
      const Bytes drops_before = report.dropped_server.bytes;
      const Bytes played_before = report.played.bytes;
      const Bytes client_dropped_before = client_dropped_so_far();
      const Bytes retx_before = report.retransmitted_bytes;
      const Time stalls_before = client_.stall_steps();

      const auto nacks = link_->collect_nacks(t);
      const ArrivalBatch batch = cursor.step(t);
      Bytes arrived = 0;
      for (const SliceRun& run : batch.runs) arrived += run.total_bytes();
      auto pieces = server_.step(t, batch, nacks, report);
      Bytes sent = 0;
      for (const SentPiece& piece : pieces) sent += piece.bytes;
      if (!pieces.empty()) link_->submit(t, std::move(pieces));
      const auto delivered = link_->deliver(t);
      client_.deliver(t, delivered, report);
      client_.play(t, report);

      // Inline InvariantMonitor (faults/invariant_monitor.h reads the
      // production SmoothingServer/Client types): same checks, same
      // violation events, same SimReport::invariants tallies.
      if (server_.buffer().occupancy() > config_.server_buffer) {
        record_violation(tracer, t, report.invariants.server_occupancy,
                         "server_occupancy",
                         server_.buffer().occupancy() - config_.server_buffer,
                         report);
      }
      if (server_.buffer().chunk_count() > 0) {
        const Time age = t - server_.buffer().chunk(0).run->arrival;
        if (age > sojourn_bound) {
          record_violation(tracer, t, report.invariants.server_sojourn,
                           "server_sojourn", age - sojourn_bound, report);
        }
      }
      if (client_.overflow_bytes_so_far() > prev_overflow_) {
        record_violation(tracer, t, report.invariants.client_overflow,
                         "client_overflow",
                         client_.overflow_bytes_so_far() - prev_overflow_,
                         report);
      }
      if (client_.late_bytes_so_far() > prev_late_ ||
          client_.underflow_events() > prev_underflow_events_) {
        record_violation(
            tracer, t, report.invariants.client_underflow, "client_underflow",
            (client_.late_bytes_so_far() - prev_late_) +
                (client_.underflow_events() - prev_underflow_events_),
            report);
      }
      prev_overflow_ = client_.overflow_bytes_so_far();
      prev_late_ = client_.late_bytes_so_far();
      prev_underflow_events_ = client_.underflow_events();

      if (tracer != nullptr) {
        Bytes delivered_bytes = 0;
        for (const SentPiece& piece : delivered) {
          delivered_bytes += piece.bytes;
        }
        obs::Json event = obs::Json::object();
        event["type"] = "step";
        event["t"] = t;
        event["arrived"] = arrived;
        event["sent"] = sent;
        event["delivered"] = delivered_bytes;
        event["played"] = report.played.bytes - played_before;
        event["dropped_server"] = report.dropped_server.bytes - drops_before;
        event["dropped_client"] =
            client_dropped_so_far() - client_dropped_before;
        event["retransmitted"] = report.retransmitted_bytes - retx_before;
        event["server_occupancy"] = server_.buffer().occupancy();
        event["client_occupancy"] = client_.occupancy();
        event["stalled"] = client_.stall_steps() > stalls_before;
        tracer->write(event);
      }
    }
    report.steps = t;
    client_.finalize(report);
    server_.account_residual(report);
    if (tracer != nullptr) {
      obs::Json event = obs::Json::object();
      event["type"] = "run";
      event["steps"] = report.steps;
      event["offered_bytes"] = report.offered.bytes;
      event["played_bytes"] = report.played.bytes;
      event["dropped_server_bytes"] = report.dropped_server.bytes;
      event["dropped_client_overflow_bytes"] =
          report.dropped_client_overflow.bytes;
      event["dropped_client_late_bytes"] = report.dropped_client_late.bytes;
      event["lost_link_bytes"] = report.lost_link.bytes;
      event["residual_bytes"] = report.residual.bytes;
      event["retransmitted_bytes"] = report.retransmitted_bytes;
      event["stall_steps"] = report.stall_steps;
      event["invariant_violations"] = report.invariants.total();
      tracer->write(event);
    }
    RTS_ENSURES(report.conserves());
    return report;
  }

 private:
  static ServerConfig make_server_config(const sim::SimConfig& config) {
    ServerConfig sc{.buffer = config.server_buffer,
                    .rate = config.rate,
                    .recovery = config.recovery};
    sc.recovery.smoothing_delay = config.smoothing_delay;
    return sc;
  }

  Bytes client_dropped_so_far() const {
    return client_.late_bytes_so_far() + client_.overflow_bytes_so_far() +
           client_.leftover_bytes_so_far();
  }

  void fill_config(obs::Json& event) const {
    event["server_buffer"] = config_.server_buffer;
    event["client_buffer"] = config_.client_buffer;
    event["rate"] = config_.rate;
    event["smoothing_delay"] = config_.smoothing_delay;
    event["link_delay"] = config_.link_delay;
    event["runs"] = static_cast<std::int64_t>(stream_->run_count());
  }

  void record_violation(obs::TraceWriter* tracer, Time t,
                        std::int64_t& counter, std::string_view kind,
                        std::int64_t magnitude, SimReport& report) {
    counter += 1;
    report.invariants.first = std::min(report.invariants.first, t);
    if (tracer != nullptr) {
      obs::Json event = obs::Json::object();
      event["type"] = "violation";
      event["t"] = t;
      event["kind"] = kind;
      event["magnitude"] = magnitude;
      tracer->write(event);
    }
  }

  const Stream* stream_;
  sim::SimConfig config_;
  ReferenceServer server_;
  std::unique_ptr<Link> link_;
  ReferenceClient client_;
  Bytes prev_overflow_ = 0;
  Bytes prev_late_ = 0;
  std::int64_t prev_underflow_events_ = 0;
  bool ran_ = false;
};

}  // namespace rtsmooth::refcore
