// Unit and cross-validation tests for the off-line solvers: the segment
// tree, the two feasibility forms, the polymatroid greedy (unit slices), the
// Pareto DP (variable slices), and the brute-force oracle tying them all
// together.

#include <gtest/gtest.h>

#include "analysis/competitive.h"
#include "offline/brute_force.h"
#include "offline/feasibility.h"
#include "offline/pareto_dp.h"
#include "offline/segment_tree.h"
#include "offline/unit_optimal.h"
#include "stream_helpers.h"
#include "util/rng.h"

namespace rtsmooth {
namespace {

using offline::arrivals_of;
using offline::brute_force_optimal;
using offline::ByteArrivals;
using offline::feasible;
using offline::feasible_interval_form;
using offline::lindley_peak;
using offline::pareto_dp_optimal;
using offline::RangeAddTree;
using offline::unit_optimal;
using testing::slice;
using testing::stream_of;
using testing::units;

// ---------------------------------------------------------------- seg tree

TEST(SegmentTree, AffineInitialization) {
  RangeAddTree t(6, 10, -3);  // 10, 7, 4, 1, -2, -5
  EXPECT_EQ(t.range_max(0, 5), 10);
  EXPECT_EQ(t.range_min(0, 5), -5);
  EXPECT_EQ(t.range_max(2, 4), 4);
  EXPECT_EQ(t.range_min(1, 3), 1);
}

TEST(SegmentTree, RangeAddShiftsQueries) {
  RangeAddTree t(5, 0, 0);
  t.add(1, 3, 7);
  EXPECT_EQ(t.range_max(0, 4), 7);
  EXPECT_EQ(t.range_min(0, 4), 0);
  EXPECT_EQ(t.range_min(1, 3), 7);
  t.add(0, 4, -2);
  EXPECT_EQ(t.range_max(0, 0), -2);
  EXPECT_EQ(t.range_max(0, 4), 5);
}

TEST(SegmentTree, MatchesNaiveOnRandomOperations) {
  Rng rng(31);
  const std::size_t n = 40;
  RangeAddTree t(n, 3, 2);
  std::vector<std::int64_t> naive(n);
  for (std::size_t i = 0; i < n; ++i) {
    naive[i] = 3 + 2 * static_cast<std::int64_t>(i);
  }
  for (int op = 0; op < 500; ++op) {
    auto lo = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    auto hi = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    if (lo > hi) std::swap(lo, hi);
    if (rng.bernoulli(0.5)) {
      const std::int64_t delta = rng.uniform_int(-20, 20);
      t.add(lo, hi, delta);
      for (std::size_t i = lo; i <= hi; ++i) naive[i] += delta;
    } else {
      std::int64_t mx = naive[lo];
      std::int64_t mn = naive[lo];
      for (std::size_t i = lo; i <= hi; ++i) {
        mx = std::max(mx, naive[i]);
        mn = std::min(mn, naive[i]);
      }
      EXPECT_EQ(t.range_max(lo, hi), mx);
      EXPECT_EQ(t.range_min(lo, hi), mn);
    }
  }
}

// ------------------------------------------------------------- feasibility

TEST(Feasibility, LindleyPeakSimple) {
  // 5 bytes at t=0, rate 2: occupancy 3, 1, 0.
  const ByteArrivals a = {{0, 5}};
  EXPECT_EQ(lindley_peak(a, 2), 3);
}

TEST(Feasibility, LindleyDrainsAcrossGaps) {
  const ByteArrivals a = {{0, 10}, {5, 10}};
  // After step 0: 8; steps 1-4 drain 8 more -> 0; step 5: 8 again.
  EXPECT_EQ(lindley_peak(a, 2), 8);
}

TEST(Feasibility, BothFormsAgreeOnRandomInstances) {
  Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    ByteArrivals a;
    Time t = 0;
    const int steps = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < steps; ++i) {
      t += rng.uniform_int(1, 3);
      a.emplace_back(t, rng.uniform_int(0, 9));
    }
    const Bytes buffer = rng.uniform_int(0, 12);
    const Bytes rate = rng.uniform_int(1, 4);
    EXPECT_EQ(feasible(a, buffer, rate),
              feasible_interval_form(a, buffer, rate))
        << "trial " << trial;
  }
}

TEST(Feasibility, ArrivalsOfAggregatesRuns) {
  const Stream s = stream_of({units(2, 3), slice(2, 4), units(5, 1)});
  const ByteArrivals a = arrivals_of(s);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], (std::pair<Time, Bytes>{2, 7}));
  EXPECT_EQ(a[1], (std::pair<Time, Bytes>{5, 1}));
}

// ------------------------------------------------------------ unit optimal

TEST(UnitOptimal, AcceptsEverythingWhenFeasible) {
  const Stream s = stream_of({units(0, 3, 5.0), units(1, 2, 1.0)});
  const auto result = unit_optimal(s, /*buffer=*/5, /*rate=*/2);
  EXPECT_DOUBLE_EQ(result.benefit, 17.0);
  EXPECT_EQ(result.accepted_slices, 5);
}

TEST(UnitOptimal, PrefersHeavySlicesUnderPressure) {
  // One step, B=2, R=1: at most 3 slices survive; it must keep the 3
  // heaviest of the 5 offered.
  const Stream s = stream_of({units(0, 2, 1.0), units(0, 3, 10.0)});
  const auto result = unit_optimal(s, 2, 1);
  EXPECT_DOUBLE_EQ(result.benefit, 30.0);
  EXPECT_EQ(result.accepted_per_run[0], 0);
  EXPECT_EQ(result.accepted_per_run[1], 3);
}

TEST(UnitOptimal, AcceptedSetIsFeasible) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const Stream s =
        analysis::random_unit_stream(rng, 20, 8, 10.0);
    const Bytes buffer = rng.uniform_int(1, 10);
    const Bytes rate = rng.uniform_int(1, 4);
    const auto result = unit_optimal(s, buffer, rate);
    ByteArrivals accepted;
    for (std::size_t i = 0; i < s.run_count(); ++i) {
      const std::int64_t take = result.accepted_per_run[i];
      if (take == 0) continue;
      const Time t = s.runs()[i].arrival;
      if (!accepted.empty() && accepted.back().first == t) {
        accepted.back().second += take;
      } else {
        accepted.emplace_back(t, take);
      }
    }
    EXPECT_TRUE(feasible(accepted, buffer, rate)) << "trial " << trial;
  }
}

TEST(UnitOptimal, MatchesBruteForceOnRandomSmallInstances) {
  Rng rng(6);
  for (int trial = 0; trial < 120; ++trial) {
    const Stream s = analysis::random_unit_stream(rng, 6, 3, 8.0);
    if (s.total_slices() > 14) continue;
    const Bytes buffer = rng.uniform_int(1, 6);
    const Bytes rate = rng.uniform_int(1, 3);
    const auto fast = unit_optimal(s, buffer, rate);
    const Weight oracle = brute_force_optimal(s, buffer, rate);
    EXPECT_NEAR(fast.benefit, oracle, 1e-9) << "trial " << trial;
  }
}

TEST(UnitOptimal, EmptyStream) {
  const Stream s;
  EXPECT_DOUBLE_EQ(unit_optimal(s, 5, 1).benefit, 0.0);
}

// --------------------------------------------------------------- Pareto DP

TEST(ParetoDp, WholeFramesUnderPressure) {
  // Two frames of 4 bytes each at t=0,1 with B=4, R=2: keeping both is
  // infeasible (after step 1 occupancy would be 4+4-2-2 = 4 > ... check:
  // keep both: Q(0)=2, Q(1)=4 <= B! So both fit). Use B=3 to force a choice.
  const Stream s = stream_of({slice(0, 4, 10.0), slice(1, 4, 12.0)});
  const auto both = pareto_dp_optimal(s, 4, 2);
  EXPECT_DOUBLE_EQ(both.benefit, 22.0);
  const auto pressured = pareto_dp_optimal(s, 3, 2);
  EXPECT_DOUBLE_EQ(pressured.benefit, 12.0);  // keep the heavier frame
  EXPECT_TRUE(pressured.exact);
}

TEST(ParetoDp, MatchesBruteForceOnRandomVariableInstances) {
  Rng rng(8);
  for (int trial = 0; trial < 120; ++trial) {
    const Stream s =
        analysis::random_variable_stream(rng, 6, 2, 6.0, /*max_slice=*/4);
    if (s.total_slices() > 12) continue;
    const Bytes buffer = rng.uniform_int(4, 12);
    const Bytes rate = rng.uniform_int(1, 4);
    const auto dp = pareto_dp_optimal(s, buffer, rate);
    const Weight oracle = brute_force_optimal(s, buffer, rate);
    EXPECT_TRUE(dp.exact);
    EXPECT_NEAR(dp.benefit, oracle, 1e-9) << "trial " << trial;
  }
}

TEST(ParetoDp, AgreesWithUnitOptimalOnUnitStreams) {
  Rng rng(9);
  for (int trial = 0; trial < 40; ++trial) {
    const Stream s = analysis::random_unit_stream(rng, 10, 5, 9.0);
    const Bytes buffer = rng.uniform_int(1, 8);
    const Bytes rate = rng.uniform_int(1, 3);
    const auto dp = pareto_dp_optimal(s, buffer, rate);
    const auto greedy = unit_optimal(s, buffer, rate);
    EXPECT_NEAR(dp.benefit, greedy.benefit, 1e-9) << "trial " << trial;
  }
}

TEST(ParetoDp, StateLimitProducesLowerBound) {
  Rng rng(10);
  const Stream s =
      analysis::random_variable_stream(rng, 12, 3, 9.0, /*max_slice=*/5);
  const auto exact = pareto_dp_optimal(s, 20, 3);
  const auto capped = pareto_dp_optimal(s, 20, 3, /*state_limit=*/2);
  EXPECT_FALSE(capped.exact);
  EXPECT_LE(capped.benefit, exact.benefit + 1e-9);
}

TEST(ParetoDp, EmptyStream) {
  const Stream s;
  EXPECT_DOUBLE_EQ(pareto_dp_optimal(s, 5, 1).benefit, 0.0);
}

// ------------------------------------------------------- quantized bracket

TEST(QuantizedBracket, QuantumOneIsExact) {
  Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    const Stream s =
        analysis::random_variable_stream(rng, 8, 2, 7.0, /*max_slice=*/4);
    const Bytes buffer = rng.uniform_int(4, 10);
    const Bytes rate = rng.uniform_int(1, 3);
    const auto exact = offline::pareto_dp_optimal(s, buffer, rate);
    const auto bracket =
        offline::quantized_optimal_bracket(s, buffer, rate, 1);
    EXPECT_NEAR(bracket.lower, exact.benefit, 1e-9) << trial;
    EXPECT_NEAR(bracket.upper, exact.benefit, 1e-9) << trial;
  }
}

TEST(QuantizedBracket, SandwichesTheExactOptimum) {
  Rng rng(22);
  for (int trial = 0; trial < 30; ++trial) {
    const Stream s =
        analysis::random_variable_stream(rng, 10, 2, 7.0, /*max_slice=*/9);
    const Bytes buffer = rng.uniform_int(9, 24);
    const Bytes rate = rng.uniform_int(3, 6);
    const auto exact = offline::pareto_dp_optimal(s, buffer, rate);
    for (Bytes quantum : {2, 3}) {
      const auto bracket =
          offline::quantized_optimal_bracket(s, buffer, rate, quantum);
      EXPECT_LE(bracket.lower, exact.benefit + 1e-9)
          << trial << " q=" << quantum;
      EXPECT_GE(bracket.upper, exact.benefit - 1e-9)
          << trial << " q=" << quantum;
    }
  }
}

TEST(QuantizedBracket, TightensAsQuantumShrinks) {
  Rng rng(23);
  const Stream s =
      analysis::random_variable_stream(rng, 20, 3, 7.0, /*max_slice=*/16);
  const Bytes buffer = 48;
  const Bytes rate = 8;
  const auto coarse = offline::quantized_optimal_bracket(s, buffer, rate, 8);
  const auto fine = offline::quantized_optimal_bracket(s, buffer, rate, 1);
  // Quantum 1 collapses the bracket to the exact optimum; the coarse
  // bracket must contain it.
  EXPECT_NEAR(fine.upper - fine.lower, 0.0, 1e-9);
  EXPECT_LE(coarse.lower, fine.lower + 1e-9);
  EXPECT_GE(coarse.upper, fine.upper - 1e-9);
}

// ------------------------------------------------------------- brute force

TEST(BruteForce, TinyKnownInstance) {
  // B=1, R=1, three unit slices at t=0 with weights 3,2,1: two can survive
  // (send one, buffer one).
  const Stream s =
      stream_of({units(0, 1, 3.0), units(0, 1, 2.0), units(0, 1, 1.0)});
  EXPECT_DOUBLE_EQ(brute_force_optimal(s, 1, 1), 5.0);
}

using OfflineDeathTest = ::testing::Test;

TEST(OfflineDeathTest, BruteForceRefusesLargeInstances) {
  const Stream s = stream_of({units(0, 64)});
  EXPECT_DEATH(brute_force_optimal(s, 4, 1), "precondition");
}

TEST(OfflineDeathTest, UnitOptimalRequiresUnitSlices) {
  const Stream s = stream_of({slice(0, 3)});
  EXPECT_DEATH(unit_optimal(s, 4, 1), "precondition");
}

}  // namespace
}  // namespace rtsmooth
