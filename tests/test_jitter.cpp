// Tests for the bounded-jitter extension (the paper's Sect. 6 open problem):
// with positive jitter the B = RD budget no longer suffices, and adding the
// jitter bound J to the smoothing delay plus J*R to the client buffer
// restores lossless playout — the "jitter control adds to buffer space and
// delay" remark made quantitative.

#include <gtest/gtest.h>

#include "core/link.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "stream_helpers.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace rtsmooth {
namespace {

using sim::SimConfig;
using sim::SmoothingSimulator;

Stream clip_stream() {
  return trace::slice_frames(trace::stock_clip("cnn-news", 150),
                             trace::ValueModel::mpeg_default(),
                             trace::Slicing::ByteSlices);
}

SimReport run_with_jitter(const Stream& s, const Plan& plan, Time p, Time j,
                          Time extra_delay, Bytes extra_client_buffer,
                          std::uint64_t seed = 99) {
  SimConfig config = SimConfig::balanced(plan, p);
  config.smoothing_delay += extra_delay;
  config.client_buffer += extra_client_buffer;
  SmoothingSimulator simulator(
      s, config, make_policy("greedy"),
      std::make_unique<BoundedJitterLink>(p, j, Rng(seed)));
  return simulator.run();
}

TEST(Jitter, ZeroJitterMatchesFixedLinkExactly) {
  const Stream s = clip_stream();
  const Plan plan =
      Planner::from_buffer_rate(2 * s.max_frame_bytes(),
                                sim::relative_rate(s, 0.95));
  const SimReport jittered = run_with_jitter(s, plan, 1, 0, 0, 0);
  const SimReport fixed = sim::simulate(s, plan, "greedy");
  EXPECT_EQ(jittered.played.bytes, fixed.played.bytes);
  EXPECT_DOUBLE_EQ(jittered.played.weight, fixed.played.weight);
}

TEST(Jitter, UncompensatedJitterCausesClientLoss) {
  const Stream s = clip_stream();
  const Plan plan =
      Planner::from_buffer_rate(2 * s.max_frame_bytes(),
                                sim::relative_rate(s, 0.95));
  const SimReport report = run_with_jitter(s, plan, 1, /*j=*/6, 0, 0);
  EXPECT_TRUE(report.conserves());
  EXPECT_GT(report.dropped_client_late.bytes, 0);
}

TEST(Jitter, DelayAndBufferSlackRestoreLosslessness) {
  const Stream s = clip_stream();
  const Time j = 6;
  const Plan plan =
      Planner::from_buffer_rate(2 * s.max_frame_bytes(),
                                sim::relative_rate(s, 0.95));
  // Compensation: wait J longer before playout, and give the client room
  // for the J * R extra bytes that can pile up while deliveries bunch.
  const SimReport report =
      run_with_jitter(s, plan, 1, j, /*extra_delay=*/j,
                      /*extra_client_buffer=*/j * plan.rate);
  EXPECT_TRUE(report.conserves());
  EXPECT_EQ(report.dropped_client_late.bytes, 0);
  EXPECT_EQ(report.dropped_client_overflow.bytes, 0);
  // Server-side behaviour is identical to the jitter-free run.
  const SimReport fixed = sim::simulate(s, plan, "greedy");
  EXPECT_EQ(report.dropped_server.bytes, fixed.dropped_server.bytes);
}

TEST(Jitter, TimerModeSelfCalibratesToActualLinkDelay) {
  // The paper's Sect. 3.3 protocol arms one timer at the first delivery, so
  // it needs no knowledge of P. Feed it a link 3 steps slower than the
  // config claims: ArrivalPlusOffset mode misses every deadline by 3, the
  // timer mode recalibrates and loses nothing.
  const Stream s = clip_stream();
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(),
                                              sim::relative_rate(s, 0.95));
  auto run_mode = [&](PlayoutMode mode) {
    SimConfig config = SimConfig::balanced(plan, /*link_delay=*/1);
    config.playout = mode;
    // Room for the extra (actual - nominal) * R bytes that pool while the
    // playout base lags the deliveries.
    config.client_buffer += 3 * plan.rate;
    SmoothingSimulator simulator(s, config, make_policy("greedy"),
                                 std::make_unique<FixedDelayLink>(4));
    return simulator.run();
  };
  const SimReport offset = run_mode(PlayoutMode::ArrivalPlusOffset);
  EXPECT_TRUE(offset.conserves());
  EXPECT_GT(offset.dropped_client_late.bytes, 0);
  const SimReport timer = run_mode(PlayoutMode::TimerFromFirstDelivery);
  EXPECT_TRUE(timer.conserves());
  EXPECT_EQ(timer.dropped_client_late.bytes, 0);
  EXPECT_EQ(timer.dropped_client_overflow.bytes, 0);
  EXPECT_EQ(timer.played.bytes, offset.played.bytes +
                                    offset.dropped_client_late.bytes);
}

TEST(Jitter, TimerModeNeverLosesMoreThanOffsetModeOnAJitteryLink) {
  // Self-calibration can only shift deadlines later (by the first batch's
  // jitter draw), so with client-buffer headroom the timer mode's deadline
  // losses are bounded by the offset mode's, seed by seed.
  const Stream s = clip_stream();
  const Time j = 6;
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(),
                                              sim::relative_rate(s, 0.95));
  for (std::uint64_t seed : {3u, 17u, 54u}) {
    auto run_mode = [&](PlayoutMode mode) {
      SimConfig config = SimConfig::balanced(plan, 1);
      config.playout = mode;
      config.client_buffer += j * plan.rate;
      SmoothingSimulator simulator(
          s, config, make_policy("greedy"),
          std::make_unique<BoundedJitterLink>(1, j, Rng(seed)));
      return simulator.run();
    };
    const SimReport offset = run_mode(PlayoutMode::ArrivalPlusOffset);
    const SimReport timer = run_mode(PlayoutMode::TimerFromFirstDelivery);
    EXPECT_TRUE(timer.conserves());
    EXPECT_LE(timer.dropped_client_late.bytes, offset.dropped_client_late.bytes)
        << "seed " << seed;
  }
}

TEST(Jitter, CompensationIsDeterministicPerSeed) {
  const Stream s = clip_stream();
  const Plan plan =
      Planner::from_buffer_rate(2 * s.max_frame_bytes(),
                                sim::relative_rate(s, 1.0));
  const SimReport a = run_with_jitter(s, plan, 1, 4, 4, 4 * plan.rate, 7);
  const SimReport b = run_with_jitter(s, plan, 1, 4, 4, 4 * plan.rate, 7);
  EXPECT_EQ(a.played.bytes, b.played.bytes);
  const SimReport c = run_with_jitter(s, plan, 1, 4, 4, 4 * plan.rate, 8);
  EXPECT_TRUE(c.conserves());
}

}  // namespace
}  // namespace rtsmooth
