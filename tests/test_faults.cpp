// Tests for the fault-injection links and the recovery path (the Sect. 6
// open problems made concrete): zero-fault identity against the paper's
// constant-delay link, NACK feedback timing, deadline-aware retransmission,
// the two client degradation modes, and the Lemma 3.2-3.4 invariant monitor.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/link.h"
#include "core/planner.h"
#include "faults/fault_links.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "stream_helpers.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace rtsmooth {
namespace {

using faults::ErasureLink;
using faults::GilbertElliottConfig;
using faults::GilbertElliottLink;
using faults::ThrottledLink;
using sim::SimConfig;
using sim::SmoothingSimulator;
using testing::slice;
using testing::stream_of;
using testing::units;

Stream clip_stream() {
  return trace::slice_frames(trace::stock_clip("cnn-news", 150),
                             trace::ValueModel::mpeg_default(),
                             trace::Slicing::ByteSlices);
}

Plan clip_plan(const Stream& s) {
  return Planner::from_buffer_rate(2 * s.max_frame_bytes(),
                                   sim::relative_rate(s, 0.95));
}

SimReport run_link(const Stream& s, const SimConfig& config,
                   std::unique_ptr<Link> link) {
  SmoothingSimulator simulator(s, config, make_policy("greedy"),
                               std::move(link));
  return simulator.run();
}

std::vector<SentPiece> piece_of(const Stream& s, std::size_t run_index,
                                Bytes bytes) {
  return {SentPiece{.run = &s.runs()[run_index],
                    .run_index = run_index,
                    .bytes = bytes,
                    .completed_slices = bytes}};
}

// ------------------------------------------------- zero-fault identity

// At severity zero every fault link must be indistinguishable from the
// paper's FixedDelayLink — pinned as exact SimReport equality, every field.

TEST(FaultIdentity, ErasureAtZeroProbabilityIsByteIdentical) {
  const Stream s = clip_stream();
  const Plan plan = clip_plan(s);
  const SimReport baseline = sim::simulate(s, plan, "greedy");
  const SimReport faulty =
      run_link(s, SimConfig::balanced(plan),
               std::make_unique<ErasureLink>(/*propagation_delay=*/1,
                                             /*loss_probability=*/0.0, Rng(7)));
  EXPECT_EQ(faulty, baseline);
}

TEST(FaultIdentity, AlwaysGoodGilbertElliottIsByteIdentical) {
  const Stream s = clip_stream();
  const Plan plan = clip_plan(s);
  const SimReport baseline = sim::simulate(s, plan, "greedy");
  const SimReport faulty = run_link(
      s, SimConfig::balanced(plan),
      std::make_unique<GilbertElliottLink>(
          /*propagation_delay=*/1,
          GilbertElliottConfig{.p_good_to_bad = 0.0, .p_bad_to_good = 1.0},
          Rng(7)));
  EXPECT_EQ(faulty, baseline);
}

TEST(FaultIdentity, ThrottleAtFullRateIsByteIdentical) {
  const Stream s = clip_stream();
  const Plan plan = clip_plan(s);
  const SimReport baseline = sim::simulate(s, plan, "greedy");
  const SimReport faulty =
      run_link(s, SimConfig::balanced(plan),
               std::make_unique<ThrottledLink>(/*propagation_delay=*/1,
                                               /*rate_cap=*/plan.rate));
  EXPECT_EQ(faulty, baseline);
}

// ------------------------------------------------------ link unit tests

TEST(ErasureLinkUnit, CertainLossNacksExactlyOnceAfterRoundTrip) {
  const Stream s = stream_of({units(0, 10)});
  ErasureLink link(/*propagation_delay=*/1, /*loss_probability=*/1.0, Rng(3));
  link.submit(0, piece_of(s, 0, 4));
  EXPECT_FALSE(link.idle());  // the pending NACK keeps the link busy
  EXPECT_TRUE(link.deliver(1).empty());
  EXPECT_TRUE(link.collect_nacks(0).empty());
  EXPECT_TRUE(link.collect_nacks(1).empty());
  // Default feedback delay is one propagation delay: loss knowable at t+P,
  // report back at t + 2P = 2.
  const auto nacks = link.collect_nacks(2);
  ASSERT_EQ(nacks.size(), 1u);
  EXPECT_EQ(nacks[0].piece.bytes, 4);
  EXPECT_EQ(nacks[0].piece.retx_attempt, 0);
  EXPECT_EQ(nacks[0].sent_at, 0);
  EXPECT_TRUE(link.idle());
  EXPECT_TRUE(link.collect_nacks(3).empty());  // exactly once
}

TEST(ErasureLinkUnit, ExplicitFeedbackDelayShiftsTheNack) {
  const Stream s = stream_of({units(0, 10)});
  ErasureLink link(/*propagation_delay=*/2, /*loss_probability=*/1.0, Rng(3),
                   /*feedback_delay=*/5);
  link.submit(1, piece_of(s, 0, 2));
  EXPECT_TRUE(link.collect_nacks(7).empty());
  EXPECT_EQ(link.collect_nacks(8).size(), 1u);  // 1 + 2 + 5
}

TEST(GilbertElliottUnit, DeterministicChainStartsGoodThenGoesBad) {
  const Stream s = stream_of({units(0, 10)});
  // p_good_to_bad = 1 flips at the first advance; p_bad_to_good = 0 pins it.
  GilbertElliottLink link(
      /*propagation_delay=*/1,
      GilbertElliottConfig{.p_good_to_bad = 1.0, .p_bad_to_good = 0.0},
      Rng(11));
  link.submit(0, piece_of(s, 0, 3));  // step 0 is Good by convention
  EXPECT_FALSE(link.in_bad_state());
  EXPECT_EQ(link.deliver(1).size(), 1u);
  link.submit(1, piece_of(s, 0, 3));  // chain flipped at step 1
  EXPECT_TRUE(link.in_bad_state());
  EXPECT_TRUE(link.deliver(2).empty());
  EXPECT_EQ(link.collect_nacks(3).size(), 1u);  // lost copy NACKed at 1+1+1
  EXPECT_TRUE(link.idle());
}

TEST(GilbertElliottUnit, ChainAdvancesWhileIdle) {
  const Stream s = stream_of({units(0, 10)});
  GilbertElliottLink link(
      /*propagation_delay=*/1,
      GilbertElliottConfig{.p_good_to_bad = 1.0, .p_bad_to_good = 0.0},
      Rng(11));
  // No traffic until step 5; the chain must have churned regardless.
  EXPECT_TRUE(link.deliver(5).empty());
  EXPECT_TRUE(link.in_bad_state());
}

TEST(ThrottledLinkUnit, SplitsAtTheCapAndPreservesBytesFifo) {
  const Stream s = stream_of({slice(0, 5)});
  ThrottledLink link(/*propagation_delay=*/0, /*rate_cap=*/2);
  link.submit(0, piece_of(s, 0, 5));
  Bytes total = 0;
  std::int64_t completed = 0;
  std::vector<Bytes> per_step;
  for (Time t = 0; t < 4; ++t) {
    Bytes step_bytes = 0;
    for (const auto& piece : link.deliver(t)) {
      step_bytes += piece.bytes;
      completed += piece.completed_slices;
    }
    per_step.push_back(step_bytes);
    total += step_bytes;
  }
  EXPECT_EQ(per_step, (std::vector<Bytes>{2, 2, 1, 0}));
  EXPECT_EQ(total, 5);
  // Slice completions ride with the tail fragment only — no double count.
  EXPECT_EQ(completed, 5);
  EXPECT_TRUE(link.idle());
}

TEST(ThrottledLinkUnit, ZeroEntriesStallThenDrain) {
  const Stream s = stream_of({units(0, 10)});
  ThrottledLink link(std::make_unique<FixedDelayLink>(0),
                     std::vector<Bytes>{0, 0, 3});
  link.submit(0, piece_of(s, 0, 6));
  EXPECT_TRUE(link.deliver(0).empty());
  EXPECT_TRUE(link.deliver(1).empty());
  EXPECT_EQ(link.deliver(2).at(0).bytes, 3);  // pattern index 2
  EXPECT_TRUE(link.deliver(3).empty());       // wrapped to index 0
  EXPECT_TRUE(link.deliver(4).empty());
  EXPECT_EQ(link.deliver(5).at(0).bytes, 3);
  EXPECT_TRUE(link.idle());
}

// ------------------------------------------------- end-to-end recovery

TEST(Recovery, TotalErasureWithoutRecoveryWritesEverythingOff) {
  const Stream s = clip_stream();
  const Plan plan = clip_plan(s);
  SimConfig config = SimConfig::balanced(plan);
  const SimReport report = run_link(
      s, config, std::make_unique<ErasureLink>(1, /*p=*/1.0, Rng(17)));
  EXPECT_TRUE(report.conserves());
  EXPECT_EQ(report.played.bytes, 0);
  EXPECT_EQ(report.retransmitted_bytes, 0);
  EXPECT_GT(report.lost_link.bytes, 0);
  // Every byte that entered the link was written off; the rest was dropped
  // at the server by the policy as usual.
  EXPECT_EQ(report.lost_link.bytes + report.dropped_server.bytes,
            report.offered.bytes);
}

TEST(Recovery, TotalErasureWithRecoveryStillTerminatesAndConserves) {
  const Stream s = clip_stream();
  const Plan plan = clip_plan(s);
  SimConfig config = SimConfig::balanced(plan);
  config.recovery.enabled = true;
  config.recovery.max_retries = 2;
  const SimReport report = run_link(
      s, config, std::make_unique<ErasureLink>(1, /*p=*/1.0, Rng(17)));
  EXPECT_TRUE(report.conserves());
  EXPECT_EQ(report.played.bytes, 0);
  // Retries happened, hit the budget, and everything was written off.
  EXPECT_GT(report.retransmitted_bytes, 0);
  EXPECT_GT(report.lost_link.bytes, 0);
}

TEST(Recovery, RetransmissionRescuesBytesUnderModerateErasure) {
  const Stream s = clip_stream();
  const Plan plan = clip_plan(s);
  auto erasure = [] {
    return std::make_unique<ErasureLink>(1, /*p=*/0.3, Rng(23));
  };
  SimConfig off = SimConfig::balanced(plan);
  SimConfig on = off;
  on.recovery.enabled = true;
  const SimReport without = run_link(s, off, erasure());
  const SimReport with = run_link(s, on, erasure());
  EXPECT_TRUE(without.conserves());
  EXPECT_TRUE(with.conserves());
  EXPECT_EQ(without.retransmitted_bytes, 0);
  EXPECT_GT(with.retransmitted_bytes, 0);
  // Recovery turns link write-offs back into playout.
  EXPECT_GT(with.played.bytes, without.played.bytes);
  EXPECT_LT(with.lost_link.bytes, without.lost_link.bytes);
  EXPECT_LT(with.weighted_loss(), without.weighted_loss());
}

TEST(Recovery, ComposesOverAJitteryLink) {
  const Stream s = clip_stream();
  const Plan plan = clip_plan(s);
  const Time j = 4;
  SimConfig config = SimConfig::balanced(plan);
  config.smoothing_delay += j;  // jitter compensation, as in test_jitter
  config.client_buffer += j * plan.rate;
  config.recovery.enabled = true;
  const SimReport report = run_link(
      s, config,
      std::make_unique<ErasureLink>(
          std::make_unique<BoundedJitterLink>(1, j, Rng(31)), /*p=*/0.1,
          Rng(32)));
  EXPECT_TRUE(report.conserves());
  EXPECT_GT(report.played.bytes, 0);
  EXPECT_GT(report.retransmitted_bytes, 0);
}

// --------------------------------------------------- stall vs skip

// One 10-byte slice trickling through a cap-1 throttle: under Skip the
// deadline hits with a partial slice (total loss); under Stall the client
// rebuffers 4 steps and plays everything.
TEST(UnderflowPolicy, StallRebuffersWhereSkipConceals) {
  const Stream s = stream_of({slice(0, 10)});
  const Plan plan = Planner::from_delay_rate(/*delay=*/5, /*rate=*/2);
  auto throttled = [] {
    return std::make_unique<ThrottledLink>(/*propagation_delay=*/1,
                                           /*rate_cap=*/1);
  };
  SimConfig skip = SimConfig::balanced(plan);
  skip.underflow = UnderflowPolicy::Skip;
  SimConfig stall = skip;
  stall.underflow = UnderflowPolicy::Stall;

  const SimReport skipped = run_link(s, skip, throttled());
  EXPECT_TRUE(skipped.conserves());
  EXPECT_EQ(skipped.played.bytes, 0);
  EXPECT_DOUBLE_EQ(skipped.weighted_loss(), 1.0);
  EXPECT_EQ(skipped.stall_steps, 0);
  EXPECT_GT(skipped.invariants.client_underflow, 0);

  const SimReport stalled = run_link(s, stall, throttled());
  EXPECT_TRUE(stalled.conserves());
  EXPECT_EQ(stalled.played.bytes, 10);
  EXPECT_DOUBLE_EQ(stalled.weighted_loss(), 0.0);
  // Due at t = 6 with 6 of 10 bytes stored; the last byte lands at t = 10.
  EXPECT_EQ(stalled.stall_steps, 4);
}

TEST(UnderflowPolicy, MaxStallCapsTheRebuffer) {
  const Stream s = stream_of({slice(0, 10)});
  const Plan plan = Planner::from_delay_rate(5, 2);
  SimConfig config = SimConfig::balanced(plan);
  config.underflow = UnderflowPolicy::Stall;
  config.max_stall = 2;  // not enough: needs 4
  const SimReport report =
      run_link(s, config, std::make_unique<ThrottledLink>(1, 1));
  EXPECT_TRUE(report.conserves());
  EXPECT_EQ(report.played.bytes, 0);  // gave up after 2 stalls, then skipped
  EXPECT_EQ(report.stall_steps, 2);
}

TEST(UnderflowPolicy, StallNeverTriggersOnServerIntentionalDrops) {
  // Whole slices the *server* dropped (Eq. (3)) leave no partial at the
  // client; Stall must not rebuffer for them — identical to Skip.
  const Stream s = clip_stream();  // unit slices: partials are impossible
  const Plan plan = clip_plan(s);
  SimConfig config = SimConfig::balanced(plan);
  config.underflow = UnderflowPolicy::Stall;
  SmoothingSimulator simulator(s, config, make_policy("greedy"));
  const SimReport stalling = simulator.run();
  const SimReport baseline = sim::simulate(s, plan, "greedy");
  EXPECT_EQ(stalling.stall_steps, 0);
  EXPECT_EQ(stalling, baseline);
}

// ------------------------------------------------- invariant monitor

TEST(InvariantMonitor, LosslessRunRecordsNoViolations) {
  const Stream s = clip_stream();
  const SimReport report = sim::simulate(s, clip_plan(s), "greedy");
  EXPECT_FALSE(report.invariants.any());
  EXPECT_EQ(report.invariants.first, kNever);
}

TEST(InvariantMonitor, ThrottledLinkViolatesClientUnderflow) {
  const Stream s = clip_stream();
  const Plan plan = clip_plan(s);
  // Half the needed rate: deliveries pile up behind the throttle and miss
  // their deadlines — exactly the Lemma 3.3 failure the monitor watches.
  const SimReport report =
      run_link(s, SimConfig::balanced(plan),
               std::make_unique<ThrottledLink>(
                   1, std::max<Bytes>(1, plan.rate / 2)));
  EXPECT_TRUE(report.conserves());
  EXPECT_GT(report.invariants.client_underflow, 0);
  EXPECT_LT(report.invariants.first, report.steps);
}

// --------------------------------------------------------- fault sweep

TEST(FaultSweep, SeverityZeroMatchesBaselineAndLossIsMonotone) {
  const Stream s = clip_stream();
  const Plan plan = clip_plan(s);
  const auto points =
      sim::sweep(s, sim::SweepSpec{
                        .axis = sim::SweepAxis::FaultSeverity,
                        .values = {0.0, 0.1, 0.3},
                        .policies = {"greedy"},
                        .plan = plan,
                        .link_factory =
                            [](double severity,
                               Time link_delay) -> std::unique_ptr<Link> {
                          return std::make_unique<ErasureLink>(
                              link_delay, severity, Rng(41));
                        }})
          .faults;
  ASSERT_EQ(points.size(), 3u);
  const SimReport baseline = sim::simulate(s, plan, "greedy");
  EXPECT_EQ(points[0].skip, baseline);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].skip.weighted_loss(),
              points[i - 1].skip.weighted_loss());
    EXPECT_GE(points[i].stall.weighted_loss(),
              points[i - 1].stall.weighted_loss());
  }
}

}  // namespace
}  // namespace rtsmooth
