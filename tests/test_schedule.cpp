// Unit tests for the schedule recorder: per-run event times, per-step set
// sizes, recording levels.

#include <gtest/gtest.h>

#include "core/schedule.h"

namespace rtsmooth {
namespace {

TEST(ScheduleRecorder, RunOutcomesStartUnset) {
  const ScheduleRecorder rec(3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rec.run(i).first_send, kNever);
    EXPECT_EQ(rec.run(i).play_time, kNever);
    EXPECT_EQ(rec.run(i).played, 0);
  }
}

TEST(ScheduleRecorder, NoteSendTracksFirstAndLast) {
  ScheduleRecorder rec(1);
  rec.begin_step(5);
  rec.note_send(0, 5, 10);
  rec.begin_step(9);
  rec.note_send(0, 9, 3);
  EXPECT_EQ(rec.run(0).first_send, 5);
  EXPECT_EQ(rec.run(0).last_send, 9);
}

TEST(ScheduleRecorder, NoteReceiveTracksFirstAndLast) {
  ScheduleRecorder rec(1);
  rec.begin_step(7);
  rec.note_receive(0, 7, 4);
  rec.begin_step(8);
  rec.note_receive(0, 8, 4);
  EXPECT_EQ(rec.run(0).first_receive, 7);
  EXPECT_EQ(rec.run(0).last_receive, 8);
}

TEST(ScheduleRecorder, RunsOnlyLevelKeepsNoSteps) {
  ScheduleRecorder rec(1, ScheduleRecorder::Level::RunsOnly);
  rec.begin_step(0);
  rec.step().arrived = 10;
  rec.begin_step(1);
  EXPECT_TRUE(rec.steps().empty());
}

TEST(ScheduleRecorder, RunsAndStepsKeepsPerStepSets) {
  ScheduleRecorder rec(2, ScheduleRecorder::Level::RunsAndSteps);
  rec.begin_step(0);
  rec.step().arrived = 10;
  rec.note_send(0, 0, 4);
  rec.begin_step(1);
  rec.note_send(1, 1, 2);
  rec.note_receive(0, 1, 4);
  ASSERT_EQ(rec.steps().size(), 2u);
  EXPECT_EQ(rec.steps()[0].t, 0);
  EXPECT_EQ(rec.steps()[0].arrived, 10);
  EXPECT_EQ(rec.steps()[0].sent, 4);
  EXPECT_EQ(rec.steps()[1].sent, 2);
  EXPECT_EQ(rec.steps()[1].delivered, 4);
}

using ScheduleRecorderDeathTest = ::testing::Test;

TEST(ScheduleRecorderDeathTest, OutOfRangeRunAborts) {
  ScheduleRecorder rec(2);
  EXPECT_DEATH(rec.run(2), "precondition");
}

TEST(ScheduleRecorderDeathTest, ZeroByteSendAborts) {
  ScheduleRecorder rec(1);
  rec.begin_step(0);
  EXPECT_DEATH(rec.note_send(0, 0, 0), "precondition");
}

}  // namespace
}  // namespace rtsmooth
