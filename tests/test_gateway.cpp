// Gateway subsystem tests: the three load-bearing contracts from DESIGN.md
// Sect. 14 —
//
//   1. Determinism: reports, per-stream ledgers, and telemetry are
//      byte-identical at any thread count (shard map and fold order never
//      depend on execution width).
//   2. Conservation: admitted == served + dropped + unserved + backlog per
//      stream and in aggregate, through arbitrary churn.
//   3. Fidelity: an uncontended Static gateway is N independent paper
//      configurations — each stream's ledger matches a solo
//      ReferenceSimulator run of the same arrivals.
//
// Plus the sharing-policy semantics (work conservation, priority
// starvation, static non-redistribution), admission control, validation,
// and flight-recorder integration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/planner.h"
#include "gateway/gateway.h"
#include "gateway/gateway_sweep.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "reference_core.h"
#include "sim/simulator.h"
#include "stream_helpers.h"

namespace {

using namespace rtsmooth;
using gateway::ArrivalModel;
using gateway::Gateway;
using gateway::GatewayConfig;
using gateway::GatewayReport;
using gateway::SharePolicy;
using gateway::StreamId;
using gateway::StreamSpec;
using gateway::StreamStats;

/// The mixed gold/silver/bronze population the example ships; pure in `i`
/// so every run (and every sweep cell) sees the identical streams.
StreamSpec mixed_spec(std::size_t i) {
  switch (i % 3) {
    case 0:
      return StreamSpec{.rate = 96,
                        .deadline = 8,
                        .weight_class = 0,
                        .arrivals = ArrivalModel::vbr(80, 0x900 + i)};
    case 1:
      return StreamSpec{.rate = 48,
                        .deadline = 16,
                        .weight_class = 1,
                        .arrivals = ArrivalModel::vbr(40, 0x500 + i)};
    default:
      return StreamSpec{.rate = 24,
                        .deadline = 32,
                        .weight_class = 2,
                        .arrivals = ArrivalModel::on_off(64, 2, 5, 0xB00 + i)};
  }
}

/// One contended churn scenario, everything observable captured: the
/// aggregate report, every live ledger row, and the serialized registry.
struct ChurnOutcome {
  GatewayReport report;
  std::vector<StreamStats> live;
  std::string registry_json;
};

ChurnOutcome run_churn_scenario(unsigned threads, SharePolicy policy) {
  obs::Registry registry;
  Gateway gw(GatewayConfig{.rate = 2000,  // ~30% of subscribed: contended
                           .class_weights = {12.0, 8.0, 1.0},
                           .sharing = policy,
                           .shards = 8,
                           .threads = threads,
                           .telemetry = {.registry = &registry}});
  std::vector<StreamId> ids;
  for (std::size_t i = 0; i < 120; ++i) {
    ids.push_back(*gw.add_stream(mixed_spec(i)));
  }
  gw.run(40);
  for (std::size_t i = 0; i < ids.size(); i += 5) {
    EXPECT_TRUE(gw.remove_stream(ids[i]).has_value()) << i;
    gw.add_stream(mixed_spec(200 + i));
  }
  gw.run(40);
  gw.remove_stream(ids[1]);  // a couple of leaves with no replacement
  gw.remove_stream(ids[2]);
  gw.run(10);
  return ChurnOutcome{gw.report(), gw.all_stream_stats(),
                      registry.to_json(/*include_timers=*/false).dump()};
}

TEST(GatewayDeterminism, ByteIdenticalAcrossThreadCounts) {
  for (const SharePolicy policy :
       {SharePolicy::Static, SharePolicy::WeightedShare,
        SharePolicy::Priority}) {
    SCOPED_TRACE(std::string(gateway::to_string(policy)));
    const ChurnOutcome serial = run_churn_scenario(1, policy);
    EXPECT_TRUE(serial.report.conserves());
    EXPECT_EQ(serial.report.violations, 0);
    for (const unsigned threads : {2U, 8U}) {
      SCOPED_TRACE(threads);
      const ChurnOutcome wide = run_churn_scenario(threads, policy);
      EXPECT_EQ(serial.report, wide.report);
      EXPECT_EQ(serial.live, wide.live);
      EXPECT_EQ(serial.registry_json, wide.registry_json);
    }
  }
}

TEST(GatewayDeterminism, SweepByteIdenticalAcrossPoolWidths) {
  gateway::GatewaySweepSpec spec;
  spec.stream_counts = {6, 24};
  spec.policies = {SharePolicy::Static, SharePolicy::WeightedShare,
                   SharePolicy::Priority};
  spec.steps = 48;
  spec.stream_factory = mixed_spec;
  spec.base = GatewayConfig{.class_weights = {12.0, 8.0, 1.0}, .shards = 4};
  spec.rate_per_stream = 40;  // ~70% of the mean subscribed rate

  obs::Registry serial_registry;
  spec.threads = 1;
  spec.registry = &serial_registry;
  const gateway::GatewaySweepResult serial = gateway::sweep(spec);

  obs::Registry wide_registry;
  spec.threads = 4;
  spec.registry = &wide_registry;
  const gateway::GatewaySweepResult wide = gateway::sweep(spec);

  EXPECT_EQ(serial.points, wide.points);
  EXPECT_EQ(serial_registry.to_json(false).dump(),
            wide_registry.to_json(false).dump());

  ASSERT_EQ(serial.points.size(), 2u);
  for (const gateway::GatewaySweepPoint& point : serial.points) {
    EXPECT_EQ(point.policies.size(), 3u);
    for (const gateway::GatewayPolicyOutcome& outcome : point.policies) {
      EXPECT_TRUE(outcome.report.conserves());
      EXPECT_EQ(outcome.report.violations, 0);
    }
  }
}

TEST(GatewaySweep, RejectsUnrunnableSpecs) {
  gateway::GatewaySweepSpec spec;
  spec.stream_counts = {4};
  spec.stream_factory = mixed_spec;
  spec.base = GatewayConfig{.rate = 100, .class_weights = {12.0, 8.0, 1.0}};

  auto broken = spec;
  broken.stream_counts.clear();
  EXPECT_THROW(gateway::sweep(broken), std::invalid_argument);
  broken = spec;
  broken.policies.clear();
  EXPECT_THROW(gateway::sweep(broken), std::invalid_argument);
  broken = spec;
  broken.stream_factory = nullptr;
  EXPECT_THROW(gateway::sweep(broken), std::invalid_argument);
  broken = spec;
  broken.steps = 0;
  EXPECT_THROW(gateway::sweep(broken), std::invalid_argument);
  broken = spec;
  broken.base.rate = 0;
  broken.rate_per_stream = 0;
  EXPECT_THROW(gateway::sweep(broken), std::invalid_argument);
}

// Default threads (0) here on purpose: under the TSan job this test runs
// the parallel fan-out at RTSMOOTH_THREADS wide while churning.
TEST(GatewayChurn, EveryLedgerConservesAndSumsToTheReport) {
  Gateway gw(GatewayConfig{.rate = 800,
                           .class_weights = {12.0, 8.0, 1.0},
                           .sharing = SharePolicy::WeightedShare,
                           .shards = 8,
                           .threads = 0});
  std::vector<StreamId> ids;
  for (std::size_t i = 0; i < 60; ++i) {
    ids.push_back(*gw.add_stream(mixed_spec(i)));
  }
  gw.run(30);

  std::vector<StreamStats> departed;
  for (std::size_t i = 0; i < ids.size(); i += 4) {
    auto stats = gw.remove_stream(ids[i]);
    ASSERT_TRUE(stats.has_value()) << i;
    departed.push_back(*stats);
  }
  gw.run(30);

  for (const StreamStats& d : departed) {
    EXPECT_TRUE(d.conserves()) << "stream " << d.id;
    EXPECT_NE(d.left, kNever);
    EXPECT_EQ(d.backlog, 0);  // written off as unserved at departure
  }

  const std::vector<StreamStats> live = gw.all_stream_stats();
  StreamStats sum;
  for (const StreamStats& row : live) {
    EXPECT_TRUE(row.conserves()) << "stream " << row.id;
    EXPECT_EQ(row.left, kNever);
    EXPECT_EQ(row.unserved, 0);
    sum.admitted += row.admitted;
    sum.served += row.served;
    sum.dropped += row.dropped;
    sum.backlog += row.backlog;
  }
  for (const StreamStats& d : departed) {
    sum.admitted += d.admitted;
    sum.served += d.served;
    sum.dropped += d.dropped;
    sum.unserved += d.unserved;
  }

  const GatewayReport report = gw.report();
  EXPECT_TRUE(report.conserves());
  EXPECT_EQ(report.violations, 0);
  EXPECT_EQ(report.admitted, sum.admitted);
  EXPECT_EQ(report.served, sum.served);
  EXPECT_EQ(report.dropped, sum.dropped);
  EXPECT_EQ(report.unserved, sum.unserved);
  EXPECT_EQ(report.backlog, sum.backlog);
  EXPECT_EQ(report.joins, 60);
  EXPECT_EQ(report.leaves, static_cast<std::int64_t>(departed.size()));

  // Removing an already-removed or unknown id is a polite nullopt.
  EXPECT_FALSE(gw.remove_stream(ids[0]).has_value());
  EXPECT_FALSE(gw.remove_stream(999999).has_value());
}

// The fidelity anchor: with Static sharing and sum(r_i) <= R there is no
// cross-stream coupling, so every stream must behave exactly like a solo
// paper configuration B = r*D on its own link of rate r. Run the identical
// arrivals through the independently-written ReferenceSimulator (tail-drop,
// balanced Bs = Bc = B) and compare ledgers byte for byte.
TEST(GatewayDifferential, UncontendedStaticMatchesReferencePerStream) {
  struct Case {
    Bytes rate;
    Time deadline;
    std::vector<Bytes> script;
  };
  const std::vector<Case> cases = {
      // Steady near-rate traffic: no drops anywhere.
      {4, 3, {4, 4, 4, 4, 4, 4, 4, 4}},
      // One burst over B + r: forces Eq. (3) sheds.
      {4, 3, {8, 0, 20, 4, 0, 0, 40, 0, 2}},
      // Tight buffer (D = 1): B = r, drops on any burst.
      {6, 1, {12, 12, 0, 3, 30}},
      // Long deadline absorbs a big front-loaded burst.
      {2, 16, {30, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 25}},
      // Sparse arrivals with gaps.
      {8, 4, {0, 0, 64, 0, 0, 0, 0, 16, 0, 0, 1}},
      // Unit-rate stream, everything contends with its own buffer only.
      {1, 5, {3, 3, 3, 0, 0, 0, 0, 0, 0, 9}},
  };

  Bytes subscribed = 0;
  for (const Case& c : cases) subscribed += c.rate;
  Gateway gw(GatewayConfig{.rate = subscribed,  // exactly uncontended
                           .class_weights = {1.0},
                           .sharing = SharePolicy::Static,
                           .shards = 4,
                           .threads = 1});
  std::vector<StreamId> ids;
  std::size_t longest = 0;
  for (const Case& c : cases) {
    ids.push_back(*gw.add_stream(
        StreamSpec{.rate = c.rate,
                   .deadline = c.deadline,
                   .weight_class = 0,
                   .arrivals = ArrivalModel::from_script(c.script)}));
    longest = std::max(longest, c.script.size());
  }
  gw.run(static_cast<Time>(longest) + 64);  // scripts plus full drain
  ASSERT_EQ(gw.report().backlog, 0);

  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE(i);
    const Case& c = cases[i];

    // The same arrivals as unit slices (byte-granular tail drop).
    std::vector<SliceRun> runs;
    for (std::size_t t = 0; t < c.script.size(); ++t) {
      if (c.script[t] > 0) {
        runs.push_back(rtsmooth::testing::units(static_cast<Time>(t), c.script[t]));
      }
    }
    const Stream stream = rtsmooth::testing::stream_of(std::move(runs));
    const Plan plan{.buffer = c.rate * c.deadline,
                    .delay = c.deadline,
                    .rate = c.rate};
    refcore::ReferenceSimulator reference(stream, sim::SimConfig::balanced(plan),
                                          "tail-drop");
    const SimReport ref = reference.run();
    ASSERT_TRUE(ref.conserves());
    // Lossless balanced link: nothing is lost client-side, so every byte the
    // server sent was played — served maps exactly onto played.
    ASSERT_EQ(ref.dropped_client_overflow.bytes, 0);
    ASSERT_EQ(ref.dropped_client_late.bytes, 0);

    const auto stats = gw.stream_stats(ids[i]);
    ASSERT_TRUE(stats.has_value());
    EXPECT_TRUE(stats->conserves());
    EXPECT_EQ(stats->admitted, ref.offered.bytes);
    EXPECT_EQ(stats->dropped, ref.dropped_server.bytes);
    EXPECT_EQ(stats->served, ref.played.bytes);
    EXPECT_EQ(stats->backlog, 0);
    // Lemma 3.2 against the oracle: the reference drops nothing late
    // client-side on a balanced lossless plan, so the gateway must have
    // served every byte within its deadline — the lateness ledger is empty.
    EXPECT_EQ(stats->served_late, 0);
    EXPECT_EQ(stats->served_on_time, stats->served);
    EXPECT_EQ(stats->max_lateness, 0);
  }
}

// ------------------------------------------------- deadline lateness ledger

// Uncontended Static is N paper configurations, so Lemma 3.2's sojourn
// bound holds per stream: the head byte is served within D_i steps of
// arrival, every byte is on time, and the slack histogram never exceeds
// the largest deadline in the population.
TEST(GatewayLateness, UncontendedStaticIsAlwaysOnTime) {
  obs::Registry registry;
  Gateway gw(GatewayConfig{.rate = 96 + 48 + 24,
                           .class_weights = {12.0, 8.0, 1.0},
                           .sharing = SharePolicy::Static,
                           .shards = 4,
                           .threads = 1,
                           .telemetry = {.registry = &registry}});
  Time max_deadline = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const StreamSpec spec = mixed_spec(i);
    max_deadline = std::max(max_deadline, spec.deadline);
    ASSERT_TRUE(gw.add_stream(spec).has_value());
  }
  gw.run(200);

  const GatewayReport report = gw.report();
  EXPECT_TRUE(report.conserves());
  EXPECT_EQ(report.served_late, 0);
  EXPECT_EQ(report.served_on_time, report.served);
  EXPECT_EQ(report.max_lateness, 0);
  for (const StreamStats& row : gw.all_stream_stats()) {
    EXPECT_EQ(row.served_late, 0) << "stream " << row.id;
    EXPECT_EQ(row.max_lateness, 0) << "stream " << row.id;
  }

  const obs::Histogram& slack = registry.histograms().at("gateway.slack_steps");
  const obs::Histogram& late =
      registry.histograms().at("gateway.lateness_steps");
  EXPECT_EQ(slack.count(), report.served_on_time);  // byte-weighted
  EXPECT_EQ(late.count(), 0);
  EXPECT_LE(slack.max(), max_deadline);  // slack = D_i - wait <= D_i
}

// Oversubscribed WeightedShare: backlogs outlive deadlines, so some bytes
// are served late. The conservation identity served = on_time + late must
// hold in aggregate and per class, and every instrument must agree with
// the ledger it mirrors.
TEST(GatewayLateness, ContendedLedgerConservesAndMatchesInstruments) {
  obs::Registry registry;
  Gateway gw(GatewayConfig{.rate = 600,  // ~25% of subscribed
                           .class_weights = {12.0, 8.0, 1.0},
                           .sharing = SharePolicy::WeightedShare,
                           .shards = 8,
                           .threads = 1,
                           .telemetry = {.registry = &registry}});
  for (std::size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(gw.add_stream(mixed_spec(i)).has_value());
  }
  gw.run(120);

  const GatewayReport report = gw.report();
  EXPECT_TRUE(report.conserves());
  EXPECT_GT(report.served_late, 0);
  EXPECT_GT(report.max_lateness, 0);
  EXPECT_EQ(report.served, report.served_on_time + report.served_late);

  Bytes class_on_time = 0;
  Bytes class_late = 0;
  Time class_max = 0;
  for (const gateway::ClassTotals& c : report.by_class) {
    EXPECT_EQ(c.served, c.on_time + c.late);
    class_on_time += c.on_time;
    class_late += c.late;
    class_max = std::max(class_max, c.max_lateness);
  }
  EXPECT_EQ(class_on_time, report.served_on_time);
  EXPECT_EQ(class_late, report.served_late);
  EXPECT_EQ(class_max, report.max_lateness);

  const obs::Histogram& slack = registry.histograms().at("gateway.slack_steps");
  const obs::Histogram& late =
      registry.histograms().at("gateway.lateness_steps");
  EXPECT_EQ(slack.count(), report.served_on_time);
  EXPECT_EQ(late.count(), report.served_late);
  EXPECT_EQ(late.max(), report.max_lateness);
  EXPECT_EQ(registry.gauges().at("gateway.max_lateness_steps").value(),
            report.max_lateness);
  EXPECT_EQ(registry.counters().at("gateway.on_time_bytes").value(),
            report.served_on_time);
  EXPECT_EQ(registry.counters().at("gateway.late_bytes").value(),
            report.served_late);

  // The per-class lateness histograms partition the aggregate one.
  std::int64_t per_class_weight = 0;
  for (std::size_t k = 0; k < report.by_class.size(); ++k) {
    const obs::Histogram& h = registry.histograms().at(
        "gateway.c" + std::to_string(k) + ".lateness_steps");
    EXPECT_EQ(h.count(), report.by_class[k].late) << "class " << k;
    per_class_weight += h.count();
  }
  EXPECT_EQ(per_class_weight, late.count());
}

TEST(GatewaySharing, WeightedShareIsWorkConserving) {
  // Two classes, aggregate arrivals 3x the link: every step must ship
  // exactly R — no byte idles while anyone has backlog.
  constexpr Bytes kRate = 90;
  constexpr Time kSteps = 25;
  Gateway gw(GatewayConfig{.rate = kRate,
                           .class_weights = {3.0, 1.0},
                           .sharing = SharePolicy::WeightedShare,
                           .shards = 4,
                           .threads = 1});
  gw.add_stream(StreamSpec{.rate = 60,
                           .deadline = 4,
                           .weight_class = 0,
                           .arrivals = ArrivalModel::constant(180)});
  gw.add_stream(StreamSpec{.rate = 30,
                           .deadline = 4,
                           .weight_class = 1,
                           .arrivals = ArrivalModel::constant(90)});
  gw.run(kSteps);

  const GatewayReport report = gw.report();
  EXPECT_TRUE(report.conserves());
  EXPECT_EQ(report.served, kRate * kSteps);
  EXPECT_EQ(report.max_step_served, kRate);
  EXPECT_EQ(report.violations, 0);
}

TEST(GatewaySharing, PriorityStarvesTheLightClassUnderSaturation) {
  // The heavy class alone saturates the link every step; under strict
  // priority the light class must be served exactly nothing.
  Gateway gw(GatewayConfig{.rate = 50,
                           .class_weights = {10.0, 1.0},
                           .sharing = SharePolicy::Priority,
                           .shards = 2,
                           .threads = 1});
  const StreamId heavy = *gw.add_stream(
      StreamSpec{.rate = 50,
                 .deadline = 8,
                 .weight_class = 0,
                 .arrivals = ArrivalModel::constant(50)});
  const StreamId light = *gw.add_stream(
      StreamSpec{.rate = 10,
                 .deadline = 8,
                 .weight_class = 1,
                 .arrivals = ArrivalModel::constant(10)});
  gw.run(20);

  EXPECT_EQ(gw.stream_stats(heavy)->served, 50 * 20);
  EXPECT_EQ(gw.stream_stats(light)->served, 0);
  EXPECT_TRUE(gw.report().conserves());
}

TEST(GatewaySharing, StaticNeverRedistributesIdleCapacity) {
  // Stream A is silent; stream B is overloaded. Static caps B at its
  // nominal rate even though half the link idles; weighted-share hands B
  // the whole link. Identical populations otherwise.
  const auto build = [](SharePolicy policy) {
    Gateway gw(GatewayConfig{.rate = 20,
                             .class_weights = {1.0},
                             .sharing = policy,
                             .shards = 2,
                             .threads = 1});
    gw.add_stream(StreamSpec{.rate = 10,
                             .deadline = 2,
                             .weight_class = 0,
                             .arrivals = ArrivalModel::constant(0)});
    const StreamId busy = *gw.add_stream(
        StreamSpec{.rate = 10,
                   .deadline = 64,
                   .weight_class = 0,
                   .arrivals = ArrivalModel::constant(40)});
    gw.run(12);
    return gw.stream_stats(busy)->served;
  };
  EXPECT_EQ(build(SharePolicy::Static), 10 * 12);         // capped at r
  EXPECT_EQ(build(SharePolicy::WeightedShare), 20 * 12);  // work-conserving
}

TEST(GatewayAdmission, CapacityCheckRefusesBeyondOverbook) {
  obs::Registry registry;
  Gateway gw(GatewayConfig{.rate = 100,
                           .class_weights = {1.0},
                           .admission = gateway::AdmissionPolicy::CapacityCheck,
                           .overbook = 1.5,
                           .telemetry = {.registry = &registry}});
  const StreamSpec spec{.rate = 60,
                        .deadline = 4,
                        .weight_class = 0,
                        .arrivals = ArrivalModel::constant(30)};
  EXPECT_TRUE(gw.add_stream(spec).has_value());   // 60 <= 150
  EXPECT_TRUE(gw.add_stream(spec).has_value());   // 120 <= 150
  EXPECT_FALSE(gw.add_stream(spec).has_value());  // 180 > 150: refused
  EXPECT_EQ(gw.subscribed_rate(), 120);
  EXPECT_EQ(gw.stream_count(), 2u);

  const GatewayReport report = gw.report();
  EXPECT_EQ(report.joins, 2);
  EXPECT_EQ(report.rejected_joins, 1);
  EXPECT_EQ(registry.counter("gateway.rejected_joins").value(), 1);
}

TEST(GatewayValidation, BadConfigsAndSpecsThrow) {
  EXPECT_THROW(Gateway(GatewayConfig{.rate = 0}), std::invalid_argument);
  EXPECT_THROW(Gateway(GatewayConfig{.class_weights = {}}),
               std::invalid_argument);
  EXPECT_THROW(Gateway(GatewayConfig{.class_weights = {1.0, -2.0}}),
               std::invalid_argument);
  EXPECT_THROW(Gateway(GatewayConfig{.overbook = 0.0}), std::invalid_argument);
  EXPECT_THROW(Gateway(GatewayConfig{.shards = 0}), std::invalid_argument);

  Gateway gw(GatewayConfig{.rate = 100, .class_weights = {1.0, 2.0}});
  EXPECT_THROW(gw.add_stream(StreamSpec{.rate = 0}), std::invalid_argument);
  EXPECT_THROW(gw.add_stream(StreamSpec{.rate = 1, .deadline = 0}),
               std::invalid_argument);
  EXPECT_THROW(gw.add_stream(StreamSpec{.rate = 1, .weight_class = 2}),
               std::invalid_argument);
  StreamSpec bad_script{.rate = 1,
                        .arrivals = ArrivalModel::from_script({4, -1})};
  EXPECT_THROW(gw.add_stream(bad_script), std::invalid_argument);
}

TEST(GatewayTelemetry, FlightRecorderCapturesDropIncidents) {
  obs::FlightRecorderConfig rec_config{.window = 16};
  rec_config.step_trigger = [](const obs::StepRecord& record) {
    return record.dropped_server > 0;
  };
  obs::FlightRecorder recorder(rec_config);

  // One stream with B = 4 facing 16 bytes/step on a 4-byte link: drops
  // every step from the second on.
  Gateway gw(GatewayConfig{.rate = 4,
                           .class_weights = {1.0},
                           .sharing = SharePolicy::WeightedShare,
                           .shards = 1,
                           .threads = 1,
                           .telemetry = {.recorder = &recorder}});
  gw.add_stream(StreamSpec{.rate = 4,
                           .deadline = 1,
                           .weight_class = 0,
                           .arrivals = ArrivalModel::constant(16)});
  gw.run(8);

  ASSERT_FALSE(recorder.incidents().empty());
  const obs::Json& incident = recorder.incidents().front();
  EXPECT_EQ(incident.at("trigger").at("type").as_string(), "step_trigger");
  EXPECT_EQ(incident.at("context").at("component").as_string(), "gateway");
  EXPECT_EQ(incident.at("context").at("sharing").as_string(),
            "weighted-share");
}

TEST(GatewayTelemetry, CountersMatchTheReport) {
  obs::Registry registry;
  Gateway gw(GatewayConfig{.rate = 64,
                           .class_weights = {2.0, 1.0},
                           .sharing = SharePolicy::WeightedShare,
                           .shards = 4,
                           .threads = 1,
                           .telemetry = {.registry = &registry}});
  std::vector<StreamId> ids;
  for (std::size_t i = 0; i < 8; ++i) {
    ids.push_back(*gw.add_stream(StreamSpec{
        .rate = 16,
        .deadline = 2,
        .weight_class = i % 2,
        .arrivals = ArrivalModel::vbr(24, 0x70 + i)}));
  }
  gw.run(20);
  gw.remove_stream(ids[3]);
  gw.run(20);

  const GatewayReport report = gw.report();
  EXPECT_TRUE(report.conserves());
  EXPECT_EQ(registry.counter("gateway.admitted_bytes").value(),
            report.admitted);
  EXPECT_EQ(registry.counter("gateway.served_bytes").value(), report.served);
  EXPECT_EQ(registry.counter("gateway.dropped_bytes").value(),
            report.dropped);
  EXPECT_EQ(registry.counter("gateway.unserved_bytes").value(),
            report.unserved);
  EXPECT_EQ(registry.counter("gateway.joins").value(), report.joins);
  EXPECT_EQ(registry.counter("gateway.leaves").value(), report.leaves);
  EXPECT_EQ(registry.counter("gateway.violations").value(),
            report.violations);
}

}  // namespace
