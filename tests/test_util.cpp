// Unit tests for src/util: RNG determinism and distributions, statistics,
// CSV escaping, table formatting.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace rtsmooth {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  bool seen[9] = {};
  for (int i = 0; i < 10000; ++i) {
    seen[rng.uniform_int(0, 8)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent1(5);
  Rng parent2(5);
  Rng childa = parent1.split(1);
  Rng childb = parent2.split(1);
  EXPECT_EQ(childa(), childb());  // same parent state, same id -> same stream
  Rng parent3(5);
  Rng childc = parent3.split(2);
  Rng parent4(5);
  Rng childd = parent4.split(1);
  EXPECT_NE(childc(), childd());  // different id -> different stream
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Percentile, InterpolatesLinearly) {
  const double xs[] = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
}

TEST(Autocorrelation, IidIsNearZeroAndTrendIsHigh) {
  Rng rng(23);
  std::vector<double> iid;
  std::vector<double> trend;
  double level = 0.0;
  for (int i = 0; i < 20000; ++i) {
    iid.push_back(rng.normal());
    level = 0.99 * level + rng.normal() * 0.1;
    trend.push_back(level);
  }
  EXPECT_LT(std::abs(autocorrelation_lag1(iid)), 0.05);
  EXPECT_GT(autocorrelation_lag1(trend), 0.9);
}

TEST(FormatBytes, PicksUnits) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(38.0 * 1024), "38.0 KB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.5 MB");
}

TEST(Csv, EscapesSpecials) {
  const std::string path = ::testing::TempDir() + "rtsmooth_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  }
  std::ifstream in(path);
  std::stringstream all;
  all << in.rdbuf();
  EXPECT_EQ(all.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
  std::remove(path.c_str());
}

TEST(Csv, NumericFieldsRoundTrip) {
  EXPECT_EQ(CsvWriter::field(std::int64_t{-42}), "-42");
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(CsvWriter::field(v)), v);
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(Table, AlignsAndCounts) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"longer-name", "22.25"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22.25"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
}

}  // namespace
}  // namespace rtsmooth
