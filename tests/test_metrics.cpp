// Unit tests for the metrics types: Tally arithmetic, SimReport derived
// measures, conservation checking and aggregation — including on reports
// produced by real faulty-link runs, where conservation must absorb the
// lost-in-link and retransmission flows.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/metrics.h"
#include "core/planner.h"
#include "faults/fault_links.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace rtsmooth {
namespace {

TEST(Tally, AddAndCombine) {
  Tally a;
  a.add(10, 2.5, 3);
  a.add(5, 0.5, 1);
  EXPECT_EQ(a.bytes, 15);
  EXPECT_DOUBLE_EQ(a.weight, 3.0);
  EXPECT_EQ(a.slices, 4);
  Tally b;
  b.add(1, 1.0, 1);
  b += a;
  EXPECT_EQ(b.bytes, 16);
  EXPECT_EQ(b.slices, 5);
}

TEST(SimReport, LossAndBenefitFractions) {
  SimReport r;
  r.offered.add(100, 200.0, 100);
  r.played.add(80, 150.0, 80);
  r.dropped_server.add(20, 50.0, 20);
  EXPECT_DOUBLE_EQ(r.weighted_loss(), 0.25);
  EXPECT_DOUBLE_EQ(r.benefit_fraction(), 0.75);
  EXPECT_DOUBLE_EQ(r.byte_loss(), 0.2);
  EXPECT_EQ(r.throughput(), 80);
  EXPECT_DOUBLE_EQ(r.benefit(), 150.0);
}

TEST(SimReport, EmptyReportIsNeutral) {
  const SimReport r;
  EXPECT_DOUBLE_EQ(r.weighted_loss(), 0.0);
  EXPECT_DOUBLE_EQ(r.benefit_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(r.byte_loss(), 0.0);
  EXPECT_TRUE(r.conserves());
}

TEST(SimReport, ConservationDetectsMismatch) {
  SimReport r;
  r.offered.add(10, 10.0, 10);
  r.played.add(6, 6.0, 6);
  EXPECT_FALSE(r.conserves());
  r.dropped_server.add(4, 4.0, 4);
  EXPECT_TRUE(r.conserves());
  r.residual.add(0, 0.0, 1);  // slice count off by one
  EXPECT_FALSE(r.conserves());
}

TEST(SimReport, AggregationSumsAndMaxes) {
  SimReport a;
  a.offered.add(10, 10.0, 10);
  a.played.add(10, 10.0, 10);
  a.max_server_occupancy = 7;
  a.steps = 5;
  SimReport b;
  b.offered.add(20, 20.0, 20);
  b.played.add(15, 15.0, 15);
  b.dropped_server.add(5, 5.0, 5);
  b.max_server_occupancy = 3;
  b.steps = 9;
  a += b;
  EXPECT_EQ(a.offered.bytes, 30);
  EXPECT_EQ(a.played.bytes, 25);
  EXPECT_EQ(a.max_server_occupancy, 7);  // max, not sum
  EXPECT_EQ(a.steps, 14);
  EXPECT_TRUE(a.conserves());
}

TEST(SimReport, StreamInsertionMentionsKeyFigures) {
  SimReport r;
  r.offered.add(100, 100.0, 100);
  r.played.add(50, 50.0, 50);
  r.dropped_server.add(50, 50.0, 50);
  std::ostringstream os;
  os << r;
  const std::string text = os.str();
  EXPECT_NE(text.find("offered 100"), std::string::npos);
  EXPECT_NE(text.find("weighted loss 50"), std::string::npos);
}

TEST(SimReport, PerTypeArraysIndexByFrameType) {
  SimReport r;
  r.offered_by_type[static_cast<std::size_t>(FrameType::I)].add(12, 144.0, 1);
  r.offered_by_type[static_cast<std::size_t>(FrameType::B)].add(1, 1.0, 1);
  EXPECT_EQ(r.offered_by_type[0].bytes, 12);  // I
  EXPECT_EQ(r.offered_by_type[2].bytes, 1);   // B
}

// ------------------------------------------------ faulty-link run reports

SimReport faulty_report(double erasure, bool recovery) {
  const Stream s = trace::slice_frames(
      trace::stock_clip("cnn-news", 150), trace::ValueModel::mpeg_default(),
      trace::Slicing::WholeFrame);
  const Plan plan = Planner::from_buffer_rate(
      4 * s.max_frame_bytes(), sim::relative_rate(s, 1.1));
  sim::SimConfig config = sim::SimConfig::balanced(plan);
  if (recovery) config.recovery = RecoveryConfig{.enabled = true};
  return sim::simulate(
      s, config, "greedy",
      std::make_unique<faults::ErasureLink>(1, erasure, Rng(77)));
}

TEST(SimReport, ConservesAcrossFaultyLinkRuns) {
  // Erased bytes flow into lost_link (no recovery) or come back as
  // retransmissions (recovery on); the conservation identity must hold in
  // both regimes, not just on clean links.
  const SimReport plain = faulty_report(0.1, /*recovery=*/false);
  EXPECT_TRUE(plain.conserves());
  EXPECT_GT(plain.lost_link.bytes, 0);
  const SimReport recovered = faulty_report(0.1, /*recovery=*/true);
  EXPECT_TRUE(recovered.conserves());
  EXPECT_GT(recovered.retransmitted_bytes, 0);
  EXPECT_GT(recovered.played.bytes, plain.played.bytes);
}

TEST(SimReport, StreamInsertionCoversFaultFigures) {
  // The printed summary must surface the fault-path tallies, not just the
  // clean-run figures: link losses without recovery, retransmissions with.
  std::ostringstream plain;
  plain << faulty_report(0.15, /*recovery=*/false);
  EXPECT_NE(plain.str().find("offered"), std::string::npos);
  EXPECT_NE(plain.str().find("link-lost"), std::string::npos) << plain.str();
  std::ostringstream recovered;
  recovered << faulty_report(0.15, /*recovery=*/true);
  EXPECT_NE(recovered.str().find("retx"), std::string::npos)
      << recovered.str();
}

}  // namespace
}  // namespace rtsmooth
