// Timeline tests (DESIGN.md Sect. 16): delta encoding against a live
// registry, the base-folding eviction invariant (base + sum(deltas) ==
// total at every instant), merge-on-same-step sampling, mid-run metric
// appearance, multi-window burn-rate math with its both-windows gate, and
// the determinism of the rtsmooth-series-v1 dump.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/telemetry.h"
#include "obs/timeline.h"

namespace rtsmooth::obs {
namespace {

TimelineConfig small_config() {
  TimelineConfig config;
  config.slot_steps = 10;
  config.capacity = 4;
  config.short_slots = 1;
  config.long_slots = 2;
  return config;
}

/// base + sum(deltas) == total for one counter column of a dump.
void expect_conserves(const Json& doc, const std::string& counter) {
  const Json& column = doc.at("counters").at(counter);
  std::int64_t sum = column.at("base").as_int();
  for (const Json& d : column.at("deltas").items()) sum += d.as_int();
  EXPECT_EQ(sum, column.at("total").as_int()) << counter;
}

TEST(TimelineConfig, Validation) {
  EXPECT_EQ(TimelineConfig{}.validate(), "");  // disabled is always fine
  TimelineConfig config;
  config.slot_steps = -1;
  EXPECT_NE(config.validate(), "");

  config = small_config();
  EXPECT_EQ(config.validate(), "");
  config.capacity = 0;
  EXPECT_NE(config.validate(), "");

  config = small_config();
  config.long_slots = 0;  // < short_slots
  EXPECT_NE(config.validate(), "");

  config = small_config();
  config.capacity = 1;  // long window no longer fits in the ring
  EXPECT_NE(config.validate(), "");

  // A disabled config may carry nonsense everywhere else.
  config = small_config();
  config.slot_steps = 0;
  config.capacity = 0;
  EXPECT_EQ(config.validate(), "");

  config = small_config();
  config.budgets.push_back(BurnBudget{.name = "x", .total = {"t"}});
  EXPECT_NE(config.validate(), "");  // empty bad list
  config.budgets.back().bad = {"b"};
  EXPECT_EQ(config.validate(), "");
  config.budgets.back().budget = 1.5;
  EXPECT_NE(config.validate(), "");
  config.budgets.back().budget = 0.5;
  config.budgets.back().threshold = 0.0;
  EXPECT_NE(config.validate(), "");

  EXPECT_THROW(Timeline(TimelineConfig{.slot_steps = -3}),
               std::invalid_argument);
}

TEST(Timeline, DeltaEncodesCountersGaugesAndHistograms) {
  Registry registry;
  Counter& bytes = registry.counter("d.bytes");
  Gauge& depth = registry.gauge("d.depth");
  Histogram& sizes =
      registry.histogram("d.sizes", HistogramSpec::exponential(4, 2));

  Timeline timeline(small_config());
  bytes.add(100);
  depth.update(7);
  sizes.record(3, 2);  // first bucket, weight 2
  timeline.sample(10, registry);
  bytes.add(40);
  depth.update(5);   // below the watermark: gauge stays at 7
  sizes.record(50);  // overflow bucket
  timeline.sample(20, registry);

  const Json doc = timeline.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), "rtsmooth-series-v1");
  EXPECT_EQ(doc.at("slots").as_int(), 2);
  EXPECT_EQ(doc.at("evicted").as_int(), 0);
  EXPECT_EQ(doc.at("slot_end_steps").at(0).as_int(), 10);
  EXPECT_EQ(doc.at("slot_end_steps").at(1).as_int(), 20);

  const Json& column = doc.at("counters").at("d.bytes");
  EXPECT_EQ(column.at("base").as_int(), 0);
  EXPECT_EQ(column.at("deltas").at(0).as_int(), 100);
  EXPECT_EQ(column.at("deltas").at(1).as_int(), 40);
  EXPECT_EQ(column.at("total").as_int(), 140);
  expect_conserves(doc, "d.bytes");

  const Json& gauge = doc.at("gauges").at("d.depth");
  EXPECT_EQ(gauge.at(0).as_int(), 7);
  EXPECT_EQ(gauge.at(1).as_int(), 7);

  const Json& hist = doc.at("histograms").at("d.sizes");
  EXPECT_EQ(hist.at("count").at("deltas").at(0).as_int(), 2);
  EXPECT_EQ(hist.at("count").at("deltas").at(1).as_int(), 1);
  EXPECT_EQ(hist.at("count").at("total").as_int(), 3);
  EXPECT_EQ(hist.at("sum").at("total").as_int(), 2 * 3 + 50);
  // Slot 0 landed weight 2 in the first bucket, slot 1 one record in the
  // overflow bucket.
  EXPECT_EQ(hist.at("buckets").at(0).at(0).as_int(), 2);
  EXPECT_EQ(hist.at("buckets").at(1).at(2).as_int(), 1);
}

TEST(Timeline, EvictionFoldsOldestSlotIntoBase) {
  Registry registry;
  Counter& c = registry.counter("c");
  Histogram& h = registry.histogram("h", HistogramSpec::linear(10, 2));

  TimelineConfig config = small_config();
  config.capacity = 2;
  Timeline timeline(config);
  for (std::int64_t t = 1; t <= 5; ++t) {
    c.add(t);        // deltas 1, 2, 3, 4, 5
    h.record(5, t);  // first bucket, weight t
    timeline.sample(t * 10, registry);
  }

  EXPECT_EQ(timeline.slots(), 2u);
  EXPECT_EQ(timeline.evicted(), 3);
  const Json doc = timeline.to_json();
  const Json& column = doc.at("counters").at("c");
  EXPECT_EQ(column.at("base").as_int(), 1 + 2 + 3);
  EXPECT_EQ(column.at("deltas").at(0).as_int(), 4);
  EXPECT_EQ(column.at("deltas").at(1).as_int(), 5);
  EXPECT_EQ(column.at("total").as_int(), 15);
  expect_conserves(doc, "c");

  const Json& hist = doc.at("histograms").at("h");
  // record(v, w) adds w to the count, so the evicted weight is 1+2+3.
  EXPECT_EQ(hist.at("count").at("base").as_int(), 1 + 2 + 3);
  EXPECT_EQ(hist.at("bucket_base").at(0).as_int(), 1 + 2 + 3);
  EXPECT_EQ(hist.at("sum").at("base").as_int(), 5 * (1 + 2 + 3));
  // Only the surviving slots keep per-slot rows.
  EXPECT_EQ(hist.at("buckets").size(), 2u);
  EXPECT_EQ(hist.at("buckets").at(1).at(0).as_int(), 5);
}

TEST(Timeline, SampleAtSameStepMergesIntoLastSlot) {
  Registry registry;
  Counter& c = registry.counter("c");
  Timeline timeline(small_config());

  c.add(10);
  timeline.sample(10, registry);
  // The daemon's terminal sample can land on the step of the last cadence
  // sample after the shutdown drain mutated counters without advancing
  // the step count — it must merge, not open a duplicate slot.
  c.add(5);
  timeline.sample(10, registry);

  EXPECT_EQ(timeline.slots(), 1u);
  const Json doc = timeline.to_json();
  EXPECT_EQ(doc.at("counters").at("c").at("deltas").at(0).as_int(), 15);
  EXPECT_EQ(doc.at("counters").at("c").at("total").as_int(), 15);
  expect_conserves(doc, "c");
}

TEST(Timeline, MetricAppearingMidRunZeroFillsItsHistory) {
  Registry registry;
  registry.counter("early").add(1);
  Timeline timeline(small_config());
  timeline.sample(10, registry);

  registry.counter("late").add(9);
  registry.gauge("late_gauge").update(4);
  timeline.sample(20, registry);

  const Json doc = timeline.to_json();
  const Json& late = doc.at("counters").at("late");
  EXPECT_EQ(late.at("deltas").size(), 2u);
  EXPECT_EQ(late.at("deltas").at(0).as_int(), 0);  // zero-filled history
  EXPECT_EQ(late.at("deltas").at(1).as_int(), 9);
  expect_conserves(doc, "late");
  // Gauges backfill with the current value (monotone either way).
  const Json& gauge = doc.at("gauges").at("late_gauge");
  EXPECT_EQ(gauge.at(0).as_int(), 4);
  EXPECT_EQ(gauge.at(1).as_int(), 4);
}

TEST(Timeline, BurnFiresOnlyWhenBothWindowsExceedThreshold) {
  Registry registry;
  Counter& bad = registry.counter("bad");
  Counter& total = registry.counter("total");

  TimelineConfig config = small_config();
  config.capacity = 8;
  config.short_slots = 1;
  config.long_slots = 4;
  config.budgets.push_back(BurnBudget{.name = "miss",
                                      .bad = {"bad"},
                                      .total = {"total"},
                                      .budget = 0.10,
                                      .threshold = 1.0});
  Timeline timeline(config);

  // Three clean slots: no burn at all.
  for (std::int64_t t = 1; t <= 3; ++t) {
    total.add(100);
    const std::vector<BurnStatus>& statuses =
        timeline.sample(t * 10, registry);
    ASSERT_EQ(statuses.size(), 1u);
    EXPECT_EQ(statuses[0].short_burn, 0.0);
    EXPECT_FALSE(statuses[0].firing);
  }

  // A mildly bad slot stays under the threshold in both windows.
  bad.add(4);  // short fraction 4/100 = 0.04 -> 0.4x budget
  total.add(100);
  {
    const BurnStatus& status = timeline.sample(40, registry)[0];
    EXPECT_FALSE(status.firing);
    EXPECT_DOUBLE_EQ(status.short_burn, 0.4);
    EXPECT_DOUBLE_EQ(status.long_burn, 0.1);  // 4/400 over the budget
  }

  // A hot spike: the short window fires instantly (20/100 = 2x budget),
  // but the long window holds the gate closed (24/400 = 0.6x).
  bad.add(20);
  total.add(100);
  {
    const BurnStatus& status = timeline.sample(50, registry)[0];
    EXPECT_DOUBLE_EQ(status.short_burn, 2.0);
    EXPECT_DOUBLE_EQ(status.long_burn, 0.6);
    EXPECT_FALSE(status.firing) << "one spike must not page";
    EXPECT_EQ(status.alerts, 0);
  }

  // Sustained badness: both windows exceed the threshold -> firing, and
  // alerts counts every firing sample.
  for (std::int64_t t = 6; t <= 8; ++t) {
    bad.add(50);
    total.add(50);
    const BurnStatus& status = timeline.sample(t * 10, registry)[0];
    EXPECT_GE(status.short_burn, 1.0);
    if (t == 8) {
      EXPECT_GE(status.long_burn, 1.0);
      EXPECT_TRUE(status.firing);
      EXPECT_GE(status.alerts, 1);
    }
  }

  // Budgets naming absent counters never fire and never divide by zero.
  TimelineConfig absent = small_config();
  absent.budgets.push_back(
      BurnBudget{.name = "ghost", .bad = {"no.such"}, .total = {"nope"}});
  Timeline ghost(absent);
  const BurnStatus& status = ghost.sample(10, registry)[0];
  EXPECT_EQ(status.short_burn, 0.0);
  EXPECT_FALSE(status.firing);
}

TEST(Timeline, DumpIsDeterministicAcrossIdenticalFeeds) {
  const auto run = [] {
    Registry registry;
    Timeline timeline(small_config());
    for (std::int64_t t = 1; t <= 6; ++t) {
      registry.counter("z.last").add(t);
      registry.counter("a.first").add(2 * t);
      registry.gauge("m.depth").update(t * t);
      registry.histogram("h", HistogramSpec::exponential(2, 3))
          .record(t, 3);
      timeline.sample(t * 10, registry);
    }
    return timeline.to_json().dump();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_NE(first.find("\"a.first\""), std::string::npos);
  // Lexicographic metric order, independent of registration order.
  EXPECT_LT(first.find("\"a.first\""), first.find("\"z.last\""));
}

}  // namespace
}  // namespace rtsmooth::obs
