// Differential tests for the daemon's graceful reconfiguration (DESIGN.md
// Sect. 13) against the tests-only reference core (tests/reference_core.h).
//
// The contract under test: a LiveEngine epoch fed a known arrival schedule
// must produce a SimReport byte-identical (on every tally) to a batch
// ReferenceSimulator run over a Stream with the same arrivals, and a
// drain-and-replan daemon run must therefore equal the *sum* of independent
// batch runs, one per engine epoch. The replay timing of deferred ingest
// groups (up to two per step after a drain) is reproduced here from the
// daemon's published drain-step count, so the suffix stream's arrival
// schedule is derived, not guessed.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "daemon/rtsmoothd.h"
#include "obs/json.h"
#include "policies/policy_factory.h"
#include "reference_core.h"
#include "sim/simulator.h"
#include "trace/value_model.h"

namespace rtsmooth::daemon {
namespace {

// Deterministic, bursty frame schedule: sizes sweep 2..21 with a period
// chosen so busy steps exceed the link rate and force server queueing (and,
// at tight provisionings, policy drops) without ever dwarfing the buffers.
trace::FrameSequence make_clip(std::size_t frames) {
  trace::FrameSequence seq;
  seq.reserve(frames);
  const FrameType types[4] = {FrameType::I, FrameType::P, FrameType::B,
                              FrameType::Other};
  for (std::size_t i = 0; i < frames; ++i) {
    const Bytes size = 2 + static_cast<Bytes>((7 * i) % 20);
    seq.push_back(trace::Frame{types[i % 4], size});
  }
  return seq;
}

// The engine slices an admitted frame into unit slices with the value
// model's per-byte weight — the batch-equivalent run for frame `f` arriving
// at engine-local step `at`.
SliceRun run_for(const trace::Frame& f, Time at,
                 const trace::ValueModel& values) {
  SliceRun run;
  run.arrival = at;
  run.slice_size = 1;
  run.count = f.size;
  run.weight = values.byte_value(f.type);
  run.frame_type = f.type;
  return run;
}

sim::SimConfig sim_config_of(const EngineConfig& cfg) {
  sim::SimConfig sc;
  sc.server_buffer = cfg.server_buffer;
  sc.client_buffer = cfg.client_buffer;
  sc.rate = cfg.rate;
  sc.smoothing_delay = cfg.smoothing_delay;
  sc.link_delay = cfg.link_delay;
  return sc;
}

// Field-wise comparison excluding steps (epoch bookkeeping differs from a
// batch run's horizon) and the invariant tallies (the reference replicates
// the monitor; the live engine does not run one).
void expect_reports_match(const SimReport& daemon, const SimReport& batch) {
  EXPECT_EQ(daemon.offered, batch.offered);
  EXPECT_EQ(daemon.played, batch.played);
  EXPECT_EQ(daemon.dropped_server, batch.dropped_server);
  EXPECT_EQ(daemon.dropped_client_overflow, batch.dropped_client_overflow);
  EXPECT_EQ(daemon.dropped_client_late, batch.dropped_client_late);
  EXPECT_EQ(daemon.lost_link, batch.lost_link);
  EXPECT_EQ(daemon.residual, batch.residual);
  for (std::size_t k = 0; k < daemon.offered_by_type.size(); ++k) {
    EXPECT_EQ(daemon.offered_by_type[k], batch.offered_by_type[k]) << k;
    EXPECT_EQ(daemon.played_by_type[k], batch.played_by_type[k]) << k;
  }
  EXPECT_EQ(daemon.retransmitted_bytes, batch.retransmitted_bytes);
  EXPECT_EQ(daemon.stall_steps, batch.stall_steps);
  EXPECT_EQ(daemon.max_server_occupancy, batch.max_server_occupancy);
  EXPECT_EQ(daemon.max_client_occupancy, batch.max_client_occupancy);
}

DaemonOptions quiet_options(EngineConfig engine) {
  DaemonOptions opts;
  opts.engine = engine;
  opts.slo.enabled = false;
  opts.ladder.enabled = false;
  return opts;
}

TEST(Reconfig, SteadyStateEngineMatchesReferenceBatch) {
  const trace::FrameSequence clip = make_clip(300);
  EngineConfig engine;
  engine.rate = 8;
  engine.smoothing_delay = 4;
  engine.server_buffer = 32;  // balanced: B = R*D
  engine.client_buffer = 32;
  engine.link_delay = 1;
  Daemon daemon(quiet_options(engine),
                std::make_unique<ReplaySource>(clip));
  ASSERT_EQ(daemon.serve(), 0);

  // One frame per poll, one group per step: frame i arrives at engine
  // step i, exactly like the batch stream below.
  std::vector<SliceRun> runs;
  const trace::ValueModel values = engine.values;
  for (std::size_t i = 0; i < clip.size(); ++i) {
    runs.push_back(run_for(clip[i], static_cast<Time>(i), values));
  }
  const Stream stream = Stream::from_runs(std::move(runs));
  refcore::ReferenceSimulator reference(stream, sim_config_of(engine),
                                        engine.policy);
  const SimReport batch = reference.run();
  expect_reports_match(daemon.total_report(), batch);
  // The tight plan must actually have exercised the drop path, or this
  // differential proves less than it claims.
  EXPECT_GT(batch.dropped_server.bytes, 0);

  // The production cores replay the same schedule: the event-driven engine
  // must equal the reference batch on every field and reconcile against
  // the daemon's totals just like the slot core does.
  sim::SimConfig event_config = sim_config_of(engine);
  event_config.engine = sim::EngineKind::EventDriven;
  sim::SmoothingSimulator event_sim(stream, event_config,
                                    make_policy(engine.policy));
  const SimReport event_batch = event_sim.run();
  EXPECT_TRUE(event_batch == batch)
      << "event-core batch diverges from the reference batch";
  expect_reports_match(daemon.total_report(), event_batch);
}

TEST(Reconfig, DrainAndReplanMatchesReferencePrefixPlusSuffix) {
  const std::size_t kFrames = 400;
  const Time kReconfigAt = 120;
  const trace::FrameSequence clip = make_clip(kFrames);

  EngineConfig first;
  first.rate = 8;
  first.smoothing_delay = 4;
  first.server_buffer = 32;
  first.client_buffer = 32;
  first.link_delay = 1;

  EnginePlan plan;
  plan.rate = 12;
  plan.smoothing_delay = 3;   // balanced point 36
  plan.server_buffer = 30;    // deficit + mismatch: a Sect. 3.3 waste case
  plan.client_buffer = 36;
  plan.link_delay = 2;

  std::ostringstream log;
  DaemonOptions opts = quiet_options(first);
  opts.log = &log;
  Daemon daemon(opts, std::make_unique<ReplaySource>(clip));
  daemon.schedule_reconfig(kReconfigAt, plan);
  ASSERT_EQ(daemon.serve(), 0);
  ASSERT_EQ(daemon.reconfigs_applied(), 1);
  EXPECT_TRUE(daemon.ingest_ledger_conserves());
  EXPECT_TRUE(daemon.total_report().conserves());

  // The begin-reconfig log names the waste cases the new plan lands in.
  EXPECT_NE(log.str().find("server_buffer_deficit"), std::string::npos);
  EXPECT_NE(log.str().find("buffer_mismatch"), std::string::npos);

  // Reconstruct the epoch split from the daemon's published drain length.
  // Epoch 1 saw frames 0..kReconfigAt-1 at engine-local step == index.
  // Frames polled during the d drain steps (and after) were deferred and
  // replayed two groups per step into the new engine.
  const obs::Json snap = daemon.snapshot();
  const Time d = snap.at("reconfigs").at("drain_steps").as_int();
  ASSERT_GT(d, 0);
  EXPECT_EQ(snap.at("reconfigs").at("max_lag").as_int(), d);
  EXPECT_FALSE(snap.at("reconfigs").at("forced_residual").as_bool());

  const trace::ValueModel values = first.values;
  std::vector<SliceRun> prefix_runs;
  for (Time i = 0; i < kReconfigAt; ++i) {
    prefix_runs.push_back(
        run_for(clip[static_cast<std::size_t>(i)], i, values));
  }

  // Queue replay: the backlog holds the groups polled at global steps
  // kReconfigAt .. kReconfigAt+d-1; from the first post-drain step on, one
  // fresh group is polled per step (until the clip ends) and up to two
  // groups are admitted per engine-local step, oldest first.
  std::deque<std::size_t> backlog;
  for (Time j = 0; j < d; ++j) {
    backlog.push_back(static_cast<std::size_t>(kReconfigAt + j));
  }
  std::vector<SliceRun> suffix_runs;
  std::size_t next_poll = static_cast<std::size_t>(kReconfigAt + d);
  for (Time local = 0; !backlog.empty() || next_poll < kFrames; ++local) {
    if (next_poll < kFrames) backlog.push_back(next_poll++);
    for (int take = 0; take < 2 && !backlog.empty(); ++take) {
      const std::size_t frame = backlog.front();
      backlog.pop_front();
      suffix_runs.push_back(run_for(clip[frame], local, values));
    }
  }

  EngineConfig second = first;
  second.server_buffer = plan.server_buffer;
  second.client_buffer = plan.client_buffer;
  second.rate = plan.rate;
  second.smoothing_delay = plan.smoothing_delay;
  second.link_delay = plan.link_delay;

  // The simulators hold pointers into the streams: both must outlive them.
  const Stream prefix_stream = Stream::from_runs(std::move(prefix_runs));
  const Stream suffix_stream = Stream::from_runs(std::move(suffix_runs));
  refcore::ReferenceSimulator ref_prefix(prefix_stream, sim_config_of(first),
                                         first.policy);
  refcore::ReferenceSimulator ref_suffix(suffix_stream,
                                         sim_config_of(second),
                                         second.policy);
  SimReport expected = ref_prefix.run();
  expected += ref_suffix.run();
  expect_reports_match(daemon.total_report(), expected);
  EXPECT_EQ(daemon.total_report().offered.bytes, daemon.polled_bytes());

  // The same epoch split replayed on the production cores: the slot and
  // event engines must produce byte-identical per-epoch reports, and their
  // sum must reconcile against the daemon's ingest ledger and conservation
  // totals exactly like the reference sum above.
  auto batch_sum = [&](sim::EngineKind engine) {
    sim::SimConfig prefix_config = sim_config_of(first);
    prefix_config.engine = engine;
    sim::SmoothingSimulator prefix_sim(prefix_stream, prefix_config,
                                       make_policy(first.policy));
    SimReport total = prefix_sim.run();
    sim::SimConfig suffix_config = sim_config_of(second);
    suffix_config.engine = engine;
    sim::SmoothingSimulator suffix_sim(suffix_stream, suffix_config,
                                       make_policy(second.policy));
    total += suffix_sim.run();
    return total;
  };
  const SimReport slot_sum = batch_sum(sim::EngineKind::SlotStepped);
  const SimReport event_sum = batch_sum(sim::EngineKind::EventDriven);
  EXPECT_TRUE(slot_sum == event_sum)
      << "slot vs event drain-and-replan batch sums diverge";
  EXPECT_TRUE(event_sum.conserves());
  expect_reports_match(daemon.total_report(), event_sum);
}

TEST(Reconfig, ManyReconfigsConserveWithBoundedLag) {
  GeneratorConfig gen;
  gen.channels = 3;
  gen.mean_frame_bytes = 48;
  gen.max_frame_bytes = 128;
  gen.min_frame_bytes = 8;
  gen.seed = 21;

  EngineConfig engine;
  engine.rate = 256;
  engine.smoothing_delay = 4;
  engine.server_buffer = 1024;
  engine.client_buffer = 1024;
  engine.link_delay = 1;
  DaemonOptions opts = quiet_options(engine);
  opts.max_steps = 4000;
  Daemon daemon(opts, std::make_unique<GeneratorSource>(gen));

  // A three-plan cycle: balanced at double rate, a deliberately mismatched
  // shrink, and back to base — every 100 steps.
  for (Time at = 100; at < 4000; at += 100) {
    EnginePlan plan;
    switch ((at / 100) % 3) {
      case 0:
        plan = EnginePlan{1024, 1024, 256, 4, 1, ""};
        break;
      case 1:
        plan = EnginePlan{2048, 2048, 512, 4, 1, ""};
        break;
      default:
        plan = EnginePlan{512, 1024, 256, 4, 1, ""};
        break;
    }
    daemon.schedule_reconfig(at, plan);
  }
  ASSERT_EQ(daemon.serve(), 0);
  EXPECT_GE(daemon.reconfigs_applied(), 20);
  EXPECT_EQ(daemon.reconfigs_rejected(), 0);
  EXPECT_TRUE(daemon.total_report().conserves());
  EXPECT_TRUE(daemon.ingest_ledger_conserves());
  // The two-groups-per-step replay works each drain's backlog off before
  // the next reconfiguration: the lag never compounds across 30+ drains.
  const obs::Json snap = daemon.snapshot();
  const Time max_lag = snap.at("reconfigs").at("max_lag").as_int();
  EXPECT_GT(max_lag, 0);
  EXPECT_LT(max_lag, 100);
}

TEST(Reconfig, CycleProgramChurnsWithoutAHorizon) {
  GeneratorConfig gen;
  gen.channels = 3;
  gen.mean_frame_bytes = 48;
  gen.max_frame_bytes = 128;
  gen.min_frame_bytes = 8;
  gen.seed = 22;

  EngineConfig engine;
  engine.rate = 256;
  engine.smoothing_delay = 4;
  engine.server_buffer = 1024;
  engine.client_buffer = 1024;
  engine.link_delay = 1;
  DaemonOptions opts = quiet_options(engine);
  opts.max_steps = 5000;
  Daemon daemon(opts, std::make_unique<GeneratorSource>(gen));

  // Unlike schedule_reconfig, the cycle has no pre-enumerated horizon: the
  // applied count is set by the run length, not by how many requests were
  // queued up front.
  daemon.schedule_reconfig_cycle(
      100, {EnginePlan{2048, 2048, 512, 4, 1, ""},
            EnginePlan{1024, 1024, 256, 4, 1, ""}});
  ASSERT_EQ(daemon.serve(), 0);
  // ~50 periods; drains stretch the effective period a little, so leave
  // headroom while still proving the program outlived any fixed schedule.
  EXPECT_GE(daemon.reconfigs_applied(), 40);
  EXPECT_EQ(daemon.reconfigs_rejected(), 0);
  EXPECT_TRUE(daemon.total_report().conserves());
  EXPECT_TRUE(daemon.ingest_ledger_conserves());
  const obs::Json snap = daemon.snapshot();
  EXPECT_EQ(snap.at("reconfigs").at("queued").as_int(), 0);
}

TEST(Reconfig, CycleRejectsDegeneratePrograms) {
  EngineConfig engine;
  engine.rate = 64;
  engine.smoothing_delay = 2;
  engine.server_buffer = 128;
  engine.client_buffer = 128;
  engine.link_delay = 1;
  GeneratorConfig gen;
  gen.channels = 1;
  gen.frames_per_channel = 10;
  Daemon daemon(quiet_options(engine), std::make_unique<GeneratorSource>(gen));
  EXPECT_THROW(daemon.schedule_reconfig_cycle(
                   0, {EnginePlan{128, 128, 64, 2, 1, ""}}),
               std::invalid_argument);
  EXPECT_THROW(daemon.schedule_reconfig_cycle(100, {}), std::invalid_argument);
}

TEST(Reconfig, InvalidPlanIsRejectedAndServingContinues) {
  GeneratorConfig gen;
  gen.channels = 1;
  gen.mean_frame_bytes = 32;
  gen.max_frame_bytes = 64;
  gen.min_frame_bytes = 8;
  gen.frames_per_channel = 300;

  EngineConfig engine;
  engine.rate = 64;
  engine.smoothing_delay = 2;
  engine.server_buffer = 128;
  engine.client_buffer = 128;
  std::ostringstream log;
  DaemonOptions opts = quiet_options(engine);
  opts.log = &log;
  Daemon daemon(opts, std::make_unique<GeneratorSource>(gen));

  EnginePlan bad;
  bad.rate = 0;  // invalid: the engine requires R >= 1
  daemon.schedule_reconfig(50, bad);
  ASSERT_EQ(daemon.serve(), 0);
  EXPECT_EQ(daemon.reconfigs_applied(), 0);
  EXPECT_EQ(daemon.reconfigs_rejected(), 1);
  EXPECT_NE(log.str().find("rejected"), std::string::npos);
  // The rejected plan never interrupted serving: everything completed.
  EXPECT_EQ(daemon.polled_frames(), 300);
  EXPECT_TRUE(daemon.total_report().conserves());
  EXPECT_TRUE(daemon.ingest_ledger_conserves());
  EXPECT_EQ(daemon.engine().config().rate, 64);  // old plan still live
}

}  // namespace
}  // namespace rtsmooth::daemon
