// Property tests: parameterized sweeps over random streams, policies and
// resource configurations, asserting the paper's invariants hold on every
// combination (gtest TEST_P as the property-based harness; seeds make each
// instance reproducible).
//
// The PropertyFuzz suite at the bottom runs open-ended randomized rounds
// (default 50; RTSMOOTH_PROP_ITERS overrides — the nightly CI job runs 2000
// under ASan/UBSan). Every failing round prints a self-contained reproducer
// (seed, expanded SliceRuns, SimConfig) to stderr, and also writes it to
// $RTSMOOTH_REPRO_DIR/<label>_<seed>.txt when that variable is set, so CI
// can upload the dumps as artifacts.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/competitive.h"
#include "core/planner.h"
#include "differential.h"
#include "offline/brute_force.h"
#include "offline/pareto_dp.h"
#include "offline/unit_optimal.h"
#include "policies/policy_factory.h"
#include "random_instances.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace rtsmooth {
namespace {

// ------------------------------------------------------- system invariants

using SystemParams = std::tuple<std::string /*policy*/, int /*seed*/,
                                int /*rate*/, int /*delay*/>;

std::string sanitize(std::string name) {
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

std::string system_param_name(
    const ::testing::TestParamInfo<SystemParams>& param_info) {
  const auto& [policy, seed, rate, delay] = param_info.param;
  return sanitize(policy + "_s" + std::to_string(seed) + "_r" +
                  std::to_string(rate) + "_d" + std::to_string(delay));
}

class SystemInvariants : public ::testing::TestWithParam<SystemParams> {};

TEST_P(SystemInvariants, HoldOnRandomUnitStreams) {
  const auto& [policy, seed, rate, delay] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const Stream s = analysis::random_unit_stream(rng, 40, 15, 12.0, 0.8);
  const Plan plan = Planner::from_delay_rate(delay, rate);
  sim::SmoothingSimulator simulator(
      s, sim::SimConfig::balanced(plan), make_policy(policy));
  ScheduleRecorder rec(s.run_count());
  const SimReport report = simulator.run(&rec);

  // Conservation (offered = played + dropped + residual) and drain.
  EXPECT_TRUE(report.conserves());
  EXPECT_EQ(report.residual.bytes, 0);

  // Resource bounds (Definition 2.4 + Lemmas 3.2, 3.4).
  EXPECT_LE(report.max_server_occupancy, plan.buffer);
  EXPECT_LE(report.max_client_occupancy, plan.buffer);
  EXPECT_LE(report.max_link_bytes_per_step, plan.rate);

  // Client transparency at B = RD (Lemmas 3.3/3.4).
  EXPECT_EQ(report.dropped_client_overflow.bytes, 0);
  EXPECT_EQ(report.dropped_client_late.bytes, 0);

  // Per-run timing: sends within B/R of arrival (Lemma 3.2), playout at
  // AT + P + D.
  for (std::size_t i = 0; i < s.run_count(); ++i) {
    const RunOutcome& out = rec.run(i);
    if (out.last_send != kNever) {
      EXPECT_LE(out.last_send,
                s.runs()[i].arrival + plan.buffer / plan.rate);
      EXPECT_GE(out.first_send, s.runs()[i].arrival);
    }
    if (out.played > 0) {
      EXPECT_EQ(out.play_time, s.runs()[i].arrival + 1 + plan.delay);
    }
    // Every slice of the run is accounted exactly once.
    EXPECT_EQ(out.played + out.dropped_server + out.dropped_client,
              s.runs()[i].count);
  }

  // Theorem 3.5: played bytes equal the off-line optimum (unit slices, any
  // policy). The proactive policy early-drops and is exempt by design.
  if (policy != "proactive") {
    const auto optimal = offline::unit_optimal(s, plan.buffer, plan.rate);
    EXPECT_EQ(report.played.bytes, optimal.accepted_bytes);
  }

  // Weighted benefit never beats the weighted off-line optimum.
  const Weight opt_weight =
      offline::unit_optimal(s, plan.buffer, plan.rate).benefit;
  EXPECT_LE(report.played.weight, opt_weight + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    PolicySeedGrid, SystemInvariants,
    ::testing::Combine(
        ::testing::Values("tail-drop", "greedy", "head-drop", "random",
                          "proactive"),
        ::testing::Values(1, 2, 3),
        ::testing::Values(1, 3),
        ::testing::Values(2, 5)),
    system_param_name);

// -------------------------------------------- variable-size slice sweeps

using VariableParams = std::tuple<std::string, int /*seed*/, int /*lmax*/>;

std::string variable_param_name(
    const ::testing::TestParamInfo<VariableParams>& param_info) {
  const auto& [policy, seed, lmax] = param_info.param;
  return sanitize(policy + "_s" + std::to_string(seed) + "_l" +
                  std::to_string(lmax));
}

class VariableSliceInvariants
    : public ::testing::TestWithParam<VariableParams> {};

TEST_P(VariableSliceInvariants, HoldOnRandomVariableStreams) {
  const auto& [policy, seed, lmax] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 1000003);
  const Stream s =
      analysis::random_variable_stream(rng, 30, 5, 9.0, lmax, 0.75);
  const Bytes buffer = std::max<Bytes>(s.max_slice_size() * 2, 6);
  const Plan plan = Planner::from_buffer_rate(buffer, 2);
  if (plan.buffer < s.max_slice_size()) GTEST_SKIP();
  sim::SmoothingSimulator simulator(
      s, sim::SimConfig::balanced(plan), make_policy(policy));
  const SimReport report = simulator.run();
  EXPECT_TRUE(report.conserves());
  EXPECT_EQ(report.residual.bytes, 0);
  EXPECT_LE(report.max_server_occupancy, plan.buffer);
  EXPECT_EQ(report.dropped_client_overflow.bytes, 0);
  EXPECT_EQ(report.dropped_client_late.bytes, 0);

  // Theorem 3.9 envelope against the exact DP (throughput comparison uses
  // the unweighted optimum: rebuild the stream with weight = size).
  std::vector<SliceRun> unweighted(s.runs().begin(), s.runs().end());
  for (auto& run : unweighted) {
    run.weight = static_cast<Weight>(run.slice_size);
  }
  const Stream su = Stream::from_runs(std::move(unweighted));
  const auto optimal = offline::pareto_dp_optimal(su, plan.buffer, plan.rate);
  ASSERT_TRUE(optimal.exact);
  const double guarantee =
      Planner::throughput_guarantee(plan.buffer, s.max_slice_size());
  EXPECT_GE(static_cast<double>(report.played.bytes) + 1e-6,
            guarantee * optimal.benefit);
}

INSTANTIATE_TEST_SUITE_P(
    VariableGrid, VariableSliceInvariants,
    ::testing::Combine(::testing::Values("tail-drop", "greedy", "random"),
                       ::testing::Values(10, 11, 12, 13),
                       ::testing::Values(2, 4, 7)),
    variable_param_name);

// ----------------------------------------------- offline solver properties

class OfflineSolverProperties : public ::testing::TestWithParam<int> {};

TEST_P(OfflineSolverProperties, GreedyDpAndFeasibilityAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const Stream s = analysis::random_unit_stream(rng, 15, 6, 10.0);
  const Bytes buffer = rng.uniform_int(1, 8);
  const Bytes rate = rng.uniform_int(1, 3);
  const auto greedy = offline::unit_optimal(s, buffer, rate);
  const auto dp = offline::pareto_dp_optimal(s, buffer, rate);
  EXPECT_NEAR(greedy.benefit, dp.benefit, 1e-9);
  // Monotonicity: more buffer or more rate never hurts.
  EXPECT_LE(greedy.benefit,
            offline::unit_optimal(s, buffer + 2, rate).benefit + 1e-9);
  EXPECT_LE(greedy.benefit,
            offline::unit_optimal(s, buffer, rate + 1).benefit + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflineSolverProperties,
                         ::testing::Range(1, 25));

// ------------------------------------------------------------ fuzz rounds

/// Round count: default 50, overridden by RTSMOOTH_PROP_ITERS (the nightly
/// CI job runs 2000 under sanitizers).
int prop_iters() {
  if (const char* env = std::getenv("RTSMOOTH_PROP_ITERS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 50;
}

/// Emits the reproducer to stderr and, when RTSMOOTH_REPRO_DIR is set, to a
/// dump file CI can collect as an artifact. The directory is created if it
/// does not exist, and a single dump is capped at 1 MB so a pathological
/// instance cannot fill the artifact store.
void dump_reproducer(const std::string& label, std::uint64_t seed,
                     const Stream& stream, const sim::SimConfig& config) {
  std::string repro = testgen::describe_instance(seed, stream, config);
  constexpr std::size_t kMaxDumpBytes = 1 << 20;
  if (repro.size() > kMaxDumpBytes) {
    repro.resize(kMaxDumpBytes);
    repro += "\n[reproducer truncated at 1 MB]\n";
  }
  std::cerr << "[reproducer] " << label << "\n" << repro;
  if (const char* dir = std::getenv("RTSMOOTH_REPRO_DIR")) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::ofstream out(std::string(dir) + "/" + label + "_" +
                      std::to_string(seed) + ".txt");
    out << "label=" << label << "\n" << repro;
  }
}

/// SimConfig carrier for offline-solver reproducers (only buffer and rate
/// are meaningful; the rest are the defaults describe_instance prints).
sim::SimConfig offline_config(Bytes buffer, Bytes rate) {
  sim::SimConfig config;
  config.server_buffer = buffer;
  config.client_buffer = buffer;
  config.rate = rate;
  return config;
}

/// Tiny random instance for the exponential oracle: total slice count kept
/// small enough that 2^slices subsets stay cheap even under sanitizers.
Stream small_stream(Rng& rng, bool unit_only) {
  std::vector<SliceRun> runs;
  std::int64_t total_slices = 0;
  Time arrival = rng.uniform_int(0, 1);
  const std::int64_t steps = rng.uniform_int(2, 6);
  for (std::int64_t step = 0; step < steps && total_slices < 12; ++step) {
    SliceRun run;
    run.arrival = arrival;
    run.slice_size =
        (unit_only || rng.bernoulli(0.5)) ? 1 : rng.uniform_int(2, 4);
    run.count = std::min<std::int64_t>(rng.uniform_int(1, 3),
                                       12 - total_slices);
    run.weight = rng.bernoulli(0.2)
                     ? 0.0
                     : static_cast<Weight>(rng.uniform_int(1, 9));
    run.frame_type = static_cast<FrameType>(rng.uniform_int(0, 3));
    run.frame_index = step;
    total_slices += run.count;
    runs.push_back(run);
    arrival += rng.uniform_int(1, 2);
  }
  return Stream::from_runs(std::move(runs));
}

/// Runs with arrival <= cutoff, i.e. the instance induced by a stream
/// prefix (used for the prefix-dominance property).
Stream prefix_stream(const Stream& stream, Time cutoff) {
  std::vector<SliceRun> runs;
  for (const SliceRun& run : stream.runs()) {
    if (run.arrival <= cutoff) runs.push_back(run);
  }
  return Stream::from_runs(std::move(runs));
}

/// System invariants (conservation, resource bounds) on fully random
/// instances — arbitrary slice sizes, buffers, playout modes, recovery —
/// across every registered policy.
TEST(PropertyFuzz, SimulatorInvariantsOnRandomInstances) {
  const int rounds = prop_iters();
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t seed = 0xf022ed00 + static_cast<std::uint64_t>(round);
    Rng rng(seed);
    const Stream stream = testgen::random_stream(rng);
    const sim::SimConfig config = testgen::random_config(rng, stream);
    for (const std::string& policy : known_policies()) {
      sim::SmoothingSimulator simulator(stream, config, make_policy(policy));
      const SimReport report = simulator.run();
      const bool ok = report.conserves() && report.residual.bytes == 0 &&
                      report.max_server_occupancy <= config.server_buffer &&
                      report.max_client_occupancy <= config.client_buffer &&
                      report.max_link_bytes_per_step <= config.rate;
      EXPECT_TRUE(ok) << "policy=" << policy;
      if (!ok) {
        dump_reproducer("invariants_" + sanitize(policy), seed, stream,
                        config);
        return;
      }
    }
  }
}

/// Three-way engine agreement: the deque reference oracle, the slot-stepped
/// core and the event-driven core must produce byte-identical SimReports
/// and JSONL traces (and, between the two production engines, identical
/// registry snapshots and flight-recorder incident lists) on fully random
/// instances. One policy per round, rotating, keeps the nightly sanitizer
/// budget linear in RTSMOOTH_PROP_ITERS.
TEST(PropertyFuzz, ThreeWayEngineAgreementOnRandomInstances) {
  const int rounds = prop_iters();
  const std::vector<std::string> policies = known_policies();
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t seed = 0x3e3a9e00 + static_cast<std::uint64_t>(round);
    Rng rng(seed);
    const Stream stream = testgen::random_stream(rng);
    const sim::SimConfig config = testgen::random_config(rng, stream);
    const std::string& policy =
        policies[static_cast<std::size_t>(round) % policies.size()];
    difftest::expect_three_way(
        stream, config, policy,
        "policy=" + policy + "\n" +
            testgen::describe_instance(seed, stream, config));
    if (HasFailure()) {
      dump_reproducer("three_way_" + sanitize(policy), seed, stream, config);
      return;
    }
  }
}

/// Same agreement property on the targeted corner families of
/// random_instances.h — zero-length bursts, deadline == horizon,
/// single-slice streams, rate exactly equal to the peak arrival rate — the
/// boundaries the event engine's skip logic pivots on.
TEST(PropertyFuzz, ThreeWayEngineAgreementOnCornerInstances) {
  const int rounds = prop_iters();
  const std::vector<std::string> policies = known_policies();
  constexpr std::size_t kCorners = std::size(testgen::kAllCorners);
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t c = 0; c < kCorners; ++c) {
      const testgen::Corner corner = testgen::kAllCorners[c];
      const std::uint64_t seed =
          0xc02ce200 + static_cast<std::uint64_t>(round) * kCorners + c;
      Rng rng(seed);
      const Stream stream = testgen::corner_stream(rng, corner);
      const sim::SimConfig config =
          testgen::corner_config(rng, stream, corner);
      const std::string& policy =
          policies[static_cast<std::size_t>(round) % policies.size()];
      difftest::expect_three_way(
          stream, config, policy,
          "corner=" + std::string(testgen::corner_name(corner)) +
              "\npolicy=" + policy + "\n" +
              testgen::describe_instance(seed, stream, config));
      if (HasFailure()) {
        dump_reproducer("three_way_" +
                            sanitize(testgen::corner_name(corner)) + "_" +
                            sanitize(policy),
                        seed, stream, config);
        return;
      }
    }
  }
}

/// Theorem 3.5, strengthened to prefixes: with unit slices, every
/// work-conserving policy plays exactly the off-line optimal byte count —
/// on the full stream and on every arrival prefix (each prefix is itself an
/// instance; dominance on all of them pins the greedy exchange argument,
/// not just the endpoint). Weighted benefit stays below the weighted
/// optimum throughout.
TEST(PropertyFuzz, UnitPrefixDominanceMatchesOfflineOptimal) {
  const int rounds = prop_iters();
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t seed = 0xd0a11a00 + static_cast<std::uint64_t>(round);
    Rng rng(seed);
    const Stream stream =
        analysis::random_unit_stream(rng, rng.uniform_int(8, 30),
                                     rng.uniform_int(2, 10), 9.0, 0.8);
    if (stream.run_count() == 0) continue;
    const Bytes rate = rng.uniform_int(1, 4);
    const Time delay = rng.uniform_int(1, 5);
    const Plan plan = Planner::from_delay_rate(delay, rate);
    const Time last = stream.runs().back().arrival;
    const Time cutoffs[] = {last / 3, (2 * last) / 3, last};
    for (const std::string& policy : known_policies()) {
      if (policy == "proactive") continue;  // early-drops by design
      for (const Time cutoff : cutoffs) {
        const Stream prefix = prefix_stream(stream, cutoff);
        if (prefix.run_count() == 0) continue;
        sim::SmoothingSimulator simulator(
            prefix, sim::SimConfig::balanced(plan), make_policy(policy));
        const SimReport report = simulator.run();
        const auto optimal =
            offline::unit_optimal(prefix, plan.buffer, plan.rate);
        const bool ok =
            report.played.bytes == optimal.accepted_bytes &&
            report.played.weight <= optimal.benefit + 1e-6;
        EXPECT_TRUE(ok) << "policy=" << policy << " cutoff=" << cutoff
                        << " played=" << report.played.bytes
                        << " optimal=" << optimal.accepted_bytes;
        if (!ok) {
          dump_reproducer("prefix_dominance_" + sanitize(policy), seed,
                          prefix,
                          sim::SimConfig::balanced(plan));
          return;
        }
      }
    }
  }
}

/// Lemma 3.6: benefit is monotone in the buffer — growing B (at fixed R)
/// never reduces the off-line optimum, nor the bytes a work-conserving
/// policy plays online.
TEST(PropertyFuzz, BufferMonotonicity) {
  const int rounds = prop_iters();
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t seed = 0xb0ffe200 + static_cast<std::uint64_t>(round);
    Rng rng(seed);
    const Stream stream =
        analysis::random_unit_stream(rng, rng.uniform_int(8, 25),
                                     rng.uniform_int(2, 8), 7.0, 0.75);
    if (stream.run_count() == 0) continue;
    const Bytes rate = rng.uniform_int(1, 3);
    Weight prev_benefit = -1.0;
    Bytes prev_played = -1;
    for (Bytes buffer = rate; buffer <= rate * 5; buffer += rate) {
      const auto optimal = offline::unit_optimal(stream, buffer, rate);
      sim::SmoothingSimulator simulator(
          stream,
          sim::SimConfig::balanced(Planner::from_buffer_rate(buffer, rate)),
          make_policy("tail-drop"));
      const SimReport report = simulator.run();
      const bool ok = optimal.benefit >= prev_benefit - 1e-9 &&
                      report.played.bytes >= prev_played;
      EXPECT_TRUE(ok) << "buffer=" << buffer << " rate=" << rate;
      if (!ok) {
        dump_reproducer("buffer_monotonicity", seed, stream,
                        offline_config(buffer, rate));
        return;
      }
      prev_benefit = optimal.benefit;
      prev_played = report.played.bytes;
    }
  }
}

/// The polynomial solvers against the exponential oracle on small
/// instances: pareto_dp_optimal must match brute_force_optimal exactly for
/// arbitrary slice sizes, and unit_optimal must match on unit instances.
TEST(PropertyFuzz, SolversMatchBruteForceOnSmallInstances) {
  const int rounds = prop_iters();
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t seed = 0xb20cef00 + static_cast<std::uint64_t>(round);
    Rng rng(seed);
    const bool unit_only = rng.bernoulli(0.5);
    const Stream stream = small_stream(rng, unit_only);
    if (stream.run_count() == 0) continue;
    const Bytes buffer =
        std::max<Bytes>(stream.max_slice_size(), rng.uniform_int(1, 8));
    const Bytes rate = rng.uniform_int(1, 3);
    const Weight exact = offline::brute_force_optimal(stream, buffer, rate);
    const auto dp = offline::pareto_dp_optimal(stream, buffer, rate);
    ASSERT_TRUE(dp.exact);
    bool ok = std::abs(dp.benefit - exact) <= 1e-9;
    if (ok && unit_only) {
      const auto greedy = offline::unit_optimal(stream, buffer, rate);
      ok = std::abs(greedy.benefit - exact) <= 1e-9;
    }
    EXPECT_TRUE(ok) << "brute=" << exact << " dp=" << dp.benefit;
    if (!ok) {
      dump_reproducer("solver_mismatch", seed, stream,
                      offline_config(buffer, rate));
      return;
    }
  }
}

}  // namespace
}  // namespace rtsmooth
