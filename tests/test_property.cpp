// Property tests: parameterized sweeps over random streams, policies and
// resource configurations, asserting the paper's invariants hold on every
// combination (gtest TEST_P as the property-based harness; seeds make each
// instance reproducible).

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/competitive.h"
#include "core/planner.h"
#include "offline/pareto_dp.h"
#include "offline/unit_optimal.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace rtsmooth {
namespace {

// ------------------------------------------------------- system invariants

using SystemParams = std::tuple<std::string /*policy*/, int /*seed*/,
                                int /*rate*/, int /*delay*/>;

std::string sanitize(std::string name) {
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

std::string system_param_name(
    const ::testing::TestParamInfo<SystemParams>& param_info) {
  const auto& [policy, seed, rate, delay] = param_info.param;
  return sanitize(policy + "_s" + std::to_string(seed) + "_r" +
                  std::to_string(rate) + "_d" + std::to_string(delay));
}

class SystemInvariants : public ::testing::TestWithParam<SystemParams> {};

TEST_P(SystemInvariants, HoldOnRandomUnitStreams) {
  const auto& [policy, seed, rate, delay] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const Stream s = analysis::random_unit_stream(rng, 40, 15, 12.0, 0.8);
  const Plan plan = Planner::from_delay_rate(delay, rate);
  sim::SmoothingSimulator simulator(
      s, sim::SimConfig::balanced(plan), make_policy(policy));
  ScheduleRecorder rec(s.run_count());
  const SimReport report = simulator.run(&rec);

  // Conservation (offered = played + dropped + residual) and drain.
  EXPECT_TRUE(report.conserves());
  EXPECT_EQ(report.residual.bytes, 0);

  // Resource bounds (Definition 2.4 + Lemmas 3.2, 3.4).
  EXPECT_LE(report.max_server_occupancy, plan.buffer);
  EXPECT_LE(report.max_client_occupancy, plan.buffer);
  EXPECT_LE(report.max_link_bytes_per_step, plan.rate);

  // Client transparency at B = RD (Lemmas 3.3/3.4).
  EXPECT_EQ(report.dropped_client_overflow.bytes, 0);
  EXPECT_EQ(report.dropped_client_late.bytes, 0);

  // Per-run timing: sends within B/R of arrival (Lemma 3.2), playout at
  // AT + P + D.
  for (std::size_t i = 0; i < s.run_count(); ++i) {
    const RunOutcome& out = rec.run(i);
    if (out.last_send != kNever) {
      EXPECT_LE(out.last_send,
                s.runs()[i].arrival + plan.buffer / plan.rate);
      EXPECT_GE(out.first_send, s.runs()[i].arrival);
    }
    if (out.played > 0) {
      EXPECT_EQ(out.play_time, s.runs()[i].arrival + 1 + plan.delay);
    }
    // Every slice of the run is accounted exactly once.
    EXPECT_EQ(out.played + out.dropped_server + out.dropped_client,
              s.runs()[i].count);
  }

  // Theorem 3.5: played bytes equal the off-line optimum (unit slices, any
  // policy). The proactive policy early-drops and is exempt by design.
  if (policy != "proactive") {
    const auto optimal = offline::unit_optimal(s, plan.buffer, plan.rate);
    EXPECT_EQ(report.played.bytes, optimal.accepted_bytes);
  }

  // Weighted benefit never beats the weighted off-line optimum.
  const Weight opt_weight =
      offline::unit_optimal(s, plan.buffer, plan.rate).benefit;
  EXPECT_LE(report.played.weight, opt_weight + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    PolicySeedGrid, SystemInvariants,
    ::testing::Combine(
        ::testing::Values("tail-drop", "greedy", "head-drop", "random",
                          "proactive"),
        ::testing::Values(1, 2, 3),
        ::testing::Values(1, 3),
        ::testing::Values(2, 5)),
    system_param_name);

// -------------------------------------------- variable-size slice sweeps

using VariableParams = std::tuple<std::string, int /*seed*/, int /*lmax*/>;

std::string variable_param_name(
    const ::testing::TestParamInfo<VariableParams>& param_info) {
  const auto& [policy, seed, lmax] = param_info.param;
  return sanitize(policy + "_s" + std::to_string(seed) + "_l" +
                  std::to_string(lmax));
}

class VariableSliceInvariants
    : public ::testing::TestWithParam<VariableParams> {};

TEST_P(VariableSliceInvariants, HoldOnRandomVariableStreams) {
  const auto& [policy, seed, lmax] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 1000003);
  const Stream s =
      analysis::random_variable_stream(rng, 30, 5, 9.0, lmax, 0.75);
  const Bytes buffer = std::max<Bytes>(s.max_slice_size() * 2, 6);
  const Plan plan = Planner::from_buffer_rate(buffer, 2);
  if (plan.buffer < s.max_slice_size()) GTEST_SKIP();
  sim::SmoothingSimulator simulator(
      s, sim::SimConfig::balanced(plan), make_policy(policy));
  const SimReport report = simulator.run();
  EXPECT_TRUE(report.conserves());
  EXPECT_EQ(report.residual.bytes, 0);
  EXPECT_LE(report.max_server_occupancy, plan.buffer);
  EXPECT_EQ(report.dropped_client_overflow.bytes, 0);
  EXPECT_EQ(report.dropped_client_late.bytes, 0);

  // Theorem 3.9 envelope against the exact DP (throughput comparison uses
  // the unweighted optimum: rebuild the stream with weight = size).
  std::vector<SliceRun> unweighted(s.runs().begin(), s.runs().end());
  for (auto& run : unweighted) {
    run.weight = static_cast<Weight>(run.slice_size);
  }
  const Stream su = Stream::from_runs(std::move(unweighted));
  const auto optimal = offline::pareto_dp_optimal(su, plan.buffer, plan.rate);
  ASSERT_TRUE(optimal.exact);
  const double guarantee =
      Planner::throughput_guarantee(plan.buffer, s.max_slice_size());
  EXPECT_GE(static_cast<double>(report.played.bytes) + 1e-6,
            guarantee * optimal.benefit);
}

INSTANTIATE_TEST_SUITE_P(
    VariableGrid, VariableSliceInvariants,
    ::testing::Combine(::testing::Values("tail-drop", "greedy", "random"),
                       ::testing::Values(10, 11, 12, 13),
                       ::testing::Values(2, 4, 7)),
    variable_param_name);

// ----------------------------------------------- offline solver properties

class OfflineSolverProperties : public ::testing::TestWithParam<int> {};

TEST_P(OfflineSolverProperties, GreedyDpAndFeasibilityAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const Stream s = analysis::random_unit_stream(rng, 15, 6, 10.0);
  const Bytes buffer = rng.uniform_int(1, 8);
  const Bytes rate = rng.uniform_int(1, 3);
  const auto greedy = offline::unit_optimal(s, buffer, rate);
  const auto dp = offline::pareto_dp_optimal(s, buffer, rate);
  EXPECT_NEAR(greedy.benefit, dp.benefit, 1e-9);
  // Monotonicity: more buffer or more rate never hurts.
  EXPECT_LE(greedy.benefit,
            offline::unit_optimal(s, buffer + 2, rate).benefit + 1e-9);
  EXPECT_LE(greedy.benefit,
            offline::unit_optimal(s, buffer, rate + 1).benefit + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflineSolverProperties,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace rtsmooth
