// Unit tests for the drop policies: victim selection semantics of TailDrop,
// Greedy, HeadDrop, Random and the proactive threshold policy.

#include <gtest/gtest.h>

#include "core/server_buffer.h"
#include "policies/greedy_drop.h"
#include "policies/head_drop.h"
#include "policies/policy_factory.h"
#include "policies/proactive_threshold.h"
#include "policies/random_drop.h"
#include "policies/tail_drop.h"
#include "stream_helpers.h"

namespace rtsmooth {
namespace {

using testing::stream_of;
using testing::units;

class PolicyTest : public ::testing::Test {
 protected:
  // Three unit-slice runs with distinct byte values, arriving in time order:
  // old cheap (w=1), middle precious (w=9), new medium (w=5).
  Stream stream_ = stream_of({units(0, 4, 1.0), units(1, 4, 9.0),
                              units(2, 4, 5.0)});

  ServerBuffer filled() {
    ServerBuffer buf;
    for (std::size_t i = 0; i < stream_.run_count(); ++i) {
      buf.push(stream_.runs()[i], i, stream_.runs()[i].count);
    }
    return buf;  // 12 bytes
  }

  std::int64_t remaining(const ServerBuffer& buf, std::size_t run_index) {
    std::int64_t n = 0;
    for (std::size_t i = 0; i < buf.chunk_count(); ++i) {
      if (buf.chunk(i).run_index == run_index) n += buf.chunk(i).slices;
    }
    return n;
  }
};

TEST_F(PolicyTest, TailDropShedsNewestFirst) {
  ServerBuffer buf = filled();
  TailDropPolicy policy;
  const DropResult freed = policy.shed(buf, 6);
  EXPECT_EQ(freed.slices, 6);
  EXPECT_EQ(buf.occupancy(), 6);
  EXPECT_EQ(remaining(buf, 2), 0);  // newest gone entirely
  EXPECT_EQ(remaining(buf, 1), 2);  // then the middle
  EXPECT_EQ(remaining(buf, 0), 4);  // oldest untouched
}

TEST_F(PolicyTest, GreedyShedsCheapestFirst) {
  ServerBuffer buf = filled();
  GreedyDropPolicy policy;
  policy.shed(buf, 6);
  EXPECT_EQ(buf.occupancy(), 6);
  EXPECT_EQ(remaining(buf, 0), 0);  // w=1 gone entirely
  EXPECT_EQ(remaining(buf, 2), 2);  // then w=5
  EXPECT_EQ(remaining(buf, 1), 4);  // w=9 untouched
}

TEST_F(PolicyTest, GreedyRespectsTransmittingHead) {
  ServerBuffer buf = filled();
  std::vector<SentPiece> pieces;
  buf.send(1, pieces);  // completes one cheap unit slice; no partial head
  GreedyDropPolicy policy;
  policy.shed(buf, 5);
  EXPECT_EQ(buf.occupancy(), 5);
  EXPECT_EQ(remaining(buf, 0), 0);
}

TEST_F(PolicyTest, HeadDropShedsOldestFirst) {
  ServerBuffer buf = filled();
  HeadDropPolicy policy;
  policy.shed(buf, 6);
  EXPECT_EQ(buf.occupancy(), 6);
  EXPECT_EQ(remaining(buf, 0), 0);
  EXPECT_EQ(remaining(buf, 1), 2);
  EXPECT_EQ(remaining(buf, 2), 4);
}

TEST_F(PolicyTest, RandomDropReachesTargetDeterministically) {
  ServerBuffer buf1 = filled();
  ServerBuffer buf2 = filled();
  RandomDropPolicy a(123);
  RandomDropPolicy b(123);
  const DropResult f1 = a.shed(buf1, 5);
  const DropResult f2 = b.shed(buf2, 5);
  EXPECT_LE(buf1.occupancy(), 5);
  EXPECT_EQ(f1.bytes, f2.bytes);
  EXPECT_EQ(remaining(buf1, 0), remaining(buf2, 0));
  EXPECT_EQ(remaining(buf1, 1), remaining(buf2, 1));
}

TEST_F(PolicyTest, ShedIsNoopWhenAlreadyUnderTarget) {
  for (const auto& name : known_policies()) {
    ServerBuffer buf = filled();
    auto policy = make_policy(name);
    const DropResult freed = policy->shed(buf, 100);
    EXPECT_EQ(freed.slices, 0) << name;
    EXPECT_EQ(buf.occupancy(), 12) << name;
  }
}

TEST_F(PolicyTest, VariableSizeSlicesShedWholeSlicesOnly) {
  Stream s = stream_of({
      SliceRun{.arrival = 0, .slice_size = 5, .count = 2, .weight = 5.0},
      SliceRun{.arrival = 1, .slice_size = 3, .count = 2, .weight = 30.0},
  });
  ServerBuffer buf;
  buf.push(s.runs()[0], 0, 2);
  buf.push(s.runs()[1], 1, 2);  // 16 bytes total
  GreedyDropPolicy policy;
  policy.shed(buf, 8);  // must drop 5-byte value-1 slices (cheapest)
  EXPECT_EQ(buf.occupancy(), 6);  // dropped both 5B slices: 16 -> 6
}

TEST_F(PolicyTest, ProactiveEarlyDropsOnlyCheapDataAboveWatermark) {
  ServerBuffer buf = filled();  // 12 bytes
  ProactiveThresholdPolicy policy(
      ProactiveConfig{.watermark = 0.5, .value_floor = 2.0});
  // B = 12 -> watermark 6; only the w=1 run qualifies for early dropping.
  const DropResult freed = policy.early_drop(buf, 12, 0);
  EXPECT_EQ(freed.slices, 4);
  EXPECT_EQ(buf.occupancy(), 8);  // stuck above watermark: rest is too dear
  EXPECT_EQ(remaining(buf, 1), 4);
  EXPECT_EQ(remaining(buf, 2), 4);
}

TEST_F(PolicyTest, ProactiveBelowWatermarkDoesNothing) {
  ServerBuffer buf = filled();
  ProactiveThresholdPolicy policy(
      ProactiveConfig{.watermark = 1.0, .value_floor = 100.0});
  EXPECT_EQ(policy.early_drop(buf, 12, 0).slices, 0);
}

TEST_F(PolicyTest, FactoryKnowsAllNamesAndRejectsUnknown) {
  for (const auto& name : known_policies()) {
    EXPECT_EQ(make_policy(name)->name(), name);
  }
  EXPECT_THROW(make_policy("no-such-policy"), std::invalid_argument);
}

TEST_F(PolicyTest, CloneProducesEqualBehaviour) {
  for (const auto& name : known_policies()) {
    auto original = make_policy(name, 99);
    auto copy = original->clone();
    ServerBuffer b1 = filled();
    ServerBuffer b2 = filled();
    original->shed(b1, 4);
    copy->shed(b2, 4);
    EXPECT_EQ(b1.occupancy(), b2.occupancy()) << name;
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(remaining(b1, r), remaining(b2, r)) << name;
    }
  }
}

}  // namespace
}  // namespace rtsmooth
