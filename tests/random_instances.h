// Seeded random stream/config generator shared by the differential
// equivalence suite (test_equivalence.cpp) and the property-fuzz suite
// (test_property.cpp).
//
// Everything is a pure function of the seed, so a failing test can print a
// self-contained reproducer: the seed plus the expanded SliceRuns and
// SimConfig (describe_instance). The shapes are chosen to exercise the
// structures the optimized core replaced — small buffers that shed every
// step, slice sizes from unit to multi-KB (head_sent arithmetic), arrival
// gaps (ring drain/refill), ties in arrival time (multi-run batches), and
// configs that cross into the faulty regime (stalls, retransmissions).

#pragma once

#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/slice.h"
#include "core/types.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace rtsmooth::testgen {

/// Random stream: 1..60 frames, 0-2 step gaps between arrivals, sometimes
/// several runs sharing one arrival step, mixed slice granularities.
inline Stream random_stream(Rng& rng) {
  const std::int64_t frames = rng.uniform_int(1, 60);
  std::vector<SliceRun> runs;
  Time arrival = rng.uniform_int(0, 3);
  for (std::int64_t f = 0; f < frames; ++f) {
    const std::int64_t runs_this_step = rng.bernoulli(0.2) ? 2 : 1;
    for (std::int64_t r = 0; r < runs_this_step; ++r) {
      SliceRun run;
      run.arrival = arrival;
      // Mostly unit slices (the paper's Sect. 3.2 model and the hot-path
      // fast case), sometimes coarse ones to exercise head_sent splits.
      run.slice_size = rng.bernoulli(0.6) ? 1 : rng.uniform_int(2, 700);
      run.count = rng.uniform_int(1, run.slice_size == 1 ? 4000 : 12);
      run.weight = rng.bernoulli(0.3)
                       ? 0.0
                       : static_cast<Weight>(rng.uniform_int(1, 8));
      run.frame_type = static_cast<FrameType>(rng.uniform_int(0, 3));
      run.frame_index = f;
      runs.push_back(run);
    }
    arrival += rng.uniform_int(1, 3);
  }
  return Stream::from_runs(std::move(runs));
}

/// Random configuration valid for `stream` (SimConfig::validate passes):
/// buffers from "sheds every step" up to "never sheds", delays 0..4,
/// occasionally timer-mode playout or the Stall underflow policy.
inline sim::SimConfig random_config(Rng& rng, const Stream& stream) {
  sim::SimConfig config;
  const Bytes lmax = stream.max_slice_size();
  const Bytes frame = std::max<Bytes>(stream.max_frame_bytes(), 1);
  config.server_buffer = lmax + rng.uniform_int(0, 2 * frame);
  config.client_buffer = 1 + rng.uniform_int(0, 3 * frame);
  config.rate = 1 + rng.uniform_int(0, frame + frame / 2);
  config.smoothing_delay = rng.uniform_int(0, 4);
  config.link_delay = rng.uniform_int(0, 4);
  config.playout = rng.bernoulli(0.25) ? PlayoutMode::TimerFromFirstDelivery
                                       : PlayoutMode::ArrivalPlusOffset;
  if (config.playout == PlayoutMode::TimerFromFirstDelivery &&
      config.smoothing_delay < 0) {
    config.smoothing_delay = 0;
  }
  config.underflow = rng.bernoulli(0.3) ? UnderflowPolicy::Stall
                                        : UnderflowPolicy::Skip;
  config.max_stall = rng.uniform_int(0, 8);
  if (rng.bernoulli(0.4)) {
    config.recovery.enabled = true;
    config.recovery.max_retries =
        static_cast<std::int32_t>(rng.uniform_int(0, 4));
    config.recovery.backoff_base = rng.uniform_int(1, 2);
  }
  return config;
}

// ---------------------------------------------------------------------------
// Corner-case instances. The uniform generator above rarely hits the exact
// boundaries the event-driven core's skip logic pivots on, so the fuzz
// suites mix in targeted shapes: each Corner is a (stream, config) family
// that pins one boundary. Like the uniform generator, everything is a pure
// function of the seed.
// ---------------------------------------------------------------------------

enum class Corner {
  /// Sparse bursts where some bursts contain zero frames: the burst loop
  /// still advances the clock, so two quiescent spans abut and the event
  /// engine must absorb them as one without consuming extra RNG draws.
  ZeroLengthBursts,
  /// Playout offset P + D == 1, so the last deadline lands exactly on
  /// stream.horizon() — the Deadline and Horizon events collide at the
  /// queue boundary and the tie-break order decides the final span.
  DeadlineEqualsHorizon,
  /// One run, one slice: the smallest schedule with a non-empty drain, so
  /// every engine phase (arrival, drain, deadline, exit) is one event.
  SingleSliceStream,
  /// R set to the stream's peak one-step arrival volume: the server can
  /// always clear a step's arrivals in that same step, so the buffer
  /// oscillates between full and empty and quiescent spans start exactly
  /// one step after each burst.
  RateEqualsPeak,
};

inline constexpr Corner kAllCorners[] = {
    Corner::ZeroLengthBursts, Corner::DeadlineEqualsHorizon,
    Corner::SingleSliceStream, Corner::RateEqualsPeak};

inline const char* corner_name(Corner corner) {
  switch (corner) {
    case Corner::ZeroLengthBursts: return "zero-length-bursts";
    case Corner::DeadlineEqualsHorizon: return "deadline-equals-horizon";
    case Corner::SingleSliceStream: return "single-slice-stream";
    case Corner::RateEqualsPeak: return "rate-equals-peak";
  }
  return "unknown";
}

/// Largest one-step arrival volume — the stream's peak rate.
inline Bytes peak_step_bytes(const Stream& stream) {
  Bytes peak = 1;
  Bytes step_total = 0;
  Time at = kNever;
  for (const SliceRun& run : stream.runs()) {
    if (run.arrival != at) {
      at = run.arrival;
      step_total = 0;
    }
    step_total += run.total_bytes();
    peak = std::max(peak, step_total);
  }
  return peak;
}

inline Stream corner_stream(Rng& rng, Corner corner) {
  switch (corner) {
    case Corner::ZeroLengthBursts: {
      std::vector<SliceRun> runs;
      Time arrival = rng.uniform_int(0, 2);
      const std::int64_t bursts = rng.uniform_int(2, 6);
      std::int64_t frame = 0;
      for (std::int64_t b = 0; b < bursts; ++b) {
        const std::int64_t length = rng.uniform_int(0, 3);  // 0: empty burst
        for (std::int64_t f = 0; f < length; ++f) {
          SliceRun run;
          run.arrival = arrival;
          run.slice_size = rng.bernoulli(0.5) ? 1 : rng.uniform_int(2, 64);
          run.count = rng.uniform_int(1, run.slice_size == 1 ? 64 : 4);
          run.weight = static_cast<Weight>(rng.uniform_int(0, 4));
          run.frame_type = static_cast<FrameType>(rng.uniform_int(0, 3));
          run.frame_index = frame++;
          runs.push_back(run);
          // Zero-gap pile-ups inside a burst, one-step spacing otherwise.
          arrival += rng.bernoulli(0.4) ? 0 : 1;
        }
        arrival += rng.uniform_int(20, 60);  // long quiescent span
      }
      if (runs.empty()) {
        // Every burst came up empty; keep the stream legal with one slice.
        SliceRun run;
        run.arrival = arrival;
        run.weight = 1.0;
        runs.push_back(run);
      }
      return Stream::from_runs(std::move(runs));
    }
    case Corner::DeadlineEqualsHorizon:
    case Corner::RateEqualsPeak:
      return random_stream(rng);
    case Corner::SingleSliceStream: {
      SliceRun run;
      run.arrival = rng.uniform_int(0, 5);
      run.slice_size = rng.bernoulli(0.5) ? 1 : rng.uniform_int(2, 700);
      run.count = 1;
      run.weight = static_cast<Weight>(rng.uniform_int(0, 8));
      run.frame_type = static_cast<FrameType>(rng.uniform_int(0, 3));
      return Stream::from_runs({run});
    }
  }
  return random_stream(rng);
}

inline sim::SimConfig corner_config(Rng& rng, const Stream& stream,
                                    Corner corner) {
  sim::SimConfig config = random_config(rng, stream);
  switch (corner) {
    case Corner::ZeroLengthBursts:
    case Corner::SingleSliceStream:
      break;
    case Corner::DeadlineEqualsHorizon:
      // Offset P + D = 1 puts the last playout exactly at stream.horizon().
      config.smoothing_delay = rng.bernoulli(0.5) ? 1 : 0;
      config.link_delay = 1 - config.smoothing_delay;
      break;
    case Corner::RateEqualsPeak:
      config.rate = peak_step_bytes(stream);
      break;
  }
  return config;
}

/// Self-contained reproducer: everything needed to rebuild the instance
/// without rerunning the generator.
inline std::string describe_instance(std::uint64_t seed, const Stream& stream,
                                     const sim::SimConfig& config) {
  std::ostringstream out;
  out << "seed=" << seed << "\n";
  out << "SimConfig{server_buffer=" << config.server_buffer
      << ", client_buffer=" << config.client_buffer
      << ", rate=" << config.rate
      << ", smoothing_delay=" << config.smoothing_delay
      << ", link_delay=" << config.link_delay << ", playout="
      << (config.playout == PlayoutMode::ArrivalPlusOffset ? "offset"
                                                           : "timer")
      << ", underflow="
      << (config.underflow == UnderflowPolicy::Skip ? "skip" : "stall")
      << ", max_stall=" << config.max_stall
      << ", recovery={enabled=" << config.recovery.enabled
      << ", max_retries=" << config.recovery.max_retries
      << ", backoff_base=" << config.recovery.backoff_base << "}}\n";
  out << "runs[" << stream.run_count() << "]:\n";
  for (const SliceRun& run : stream.runs()) {
    out << "  {arrival=" << run.arrival << ", slice_size=" << run.slice_size
        << ", count=" << run.count << ", weight=" << run.weight
        << ", frame_type=" << static_cast<int>(run.frame_type)
        << ", frame_index=" << run.frame_index << "}\n";
  }
  return std::move(out).str();
}

}  // namespace rtsmooth::testgen
