// Unit tests for the trace substrate: GOP patterns, the synthetic MPEG
// model's calibration against the paper's reported statistics, trace IO
// round-trips, slicers and value models.

#include <gtest/gtest.h>

#include <sstream>

#include "trace/frame.h"
#include "trace/gop.h"
#include "trace/mpeg_model.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"
#include "trace/trace_io.h"
#include "trace/value_model.h"
#include "util/stats.h"

namespace rtsmooth::trace {
namespace {

TEST(Gop, ParsesAndCycles) {
  const GopPattern gop("IBBP");
  EXPECT_EQ(gop.length(), 4u);
  EXPECT_EQ(gop.type_at(0), FrameType::I);
  EXPECT_EQ(gop.type_at(1), FrameType::B);
  EXPECT_EQ(gop.type_at(3), FrameType::P);
  EXPECT_EQ(gop.type_at(4), FrameType::I);  // cyclic
}

TEST(Gop, Frequencies) {
  const GopPattern gop = GopPattern::paper_default();
  EXPECT_NEAR(gop.frequency(FrameType::I), 0.08, 0.01);
  EXPECT_NEAR(gop.frequency(FrameType::P), 0.31, 0.01);
  EXPECT_NEAR(gop.frequency(FrameType::B), 0.61, 0.01);
}

TEST(Gop, RejectsBadPatterns) {
  EXPECT_THROW(GopPattern(""), std::invalid_argument);
  EXPECT_THROW(GopPattern("BBI"), std::invalid_argument);
  EXPECT_THROW(GopPattern("IXB"), std::invalid_argument);
}

TEST(MpegModel, ReproducesPaperStatistics) {
  MpegTraceModel model(MpegModelConfig{}, 42);
  const FrameSequence frames = model.generate(20000);
  const TraceStats stats = compute_stats(frames);
  // Paper Sect. 5: mean ~38 KB, max ~120 KB, I:P:B ~ 8%:31%:61%.
  EXPECT_NEAR(stats.mean_frame_bytes, 38.0 * 1024, 38.0 * 1024 * 0.15);
  EXPECT_NEAR(static_cast<double>(stats.max_frame_bytes), 120.0 * 1024,
              120.0 * 1024 * 0.05);
  EXPECT_NEAR(stats.frequency_i, 0.077, 0.01);
  EXPECT_NEAR(stats.frequency_p, 0.308, 0.01);
  EXPECT_NEAR(stats.frequency_b, 0.615, 0.01);
  // I frames carry the big bursts (configured I:P:B means 4 : 2.2 : 1; the
  // 120 KB cap compresses the I tail, so assert ordering with headroom
  // rather than the raw ratios).
  EXPECT_GT(stats.mean_i, 1.5 * stats.mean_p);
  EXPECT_GT(stats.mean_p, 1.5 * stats.mean_b);
}

TEST(MpegModel, DeterministicInSeed) {
  MpegTraceModel a(MpegModelConfig{}, 7);
  MpegTraceModel b(MpegModelConfig{}, 7);
  EXPECT_EQ(a.generate(500), b.generate(500));
  MpegTraceModel c(MpegModelConfig{}, 8);
  EXPECT_NE(a.generate(500), c.generate(500));
}

TEST(MpegModel, SizesAreBursty) {
  // Scene-level modulation must show up as strong lag-1 autocorrelation of
  // the per-GOP byte rate (per-frame sizes alternate with frame type, so
  // aggregate per GOP first).
  MpegTraceModel model(MpegModelConfig{}, 13);
  const FrameSequence frames = model.generate(13 * 800);
  std::vector<double> gop_bytes;
  double acc = 0.0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    acc += static_cast<double>(frames[i].size);
    if ((i + 1) % 13 == 0) {
      gop_bytes.push_back(acc);
      acc = 0.0;
    }
  }
  EXPECT_GT(autocorrelation_lag1(gop_bytes), 0.5);
}

TEST(MpegModel, RespectsSizeBounds) {
  MpegModelConfig cfg;
  cfg.min_frame_bytes = 1000;
  cfg.max_frame_bytes = 50000;
  MpegTraceModel model(cfg, 3);
  for (const Frame& f : model.generate(5000)) {
    EXPECT_GE(f.size, 1000);
    EXPECT_LE(f.size, 50000);
  }
}

TEST(StockClips, AllNamesGenerate) {
  for (const auto& name : stock_clip_names()) {
    const FrameSequence frames = stock_clip(name, 100);
    EXPECT_EQ(frames.size(), 100u) << name;
  }
  EXPECT_THROW(stock_clip("bogus", 10), std::invalid_argument);
}

TEST(StockClips, SmoothCbrIsConstant) {
  const FrameSequence frames = stock_clip("smooth-cbr", 50);
  for (const Frame& f : frames) EXPECT_EQ(f.size, frames[0].size);
}

TEST(TraceIo, RoundTrip) {
  const FrameSequence original = stock_clip("cnn-news", 200);
  std::stringstream buffer;
  write_trace(buffer, original);
  const FrameSequence parsed = read_trace(buffer);
  EXPECT_EQ(parsed, original);
}

TEST(TraceIo, AcceptsAllLineShapes) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "1234\n"
      "I 5000\n"
      "7 P 600  # trailing comment\n");
  const FrameSequence frames = read_trace(in);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::Other);
  EXPECT_EQ(frames[0].size, 1234);
  EXPECT_EQ(frames[1].type, FrameType::I);
  EXPECT_EQ(frames[2].type, FrameType::P);
  EXPECT_EQ(frames[2].size, 600);
}

TEST(TraceIo, RejectsMalformedLines) {
  std::istringstream bad1("I -5\n");
  EXPECT_THROW(read_trace(bad1), std::runtime_error);
  std::istringstream bad2("X 100\n");
  EXPECT_THROW(read_trace(bad2), std::runtime_error);
  std::istringstream bad3("1 2 3 4\n");
  EXPECT_THROW(read_trace(bad3), std::runtime_error);
  EXPECT_THROW(read_trace_file("/nonexistent/trace.txt"),
               std::runtime_error);
}

TEST(Slicer, ByteSlicesPreserveTotals) {
  const FrameSequence frames = {{FrameType::I, 100}, {FrameType::B, 40}};
  const Stream s =
      slice_frames(frames, ValueModel::mpeg_default(), Slicing::ByteSlices);
  EXPECT_TRUE(s.unit_slices());
  EXPECT_EQ(s.total_bytes(), 140);
  EXPECT_EQ(s.total_slices(), 140);
  EXPECT_DOUBLE_EQ(s.total_weight(), 12.0 * 100 + 1.0 * 40);
}

TEST(Slicer, WholeFramePreservesTotals) {
  const FrameSequence frames = {{FrameType::I, 100}, {FrameType::B, 40}};
  const Stream s =
      slice_frames(frames, ValueModel::mpeg_default(), Slicing::WholeFrame);
  EXPECT_EQ(s.total_bytes(), 140);
  EXPECT_EQ(s.total_slices(), 2);
  EXPECT_DOUBLE_EQ(s.total_weight(), 12.0 * 100 + 1.0 * 40);
  EXPECT_EQ(s.max_slice_size(), 100);
}

TEST(Slicer, WeightInvariantAcrossSlicings) {
  // The same clip must carry identical total weight at any granularity —
  // the premise of comparing Figs. 5/6 curves.
  const FrameSequence frames = stock_clip("cnn-news", 300);
  const ValueModel values = ValueModel::mpeg_default();
  const Weight w_bytes =
      slice_frames(frames, values, Slicing::ByteSlices).total_weight();
  const Weight w_frames =
      slice_frames(frames, values, Slicing::WholeFrame).total_weight();
  const Weight w_packets =
      slice_frames(frames, values, Slicing::FixedPacket, 188).total_weight();
  EXPECT_NEAR(w_bytes, w_frames, 1e-6);
  EXPECT_NEAR(w_bytes, w_packets, 1e-6);
}

TEST(Slicer, FixedPacketSplitsTail) {
  const FrameSequence frames = {{FrameType::P, 450}};
  const Stream s = slice_frames(frames, ValueModel::throughput(),
                                Slicing::FixedPacket, 188);
  // 450 = 2*188 + 74.
  ASSERT_EQ(s.run_count(), 2u);
  EXPECT_EQ(s.runs()[0].slice_size, 188);
  EXPECT_EQ(s.runs()[0].count, 2);
  EXPECT_EQ(s.runs()[1].slice_size, 74);
  EXPECT_EQ(s.runs()[1].count, 1);
}

TEST(ValueModel, PaperWeights) {
  const ValueModel v = ValueModel::mpeg_default();
  EXPECT_DOUBLE_EQ(v.byte_value(FrameType::I), 12.0);
  EXPECT_DOUBLE_EQ(v.byte_value(FrameType::P), 8.0);
  EXPECT_DOUBLE_EQ(v.byte_value(FrameType::B), 1.0);
  EXPECT_DOUBLE_EQ(v.slice_weight(FrameType::P, 10), 80.0);
}

TEST(ValueModel, ThroughputIsUnit) {
  const ValueModel v = ValueModel::throughput();
  for (FrameType t : {FrameType::I, FrameType::P, FrameType::B,
                      FrameType::Other}) {
    EXPECT_DOUBLE_EQ(v.byte_value(t), 1.0);
  }
}

}  // namespace
}  // namespace rtsmooth::trace
