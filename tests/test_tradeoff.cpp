// Tests for the Sect. 3 results: Theorem 3.5 optimality of the generic
// algorithm at B = RD (unit slices), Lemma 3.6's buffer-ratio bound and its
// tight example, Theorem 3.9's variable-size guarantee, and the Sect. 3.3
// misconfiguration observations.

#include <gtest/gtest.h>

#include "analysis/adversarial.h"
#include "analysis/competitive.h"
#include "core/planner.h"
#include "offline/pareto_dp.h"
#include "offline/unit_optimal.h"
#include "policies/policy_factory.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "stream_helpers.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"
#include "util/rng.h"

namespace rtsmooth {
namespace {

using testing::stream_of;
using testing::units;

TEST(Theorem35, GenericMatchesOfflineThroughputOnRandomUnitStreams) {
  // The generic algorithm (any policy) plays exactly the off-line-optimal
  // number of unit slices.
  Rng rng(2025);
  for (int trial = 0; trial < 60; ++trial) {
    const Stream s = analysis::random_unit_stream(rng, 25, 12, 1.0,
                                                  /*arrival_probability=*/0.8);
    const Bytes rate = rng.uniform_int(1, 4);
    const Time delay = rng.uniform_int(1, 5);
    const Plan plan = Planner::from_delay_rate(delay, rate);
    const SimReport online = sim::simulate(s, plan, "tail-drop");
    const auto offline =
        offline::unit_optimal(s, plan.buffer, plan.rate);
    EXPECT_EQ(online.played.bytes, offline.accepted_bytes)
        << "trial " << trial << " B=" << plan.buffer << " R=" << plan.rate;
  }
}

TEST(Theorem35, PrefixDropsNeverExceedAlternativeSchedules) {
  // Weaker observable corollary on a crafted stream: the generic algorithm
  // drops nothing when a feasible schedule exists for everything.
  const Stream s = stream_of({units(0, 6), units(3, 6)});
  const Plan plan = Planner::from_delay_rate(3, 2);  // B = 6
  const SimReport report = sim::simulate(s, plan, "random");
  EXPECT_EQ(report.dropped_server.bytes, 0);
  EXPECT_EQ(report.played.bytes, 12);
}

TEST(Lemma36, ThroughputRatioHoldsAcrossBufferPairs) {
  // theta(B1) >= (B1/B2) * theta(B2) for the generic algorithm, unit slices.
  const Stream s = trace::slice_frames(trace::stock_clip("cnn-news", 150),
                                       trace::ValueModel::throughput(),
                                       trace::Slicing::ByteSlices);
  const Bytes rate = sim::relative_rate(s, 0.8);
  std::vector<std::pair<Bytes, Bytes>> throughputs;  // (B, played)
  for (Bytes mult : {1, 2, 4, 8}) {
    const Plan plan = Planner::from_buffer_rate(mult * s.max_frame_bytes(),
                                                rate);
    const SimReport report = sim::simulate(s, plan, "tail-drop");
    throughputs.emplace_back(plan.buffer, report.played.bytes);
  }
  for (std::size_t i = 0; i < throughputs.size(); ++i) {
    for (std::size_t j = i + 1; j < throughputs.size(); ++j) {
      const auto [b1, t1] = throughputs[i];
      const auto [b2, t2] = throughputs[j];
      EXPECT_GE(static_cast<double>(t1) + 1e-9,
                Planner::buffer_ratio_guarantee(b1, b2) *
                    static_cast<double>(t2))
          << "B1=" << b1 << " B2=" << b2;
    }
  }
}

TEST(Lemma36, TightExampleLosesExactlyTheDifference) {
  // Batches of B2 slices every B2 steps: a buffer of B1 < B2 with R = 1
  // keeps B1+1 per batch (one is sent in the arrival step), B2 keeps all.
  const Bytes b2 = 12;
  const std::int64_t batches = 10;
  const Stream s = analysis::lemma36_stream(b2, batches);
  for (Bytes b1 : {4, 8, 12}) {
    const Plan plan = Planner::from_buffer_rate(b1, 1);
    const SimReport report = sim::simulate(s, plan, "tail-drop");
    const Bytes kept_per_batch = std::min<Bytes>(b1 + 1, b2);
    EXPECT_EQ(report.played.bytes, kept_per_batch * batches) << "B1=" << b1;
  }
}

TEST(Theorem39, VariableSizeThroughputWithinGuarantee) {
  // Generic throughput >= (B - Lmax + 1)/B * optimal, whole-frame slices.
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    const Stream s =
        analysis::random_variable_stream(rng, 12, 2, 1.0, /*max_slice=*/5);
    const Bytes lmax = s.max_slice_size();
    const Bytes buffer = lmax + rng.uniform_int(0, 6);
    const Bytes rate = rng.uniform_int(1, 3);
    const Plan plan = Planner::from_buffer_rate(std::max(buffer, rate), rate);
    if (plan.buffer < lmax) continue;
    const SimReport online = sim::simulate(s, plan, "tail-drop");
    // Throughput comparison: weights equal size here (byte value 1), so DP
    // benefit == optimal throughput in bytes.
    const auto optimal =
        offline::pareto_dp_optimal(s, plan.buffer, plan.rate);
    const double guarantee =
        Planner::throughput_guarantee(plan.buffer, lmax);
    EXPECT_GE(static_cast<double>(online.played.bytes) + 1e-6,
              guarantee * optimal.benefit)
        << "trial " << trial << " B=" << plan.buffer << " R=" << plan.rate
        << " Lmax=" << lmax;
  }
}

// ------------------------------------------------ Sect. 3.3 observations

TEST(Observations, SmallerDelayThanBOverRNeverHelpsAndCanHurt) {
  // With B < RD, each byte idles D - B/R steps at the client; shrinking D
  // to B/R leaves losses unchanged (given ample client space), and with a
  // *tight* client buffer the long delay actively loses data to client
  // overflow — both halves of Sect. 3.3 observation 1.
  const Stream s = stream_of({units(0, 8), units(2, 8), units(4, 8)});
  const Bytes b = 6;
  const Bytes r = 2;
  auto run_with = [&](Time d, Bytes client_buffer) {
    sim::SimConfig config{.server_buffer = b, .client_buffer = client_buffer,
                          .rate = r, .smoothing_delay = d, .link_delay = 1};
    sim::SmoothingSimulator simulator(s, config, make_policy("tail-drop"));
    return simulator.run();
  };
  // Ample client space: delay beyond B/R changes nothing.
  EXPECT_EQ(run_with(7, 1000).played.bytes, run_with(3, 1000).played.bytes);
  // Client space sized for B only: the lazy delay overflows the client,
  // the tight delay does not.
  const SimReport lazy = run_with(7, b);
  const SimReport tight = run_with(3, b);
  EXPECT_GT(lazy.dropped_client_overflow.bytes, 0);
  EXPECT_EQ(tight.dropped_client_overflow.bytes, 0);
  EXPECT_LT(lazy.played.bytes, tight.played.bytes);
}

TEST(Observations, GrowingBufferTowardsRDIncreasesThroughput) {
  // With R and D fixed and server overflows occurring, increasing B up to
  // D*R increases throughput.
  const Stream s = stream_of({units(0, 24), units(6, 24)});
  const Bytes r = 2;
  const Time d = 6;
  Bytes last = -1;
  for (Bytes b : {4, 8, 12}) {  // 12 == D*R
    sim::SimConfig config{.server_buffer = b, .client_buffer = b, .rate = r,
                          .smoothing_delay = d, .link_delay = 1};
    sim::SmoothingSimulator simulator(s, config, make_policy("tail-drop"));
    const SimReport report = simulator.run();
    EXPECT_GT(report.played.bytes, last);
    last = report.played.bytes;
  }
}

TEST(Observations, BufferBeyondRDBuysNothing) {
  const Stream s = stream_of({units(0, 24), units(6, 24)});
  const Bytes r = 2;
  const Time d = 6;
  std::vector<Bytes> played;
  for (Bytes b : {12, 20, 40}) {  // all >= D*R = 12
    sim::SimConfig config{.server_buffer = b, .client_buffer = b, .rate = r,
                          .smoothing_delay = d, .link_delay = 1};
    sim::SmoothingSimulator simulator(s, config, make_policy("tail-drop"));
    played.push_back(simulator.run().played.bytes);
  }
  // Extra server space admits more bytes, but they miss their deadline:
  // goodput never improves beyond B = RD — in fact the stale admitted bytes
  // occupy the link and can crowd out fresh ones, making it strictly worse
  // (which is exactly why Sect. 3.3 calls B > DR resource wastage and says
  // to shrink the buffer to DR).
  EXPECT_LE(played[1], played[0]);
  EXPECT_LE(played[2], played[1]);
}

TEST(Observations, LoweringRateOnSmoothInputLosesThroughput) {
  // A perfectly smooth stream at rate R: cutting the link to B/D < R drops
  // data that the bigger link would have carried.
  const Stream s = trace::slice_frames(trace::stock_clip("smooth-cbr", 60),
                                       trace::ValueModel::throughput(),
                                       trace::Slicing::ByteSlices);
  const auto rate = static_cast<Bytes>(s.average_rate());
  const Plan full = Planner::from_buffer_rate(4 * rate, rate);
  const Plan starved = Planner::from_buffer_rate(4 * rate, rate / 2);
  const SimReport full_report = sim::simulate(s, full, "tail-drop");
  const SimReport starved_report = sim::simulate(s, starved, "tail-drop");
  EXPECT_EQ(full_report.played.bytes, s.total_bytes());
  EXPECT_LT(starved_report.played.bytes, s.total_bytes());
}

}  // namespace
}  // namespace rtsmooth
