// Tests for the Sect. 4 competitive-analysis results: the closed-form
// bounds, the adversarial constructions reproducing Theorems 4.7 and 4.8
// exactly, and measured ratios staying inside the proven envelope.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/adversarial.h"
#include "analysis/bounds.h"
#include "analysis/competitive.h"
#include "core/planner.h"
#include "offline/unit_optimal.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace rtsmooth {
namespace {

using namespace rtsmooth::analysis;

// ------------------------------------------------------------------ bounds

TEST(Bounds, GreedyUpperBoundUnitSlices) {
  // Theorem 4.1 with Lmax = 1: exactly 4.
  EXPECT_DOUBLE_EQ(greedy_competitive_upper_bound(10, 1), 4.0);
  EXPECT_DOUBLE_EQ(greedy_competitive_upper_bound(1000, 1), 4.0);
}

TEST(Bounds, GreedyUpperBoundVariableSlices) {
  // 4B / (B - 2(Lmax-1)): B=10, Lmax=3 -> 40/6.
  EXPECT_NEAR(greedy_competitive_upper_bound(10, 3), 40.0 / 6.0, 1e-12);
}

TEST(Bounds, Thm47BoundApproachesTwo) {
  EXPECT_LT(greedy_lower_bound_thm47(10, 4.0), 2.0);
  EXPECT_NEAR(greedy_lower_bound_thm47(100000, 1e6), 2.0, 1e-4);
}

TEST(Bounds, Thm47ExactRatioDominatesBound) {
  for (Bytes b : {5, 20, 100}) {
    for (double alpha : {2.0, 4.0, 16.0}) {
      EXPECT_GE(greedy_thm47_exact_ratio(b, alpha) + 1e-12,
                greedy_lower_bound_thm47(b, alpha));
    }
  }
}

TEST(Bounds, DeterministicLowerBoundPaperValues) {
  // alpha = 2: z ~ 1.6861, ratio ~ 1.2287 (Theorem 4.8).
  const auto paper = deterministic_lower_bound(2.0);
  EXPECT_NEAR(paper.z, 1.6861, 5e-4);
  EXPECT_NEAR(paper.ratio, 1.2287, 5e-5);
  // Crossing point: both scenario curves agree there.
  EXPECT_NEAR(thm48_scenario1_ratio(paper.z, 2.0),
              thm48_scenario2_ratio(paper.z, 2.0), 1e-9);
}

TEST(Bounds, LotkerSviridenkoImprovement) {
  // Remark after Theorem 4.8: alpha ~ 4.015 gives 1.28197.
  const auto best = best_deterministic_lower_bound();
  EXPECT_NEAR(best.alpha, 4.015, 0.02);
  EXPECT_NEAR(best.ratio, 1.28197, 1e-4);
  EXPECT_GT(best.ratio, deterministic_lower_bound(2.0).ratio);
}

TEST(Bounds, FiniteScenarioRatiosConvergeToAsymptotic) {
  const double alpha = 2.0;
  const double z = 1.6861;
  const Bytes b = 2000000;
  const auto t1 = static_cast<Time>(std::llround(static_cast<double>(b) / z));
  EXPECT_NEAR(thm48_finite_scenario1(b, t1, alpha),
              thm48_scenario1_ratio(z, alpha), 1e-3);
  EXPECT_NEAR(thm48_finite_scenario2(b, t1, alpha),
              thm48_scenario2_ratio(z, alpha), 1e-3);
}

// ---------------------------------------------------------- Theorem 4.7

class Thm47Test : public ::testing::TestWithParam<std::tuple<Bytes, double>> {};

TEST_P(Thm47Test, GreedyEarnsExactlyThePredictedBenefit) {
  const auto [b, alpha] = GetParam();
  const Stream s = thm47_stream(b, alpha);
  const Plan plan = Planner::from_buffer_rate(b, 1);
  const SimReport greedy = sim::simulate(s, plan, "greedy");
  // Proof of Theorem 4.7: Greedy's benefit is (B+1)*1 + (B+1)*alpha.
  const double expected = static_cast<double>(b + 1) * (1.0 + alpha);
  EXPECT_NEAR(greedy.played.weight, expected, 1e-6);
}

TEST_P(Thm47Test, OptimalEarnsThePredictedBenefit) {
  const auto [b, alpha] = GetParam();
  const Stream s = thm47_stream(b, alpha);
  const auto optimal = offline::unit_optimal(s, b, 1);
  // Proof: opt keeps one weight-1 slice and every alpha slice.
  const double expected = 1.0 + alpha * static_cast<double>(2 * b + 1);
  EXPECT_NEAR(optimal.benefit, expected, 1e-6);
}

TEST_P(Thm47Test, MeasuredRatioMatchesClosedFormAndBound) {
  const auto [b, alpha] = GetParam();
  const Stream s = thm47_stream(b, alpha);
  const RatioResult measured = measured_ratio(s, b, 1, "greedy");
  EXPECT_NEAR(measured.ratio, greedy_thm47_exact_ratio(b, alpha), 1e-9);
  EXPECT_GE(measured.ratio + 1e-12, greedy_lower_bound_thm47(b, alpha));
  // And never beyond the Theorem 4.1 guarantee.
  EXPECT_LE(measured.ratio, greedy_competitive_upper_bound(b, 1) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    BufferAlphaGrid, Thm47Test,
    ::testing::Combine(::testing::Values<Bytes>(4, 10, 40, 120),
                       ::testing::Values(2.0, 4.0, 10.0, 100.0)));

// ---------------------------------------------------------- Theorem 4.8

TEST(Thm48, ScenarioStreamsMatchTheProofAgainstGreedy) {
  // For Greedy, t1 = B (it sends the weight-1 backlog for the first B+1
  // steps). Scenario 2 then forces the predicted benefits.
  const Bytes b = 30;
  const double alpha = 2.0;
  const Stream s2 = thm48_scenario2_stream(b, /*t1=*/b, alpha);
  const Plan plan = Planner::from_buffer_rate(b, 1);
  const SimReport greedy = sim::simulate(s2, plan, "greedy");
  // A's benefit: (t1+1) weight-1 slices + alpha*(B+1).
  EXPECT_NEAR(greedy.played.weight,
              static_cast<double>(b + 1) + alpha * static_cast<double>(b + 1),
              1e-6);
  const auto optimal = offline::unit_optimal(s2, b, 1);
  EXPECT_NEAR(optimal.benefit,
              1.0 + alpha * static_cast<double>(b + b + 1), 1e-6);
}

TEST(Thm48, EveryPolicyLosesOnOneOfTheTwoScenarios) {
  // The adversary argument executed empirically: for each policy, the max of
  // the two scenario ratios is at least the paper's 1.2287 bound (large B).
  const Bytes b = 400;
  const double alpha = 2.0;
  for (const char* policy : {"tail-drop", "greedy", "head-drop"}) {
    double worst = 0.0;
    for (Time t1 : {static_cast<Time>(b / 4), static_cast<Time>(b / 2),
                    static_cast<Time>(std::llround(b / 1.6861)),
                    static_cast<Time>(b)}) {
      const Stream s1 = thm48_scenario1_stream(b, t1, alpha);
      const Stream s2 = thm48_scenario2_stream(b, t1, alpha);
      const double r1 = measured_ratio(s1, b, 1, policy).ratio;
      const double r2 = measured_ratio(s2, b, 1, policy).ratio;
      worst = std::max(worst, std::max(r1, r2));
    }
    EXPECT_GE(worst + 1e-9, 1.2287) << policy;
  }
}

// ------------------------------------------------- Theorem 4.1 (empirical)

TEST(Thm41, GreedyWithinFourTimesOptimalOnRandomUnitStreams) {
  Rng rng(404);
  for (int trial = 0; trial < 60; ++trial) {
    const Stream s = random_unit_stream(rng, 30, 10, 50.0);
    const Bytes buffer = rng.uniform_int(2, 12);
    const RatioResult r = measured_ratio(s, buffer, 1, "greedy");
    EXPECT_LE(r.ratio, 4.0 + 1e-9)
        << "trial " << trial << " B=" << buffer;
    EXPECT_GE(r.ratio, 1.0 - 1e-9);
  }
}

TEST(Thm41, GreedyWithinBoundOnVariableSlices) {
  Rng rng(405);
  for (int trial = 0; trial < 40; ++trial) {
    const Bytes lmax = rng.uniform_int(2, 4);
    const Stream s = random_variable_stream(rng, 20, 4, 20.0, lmax);
    const Bytes buffer = 2 * (s.max_slice_size() - 1) +
                         rng.uniform_int(1, 8);
    if (buffer < s.max_slice_size()) continue;
    const RatioResult r = measured_ratio(s, buffer, 1, "greedy");
    const double bound =
        greedy_competitive_upper_bound(buffer, s.max_slice_size());
    EXPECT_LE(r.ratio, bound + 1e-9)
        << "trial " << trial << " B=" << buffer << " Lmax="
        << s.max_slice_size();
  }
}

TEST(WeightedLossRemark, LossRatioGrowsWithoutBound) {
  // Sect. 5's parenthetical: "the competitive ratio of weighted LOSS can be
  // made arbitrarily large" — on the Theorem 4.7 stream, Greedy's lost
  // weight over the optimum's lost weight grows with alpha even though the
  // benefit ratio stays under 4.
  const Bytes b = 20;
  double last = 0.0;
  for (double alpha : {10.0, 100.0, 1000.0}) {
    const Stream s = thm47_stream(b, alpha);
    const RatioResult r = measured_ratio(s, b, 1, "greedy");
    const double online_loss = s.total_weight() - r.online_benefit;
    const double offline_loss = s.total_weight() - r.offline_benefit;
    ASSERT_GT(offline_loss, 0.0);
    const double loss_ratio = online_loss / offline_loss;
    EXPECT_GT(loss_ratio, last);
    last = loss_ratio;
    EXPECT_LE(r.ratio, 4.0 + 1e-9);  // while the benefit ratio stays bounded
  }
  EXPECT_GT(last, 10.0);  // already past any constant for alpha = 1000
}

TEST(MeasuredRatio, ReportsBenefitsAndRatio) {
  const Stream s = thm47_stream(10, 2.0);
  const RatioResult r = measured_ratio(s, 10, 1, "greedy");
  EXPECT_GT(r.online_benefit, 0.0);
  EXPECT_GT(r.offline_benefit, r.online_benefit);
  EXPECT_NEAR(r.ratio, r.offline_benefit / r.online_benefit, 1e-12);
}

}  // namespace
}  // namespace rtsmooth
