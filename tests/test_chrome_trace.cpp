// Tests for the Chrome-trace exporter (obs/chrome_trace.h): well-formed
// trace_event output, the component-to-track mapping, stall slicing,
// violation instants, and the JSONL / incident conversion paths — including
// a golden end-to-end export of a simulator trace.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/planner.h"
#include "faults/fault_links.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/trace_writer.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace rtsmooth {
namespace {

using obs::ChromeTraceOptions;
using obs::Json;

Json step_event(std::int64_t t) {
  Json e = Json::object();
  e["type"] = "step";
  e["t"] = t;
  e["arrived"] = 100;
  e["sent"] = 80;
  e["delivered"] = 80;
  e["played"] = 60;
  e["dropped_server"] = 0;
  e["dropped_client"] = 0;
  e["retransmitted"] = 0;
  e["server_occupancy"] = 20;
  e["client_occupancy"] = 40;
  e["link_idle"] = false;
  e["stalled"] = false;
  return e;
}

/// Every trace_event needs name/ph/ts/pid/tid; counters and instants also
/// carry args. Asserts the invariants Perfetto relies on.
void expect_well_formed(const Json& trace) {
  ASSERT_TRUE(trace.is_array());
  ASSERT_GT(trace.size(), 0u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Json& e = trace.at(i);
    ASSERT_TRUE(e.is_object()) << "event " << i;
    EXPECT_TRUE(e.find("name") != nullptr) << "event " << i;
    ASSERT_TRUE(e.find("ph") != nullptr) << "event " << i;
    EXPECT_TRUE(e.find("ts") != nullptr) << "event " << i;
    EXPECT_TRUE(e.find("pid") != nullptr) << "event " << i;
    EXPECT_TRUE(e.find("tid") != nullptr) << "event " << i;
    const std::string ph = e.at("ph").as_string();
    EXPECT_TRUE(ph == "M" || ph == "C" || ph == "i" || ph == "X")
        << "event " << i << " has unexpected phase " << ph;
    if (ph == "X") {
      EXPECT_TRUE(e.find("dur") != nullptr) << "event " << i;
    }
    if (ph == "i") {
      EXPECT_TRUE(e.find("s") != nullptr) << "event " << i;
    }
  }
}

std::size_t count_events(const Json& trace, std::string_view name,
                         std::string_view ph) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Json& e = trace.at(i);
    if (e.at("name").as_string() == name && e.at("ph").as_string() == ph) ++n;
  }
  return n;
}

// ------------------------------------------------------------ structure

TEST(ChromeTrace, EmitsTheFourProcessNameTracks) {
  const Json trace = obs::chrome_trace_from_events({});
  expect_well_formed(trace);
  ASSERT_EQ(trace.size(), 4u);  // metadata only for an empty event list
  std::vector<std::string> names;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.at(i).at("name").as_string(), "process_name");
    EXPECT_EQ(trace.at(i).at("ph").as_string(), "M");
    names.push_back(trace.at(i).at("args").at("name").as_string());
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"server", "link", "client", "recovery"}));
}

TEST(ChromeTrace, StepBecomesPerTrackCounters) {
  const Json trace = obs::chrome_trace_from_events({step_event(3)});
  expect_well_formed(trace);
  // server occupancy + sent, link delivered + idle, client occupancy +
  // played, recovery retransmitted: 7 counters for a full step record.
  EXPECT_EQ(count_events(trace, "occupancy", "C"), 2u);
  EXPECT_EQ(count_events(trace, "sent", "C"), 1u);
  EXPECT_EQ(count_events(trace, "delivered", "C"), 1u);
  EXPECT_EQ(count_events(trace, "idle", "C"), 1u);
  EXPECT_EQ(count_events(trace, "played", "C"), 1u);
  EXPECT_EQ(count_events(trace, "retransmitted", "C"), 1u);
  // Simulated step 3 lands at ts = 3 * step_us.
  for (std::size_t i = 4; i < trace.size(); ++i) {
    EXPECT_EQ(trace.at(i).at("ts").as_int(), 3000);
  }
}

TEST(ChromeTrace, StepUsOptionScalesTheRuler) {
  const Json trace =
      obs::chrome_trace_from_events({step_event(5)}, ChromeTraceOptions{10});
  EXPECT_EQ(trace.at(4).at("ts").as_int(), 50);
}

TEST(ChromeTrace, ServerDropBecomesAnInstant) {
  Json step = step_event(2);
  step["dropped_server"] = 512;
  const Json trace = obs::chrome_trace_from_events({step});
  EXPECT_EQ(count_events(trace, "drop", "i"), 1u);
}

TEST(ChromeTrace, ConsecutiveStallsMergeIntoOneSlice) {
  std::vector<Json> events;
  for (std::int64_t t = 0; t < 6; ++t) {
    Json step = step_event(t);
    step["stalled"] = (t >= 1 && t <= 3) || t == 5;
    events.push_back(step);
  }
  const Json trace = obs::chrome_trace_from_events(events);
  expect_well_formed(trace);
  ASSERT_EQ(count_events(trace, "stall", "X"), 2u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Json& e = trace.at(i);
    if (e.at("name").as_string() != "stall") continue;
    if (e.at("ts").as_int() == 1000) {
      EXPECT_EQ(e.at("dur").as_int(), 3000);
      EXPECT_EQ(e.at("args").at("steps").as_int(), 3);
    } else {
      EXPECT_EQ(e.at("ts").as_int(), 5000);
      EXPECT_EQ(e.at("dur").as_int(), 1000);
    }
  }
}

TEST(ChromeTrace, ViolationLandsOnTheIndictedTrack) {
  Json violation = Json::object();
  violation["type"] = "violation";
  violation["t"] = 7;
  violation["kind"] = "client_underflow";
  violation["magnitude"] = 3;
  const Json trace = obs::chrome_trace_from_events({violation});
  ASSERT_EQ(count_events(trace, "client_underflow", "i"), 1u);
  const Json& e = trace.at(4);
  EXPECT_EQ(e.at("pid").as_int(), 3);  // client track
  EXPECT_EQ(e.at("ts").as_int(), 7000);
  EXPECT_EQ(e.at("s").as_string(), "t");
  EXPECT_EQ(e.at("args").at("magnitude").as_int(), 3);
}

TEST(ChromeTrace, ConfigBecomesRunConfigMetadata) {
  Json config = Json::object();
  config["type"] = "config";
  config["rate"] = 1000;
  const Json trace = obs::chrome_trace_from_events({config});
  ASSERT_EQ(count_events(trace, "run_config", "M"), 1u);
  EXPECT_EQ(trace.at(4).at("args").at("rate").as_int(), 1000);
}

TEST(ChromeTrace, UnknownEventTypesAreSkipped) {
  Json unknown = Json::object();
  unknown["type"] = "mystery";
  const Json trace = obs::chrome_trace_from_events({unknown});
  EXPECT_EQ(trace.size(), 4u);
}

// ----------------------------------------------------------- JSONL path

TEST(ChromeTraceJsonl, ParsesLinesAndSkipsBlanks) {
  std::istringstream in(
      "{\"type\":\"step\",\"t\":0,\"sent\":5}\n"
      "\n"
      "{\"type\":\"step\",\"t\":1,\"sent\":6}\n");
  const Json trace = obs::chrome_trace_from_jsonl(in);
  expect_well_formed(trace);
  EXPECT_EQ(count_events(trace, "sent", "C"), 2u);
}

TEST(ChromeTraceJsonl, MalformedLineNamesTheLineNumber) {
  std::istringstream in("{\"type\":\"step\",\"t\":0}\nnot json\n");
  try {
    obs::chrome_trace_from_jsonl(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

// --------------------------------------------------------- incident path

TEST(ChromeTraceIncident, RejectsForeignDocuments) {
  Json doc = Json::object();
  doc["schema"] = "rtsmooth-bench-v1";
  EXPECT_THROW(obs::chrome_trace_from_incident(doc), std::runtime_error);
  EXPECT_THROW(obs::chrome_trace_from_incident(Json::object()),
               std::runtime_error);
}

TEST(ChromeTraceIncident, WindowAndTriggerConvert) {
  obs::FlightRecorder recorder(
      obs::FlightRecorderConfig{.window = 4, .max_incidents = 1});
  recorder.annotate("policy", "greedy");
  for (std::int64_t t = 0; t < 3; ++t) {
    obs::StepRecord step;
    step.t = t;
    step.sent = 100;
    recorder.record(step);
  }
  recorder.on_violation(2, "client_underflow", 9);
  ASSERT_EQ(recorder.incidents().size(), 1u);
  const Json trace =
      obs::chrome_trace_from_incident(recorder.incidents().front());
  expect_well_formed(trace);
  EXPECT_EQ(count_events(trace, "run_config", "M"), 1u);
  EXPECT_EQ(count_events(trace, "sent", "C"), 3u);
  ASSERT_EQ(count_events(trace, "client_underflow", "i"), 1u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace.at(i).at("name").as_string() == "client_underflow") {
      EXPECT_EQ(trace.at(i).at("ts").as_int(), 2000);
    }
  }
}

// --------------------------------------------------- golden end-to-end

// A real simulator run traced to JSONL must convert into a well-formed
// trace whose serialization parses back — the export is real JSON, not
// merely JSON-shaped.
TEST(ChromeTraceGolden, SimulatorTraceExportsAndRoundTrips) {
  const Stream s = trace::slice_frames(trace::stock_clip("cnn-news", 100),
                                       trace::ValueModel::mpeg_default(),
                                       trace::Slicing::WholeFrame);
  const Plan plan = Planner::from_buffer_rate(4 * s.max_frame_bytes(),
                                              sim::relative_rate(s, 1.1));
  std::ostringstream jsonl;
  obs::TraceWriter tracer(jsonl);
  sim::SimConfig config = sim::SimConfig::balanced(plan);
  config.telemetry = obs::Telemetry{.tracer = &tracer};
  sim::SmoothingSimulator simulator(
      s, config, make_policy("greedy"),
      std::make_unique<faults::ErasureLink>(config.link_delay, 0.3,
                                            Rng(2026)));
  simulator.run();

  std::istringstream in(jsonl.str());
  const Json trace = obs::chrome_trace_from_jsonl(in);
  expect_well_formed(trace);
  EXPECT_EQ(count_events(trace, "run_config", "M"), 1u);
  EXPECT_EQ(count_events(trace, "run_summary", "M"), 1u);
  EXPECT_GT(count_events(trace, "occupancy", "C"), 0u);
  EXPECT_GT(count_events(trace, "client_underflow", "i"), 0u);

  // Round-trip: the dumped array re-parses to the same event count.
  const Json reparsed = Json::parse(trace.dump());
  ASSERT_TRUE(reparsed.is_array());
  EXPECT_EQ(reparsed.size(), trace.size());
}

}  // namespace
}  // namespace rtsmooth
