// Tests for the lossless-smoothing substrate: cumulative curves, the
// taut-string optimal schedule (feasibility, endpoint, peak-rate duality),
// the on-line sliding-window variant, and the delay optimizer.

#include <gtest/gtest.h>

#include <cmath>

#include "lossless/cumulative.h"
#include "lossless/delay_optimizer.h"
#include "lossless/online_window.h"
#include "lossless/taut_string.h"
#include "trace/stock_clips.h"
#include "util/rng.h"

namespace rtsmooth::lossless {
namespace {

CumulativeCurve curve_of(std::vector<Bytes> increments) {
  return CumulativeCurve::from_increments(increments);
}

/// Checks L(t) <= sent_through(t) <= U(t) (with fp tolerance), monotone
/// rates >= 0, and exact total delivery.
void expect_feasible(const LosslessSchedule& schedule,
                     const CumulativeCurve& lower,
                     const CumulativeCurve& upper) {
  const double tol = 1e-6 * std::max<double>(1.0, static_cast<double>(
                                                      lower.total()));
  for (const RateSegment& seg : schedule.segments) {
    EXPECT_GE(seg.rate, -1e-9);
    EXPECT_LT(seg.start, seg.end);
  }
  for (Time t = 0; t < lower.length(); ++t) {
    const double sent = schedule.sent_through(t);
    EXPECT_GE(sent, static_cast<double>(lower.at(t)) - tol) << "t=" << t;
    EXPECT_LE(sent,
              static_cast<double>(std::min(upper.at(t), lower.total())) + tol)
        << "t=" << t;
  }
  EXPECT_NEAR(schedule.sent_through(lower.length() - 1),
              static_cast<double>(lower.total()), tol);
}

// ------------------------------------------------------------- cumulative

TEST(CumulativeCurve, BasicAccessors) {
  const CumulativeCurve c = curve_of({3, 0, 5, 2});
  EXPECT_EQ(c.length(), 4);
  EXPECT_EQ(c.at(-5), 0);
  EXPECT_EQ(c.at(0), 3);
  EXPECT_EQ(c.at(2), 8);
  EXPECT_EQ(c.at(100), 10);
  EXPECT_EQ(c.total(), 10);
  EXPECT_EQ(c.peak_increment(), 5);
}

TEST(CumulativeCurve, DelayedShiftsRight) {
  const CumulativeCurve c = curve_of({4, 4});
  const CumulativeCurve d = c.delayed(2);
  EXPECT_EQ(d.length(), 4);
  EXPECT_EQ(d.at(0), 0);
  EXPECT_EQ(d.at(1), 0);
  EXPECT_EQ(d.at(2), 4);
  EXPECT_EQ(d.at(3), 8);
}

TEST(CumulativeCurve, PeakWindowRate) {
  const CumulativeCurve c = curve_of({10, 0, 0, 10, 10, 0});
  EXPECT_DOUBLE_EQ(c.peak_window_rate(1), 10.0);
  EXPECT_DOUBLE_EQ(c.peak_window_rate(2), 10.0);  // slots 3..4
  EXPECT_DOUBLE_EQ(c.peak_window_rate(6), 30.0 / 6.0);
}

// ------------------------------------------------------------ taut string

TEST(TautString, ConstantStreamIsOneSegment) {
  // CBR input with ample buffer: a single segment at the average rate.
  std::vector<Bytes> inc(20, 7);
  const CumulativeCurve arrivals = curve_of(inc);
  const SmoothingWalls walls = live_walls(arrivals, 3, 1000);
  const LosslessSchedule schedule = taut_string(walls.lower, walls.upper);
  expect_feasible(schedule, walls.lower, walls.upper);
  EXPECT_NEAR(schedule.peak_rate, 7.0 * 20 / 23.0, 1e-9);
  EXPECT_EQ(schedule.changes, 0u);
}

TEST(TautString, SingleBurstSpreadsOverDeadline) {
  // One 100-byte frame, delay 4: the smoothest schedule spreads it over the
  // 5 slots before its playout.
  const CumulativeCurve arrivals = curve_of({100});
  const SmoothingWalls walls = live_walls(arrivals, 4, 1000);
  const LosslessSchedule schedule = taut_string(walls.lower, walls.upper);
  expect_feasible(schedule, walls.lower, walls.upper);
  EXPECT_NEAR(schedule.peak_rate, 20.0, 1e-9);
}

TEST(TautString, TinyClientBufferForcesArrivalTracking) {
  // Zero client buffer: nothing may be delivered before its playout slot,
  // so the schedule is the (delayed) arrival process itself.
  const CumulativeCurve arrivals = curve_of({10, 2, 30});
  const SmoothingWalls walls = live_walls(arrivals, 1, 0);
  const LosslessSchedule schedule = taut_string(walls.lower, walls.upper);
  expect_feasible(schedule, walls.lower, walls.upper);
  EXPECT_NEAR(schedule.peak_rate, 30.0, 1e-9);
}

TEST(TautString, PeakMatchesDualityBoundOnRandomInstances) {
  Rng rng(61);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Bytes> inc;
    const int n = static_cast<int>(rng.uniform_int(2, 40));
    for (int i = 0; i < n; ++i) inc.push_back(rng.uniform_int(0, 50));
    if (CumulativeCurve::from_increments(inc).total() == 0) inc[0] = 1;
    const CumulativeCurve arrivals = curve_of(inc);
    const Time delay = rng.uniform_int(0, 6);
    const Bytes buffer = rng.uniform_int(0, 120);
    const SmoothingWalls walls = live_walls(arrivals, delay, buffer);
    const LosslessSchedule schedule = taut_string(walls.lower, walls.upper);
    expect_feasible(schedule, walls.lower, walls.upper);
    const double bound = min_peak_rate_bound(walls.lower, walls.upper);
    EXPECT_NEAR(schedule.peak_rate, bound, 1e-6 + 1e-9 * bound)
        << "trial " << trial;
  }
}

TEST(TautString, MoreBufferNeverRaisesPeak) {
  const trace::FrameSequence frames = trace::stock_clip("cnn-news", 300);
  const CumulativeCurve arrivals = CumulativeCurve::from_frames(frames);
  double last = 1e300;
  for (Bytes buffer : {0L, 120L * 1024, 480L * 1024, 4L << 20}) {
    const SmoothingWalls walls = live_walls(arrivals, 10, buffer);
    const double peak = taut_string(walls.lower, walls.upper).peak_rate;
    EXPECT_LE(peak, last + 1e-6);
    last = peak;
  }
}

// ---------------------------------------------------------- online window

TEST(OnlineWindow, FullWindowMatchesOffline) {
  const trace::FrameSequence frames = trace::stock_clip("cnn-news", 200);
  const CumulativeCurve arrivals = CumulativeCurve::from_frames(frames);
  const SmoothingWalls walls = live_walls(arrivals, 12, 1 << 20);
  const LosslessSchedule offline = taut_string(walls.lower, walls.upper);
  const LosslessSchedule online =
      online_smooth(walls, walls.lower.length(), BlockAnchor::Drain);
  EXPECT_NEAR(online.peak_rate, offline.peak_rate, 1e-6);
}

TEST(OnlineWindow, FeasibleAndNoBetterThanOffline) {
  const trace::FrameSequence frames = trace::stock_clip("action", 300);
  const CumulativeCurve arrivals = CumulativeCurve::from_frames(frames);
  const SmoothingWalls walls = live_walls(arrivals, 10, 2 << 20);
  const LosslessSchedule offline = taut_string(walls.lower, walls.upper);
  for (Time window : {5, 20, 80}) {
    for (BlockAnchor anchor : {BlockAnchor::Drain, BlockAnchor::Prefetch}) {
      const LosslessSchedule online = online_smooth(walls, window, anchor);
      expect_feasible(online, walls.lower, walls.upper);
      EXPECT_GE(online.peak_rate, offline.peak_rate - 1e-6)
          << "window " << window;
    }
  }
}

TEST(OnlineWindow, WiderWindowsConvergeTowardsOffline) {
  const trace::FrameSequence frames = trace::stock_clip("cnn-news", 400);
  const CumulativeCurve arrivals = CumulativeCurve::from_frames(frames);
  const SmoothingWalls walls = live_walls(arrivals, 15, 2 << 20);
  const LosslessSchedule offline = taut_string(walls.lower, walls.upper);
  const double narrow =
      online_smooth(walls, 10, BlockAnchor::Prefetch).peak_rate;
  const double wide =
      online_smooth(walls, 200, BlockAnchor::Prefetch).peak_rate;
  EXPECT_LE(wide, narrow + 1e-6);
  EXPECT_GE(narrow, offline.peak_rate - 1e-6);
}

// --------------------------------------------------------- delay optimizer

TEST(DelayOptimizer, PeakIsMonotoneInDelay) {
  const trace::FrameSequence frames = trace::stock_clip("cnn-news", 250);
  const CumulativeCurve arrivals = CumulativeCurve::from_frames(frames);
  double last = 1e300;
  for (Time d : {0, 2, 8, 32, 128}) {
    const double peak = min_peak_for_delay(arrivals, d, 512 * 1024);
    EXPECT_LE(peak, last + 1e-6) << "d=" << d;
    last = peak;
  }
}

TEST(DelayOptimizer, MinDelayForRateIsExactThreshold) {
  const trace::FrameSequence frames = trace::stock_clip("cnn-news", 250);
  const CumulativeCurve arrivals = CumulativeCurve::from_frames(frames);
  const Bytes buffer = 512 * 1024;
  const double rate = 40.0 * 1024;
  const Time d = min_delay_for_rate(arrivals, rate, buffer, 250);
  ASSERT_GE(d, 0);
  EXPECT_LE(min_peak_for_delay(arrivals, d, buffer), rate + 1e-6);
  if (d > 0) {
    EXPECT_GT(min_peak_for_delay(arrivals, d - 1, buffer), rate);
  }
}

TEST(DelayOptimizer, ImpossibleRateReturnsMinusOne) {
  const CumulativeCurve arrivals = curve_of({1000, 1000, 1000});
  // Zero buffer: the link must carry each frame in its own slot forever.
  EXPECT_EQ(min_delay_for_rate(arrivals, 10.0, 0, 50), -1);
}

TEST(DelayOptimizer, KneeFindsTheFloor) {
  const trace::FrameSequence frames = trace::stock_clip("cnn-news", 250);
  const CumulativeCurve arrivals = CumulativeCurve::from_frames(frames);
  const DelayKnee knee = optimal_initial_delay(arrivals, 512 * 1024);
  EXPECT_GT(knee.peak_at_zero, knee.peak_rate);
  // One step less delay must be strictly worse than the floor.
  if (knee.delay > 0) {
    EXPECT_GT(min_peak_for_delay(arrivals, knee.delay - 1, 512 * 1024),
              knee.peak_rate * (1.0 + 1e-7));
  }
}

}  // namespace
}  // namespace rtsmooth::lossless
