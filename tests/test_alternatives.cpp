// Tests for the bandwidth-strategy comparison module: each strategy's
// scorecard semantics, stream merging, and the rate bisection.

#include <gtest/gtest.h>

#include "alternatives/strategies.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "stream_helpers.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace rtsmooth::alternatives {
namespace {

Stream clip(std::string_view name, std::size_t frames, std::uint64_t = 0) {
  return trace::slice_frames(trace::stock_clip(name, frames),
                             trace::ValueModel::mpeg_default(),
                             trace::Slicing::ByteSlices);
}

TEST(PeakProvision, LosslessAtPeakRate) {
  const Stream s = clip("cnn-news", 300);
  const StrategyOutcome out = evaluate_peak_provision(s);
  EXPECT_DOUBLE_EQ(out.delivered_fraction, 1.0);
  EXPECT_DOUBLE_EQ(out.benefit_fraction, 1.0);
  EXPECT_EQ(out.added_delay, 0);
  EXPECT_DOUBLE_EQ(out.reserved_peak,
                   static_cast<double>(s.max_frame_bytes()));
}

TEST(Truncation, LosesTheBurstsAtAverageRate) {
  const Stream s = clip("cnn-news", 300);
  const Bytes rate = sim::relative_rate(s, 1.0);
  const StrategyOutcome out = evaluate_truncation(s, rate);
  EXPECT_LT(out.delivered_fraction, 0.95);  // bursts exceed the average
  EXPECT_GT(out.delivered_fraction, 0.3);
  EXPECT_EQ(out.added_delay, 1);
}

TEST(Smoothing, BeatsTruncationAtTheSameRate) {
  const Stream s = clip("cnn-news", 300);
  const Bytes rate = sim::relative_rate(s, 1.0);
  const StrategyOutcome trunc = evaluate_truncation(s, rate);
  const StrategyOutcome smooth = evaluate_smoothing(s, rate, 25, "greedy");
  EXPECT_GT(smooth.delivered_fraction, trunc.delivered_fraction);
  EXPECT_GT(smooth.benefit_fraction, trunc.benefit_fraction);
  EXPECT_DOUBLE_EQ(smooth.reserved_peak, trunc.reserved_peak);
}

TEST(RenegotiatedCbr, TracksTheStreamWithFewChanges) {
  const Stream s = clip("cnn-news", 600);
  RenegotiationConfig config;
  config.window = 100;
  config.headroom = 1.3;
  config.buffer = 4 * s.max_frame_bytes();
  config.floor_rate = 1024;
  const StrategyOutcome out = evaluate_renegotiated_cbr(s, config);
  EXPECT_GT(out.renegotiations, 0);
  EXPECT_LE(out.renegotiations, 600 / 100);
  EXPECT_GT(out.delivered_fraction, 0.8);
  // The point of renegotiation: average commitment well below the peak
  // commitment.
  EXPECT_LT(out.reserved_average, out.reserved_peak);
}

TEST(RenegotiatedCbr, MoreHeadroomDeliversMore) {
  const Stream s = clip("action", 600);
  RenegotiationConfig lean;
  lean.buffer = 2 * s.max_frame_bytes();
  lean.headroom = 1.0;
  RenegotiationConfig rich = lean;
  rich.headroom = 1.5;
  EXPECT_LE(evaluate_renegotiated_cbr(s, lean).delivered_fraction,
            evaluate_renegotiated_cbr(s, rich).delivered_fraction + 1e-9);
}

TEST(MergeStreams, SumsArrivalsAndWeights) {
  using testing::units;
  const Stream a = testing::stream_of({units(0, 3, 2.0), units(2, 1, 1.0)});
  const Stream b = testing::stream_of({units(0, 2, 5.0), units(5, 4, 1.0)});
  const Stream merged = merge_streams(std::vector<Stream>{a, b});
  EXPECT_EQ(merged.total_bytes(), a.total_bytes() + b.total_bytes());
  EXPECT_DOUBLE_EQ(merged.total_weight(),
                   a.total_weight() + b.total_weight());
  EXPECT_EQ(merged.arrivals_at(0).size(), 2u);
  EXPECT_EQ(merged.horizon(), 6);
}

TEST(MinRateForLoss, FindsTheThreshold) {
  const Stream s = clip("cnn-news", 300);
  const Time delay = 25;
  const double budget = 0.01;
  const Bytes rate = min_rate_for_loss(s, delay, budget);
  const Plan at = Planner::from_delay_rate(delay, rate);
  EXPECT_LE(sim::simulate(s, at, "greedy").weighted_loss(), budget + 1e-9);
  if (rate > 1) {
    const Plan below = Planner::from_delay_rate(delay, rate - 1);
    if (below.buffer >= s.max_slice_size()) {
      EXPECT_GT(sim::simulate(s, below, "greedy").weighted_loss(), budget);
    }
  }
}

TEST(MinRateForLoss, ZeroBudgetNeedsMoreThanLossyBudget) {
  const Stream s = clip("cnn-news", 300);
  const Bytes lossless = min_rate_for_loss(s, 25, 0.0);
  const Bytes lossy = min_rate_for_loss(s, 25, 0.05);
  EXPECT_GT(lossless, lossy);
}

TEST(Multiplexing, AggregateNeedsLessThanSumOfParts) {
  // The statistical-multiplexing claim: k independent channels smoothed
  // together need less capacity than k times one channel's need.
  std::vector<Stream> channels;
  for (std::uint64_t k = 0; k < 4; ++k) {
    trace::MpegTraceModel model(trace::MpegModelConfig{}, 9000 + k);
    channels.push_back(trace::slice_frames(model.generate(400),
                                           trace::ValueModel::mpeg_default(),
                                           trace::Slicing::ByteSlices));
  }
  const Time delay = 25;
  const double budget = 0.01;
  Bytes sum_of_parts = 0;
  for (const Stream& channel : channels) {
    sum_of_parts += min_rate_for_loss(channel, delay, budget);
  }
  const Stream aggregate = merge_streams(channels);
  const Bytes together = min_rate_for_loss(aggregate, delay, budget);
  EXPECT_LT(together, sum_of_parts);
}

}  // namespace
}  // namespace rtsmooth::alternatives
