// End-to-end golden regression: exact weighted-loss values of every policy
// and the off-line optimum on a fixed scenario (cnn-news, 200 frames, byte
// slices, R = 0.9 x average, B = 2 x max frame). The whole pipeline — RNG,
// MPEG model, slicer, planner, server, policies, link, client, solver — is
// deterministic by design, so these values must never drift silently. If a
// deliberate model change trips this test, regenerate the pinned values and
// every number recorded in EXPERIMENTS.md.

#include <gtest/gtest.h>

#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace rtsmooth {
namespace {

TEST(GoldenRegression, ReferenceScenarioIsPinned) {
  const Stream s = trace::slice_frames(trace::stock_clip("cnn-news", 200),
                                       trace::ValueModel::mpeg_default(),
                                       trace::Slicing::ByteSlices);
  // Pin the workload itself first: if the trace changed, report that
  // instead of a cascade of loss mismatches.
  EXPECT_EQ(s.total_bytes(), 5697690);
  EXPECT_EQ(s.max_frame_bytes(), 122880);
  EXPECT_DOUBLE_EQ(s.total_weight(), 35261971.0);
  const Bytes rate = sim::relative_rate(s, 0.9);
  EXPECT_EQ(rate, 25640);

  const std::vector<std::string> policies = {"tail-drop", "greedy",
                                             "head-drop", "random",
                                             "proactive"};
  const auto points =
      sim::sweep(s, sim::SweepSpec{.axis = sim::SweepAxis::BufferMultiple,
                                   .values = {2.0},
                                   .policies = policies,
                                   .with_optimal = true,
                                   .rate = rate})
          .points;
  ASSERT_EQ(points.size(), 1u);
  const auto& point = points.front();
  const double expected[] = {
      0.1191963716,  // tail-drop
      0.0113294291,  // greedy — equal to the optimum on this scenario
      0.0661370007,  // head-drop
      0.0811245066,  // random (seeded)
      0.0131472515,  // proactive (default config)
  };
  for (std::size_t i = 0; i < policies.size(); ++i) {
    EXPECT_NEAR(point.policies[i].report.weighted_loss(), expected[i], 1e-9)
        << policies[i];
  }
  EXPECT_NEAR(point.optimal.weighted_loss, 0.0113294291, 1e-9);
}

}  // namespace
}  // namespace rtsmooth
