// Tests for the flight recorder (obs/flight_recorder.h): ring semantics,
// trigger paths, incident-document shape, the InvariantMonitor hookup that
// freezes a Lemma 3.3 violation into a forensic window, and the sweep-level
// determinism contract (merged incidents byte-identical for any thread
// count).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/planner.h"
#include "faults/fault_links.h"
#include "obs/flight_recorder.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace rtsmooth {
namespace {

using faults::ErasureLink;
using obs::FlightRecorder;
using obs::FlightRecorderConfig;
using obs::Json;
using obs::StepRecord;

StepRecord step_at(std::int64_t t) {
  StepRecord record;
  record.t = t;
  record.sent = 10 * t;
  return record;
}

Stream clip_stream() {
  return trace::slice_frames(trace::stock_clip("cnn-news", 150),
                             trace::ValueModel::mpeg_default(),
                             trace::Slicing::WholeFrame);
}

Plan clip_plan(const Stream& s) {
  return Planner::from_buffer_rate(4 * s.max_frame_bytes(),
                                   sim::relative_rate(s, 1.1));
}

// ------------------------------------------------------- ring semantics

TEST(FlightRecorderRing, KeepsExactlyTheLastWindowSteps) {
  FlightRecorder recorder(FlightRecorderConfig{.window = 8});
  for (std::int64_t t = 0; t < 2 * 8 + 3; ++t) recorder.record(step_at(t));
  const std::vector<StepRecord> window = recorder.window();
  ASSERT_EQ(window.size(), 8u);
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i], step_at(11 + static_cast<std::int64_t>(i)));
  }
  EXPECT_EQ(recorder.steps_recorded(), 19);
}

TEST(FlightRecorderRing, PartialFillStaysChronological) {
  FlightRecorder recorder(FlightRecorderConfig{.window = 8});
  for (std::int64_t t = 0; t < 3; ++t) recorder.record(step_at(t));
  const std::vector<StepRecord> window = recorder.window();
  ASSERT_EQ(window.size(), 3u);
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].t, static_cast<std::int64_t>(i));
  }
}

TEST(FlightRecorderRing, ZeroWindowThrows) {
  EXPECT_THROW(FlightRecorder(FlightRecorderConfig{.window = 0}),
               std::invalid_argument);
}

// ------------------------------------------------------------- triggers

TEST(FlightRecorderTrigger, CustomStepTriggerCapturesTheWindow) {
  FlightRecorderConfig config{.window = 4};
  config.step_trigger = [](const StepRecord& record) {
    return record.sent >= 50;
  };
  FlightRecorder recorder(config);
  for (std::int64_t t = 0; t <= 5; ++t) recorder.record(step_at(t));
  ASSERT_EQ(recorder.incidents().size(), 1u);
  const Json& incident = recorder.incidents().front();
  EXPECT_EQ(incident.at("schema").as_string(), "rtsmooth-incident-v1");
  EXPECT_EQ(incident.at("trigger").at("type").as_string(), "step_trigger");
  EXPECT_EQ(incident.at("trigger").at("t").as_int(), 5);
  // The triggering record is already in the captured window.
  const Json& window = incident.at("window");
  ASSERT_EQ(window.size(), 4u);
  EXPECT_EQ(window.at(3).at("t").as_int(), 5);
  EXPECT_TRUE(incident.at("truncated").as_bool());
}

TEST(FlightRecorderTrigger, ViolationHookCapturesWithKindAndMagnitude) {
  FlightRecorder recorder(FlightRecorderConfig{.window = 4});
  for (std::int64_t t = 0; t < 3; ++t) recorder.record(step_at(t));
  recorder.on_violation(2, "client_underflow", 7);
  ASSERT_EQ(recorder.incidents().size(), 1u);
  const Json& trigger = recorder.incidents().front().at("trigger");
  EXPECT_EQ(trigger.at("type").as_string(), "violation");
  EXPECT_EQ(trigger.at("kind").as_string(), "client_underflow");
  EXPECT_EQ(trigger.at("magnitude").as_int(), 7);
  EXPECT_FALSE(recorder.incidents().front().at("truncated").as_bool());
}

TEST(FlightRecorderTrigger, ViolationTriggerCanBeDisabled) {
  FlightRecorder recorder(
      FlightRecorderConfig{.window = 4, .trigger_on_violation = false});
  recorder.record(step_at(0));
  recorder.on_violation(0, "client_underflow", 1);
  EXPECT_TRUE(recorder.incidents().empty());
  EXPECT_EQ(recorder.triggers_total(), 0);
}

TEST(FlightRecorderTrigger, MaxIncidentsCapsStorageNotTheCount) {
  FlightRecorder recorder(
      FlightRecorderConfig{.window = 2, .max_incidents = 2});
  for (std::int64_t t = 0; t < 5; ++t) {
    recorder.record(step_at(t));
    recorder.on_violation(t, "client_underflow", 1);
  }
  EXPECT_EQ(recorder.incidents().size(), 2u);
  EXPECT_EQ(recorder.triggers_total(), 5);
}

TEST(FlightRecorderTrigger, CooldownSuppressesTheStorm) {
  FlightRecorder recorder(FlightRecorderConfig{
      .window = 2, .max_incidents = 8, .cooldown = 10});
  for (std::int64_t t = 0; t < 25; ++t) {
    recorder.record(step_at(t));
    recorder.on_violation(t, "client_underflow", 1);
  }
  // Captures at t = 0, 10, 20; everything in between is counted only.
  ASSERT_EQ(recorder.incidents().size(), 3u);
  EXPECT_EQ(recorder.incidents()[0].at("trigger").at("t").as_int(), 0);
  EXPECT_EQ(recorder.incidents()[1].at("trigger").at("t").as_int(), 10);
  EXPECT_EQ(recorder.incidents()[2].at("trigger").at("t").as_int(), 20);
  EXPECT_EQ(recorder.triggers_total(), 25);
}

TEST(FlightRecorderTrigger, AnnotationsLandInTheIncidentContext) {
  FlightRecorder recorder(FlightRecorderConfig{.window = 2});
  recorder.annotate("cell", static_cast<std::int64_t>(3));
  recorder.annotate("severity", 0.25);
  recorder.record(step_at(0));
  recorder.on_violation(0, "client_underflow", 1);
  ASSERT_EQ(recorder.incidents().size(), 1u);
  const Json& context = recorder.incidents().front().at("context");
  EXPECT_EQ(context.at("cell").as_int(), 3);
  EXPECT_EQ(context.at("severity").as_double(), 0.25);
}

// ---------------------------------------------------------------- merge

TEST(FlightRecorderMerge, AppendsIncidentsAndSumsCounters) {
  FlightRecorder a(FlightRecorderConfig{.window = 2, .max_incidents = 3});
  FlightRecorder b(FlightRecorderConfig{.window = 2, .max_incidents = 3});
  a.record(step_at(0));
  a.on_violation(0, "client_underflow", 1);
  b.record(step_at(0));
  b.record(step_at(1));
  b.on_violation(1, "server_sojourn", 2);
  a.merge(b);
  ASSERT_EQ(a.incidents().size(), 2u);
  EXPECT_EQ(a.incidents()[0].at("trigger").at("kind").as_string(),
            "client_underflow");
  EXPECT_EQ(a.incidents()[1].at("trigger").at("kind").as_string(),
            "server_sojourn");
  EXPECT_EQ(a.steps_recorded(), 3);
  EXPECT_EQ(a.triggers_total(), 2);
}

TEST(FlightRecorderMerge, RespectsTheIncidentCap) {
  FlightRecorder a(FlightRecorderConfig{.window = 2, .max_incidents = 1});
  FlightRecorder b(FlightRecorderConfig{.window = 2, .max_incidents = 1});
  a.record(step_at(0));
  a.on_violation(0, "client_underflow", 1);
  b.record(step_at(0));
  b.on_violation(0, "client_overflow", 1);
  a.merge(b);
  EXPECT_EQ(a.incidents().size(), 1u);
  EXPECT_EQ(a.triggers_total(), 2);
}

// ------------------------------------------- end-to-end incident capture

// An erasure link with recovery off starves the client: transmitted bytes
// miss their deadlines, exactly Lemma 3.3's failure mode. The recorder
// must freeze the trailing window ending on the violating step.
TEST(FlightRecorderEndToEnd, ErasureUnderflowFreezesTheTrailingWindow) {
  const Stream s = clip_stream();
  const Plan plan = clip_plan(s);
  FlightRecorder recorder(
      FlightRecorderConfig{.window = 16, .max_incidents = 1});
  sim::SimConfig config = sim::SimConfig::balanced(plan);
  config.underflow = UnderflowPolicy::Skip;
  config.telemetry = obs::Telemetry{.recorder = &recorder};
  sim::SmoothingSimulator simulator(
      s, config, make_policy("greedy"),
      std::make_unique<ErasureLink>(config.link_delay, 0.3, Rng(2026)));
  const SimReport report = simulator.run();

  ASSERT_GT(report.invariants.client_underflow, 0);
  ASSERT_EQ(recorder.incidents().size(), 1u);
  const Json& incident = recorder.incidents().front();
  EXPECT_EQ(incident.at("schema").as_string(), "rtsmooth-incident-v1");
  EXPECT_EQ(incident.at("trigger").at("kind").as_string(),
            "client_underflow");
  const std::int64_t trigger_t = incident.at("trigger").at("t").as_int();
  EXPECT_EQ(trigger_t, report.invariants.first);

  // The window covers exactly the last min(window, t+1) consecutive steps,
  // ending on the violating step itself.
  const Json& window = incident.at("window");
  const std::int64_t len = static_cast<std::int64_t>(window.size());
  ASSERT_GT(len, 0);
  ASSERT_LE(len, 16);
  for (std::int64_t i = 0; i < len; ++i) {
    EXPECT_EQ(window.at(static_cast<std::size_t>(i)).at("t").as_int(),
              trigger_t - (len - 1) + i);
  }
  EXPECT_EQ(incident.at("truncated").as_bool(), trigger_t + 1 > 16);
  EXPECT_GE(incident.at("steps_recorded").as_int(), len);

  // Self-contained context: the run parameters travel with the report.
  const Json& context = incident.at("context");
  EXPECT_EQ(context.at("server_buffer").as_int(),
            static_cast<std::int64_t>(plan.buffer));
  EXPECT_EQ(context.at("policy").as_string(), "greedy");
}

// The recorder must not perturb the simulation: same report with and
// without one attached.
TEST(FlightRecorderEndToEnd, RecorderDoesNotChangeTheRun) {
  const Stream s = clip_stream();
  const Plan plan = clip_plan(s);
  auto run = [&](obs::Telemetry telemetry) {
    sim::SimConfig config = sim::SimConfig::balanced(plan);
    config.telemetry = telemetry;
    sim::SmoothingSimulator simulator(
        s, config, make_policy("greedy"),
        std::make_unique<ErasureLink>(config.link_delay, 0.2, Rng(7)));
    return simulator.run();
  };
  FlightRecorder recorder;
  const SimReport bare = run({});
  const SimReport observed = run(obs::Telemetry{.recorder = &recorder});
  EXPECT_EQ(bare, observed);
  EXPECT_GT(recorder.steps_recorded(), 0);
}

// ------------------------------------------------ sweep fold determinism

// DESIGN.md Sect. 9 extended to incidents: the merged incident list after
// a sweep must be byte-identical for any thread count.
TEST(FlightRecorderSweep, MergedIncidentsAreThreadCountInvariant) {
  const Stream s = clip_stream();
  const Plan plan = clip_plan(s);
  auto run_sweep = [&](unsigned threads) {
    FlightRecorder recorder(
        FlightRecorderConfig{.window = 16, .max_incidents = 32});
    sim::SweepSpec spec{
        .axis = sim::SweepAxis::FaultSeverity,
        .values = {0.0, 0.15, 0.3},
        .policies = {"greedy"},
        .plan = plan,
        .link_factory = [](double severity,
                           Time link_delay) -> std::unique_ptr<Link> {
          return std::make_unique<ErasureLink>(link_delay, severity, Rng(41));
        }};
    spec.threads = threads;
    spec.recorder = &recorder;
    sim::sweep(s, spec);
    std::string dump;
    for (const Json& incident : recorder.incidents()) {
      dump += incident.dump();
      dump += '\n';
    }
    return std::make_pair(dump, recorder.triggers_total());
  };
  const auto [serial_dump, serial_triggers] = run_sweep(1);
  const auto [parallel_dump, parallel_triggers] = run_sweep(4);
  EXPECT_GT(serial_triggers, 0);
  EXPECT_FALSE(serial_dump.empty());
  EXPECT_EQ(serial_dump, parallel_dump);
  EXPECT_EQ(serial_triggers, parallel_triggers);
  // Cell coordinates survive the fold: every incident names its grid cell.
  EXPECT_NE(serial_dump.find("\"cell\""), std::string::npos);
  EXPECT_NE(serial_dump.find("\"severity\""), std::string::npos);
}

// ------------------------------------------------------------ file sink

TEST(FlightRecorderIo, WriteIncidentFailureNamesThePath) {
  const Json incident = Json::object();
  try {
    FlightRecorder::write_incident(incident,
                                   "/nonexistent-dir/incident.json");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent-dir/incident.json"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace rtsmooth
