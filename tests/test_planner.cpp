// Unit tests for the B = D*R planner and the closed-form guarantees it
// exposes (Theorem 3.9, Lemma 3.6).

#include <gtest/gtest.h>

#include "core/planner.h"

namespace rtsmooth {
namespace {

TEST(Planner, FromDelayRate) {
  const Plan p = Planner::from_delay_rate(5, 3);
  EXPECT_EQ(p.buffer, 15);
  EXPECT_EQ(p.delay, 5);
  EXPECT_EQ(p.rate, 3);
}

TEST(Planner, FromBufferRateExactDivision) {
  const Plan p = Planner::from_buffer_rate(12, 4);
  EXPECT_EQ(p.delay, 3);
  EXPECT_EQ(p.buffer, 12);
}

TEST(Planner, FromBufferRateShrinksBufferToMultiple) {
  // B=14, R=4 -> D=3 and B shrinks to 12 (B > DR would waste space,
  // Sect. 3.3 observation 2).
  const Plan p = Planner::from_buffer_rate(14, 4);
  EXPECT_EQ(p.delay, 3);
  EXPECT_EQ(p.buffer, 12);
  EXPECT_EQ(p.rate, 4);
  EXPECT_EQ(p.buffer, p.delay * p.rate);
}

TEST(Planner, FromBufferDelay) {
  const Plan p = Planner::from_buffer_delay(14, 3);
  EXPECT_EQ(p.rate, 4);
  EXPECT_EQ(p.buffer, 12);
  EXPECT_EQ(p.buffer, p.delay * p.rate);
}

TEST(Planner, AllConstructorsSatisfyIdentity) {
  for (Bytes b : {7, 16, 100, 1000}) {
    for (Bytes r : {1, 3, 7}) {
      if (b < r) continue;
      const Plan p = Planner::from_buffer_rate(b, r);
      EXPECT_EQ(p.buffer, p.delay * p.rate);
      EXPECT_LE(p.buffer, b);
      EXPECT_GT(p.buffer + r, b);  // shrinks by less than one D-step
    }
  }
}

TEST(Planner, ThroughputGuarantee) {
  EXPECT_DOUBLE_EQ(Planner::throughput_guarantee(100, 1), 1.0);
  EXPECT_DOUBLE_EQ(Planner::throughput_guarantee(100, 21), 0.8);
}

TEST(Planner, BufferRatioGuarantee) {
  EXPECT_DOUBLE_EQ(Planner::buffer_ratio_guarantee(25, 100), 0.25);
  EXPECT_DOUBLE_EQ(Planner::buffer_ratio_guarantee(8, 8), 1.0);
}

using PlannerDeathTest = ::testing::Test;

TEST(PlannerDeathTest, RejectsBufferSmallerThanRate) {
  EXPECT_DEATH(Planner::from_buffer_rate(3, 4), "precondition");
}

TEST(PlannerDeathTest, RejectsZeroDelay) {
  EXPECT_DEATH(Planner::from_delay_rate(0, 4), "precondition");
}

}  // namespace
}  // namespace rtsmooth
