// Golden tests for the rtsmooth-bench-v1 document written by the benches'
// --json flag (bench/bench_common.h): top-level key set and order, series
// mirroring, the runner section, and the registry/timers split that keeps
// the deterministic part separable from wall-clock noise.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.h"

namespace rtsmooth::bench {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct TempJson {
  std::string path = ::testing::TempDir() + "rtsmooth_bench.json";
  ~TempJson() { std::remove(path.c_str()); }
};

BenchOptions options_with_json(const std::string& path) {
  BenchOptions opts;
  opts.frames = 42;
  opts.quick = true;
  opts.threads = 3;
  opts.json_path = path;
  return opts;
}

sim::RunStats stats_fixture() {
  sim::RunStats stats;
  stats.tasks = 4;
  stats.threads = 2;
  stats.total_task_us = 1000;
  stats.max_task_us = 400;
  stats.queue_us = 50;
  stats.wall_us = 600;
  return stats;
}

TEST(JsonReport, DisabledWithoutJsonFlag) {
  const JsonReport report("some_bench", BenchOptions{});
  EXPECT_FALSE(report.enabled());
}

TEST(JsonReport, GoldenDocumentShape) {
  const TempJson tmp;
  JsonReport report("fig_example", options_with_json(tmp.path));
  ASSERT_TRUE(report.enabled());
  Series series{.header = {"x", "y"}};
  series.add({"1", "10%"});
  series.add({"2", "20%"});
  report.add_series("loss_curve", series);
  obs::Registry reg;
  reg.counter("server.sent_bytes").add(123);
  reg.gauge("server.max_occupancy").update(9);
  reg.histogram("h", obs::HistogramSpec{.bounds = {1, 2}}).record(2);
  reg.timer("sweep.cell").record(17);
  report.write(stats_fixture(), reg);

  const std::string text = slurp(tmp.path);
  // Exact golden except the timers histogram (wall-clock samples are real
  // here only because we recorded a fixed value, so it stays exact too).
  EXPECT_EQ(
      text,
      "{\"schema\":\"rtsmooth-bench-v1\",\"bench\":\"fig_example\","
      "\"options\":{\"frames\":42,\"quick\":true,\"threads\":3},"
      "\"series\":[{\"name\":\"loss_curve\",\"header\":[\"x\",\"y\"],"
      "\"rows\":[[\"1\",\"10%\"],[\"2\",\"20%\"]]}],"
      "\"runner\":{\"tasks\":4,\"threads\":2,\"total_task_us\":1000,"
      "\"max_task_us\":400,\"queue_us\":50,\"wall_us\":600},"
      "\"registry\":{"
      "\"counters\":{\"server.sent_bytes\":123},"
      "\"gauges\":{\"server.max_occupancy\":9},"
      "\"histograms\":{\"h\":{\"count\":1,\"sum\":2,\"min\":2,\"max\":2,"
      "\"bounds\":[1,2],\"counts\":[0,1,0]}}},"
      "\"timers\":{\"sweep.cell\":" +
          reg.timers().at("sweep.cell").to_json().dump() + "}}\n");
}

TEST(JsonReport, EmptyRegistryStillEmitsAllSections) {
  const TempJson tmp;
  JsonReport report("tab_example", options_with_json(tmp.path));
  report.write(stats_fixture(), obs::Registry{});
  const std::string text = slurp(tmp.path);
  for (const char* key : {"\"schema\":\"rtsmooth-bench-v1\"", "\"series\":[]",
                          "\"registry\":{\"counters\":{},\"gauges\":{},"
                          "\"histograms\":{}}",
                          "\"timers\":{}"}) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(JsonReport, AddSectionAttachesQuarantinedTopLevelKey) {
  const TempJson tmp;
  JsonReport report("gateway", options_with_json(tmp.path));
  obs::Json section = obs::Json::object();
  section["streams"] = std::int64_t{8192};
  section["wall_us"] = std::int64_t{1234};
  report.add_section("gateway", std::move(section));
  report.write(stats_fixture(), obs::Registry{});
  const std::string text = slurp(tmp.path);
  EXPECT_NE(text.find("\"gateway\":{\"streams\":8192,\"wall_us\":1234}"),
            std::string::npos)
      << text;
}

TEST(JsonReport, AddSeriesIsNoOpWhenDisabled) {
  JsonReport report("noop", BenchOptions{});
  Series series{.header = {"a"}};
  series.add({"1"});
  report.add_series("s", series);  // must not throw or write anything
  report.add_section("g", obs::Json::object());
  report.write(sim::RunStats{}, obs::Registry{});
}

}  // namespace
}  // namespace rtsmooth::bench
