// Unit tests for the client: reconstruction, playout timing (PT = AT+P+D),
// overflow refusal, deadline misses, and end-of-run loss attribution.

#include <gtest/gtest.h>

#include "core/client.h"
#include "stream_helpers.h"

namespace rtsmooth {
namespace {

using testing::stream_of;
using testing::units;

std::vector<SentPiece> piece_of(const Stream& s, std::size_t run_index,
                                Bytes bytes, std::int64_t completed) {
  return {SentPiece{.run = &s.runs()[run_index],
                    .run_index = run_index,
                    .bytes = bytes,
                    .completed_slices = completed}};
}

TEST(Client, PlaysCompleteFrameAtOffset) {
  const Stream s = stream_of({units(0, 4, 2.0)});
  SimReport report;
  Client client(s, /*capacity=*/100, /*playout_offset=*/3);
  client.deliver(1, piece_of(s, 0, 4, 4), report, nullptr);
  client.play(1, report, nullptr);
  client.play(2, report, nullptr);
  EXPECT_EQ(report.played.bytes, 0);  // not its playout step yet
  client.play(3, report, nullptr);    // frame 0 plays at 0 + offset
  EXPECT_EQ(report.played.bytes, 4);
  EXPECT_EQ(report.played.slices, 4);
  EXPECT_DOUBLE_EQ(report.played.weight, 8.0);
  EXPECT_EQ(client.occupancy(), 0);
  client.finalize(report);
  EXPECT_EQ(report.dropped_client_late.bytes, 0);
  EXPECT_EQ(report.dropped_client_overflow.bytes, 0);
}

TEST(Client, BytesArrivingAtPlayoutStepStillPlay) {
  // Lemma 3.3's equality case RT = AT + P + B/R must count as on time.
  const Stream s = stream_of({units(0, 2)});
  SimReport report;
  Client client(s, 100, 2);
  client.deliver(2, piece_of(s, 0, 2, 2), report, nullptr);
  client.play(2, report, nullptr);
  EXPECT_EQ(report.played.slices, 2);
}

TEST(Client, LateBytesAreDeadlineMisses) {
  const Stream s = stream_of({units(0, 3)});
  SimReport report;
  Client client(s, 100, 1);
  client.play(1, report, nullptr);  // playout step passes, nothing stored
  client.deliver(2, piece_of(s, 0, 3, 3), report, nullptr);
  client.finalize(report);
  EXPECT_EQ(report.played.bytes, 0);
  EXPECT_EQ(report.dropped_client_late.bytes, 3);
  EXPECT_EQ(report.dropped_client_late.slices, 3);
}

TEST(Client, OverflowEvictsExcessAfterPlayout) {
  const Stream s = stream_of({units(0, 8)});
  SimReport report;
  Client client(s, /*capacity=*/5, /*playout_offset=*/4);
  client.deliver(1, piece_of(s, 0, 8, 8), report, nullptr);
  client.play(1, report, nullptr);  // settles capacity for the step
  EXPECT_EQ(client.occupancy(), 5);
  for (Time t = 2; t <= 4; ++t) client.play(t, report, nullptr);
  EXPECT_EQ(report.played.slices, 5);
  client.finalize(report);
  EXPECT_EQ(report.dropped_client_overflow.bytes, 3);
  EXPECT_EQ(report.dropped_client_overflow.slices, 3);
}

TEST(Client, SameStepPlayoutMakesRoomBeforeCapacityCheck) {
  // Lemma 3.4's accounting: |Bc(t)| is measured after frame t leaves, so a
  // delivery that transiently exceeds Bc while the playing frame departs is
  // not an overflow.
  const Stream s = stream_of({units(0, 4), units(1, 4)});
  SimReport report;
  Client client(s, /*capacity=*/4, /*playout_offset=*/2);
  client.deliver(1, piece_of(s, 0, 4, 4), report, nullptr);
  client.play(1, report, nullptr);
  client.deliver(2, piece_of(s, 1, 4, 4), report, nullptr);  // 8 transient
  client.play(2, report, nullptr);  // frame 0 plays, frame 1 fits
  client.play(3, report, nullptr);
  client.finalize(report);
  EXPECT_EQ(report.played.slices, 8);
  EXPECT_EQ(report.dropped_client_overflow.bytes, 0);
}

TEST(Client, IncompleteSliceDoesNotPlay) {
  // 2 slices of 5 bytes; only 7 bytes arrive by playout: one slice plays,
  // the 2 leftover bytes are charged to the client (late bucket), and the
  // 3 straggler bytes arriving later are late too.
  const Stream s = stream_of(
      {SliceRun{.arrival = 0, .slice_size = 5, .count = 2, .weight = 5.0}});
  SimReport report;
  Client client(s, 100, 2);
  client.deliver(1, piece_of(s, 0, 7, 1), report, nullptr);
  client.play(2, report, nullptr);
  EXPECT_EQ(report.played.slices, 1);
  EXPECT_EQ(report.played.bytes, 5);
  client.deliver(3, piece_of(s, 0, 3, 1), report, nullptr);
  client.finalize(report);
  EXPECT_EQ(report.dropped_client_late.bytes, 5);
  EXPECT_EQ(report.dropped_client_late.slices, 1);
}

TEST(Client, UnboundedCapacityNeverOverflows) {
  const Stream s = stream_of({units(0, 1000000)});
  SimReport report;
  Client client(s, Client::kUnbounded, 5);
  client.deliver(1, piece_of(s, 0, 1000000, 1000000), report, nullptr);
  EXPECT_EQ(client.occupancy(), 1000000);
  for (Time t = 1; t <= 5; ++t) client.play(t, report, nullptr);
  EXPECT_EQ(report.played.slices, 1000000);
}

TEST(Client, MaxOccupancyTracked) {
  const Stream s = stream_of({units(0, 4), units(1, 4)});
  SimReport report;
  Client client(s, 100, 3);
  client.deliver(1, piece_of(s, 0, 4, 4), report, nullptr);
  client.play(1, report, nullptr);
  client.deliver(2, piece_of(s, 1, 4, 4), report, nullptr);
  client.play(2, report, nullptr);
  EXPECT_EQ(report.max_client_occupancy, 8);
}

TEST(Client, ResidualWhenNeverPlayed) {
  const Stream s = stream_of({units(0, 6)});
  SimReport report;
  Client client(s, 100, 10);
  client.deliver(1, piece_of(s, 0, 6, 6), report, nullptr);
  client.finalize(report);  // playout never reached
  EXPECT_EQ(report.residual.bytes, 6);
  EXPECT_EQ(report.residual.slices, 6);
}

TEST(Client, RecorderGetsPlayTimeAndReceiveTimes) {
  const Stream s = stream_of({units(0, 2)});
  SimReport report;
  ScheduleRecorder rec(s.run_count(), ScheduleRecorder::Level::RunsAndSteps);
  Client client(s, 100, 2);
  rec.begin_step(1);
  client.deliver(1, piece_of(s, 0, 2, 2), report, &rec);
  client.play(1, report, &rec);
  rec.begin_step(2);
  client.play(2, report, &rec);
  EXPECT_EQ(rec.run(0).first_receive, 1);
  EXPECT_EQ(rec.run(0).play_time, 2);
  EXPECT_EQ(rec.run(0).played, 2);
}

using ClientDeathTest = ::testing::Test;

TEST(ClientDeathTest, DoubleFinalizeAborts) {
  const Stream s = stream_of({units(0, 1)});
  SimReport report;
  Client client(s, 10, 1);
  client.finalize(report);
  EXPECT_DEATH(client.finalize(report), "precondition");
}

}  // namespace
}  // namespace rtsmooth
