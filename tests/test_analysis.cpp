// Unit tests for the analysis module pieces not already exercised by
// test_competitive: the adversarial stream builders' exact structure and
// the random stream generators' contracts.

#include <gtest/gtest.h>

#include "analysis/adversarial.h"
#include "analysis/competitive.h"
#include "util/rng.h"

namespace rtsmooth::analysis {
namespace {

TEST(AdversarialStreams, Thm47StructureIsExact) {
  const Bytes b = 10;
  const double alpha = 4.0;
  const Stream s = thm47_stream(b, alpha);
  // B+1 weight-1 at t=0; one alpha at t=1..B; B+1 alpha at t=B+1.
  EXPECT_EQ(s.total_slices(), (b + 1) + b + (b + 1));
  EXPECT_TRUE(s.unit_slices());
  EXPECT_EQ(s.arrivals_at(0).size(), 1u);
  EXPECT_EQ(s.arrivals_at(0)[0].count, b + 1);
  EXPECT_DOUBLE_EQ(s.arrivals_at(0)[0].weight, 1.0);
  for (Time t = 1; t <= b; ++t) {
    ASSERT_EQ(s.arrivals_at(t).size(), 1u) << t;
    EXPECT_EQ(s.arrivals_at(t)[0].count, 1);
    EXPECT_DOUBLE_EQ(s.arrivals_at(t)[0].weight, alpha);
  }
  EXPECT_EQ(s.arrivals_at(b + 1)[0].count, b + 1);
  EXPECT_DOUBLE_EQ(s.total_weight(),
                   (static_cast<double>(b) + 1.0) +
                       alpha * static_cast<double>(2 * b + 1));
}

TEST(AdversarialStreams, Thm48Scenario2ExtendsScenario1) {
  const Bytes b = 8;
  const Time t1 = 5;
  const Stream s1 = thm48_scenario1_stream(b, t1, 2.0);
  const Stream s2 = thm48_scenario2_stream(b, t1, 2.0);
  EXPECT_EQ(s1.horizon(), t1 + 1);
  EXPECT_EQ(s2.horizon(), t1 + 2);
  EXPECT_EQ(s2.total_slices() - s1.total_slices(), b + 1);
}

TEST(AdversarialStreams, Lemma36StreamPeriodicBatches) {
  const Stream s = lemma36_stream(6, 4);
  EXPECT_EQ(s.total_slices(), 24);
  EXPECT_TRUE(s.unit_slices());
  for (std::int64_t k = 0; k < 4; ++k) {
    ASSERT_EQ(s.arrivals_at(k * 6).size(), 1u);
    EXPECT_EQ(s.arrivals_at(k * 6)[0].count, 6);
  }
  EXPECT_EQ(s.arrivals_at(1).size(), 0u);
}

TEST(RandomStreams, UnitStreamRespectsContracts) {
  Rng rng(5150);
  for (int trial = 0; trial < 20; ++trial) {
    const Stream s = random_unit_stream(rng, 30, 7, 9.0, 0.5);
    EXPECT_TRUE(s.unit_slices());
    EXPECT_GE(s.total_slices(), 1);
    EXPECT_LT(s.horizon(), 31);
    for (const SliceRun& run : s.runs()) {
      EXPECT_GE(run.weight, 1.0);
      EXPECT_LE(run.weight, 9.0);
    }
  }
}

TEST(RandomStreams, VariableStreamRespectsSliceBound) {
  Rng rng(5151);
  const Stream s = random_variable_stream(rng, 40, 5, 4.0, 6);
  EXPECT_LE(s.max_slice_size(), 6);
  for (const SliceRun& run : s.runs()) {
    // Weight scales with size: byte value in [1, max_weight].
    EXPECT_GE(run.byte_value(), 1.0 - 1e-9);
    EXPECT_LE(run.byte_value(), 4.0 + 1e-9);
  }
}

TEST(RandomStreams, NeverEmptyEvenWithZeroProbability) {
  Rng rng(5152);
  const Stream s = random_unit_stream(rng, 10, 3, 2.0, 0.0);
  EXPECT_GE(s.total_slices(), 1);
}

TEST(RandomStreams, DeterministicGivenRngState) {
  Rng a(77);
  Rng b(77);
  const Stream sa = random_unit_stream(a, 20, 5, 8.0);
  const Stream sb = random_unit_stream(b, 20, 5, 8.0);
  ASSERT_EQ(sa.run_count(), sb.run_count());
  for (std::size_t i = 0; i < sa.run_count(); ++i) {
    EXPECT_EQ(sa.runs()[i], sb.runs()[i]);
  }
}

}  // namespace
}  // namespace rtsmooth::analysis
