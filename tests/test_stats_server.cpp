// Live introspection plane tests (DESIGN.md Sect. 15): the StatsServer's
// HTTP surface (routes, status codes, error accounting), the stale-socket
// takeover and live-conflict rules, robustness against misbehaving
// scrapers, the Prometheus renderer, and the daemon integration — the
// shutdown endpoint document must equal the snapshot file byte for byte,
// and concurrent scrapes during churn plus mid-drain reconfiguration must
// never perturb the serving loop (this suite runs under TSan in CI).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "daemon/rtsmoothd.h"
#include "obs/json.h"
#include "obs/prometheus.h"
#include "obs/stats_server.h"
#include "obs/telemetry.h"

namespace rtsmooth {
namespace {

using obs::StatsServer;
using obs::StatsServerConfig;

/// A socket path under the test temp dir, short enough for sockaddr_un.
std::string socket_path(const char* name) {
  const std::string path = ::testing::TempDir() + name;
  std::filesystem::remove(path);
  return path;
}

struct Exchange {
  bool connected = false;
  int status = 0;
  std::string body;
};

/// One raw request/response over the unix socket; the request text is sent
/// verbatim so tests can exercise malformed and non-GET traffic.
Exchange roundtrip(const std::string& path, const std::string& request) {
  Exchange out;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return out;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return out;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return out;
  }
  out.connected = true;
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t sp = response.find(' ');
  if (response.rfind("HTTP/", 0) == 0 && sp != std::string::npos) {
    out.status = std::atoi(response.c_str() + sp + 1);
  }
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    out.body = response.substr(header_end + 4);
  }
  return out;
}

Exchange get(const std::string& path, const std::string& target) {
  return roundtrip(path, "GET " + target + " HTTP/1.0\r\n\r\n");
}

// --------------------------------------------------------- HTTP surface

TEST(StatsServer, UnavailableBeforePublishThenServesBothDocuments) {
  const std::string path = socket_path("stats_basic.sock");
  StatsServer server(StatsServerConfig{.socket_path = path});
  server.start();

  // /healthz works from the first byte; the documents 503 until published.
  EXPECT_EQ(get(path, "/healthz").status, 200);
  EXPECT_EQ(get(path, "/json").status, 503);
  EXPECT_EQ(get(path, "/metrics").status, 503);

  server.publish("{\"a\":1}\n", "# TYPE rtsmooth_x counter\nrtsmooth_x 1\n");
  const Exchange json = get(path, "/json");
  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.body, "{\"a\":1}\n");
  const Exchange metrics = get(path, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.body, "# TYPE rtsmooth_x counter\nrtsmooth_x 1\n");

  // A republish swaps the payload atomically; scrapers see the new epoch.
  server.publish("{\"a\":2}\n", "rtsmooth_x 2\n");
  EXPECT_EQ(get(path, "/json").body, "{\"a\":2}\n");

  const StatsServer::Stats s = server.stats();
  EXPECT_EQ(s.served_health, 1);
  EXPECT_EQ(s.unavailable, 2);
  EXPECT_EQ(s.served_json, 2);
  EXPECT_EQ(s.served_metrics, 1);
  EXPECT_EQ(s.accepted, 6);

  server.stop();
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(StatsServer, SeriesRouteUnavailableDisabledThenServes) {
  const std::string path = socket_path("stats_series.sock");
  StatsServer server(StatsServerConfig{.socket_path = path});
  server.start();

  EXPECT_EQ(get(path, "/series").status, 503);  // nothing published yet

  // A publish without a series document means the timeline is off in the
  // publishing process: distinguishable from "not ready yet".
  server.publish("{}\n", "");
  const Exchange disabled = get(path, "/series");
  EXPECT_EQ(disabled.status, 404);
  EXPECT_NE(disabled.body.find("timeline disabled"), std::string::npos);

  const std::string series = "{\"schema\":\"rtsmooth-series-v1\"}\n";
  server.publish("{}\n", "", series);
  const Exchange ok = get(path, "/series");
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, series);

  const StatsServer::Stats s = server.stats();
  EXPECT_EQ(s.served_series, 1);
  EXPECT_EQ(s.unavailable, 1);
  EXPECT_EQ(s.not_found, 1);
}

TEST(StatsServer, JsonSectionFilterServesSubtreesAndNamesKnownSections) {
  const std::string path = socket_path("stats_section.sock");
  StatsServer server(StatsServerConfig{.socket_path = path});
  server.start();
  server.publish("{\"report\":{\"played\":9},\"slo\":{\"ok\":true}}\n", "");

  const Exchange report = get(path, "/json?section=report");
  EXPECT_EQ(report.status, 200);
  EXPECT_EQ(report.body, "{\"played\":9}\n");
  EXPECT_EQ(get(path, "/json?section=slo").body, "{\"ok\":true}\n");
  // The unfiltered document is unaffected by the query machinery.
  EXPECT_EQ(get(path, "/json").status, 200);

  // Unknown sections name the known ones, mirroring known_policies().
  const Exchange unknown = get(path, "/json?section=nope");
  EXPECT_EQ(unknown.status, 400);
  EXPECT_NE(unknown.body.find("unknown section 'nope'"), std::string::npos);
  EXPECT_NE(unknown.body.find("report slo"), std::string::npos);
  // Any other query shape is a bad request, not a silent full document.
  EXPECT_EQ(get(path, "/json?foo=1").status, 400);

  const StatsServer::Stats s = server.stats();
  EXPECT_EQ(s.served_json, 3);
  EXPECT_EQ(s.bad_requests, 2);
}

TEST(StatsServer, RejectsUnknownPathsNonGetAndOversizedRequests) {
  const std::string path = socket_path("stats_reject.sock");
  StatsServer server(StatsServerConfig{.socket_path = path});
  server.start();
  server.publish("{}\n", "");

  EXPECT_EQ(get(path, "/nope").status, 404);
  EXPECT_EQ(roundtrip(path, "POST /json HTTP/1.0\r\n\r\n").status, 400);
  // No header terminator within max_request_bytes: the server must give
  // up with a 400 instead of buffering forever.
  EXPECT_EQ(roundtrip(path, std::string(8192, 'a')).status, 400);

  const StatsServer::Stats s = server.stats();
  EXPECT_EQ(s.not_found, 1);
  EXPECT_EQ(s.bad_requests, 2);
  EXPECT_EQ(s.served_json, 0);
}

TEST(StatsServer, TakesOverStaleSocketButRefusesLiveOne) {
  const std::string path = socket_path("stats_stale.sock");
  // Simulate a crashed daemon: bind the path, then close the listener
  // without unlinking. connect() on the leftover file is refused.
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr),
              0);
    ::close(fd);
  }
  ASSERT_TRUE(std::filesystem::exists(path));

  StatsServer server(StatsServerConfig{.socket_path = path});
  server.start();  // must unlink the stale file and bind
  server.publish("{}\n", "");
  EXPECT_EQ(get(path, "/json").status, 200);

  // A second server on the same path must refuse to evict a live one.
  StatsServer rival(StatsServerConfig{.socket_path = path});
  EXPECT_THROW(rival.start(), std::runtime_error);
  // The loser must not have torn down the winner's socket.
  EXPECT_EQ(get(path, "/healthz").status, 200);
}

TEST(StatsServer, ValidatesConfigUpFront) {
  EXPECT_THROW(StatsServer(StatsServerConfig{.socket_path = ""}),
               std::invalid_argument);
  EXPECT_THROW(StatsServer(StatsServerConfig{
                   .socket_path = std::string(200, 'p')}),
               std::invalid_argument);
  EXPECT_THROW(StatsServer(StatsServerConfig{.socket_path = "/tmp/ok.sock",
                                             .max_request_bytes = 4}),
               std::invalid_argument);
}

TEST(StatsServer, CountsClientDisconnectMidWriteAndKeepsServing) {
  const std::string path = socket_path("stats_disco.sock");
  StatsServer server(StatsServerConfig{.socket_path = path});
  server.start();
  // A payload far larger than the socket buffer, so the response write is
  // still in flight when the client vanishes.
  server.publish(std::string(8 << 20, 'x'), "");

  {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof addr),
              0);
    const std::string req = "GET /json HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
              static_cast<ssize_t>(req.size()));
    ::close(fd);  // walk away without reading the 8 MiB answer
  }

  // The failed write lands in io_errors (EPIPE/reset or send timeout).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().io_errors == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().io_errors, 1);
  // One bad client must not wedge the endpoint.
  EXPECT_EQ(get(path, "/healthz").status, 200);
}

// ---------------------------------------------------- Prometheus renderer

TEST(Prometheus, RendersRegistrySectionsInExpositionFormat) {
  obs::Registry registry;
  registry.counter("a.count").add(3);
  registry.gauge("a.gauge").update(7);
  obs::Histogram& hist =
      registry.histogram("a.hist", obs::HistogramSpec::exponential(1, 2));
  hist.record(1, 2);  // two bytes at value 1
  hist.record(5);     // overflow bucket
  registry.timer("a.timer").record(10);  // must be excluded

  const std::string expected =
      "# TYPE rtsmooth_a_count counter\n"
      "rtsmooth_a_count 3\n"
      "# TYPE rtsmooth_a_gauge gauge\n"
      "rtsmooth_a_gauge 7\n"
      "# TYPE rtsmooth_a_hist histogram\n"
      "rtsmooth_a_hist_bucket{le=\"1\"} 2\n"
      "rtsmooth_a_hist_bucket{le=\"2\"} 2\n"
      "rtsmooth_a_hist_bucket{le=\"+Inf\"} 3\n"
      "rtsmooth_a_hist_sum 7\n"
      "rtsmooth_a_hist_count 3\n";
  EXPECT_EQ(obs::to_prometheus(registry), expected);
  EXPECT_EQ(obs::to_prometheus(obs::Registry{}), "");
  EXPECT_EQ(obs::prometheus_name("gateway.c0.lateness_steps"),
            "rtsmooth_gateway_c0_lateness_steps");
}

TEST(Prometheus, NameSanitizationRewritesEveryForbiddenByte) {
  // Exposition names admit only [a-zA-Z0-9_] after the prefix; quotes,
  // newlines, and backslashes must never leak into a # TYPE line.
  EXPECT_EQ(obs::prometheus_name("a\"b"), "rtsmooth_a_b");
  EXPECT_EQ(obs::prometheus_name("a\nb"), "rtsmooth_a_b");
  EXPECT_EQ(obs::prometheus_name("a\\b"), "rtsmooth_a_b");
  EXPECT_EQ(obs::prometheus_name("a{b}c d"), "rtsmooth_a_b_c_d");
  // Multi-byte UTF-8 sanitizes per byte — never interpreted, never kept.
  EXPECT_EQ(obs::prometheus_name("\xce\xbb"), "rtsmooth___");
  EXPECT_EQ(obs::prometheus_name(""), "rtsmooth_");
  // A registry name with a hostile metric name stays lintable end to end.
  obs::Registry registry;
  registry.counter("evil\"name\nwith\\bytes").add(1);
  const std::string text = obs::to_prometheus(registry);
  EXPECT_NE(text.find("# TYPE rtsmooth_evil_name_with_bytes counter\n"),
            std::string::npos);
  EXPECT_EQ(text.find('"'), std::string::npos);
}

TEST(Prometheus, LabelValueEscapingHandlesMetacharsAndPassesUtf8) {
  EXPECT_EQ(obs::prometheus_label_value("plain"), "plain");
  EXPECT_EQ(obs::prometheus_label_value("back\\slash"), "back\\\\slash");
  EXPECT_EQ(obs::prometheus_label_value("new\nline"), "new\\nline");
  EXPECT_EQ(obs::prometheus_label_value("quo\"te"), "quo\\\"te");
  // All three metacharacters together, in order.
  EXPECT_EQ(obs::prometheus_label_value("\\\n\""), "\\\\\\n\\\"");
  // Label values, unlike names, carry UTF-8 through byte-for-byte.
  EXPECT_EQ(obs::prometheus_label_value("\xce\xbb=\xcf\x80"),
            "\xce\xbb=\xcf\x80");
  EXPECT_EQ(obs::prometheus_label_value(""), "");
}

// ------------------------------------------------------ daemon integration

daemon::DaemonOptions stats_daemon_options(const std::string& sock) {
  daemon::DaemonOptions opts;
  opts.engine.rate = 256;
  opts.engine.smoothing_delay = 4;
  opts.engine.server_buffer = 256 * 4;
  opts.engine.client_buffer = 256 * 4;
  opts.engine.link_delay = 1;
  opts.slo.enabled = false;
  opts.ladder.enabled = false;
  opts.stats_socket_path = sock;
  return opts;
}

daemon::GeneratorConfig small_generator(std::int64_t frames_per_channel) {
  daemon::GeneratorConfig gen;
  gen.channels = 2;
  gen.mean_frame_bytes = 64;
  gen.max_frame_bytes = 256;
  gen.min_frame_bytes = 8;
  gen.seed = 77;
  gen.frames_per_channel = frames_per_channel;
  return gen;
}

TEST(DaemonStats, ShutdownEndpointEqualsSnapshotFileByteForByte) {
  const std::string dir = ::testing::TempDir() + "rtsmoothd_stats_eq";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string sock = socket_path("stats_eq.sock");

  daemon::DaemonOptions opts = stats_daemon_options(sock);
  opts.snapshot_path = dir + "/snapshot.json";
  daemon::Daemon d(opts, std::make_unique<daemon::GeneratorSource>(
                             small_generator(400)));
  EXPECT_EQ(d.serve(), 0);

  // The endpoint outlives serve() (until the Daemon is destroyed), still
  // holding the shutdown publish — the same string write_outputs() froze
  // and wrote to the snapshot file.
  const Exchange json = get(sock, "/json");
  ASSERT_EQ(json.status, 200);
  std::ifstream in(opts.snapshot_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream file_text;
  file_text << in.rdbuf();
  EXPECT_EQ(json.body, file_text.str());

  const obs::Json doc = obs::Json::parse(json.body);
  EXPECT_EQ(doc.at("schema").as_string(), "rtsmooth-soak-v1");
  const obs::Json& st = doc.at("stats");
  EXPECT_EQ(st.at("schema").as_string(), "rtsmooth-stats-v1");
  EXPECT_EQ(st.at("socket_path").as_string(), sock);
  EXPECT_EQ(doc.at("report").at("max_lateness").as_int(), 0);

  // /metrics carries the same registry the JSON snapshot embeds.
  const Exchange metrics = get(sock, "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(
      metrics.body.find("# TYPE rtsmooth_daemon_ingest_stalled_polls counter"),
      std::string::npos);
  EXPECT_NE(metrics.body.find("rtsmooth_daemon_snapshot_sighup 0"),
            std::string::npos);
}

TEST(DaemonStats, SeriesEndpointConservesAgainstTerminalSnapshot) {
  const std::string sock = socket_path("stats_series_cons.sock");
  daemon::DaemonOptions opts = stats_daemon_options(sock);
  opts.timeline.slot_steps = 64;
  opts.timeline.capacity = 32;
  opts.timeline.short_slots = 2;
  opts.timeline.long_slots = 8;
  opts.timeline.budgets = daemon::default_slo_budgets();
  daemon::Daemon d(opts, std::make_unique<daemon::GeneratorSource>(
                             small_generator(400)));
  EXPECT_EQ(d.serve(), 0);

  const Exchange series = get(sock, "/series");
  ASSERT_EQ(series.status, 200);
  const obs::Json doc = obs::Json::parse(series.body);
  EXPECT_EQ(doc.at("schema").as_string(), "rtsmooth-series-v1");
  EXPECT_GE(doc.at("slots").as_int(), 1);

  // The terminal sample is the LAST registry mutation before the snapshot
  // freezes, so every series counter must reconcile EXACTLY against the
  // registry section of the same document: base + sum(deltas) == value.
  const Exchange json = get(sock, "/json");
  ASSERT_EQ(json.status, 200);
  const obs::Json snapshot = obs::Json::parse(json.body);
  const obs::Json& live = snapshot.at("registry").at("counters");
  const obs::Json& counters = doc.at("counters");
  ASSERT_GT(counters.size(), 0u);
  for (std::size_t i = 0; i < counters.keys().size(); ++i) {
    const std::string& name = counters.keys()[i];
    const obs::Json& column = counters.items()[i];
    std::int64_t sum = column.at("base").as_int();
    for (const obs::Json& delta : column.at("deltas").items()) {
      sum += delta.as_int();
    }
    EXPECT_EQ(sum, column.at("total").as_int()) << name;
    EXPECT_EQ(column.at("total").as_int(), live.at(name).as_int()) << name;
  }
  // The same frozen document rides inside the snapshot as its `series`
  // section, reachable through the section filter as well.
  EXPECT_EQ(snapshot.at("series").dump() + "\n", series.body);
  EXPECT_EQ(get(sock, "/json?section=series").body, series.body);

  // Burn machinery surfaces as first-class registry counters and as the
  // snapshot's slo tallies.
  EXPECT_NE(live.find("daemon.slo.burn_breaches"), nullptr);
  EXPECT_NE(snapshot.at("slo").at("breaches").find("burn"), nullptr);
  EXPECT_NE(snapshot.at("slo").find("cooldown_suppressed"), nullptr);
  EXPECT_GE(doc.at("burn").at("budgets").size(), 3u);
}

TEST(DaemonStats, SeriesByteIdenticalAcrossThreadCounts) {
  const auto run = [](const char* threads, const char* name) {
    ::setenv("RTSMOOTH_THREADS", threads, 1);
    const std::string sock = socket_path(name);
    daemon::DaemonOptions opts = stats_daemon_options(sock);
    opts.timeline.slot_steps = 32;
    opts.timeline.budgets = daemon::default_slo_budgets();
    daemon::Daemon d(opts, std::make_unique<daemon::GeneratorSource>(
                               small_generator(300)));
    EXPECT_EQ(d.serve(), 0);
    const Exchange series = get(sock, "/series");
    EXPECT_EQ(series.status, 200);
    return series.body;
  };
  const std::string serial = run("1", "stats_series_t1.sock");
  const std::string wide = run("4", "stats_series_t4.sock");
  ::unsetenv("RTSMOOTH_THREADS");
  ASSERT_FALSE(serial.empty());
  // The timeline samples the merged registry at fixed step cadence; like
  // the /json payload, its dump is pinned byte-identical across pool
  // widths (DESIGN.md Sect. 16).
  EXPECT_EQ(serial, wide);
}

TEST(DaemonStats, ConcurrentScrapesDuringChurnAndReconfigStayClean) {
  const std::string sock = socket_path("stats_churn.sock");
  daemon::DaemonOptions opts = stats_daemon_options(sock);
  opts.stats_publish_every = 64;  // republish continuously under load
  opts.ingest.retry_sleep_us = 0;
  daemon::Daemon d(opts, std::make_unique<daemon::GeneratorSource>(
                             small_generator(0)));  // endless source
  // Mid-drain reconfigurations while scrapers hammer the socket.
  d.schedule_reconfig_cycle(
      500, {daemon::EnginePlan{.server_buffer = 512,
                               .client_buffer = 512,
                               .rate = 128,
                               .smoothing_delay = 4,
                               .link_delay = 1},
            daemon::EnginePlan{.server_buffer = 1024,
                               .client_buffer = 1024,
                               .rate = 256,
                               .smoothing_delay = 4,
                               .link_delay = 1}});

  std::thread serving([&d] { EXPECT_EQ(d.serve(), 0); });

  std::atomic<std::int64_t> ok_scrapes{0};
  std::atomic<bool> scraping{true};
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 4; ++i) {
    scrapers.emplace_back([&, i] {
      const std::string target = (i % 2) == 0 ? "/json" : "/metrics";
      while (scraping.load()) {
        const Exchange r = get(sock, target);
        if (r.status == 200 && !r.body.empty()) ok_scrapes.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  scraping.store(false);
  for (std::thread& t : scrapers) t.join();
  d.request_stop(SIGTERM);
  serving.join();

  EXPECT_GT(ok_scrapes.load(), 0);
  ASSERT_NE(d.stats_server(), nullptr);
  const StatsServer::Stats s = d.stats_server()->stats();
  EXPECT_GE(s.served_json + s.served_metrics, ok_scrapes.load());
  // The final document is still coherent after the scrape storm.
  const Exchange final_doc = get(sock, "/json");
  ASSERT_EQ(final_doc.status, 200);
  const obs::Json doc = obs::Json::parse(final_doc.body);
  EXPECT_EQ(doc.at("stop_signal").as_int(), SIGTERM);
  EXPECT_TRUE(doc.at("report").at("conserves").as_bool());
  EXPECT_TRUE(doc.at("admission").at("ledger_conserves").as_bool());
}

}  // namespace
}  // namespace rtsmooth
