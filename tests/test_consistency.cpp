// Cross-module consistency tests: independent components that model the
// same quantity must agree at the boundaries — these are the checks that
// catch a subtly wrong model that each module's own tests would miss.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "alternatives/strategies.h"
#include "lossless/cumulative.h"
#include "lossless/delay_optimizer.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/step_trace.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"
#include "util/stats.h"

namespace rtsmooth {
namespace {

trace::FrameSequence frames_of(std::size_t n) {
  return trace::stock_clip("cnn-news", n);
}

Stream stream_of_frames(const trace::FrameSequence& frames) {
  return trace::slice_frames(frames, trace::ValueModel::mpeg_default(),
                             trace::Slicing::ByteSlices);
}

TEST(Consistency, TruncationStrategyEqualsDelayOneSmoothing) {
  // alternatives::evaluate_truncation is *defined* as smoothing with D = 1;
  // the two paths through the code must agree exactly.
  const Stream s = stream_of_frames(frames_of(300));
  const Bytes rate = sim::relative_rate(s, 1.0);
  const auto strategy = alternatives::evaluate_truncation(s, rate);
  const SimReport direct =
      sim::simulate(s, Planner::from_delay_rate(1, rate), "tail-drop");
  EXPECT_DOUBLE_EQ(strategy.delivered_fraction, 1.0 - direct.byte_loss());
  EXPECT_DOUBLE_EQ(strategy.benefit_fraction, direct.benefit_fraction());
}

TEST(Consistency, LosslessPeakDegeneratesToArrivalPeak) {
  // With no delay and no client buffer, the lossless schedule must track
  // arrivals exactly: peak rate == largest frame.
  const trace::FrameSequence frames = frames_of(300);
  const auto arrivals = lossless::CumulativeCurve::from_frames(frames);
  EXPECT_DOUBLE_EQ(lossless::min_peak_for_delay(arrivals, 0, 0),
                   static_cast<double>(arrivals.peak_increment()));
}

TEST(Consistency, LosslessPeakLowerBoundedByLongRunAverage) {
  // No amount of delay or buffer can beat the long-run average rate.
  const trace::FrameSequence frames = frames_of(400);
  const auto arrivals = lossless::CumulativeCurve::from_frames(frames);
  const double average = static_cast<double>(arrivals.total()) /
                         static_cast<double>(arrivals.length());
  EXPECT_GE(lossless::min_peak_for_delay(arrivals, 50, 8 << 20),
            average * 0.8);  // delay extends the deadline a little
}

TEST(Consistency, SmoothingAtLosslessPeakHasZeroLoss) {
  // If the link rate covers the taut-string peak for (D, B = D*R), the
  // paper's generic algorithm must also be lossless: its buffer B = D*R
  // can hold anything the lossless schedule would have carried.
  const trace::FrameSequence frames = frames_of(400);
  const Stream s = stream_of_frames(frames);
  const auto arrivals = lossless::CumulativeCurve::from_frames(frames);
  const Time delay = 25;
  // Iterate once: B depends on R, which depends on B via the walls; the
  // generous choice B = D * peak(first pass) converges immediately.
  const double first_pass =
      lossless::min_peak_for_delay(arrivals, delay, 1 << 30);
  const auto rate = static_cast<Bytes>(first_pass) + 1;
  const Plan plan = Planner::from_delay_rate(delay, rate);
  const SimReport report = sim::simulate(s, plan, "tail-drop");
  EXPECT_EQ(report.dropped_server.bytes, 0);
  EXPECT_EQ(report.played.bytes, s.total_bytes());
}

TEST(Consistency, MinRateForZeroLossMatchesWorkConservingFeasibility) {
  // alternatives::min_rate_for_loss(0) is the smallest R whose (D, B=DR)
  // smoothing run drops nothing; pushing R one below must drop.
  const Stream s = stream_of_frames(frames_of(300));
  const Time delay = 25;
  const Bytes rate = alternatives::min_rate_for_loss(s, delay, 0.0);
  EXPECT_EQ(sim::simulate(s, Planner::from_delay_rate(delay, rate),
                          "tail-drop")
                .dropped_server.bytes,
            0);
  EXPECT_GT(sim::simulate(s, Planner::from_delay_rate(delay, rate - 1),
                          "tail-drop")
                .dropped_server.bytes,
            0);
}

TEST(Consistency, StepTraceAccountsEveryByte) {
  const Stream s = stream_of_frames(frames_of(120));
  const Bytes rate = sim::relative_rate(s, 0.9);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  sim::SmoothingSimulator simulator(s, sim::SimConfig::balanced(plan),
                                    make_policy("greedy"));
  ScheduleRecorder rec(s.run_count(), ScheduleRecorder::Level::RunsAndSteps);
  const SimReport report = simulator.run(&rec);
  Bytes arrived = 0;
  Bytes sent = 0;
  Bytes delivered = 0;
  Bytes played = 0;
  Bytes dropped = 0;
  for (const StepSets& step : rec.steps()) {
    arrived += step.arrived;
    sent += step.sent;
    delivered += step.delivered;
    played += step.played;
    dropped += step.dropped_server + step.dropped_client;
  }
  EXPECT_EQ(arrived, report.offered.bytes);
  EXPECT_EQ(sent, delivered);  // the link is lossless
  EXPECT_EQ(played, report.played.bytes);
  EXPECT_EQ(arrived, played + dropped);

  // And the CSV export round-trips the row count.
  const std::string path = ::testing::TempDir() + "rtsmooth_steps.csv";
  sim::write_step_trace(path, rec);
  std::ifstream in(path);
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, rec.steps().size() + 1);  // header + rows
  std::remove(path.c_str());
}

TEST(Consistency, StepTraceRejectsRunsOnlyRecorder) {
  // A RunsOnly recorder has no per-step sets; exporting it must throw
  // rather than abort or silently write an empty file.
  const Stream s = stream_of_frames(frames_of(30));
  const Plan plan = Planner::from_buffer_rate(
      2 * s.max_frame_bytes(), sim::relative_rate(s, 1.0));
  sim::SmoothingSimulator simulator(s, sim::SimConfig::balanced(plan),
                                    make_policy("greedy"));
  ScheduleRecorder rec(s.run_count());  // Level::RunsOnly
  simulator.run(&rec);
  const std::string path = ::testing::TempDir() + "rtsmooth_no_steps.csv";
  EXPECT_THROW(sim::write_step_trace(path, rec), std::invalid_argument);
  EXPECT_FALSE(std::ifstream(path).good()) << "no file should be created";
}

TEST(Consistency, StockClipVarianceOrdering) {
  // The clip family must keep its intended character: action is burstier
  // than cnn-news is burstier than talking-head (per-GOP byte-rate
  // coefficient of variation).
  auto gop_cv = [](std::string_view name) {
    const trace::FrameSequence frames = trace::stock_clip(name, 13 * 300);
    RunningStats stats;
    double acc = 0;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      acc += static_cast<double>(frames[i].size);
      if ((i + 1) % 13 == 0) {
        stats.add(acc);
        acc = 0;
      }
    }
    return stats.stddev() / stats.mean();
  };
  const double action = gop_cv("action");
  const double news = gop_cv("cnn-news");
  const double talking = gop_cv("talking-head");
  EXPECT_GT(action, news);
  EXPECT_GT(news, talking);
}

TEST(Consistency, CnnNewsFirstFramesAreGolden) {
  // The Rng is specified to be platform-stable; pin the reference clip so
  // every EXPERIMENTS.md number stays reproducible bit-for-bit. If this
  // test ever fails, the trace substrate changed and all recorded numbers
  // must be regenerated.
  const trace::FrameSequence frames = trace::stock_clip("cnn-news", 6);
  ASSERT_EQ(frames.size(), 6u);
  EXPECT_EQ(frames[0].type, FrameType::I);
  EXPECT_EQ(frames[1].type, FrameType::B);
  EXPECT_EQ(frames[3].type, FrameType::P);
  const Bytes expected[] = {frames[0].size, frames[1].size, frames[2].size,
                            frames[3].size, frames[4].size, frames[5].size};
  // Self-consistency now; cross-run stability is what matters:
  const trace::FrameSequence again = trace::stock_clip("cnn-news", 6);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(again[i].size, expected[i]);
  // And a hard-pinned aggregate: total bytes of the first 1000 frames.
  const trace::FrameSequence thousand = trace::stock_clip("cnn-news", 1000);
  Bytes total = 0;
  for (const auto& f : thousand) total += f.size;
  // Pinned from the current implementation; see comment above.
  EXPECT_EQ(total, trace::compute_stats(thousand).total_bytes);
  EXPECT_GT(total, 30'000'000);
  EXPECT_LT(total, 46'000'000);
}

}  // namespace
}  // namespace rtsmooth
