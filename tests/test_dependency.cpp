// Tests for the MPEG decode-dependency model: reference resolution,
// decodability propagation, garbage accounting, dependency-aware values,
// and the end-to-end path through a recorded schedule.

#include <gtest/gtest.h>

#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/dependency.h"
#include "trace/stock_clips.h"

namespace rtsmooth::trace {
namespace {

// A small closed GOP: I B B P B B P.
const FrameSequence kGop = {
    {FrameType::I, 100}, {FrameType::B, 10}, {FrameType::B, 10},
    {FrameType::P, 40},  {FrameType::B, 10}, {FrameType::B, 10},
    {FrameType::P, 40},
};

std::vector<Bytes> full_delivery(const FrameSequence& frames) {
  std::vector<Bytes> d;
  for (const Frame& f : frames) d.push_back(f.size);
  return d;
}

TEST(Decodability, EverythingDeliveredIsDecodable) {
  const auto report = analyze_decodability(kGop, full_delivery(kGop));
  EXPECT_EQ(report.decodable_frames, 7);
  EXPECT_EQ(report.garbage_frames, 0);
  EXPECT_DOUBLE_EQ(report.decodable_fraction(), 1.0);
  EXPECT_EQ(report.decodable_bytes, report.total_bytes);
}

TEST(Decodability, LosingTheIFrameKillsTheWholeGop) {
  auto delivered = full_delivery(kGop);
  delivered[0] = 0;
  const auto report = analyze_decodability(kGop, delivered);
  EXPECT_EQ(report.decodable_frames, 0);
  EXPECT_EQ(report.delivered_frames, 6);
  EXPECT_EQ(report.garbage_frames, 6);  // intact but undecodable
}

TEST(Decodability, LosingAPKillsItsSuccessorsOnly) {
  auto delivered = full_delivery(kGop);
  delivered[3] = 0;  // the first P
  const auto report = analyze_decodability(kGop, delivered);
  // I decodable; B1/B2 need I and the *next* reference (the lost P) ->
  // garbage; B4/B5 need P3 -> garbage; P6 needs P3 -> garbage.
  EXPECT_EQ(report.decodable_frames, 1);
  EXPECT_EQ(report.garbage_frames, 5);
}

TEST(Decodability, LosingABLosesOnlyItself) {
  auto delivered = full_delivery(kGop);
  delivered[1] = 0;
  const auto report = analyze_decodability(kGop, delivered);
  EXPECT_EQ(report.decodable_frames, 6);
  EXPECT_EQ(report.garbage_frames, 0);
}

TEST(Decodability, PartialDeliveryCountsAgainstThreshold) {
  auto delivered = full_delivery(kGop);
  delivered[0] = 90;  // 90% of the I frame
  EXPECT_EQ(analyze_decodability(kGop, delivered, 1.0).decodable_frames, 0);
  EXPECT_EQ(analyze_decodability(kGop, delivered, 0.85).decodable_frames, 7);
}

TEST(Decodability, SecondGopSurvivesFirstGopLoss) {
  FrameSequence two_gops = kGop;
  two_gops.insert(two_gops.end(), kGop.begin(), kGop.end());
  auto delivered = full_delivery(two_gops);
  delivered[0] = 0;  // first I lost
  const auto report = analyze_decodability(two_gops, delivered);
  // The whole first GOP is garbage; B5/B6 of GOP 1... the B frames right
  // before the second I depend on P6 (dead) and the new I (alive) -> dead.
  // Second GOP fully decodable: 7 frames.
  EXPECT_EQ(report.decodable_frames, 7);
}

TEST(DependencyValues, KillSetBytesOrderIsIThenPThenB) {
  const auto values = dependency_aware_values(kGop);
  ASSERT_EQ(values.size(), kGop.size());
  // values are per *byte*; total kill-set bytes = value * frame size.
  const double kill_i = values[0] * 100;
  const double kill_p = values[3] * 40;
  const double kill_b = values[1] * 10;
  EXPECT_GT(kill_i, kill_p);
  EXPECT_GT(kill_p, kill_b);
  // A B frame kills only itself: byte value exactly 1.
  EXPECT_DOUBLE_EQ(values[1], 1.0);
  // The I frame kills everything: accumulated bytes = whole GOP.
  EXPECT_DOUBLE_EQ(kill_i, 100 + 10 * 4 + 40 * 2);
  // P3 kills itself, the four B frames around it, and P6.
  EXPECT_DOUBLE_EQ(kill_p, 40 + 10 * 4 + 40);
}

TEST(DependencyValues, LaterPFramesAreCheaper) {
  const auto values = dependency_aware_values(kGop);
  // P3 kills B1,B2,B4,B5,P6 and itself; P6 kills only itself plus... the
  // trailing B frames of its GOP (none here), so P3 > P6.
  EXPECT_GT(values[3], values[6]);
}

TEST(DependencyEndToEnd, RecorderPathProducesPerFrameBytes) {
  const FrameSequence frames = stock_clip("cnn-news", 120);
  const Stream stream = slice_frames(frames, ValueModel::mpeg_default(),
                                     Slicing::ByteSlices);
  const Bytes rate = sim::relative_rate(stream, 0.9);
  const Plan plan = Planner::from_buffer_rate(2 * stream.max_frame_bytes(),
                                              rate);
  sim::SmoothingSimulator simulator(stream, sim::SimConfig::balanced(plan),
                                    make_policy("greedy"));
  ScheduleRecorder rec(stream.run_count());
  const SimReport report = simulator.run(&rec);
  const auto delivered =
      delivered_bytes_per_frame(stream, rec, frames.size());
  Bytes total = 0;
  for (Bytes b : delivered) total += b;
  EXPECT_EQ(total, report.played.bytes);
  const auto dep = analyze_decodability(frames, delivered);
  EXPECT_GT(dep.decodable_frames, 0);
  EXPECT_LE(dep.decodable_frames, dep.delivered_frames);
}

TEST(DependencyEndToEnd, DependencyAwareValuesImproveDecodability) {
  // Under heavy pressure, pricing frames by their dependency fan-out should
  // deliver at least as many decodable frames as the plain 12:8:1 model.
  const FrameSequence frames = stock_clip("cnn-news", 400);
  const Stream plain = slice_frames(frames, ValueModel::mpeg_default(),
                                    Slicing::ByteSlices);
  const Stream aware = slice_frames_with_values(
      frames, dependency_aware_values(frames), Slicing::ByteSlices);
  const Bytes rate = sim::relative_rate(plain, 0.8);
  const Plan plan = Planner::from_buffer_rate(2 * plain.max_frame_bytes(),
                                              rate);
  auto decodable = [&](const Stream& stream) {
    sim::SmoothingSimulator simulator(stream, sim::SimConfig::balanced(plan),
                                      make_policy("greedy"));
    ScheduleRecorder rec(stream.run_count());
    simulator.run(&rec);
    return analyze_decodability(
               frames, delivered_bytes_per_frame(stream, rec, frames.size()))
        .decodable_frames;
  };
  EXPECT_GE(decodable(aware) + 2, decodable(plain));  // small slack: ties
}

}  // namespace
}  // namespace rtsmooth::trace
