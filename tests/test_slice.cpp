// Unit tests for the stream model (Definition 2.1): run aggregation, stream
// invariants and the arrival cursor.

#include <gtest/gtest.h>

#include "core/slice.h"
#include "stream_helpers.h"

namespace rtsmooth {
namespace {

using testing::slice;
using testing::stream_of;
using testing::units;

TEST(SliceRun, DerivedQuantities) {
  const SliceRun r{.arrival = 3, .slice_size = 4, .count = 5, .weight = 8.0};
  EXPECT_EQ(r.total_bytes(), 20);
  EXPECT_DOUBLE_EQ(r.total_weight(), 40.0);
  EXPECT_DOUBLE_EQ(r.byte_value(), 2.0);
}

TEST(Stream, EmptyStream) {
  const Stream s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.total_bytes(), 0);
  EXPECT_EQ(s.horizon(), 0);
  EXPECT_EQ(s.average_rate(), 0.0);
}

TEST(Stream, TotalsAndMaxima) {
  const Stream s = stream_of({units(0, 10, 2.0), slice(1, 7), units(2, 3)});
  EXPECT_EQ(s.total_bytes(), 10 + 7 + 3);
  EXPECT_EQ(s.total_slices(), 10 + 1 + 3);
  EXPECT_DOUBLE_EQ(s.total_weight(), 20.0 + 7.0 + 3.0);
  EXPECT_EQ(s.max_slice_size(), 7);
  EXPECT_FALSE(s.unit_slices());
}

TEST(Stream, UnitSlicesDetected) {
  EXPECT_TRUE(stream_of({units(0, 5), units(3, 2)}).unit_slices());
}

TEST(Stream, SortsRunsByArrival) {
  const Stream s = stream_of({units(5, 1), units(0, 2), units(3, 1)});
  ASSERT_EQ(s.run_count(), 3u);
  EXPECT_EQ(s.runs()[0].arrival, 0);
  EXPECT_EQ(s.runs()[1].arrival, 3);
  EXPECT_EQ(s.runs()[2].arrival, 5);
  EXPECT_EQ(s.first_arrival(), 0);
  EXPECT_EQ(s.horizon(), 6);
}

TEST(Stream, MaxFrameBytesSumsSameStepRuns) {
  // Two runs arriving together form one frame of 9 bytes.
  const Stream s = stream_of({units(0, 4), slice(0, 5), units(1, 6)});
  EXPECT_EQ(s.max_frame_bytes(), 9);
}

TEST(Stream, AverageRateSpansArrivalWindow) {
  // 12 bytes over steps 2..5 -> 4 steps -> rate 3.
  const Stream s = stream_of({units(2, 6), units(5, 6)});
  EXPECT_DOUBLE_EQ(s.average_rate(), 3.0);
}

TEST(Stream, ArrivalsAtFindsGroups) {
  const Stream s = stream_of({units(1, 1), units(1, 2), units(4, 3)});
  EXPECT_EQ(s.arrivals_at(0).size(), 0u);
  EXPECT_EQ(s.arrivals_at(1).size(), 2u);
  EXPECT_EQ(s.arrivals_at(4).size(), 1u);
  EXPECT_EQ(s.arrivals_at(5).size(), 0u);
}

TEST(ArrivalCursor, WalksGroupsInOrder) {
  const Stream s = stream_of({units(0, 1), units(2, 2), units(2, 3)});
  ArrivalCursor cursor(s);
  const auto first = cursor.step(0);
  EXPECT_EQ(first.runs.size(), 1u);
  EXPECT_EQ(first.first_index, 0u);
  EXPECT_EQ(cursor.step(1).runs.size(), 0u);
  const auto batch = cursor.step(2);
  EXPECT_EQ(batch.runs.size(), 2u);
  EXPECT_EQ(batch.first_index, 1u);
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_EQ(cursor.step(3).runs.size(), 0u);
}

TEST(ArrivalCursor, RepeatedStepYieldsNothing) {
  const Stream s = stream_of({units(1, 4)});
  ArrivalCursor cursor(s);
  EXPECT_EQ(cursor.step(1).runs.size(), 1u);
  EXPECT_EQ(cursor.step(1).runs.size(), 0u);
}

using SliceDeathTest = ::testing::Test;

TEST(SliceDeathTest, RejectsNonPositiveCount) {
  EXPECT_DEATH(stream_of({SliceRun{.arrival = 0, .slice_size = 1,
                                   .count = 0, .weight = 1.0}}),
               "precondition");
}

TEST(SliceDeathTest, RejectsNegativeArrival) {
  EXPECT_DEATH(stream_of({SliceRun{.arrival = -1, .slice_size = 1,
                                   .count = 1, .weight = 1.0}}),
               "precondition");
}

TEST(SliceDeathTest, RejectsNegativeWeight) {
  EXPECT_DEATH(stream_of({SliceRun{.arrival = 0, .slice_size = 1,
                                   .count = 1, .weight = -2.0}}),
               "precondition");
}

}  // namespace
}  // namespace rtsmooth
