// Unit tests for the obs layer: Json serialization, Counter/Gauge/Histogram
// semantics, deterministic Registry merging, TraceWriter error handling —
// plus the acceptance checks that tie telemetry back to the paper: the
// byte-sojourn histogram of a lossless balanced run respects Lemma 3.2
// (no byte sits in the server buffer longer than D = B/R), and the JSONL
// run trace has the documented event shapes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/planner.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "obs/trace_writer.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace rtsmooth::obs {
namespace {

// ------------------------------------------------------------------- Json

TEST(Json, ScalarsDump) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(std::int64_t{-42}).dump(), "-42");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, DoublesUseShortestRoundTripWithDecimalPoint) {
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  // Integral doubles keep a ".0" so readers can't mistake them for ints.
  EXPECT_EQ(Json(3.0).dump(), "3.0");
  EXPECT_EQ(Json(0.1).dump(), "0.1");
  // Non-finite values are not representable in JSON; they become null.
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, StringsEscapeControlCharactersAndQuotes) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("a\\b").dump(), "\"a\\\\b\"");
  EXPECT_EQ(Json("a\nb\tc").dump(), "\"a\\nb\\tc\"");
  EXPECT_EQ(Json(std::string("a\x01z")).dump(), "\"a\\u0001z\"");
}

TEST(Json, ObjectsKeepInsertionOrder) {
  Json obj = Json::object();
  obj["zebra"] = 1;
  obj["apple"] = 2;
  obj["zebra"] = 3;  // overwrite keeps the original position
  EXPECT_EQ(obj.dump(), "{\"zebra\":3,\"apple\":2}");
}

TEST(Json, ArraysAndNesting) {
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  Json inner = Json::object();
  inner["k"] = Json();
  arr.push_back(std::move(inner));
  EXPECT_EQ(arr.dump(), "[1,\"two\",{\"k\":null}]");
}

// ------------------------------------------------------------ Json parse

TEST(JsonParse, RoundTripsDumpedDocuments) {
  Json doc = Json::object();
  doc["name"] = "run";
  doc["count"] = 42;
  doc["ratio"] = 0.5;
  doc["ok"] = true;
  doc["nothing"] = Json();
  Json arr = Json::array();
  arr.push_back(-7);
  arr.push_back("x");
  doc["list"] = std::move(arr);
  EXPECT_EQ(Json::parse(doc.dump()).dump(), doc.dump());
}

TEST(JsonParse, PreservesIntVersusDouble) {
  const Json doc = Json::parse("{\"i\":10,\"d\":10.0,\"e\":1e2,\"n\":-3}");
  EXPECT_TRUE(doc.at("i").is_int());
  EXPECT_EQ(doc.at("i").as_int(), 10);
  EXPECT_TRUE(doc.at("d").is_double());
  EXPECT_DOUBLE_EQ(doc.at("d").as_double(), 10.0);
  EXPECT_TRUE(doc.at("e").is_double());
  EXPECT_DOUBLE_EQ(doc.at("e").as_double(), 100.0);
  EXPECT_EQ(doc.at("n").as_int(), -3);
  // as_double accepts either number kind; as_int only true ints.
  EXPECT_DOUBLE_EQ(doc.at("i").as_double(), 10.0);
  EXPECT_THROW(doc.at("d").as_int(), std::runtime_error);
}

TEST(JsonParse, DecodesEscapesIncludingUnicode) {
  const Json doc =
      Json::parse("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
  EXPECT_EQ(doc.as_string(), "a\"b\\c\n\tA\xc3\xa9");
  // Surrogate pair: U+1F600 must decode to 4 UTF-8 bytes.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, WhitespaceIsInsignificant) {
  const Json doc = Json::parse("  { \"a\" : [ 1 , 2 ] , \"b\" : null }  ");
  EXPECT_EQ(doc.dump(), "{\"a\":[1,2],\"b\":null}");
}

TEST(JsonParse, ErrorsNameTheByteOffset) {
  try {
    Json::parse("{\"a\":}");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte 5"), std::string::npos);
  }
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1 2]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::parse("truish"), std::runtime_error);
}

TEST(JsonParse, AccessorsProbeAndThrow) {
  const Json doc = Json::parse("{\"a\":1}");
  ASSERT_NE(doc.find("a"), nullptr);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), std::runtime_error);
  EXPECT_THROW(doc.at(std::size_t{0}), std::runtime_error);  // not an array
  EXPECT_THROW(doc.at("a").as_string(), std::runtime_error);
  EXPECT_THROW(doc.at("a").as_bool(), std::runtime_error);
}

// ------------------------------------------------------- instrument types

TEST(Counter, AddsAndDefaultsToOne) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(10);
  EXPECT_EQ(c.value(), 11);
}

TEST(Gauge, KeepsHighWatermark) {
  Gauge g;
  g.update(5);
  g.update(3);
  EXPECT_EQ(g.value(), 5);
  g.update(9);
  EXPECT_EQ(g.value(), 9);
}

TEST(HistogramSpec, ExponentialDoublesAndLinearSteps) {
  EXPECT_EQ(HistogramSpec::exponential(1, 4).bounds,
            (std::vector<std::int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(HistogramSpec::linear(10, 3).bounds,
            (std::vector<std::int64_t>{10, 20, 30}));
}

TEST(Histogram, BucketsByInclusiveUpperBoundWithOverflow) {
  Histogram h(HistogramSpec{.bounds = {1, 10, 100}});
  h.record(1);    // first bucket (bound inclusive)
  h.record(2);    // second
  h.record(10);   // second
  h.record(101);  // overflow
  EXPECT_EQ(h.counts(), (std::vector<std::int64_t>{1, 2, 0, 1}));
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 114);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 101);
  EXPECT_DOUBLE_EQ(h.mean(), 114.0 / 4.0);
}

TEST(Histogram, WeightedRecordCountsWeightNotSamples) {
  Histogram h(HistogramSpec{.bounds = {4, 8}});
  h.record(3, 100);  // e.g. a 100-byte piece with sojourn 3
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.sum(), 300);
  EXPECT_EQ(h.counts(), (std::vector<std::int64_t>{100, 0, 0}));
}

TEST(Histogram, BoundaryValuesLandInTheLowerBucket) {
  Histogram h(HistogramSpec{.bounds = {0, 5, 10}});
  h.record(0);    // inclusive upper bound of the first bucket
  h.record(5);    // second
  h.record(6);    // third
  h.record(10);   // third
  h.record(11);   // overflow
  h.record(-3);   // below every bound: first bucket
  EXPECT_EQ(h.counts(), (std::vector<std::int64_t>{2, 1, 2, 1}));
  EXPECT_EQ(h.min(), -3);
  EXPECT_EQ(h.max(), 11);
}

TEST(Histogram, ZeroWeightIsANoOp) {
  Histogram h(HistogramSpec{.bounds = {4, 8}});
  h.record(3, 0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);  // still the empty sentinel
  EXPECT_EQ(h.counts(), (std::vector<std::int64_t>{0, 0, 0}));
}

TEST(Histogram, NegativeWeightThrows) {
  Histogram h(HistogramSpec{.bounds = {4, 8}});
  EXPECT_THROW(h.record(3, -1), std::invalid_argument);
  EXPECT_EQ(h.count(), 0);  // the rejected record left no trace
}

TEST(Histogram, MergeOfMismatchedSpecsThrows) {
  Histogram a(HistogramSpec{.bounds = {1, 10}});
  Histogram narrow(HistogramSpec{.bounds = {1}});
  Histogram shifted(HistogramSpec{.bounds = {1, 20}});
  a.record(5);
  narrow.record(1);
  shifted.record(15);
  EXPECT_THROW(a.merge(narrow), std::invalid_argument);
  EXPECT_THROW(a.merge(shifted), std::invalid_argument);
  // The failed merges changed nothing.
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.counts(), (std::vector<std::int64_t>{0, 1, 0}));
}

TEST(Histogram, EmptyMinMaxAreZero) {
  const Histogram h(HistogramSpec{.bounds = {1}});
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.count(), 0);
}

TEST(Histogram, MergeAddsBucketsAndWidensExtremes) {
  Histogram a(HistogramSpec{.bounds = {1, 10}});
  Histogram b(HistogramSpec{.bounds = {1, 10}});
  a.record(1);
  b.record(7);
  b.record(50);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.min(), 1);
  EXPECT_EQ(a.max(), 50);
  EXPECT_EQ(a.counts(), (std::vector<std::int64_t>{1, 1, 1}));
}

TEST(Histogram, ToJsonCarriesBoundsAndCounts) {
  Histogram h(HistogramSpec{.bounds = {2, 4}});
  h.record(3);
  EXPECT_EQ(h.to_json().dump(),
            "{\"count\":1,\"sum\":3,\"min\":3,\"max\":3,"
            "\"bounds\":[2,4],\"counts\":[0,1,0]}");
}

// --------------------------------------------------------------- Registry

TEST(Registry, FetchOrCreateReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("x");
  a.add(3);
  EXPECT_EQ(reg.counter("x").value(), 3);
  Histogram& h = reg.histogram("h", HistogramSpec::exponential(1, 4));
  h.record(2);
  // Later lookups ignore the (different) spec and return the existing one.
  EXPECT_EQ(reg.histogram("h", HistogramSpec::linear(5, 2)).count(), 1);
}

TEST(Registry, MergeFoldsEverySection) {
  Registry a;
  Registry b;
  a.counter("c").add(1);
  b.counter("c").add(2);
  b.counter("only_b").add(5);
  a.gauge("g").update(10);
  b.gauge("g").update(7);
  a.histogram("h", HistogramSpec::exponential(1, 4)).record(2);
  b.histogram("h", HistogramSpec::exponential(1, 4)).record(3);
  b.timer("t").record(100);
  a.merge(b);
  EXPECT_EQ(a.counter("c").value(), 3);
  EXPECT_EQ(a.counter("only_b").value(), 5);
  EXPECT_EQ(a.gauge("g").value(), 10);
  EXPECT_EQ(a.histogram("h", HistogramSpec::exponential(1, 4)).count(), 2);
  EXPECT_EQ(a.timers().at("t").count(), 1);
}

TEST(Registry, MergeIsOrderInsensitiveForCommutativeSections) {
  // Counters, gauges and histograms all fold commutatively, which is why
  // the per-cell merge in sweep() yields thread-count-independent
  // snapshots (the fixed submission order makes it deterministic even if
  // a future instrument is not commutative).
  Registry a1;
  Registry a2;
  Registry b1;
  Registry b2;
  for (Registry* r : {&a1, &b2}) {
    r->counter("c").add(2);
    r->gauge("g").update(4);
    r->histogram("h", HistogramSpec::exponential(1, 4)).record(1);
  }
  for (Registry* r : {&a2, &b1}) {
    r->counter("c").add(7);
    r->gauge("g").update(1);
    r->histogram("h", HistogramSpec::exponential(1, 4)).record(9);
  }
  a1.merge(a2);  // x then y
  b1.merge(b2);  // y then x
  EXPECT_EQ(a1.to_json(false).dump(), b1.to_json(false).dump());
}

TEST(Registry, SnapshotOrdersNamesLexicographicallyAndQuarantinesTimers) {
  Registry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(2);
  reg.timer("noisy").record(5);
  const std::string with_timers = reg.to_json(true).dump();
  const std::string deterministic = reg.to_json(false).dump();
  EXPECT_LT(with_timers.find("a.first"), with_timers.find("z.last"));
  EXPECT_NE(with_timers.find("\"timers\""), std::string::npos);
  EXPECT_EQ(deterministic.find("noisy"), std::string::npos);
  EXPECT_FALSE(reg.empty());
  EXPECT_TRUE(Registry{}.empty());
}

// ------------------------------------------------------ Telemetry & Span

TEST(Telemetry, NullHandleIsDisabled) {
  const Telemetry null_handle;
  EXPECT_FALSE(null_handle.enabled());
  EXPECT_FALSE(static_cast<bool>(null_handle));
  Registry reg;
  const Telemetry with_registry{.registry = &reg};
  EXPECT_TRUE(with_registry.enabled());
}

TEST(Span, RecordsIntoTimerSectionOnlyWhenEnabled) {
  Registry reg;
  {
    const Span span(Telemetry{.registry = &reg}, "scope");
  }
  {
    const Span disabled(Telemetry{}, "scope");  // must be a no-op
  }
  ASSERT_EQ(reg.timers().count("scope"), 1u);
  EXPECT_EQ(reg.timers().at("scope").count(), 1);
  EXPECT_TRUE(reg.to_json(false).dump().find("scope") == std::string::npos);
}

// -------------------------------------------------------------- TraceWriter

TEST(TraceWriter, ThrowsWhenPathCannotBeOpened) {
  EXPECT_THROW(TraceWriter("/nonexistent-dir/trace.jsonl"),
               std::runtime_error);
}

TEST(TraceWriter, WritesOneLinePerEvent) {
  std::ostringstream out;
  TraceWriter writer(out);
  Json e1 = Json::object();
  e1["type"] = "step";
  writer.write(e1);
  Json e2 = Json::object();
  e2["type"] = "run";
  writer.write(e2);
  EXPECT_EQ(writer.events(), 2);
  EXPECT_EQ(out.str(), "{\"type\":\"step\"}\n{\"type\":\"run\"}\n");
}

// A streambuf that refuses every byte, simulating a full disk.
struct FailBuf : std::streambuf {
  int overflow(int) override { return traits_type::eof(); }
};

TEST(TraceWriter, ThrowsWhenTheStreamFailsMidWrite) {
  FailBuf buf;
  std::ostream broken(&buf);
  TraceWriter writer(broken);
  Json event = Json::object();
  event["type"] = "step";
  EXPECT_THROW(writer.write(event), std::runtime_error);
}

TEST(TraceWriter, WriteFailureOnAFileNamesThePath) {
  // /dev/full opens fine and fails with ENOSPC once the stream's buffer
  // actually flushes — the closest thing to a deterministic full disk.
  if (!std::ifstream("/dev/full").good()) {
    GTEST_SKIP() << "/dev/full not available";
  }
  TraceWriter writer("/dev/full");
  Json event = Json::object();
  event["payload"] = std::string(1 << 16, 'x');  // defeat stream buffering
  try {
    for (int i = 0; i < 64; ++i) writer.write(event);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/dev/full"), std::string::npos);
  }
}

// -------------------------------------------- simulator acceptance checks

Stream clip(std::size_t frames) {
  return trace::slice_frames(trace::stock_clip("cnn-news", frames),
                             trace::ValueModel::mpeg_default(),
                             trace::Slicing::ByteSlices);
}

// Lemma 3.2: in the balanced plan (B = D*R) no accepted byte spends more
// than D steps in the server buffer. The byte-weighted sojourn histogram
// of a lossless run must respect that bound exactly.
TEST(SimulatorTelemetry, LosslessSojournRespectsLemma32) {
  const Stream s = clip(300);
  const Plan plan = Planner::from_buffer_rate(8 * s.max_frame_bytes(),
                                              sim::relative_rate(s, 1.2));
  sim::SimConfig config = sim::SimConfig::balanced(plan);
  Registry reg;
  config.telemetry = Telemetry{.registry = &reg};
  const SimReport report = sim::simulate(s, config, "greedy");
  ASSERT_EQ(report.dropped_server.bytes, 0) << "run must be lossless";
  const auto it = reg.histograms().find("byte.sojourn_steps");
  ASSERT_NE(it, reg.histograms().end());
  EXPECT_EQ(it->second.count(), report.offered.bytes);  // byte-weighted
  EXPECT_LE(it->second.max(), plan.delay);
  EXPECT_GE(it->second.max(), 1);
}

TEST(SimulatorTelemetry, RegistryCountersMatchReport) {
  const Stream s = clip(200);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(),
                                              sim::relative_rate(s, 0.9));
  sim::SimConfig config = sim::SimConfig::balanced(plan);
  Registry reg;
  config.telemetry = Telemetry{.registry = &reg};
  const SimReport report = sim::simulate(s, config, "tail-drop");
  EXPECT_EQ(reg.counter("server.sent_bytes").value(),
            static_cast<std::int64_t>(report.played.bytes) +
                static_cast<std::int64_t>(report.residual.bytes));
  EXPECT_EQ(reg.counter("client.played_bytes").value(),
            static_cast<std::int64_t>(report.played.bytes));
  EXPECT_EQ(reg.counter("sim.steps").value(),
            static_cast<std::int64_t>(report.steps));
  EXPECT_EQ(reg.counter("sim.runs").value(), 1);
  EXPECT_EQ(reg.gauge("server.max_occupancy").value(),
            static_cast<std::int64_t>(report.max_server_occupancy));
}

// The telemetry handle must not perturb the simulation itself: identical
// runs with and without a registry produce identical reports.
TEST(SimulatorTelemetry, InstrumentationDoesNotChangeResults) {
  const Stream s = clip(200);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(),
                                              sim::relative_rate(s, 0.9));
  const SimReport bare = sim::simulate(s, plan, "greedy");
  Registry reg;
  const SimReport instrumented =
      sim::simulate(s, plan, "greedy", 1, Telemetry{.registry = &reg});
  EXPECT_EQ(bare, instrumented);
  EXPECT_FALSE(reg.empty());
}

// ------------------------------------------------------ JSONL trace shape

std::vector<std::string> trace_lines(const Stream& s, const Plan& plan) {
  std::ostringstream out;
  TraceWriter writer(out);
  sim::SimConfig config = sim::SimConfig::balanced(plan);
  config.telemetry = Telemetry{.tracer = &writer};
  sim::simulate(s, config, "greedy");
  std::vector<std::string> lines;
  std::istringstream in(out.str());
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(SimulatorTrace, EventStreamHasDocumentedShape) {
  const Stream s = clip(100);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(),
                                              sim::relative_rate(s, 0.9));
  const auto lines = trace_lines(s, plan);
  ASSERT_GE(lines.size(), 3u);
  // Golden prefix: the config event is fully deterministic.
  std::ostringstream expected;
  expected << "{\"type\":\"config\",\"server_buffer\":" << plan.buffer
           << ",\"client_buffer\":" << plan.buffer
           << ",\"rate\":" << plan.rate
           << ",\"smoothing_delay\":" << plan.delay
           << ",\"link_delay\":1,\"runs\":" << s.run_count() << "}";
  EXPECT_EQ(lines.front(), expected.str());
  EXPECT_NE(lines.back().find("\"type\":\"run\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"invariant_violations\":0"),
            std::string::npos);
  // Every line between them is a step event carrying the CSV columns.
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    EXPECT_EQ(lines[i].find("{\"type\":\"step\",\"t\":"), 0u) << lines[i];
    for (const char* key :
         {"\"arrived\":", "\"sent\":", "\"delivered\":", "\"played\":",
          "\"dropped_server\":", "\"dropped_client\":",
          "\"server_occupancy\":", "\"client_occupancy\":",
          "\"stalled\":"}) {
      EXPECT_NE(lines[i].find(key), std::string::npos)
          << "step event missing " << key;
    }
  }
}

TEST(SimulatorTrace, TraceMatchesStepTraceRowCount) {
  const Stream s = clip(80);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(),
                                              sim::relative_rate(s, 1.0));
  const auto lines = trace_lines(s, plan);
  sim::SimConfig config = sim::SimConfig::balanced(plan);
  const SimReport report = sim::simulate(s, config, "greedy");
  // config + one step event per simulated step + run summary.
  EXPECT_EQ(lines.size(), static_cast<std::size_t>(report.steps) + 2);
}

}  // namespace
}  // namespace rtsmooth::obs
