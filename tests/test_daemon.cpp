// Daemon subsystem tests (DESIGN.md Sect. 13): frame sources and the wire
// format, ingest stall/retry/timeout handling, the SLO watchdog and
// degradation ladder, the Sect. 3.3 plan classifier, the fault schedule
// parser, and the Daemon's serving loop end to end — clean completion,
// overload escalation with valid incident documents, and signal-driven
// shutdown. The drain-and-replan differential suite lives in
// test_reconfig.cpp.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "daemon/rtsmoothd.h"
#include "faults/fault_schedule.h"
#include "obs/json.h"

namespace rtsmooth::daemon {
namespace {

// ------------------------------------------------------------ frame sources

TEST(GeneratorSource, DeterministicFromSeedAndBounded) {
  GeneratorConfig cfg;
  cfg.channels = 3;
  cfg.mean_frame_bytes = 512;
  cfg.max_frame_bytes = 2048;
  cfg.min_frame_bytes = 32;
  cfg.seed = 42;
  cfg.frames_per_channel = 20;
  GeneratorSource a(cfg);
  GeneratorSource b(cfg);
  std::vector<IngestFrame> fa;
  std::vector<IngestFrame> fb;
  for (Time t = 0; t < 20; ++t) {
    EXPECT_EQ(a.poll(t, fa), PollStatus::Ready);
    EXPECT_EQ(b.poll(t, fb), PollStatus::Ready);
  }
  EXPECT_EQ(fa, fb);
  EXPECT_EQ(fa.size(), 60u);  // 3 channels x 20 frames
  for (const IngestFrame& f : fa) {
    EXPECT_GE(f.size, cfg.min_frame_bytes);
    EXPECT_LE(f.size, cfg.max_frame_bytes);
  }
  EXPECT_EQ(a.poll(20, fa), PollStatus::End);
  EXPECT_EQ(fa.size(), 60u);
}

TEST(GeneratorSource, AddingChannelsKeepsExistingStreams) {
  GeneratorConfig small;
  small.channels = 2;
  small.seed = 9;
  GeneratorConfig big = small;
  big.channels = 4;
  GeneratorSource a(small);
  GeneratorSource b(big);
  std::vector<IngestFrame> fa;
  std::vector<IngestFrame> fb;
  for (Time t = 0; t < 10; ++t) {
    a.poll(t, fa);
    b.poll(t, fb);
  }
  // Channel c's generator is seeded with split(seed, c): the frames on
  // channels 0 and 1 must be identical in both sources.
  std::vector<IngestFrame> b01;
  for (const IngestFrame& f : fb) {
    if (f.channel < 2) b01.push_back(f);
  }
  EXPECT_EQ(fa, b01);
}

TEST(ReplaySource, EmitsSequentiallyThenEnds) {
  trace::FrameSequence frames = {{FrameType::I, 10},
                                 {FrameType::P, 5},
                                 {FrameType::B, 3}};
  ReplaySource src(frames, ReplayConfig{.channel = 2, .loop = false});
  std::vector<IngestFrame> out;
  for (Time t = 0; t < 3; ++t) EXPECT_EQ(src.poll(t, out), PollStatus::Ready);
  EXPECT_EQ(src.poll(3, out), PollStatus::End);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (IngestFrame{2, FrameType::I, 10}));
  EXPECT_EQ(out[2], (IngestFrame{2, FrameType::B, 3}));
  EXPECT_EQ(src.channels(), 3);  // channel index 2 implies 3 channels
}

TEST(ReplaySource, LoopWrapsAround) {
  trace::FrameSequence frames = {{FrameType::I, 7}, {FrameType::B, 2}};
  ReplaySource src(frames, ReplayConfig{.channel = 0, .loop = true});
  std::vector<IngestFrame> out;
  for (Time t = 0; t < 5; ++t) EXPECT_EQ(src.poll(t, out), PollStatus::Ready);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[2].size, 7);  // wrapped back to the first frame
  EXPECT_EQ(out[3].size, 2);
}

TEST(WireFrame, RoundTripAndRejection) {
  const IngestFrame frame{300, FrameType::P, 123456};
  unsigned char buf[WireFrame::kWireSize];
  WireFrame::encode(frame, buf);
  IngestFrame back;
  ASSERT_TRUE(WireFrame::decode(buf, back));
  EXPECT_EQ(back, frame);

  unsigned char bad[WireFrame::kWireSize];
  WireFrame::encode(frame, bad);
  bad[0] ^= 0xFF;  // corrupt the magic
  EXPECT_FALSE(WireFrame::decode(bad, back));
  WireFrame::encode(frame, bad);
  bad[4] = 200;  // invalid frame type
  EXPECT_FALSE(WireFrame::decode(bad, back));
}

TEST(PipeSource, StallThenDataThenEof) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_NE(::fcntl(fds[0], F_SETFL, O_NONBLOCK), -1);
  PipeSource src(fds[0], 4);

  std::vector<IngestFrame> out;
  EXPECT_EQ(src.poll(0, out), PollStatus::Stalled);
  EXPECT_TRUE(out.empty());

  const IngestFrame a{1, FrameType::I, 900};
  const IngestFrame b{3, FrameType::B, 40};
  ASSERT_TRUE(PipeSource::write_frame(fds[1], a));
  ASSERT_TRUE(PipeSource::write_frame(fds[1], b));
  EXPECT_EQ(src.poll(1, out), PollStatus::Ready);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], a);
  EXPECT_EQ(out[1], b);

  // A partial record is buffered, not emitted.
  unsigned char partial[WireFrame::kWireSize];
  WireFrame::encode(a, partial);
  ASSERT_EQ(::write(fds[1], partial, 7), 7);
  EXPECT_EQ(src.poll(2, out), PollStatus::Stalled);
  ::close(fds[1]);
  EXPECT_EQ(src.poll(3, out), PollStatus::End);
  EXPECT_EQ(src.truncated_tail(), 7u);
  EXPECT_EQ(out.size(), 2u);
}

// ------------------------------------------------------------ fault program

TEST(FaultSchedule, ParsesPhasesAndCycles) {
  const auto phases =
      faults::parse_fault_schedule("0:0:-1,2000:0.25:-1,3500:0:128");
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].from, 0);
  EXPECT_EQ(phases[1].from, 2000);
  EXPECT_DOUBLE_EQ(phases[1].loss_probability, 0.25);
  EXPECT_EQ(phases[2].rate_cap, 128);
}

TEST(FaultSchedule, RejectsMalformedPrograms) {
  EXPECT_THROW(faults::parse_fault_schedule(""), std::invalid_argument);
  EXPECT_THROW(faults::parse_fault_schedule("0:0"), std::invalid_argument);
  EXPECT_THROW(faults::parse_fault_schedule("0:1.5:-1"),
               std::invalid_argument);
  EXPECT_THROW(faults::parse_fault_schedule("5:0:-1,2:0:-1"),
               std::invalid_argument);
  EXPECT_THROW(faults::parse_fault_schedule("0:zero:-1"),
               std::invalid_argument);
}

// ----------------------------------------------------------- ladder + SLOs

TEST(DegradationLadder, EscalatesThroughRungsAndRelaxes) {
  LadderConfig cfg;
  cfg.escalate_after = 4;
  cfg.deescalate_after = 6;
  cfg.floor_start = 1.0;
  cfg.floor_max = 4.0;  // floor rungs: 1.0, 2.0, 4.0
  cfg.max_shed_channels = 2;
  DegradationLadder ladder(cfg);
  EXPECT_EQ(ladder.level(), DegradationLevel::Normal);
  EXPECT_EQ(ladder.value_floor(), 0.0);

  auto push = [&ladder](bool pressured, int n) {
    for (int i = 0; i < n; ++i) ladder.update(pressured);
  };
  push(true, 4);
  EXPECT_EQ(ladder.level(), DegradationLevel::AdmissionControl);
  EXPECT_TRUE(ladder.admission_control());
  push(true, 4);
  EXPECT_EQ(ladder.level(), DegradationLevel::ValueFloor);
  EXPECT_DOUBLE_EQ(ladder.value_floor(), 1.0);
  push(true, 8);
  EXPECT_DOUBLE_EQ(ladder.value_floor(), 4.0);
  push(true, 4);
  EXPECT_EQ(ladder.level(), DegradationLevel::StreamShed);
  EXPECT_EQ(ladder.shed_channels(), 1);
  push(true, 4);
  EXPECT_EQ(ladder.shed_channels(), 2);
  push(true, 40);  // saturates at the top rung
  EXPECT_EQ(ladder.shed_channels(), 2);
  EXPECT_EQ(ladder.rung(), 6);

  // Mixed signals reset both streaks: no flapping.
  push(false, 5);
  push(true, 1);
  push(false, 5);
  EXPECT_EQ(ladder.rung(), 6);
  push(false, 6);
  EXPECT_EQ(ladder.rung(), 5);
  push(false, 6 * 5);
  EXPECT_EQ(ladder.level(), DegradationLevel::Normal);
  EXPECT_GE(ladder.deescalations(), 6);
}

TEST(Watchdog, StallBreachCapturesIncidentWithCooldown) {
  obs::Registry registry;
  obs::FlightRecorderConfig rc;
  rc.window = 16;
  rc.max_incidents = 4;
  rc.trigger_on_violation = true;
  obs::FlightRecorder recorder(rc);
  SloConfig slo;
  slo.max_stall_rate = 0.05;
  slo.window = 8;
  slo.cooldown = 100;
  Watchdog wd(slo, /*server_buffer=*/100, &recorder, &registry);

  StepStats stalled;
  stalled.playouts = 1;
  stalled.degraded = 1;  // 100% stall rate
  Watchdog::Pressure last;
  for (Time t = 0; t < 20; ++t) last = wd.observe(t, stalled);
  EXPECT_TRUE(last.stall);
  EXPECT_GT(wd.breaches().stall, 0);
  EXPECT_DOUBLE_EQ(wd.stall_rate(), 1.0);
  // The cooldown rate-limits captures but not breach counting.
  ASSERT_EQ(recorder.incidents().size(), 1u);
  const obs::Json& incident = recorder.incidents()[0];
  EXPECT_EQ(incident.at("schema").as_string(), "rtsmooth-incident-v1");
  EXPECT_EQ(incident.at("trigger").at("kind").as_string(), "slo.stall_rate");
}

TEST(Watchdog, HealthyTrafficNeverBreaches) {
  obs::Registry registry;
  SloConfig slo;
  slo.window = 8;
  Watchdog wd(slo, 100, nullptr, &registry);
  StepStats healthy;
  healthy.playouts = 1;
  healthy.offered_weight = 10.0;
  healthy.server_occupancy = 10;
  for (Time t = 0; t < 50; ++t) {
    EXPECT_FALSE(wd.observe(t, healthy).any());
  }
  EXPECT_EQ(wd.breaches().total(), 0);
}

// ------------------------------------------------------------ plan classes

TEST(ClassifyPlan, CoversTheSection33Cases) {
  auto cases = [](Bytes bs, Bytes bc, Bytes r, Time d) {
    EngineConfig cfg;
    cfg.server_buffer = bs;
    cfg.client_buffer = bc;
    cfg.rate = r;
    cfg.smoothing_delay = d;
    std::vector<PlanCase> out;
    classify_plan(cfg, out);
    return out;
  };
  using PC = PlanCase;
  EXPECT_EQ(cases(32, 32, 8, 4), (std::vector<PC>{PC::Balanced}));
  EXPECT_EQ(cases(16, 32, 8, 4),
            (std::vector<PC>{PC::ServerBufferDeficit, PC::BufferMismatch}));
  EXPECT_EQ(cases(64, 32, 8, 4),
            (std::vector<PC>{PC::ServerBufferExcess, PC::BufferMismatch}));
  EXPECT_EQ(cases(32, 16, 8, 4),
            (std::vector<PC>{PC::ClientBufferDeficit, PC::BufferMismatch}));
  EXPECT_EQ(cases(32, 64, 8, 4),
            (std::vector<PC>{PC::ClientBufferExcess, PC::BufferMismatch}));
  EXPECT_EQ(cases(16, 64, 8, 4),
            (std::vector<PC>{PC::ServerBufferDeficit, PC::ClientBufferExcess,
                             PC::BufferMismatch}));
  EXPECT_STREQ(to_string(PC::Balanced), "balanced");
  EXPECT_STREQ(to_string(PC::BufferMismatch), "buffer_mismatch");
}

// -------------------------------------------------------------- the daemon

DaemonOptions balanced_options(Bytes rate, Time delay) {
  DaemonOptions opts;
  opts.engine.rate = rate;
  opts.engine.smoothing_delay = delay;
  opts.engine.server_buffer = rate * delay;
  opts.engine.client_buffer = rate * delay;
  opts.engine.link_delay = 1;
  opts.slo.enabled = false;
  opts.ladder.enabled = false;
  return opts;
}

TEST(Daemon, ServesBoundedGeneratorCleanly) {
  GeneratorConfig gen;
  gen.channels = 2;
  gen.mean_frame_bytes = 64;
  gen.max_frame_bytes = 256;
  gen.min_frame_bytes = 8;
  gen.seed = 5;
  gen.frames_per_channel = 500;
  DaemonOptions opts = balanced_options(/*rate=*/256, /*delay=*/4);
  Daemon daemon(opts, std::make_unique<GeneratorSource>(gen));

  EXPECT_EQ(daemon.serve(), 0);
  EXPECT_EQ(daemon.polled_frames(), 1000);
  EXPECT_TRUE(daemon.total_report().conserves());
  EXPECT_TRUE(daemon.ingest_ledger_conserves());
  const SimReport report = daemon.total_report();
  // A generously provisioned balanced plan plays every byte.
  EXPECT_EQ(report.played.bytes, daemon.polled_bytes());
  EXPECT_EQ(report.offered.bytes, daemon.polled_bytes());

  const obs::Json snap = daemon.snapshot();
  EXPECT_EQ(snap.at("schema").as_string(), "rtsmooth-soak-v1");
  EXPECT_TRUE(snap.at("daemon").at("balanced").as_bool());
  EXPECT_EQ(snap.at("ingest").at("polled_frames").as_int(), 1000);
  EXPECT_TRUE(snap.at("ingest").at("source_ended").as_bool());
  EXPECT_TRUE(snap.at("admission").at("ledger_conserves").as_bool());
  EXPECT_TRUE(snap.at("report").at("conserves").as_bool());
  EXPECT_EQ(snap.at("stop_signal").as_int(), 0);
}

TEST(Daemon, OverloadEscalatesAndWritesValidIncidents) {
  const std::string dir = ::testing::TempDir() + "rtsmoothd_overload";
  const std::string snap_path = dir + "/snapshot.json";
  const std::string incident_dir = dir + "/incidents";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  GeneratorConfig gen;
  gen.channels = 2;
  gen.mean_frame_bytes = 256;
  gen.max_frame_bytes = 512;
  gen.min_frame_bytes = 64;
  gen.seed = 11;
  DaemonOptions opts = balanced_options(/*rate=*/64, /*delay=*/4);
  opts.slo.enabled = true;
  opts.slo.window = 64;
  opts.slo.cooldown = 256;
  opts.ladder.enabled = true;
  opts.ladder.escalate_after = 32;
  opts.ladder.deescalate_after = 100000;
  opts.recorder.window = 64;
  opts.recorder.max_incidents = 4;
  opts.max_steps = 3000;
  opts.snapshot_path = snap_path;
  opts.incident_dir = incident_dir;
  Daemon daemon(opts, std::make_unique<GeneratorSource>(gen));

  EXPECT_EQ(daemon.serve(), 0);
  EXPECT_TRUE(daemon.total_report().conserves());
  EXPECT_TRUE(daemon.ingest_ledger_conserves());
  // ~512 offered bytes/step against a 64-byte link is sustained overload:
  // the watchdog must breach and the ladder must leave Normal.
  EXPECT_GT(daemon.watchdog().breaches().total(), 0);
  EXPECT_GE(daemon.ladder().rung(), 1);
  EXPECT_GE(daemon.ladder().escalations(), 1);

  ASSERT_GT(daemon.incidents_written(), 0);
  for (std::int64_t i = 0; i < daemon.incidents_written(); ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "incident_%04d.json",
                  static_cast<int>(i));
    std::ifstream in(incident_dir + "/" + name);
    ASSERT_TRUE(in.good()) << name;
    std::ostringstream text;
    text << in.rdbuf();
    const obs::Json incident = obs::Json::parse(text.str());
    EXPECT_EQ(incident.at("schema").as_string(), "rtsmooth-incident-v1");
    EXPECT_TRUE(incident.at("trigger").at("kind").as_string().rfind("slo.",
                                                                    0) == 0);
    EXPECT_GT(incident.at("window").size(), 0u);
  }

  std::ifstream snap_in(snap_path);
  ASSERT_TRUE(snap_in.good());
  std::ostringstream snap_text;
  snap_text << snap_in.rdbuf();
  const obs::Json snap = obs::Json::parse(snap_text.str());
  EXPECT_EQ(snap.at("schema").as_string(), "rtsmooth-soak-v1");
  EXPECT_TRUE(snap.at("admission").at("ledger_conserves").as_bool());
  EXPECT_EQ(snap.at("slo").at("incidents_written").as_int(),
            daemon.incidents_written());
  EXPECT_GE(snap.at("degradation").at("rung").as_int(), 1);
  std::filesystem::remove_all(dir);
}

TEST(Daemon, PipeStallTimeoutDeclaresSourceDead) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_NE(::fcntl(fds[0], F_SETFL, O_NONBLOCK), -1);

  DaemonOptions opts = balanced_options(/*rate=*/64, /*delay=*/2);
  opts.ingest.max_retries = 1;
  opts.ingest.retry_sleep_us = 0;
  opts.ingest.stall_timeout_steps = 5;
  Daemon daemon(opts, std::make_unique<PipeSource>(fds[0], 1));

  // Nobody ever writes: the daemon must give up after the stall timeout
  // instead of spinning forever.
  EXPECT_EQ(daemon.serve(), 0);
  const obs::Json snap = daemon.snapshot();
  EXPECT_TRUE(snap.at("ingest").at("timed_out").as_bool());
  EXPECT_TRUE(snap.at("ingest").at("source_ended").as_bool());
  EXPECT_GE(snap.at("ingest").at("stalled_polls").as_int(), 5);
  EXPECT_EQ(daemon.polled_frames(), 0);
  ::close(fds[1]);
}

TEST(Daemon, SignalHandlerRoutesToDaemon) {
  GeneratorConfig gen;
  gen.channels = 1;
  gen.mean_frame_bytes = 32;
  gen.max_frame_bytes = 64;
  gen.min_frame_bytes = 8;
  Daemon daemon(balanced_options(64, 2),
                std::make_unique<GeneratorSource>(gen));
  install_signal_handlers(daemon);
  std::raise(SIGTERM);
  EXPECT_EQ(daemon.stop_signal(), SIGTERM);
  EXPECT_EQ(daemon.serve(), 0);  // stops at the first step boundary
  EXPECT_EQ(daemon.snapshot().at("stop_signal").as_int(), SIGTERM);
}

TEST(Daemon, RequestStopMidRunDrainsCleanly) {
  GeneratorConfig gen;
  gen.channels = 2;
  gen.mean_frame_bytes = 64;
  gen.max_frame_bytes = 128;
  gen.min_frame_bytes = 16;
  gen.seed = 3;
  // Endless source: only the stop request ends this run.
  Daemon daemon(balanced_options(512, 4),
                std::make_unique<GeneratorSource>(gen));
  std::thread stopper([&daemon] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    daemon.request_stop(SIGTERM);
  });
  const int rc = daemon.serve();
  stopper.join();
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(daemon.stop_signal(), SIGTERM);
  EXPECT_GT(daemon.steps(), 0);
  EXPECT_TRUE(daemon.total_report().conserves());
  EXPECT_TRUE(daemon.ingest_ledger_conserves());
  EXPECT_EQ(daemon.total_report().residual.bytes, 0);
}

TEST(Daemon, RequestSnapshotWritesMidRunWithoutStopping) {
  const std::string dir = ::testing::TempDir() + "rtsmoothd_sighup";
  const std::string snap_path = dir + "/snapshot.json";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  GeneratorConfig gen;
  gen.channels = 2;
  gen.mean_frame_bytes = 64;
  gen.max_frame_bytes = 128;
  gen.min_frame_bytes = 16;
  gen.seed = 8;
  DaemonOptions opts = balanced_options(512, 4);
  opts.snapshot_path = snap_path;  // snapshot_every stays 0: only on demand
  // Endless source: only the stop request ends this run.
  Daemon daemon(opts, std::make_unique<GeneratorSource>(gen));

  std::thread hupper([&daemon, &snap_path] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    daemon.request_snapshot();  // what the SIGHUP handler calls
    // The forced snapshot lands at the next step boundary; the daemon
    // must keep serving long after it.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!std::filesystem::exists(snap_path) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(std::filesystem::exists(snap_path));
    EXPECT_EQ(daemon.stop_signal(), 0);  // still running
    daemon.request_stop(SIGTERM);
  });
  EXPECT_EQ(daemon.serve(), 0);
  hupper.join();

  // The shutdown snapshot overwrote the forced one; both came through the
  // same path, and the final document records the SIGHUP trigger.
  std::ifstream in(snap_path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const obs::Json doc = obs::Json::parse(text.str());
  EXPECT_EQ(doc.at("stop_signal").as_int(), SIGTERM);
  EXPECT_EQ(doc.at("registry")
                .at("counters")
                .at("daemon.snapshot.sighup")
                .as_int(),
            1);
}

TEST(Daemon, RejectsInvalidInitialConfig) {
  GeneratorConfig gen;
  DaemonOptions opts;
  opts.engine.rate = 0;  // invalid
  EXPECT_THROW(Daemon(opts, std::make_unique<GeneratorSource>(gen)),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtsmooth::daemon
