// Differential equivalence suite, three ways: the deque-based reference
// oracle in reference_core.h vs the optimized slot-stepped core (ring
// buffers, recycled piece vectors, monotone playout cursor — DESIGN.md
// Sect. 12) vs the event-driven core (core/event_engine.h).
//
// Every comparison goes through tests/differential.h, which checks the
// SimReport, the JSONL trace, and — between the two production engines —
// the Registry snapshot and FlightRecorder incident list byte-for-byte.
// Failures name the disagreeing engine pair and print a self-contained
// reproducer (seed, expanded SliceRuns, SimConfig) via
// testgen::describe_instance.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "differential.h"
#include "faults/fault_links.h"
#include "policies/policy_factory.h"
#include "random_instances.h"
#include "reference_core.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"
#include "util/rng.h"

namespace rtsmooth {
namespace {

void expect_equivalent(const Stream& stream, const sim::SimConfig& config,
                       std::string_view policy, std::uint64_t seed,
                       const difftest::LinkFactory& link = {},
                       const difftest::LinkFactory& oracle_link = {}) {
  const std::string reproducer =
      "policy=" + std::string(policy) + "\n" +
      testgen::describe_instance(seed, stream, config);
  difftest::expect_three_way(stream, config, policy, reproducer, link,
                             oracle_link);
}

constexpr std::uint64_t kSeedBase = 0x5eedc0de;
constexpr int kRandomRounds = 8;

// ---------------------------------------------------------------------------
// Lossless fixed-delay link, random instances × every registered policy.
// ---------------------------------------------------------------------------

class EquivalencePolicy : public ::testing::TestWithParam<std::string> {};

TEST_P(EquivalencePolicy, RandomStreamsLossless) {
  for (int round = 0; round < kRandomRounds; ++round) {
    const std::uint64_t seed = kSeedBase + static_cast<std::uint64_t>(round);
    Rng rng(seed);
    const Stream stream = testgen::random_stream(rng);
    const sim::SimConfig config = testgen::random_config(rng, stream);
    expect_equivalent(stream, config, GetParam(), seed);
    if (HasFailure()) return;  // one reproducer is enough
  }
}

TEST_P(EquivalencePolicy, RandomStreamsBoundedJitter) {
  for (int round = 0; round < kRandomRounds; ++round) {
    const std::uint64_t seed =
        kSeedBase + 1000 + static_cast<std::uint64_t>(round);
    Rng rng(seed);
    const Stream stream = testgen::random_stream(rng);
    sim::SimConfig config = testgen::random_config(rng, stream);
    const Time jitter = rng.uniform_int(1, 3);
    const std::uint64_t link_seed = seed ^ 0x9e3779b97f4a7c15ULL;
    expect_equivalent(
        stream, config, GetParam(), seed,
        [&config, jitter, link_seed] {
          return std::make_unique<BoundedJitterLink>(config.link_delay,
                                                     jitter, Rng(link_seed));
        },
        [&config, jitter, link_seed] {
          return std::make_unique<refcore::ReferenceBoundedJitterLink>(
              config.link_delay, jitter, Rng(link_seed));
        });
    if (HasFailure()) return;
  }
}

TEST_P(EquivalencePolicy, RandomStreamsErasureWithRecovery) {
  for (int round = 0; round < kRandomRounds; ++round) {
    const std::uint64_t seed =
        kSeedBase + 2000 + static_cast<std::uint64_t>(round);
    Rng rng(seed);
    const Stream stream = testgen::random_stream(rng);
    sim::SimConfig config = testgen::random_config(rng, stream);
    // Force the recovery path on so the retransmission queue — one of the
    // replaced deques — actually carries traffic.
    config.recovery.enabled = true;
    if (config.recovery.max_retries == 0) config.recovery.max_retries = 2;
    const double loss = 0.05 + 0.1 * rng.uniform01();
    const std::uint64_t link_seed = seed ^ 0xdeadbeefcafef00dULL;
    expect_equivalent(
        stream, config, GetParam(), seed,
        [&config, loss, link_seed] {
          return std::make_unique<faults::ErasureLink>(
              std::make_unique<FixedDelayLink>(config.link_delay), loss,
              Rng(link_seed));
        },
        [&config, loss, link_seed] {
          return std::make_unique<faults::ErasureLink>(
              std::make_unique<refcore::ReferenceFixedDelayLink>(
                  config.link_delay),
              loss, Rng(link_seed));
        });
    if (HasFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EquivalencePolicy,
                         ::testing::ValuesIn(known_policies()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Deterministic anchor: the benchmark workload (stock clip, balanced plan)
// across every policy — the exact configuration whose hot path the
// optimization targets.
// ---------------------------------------------------------------------------

TEST(Equivalence, StockClipBalancedPlanAllPolicies) {
  const Stream stream = trace::slice_frames(
      trace::stock_clip("cnn-news", 120), trace::ValueModel::mpeg_default(),
      trace::Slicing::ByteSlices);
  const Bytes rate = sim::relative_rate(stream, 0.9);
  const Plan plan = Planner::from_buffer_rate(2 * stream.max_frame_bytes(), rate);
  const sim::SimConfig config = sim::SimConfig::balanced(plan);
  for (const std::string& policy : known_policies()) {
    expect_equivalent(stream, config, policy, /*seed=*/0);
  }
}

// The Gilbert-Elliott chain exercises bursty loss: long NACK trains land in
// the retransmission queue in one step, which is where a ring-capacity bug
// would hide — and its lazily-replayed state machine is the event core's
// hardest RNG-consumption case (DESIGN.md Sect. 17).
TEST(Equivalence, StockClipGilbertElliottBurstLoss) {
  const Stream stream = trace::slice_frames(
      trace::stock_clip("cnn-news", 80), trace::ValueModel::mpeg_default(),
      trace::Slicing::ByteSlices);
  const Bytes rate = sim::relative_rate(stream, 0.9);
  const Plan plan = Planner::from_buffer_rate(2 * stream.max_frame_bytes(), rate);
  sim::SimConfig config = sim::SimConfig::balanced(plan);
  config.recovery.enabled = true;
  config.recovery.max_retries = 3;
  config.underflow = UnderflowPolicy::Stall;
  config.max_stall = 4;
  const faults::GilbertElliottConfig ge{.p_good_to_bad = 0.05,
                                        .p_bad_to_good = 0.4,
                                        .loss_good = 0.0,
                                        .loss_bad = 0.9};
  const std::uint64_t link_seed = 1234;
  expect_equivalent(
      stream, config, "tail-drop", /*seed=*/0,
      [&config, ge, link_seed] {
        return std::make_unique<faults::GilbertElliottLink>(
            std::make_unique<FixedDelayLink>(config.link_delay), ge,
            Rng(link_seed));
      },
      [&config, ge, link_seed] {
        return std::make_unique<faults::GilbertElliottLink>(
            std::make_unique<refcore::ReferenceFixedDelayLink>(
                config.link_delay),
            ge, Rng(link_seed));
      });
}

}  // namespace
}  // namespace rtsmooth
