// Unit tests for the links: constant-delay FIFO semantics (R(t) = S(t-P))
// and the bounded-jitter extension's FIFO clamp.

#include <gtest/gtest.h>

#include "core/link.h"
#include "stream_helpers.h"

namespace rtsmooth {
namespace {

using testing::stream_of;
using testing::units;

std::vector<SentPiece> piece_of(const Stream& s, std::size_t run_index,
                                Bytes bytes) {
  return {SentPiece{.run = &s.runs()[run_index],
                    .run_index = run_index,
                    .bytes = bytes,
                    .completed_slices = bytes}};
}

TEST(FixedDelayLink, DeliversExactlyPLater) {
  const Stream s = stream_of({units(0, 10)});
  FixedDelayLink link(3);
  link.submit(0, piece_of(s, 0, 4));
  EXPECT_TRUE(link.deliver(0).empty());
  EXPECT_TRUE(link.deliver(1).empty());
  EXPECT_TRUE(link.deliver(2).empty());
  const auto out = link.deliver(3);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].bytes, 4);
  EXPECT_TRUE(link.idle());
}

TEST(FixedDelayLink, ZeroDelayDeliversSameStep) {
  const Stream s = stream_of({units(0, 10)});
  FixedDelayLink link(0);
  link.submit(5, piece_of(s, 0, 2));
  EXPECT_EQ(link.deliver(5).size(), 1u);
}

TEST(FixedDelayLink, PreservesSubmissionOrder) {
  const Stream s = stream_of({units(0, 5), units(1, 5)});
  FixedDelayLink link(2);
  link.submit(0, piece_of(s, 0, 3));
  link.submit(1, piece_of(s, 1, 3));
  EXPECT_EQ(link.deliver(2).at(0).run_index, 0u);
  EXPECT_EQ(link.deliver(3).at(0).run_index, 1u);
}

TEST(FixedDelayLink, EmptySubmitKeepsIdle) {
  FixedDelayLink link(2);
  link.submit(0, {});
  EXPECT_TRUE(link.idle());
}

TEST(BoundedJitterLink, ZeroJitterMatchesFixedLink) {
  const Stream s = stream_of({units(0, 10)});
  BoundedJitterLink link(3, 0, Rng(1));
  link.submit(0, piece_of(s, 0, 4));
  EXPECT_TRUE(link.deliver(2).empty());
  EXPECT_EQ(link.deliver(3).size(), 1u);
}

TEST(BoundedJitterLink, DelayWithinBounds) {
  const Stream s = stream_of({units(0, 1000)});
  const Time p = 2;
  const Time j = 4;
  BoundedJitterLink link(p, j, Rng(5));
  for (Time t = 0; t < 100; ++t) link.submit(t, piece_of(s, 0, 1));
  Bytes got = 0;
  for (Time t = 0; t < 200; ++t) {
    for (const auto& piece : link.deliver(t)) {
      got += piece.bytes;
      // Delay is at least P; the upper bound can exceed P+J only through
      // the FIFO clamp, which itself is bounded by earlier batches' P+J.
      EXPECT_GE(t, p);
    }
  }
  EXPECT_EQ(got, 100);
  EXPECT_TRUE(link.idle());
}

TEST(BoundedJitterLink, FifoPreservedUnderMaximalJitter) {
  // J larger than the whole submission window: any un-clamped draw could
  // reorder any pair of batches, so this exercises the clamp on every step.
  const Stream s = stream_of({units(0, 1000)});
  BoundedJitterLink link(1, /*max_jitter=*/80, Rng(13));
  for (Time t = 0; t < 50; ++t) {
    link.submit(t, {SentPiece{.run = &s.runs()[0],
                              .run_index = static_cast<std::size_t>(t),
                              .bytes = 1,
                              .completed_slices = 1}});
  }
  std::vector<std::size_t> order;
  for (Time t = 0; t < 200; ++t) {
    for (const auto& piece : link.deliver(t)) order.push_back(piece.run_index);
  }
  ASSERT_EQ(order.size(), 50u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_TRUE(link.idle());
}

TEST(BoundedJitterLink, ClampKeepsPerBatchDeliveryTimesMonotone) {
  // The last_delivery_ clamp must make delivery time a non-decreasing
  // function of submission order, for every seed we try.
  const Stream s = stream_of({units(0, 1000)});
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    BoundedJitterLink link(2, 6, Rng(seed));
    for (Time t = 0; t < 40; ++t) {
      link.submit(t, {SentPiece{.run = &s.runs()[0],
                                .run_index = static_cast<std::size_t>(t),
                                .bytes = 1,
                                .completed_slices = 1}});
    }
    std::vector<Time> delivery_of(40, -1);
    for (Time t = 0; t < 100; ++t) {
      for (const auto& piece : link.deliver(t)) {
        delivery_of[piece.run_index] = t;
        EXPECT_GE(t - static_cast<Time>(piece.run_index), 2);  // >= P
        EXPECT_LE(t - static_cast<Time>(piece.run_index), 2 + 6);  // <= P+J
      }
    }
    EXPECT_TRUE(std::is_sorted(delivery_of.begin(), delivery_of.end()))
        << "seed " << seed;
    EXPECT_TRUE(link.idle());
  }
}

TEST(BoundedJitterLink, FifoPreservedUnderJitter) {
  const Stream s = stream_of({units(0, 1000)});
  BoundedJitterLink link(1, 7, Rng(9));
  for (Time t = 0; t < 50; ++t) {
    link.submit(t, {SentPiece{.run = &s.runs()[0],
                              .run_index = static_cast<std::size_t>(t),
                              .bytes = 1,
                              .completed_slices = 1}});
  }
  std::vector<std::size_t> order;
  for (Time t = 0; t < 100; ++t) {
    for (const auto& piece : link.deliver(t)) order.push_back(piece.run_index);
  }
  ASSERT_EQ(order.size(), 50u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

}  // namespace
}  // namespace rtsmooth
