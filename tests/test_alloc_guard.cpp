// Zero-allocation guard for the simulator hot path (DESIGN.md Sect. 12).
//
// A counting global `operator new` measures heap allocations inside
// SmoothingSimulator::run(). The property is *marginal*, not absolute:
// warm-up may allocate (ring growth to steady capacity, vector reserves),
// but after warm-up each step must be allocation-free. On a periodic
// stream, a run of 2T frames performs the identical warm-up as a run of T
// frames and then executes T further steady-state steps — so
//
//     allocs(T frames) == allocs(2T frames)
//
// holds iff the marginal per-step allocation count is exactly zero. This
// is immune to the usual flakiness of "allocs < K" thresholds and fails
// loudly if anyone reintroduces a per-step std::deque node, a fresh output
// vector, or a string lookup in the loop.
//
// The guard runs with telemetry off and with the Registry + FlightRecorder
// attached (cached-pointer instruments and the recorder ring must also be
// allocation-free per step). The JSONL tracer is exempt by design — it
// builds strings.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/planner.h"
#include "core/slice.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"

// AddressSanitizer owns operator new/delete (and its allocator changes what
// allocates when); a counting replacement that forwards to malloc/free trips
// its alloc-dealloc-mismatch checker. The guard is a plain-build property —
// compiled out and skipped under ASan.
#if defined(__SANITIZE_ADDRESS__)
#define RTSMOOTH_ALLOC_GUARD_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RTSMOOTH_ALLOC_GUARD_DISABLED 1
#endif
#endif

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_news{0};

#ifndef RTSMOOTH_ALLOC_GUARD_DISABLED
void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_news.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
#endif

}  // namespace

#ifndef RTSMOOTH_ALLOC_GUARD_DISABLED
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace rtsmooth {
namespace {

/// Identical frame every step: the 2T-frame stream's first T steps match
/// the T-frame run exactly, so warm-up allocations cancel in the
/// allocs(T) == allocs(2T) comparison.
Stream periodic_stream(Time frames) {
  std::vector<SliceRun> runs;
  runs.reserve(static_cast<std::size_t>(frames));
  for (Time f = 0; f < frames; ++f) {
    SliceRun run;
    run.arrival = f;
    run.slice_size = 1;
    run.count = 40;
    run.weight = (f % 3 == 0) ? 3.0 : 1.0;
    run.frame_type = static_cast<FrameType>(f % 4);
    run.frame_index = f;
    runs.push_back(run);
  }
  return Stream::from_runs(std::move(runs));
}

/// Balanced plan (B = R*D, client-transparent per Lemmas 3.3/3.4) but
/// oversubscribed (40 bytes/step offered vs rate 30), so the shed path —
/// the policy templates plus ServerBuffer::drop_slices — runs every step,
/// not just push/send. Balance matters: invariant *violations* are allowed
/// to allocate (incident forensics builds JSON by design), so the guard
/// must measure a violation-free steady state — and asserts it got one.
sim::SimConfig guard_config() {
  return sim::SimConfig::balanced(Planner::from_buffer_rate(60, 30));
}

std::size_t count_run_allocs(Time frames, std::string_view policy,
                             obs::Registry* registry,
                             obs::FlightRecorder* recorder) {
  const Stream stream = periodic_stream(frames);
  sim::SimConfig config = guard_config();
  config.telemetry.registry = registry;
  config.telemetry.recorder = recorder;
  sim::SmoothingSimulator simulator(stream, config, make_policy(policy));
  g_news.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  const SimReport report = simulator.run();
  g_counting.store(false, std::memory_order_relaxed);
  const std::size_t allocs = g_news.load(std::memory_order_relaxed);
  EXPECT_TRUE(report.conserves());
  EXPECT_GT(report.played.bytes, 0);
  EXPECT_GT(report.dropped_server.bytes, 0)
      << "config no longer oversubscribes; the shed path is not exercised";
  EXPECT_EQ(report.invariants.total(), 0)
      << "violations fire the (allocation-exempt) forensics path; the guard "
         "needs a violation-free run to measure the hot path";
  return allocs;
}

class AllocGuard : public ::testing::TestWithParam<std::string> {};

TEST_P(AllocGuard, SteadyStateStepIsAllocationFree) {
#ifdef RTSMOOTH_ALLOC_GUARD_DISABLED
  GTEST_SKIP() << "allocation counting disabled under AddressSanitizer";
#endif
  const std::size_t base = count_run_allocs(300, GetParam(), nullptr, nullptr);
  const std::size_t doubled =
      count_run_allocs(600, GetParam(), nullptr, nullptr);
  EXPECT_EQ(base, doubled)
      << "the extra 300 steps allocated " << (doubled - base)
      << " times: the hot path is no longer allocation-free after warm-up";
}

TEST_P(AllocGuard, SteadyStateStepIsAllocationFreeWithTelemetry) {
#ifdef RTSMOOTH_ALLOC_GUARD_DISABLED
  GTEST_SKIP() << "allocation counting disabled under AddressSanitizer";
#endif
  // Fresh instruments per run: the registry's first-touch name lookups and
  // the recorder ring fill are warm-up, identical across both runs.
  obs::Registry registry_base;
  obs::FlightRecorder recorder_base({.window = 32});
  const std::size_t base =
      count_run_allocs(300, GetParam(), &registry_base, &recorder_base);
  obs::Registry registry_doubled;
  obs::FlightRecorder recorder_doubled({.window = 32});
  const std::size_t doubled =
      count_run_allocs(600, GetParam(), &registry_doubled, &recorder_doubled);
  EXPECT_EQ(base, doubled)
      << "the extra 300 steps allocated " << (doubled - base)
      << " times with telemetry attached";
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, AllocGuard,
                         ::testing::ValuesIn(known_policies()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace rtsmooth
