// Unit tests for the generic server algorithm: Eq. (2) work-conserving
// sends, Eq. (3) overflow drops, FIFO order, Lemma 3.2's occupancy and
// sojourn bounds.

#include <gtest/gtest.h>

#include "core/generic_algorithm.h"
#include "policies/policy_factory.h"
#include "policies/proactive_threshold.h"
#include "policies/tail_drop.h"
#include "stream_helpers.h"

namespace rtsmooth {
namespace {

using testing::stream_of;
using testing::units;

std::vector<SentPiece> run_step(SmoothingServer& server, Time t,
                                const Stream& stream, ArrivalCursor& cursor,
                                SimReport& report,
                                ScheduleRecorder* rec = nullptr) {
  (void)stream;
  if (rec != nullptr) rec->begin_step(t);
  return server.step(t, cursor.step(t), report, rec);
}

TEST(GenericAlgorithm, SendsAtFullRateWhileBacklogged) {
  const Stream s = stream_of({units(0, 10)});
  SmoothingServer server(ServerConfig{.buffer = 10, .rate = 3},
                         std::make_unique<TailDropPolicy>());
  ArrivalCursor cursor(s);
  SimReport report;
  Bytes sent_total = 0;
  for (Time t = 0; t < 4; ++t) {
    std::vector<SentPiece> pieces =
        run_step(server, t, s, cursor, report);
    Bytes sent = 0;
    for (const auto& piece : pieces) sent += piece.bytes;
    sent_total += sent;
    EXPECT_EQ(sent, t < 3 ? 3 : 1);  // 3,3,3 then the last byte
  }
  EXPECT_EQ(sent_total, 10);
  EXPECT_TRUE(server.buffer().empty());
  EXPECT_EQ(report.dropped_server.bytes, 0);
}

TEST(GenericAlgorithm, Equation2UsesPreDropOccupancy) {
  // Arrival of 12 with B=4, R=2: S = min(2, 12) = 2, D = 12 - 2 - 4 = 6.
  const Stream s = stream_of({units(0, 12)});
  SmoothingServer server(ServerConfig{.buffer = 4, .rate = 2},
                         std::make_unique<TailDropPolicy>());
  ArrivalCursor cursor(s);
  SimReport report;
  const auto pieces = run_step(server, 0, s, cursor, report);
  Bytes sent = 0;
  for (const auto& piece : pieces) sent += piece.bytes;
  EXPECT_EQ(sent, 2);
  EXPECT_EQ(report.dropped_server.bytes, 6);
  EXPECT_EQ(server.buffer().occupancy(), 4);
}

TEST(GenericAlgorithm, NoDropWithoutOverflow) {
  const Stream s = stream_of({units(0, 5), units(1, 5)});
  SmoothingServer server(ServerConfig{.buffer = 8, .rate = 1},
                         std::make_unique<TailDropPolicy>());
  ArrivalCursor cursor(s);
  SimReport report;
  run_step(server, 0, s, cursor, report);  // 5 arrive, 1 sent, 4 left
  run_step(server, 1, s, cursor, report);  // 9 pre-drop, 1 sent, 8 kept
  EXPECT_EQ(report.dropped_server.bytes, 0);
  EXPECT_EQ(server.buffer().occupancy(), 8);
}

TEST(GenericAlgorithm, OccupancyNeverExceedsB) {
  // Lemma 3.2 part 1: |Bs(t)| <= B under any arrivals.
  const Stream s = stream_of({units(0, 20), units(1, 15), units(3, 30)});
  SmoothingServer server(ServerConfig{.buffer = 7, .rate = 2},
                         std::make_unique<TailDropPolicy>());
  ArrivalCursor cursor(s);
  SimReport report;
  for (Time t = 0; t < 12; ++t) {
    run_step(server, t, s, cursor, report);
    EXPECT_LE(server.buffer().occupancy(), 7);
  }
  EXPECT_EQ(report.max_server_occupancy, 7);
}

TEST(GenericAlgorithm, SojournBoundedByBOverR) {
  // Lemma 3.2 part 2: a byte transmitted leaves within B/R steps of arrival.
  const Stream s = stream_of({units(0, 12), units(2, 6), units(5, 9)});
  const Bytes b = 6;
  const Bytes r = 2;
  SmoothingServer server(ServerConfig{.buffer = b, .rate = r},
                         std::make_unique<TailDropPolicy>());
  ArrivalCursor cursor(s);
  SimReport report;
  ScheduleRecorder rec(s.run_count());
  for (Time t = 0; t < 20; ++t) run_step(server, t, s, cursor, report, &rec);
  for (std::size_t i = 0; i < s.run_count(); ++i) {
    const RunOutcome& out = rec.run(i);
    if (out.last_send == kNever) continue;
    EXPECT_LE(out.last_send, s.runs()[i].arrival + b / r);
  }
}

TEST(GenericAlgorithm, FifoOrderAcrossRuns) {
  const Stream s = stream_of({units(0, 3), units(1, 3), units(2, 3)});
  SmoothingServer server(ServerConfig{.buffer = 16, .rate = 2},
                         std::make_unique<TailDropPolicy>());
  ArrivalCursor cursor(s);
  SimReport report;
  std::vector<std::size_t> order;
  for (Time t = 0; t < 8; ++t) {
    for (const auto& piece : run_step(server, t, s, cursor, report)) {
      order.push_back(piece.run_index);
    }
  }
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(GenericAlgorithm, DropCountIsPolicyIndependentForUnitSlices) {
  // The Eq. (3) drop *count* does not depend on which slices the policy
  // picks (unit slices) — the crux of Theorem 3.5's genericity.
  const Stream s = stream_of({units(0, 9, 1.0), units(1, 9, 5.0),
                              units(2, 9, 2.0), units(4, 9, 9.0)});
  std::vector<Bytes> dropped;
  for (const auto& name : known_policies()) {
    SimReport report;
    SmoothingServer server(ServerConfig{.buffer = 5, .rate = 2},
                           make_policy(name));
    ArrivalCursor cursor(s);
    for (Time t = 0; t < 25; ++t) run_step(server, t, s, cursor, report);
    dropped.push_back(report.dropped_server.bytes);
  }
  for (std::size_t i = 1; i < dropped.size(); ++i) {
    // The proactive policy may legitimately drop *more* (it drops early);
    // every pure-overflow policy must lose exactly the same byte count.
    if (known_policies()[i] == "proactive") continue;
    EXPECT_EQ(dropped[i], dropped[0]) << known_policies()[i];
  }
}

TEST(GenericAlgorithm, EarlyDropsAreAccountedToTheReport) {
  // The proactive policy drops before arrivals; those drops must flow
  // through the same observer-based accounting as overflow drops.
  const Stream s = stream_of({units(0, 8, 1.0), units(1, 2, 9.0)});
  auto policy = std::make_unique<ProactiveThresholdPolicy>(
      ProactiveConfig{.watermark = 0.25, .value_floor = 2.0});
  SmoothingServer server(ServerConfig{.buffer = 8, .rate = 1},
                         std::move(policy));
  ArrivalCursor cursor(s);
  SimReport report;
  ScheduleRecorder rec(s.run_count());
  // Step 0: 8 cheap arrive, no early state yet; 1 sent, 7 held (no
  // overflow: 8 <= B + s). Step 1: early drop fires first (7 > 2 = 0.25*8),
  // shedding 5 cheap slices down to the watermark.
  rec.begin_step(0);
  server.step(0, cursor.step(0), report, &rec);
  EXPECT_EQ(report.dropped_server.bytes, 0);
  rec.begin_step(1);
  server.step(1, cursor.step(1), report, &rec);
  EXPECT_EQ(report.dropped_server.bytes, 5);
  EXPECT_DOUBLE_EQ(report.dropped_server.weight, 5.0);
  EXPECT_EQ(rec.run(0).dropped_server, 5);
  EXPECT_EQ(rec.run(1).dropped_server, 0);  // the dear slices survive
}

TEST(GenericAlgorithm, ResidualAccounting) {
  const Stream s = stream_of({units(0, 6)});
  SmoothingServer server(ServerConfig{.buffer = 8, .rate = 1},
                         std::make_unique<TailDropPolicy>());
  ArrivalCursor cursor(s);
  SimReport report;
  run_step(server, 0, s, cursor, report);  // sent 1, 5 remain
  server.account_residual(report);
  EXPECT_EQ(report.residual.bytes, 5);
  EXPECT_EQ(report.residual.slices, 5);
}

}  // namespace
}  // namespace rtsmooth
