// Live broadcast: drive the server/link/client components step by step, the
// way an on-line system would — no global Stream pre-registered with a
// simulator, just frames showing up one slot at a time.
//
// This example uses the lower-level core API directly (SmoothingServer,
// FixedDelayLink, Client) to show what the SmoothingSimulator wires up for
// you, and prints a live "dashboard" every second of stream time.
//
// Run:  ./examples/live_broadcast

#include <cstdio>
#include <iostream>

#include "core/client.h"
#include "core/generic_algorithm.h"
#include "core/link.h"
#include "core/planner.h"
#include "policies/greedy_drop.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"
#include "util/stats.h"

int main() {
  using namespace rtsmooth;

  // A live feed: the encoder hands us 25 frames per second; we provision a
  // 1-second end-to-end smoothing delay and a link at 90% of the *expected*
  // rate (for live content the true average is unknown in advance).
  const std::size_t seconds = 40;
  const trace::FrameSequence frames =
      trace::stock_clip("action", 25 * seconds);
  const Stream stream = trace::slice_frames(
      frames, trace::ValueModel::mpeg_default(), trace::Slicing::ByteSlices);

  const Bytes expected_rate = 36 * 1024;  // capacity bought from the carrier
  const Plan plan = Planner::from_delay_rate(/*delay=*/25, expected_rate);
  const Time link_delay = 3;  // 120 ms propagation

  SmoothingServer server(
      ServerConfig{.buffer = plan.buffer, .rate = plan.rate},
      std::make_unique<GreedyDropPolicy>());
  FixedDelayLink link(link_delay);
  Client client(stream, plan.buffer, link_delay + plan.delay);

  std::cout << "live feed: 25 fps, greedy dropping, R = "
            << format_bytes(static_cast<double>(plan.rate)) << "/frame, D = "
            << plan.delay << " frames, B = "
            << format_bytes(static_cast<double>(plan.buffer)) << "\n\n"
            << "  sec |  offered |   played | srv-buf%% | wloss%%\n"
            << "  ----+----------+----------+----------+-------\n";

  SimReport report;
  ArrivalCursor cursor(stream);
  const Time horizon = stream.horizon();
  const Time last = horizon + link_delay + plan.delay;
  for (Time t = 0; t <= last; ++t) {
    auto pieces = server.step(t, cursor.step(t), report, nullptr);
    link.submit(t, std::move(pieces));
    const auto delivered = link.deliver(t);
    client.deliver(t, delivered, report, nullptr);
    client.play(t, report, nullptr);
    if (t % (25 * 5) == 0 && t > 0) {
      std::printf("  %3lld | %7.1fMB | %7.1fMB | %7.1f%% | %5.2f%%\n",
                  static_cast<long long>(t / 25),
                  static_cast<double>(report.offered.bytes) / (1 << 20),
                  static_cast<double>(report.played.bytes) / (1 << 20),
                  100.0 * static_cast<double>(server.buffer().occupancy()) /
                      static_cast<double>(plan.buffer),
                  100.0 * report.weighted_loss());
    }
  }
  client.finalize(report);
  server.account_residual(report);

  std::cout << "\nfinal: " << report << "\n"
            << "conservation check: "
            << (report.conserves() ? "ok" : "VIOLATED") << "\n";
  return 0;
}
