// Trace inspector: profile a frame trace the way a capacity planner would
// before choosing smoothing parameters — aggregate statistics, burstiness,
// the empirical rate envelope, and the lossless peak-rate-vs-delay table
// (what delay budget buys at each buffer size).
//
// Run:  ./examples/trace_inspector [trace-file-or-clip-name] [frames]
//       ./examples/trace_inspector --incident FILE [--chrome-out PATH]
//
// The --incident mode reads an `rtsmooth-incident-v1` flight-recorder
// report (see obs/flight_recorder.h), prints the trigger and the recorded
// window, and with --chrome-out converts the window into a
// chrome://tracing / Perfetto timeline.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lossless/cumulative.h"
#include "lossless/delay_optimizer.h"
#include "obs/chrome_trace.h"
#include "obs/json.h"
#include "trace/stock_clips.h"
#include "trace/trace_io.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

constexpr const char* kUsage =
    "usage: trace_inspector [trace-file-or-clip-name] [frames]\n"
    "       trace_inspector --incident FILE [--chrome-out PATH]";

int inspect_incident(const std::string& path, const std::string& chrome_out) {
  using namespace rtsmooth;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const obs::Json incident = obs::Json::parse(text.str());

  const obs::Json* schema = incident.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "rtsmooth-incident-v1") {
    std::cerr << path << " is not an rtsmooth-incident-v1 document\n";
    return 1;
  }
  const obs::Json& trigger = incident.at("trigger");
  std::cout << "incident #" << incident.at("incident").as_int() << " from "
            << path << "\n  trigger  " << trigger.at("type").as_string();
  if (const obs::Json* kind = trigger.find("kind")) {
    std::cout << " (" << kind->as_string() << ", magnitude "
              << trigger.at("magnitude").as_int() << ")";
  }
  std::cout << " at t=" << trigger.at("t").as_int() << "\n  context  ";
  std::cout << incident.at("context").dump() << "\n";

  const obs::Json& window = incident.at("window");
  std::cout << "  window   " << window.size() << " steps (capacity "
            << incident.at("window_capacity").as_int() << ", truncated: "
            << (incident.at("truncated").as_bool() ? "yes" : "no") << ")\n\n";

  Table steps({"t", "arrived", "sent", "delivered", "played", "drop.srv",
               "drop.cli", "retx", "occ.srv", "occ.cli", "stalled"});
  for (std::size_t i = 0; i < window.size(); ++i) {
    const obs::Json& s = window.at(i);
    steps.add_row({std::to_string(s.at("t").as_int()),
                   std::to_string(s.at("arrived").as_int()),
                   std::to_string(s.at("sent").as_int()),
                   std::to_string(s.at("delivered").as_int()),
                   std::to_string(s.at("played").as_int()),
                   std::to_string(s.at("dropped_server").as_int()),
                   std::to_string(s.at("dropped_client").as_int()),
                   std::to_string(s.at("retransmitted").as_int()),
                   std::to_string(s.at("server_occupancy").as_int()),
                   std::to_string(s.at("client_occupancy").as_int()),
                   s.at("stalled").as_bool() ? "yes" : ""});
  }
  steps.print(std::cout);

  if (!chrome_out.empty()) {
    const obs::Json trace = obs::chrome_trace_from_incident(incident);
    std::ofstream out(chrome_out);
    out << trace.dump() << "\n";
    if (!out) {
      std::cerr << "failed to write " << chrome_out << "\n";
      return 1;
    }
    std::cout << "\nchrome trace (" << trace.size() << " events) written to "
              << chrome_out
              << " — open in chrome://tracing or ui.perfetto.dev\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtsmooth;

  if (argc > 1 && std::strcmp(argv[1], "--incident") == 0) {
    if (argc < 3) cli::usage_exit(kUsage);
    std::string chrome_out;
    if (argc > 4 && std::strcmp(argv[3], "--chrome-out") == 0) {
      chrome_out = argv[4];
    }
    return inspect_incident(argv[2], chrome_out);
  }

  if (argc > 3) cli::usage_exit(kUsage);
  const std::string source = argc > 1 ? argv[1] : "cnn-news";
  const std::size_t max_frames =
      argc > 2 ? static_cast<std::size_t>(
                     cli::require_int(argv[2], "frames", kUsage, 1, 10000000))
               : 3000;

  trace::FrameSequence frames;
  try {
    frames = trace::stock_clip(source, max_frames);
  } catch (const std::invalid_argument&) {
    frames = trace::read_trace_file(source);
    if (frames.size() > max_frames) frames.resize(max_frames);
  }
  const trace::TraceStats stats = trace::compute_stats(frames);

  std::cout << "trace '" << source << "': " << stats.frames << " frames\n"
            << "  total        "
            << format_bytes(static_cast<double>(stats.total_bytes)) << "\n"
            << "  mean frame   " << format_bytes(stats.mean_frame_bytes)
            << "\n"
            << "  max frame    "
            << format_bytes(static_cast<double>(stats.max_frame_bytes))
            << "\n"
            << "  I/P/B        "
            << Table::pct(stats.frequency_i, 1) << " / "
            << Table::pct(stats.frequency_p, 1) << " / "
            << Table::pct(stats.frequency_b, 1) << "\n"
            << "  type means   " << format_bytes(stats.mean_i) << " / "
            << format_bytes(stats.mean_p) << " / "
            << format_bytes(stats.mean_b) << "\n";

  std::vector<double> sizes;
  sizes.reserve(frames.size());
  for (const trace::Frame& f : frames) {
    sizes.push_back(static_cast<double>(f.size));
  }
  std::cout << "  p50/p95/p99  " << format_bytes(percentile(sizes, 0.50))
            << " / " << format_bytes(percentile(sizes, 0.95)) << " / "
            << format_bytes(percentile(sizes, 0.99)) << "\n"
            << "  lag-1 autocorrelation of frame sizes: "
            << Table::num(autocorrelation_lag1(sizes), 3) << "\n\n";

  const auto arrivals = lossless::CumulativeCurve::from_frames(frames);
  std::cout << "rate envelope (max average over a window):\n";
  Table envelope({"window(frames)", "peak rate"});
  for (Time w : {1, 5, 25, 125, 625}) {
    envelope.add_row({std::to_string(w),
                      format_bytes(arrivals.peak_window_rate(w)) + "/slot"});
  }
  envelope.print(std::cout);

  std::cout << "\nlossless peak rate (KB/slot) by delay and client buffer "
               "(taut-string optimal):\n";
  Table lossless_table(
      {"buffer", "D=1", "D=5", "D=25", "D=125", "kneeDelay"});
  for (Bytes buffer_kb : {128, 512, 2048}) {
    std::vector<std::string> row = {std::to_string(buffer_kb) + "KB"};
    for (Time d : {1, 5, 25, 125}) {
      row.push_back(Table::num(
          lossless::min_peak_for_delay(arrivals, d, buffer_kb * 1024) / 1024,
          1));
    }
    const auto knee =
        lossless::optimal_initial_delay(arrivals, buffer_kb * 1024);
    row.push_back(std::to_string(knee.delay));
    lossless_table.add_row(std::move(row));
  }
  lossless_table.print(std::cout);
  std::cout << "\nreading: pick (buffer, delay) on the plateau; provisioning "
               "below that rate requires the lossy model (see "
               "capacity_planner).\n";
  return 0;
}
