// Trace inspector: profile a frame trace the way a capacity planner would
// before choosing smoothing parameters — aggregate statistics, burstiness,
// the empirical rate envelope, and the lossless peak-rate-vs-delay table
// (what delay budget buys at each buffer size).
//
// Run:  ./examples/trace_inspector [trace-file-or-clip-name] [frames]

#include <iostream>
#include <string>
#include <vector>

#include "lossless/cumulative.h"
#include "lossless/delay_optimizer.h"
#include "trace/stock_clips.h"
#include "trace/trace_io.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rtsmooth;

  const std::string source = argc > 1 ? argv[1] : "cnn-news";
  const std::size_t max_frames =
      argc > 2 ? static_cast<std::size_t>(std::stoull(argv[2])) : 3000;

  trace::FrameSequence frames;
  try {
    frames = trace::stock_clip(source, max_frames);
  } catch (const std::invalid_argument&) {
    frames = trace::read_trace_file(source);
    if (frames.size() > max_frames) frames.resize(max_frames);
  }
  const trace::TraceStats stats = trace::compute_stats(frames);

  std::cout << "trace '" << source << "': " << stats.frames << " frames\n"
            << "  total        "
            << format_bytes(static_cast<double>(stats.total_bytes)) << "\n"
            << "  mean frame   " << format_bytes(stats.mean_frame_bytes)
            << "\n"
            << "  max frame    "
            << format_bytes(static_cast<double>(stats.max_frame_bytes))
            << "\n"
            << "  I/P/B        "
            << Table::pct(stats.frequency_i, 1) << " / "
            << Table::pct(stats.frequency_p, 1) << " / "
            << Table::pct(stats.frequency_b, 1) << "\n"
            << "  type means   " << format_bytes(stats.mean_i) << " / "
            << format_bytes(stats.mean_p) << " / "
            << format_bytes(stats.mean_b) << "\n";

  std::vector<double> sizes;
  sizes.reserve(frames.size());
  for (const trace::Frame& f : frames) {
    sizes.push_back(static_cast<double>(f.size));
  }
  std::cout << "  p50/p95/p99  " << format_bytes(percentile(sizes, 0.50))
            << " / " << format_bytes(percentile(sizes, 0.95)) << " / "
            << format_bytes(percentile(sizes, 0.99)) << "\n"
            << "  lag-1 autocorrelation of frame sizes: "
            << Table::num(autocorrelation_lag1(sizes), 3) << "\n\n";

  const auto arrivals = lossless::CumulativeCurve::from_frames(frames);
  std::cout << "rate envelope (max average over a window):\n";
  Table envelope({"window(frames)", "peak rate"});
  for (Time w : {1, 5, 25, 125, 625}) {
    envelope.add_row({std::to_string(w),
                      format_bytes(arrivals.peak_window_rate(w)) + "/slot"});
  }
  envelope.print(std::cout);

  std::cout << "\nlossless peak rate (KB/slot) by delay and client buffer "
               "(taut-string optimal):\n";
  Table lossless_table(
      {"buffer", "D=1", "D=5", "D=25", "D=125", "kneeDelay"});
  for (Bytes buffer_kb : {128, 512, 2048}) {
    std::vector<std::string> row = {std::to_string(buffer_kb) + "KB"};
    for (Time d : {1, 5, 25, 125}) {
      row.push_back(Table::num(
          lossless::min_peak_for_delay(arrivals, d, buffer_kb * 1024) / 1024,
          1));
    }
    const auto knee =
        lossless::optimal_initial_delay(arrivals, buffer_kb * 1024);
    row.push_back(std::to_string(knee.delay));
    lossless_table.add_row(std::move(row));
  }
  lossless_table.print(std::cout);
  std::cout << "\nreading: pick (buffer, delay) on the plateau; provisioning "
               "below that rate requires the lossy model (see "
               "capacity_planner).\n";
  return 0;
}
