// Video-on-demand policy comparison: given a stored clip (a trace file or a
// stock clip name), sweep every registered drop policy across buffer sizes
// and print weighted loss side by side with the off-line optimum — the tool
// an operator would use to pick a policy and a buffer size for a catalogue.
//
// Run:  ./examples/vod_policy_comparison [trace-file-or-clip-name] [frames]
//       ./examples/vod_policy_comparison action 1500

#include <iostream>
#include <string>

#include "policies/policy_factory.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"
#include "trace/trace_io.h"
#include "util/cli.h"
#include "util/table.h"

namespace {
constexpr const char* kUsage =
    "usage: vod_policy_comparison [trace-file-or-clip-name] [frames]";
}

int main(int argc, char** argv) {
  using namespace rtsmooth;

  if (argc > 3) cli::usage_exit(kUsage);
  const std::string source = argc > 1 ? argv[1] : "cnn-news";
  const std::size_t frames =
      argc > 2 ? static_cast<std::size_t>(
                     cli::require_int(argv[2], "frames", kUsage, 1, 10000000))
               : 1500;

  trace::FrameSequence sequence;
  try {
    sequence = trace::stock_clip(source, frames);
  } catch (const std::invalid_argument&) {
    sequence = trace::read_trace_file(source);  // not a stock name: a file
    if (sequence.size() > frames) sequence.resize(frames);
  }
  const Stream stream =
      trace::slice_frames(sequence, trace::ValueModel::mpeg_default(),
                          trace::Slicing::ByteSlices);

  const Bytes rate = sim::relative_rate(stream, 0.9);
  std::cout << "clip '" << source << "': " << sequence.size()
            << " frames; link at 90% of average rate; weighted loss by "
               "policy and buffer size\n\n";

  const std::vector<std::string> policies = known_policies();
  std::vector<std::string> header = {"buffer(xMaxFrame)", "delay(frames)"};
  for (const auto& p : policies) header.push_back(p);
  header.push_back("offline-optimal");
  Table table(header);

  const auto result =
      sim::sweep(stream, sim::SweepSpec{.axis = sim::SweepAxis::BufferMultiple,
                                        .values = {1, 2, 4, 8, 16},
                                        .policies = policies,
                                        .with_optimal = true,
                                        .rate = rate});
  for (const auto& point : result.points) {
    std::vector<std::string> row = {Table::num(point.x, 0),
                                    std::to_string(point.plan.delay)};
    for (const auto& outcome : point.policies) {
      row.push_back(Table::pct(outcome.report.weighted_loss()));
    }
    row.push_back(Table::pct(point.optimal.weighted_loss));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nreading: pick the smallest buffer whose greedy column is "
               "within your quality budget;\nthe offline-optimal column "
               "bounds what any drop policy could achieve.\n";
  return 0;
}
