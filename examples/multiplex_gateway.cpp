// Multiplexing gateway: an aggregation point (e.g. a cable head-end)
// carries several live channels over one uplink. The paper's introduction
// lists statistical multiplexing and smoothing as alternatives — this
// example shows they compose: smooth the *aggregate*, and the uplink needs
// far less than the sum of individually-provisioned channels.
//
// Run:  ./examples/multiplex_gateway [channels] [frames]

#include <iostream>
#include <string>
#include <vector>

#include "alternatives/strategies.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/mpeg_model.h"
#include "trace/slicer.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {
constexpr const char* kUsage =
    "usage: multiplex_gateway [channels (1..64)] [frames (1..100000)]";
}

int main(int argc, char** argv) {
  using namespace rtsmooth;

  if (argc > 3) cli::usage_exit(kUsage);
  const std::size_t channels =
      argc > 1 ? static_cast<std::size_t>(
                     cli::require_int(argv[1], "channels", kUsage, 1, 64))
               : 6;
  const std::size_t frames =
      argc > 2 ? static_cast<std::size_t>(
                     cli::require_int(argv[2], "frames", kUsage, 1, 100000))
               : 750;
  const Time delay = 25;  // one second at 25 fps
  const double budget = 0.01;

  std::cout << "gateway with " << channels << " live channels, " << frames
            << " frames each, 1s smoothing delay, loss budget 1%\n\n";

  // Each channel is an independent MPEG source (different seed).
  std::vector<Stream> streams;
  Bytes sum_alone = 0;
  Table table({"channel", "avgKB/slot", "peakKB", "aloneNeedsKB"});
  for (std::uint64_t k = 0; k < channels; ++k) {
    trace::MpegTraceModel model(trace::MpegModelConfig{}, 7000 + 13 * k);
    streams.push_back(trace::slice_frames(model.generate(frames),
                                          trace::ValueModel::mpeg_default(),
                                          trace::Slicing::ByteSlices));
    const Bytes alone =
        alternatives::min_rate_for_loss(streams.back(), delay, budget);
    sum_alone += alone;
    table.add_row({std::to_string(k),
                   Table::num(streams.back().average_rate() / 1024, 1),
                   Table::num(static_cast<double>(
                                  streams.back().max_frame_bytes()) / 1024, 1),
                   Table::num(static_cast<double>(alone) / 1024, 1)});
  }
  table.print(std::cout);

  const Stream aggregate =
      alternatives::merge_streams(streams);
  const Bytes together =
      alternatives::min_rate_for_loss(aggregate, delay, budget);

  std::cout << "\nper-channel provisioning: "
            << format_bytes(static_cast<double>(sum_alone))
            << "/slot total\n"
            << "shared uplink (smoothed aggregate): "
            << format_bytes(static_cast<double>(together)) << "/slot  ("
            << Table::num(100.0 * (1.0 - static_cast<double>(together) /
                                             static_cast<double>(sum_alone)),
                          1)
            << "% saved)\n\n";

  // Sanity: run the aggregate at the shared rate and show the report.
  const Plan plan = Planner::from_delay_rate(delay, together);
  const SimReport report = sim::simulate(aggregate, plan, "greedy");
  std::cout << "aggregate run at the shared rate: weighted loss "
            << Table::num(100.0 * report.weighted_loss(), 2)
            << "%, server buffer high-water "
            << format_bytes(static_cast<double>(report.max_server_occupancy))
            << " of " << format_bytes(static_cast<double>(plan.buffer))
            << "\n";
  return 0;
}
