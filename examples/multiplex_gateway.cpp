// Multiplexing gateway: one shared uplink of rate R serves many concurrent
// streams, each its own paper-style smoothing configuration (per-stream
// buffer B_i = r_i * D_i) under a weighted link-sharing policy. This is a
// thin driver over src/gateway/ — it builds a GatewayConfig, joins a mixed
// population of gold/silver/bronze streams, churns a slice of them mid-run,
// and prints the ledger.
//
// Run:  ./examples/multiplex_gateway [streams] [steps] [policy]
//       policy: static | weighted-share | priority
//
// The link is provisioned at 70% of the population's summed nominal rate,
// so `static` (no redistribution) visibly loses bytes that `weighted-share`
// (work-conserving) saves — the statistical-multiplexing gain the paper's
// introduction points at.

#include <iostream>
#include <string>
#include <vector>

#include "gateway/gateway.h"
#include "obs/telemetry.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {
constexpr const char* kUsage =
    "usage: multiplex_gateway [streams (1..1000000)] [steps (1..10000000)] "
    "[static|weighted-share|priority]";

/// Stream i of the demo population: three service tiers with different
/// nominal rates, deadlines, and arrival shapes.
rtsmooth::gateway::StreamSpec demo_stream(std::size_t i) {
  using rtsmooth::gateway::ArrivalModel;
  using rtsmooth::gateway::StreamSpec;
  const std::size_t tier = i % 3;
  switch (tier) {
    case 0:  // gold: high-rate VBR video, tight deadline
      return StreamSpec{.rate = 96,
                        .deadline = 8,
                        .weight_class = 0,
                        .arrivals = ArrivalModel::vbr(64, 0x9000 + i)};
    case 1:  // silver: mid-rate VBR, roomier deadline
      return StreamSpec{.rate = 48,
                        .deadline = 16,
                        .weight_class = 1,
                        .arrivals = ArrivalModel::vbr(32, 0x5000 + i)};
    default:  // bronze: bursty on/off background traffic
      return StreamSpec{.rate = 24,
                        .deadline = 32,
                        .weight_class = 2,
                        .arrivals =
                            ArrivalModel::on_off(64, 2, 6, 0xB000 + i)};
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtsmooth;

  if (argc > 4) cli::usage_exit(kUsage);
  const std::size_t streams =
      argc > 1 ? static_cast<std::size_t>(
                     cli::require_int(argv[1], "streams", kUsage, 1, 1000000))
               : 96;
  const Time steps =
      argc > 2 ? cli::require_int(argv[2], "steps", kUsage, 1, 10000000)
               : 600;
  gateway::SharePolicy policy = gateway::SharePolicy::WeightedShare;
  if (argc > 3) {
    const auto parsed = gateway::parse_share_policy(argv[3]);
    if (!parsed) {
      std::cerr << "unknown sharing policy: " << argv[3] << "\n";
      cli::usage_exit(kUsage);
    }
    policy = *parsed;
  }

  // Size the uplink below the summed nominal rates: multiplexing gain is
  // the whole point of sharing the link.
  Bytes subscribed = 0;
  for (std::size_t i = 0; i < streams; ++i) subscribed += demo_stream(i).rate;
  const Bytes rate = std::max<Bytes>(1, subscribed * 7 / 10);

  obs::Registry registry;
  gateway::Gateway gw(gateway::GatewayConfig{
      .rate = rate,
      .class_weights = {12.0, 8.0, 1.0},  // the paper's I:P:B values as tiers
      .sharing = policy,
      .admission = gateway::AdmissionPolicy::AcceptAll,
      .telemetry = obs::Telemetry{.registry = &registry}});

  std::vector<gateway::StreamId> ids;
  ids.reserve(streams);
  for (std::size_t i = 0; i < streams; ++i) {
    ids.push_back(*gw.add_stream(demo_stream(i)));
  }

  std::cout << "gateway: " << streams << " streams over one "
            << format_bytes(static_cast<double>(rate)) << "/step uplink ("
            << Table::num(100.0 * static_cast<double>(subscribed) /
                              static_cast<double>(rate),
                          0)
            << "% subscribed), policy " << gateway::to_string(policy) << ", "
            << steps << " steps\n\n";

  // First half steady, then churn: every 7th stream leaves and a
  // replacement joins, mid-run — the ledger must balance through it.
  gw.run(steps / 2);
  std::size_t churned = 0;
  for (std::size_t i = 0; i < ids.size(); i += 7) {
    if (gw.remove_stream(ids[i])) {
      gw.add_stream(demo_stream(streams + i));
      ++churned;
    }
  }
  gw.run(steps - steps / 2);

  const gateway::GatewayReport report = gw.report();
  Table table({"class", "admitted", "served", "dropped", "unserved"});
  const char* names[] = {"gold", "silver", "bronze"};
  for (std::size_t k = 0; k < report.by_class.size(); ++k) {
    const gateway::ClassTotals& c = report.by_class[k];
    table.add_row({names[k],
                   format_bytes(static_cast<double>(c.admitted)),
                   format_bytes(static_cast<double>(c.served)),
                   format_bytes(static_cast<double>(c.dropped)),
                   format_bytes(static_cast<double>(c.unserved))});
  }
  table.print(std::cout);

  std::cout << "\nchurned " << churned << " streams mid-run ("
            << report.joins << " joins, " << report.leaves << " leaves)\n"
            << "weighted loss "
            << Table::num(100.0 * report.weighted_loss(
                              gw.config().class_weights),
                          2)
            << "%, byte loss "
            << Table::num(100.0 * report.byte_loss(), 2)
            << "%, peak backlog "
            << format_bytes(static_cast<double>(report.max_backlog))
            << ", peak link use "
            << format_bytes(static_cast<double>(report.max_step_served))
            << "/step of " << format_bytes(static_cast<double>(rate))
            << "\nledger conserves: "
            << (report.conserves() ? "yes" : "NO — BUG") << ", violations "
            << report.violations << "\n";
  return report.conserves() && report.violations == 0 ? 0 : 1;
}
