// Lossy channel: smooth a clip over a link that actually misbehaves.
//
// The paper's channel (Sect. 2) never loses a byte; Sect. 6 leaves faulty
// links open. This example walks the fault subsystem end to end:
//   1. wrap the constant-delay link in an ErasureLink (5% i.i.d. loss),
//   2. let the server's recovery path NACK and retransmit what can still
//      make its playout deadline,
//   3. compare the client's two degradation modes (skip vs. stall),
//   4. read the InvariantMonitor's verdict on the Lemma 3.2-3.4 guarantees.
//
// The unrecovered run is the forensics showcase: it flies a FlightRecorder,
// so its first Lemma 3.3 violation freezes the trailing step window into an
// `rtsmooth-incident-v1` report (--incident), and its JSONL trace converts
// to a chrome://tracing / Perfetto timeline (--chrome-trace).
//
// Run:  ./examples/lossy_channel [loss-probability]
//                                [--incident PATH] [--chrome-trace PATH]

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/planner.h"
#include "faults/fault_links.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/trace_writer.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"
#include "util/cli.h"
#include "util/stats.h"

namespace {
constexpr const char* kUsage =
    "usage: lossy_channel [loss-probability (0..1)]\n"
    "                     [--incident PATH] [--chrome-trace PATH]";
}

int main(int argc, char** argv) {
  using namespace rtsmooth;

  double loss = 0.05;
  std::string incident_path;
  std::string chrome_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--incident") == 0 && i + 1 < argc) {
      incident_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      chrome_path = argv[++i];
    } else {
      loss = cli::require_double(argv[i], "loss-probability", kUsage, 0.0, 1.0);
    }
  }

  // Whole-frame slices so a lost piece leaves a *partial* frame at the
  // client — the case where stall and skip genuinely differ.
  const Stream stream = trace::slice_frames(
      trace::stock_clip("cnn-news", 1500), trace::ValueModel::mpeg_default(),
      trace::Slicing::WholeFrame);
  const Bytes rate = sim::relative_rate(stream, 1.1);
  const Plan plan = Planner::from_buffer_rate(4 * stream.max_frame_bytes(),
                                              rate);
  std::cout << "erasure probability " << loss * 100 << "%, R = "
            << format_bytes(static_cast<double>(plan.rate)) << "/step, D = "
            << plan.delay << " steps\n\n";

  auto run_one = [&](const char* label, bool recover,
                     UnderflowPolicy underflow, obs::Telemetry telemetry) {
    sim::SimConfig config = sim::SimConfig::balanced(plan);
    config.underflow = underflow;
    config.recovery.enabled = recover;  // NACK + deadline-aware retransmit
    config.telemetry = telemetry;
    const SimReport report = sim::simulate(
        stream, config, "greedy",
        std::make_unique<faults::ErasureLink>(config.link_delay, loss,
                                              Rng(2026)));
    std::cout << label << ":\n"
              << "  weighted loss   " << report.weighted_loss() * 100 << "%\n"
              << "  written off     "
              << format_bytes(static_cast<double>(report.lost_link.bytes))
              << "\n  retransmitted   "
              << format_bytes(static_cast<double>(report.retransmitted_bytes))
              << "\n  rebuffer steps  " << report.stall_steps
              << "\n  lemma 3.2-3.4 violations  "
              << report.invariants.total() << "\n";
  };

  // The unrecovered run carries the forensics instruments. The recorder's
  // 64-step window keeps the incident small enough to read whole; the
  // tracer's JSONL feeds the Chrome-trace exporter.
  obs::FlightRecorder recorder(
      obs::FlightRecorderConfig{.window = 64, .max_incidents = 1});
  std::ostringstream jsonl;
  obs::TraceWriter tracer(jsonl);
  run_one("no recovery, skip", false, UnderflowPolicy::Skip,
          obs::Telemetry{.tracer = &tracer, .recorder = &recorder});
  run_one("recovery, skip", true, UnderflowPolicy::Skip, {});
  run_one("recovery, stall", true, UnderflowPolicy::Stall, {});

  std::cout << "\nflight recorder: " << recorder.triggers_total()
            << " triggers, " << recorder.incidents().size()
            << " incident(s) captured\n";

  if (!incident_path.empty()) {
    if (recorder.incidents().empty()) {
      std::cerr << "no incident captured (loss too low?); nothing to write to "
                << incident_path << "\n";
      return 1;
    }
    obs::FlightRecorder::write_incident(recorder.incidents().front(),
                                        incident_path);
    std::cout << "incident report written to " << incident_path << "\n";
  }
  if (!chrome_path.empty()) {
    std::istringstream events(jsonl.str());
    const obs::Json trace = obs::chrome_trace_from_jsonl(events);
    std::ofstream out(chrome_path);
    out << trace.dump() << "\n";
    if (!out) {
      std::cerr << "failed to write " << chrome_path << "\n";
      return 1;
    }
    std::cout << "chrome trace (" << trace.size()
              << " events) written to " << chrome_path
              << " — open in chrome://tracing or ui.perfetto.dev\n";
  }
  return 0;
}
