// Lossy channel: smooth a clip over a link that actually misbehaves.
//
// The paper's channel (Sect. 2) never loses a byte; Sect. 6 leaves faulty
// links open. This example walks the fault subsystem end to end:
//   1. wrap the constant-delay link in an ErasureLink (5% i.i.d. loss),
//   2. let the server's recovery path NACK and retransmit what can still
//      make its playout deadline,
//   3. compare the client's two degradation modes (skip vs. stall),
//   4. read the InvariantMonitor's verdict on the Lemma 3.2-3.4 guarantees.
//
// Run:  ./examples/lossy_channel [loss-probability]

#include <cstdlib>
#include <iostream>

#include "core/planner.h"
#include "faults/fault_links.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace rtsmooth;

  const double loss = argc > 1 ? std::atof(argv[1]) : 0.05;

  // Whole-frame slices so a lost piece leaves a *partial* frame at the
  // client — the case where stall and skip genuinely differ.
  const Stream stream = trace::slice_frames(
      trace::stock_clip("cnn-news", 1500), trace::ValueModel::mpeg_default(),
      trace::Slicing::WholeFrame);
  const Bytes rate = sim::relative_rate(stream, 1.1);
  const Plan plan = Planner::from_buffer_rate(4 * stream.max_frame_bytes(),
                                              rate);
  std::cout << "erasure probability " << loss * 100 << "%, R = "
            << format_bytes(static_cast<double>(plan.rate)) << "/step, D = "
            << plan.delay << " steps\n\n";

  auto run_one = [&](const char* label, bool recover,
                     UnderflowPolicy underflow) {
    sim::SimConfig config = sim::SimConfig::balanced(plan);
    config.underflow = underflow;
    config.recovery.enabled = recover;  // NACK + deadline-aware retransmit
    const SimReport report = sim::simulate(
        stream, config, "greedy",
        std::make_unique<faults::ErasureLink>(config.link_delay, loss,
                                              Rng(2026)));
    std::cout << label << ":\n"
              << "  weighted loss   " << report.weighted_loss() * 100 << "%\n"
              << "  written off     "
              << format_bytes(static_cast<double>(report.lost_link.bytes))
              << "\n  retransmitted   "
              << format_bytes(static_cast<double>(report.retransmitted_bytes))
              << "\n  rebuffer steps  " << report.stall_steps
              << "\n  lemma 3.2-3.4 violations  "
              << report.invariants.total() << "\n";
  };

  run_one("no recovery, skip", false, UnderflowPolicy::Skip);
  run_one("recovery, skip", true, UnderflowPolicy::Skip);
  run_one("recovery, stall", true, UnderflowPolicy::Stall);
  return 0;
}
