# CTest driver for the incident-forensics pipeline (see examples/CMakeLists
# for the variables): lossy_channel injects a Lemma 3.3 violation and writes
# an incident + Chrome trace, the schema validator must accept the incident,
# and trace_inspector must read it back and convert it.

set(incident "${WORK_DIR}/incident_e2e.json")
set(chrome "${WORK_DIR}/chrome_e2e.json")
set(chrome_from_incident "${WORK_DIR}/chrome_e2e_incident.json")

execute_process(
  COMMAND "${LOSSY_CHANNEL}" 0.3 --incident "${incident}"
          --chrome-trace "${chrome}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lossy_channel failed (${rc})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${VALIDATOR}" "${incident}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "incident failed schema validation (${rc})")
endif()

execute_process(
  COMMAND "${TRACE_INSPECTOR}" --incident "${incident}"
          --chrome-out "${chrome_from_incident}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace_inspector --incident failed (${rc})")
endif()

foreach(trace "${chrome}" "${chrome_from_incident}")
  if(NOT EXISTS "${trace}")
    message(FATAL_ERROR "missing Chrome trace ${trace}")
  endif()
  file(READ "${trace}" content LIMIT 8)
  if(NOT content MATCHES "^\\[")
    message(FATAL_ERROR "${trace} is not a trace_event JSON array")
  endif()
endforeach()
