// Capacity planner: the Sect. 3.3 setup protocol as a CLI. Give any two of
//   --buffer BYTES   --delay STEPS   --rate BYTES_PER_STEP
// and it derives the third from B = D*R, then validates the plan against a
// reference clip: measured loss at the plan, plus what happens if you
// mis-size each parameter (the Sect. 3.3 observations, quantified).
//
// Run:  ./examples/capacity_planner --rate 35000 --delay 40
//       ./examples/capacity_planner --buffer 2000000 --rate 40000

#include <cstdint>
#include <iostream>
#include <optional>
#include <string>

#include "core/planner.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace rtsmooth;

constexpr const char* kUsage =
    "usage: capacity_planner (two of) --buffer B --delay D --rate R";

SimReport run_config(const Stream& stream, Bytes buffer, Bytes client_buffer,
                     Bytes rate, Time delay) {
  sim::SimConfig config{.server_buffer = buffer,
                        .client_buffer = client_buffer,
                        .rate = rate,
                        .smoothing_delay = delay,
                        .link_delay = 1};
  sim::SmoothingSimulator simulator(stream, config, make_policy("greedy"));
  return simulator.run();
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<Bytes> buffer;
  std::optional<Time> delay;
  std::optional<Bytes> rate;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--buffer" && i + 1 < argc)
      buffer = cli::require_int(argv[++i], "--buffer", kUsage, 1);
    else if (arg == "--delay" && i + 1 < argc)
      delay = cli::require_int(argv[++i], "--delay", kUsage, 1);
    else if (arg == "--rate" && i + 1 < argc)
      rate = cli::require_int(argv[++i], "--rate", kUsage, 1);
    else
      cli::usage_exit(kUsage);
  }
  const int given = (buffer ? 1 : 0) + (delay ? 1 : 0) + (rate ? 1 : 0);
  if (given != 2) {
    std::cerr << "exactly two of --buffer/--delay/--rate must be given\n";
    return 2;
  }

  Plan plan;
  if (delay && rate) plan = Planner::from_delay_rate(*delay, *rate);
  else if (buffer && rate) plan = Planner::from_buffer_rate(*buffer, *rate);
  else plan = Planner::from_buffer_delay(*buffer, *delay);

  std::cout << "plan (B = D*R): buffer "
            << format_bytes(static_cast<double>(plan.buffer)) << " each side, "
            << "delay " << plan.delay << " steps, rate "
            << format_bytes(static_cast<double>(plan.rate)) << "/step\n";
  std::cout << "guarantee: minimal loss among all schedules with this buffer "
               "and rate (Thm 3.5, unit slices)\n\n";

  // Validate on the reference clip.
  const Stream stream = trace::slice_frames(
      trace::stock_clip("cnn-news", 1500), trace::ValueModel::mpeg_default(),
      trace::Slicing::ByteSlices);
  if (plan.buffer < stream.max_frame_bytes()) {
    std::cout << "note: buffer smaller than the clip's largest frame ("
              << format_bytes(static_cast<double>(stream.max_frame_bytes()))
              << ") — expect heavy loss.\n";
  }
  std::cout << "validation on the cnn-news reference clip (avg rate "
            << format_bytes(stream.average_rate()) << "/step):\n\n";

  Table table({"configuration", "weightedLoss", "serverDrop", "clientLoss"});
  auto add = [&](const std::string& label, const SimReport& report) {
    table.add_row({label, Table::pct(report.weighted_loss()),
                   Table::pct(static_cast<double>(report.dropped_server.bytes) /
                              static_cast<double>(report.offered.bytes)),
                   Table::pct(static_cast<double>(
                                  report.dropped_client_overflow.bytes +
                                  report.dropped_client_late.bytes) /
                              static_cast<double>(report.offered.bytes))});
  };
  add("as planned (B = D*R)",
      run_config(stream, plan.buffer, plan.buffer, plan.rate, plan.delay));
  add("delay halved (B > D*R: wasted space)",
      run_config(stream, plan.buffer, plan.buffer, plan.rate,
                 std::max<Time>(1, plan.delay / 2)));
  add("buffer halved (B < D*R: avoidable loss)",
      run_config(stream, std::max(plan.buffer / 2, stream.max_frame_bytes()),
                 plan.buffer, plan.rate, plan.delay));
  add("client buffer halved (client overflow)",
      run_config(stream, plan.buffer,
                 std::max<Bytes>(1, plan.buffer / 2), plan.rate, plan.delay));
  table.print(std::cout);
  return 0;
}
