// Quickstart: smooth a VBR video clip over a constant-rate link.
//
// Walks the happy path of the public API in five steps:
//   1. get a frame trace (synthetic MPEG here; trace::read_trace_file works
//      for real traces),
//   2. cut it into slices and attach the 12:8:1 MPEG value model,
//   3. size the system with the paper's B = D*R rule (Planner),
//   4. simulate with a drop policy,
//   5. read the report.
//
// Run:  ./examples/quickstart

#include <iostream>

#include "core/planner.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"
#include "util/stats.h"

int main() {
  using namespace rtsmooth;

  // 1. A 2-minute news clip (25 fps): one frame per time slot.
  const trace::FrameSequence frames = trace::stock_clip("cnn-news", 3000);
  const trace::TraceStats stats = trace::compute_stats(frames);
  std::cout << "clip: " << stats.frames << " frames, mean "
            << format_bytes(stats.mean_frame_bytes) << ", max "
            << format_bytes(static_cast<double>(stats.max_frame_bytes))
            << ", I/P/B = " << static_cast<int>(stats.frequency_i * 100)
            << "/" << static_cast<int>(stats.frequency_p * 100) << "/"
            << static_cast<int>(stats.frequency_b * 100) << "%\n";

  // 2. Byte-granularity slices, valued 12:8:1 by frame type.
  const Stream stream = trace::slice_frames(
      frames, trace::ValueModel::mpeg_default(), trace::Slicing::ByteSlices);

  // 3. Provision the link 5% below the average rate (so smoothing has to
  //    work), then derive the buffer from a 2-second delay budget: B = D*R.
  const Bytes rate = sim::relative_rate(stream, 0.95);
  const Plan plan = Planner::from_delay_rate(/*delay=*/50, rate);
  std::cout << "plan: R = " << format_bytes(static_cast<double>(plan.rate))
            << "/step, D = " << plan.delay << " steps, B = D*R = "
            << format_bytes(static_cast<double>(plan.buffer)) << "\n\n";

  // 4.+5. Simulate the generic algorithm with two drop policies.
  for (const char* policy : {"tail-drop", "greedy"}) {
    const SimReport report = sim::simulate(stream, plan, policy);
    std::cout << policy << ":\n"
              << "  weighted loss  " << report.weighted_loss() * 100 << "%\n"
              << "  byte loss      " << report.byte_loss() * 100 << "%\n"
              << "  server drops   "
              << format_bytes(static_cast<double>(report.dropped_server.bytes))
              << "\n  client drops   "
              << format_bytes(static_cast<double>(
                     report.dropped_client_overflow.bytes +
                     report.dropped_client_late.bytes))
              << "  (zero, as Lemmas 3.3/3.4 promise at B = RD)\n";
  }
  return 0;
}
