// Ablation — value models vs actual decodability (paper Sect. 2.1 remarks
// that fidelity "does not degrade linearly with the quantity of lost data";
// Sect. 5 approximates it with static 12:8:1 weights). This bench scores
// schedules by MPEG *decodable frames* and compares three value models
// driving the Greedy policy:
//   throughput      every byte worth 1 (weight-blind),
//   mpeg-12-8-1     the paper's static weighting,
//   dependency      per-frame fan-out pricing (trace/dependency.h).
// Plus Tail-Drop as the policy baseline.

#include <iostream>

#include "bench_common.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/dependency.h"

namespace {

using namespace rtsmooth;

struct Scored {
  double decodable = 0.0;
  double goodput = 0.0;
  double weighted_loss = 0.0;
};

Scored score(const trace::FrameSequence& frames, const Stream& stream,
             const Plan& plan, const char* policy, obs::Telemetry telemetry) {
  sim::SimConfig config = sim::SimConfig::balanced(plan);
  config.telemetry = telemetry;
  sim::SmoothingSimulator simulator(stream, config, make_policy(policy));
  ScheduleRecorder rec(stream.run_count());
  const SimReport report = simulator.run(&rec);
  const auto dep = trace::analyze_decodability(
      frames, trace::delivered_bytes_per_frame(stream, rec, frames.size()));
  return Scored{.decodable = dep.decodable_fraction(),
                .goodput = dep.goodput_fraction(),
                .weighted_loss = report.weighted_loss()};
}

int run(const bench::BenchOptions& opts) {
  const std::size_t frames_n =
      opts.frames ? opts.frames : (opts.quick ? 300 : 1500);
  const trace::FrameSequence frames =
      trace::stock_clip("cnn-news", frames_n);
  const Stream throughput = trace::slice_frames(
      frames, trace::ValueModel::throughput(), trace::Slicing::ByteSlices);
  const Stream mpeg = trace::slice_frames(
      frames, trace::ValueModel::mpeg_default(), trace::Slicing::ByteSlices);
  const Stream aware = trace::slice_frames_with_values(
      frames, trace::dependency_aware_values(frames),
      trace::Slicing::ByteSlices);

  std::cout << "abl_dependency — decodable-frame fraction by value model "
               "(buffer = 2 x max frame)\n"
            << "clip: cnn-news, " << frames_n << " frames\n\n";
  bench::Series series{.header = {"rate(xAvg)", "policy+values",
                                  "decodableFrames", "goodputBytes"}};
  struct Variant {
    const char* label;
    const Stream* stream;
    const char* policy;
  };
  const Variant variants[] = {
      {"tail-drop", &mpeg, "tail-drop"},
      {"greedy/throughput", &throughput, "greedy"},
      {"greedy/mpeg-12-8-1", &mpeg, "greedy"},
      {"greedy/dependency", &aware, "greedy"},
  };
  constexpr std::size_t kVariantCount = std::size(variants);
  const std::vector<double> rels = {0.7, 0.8, 0.9, 1.0};
  sim::RunStats stats;
  bench::JsonReport json("abl_dependency", opts);
  obs::Registry reg;
  bench::TaskTelemetry telemetry(json.enabled(), rels.size() * kVariantCount);
  sim::ParallelRunner runner(opts.threads);
  const auto scores = runner.map<Scored>(
      rels.size() * kVariantCount,
      [&](std::size_t i) {
        const Variant& v = variants[i % kVariantCount];
        const Bytes rate = sim::relative_rate(mpeg, rels[i / kVariantCount]);
        const Plan plan =
            Planner::from_buffer_rate(2 * mpeg.max_frame_bytes(), rate);
        return score(frames, *v.stream, plan, v.policy, telemetry.at(i));
      },
      &stats);
  telemetry.merge_into(reg);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    series.add({Table::num(rels[i / kVariantCount], 1),
                variants[i % kVariantCount].label,
                Table::pct(scores[i].decodable),
                Table::pct(scores[i].goodput)});
  }
  series.emit(opts);
  json.add_series("value_models", series);
  json.write(stats, reg);
  bench::print_run_stats(stats);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
