// Theory table 3 — the lossless-smoothing context (paper Sect. 1 and
// related work): quantifies the introduction's motivating claim that "one
// can significantly reduce the peak bandwidth using only a relatively
// modest amount of space without unbearable delay", and positions the
// paper's lossy model against the lossless alternatives it cites.
//
//  (a) peak-rate reduction grid: taut-string optimal peak rate vs
//      (startup delay, client buffer) — Salehi et al. [16];
//  (b) on-line window convergence — Rexford et al. [14];
//  (c) optimal initial delay knee — Zhao et al. [23];
//  (d) lossless vs lossy: the rate lossless needs, vs Greedy's weighted
//      loss when the link is provisioned below it — the tradeoff the lossy
//      model exists to exploit.

#include <iostream>

#include "bench_common.h"
#include "lossless/delay_optimizer.h"
#include "lossless/online_window.h"
#include "lossless/taut_string.h"
#include "sim/simulator.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;
using lossless::CumulativeCurve;
using lossless::live_walls;
using lossless::taut_string;

void part_a_grid(const CumulativeCurve& arrivals,
                 const bench::BenchOptions& opts, sim::RunStats* stats,
                 bench::JsonReport* json) {
  std::cout << "(a) lossless peak rate (KB/slot) vs startup delay and "
               "client buffer; unsmoothed peak = "
            << Table::num(static_cast<double>(arrivals.peak_increment()) /
                              1024.0, 1)
            << " KB, average = "
            << Table::num(static_cast<double>(arrivals.total()) /
                              static_cast<double>(arrivals.length()) / 1024.0,
                          1)
            << " KB\n\n";
  bench::Series series{.header = {"buffer", "D=1", "D=5", "D=25", "D=125"}};
  const std::vector<Bytes> buffers_kb = {120, 480, 1920, 7680};
  constexpr Time kDelays[] = {1, 5, 25, 125};
  constexpr std::size_t kDelayCount = std::size(kDelays);
  sim::ParallelRunner runner(opts.threads);
  const auto peaks = runner.map<double>(
      buffers_kb.size() * kDelayCount,
      [&](std::size_t i) {
        return lossless::min_peak_for_delay(
            arrivals, kDelays[i % kDelayCount],
            buffers_kb[i / kDelayCount] * 1024);
      },
      stats);
  for (std::size_t b = 0; b < buffers_kb.size(); ++b) {
    std::vector<std::string> row = {std::to_string(buffers_kb[b]) + "KB"};
    for (std::size_t d = 0; d < kDelayCount; ++d) {
      row.push_back(Table::num(peaks[b * kDelayCount + d] / 1024.0, 1));
    }
    series.add(std::move(row));
  }
  series.emit(opts);
  if (json != nullptr) json->add_series("peak_rate_grid", series);
}

void part_b_online(const CumulativeCurve& arrivals, unsigned threads,
                   sim::RunStats* stats, bench::JsonReport* json) {
  const lossless::SmoothingWalls walls = live_walls(arrivals, 25, 2 << 20);
  const double offline = taut_string(walls.lower, walls.upper).peak_rate;
  std::cout << "\n(b) on-line window convergence (delay 25, buffer 2 MB): "
               "peak rate vs lookahead window\n\n";
  bench::Series series{
      .header = {"window", "peak(drain)", "peak(prefetch)", "xOffline"}};
  const std::vector<Time> windows = {Time{5},   Time{15},  Time{50},
                                     Time{150}, Time{500}, arrivals.length() +
                                                               25};
  struct Row {
    double drain = 0.0;
    double prefetch = 0.0;
  };
  sim::ParallelRunner runner(threads);
  const auto rows = runner.map<Row>(
      windows.size(),
      [&](std::size_t i) {
        return Row{.drain = lossless::online_smooth(
                                walls, windows[i],
                                lossless::BlockAnchor::Drain)
                                .peak_rate,
                   .prefetch = lossless::online_smooth(
                                   walls, windows[i],
                                   lossless::BlockAnchor::Prefetch)
                                   .peak_rate};
      },
      stats);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    series.add(
        {std::to_string(windows[i]), Table::num(rows[i].drain / 1024.0, 1),
         Table::num(rows[i].prefetch / 1024.0, 1),
         Table::num(std::min(rows[i].drain, rows[i].prefetch) / offline, 3)});
  }
  series.emit(bench::BenchOptions{});
  if (json != nullptr) json->add_series("online_window", series);
  std::cout << "    offline optimum: " << Table::num(offline / 1024.0, 1)
            << " KB/slot\n";
}

void part_c_knee(const CumulativeCurve& arrivals, unsigned threads,
                 sim::RunStats* stats, bench::JsonReport* json) {
  std::cout << "\n(c) optimal initial delay (Zhao et al.): smallest delay "
               "after which more delay buys nothing\n\n";
  bench::Series series{.header = {"buffer", "peak(D=0)", "floor", "kneeDelay"}};
  const std::vector<Bytes> buffers_kb = {120, 480, 1920};
  sim::ParallelRunner runner(threads);
  const auto knees = runner.map<lossless::DelayKnee>(
      buffers_kb.size(),
      [&](std::size_t i) {
        return lossless::optimal_initial_delay(arrivals,
                                               buffers_kb[i] * 1024);
      },
      stats);
  for (std::size_t i = 0; i < buffers_kb.size(); ++i) {
    series.add({std::to_string(buffers_kb[i]) + "KB",
                Table::num(knees[i].peak_at_zero / 1024.0, 1),
                Table::num(knees[i].peak_rate / 1024.0, 1),
                std::to_string(knees[i].delay)});
  }
  series.emit(bench::BenchOptions{});
  if (json != nullptr) json->add_series("delay_knee", series);
}

void part_d_lossy_vs_lossless(const Stream& stream,
                              const CumulativeCurve& arrivals,
                              unsigned threads, sim::RunStats* stats,
                              bench::JsonReport* json, obs::Registry* reg) {
  const Time delay = 25;
  const Bytes buffer = 2 << 20;
  const double lossless_rate =
      lossless::min_peak_for_delay(arrivals, delay, buffer);
  std::cout << "\n(d) lossless vs lossy at delay " << delay
            << ", buffer 2 MB: lossless needs "
            << Table::num(lossless_rate / 1024.0, 1)
            << " KB/slot; Greedy's weighted loss below that rate\n\n";
  bench::Series series{
      .header = {"rate(xLossless)", "rate(KB)", "greedyWeightedLoss",
                 "byteLoss"}};
  const std::vector<double> fracs = {1.0, 0.9, 0.8, 0.7, 0.6, 0.5};
  sim::ParallelRunner runner(threads);
  bench::TaskTelemetry telemetry(reg != nullptr, fracs.size());
  const auto reports = runner.map<SimReport>(
      fracs.size(),
      [&](std::size_t i) {
        const auto rate =
            std::max<Bytes>(1, static_cast<Bytes>(fracs[i] * lossless_rate));
        return sim::simulate(stream, Planner::from_delay_rate(delay, rate),
                             "greedy", 1, telemetry.at(i));
      },
      stats);
  if (reg != nullptr) telemetry.merge_into(*reg);
  for (std::size_t i = 0; i < fracs.size(); ++i) {
    const auto rate =
        std::max<Bytes>(1, static_cast<Bytes>(fracs[i] * lossless_rate));
    series.add({Table::num(fracs[i], 1),
                Table::num(static_cast<double>(rate) / 1024.0, 1),
                Table::pct(reports[i].weighted_loss()),
                Table::pct(reports[i].byte_loss())});
  }
  series.emit(bench::BenchOptions{});
  if (json != nullptr) json->add_series("lossy_vs_lossless", series);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rtsmooth::bench::parse_options(argc, argv);
  const std::size_t frames = opts.frames ? opts.frames : (opts.quick ? 300 : 1500);
  const trace::FrameSequence sequence = trace::stock_clip("cnn-news", frames);
  const CumulativeCurve arrivals = CumulativeCurve::from_frames(sequence);
  const Stream stream = trace::slice_frames(
      sequence, trace::ValueModel::mpeg_default(), trace::Slicing::ByteSlices);
  std::cout << "tab_lossless — lossless smoothing context (" << frames
            << " frames)\n\n";
  rtsmooth::sim::RunStats stats;
  rtsmooth::bench::JsonReport json("tab_lossless", opts);
  rtsmooth::obs::Registry reg;
  auto* json_ptr = json.enabled() ? &json : nullptr;
  auto* reg_ptr = json.enabled() ? &reg : nullptr;
  part_a_grid(arrivals, opts, &stats, json_ptr);
  part_b_online(arrivals, opts.threads, &stats, json_ptr);
  part_c_knee(arrivals, opts.threads, &stats, json_ptr);
  part_d_lossy_vs_lossless(stream, arrivals, opts.threads, &stats, json_ptr,
                           reg_ptr);
  json.write(stats, reg);
  rtsmooth::bench::print_run_stats(stats);
  return 0;
}
