// Theory table 3 — the lossless-smoothing context (paper Sect. 1 and
// related work): quantifies the introduction's motivating claim that "one
// can significantly reduce the peak bandwidth using only a relatively
// modest amount of space without unbearable delay", and positions the
// paper's lossy model against the lossless alternatives it cites.
//
//  (a) peak-rate reduction grid: taut-string optimal peak rate vs
//      (startup delay, client buffer) — Salehi et al. [16];
//  (b) on-line window convergence — Rexford et al. [14];
//  (c) optimal initial delay knee — Zhao et al. [23];
//  (d) lossless vs lossy: the rate lossless needs, vs Greedy's weighted
//      loss when the link is provisioned below it — the tradeoff the lossy
//      model exists to exploit.

#include <iostream>

#include "bench_common.h"
#include "lossless/delay_optimizer.h"
#include "lossless/online_window.h"
#include "lossless/taut_string.h"
#include "sim/simulator.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;
using lossless::CumulativeCurve;
using lossless::live_walls;
using lossless::taut_string;

void part_a_grid(const CumulativeCurve& arrivals,
                 const bench::BenchOptions& opts) {
  std::cout << "(a) lossless peak rate (KB/slot) vs startup delay and "
               "client buffer; unsmoothed peak = "
            << Table::num(static_cast<double>(arrivals.peak_increment()) /
                              1024.0, 1)
            << " KB, average = "
            << Table::num(static_cast<double>(arrivals.total()) /
                              static_cast<double>(arrivals.length()) / 1024.0,
                          1)
            << " KB\n\n";
  bench::Series series{.header = {"buffer", "D=1", "D=5", "D=25", "D=125"}};
  for (Bytes buffer_kb : {120, 480, 1920, 7680}) {
    std::vector<std::string> row = {std::to_string(buffer_kb) + "KB"};
    for (Time d : {1, 5, 25, 125}) {
      const double peak =
          lossless::min_peak_for_delay(arrivals, d, buffer_kb * 1024);
      row.push_back(Table::num(peak / 1024.0, 1));
    }
    series.add(std::move(row));
  }
  series.emit(opts);
}

void part_b_online(const CumulativeCurve& arrivals) {
  const lossless::SmoothingWalls walls = live_walls(arrivals, 25, 2 << 20);
  const double offline = taut_string(walls.lower, walls.upper).peak_rate;
  std::cout << "\n(b) on-line window convergence (delay 25, buffer 2 MB): "
               "peak rate vs lookahead window\n\n";
  bench::Series series{
      .header = {"window", "peak(drain)", "peak(prefetch)", "xOffline"}};
  for (Time window : {Time{5}, Time{15}, Time{50}, Time{150}, Time{500},
                      arrivals.length() + 25}) {
    const double drain =
        lossless::online_smooth(walls, window, lossless::BlockAnchor::Drain)
            .peak_rate;
    const double prefetch =
        lossless::online_smooth(walls, window,
                                lossless::BlockAnchor::Prefetch)
            .peak_rate;
    series.add({std::to_string(window), Table::num(drain / 1024.0, 1),
                Table::num(prefetch / 1024.0, 1),
                Table::num(std::min(drain, prefetch) / offline, 3)});
  }
  series.emit(bench::BenchOptions{});
  std::cout << "    offline optimum: " << Table::num(offline / 1024.0, 1)
            << " KB/slot\n";
}

void part_c_knee(const CumulativeCurve& arrivals) {
  std::cout << "\n(c) optimal initial delay (Zhao et al.): smallest delay "
               "after which more delay buys nothing\n\n";
  bench::Series series{.header = {"buffer", "peak(D=0)", "floor", "kneeDelay"}};
  for (Bytes buffer_kb : {120, 480, 1920}) {
    const auto knee =
        lossless::optimal_initial_delay(arrivals, buffer_kb * 1024);
    series.add({std::to_string(buffer_kb) + "KB",
                Table::num(knee.peak_at_zero / 1024.0, 1),
                Table::num(knee.peak_rate / 1024.0, 1),
                std::to_string(knee.delay)});
  }
  series.emit(bench::BenchOptions{});
}

void part_d_lossy_vs_lossless(const Stream& stream,
                              const CumulativeCurve& arrivals) {
  const Time delay = 25;
  const Bytes buffer = 2 << 20;
  const double lossless_rate =
      lossless::min_peak_for_delay(arrivals, delay, buffer);
  std::cout << "\n(d) lossless vs lossy at delay " << delay
            << ", buffer 2 MB: lossless needs "
            << Table::num(lossless_rate / 1024.0, 1)
            << " KB/slot; Greedy's weighted loss below that rate\n\n";
  bench::Series series{
      .header = {"rate(xLossless)", "rate(KB)", "greedyWeightedLoss",
                 "byteLoss"}};
  for (double frac : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5}) {
    const auto rate =
        std::max<Bytes>(1, static_cast<Bytes>(frac * lossless_rate));
    const Plan plan = Planner::from_delay_rate(delay, rate);
    const SimReport report = sim::simulate(stream, plan, "greedy");
    series.add({Table::num(frac, 1),
                Table::num(static_cast<double>(rate) / 1024.0, 1),
                Table::pct(report.weighted_loss()),
                Table::pct(report.byte_loss())});
  }
  series.emit(bench::BenchOptions{});
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rtsmooth::bench::parse_options(argc, argv);
  const std::size_t frames = opts.frames ? opts.frames : (opts.quick ? 300 : 1500);
  const trace::FrameSequence sequence = trace::stock_clip("cnn-news", frames);
  const CumulativeCurve arrivals = CumulativeCurve::from_frames(sequence);
  const Stream stream = trace::slice_frames(
      sequence, trace::ValueModel::mpeg_default(), trace::Slicing::ByteSlices);
  std::cout << "tab_lossless — lossless smoothing context (" << frames
            << " frames)\n\n";
  part_a_grid(arrivals, opts);
  part_b_online(arrivals);
  part_c_knee(arrivals);
  part_d_lossy_vs_lossless(stream, arrivals);
  return 0;
}
