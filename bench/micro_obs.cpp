// Microbenchmarks (google-benchmark) guarding the telemetry layer's cost
// contract (DESIGN.md): a default-constructed (null) Telemetry handle must
// leave the simulator's end-to-end throughput unchanged — compare
// BM_SimulateNoTelemetry against BM_SimulateNullHandle — while the enabled
// path's absolute overhead is tracked by BM_SimulateTelemetryOn. The
// micro-op benches bound the per-call cost of the individual instruments.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "microbench_main.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace {

using namespace rtsmooth;

const Stream& clip_stream() {
  static const Stream s = trace::slice_frames(
      trace::stock_clip("cnn-news", 400), trace::ValueModel::mpeg_default(),
      trace::Slicing::ByteSlices);
  return s;
}

Plan reference_plan(const Stream& s) {
  return Planner::from_buffer_rate(2 * s.max_frame_bytes(),
                                   sim::relative_rate(s, 0.9));
}

// ------------------------------------------------------------- end-to-end

void BM_SimulateNoTelemetry(benchmark::State& state) {
  const Stream& s = clip_stream();
  const Plan plan = reference_plan(s);
  for (auto _ : state) {
    const SimReport report = sim::simulate(s, plan, "greedy");
    benchmark::DoNotOptimize(report.played.bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          s.total_bytes());
}
BENCHMARK(BM_SimulateNoTelemetry);

// The null handle travels through SimConfig but resolves no instruments;
// this must match BM_SimulateNoTelemetry (the <= 2% acceptance gate).
void BM_SimulateNullHandle(benchmark::State& state) {
  const Stream& s = clip_stream();
  const sim::SimConfig config =
      sim::SimConfig::balanced(reference_plan(s));  // telemetry left null
  for (auto _ : state) {
    const SimReport report = sim::simulate(s, config, "greedy");
    benchmark::DoNotOptimize(report.played.bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          s.total_bytes());
}
BENCHMARK(BM_SimulateNullHandle);

void BM_SimulateTelemetryOn(benchmark::State& state) {
  const Stream& s = clip_stream();
  sim::SimConfig config = sim::SimConfig::balanced(reference_plan(s));
  obs::Registry registry;
  config.telemetry = obs::Telemetry{.registry = &registry};
  for (auto _ : state) {
    const SimReport report = sim::simulate(s, config, "greedy");
    benchmark::DoNotOptimize(report.played.bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          s.total_bytes());
}
BENCHMARK(BM_SimulateTelemetryOn);

// A flight recorder rides the same Telemetry handle: every step lands in
// its ring (obs/flight_recorder.h). Its absolute overhead is tracked here;
// the *disabled* path is the null handle above.
void BM_SimulateFlightRecorderOn(benchmark::State& state) {
  const Stream& s = clip_stream();
  sim::SimConfig config = sim::SimConfig::balanced(reference_plan(s));
  for (auto _ : state) {
    obs::FlightRecorder recorder;
    config.telemetry = obs::Telemetry{.recorder = &recorder};
    const SimReport report = sim::simulate(s, config, "greedy");
    benchmark::DoNotOptimize(report.played.bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          s.total_bytes());
}
BENCHMARK(BM_SimulateFlightRecorderOn);

// -------------------------------------------------------------- micro-ops

void BM_CounterAdd(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("bench.counter");
  for (auto _ : state) {
    counter.add(1);
    benchmark::DoNotOptimize(&counter);
  }
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram& histogram = registry.histogram(
      "bench.histogram", obs::HistogramSpec::exponential(1, 32));
  std::int64_t value = 1;
  for (auto _ : state) {
    histogram.record(value);
    value = (value * 5 + 3) % 100000;  // wander across buckets
    benchmark::DoNotOptimize(&histogram);
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_FlightRecorderRecord(benchmark::State& state) {
  obs::FlightRecorder recorder;  // default 256-step window, no trigger
  obs::StepRecord step;
  for (auto _ : state) {
    ++step.t;
    step.sent = (step.sent + 7) % 1000;
    recorder.record(step);
    benchmark::DoNotOptimize(&recorder);
  }
}
BENCHMARK(BM_FlightRecorderRecord);

void BM_SpanDisabled(benchmark::State& state) {
  const obs::Telemetry telemetry;  // null: Span must not read the clock
  for (auto _ : state) {
    const obs::Span span(telemetry, "bench.span");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::Registry registry;
  const obs::Telemetry telemetry{.registry = &registry};
  for (auto _ : state) {
    const obs::Span span(telemetry, "bench.span");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanEnabled);

}  // namespace

RTSMOOTH_BENCHMARK_MAIN()
