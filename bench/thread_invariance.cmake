# CTest driver for the thread-invariance gate (see bench/CMakeLists): run
# the same bench serially and 4-wide, then require bench_diff to find zero
# differences outside the quarantined wall-clock fields.

set(serial "${WORK_DIR}/invariance_t1.json")
set(wide "${WORK_DIR}/invariance_t4.json")

execute_process(
  COMMAND "${BENCH}" --quick --frames 120 --threads 1 --json "${serial}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serial bench run failed (${rc})")
endif()

execute_process(
  COMMAND "${BENCH}" --quick --frames 120 --threads 4 --json "${wide}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "4-thread bench run failed (${rc})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${BENCH_DIFF}" "${serial}" "${wide}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "thread counts changed the results (bench_diff ${rc})")
endif()
