# CTest driver for the thread-invariance gate (see bench/CMakeLists): run
# the same bench serially and 4-wide, then require bench_diff to find zero
# differences outside the quarantined wall-clock fields.

# OUT_PREFIX keeps the JSON artifacts of different benches' gates apart
# (invariance_t1.json vs invariance_gateway_t1.json, ...).
if(NOT DEFINED OUT_PREFIX)
  set(OUT_PREFIX "invariance")
endif()
set(serial "${WORK_DIR}/${OUT_PREFIX}_t1.json")
set(wide "${WORK_DIR}/${OUT_PREFIX}_t4.json")

execute_process(
  COMMAND "${BENCH}" --quick --frames 120 --threads 1 --json "${serial}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serial bench run failed (${rc})")
endif()

execute_process(
  COMMAND "${BENCH}" --quick --frames 120 --threads 4 --json "${wide}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "4-thread bench run failed (${rc})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${BENCH_DIFF}" "${serial}" "${wide}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "thread counts changed the results (bench_diff ${rc})")
endif()
