// Figure 3 (paper Sect. 5.1): weighted loss vs buffer size with the link
// rate 10% BELOW the average rate — at least ~10% of the *bytes* must be
// lost, but Greedy and Optimal push the *weighted* loss well under that
// floor while Tail-Drop stays above it (the valuable bytes arrive in bursts
// that Tail-Drop truncates).

#include <iostream>

#include "bench_common.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 400 : 2000);
  const Stream s =
      bench::reference_stream(trace::Slicing::ByteSlices, frames);
  const Bytes rate = sim::relative_rate(s, 0.90);
  std::vector<double> multiples;
  for (int m = 1; m <= 26; m += opts.quick ? 5 : 1) {
    multiples.push_back(m);
  }
  bench::JsonReport json("fig3_weighted_loss_below_rate", opts);
  obs::Registry reg;
  sim::SweepSpec spec{.axis = sim::SweepAxis::BufferMultiple,
                      .values = multiples,
                      .policies = {"tail-drop", "greedy"},
                      .with_optimal = true,
                      .rate = rate,
                      .threads = opts.threads};
  if (json.enabled()) spec.registry = &reg;
  const auto result = sim::sweep(s, spec);
  const auto& points = result.points;

  std::cout << "Fig. 3 — weighted loss vs buffer size, R = 0.9 x average "
               "rate, byte slices\n"
            << "clip: cnn-news, " << frames
            << " frames; byte-loss floor is ~10%\n\n";
  bench::Series series{.header = {"buffer(xMaxFrame)", "TailDrop", "Greedy",
                                  "Optimal", "byteLossTailDrop"}};
  for (const auto& point : points) {
    series.add({Table::num(point.x, 0),
                Table::pct(point.policies[0].report.weighted_loss()),
                Table::pct(point.policies[1].report.weighted_loss()),
                Table::pct(point.optimal.weighted_loss),
                Table::pct(point.policies[0].report.byte_loss())});
  }
  series.emit(opts);
  json.add_series("weighted_loss_vs_buffer", series);
  json.write(result.stats, reg);
  bench::print_run_stats(result.stats);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
