// Shared main() for the google-benchmark micro binaries: translates the
// harness-wide `--json PATH` flag into google-benchmark's native JSON
// reporter flags (--benchmark_out=PATH --benchmark_out_format=json), so
// every bench binary — table benches and micros alike — shares one
// machine-readable switch. Everything else passes through untouched, so
// the usual --benchmark_filter / --benchmark_min_time flags still work.

#pragma once

#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

namespace rtsmooth::bench {

inline int benchmark_main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      args.push_back("--benchmark_out=" + std::string(argv[++i]));
      args.push_back("--benchmark_out_format=json");
    } else {
      args.emplace_back(argv[i]);
    }
  }
  std::vector<char*> rewritten;
  rewritten.reserve(args.size());
  for (std::string& arg : args) rewritten.push_back(arg.data());
  int count = static_cast<int>(rewritten.size());
  benchmark::Initialize(&count, rewritten.data());
  if (benchmark::ReportUnrecognizedArguments(count, rewritten.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace rtsmooth::bench

#define RTSMOOTH_BENCHMARK_MAIN()                       \
  int main(int argc, char** argv) {                     \
    return rtsmooth::bench::benchmark_main(argc, argv); \
  }
