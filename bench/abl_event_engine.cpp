// Ablation — event-driven vs slot-stepped main loop (DESIGN.md Sect. 17):
// pins (i) that both engines produce byte-identical SimReports on every
// scenario class (dense, sparse-burst, bursty-loss, throttled), and
// (ii) the wall-clock payoff of skipping quiescent spans, which is the
// event engine's whole reason to exist. The agreement series is fully
// deterministic (derived from reports alone); the timings live in a
// quarantined `speedup` section that tools/bench_diff.py ignores.

#include <chrono>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/event_engine.h"
#include "core/link.h"
#include "faults/fault_links.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;

/// The reference clip re-timed into five-frame bursts separated by long
/// quiescent gaps — the stream shape the event engine targets.
Stream sparse_burst_stream(const Stream& base, Time gap) {
  std::vector<SliceRun> runs(base.runs().begin(), base.runs().end());
  Time arrival = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) arrival += (i % 5 == 0) ? gap : 1;
    runs[i].arrival = arrival;
  }
  return Stream::from_runs(std::move(runs));
}

struct Scenario {
  std::string name;
  const Stream* stream = nullptr;
  sim::SimConfig config;
  std::string policy = "tail-drop";
  std::function<std::unique_ptr<Link>()> link;  ///< fresh link per run
};

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 120 : 400);
  const Time gap = opts.quick ? 400 : 2000;
  const Stream dense =
      bench::reference_stream(trace::Slicing::ByteSlices, frames);
  const Stream sparse = sparse_burst_stream(dense, gap);
  const Bytes rate = sim::relative_rate(dense, 0.9);
  const Plan plan = Planner::from_buffer_rate(2 * dense.max_frame_bytes(),
                                              rate);

  std::cout << "abl_event_engine — slot-stepped vs event-driven main loop "
               "(buffer = 2 x max frame, R = 0.9 x dense average rate)\n"
            << "clip: cnn-news, " << frames << " frames; sparse gap = "
            << gap << " steps\n\n";

  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "dense";
    s.stream = &dense;
    s.config = sim::SimConfig::balanced(plan);
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "sparse-burst";
    s.stream = &sparse;
    s.config = sim::SimConfig::balanced(plan);
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "sparse-burst-ge";
    s.stream = &sparse;
    s.config = sim::SimConfig::balanced(plan);
    s.config.recovery.enabled = true;
    s.config.recovery.max_retries = 2;
    s.link = [] {
      const faults::GilbertElliottConfig ge{.p_good_to_bad = 0.02,
                                            .p_bad_to_good = 0.2,
                                            .loss_good = 0.0,
                                            .loss_bad = 0.9};
      return std::make_unique<faults::GilbertElliottLink>(
          std::make_unique<FixedDelayLink>(1), ge, Rng(77));
    };
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "throttled-dense";
    s.stream = &dense;
    s.config = sim::SimConfig::balanced(plan);
    s.link = [rate] {
      return std::make_unique<faults::ThrottledLink>(
          std::make_unique<FixedDelayLink>(1),
          std::vector<Bytes>{rate, 0, 0, 2 * rate});
    };
    scenarios.push_back(std::move(s));
  }

  const std::size_t cells = 2 * scenarios.size();  // × {slot, event}
  sim::RunStats stats;
  bench::JsonReport json("abl_event_engine", opts);
  obs::Registry reg;
  bench::TaskTelemetry telemetry(json.enabled(), cells);
  std::vector<double> wall_us(cells, 0.0);
  sim::ParallelRunner runner(opts.threads);
  const auto reports = runner.map<SimReport>(
      cells,
      [&](std::size_t i) {
        const Scenario& sc = scenarios[i / 2];
        sim::SimConfig config = sc.config;
        config.engine = (i % 2 == 0) ? sim::EngineKind::SlotStepped
                                     : sim::EngineKind::EventDriven;
        config.telemetry = telemetry.at(i);
        sim::SmoothingSimulator simulator(
            *sc.stream, config, make_policy(sc.policy),
            sc.link ? sc.link() : nullptr);
        const auto start = std::chrono::steady_clock::now();
        const SimReport report = simulator.run();
        const auto end = std::chrono::steady_clock::now();
        wall_us[i] = std::chrono::duration<double, std::micro>(end - start)
                         .count();
        return report;
      },
      &stats);
  telemetry.merge_into(reg);

  bench::Series series{.header = {"scenario", "steps", "played(bytes)",
                                  "weightedLoss", "slotVsEvent"}};
  obs::Json speedup = obs::Json::object();
  bool all_identical = true;
  for (std::size_t k = 0; k < scenarios.size(); ++k) {
    const SimReport& slot = reports[2 * k];
    const SimReport& event = reports[2 * k + 1];
    const bool identical = slot == event;
    all_identical = all_identical && identical;
    series.add({scenarios[k].name, std::to_string(slot.steps),
                std::to_string(slot.played.bytes),
                Table::pct(slot.weighted_loss()),
                identical ? "identical" : "DIVERGED"});
    obs::Json cell = obs::Json::object();
    cell["slot_us"] = wall_us[2 * k];
    cell["event_us"] = wall_us[2 * k + 1];
    cell["speedup"] = wall_us[2 * k + 1] > 0.0
                          ? wall_us[2 * k] / wall_us[2 * k + 1]
                          : 0.0;
    speedup[scenarios[k].name] = std::move(cell);
  }
  series.emit(opts);
  json.add_series("engine_agreement", series);
  json.add_section("speedup", std::move(speedup));
  json.write(stats, reg);
  bench::print_run_stats(stats);
  if (!all_identical) {
    std::cerr << "ERROR: slot and event engines diverged\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
