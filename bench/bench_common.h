// Shared scaffolding for the figure/table benches: the reference clip, the
// standard policy set, table/CSV emission, BENCH_*.json reports and a tiny
// flag parser.
//
// Every bench accepts:
//   --frames N     clip length (default per bench)
//   --csv PATH     additionally dump the series as CSV
//   --json PATH    additionally dump tables + RunStats + telemetry registry
//                  as a machine-readable rtsmooth-bench-v1 document
//   --quick        shrink the workload (used by the build's smoke run)
//   --threads N    ParallelRunner pool width (default: RTSMOOTH_THREADS,
//                  else every hardware thread; 1 = serial)

#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/telemetry.h"
#include "sim/runner.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

namespace rtsmooth::bench {

struct BenchOptions {
  std::size_t frames = 0;  ///< 0 = use the bench's default
  std::optional<std::string> csv_path;
  std::optional<std::string> json_path;
  bool quick = false;
  unsigned threads = 0;  ///< 0 = RTSMOOTH_THREADS / hardware width
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--frames" && i + 1 < argc) {
      opts.frames = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (arg == "--csv" && i + 1 < argc) {
      opts.csv_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      opts.threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: [--frames N] [--csv PATH] [--json PATH] "
                   "[--quick] [--threads N]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      std::exit(2);
    }
  }
  return opts;
}

/// One-line batch timing footer, printed by every bench that fans work out
/// over a ParallelRunner.
inline void print_run_stats(const sim::RunStats& stats) {
  std::cout << "\n[runner] " << stats.summary() << "\n";
}

/// The paper-calibrated reference clip at the requested granularity.
inline Stream reference_stream(trace::Slicing slicing, std::size_t frames) {
  return trace::slice_frames(trace::stock_clip("cnn-news", frames),
                             trace::ValueModel::mpeg_default(), slicing);
}

/// A printable series: header plus rows of preformatted cells.
struct Series {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  void add(std::vector<std::string> row) { rows.push_back(std::move(row)); }

  /// Prints as an aligned table and mirrors to CSV when requested.
  void emit(const BenchOptions& opts) const {
    Table table(header);
    for (const auto& row : rows) table.add_row(row);
    table.print(std::cout);
    if (opts.csv_path) {
      CsvWriter csv(*opts.csv_path);
      csv.row(header);
      for (const auto& row : rows) csv.row(row);
      std::cout << "(csv written to " << *opts.csv_path << ")\n";
    }
  }
};

/// Builder for the machine-readable `rtsmooth-bench-v1` document behind
/// `--json PATH`. Top-level keys, in order:
///
///   schema    "rtsmooth-bench-v1"
///   bench     the bench's name (matches the executable)
///   options   {frames, quick, threads} as requested on the command line
///   series    [{name, header, rows}] — the same cells the tables print
///   runner    {tasks, threads, total_task_us, max_task_us, queue_us,
///              wall_us} from the batch RunStats
///   registry  merged telemetry Registry snapshot (counters/gauges/
///             histograms), deterministic across thread counts
///   timers    Span timing histograms, quarantined here because wall-clock
///             samples are NOT deterministic; strip `runner` + `timers`
///             before diffing documents from different thread counts
///
/// All add_* calls are no-ops when --json was not passed, so benches can
/// call them unconditionally.
class JsonReport {
 public:
  JsonReport(std::string_view bench, const BenchOptions& opts)
      : path_(opts.json_path) {
    if (!path_) return;
    doc_["schema"] = "rtsmooth-bench-v1";
    doc_["bench"] = std::string(bench);
    obs::Json options = obs::Json::object();
    options["frames"] = static_cast<std::int64_t>(opts.frames);
    options["quick"] = opts.quick;
    options["threads"] = static_cast<std::int64_t>(opts.threads);
    doc_["options"] = std::move(options);
    doc_["series"] = obs::Json::array();
  }

  bool enabled() const { return path_.has_value(); }

  /// Mirrors a printed table into the document.
  void add_series(std::string_view name, const Series& series) {
    if (!path_) return;
    obs::Json entry = obs::Json::object();
    entry["name"] = std::string(name);
    obs::Json header = obs::Json::array();
    for (const auto& cell : series.header) header.push_back(cell);
    entry["header"] = std::move(header);
    obs::Json rows = obs::Json::array();
    for (const auto& row : series.rows) {
      obs::Json cells = obs::Json::array();
      for (const auto& cell : row) cells.push_back(cell);
      rows.push_back(std::move(cells));
    }
    entry["rows"] = std::move(rows);
    doc_["series"].push_back(std::move(entry));
  }

  /// Attaches a custom top-level section. tools/bench_diff.py compares only
  /// the schema's own keys (bench/options/series/registry), so extra
  /// sections are quarantined by construction — the place for wall-clock
  /// measurements like the gateway's stream-steps/sec that must not gate
  /// the determinism diff.
  void add_section(std::string_view name, obs::Json value) {
    if (!path_) return;
    doc_[std::string(name)] = std::move(value);
  }

  /// Serializes and writes the document. `registry` may be empty (benches
  /// that fan out nothing still emit the `registry`/`timers` keys so every
  /// document has the same shape).
  void write(const sim::RunStats& stats, const obs::Registry& registry) {
    if (!path_) return;
    obs::Json runner = obs::Json::object();
    runner["tasks"] = static_cast<std::int64_t>(stats.tasks);
    runner["threads"] = static_cast<std::int64_t>(stats.threads);
    runner["total_task_us"] = stats.total_task_us;
    runner["max_task_us"] = stats.max_task_us;
    runner["queue_us"] = stats.queue_us;
    runner["wall_us"] = stats.wall_us;
    doc_["runner"] = std::move(runner);
    obs::Json snapshot = registry.to_json(/*include_timers=*/true);
    obs::Json deterministic = obs::Json::object();
    deterministic["counters"] = snapshot["counters"];
    deterministic["gauges"] = snapshot["gauges"];
    deterministic["histograms"] = snapshot["histograms"];
    doc_["registry"] = std::move(deterministic);
    doc_["timers"] = snapshot["timers"];
    std::ofstream out(*path_);
    if (!out) {
      throw std::runtime_error("JsonReport: cannot open " + *path_);
    }
    doc_.write(out);
    out << "\n";
    std::cout << "(json written to " << *path_ << ")\n";
  }

 private:
  std::optional<std::string> path_;
  obs::Json doc_ = obs::Json::object();
};

/// Per-task telemetry for benches that fan out with ParallelRunner::map
/// directly (no SweepSpec): task `i` records into its private registry via
/// `at(i)`, and `merge_into` folds them in index order afterwards, so the
/// merged snapshot is identical for any thread count (DESIGN.md Sect. 9).
class TaskTelemetry {
 public:
  TaskTelemetry(bool enabled, std::size_t tasks)
      : registries_(enabled ? tasks : 0) {}

  obs::Telemetry at(std::size_t i) {
    if (registries_.empty()) return {};
    return obs::Telemetry{.registry = &registries_[i]};
  }

  void merge_into(obs::Registry& out) const {
    for (const obs::Registry& reg : registries_) out.merge(reg);
  }

 private:
  std::vector<obs::Registry> registries_;
};

}  // namespace rtsmooth::bench
