// Shared scaffolding for the figure/table benches: the reference clip, the
// standard policy set, table/CSV emission and a tiny flag parser.
//
// Every bench accepts:
//   --frames N     clip length (default per bench)
//   --csv PATH     additionally dump the series as CSV
//   --quick        shrink the workload (used by the build's smoke run)
//   --threads N    ParallelRunner pool width (default: RTSMOOTH_THREADS,
//                  else every hardware thread; 1 = serial)

#pragma once

#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

namespace rtsmooth::bench {

struct BenchOptions {
  std::size_t frames = 0;  ///< 0 = use the bench's default
  std::optional<std::string> csv_path;
  bool quick = false;
  unsigned threads = 0;  ///< 0 = RTSMOOTH_THREADS / hardware width
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--frames" && i + 1 < argc) {
      opts.frames = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (arg == "--csv" && i + 1 < argc) {
      opts.csv_path = argv[++i];
    } else if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      opts.threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: [--frames N] [--csv PATH] [--quick] "
                   "[--threads N]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      std::exit(2);
    }
  }
  return opts;
}

/// One-line batch timing footer, printed by every bench that fans work out
/// over a ParallelRunner.
inline void print_run_stats(const sim::RunStats& stats) {
  std::cout << "\n[runner] " << stats.summary() << "\n";
}

/// The paper-calibrated reference clip at the requested granularity.
inline Stream reference_stream(trace::Slicing slicing, std::size_t frames) {
  return trace::slice_frames(trace::stock_clip("cnn-news", frames),
                             trace::ValueModel::mpeg_default(), slicing);
}

/// A printable series: header plus rows of preformatted cells.
struct Series {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  void add(std::vector<std::string> row) { rows.push_back(std::move(row)); }

  /// Prints as an aligned table and mirrors to CSV when requested.
  void emit(const BenchOptions& opts) const {
    Table table(header);
    for (const auto& row : rows) table.add_row(row);
    table.print(std::cout);
    if (opts.csv_path) {
      CsvWriter csv(*opts.csv_path);
      csv.row(header);
      for (const auto& row : rows) csv.row(row);
      std::cout << "(csv written to " << *opts.csv_path << ")\n";
    }
  }
};

}  // namespace rtsmooth::bench
