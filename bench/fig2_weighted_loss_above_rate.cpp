// Figure 2 (paper Sect. 5.1): weighted loss of Tail-Drop, Greedy and the
// off-line Optimal as a function of buffer size (in multiples of the largest
// frame), with the link rate 10% ABOVE the clip's average rate. Single-byte
// slices, I:P:B values 12:8:1.
//
// Expected shape: all three drop steeply as the buffer grows past a couple
// of max-frames; Greedy tracks Optimal closely; Tail-Drop stays worst
// everywhere until losses vanish.

#include <iostream>

#include "bench_common.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 400 : 2000);
  const Stream s =
      bench::reference_stream(trace::Slicing::ByteSlices, frames);
  const Bytes rate = sim::relative_rate(s, 1.10);
  std::vector<double> multiples;
  for (int m = 1; m <= 26; m += opts.quick ? 5 : 1) {
    multiples.push_back(m);
  }
  bench::JsonReport json("fig2_weighted_loss_above_rate", opts);
  obs::Registry reg;
  sim::SweepSpec spec{.axis = sim::SweepAxis::BufferMultiple,
                      .values = multiples,
                      .policies = {"tail-drop", "greedy"},
                      .with_optimal = true,
                      .rate = rate,
                      .threads = opts.threads};
  if (json.enabled()) spec.registry = &reg;
  const auto result = sim::sweep(s, spec);
  const auto& points = result.points;

  std::cout << "Fig. 2 — weighted loss vs buffer size, R = 1.1 x average "
               "rate, byte slices\n"
            << "clip: cnn-news, " << frames << " frames, avg rate "
            << format_bytes(s.average_rate()) << "/step, max frame "
            << format_bytes(static_cast<double>(s.max_frame_bytes())) << "\n\n";
  bench::Series series{
      .header = {"buffer(xMaxFrame)", "TailDrop", "Greedy", "Optimal"}};
  for (const auto& point : points) {
    series.add({Table::num(point.x, 0),
                Table::pct(point.policies[0].report.weighted_loss()),
                Table::pct(point.policies[1].report.weighted_loss()),
                Table::pct(point.optimal.weighted_loss)});
  }
  series.emit(opts);
  json.add_series("weighted_loss_vs_buffer", series);
  json.write(result.stats, reg);
  bench::print_run_stats(result.stats);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
