// Theory table 2 — competitive analysis (Sect. 4):
//   (a) Theorem 4.7: Greedy's measured ratio on the adversarial stream vs
//       the closed-form (2 - eps) bound, over a (B, alpha) grid;
//   (b) Theorem 4.8: the two-scenario adversary against every on-line
//       policy — max scenario ratio vs the 1.2287 bound — plus the
//       Lotker/Sviridenko alpha ~ 4.015 improvement to 1.28197;
//   (c) Theorem 4.1 sanity: worst measured Greedy ratio over random streams
//       stays under 4 (unit slices).

#include <algorithm>
#include <cmath>
#include <iostream>

#include "analysis/adversarial.h"
#include "analysis/bounds.h"
#include "analysis/competitive.h"
#include "bench_common.h"
#include "policies/policy_factory.h"

namespace {

using namespace rtsmooth;
using namespace rtsmooth::analysis;

void part_a_thm47(const bench::BenchOptions& opts, sim::RunStats* stats,
                  bench::JsonReport* json) {
  std::cout << "(a) Theorem 4.7 — Greedy on the adversarial stream\n\n";
  bench::Series series{.header = {"B", "alpha", "measured", "closedForm",
                                  "lowerBound(2-eps)", "upperBound(Thm4.1)"}};
  struct Cell {
    Bytes b;
    double alpha;
  };
  std::vector<Cell> cells;
  for (Bytes b : {10, 50, 200}) {
    for (double alpha : {2.0, 4.0, 16.0, 100.0}) {
      cells.push_back(Cell{.b = b, .alpha = alpha});
    }
  }
  sim::ParallelRunner runner(opts.threads);
  const auto ratios = runner.map<double>(
      cells.size(),
      [&](std::size_t i) {
        const Stream s = thm47_stream(cells[i].b, cells[i].alpha);
        return measured_ratio(s, cells[i].b, 1, "greedy").ratio;
      },
      stats);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    series.add(
        {std::to_string(cells[i].b), Table::num(cells[i].alpha, 1),
         Table::num(ratios[i], 4),
         Table::num(greedy_thm47_exact_ratio(cells[i].b, cells[i].alpha), 4),
         Table::num(greedy_lower_bound_thm47(cells[i].b, cells[i].alpha), 4),
         Table::num(greedy_competitive_upper_bound(cells[i].b, 1), 4)});
  }
  series.emit(opts);
  if (json != nullptr) json->add_series("theorem47", series);
}

void part_b_thm48(unsigned threads, sim::RunStats* stats,
                  bench::JsonReport* json) {
  std::cout << "\n(b) Theorem 4.8 — two-scenario adversary vs deterministic "
               "policies (B = 600, alpha = 2)\n\n";
  const Bytes b = 600;
  const double alpha = 2.0;
  bench::Series series{.header = {"policy", "worstT1", "maxScenarioRatio",
                                  "paperBound"}};
  const std::vector<std::string> policies = known_policies();
  constexpr double kZ[] = {1.0, 1.3, 1.6861, 2.2, 3.0};
  constexpr std::size_t kZCount = std::size(kZ);
  sim::ParallelRunner runner(threads);
  // One task per (policy, z): both scenario streams and both measured runs.
  const auto ratios = runner.map<double>(
      policies.size() * kZCount,
      [&](std::size_t i) {
        const std::string& policy = policies[i / kZCount];
        const auto t1 = static_cast<Time>(
            std::llround(static_cast<double>(b) / kZ[i % kZCount]));
        const Stream s1 = thm48_scenario1_stream(b, t1, alpha);
        const Stream s2 = thm48_scenario2_stream(b, t1, alpha);
        return std::max(measured_ratio(s1, b, 1, policy).ratio,
                        measured_ratio(s2, b, 1, policy).ratio);
      },
      stats);
  for (std::size_t p = 0; p < policies.size(); ++p) {
    double worst = 0.0;
    Time worst_t1 = 0;
    for (std::size_t zi = 0; zi < kZCount; ++zi) {
      const double r = ratios[p * kZCount + zi];
      if (r > worst) {
        worst = r;
        worst_t1 =
            static_cast<Time>(std::llround(static_cast<double>(b) / kZ[zi]));
      }
    }
    series.add({policies[p], std::to_string(worst_t1), Table::num(worst, 4),
                "1.2287"});
  }
  series.emit(bench::BenchOptions{});
  if (json != nullptr) json->add_series("theorem48", series);

  std::cout << "\n    lower-bound optimization over alpha:\n";
  const auto paper = deterministic_lower_bound(2.0);
  const auto best = best_deterministic_lower_bound();
  std::cout << "      alpha=2.000  z=" << Table::num(paper.z, 4)
            << "  bound=" << Table::num(paper.ratio, 5) << "  (paper)\n"
            << "      alpha=" << Table::num(best.alpha, 3)
            << "  z=" << Table::num(best.z, 4)
            << "  bound=" << Table::num(best.ratio, 5)
            << "  (Lotker/Sviridenko remark)\n";
}

void part_c_random(const bench::BenchOptions& opts, sim::RunStats* stats,
                   bench::JsonReport* json) {
  const int trials = opts.quick ? 100 : 600;
  std::cout << "\n(c) Theorem 4.1 — worst measured Greedy ratio over "
            << trials << " random unit-slice streams (guarantee: 4)\n\n";
  // The trial inputs come from one sequential RNG stream, so draw them
  // up front (cheap) and fan only the ratio measurements out.
  Rng rng(20250704);
  std::vector<std::pair<Stream, Bytes>> inputs;
  inputs.reserve(static_cast<std::size_t>(trials));
  for (int i = 0; i < trials; ++i) {
    Stream s = random_unit_stream(rng, 30, 12, 40.0);
    const Bytes buffer = rng.uniform_int(2, 16);
    inputs.emplace_back(std::move(s), buffer);
  }
  sim::ParallelRunner runner(opts.threads);
  const auto ratios = runner.map<double>(
      inputs.size(),
      [&](std::size_t i) {
        return measured_ratio(inputs[i].first, inputs[i].second, 1, "greedy")
            .ratio;
      },
      stats);
  double worst = 1.0;
  double sum = 0.0;
  for (const double ratio : ratios) {
    worst = std::max(worst, ratio);
    sum += ratio;
  }
  std::cout << "      worst = " << Table::num(worst, 4)
            << ", mean = " << Table::num(sum / trials, 4)
            << ", bound = 4.0000\n";
  if (json != nullptr) {
    bench::Series series{.header = {"worst", "mean", "bound"}};
    series.add({Table::num(worst, 4), Table::num(sum / trials, 4), "4.0000"});
    json->add_series("theorem41_random", series);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rtsmooth::bench::parse_options(argc, argv);
  std::cout << "tab_competitive — Sect. 4 results\n\n";
  rtsmooth::sim::RunStats stats;
  rtsmooth::bench::JsonReport json("tab_competitive", opts);
  auto* json_ptr = json.enabled() ? &json : nullptr;
  part_a_thm47(opts, &stats, json_ptr);
  part_b_thm48(opts.threads, &stats, json_ptr);
  part_c_random(opts, &stats, json_ptr);
  // measured_ratio() drives its own simulator internally, so no registry.
  json.write(stats, rtsmooth::obs::Registry{});
  rtsmooth::bench::print_run_stats(stats);
  return 0;
}
