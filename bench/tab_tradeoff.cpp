// Theory table 1 — the B = D*R tradeoff (Sect. 3):
//   (a) Theorem 3.5 check: on the byte-slice clip, the generic algorithm's
//       throughput equals the off-line optimum exactly, for every drop
//       policy, across a (B, R) grid;
//   (b) Sect. 3.3 grid: fixing R and the ideal delay D* = B/R, sweeping the
//       actual delay shows loss above the minimum when D < B/R (underflow)
//       and no gain when D > B/R;
//   (c) Theorem 3.9 check: whole-frame slices stay within the
//       (B - Lmax + 1)/B guarantee of the DP optimum;
//   (d) Lemma 3.6 tight stream: measured throughput ratio between buffer
//       sizes meets the B1/B2 bound with near-equality.

#include <iostream>

#include "analysis/adversarial.h"
#include "bench_common.h"
#include "core/planner.h"
#include "offline/pareto_dp.h"
#include "offline/unit_optimal.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;

void part_a_theorem35(const bench::BenchOptions& opts, std::size_t frames,
                      sim::RunStats* stats, bench::JsonReport* json,
                      obs::Registry* reg) {
  const Stream s = trace::slice_frames(trace::stock_clip("cnn-news", frames),
                                       trace::ValueModel::throughput(),
                                       trace::Slicing::ByteSlices);
  std::cout << "(a) Theorem 3.5 — generic throughput == off-line optimum "
               "(byte slices, every policy)\n\n";
  bench::Series series{.header = {"R(xAvg)", "B(xMaxFrame)", "policy",
                                  "generic(bytes)", "optimal(bytes)",
                                  "equal"}};
  struct Cell {
    double rel;
    int mult;
  };
  const std::vector<Cell> cells = {{0.8, 1}, {0.8, 4}, {1.0, 1}, {1.0, 4}};
  constexpr const char* kPolicies[] = {"tail-drop", "greedy", "random"};
  struct Row {
    Bytes optimal = 0;
    Bytes played[3] = {0, 0, 0};
  };
  sim::ParallelRunner runner(opts.threads);
  bench::TaskTelemetry telemetry(reg != nullptr, cells.size());
  const auto rows = runner.map<Row>(
      cells.size(),
      [&](std::size_t i) {
        const Bytes rate = sim::relative_rate(s, cells[i].rel);
        const Plan plan = Planner::from_buffer_rate(
            cells[i].mult * s.max_frame_bytes(), rate);
        Row row;
        row.optimal =
            offline::unit_optimal(s, plan.buffer, plan.rate).accepted_bytes;
        for (std::size_t p = 0; p < 3; ++p) {
          row.played[p] =
              sim::simulate(s, plan, kPolicies[p], 1, telemetry.at(i))
                  .played.bytes;
        }
        return row;
      },
      stats);
  if (reg != nullptr) telemetry.merge_into(*reg);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t p = 0; p < 3; ++p) {
      series.add({Table::num(cells[i].rel, 1), Table::num(cells[i].mult, 0),
                  kPolicies[p], std::to_string(rows[i].played[p]),
                  std::to_string(rows[i].optimal),
                  rows[i].played[p] == rows[i].optimal ? "yes" : "NO"});
    }
  }
  series.emit(opts);
  if (json != nullptr) json->add_series("theorem35", series);
}

void part_b_delay_grid(std::size_t frames, unsigned threads,
                       sim::RunStats* stats, bench::JsonReport* json,
                       obs::Registry* reg) {
  const Stream s = trace::slice_frames(trace::stock_clip("cnn-news", frames),
                                       trace::ValueModel::throughput(),
                                       trace::Slicing::ByteSlices);
  const Bytes rate = sim::relative_rate(s, 1.0);
  const Bytes buffer = 4 * s.max_frame_bytes();
  const Plan ideal = Planner::from_buffer_rate(buffer, rate);
  std::cout << "\n(b) Sect. 3.3 — loss vs smoothing delay around the ideal "
               "D* = B/R = "
            << ideal.delay << " (B fixed, client buffer = B)\n\n";
  bench::Series series{
      .header = {"D(steps)", "served(bytes)", "late(bytes)",
                 "clientOverflow(bytes)", "byteLoss"}};
  const std::vector<Time> delays = {ideal.delay / 4, ideal.delay / 2,
                                    ideal.delay, ideal.delay * 2};
  sim::ParallelRunner runner(threads);
  bench::TaskTelemetry telemetry(reg != nullptr, delays.size());
  const auto reports = runner.map<SimReport>(
      delays.size(),
      [&](std::size_t i) {
        sim::SimConfig config{
            .server_buffer = ideal.buffer,
            .client_buffer = ideal.buffer,
            .rate = ideal.rate,
            .smoothing_delay = std::max<Time>(1, delays[i]),
            .link_delay = 1};
        config.telemetry = telemetry.at(i);
        return sim::simulate(s, config, "tail-drop");
      },
      stats);
  if (reg != nullptr) telemetry.merge_into(*reg);
  for (std::size_t i = 0; i < delays.size(); ++i) {
    series.add({std::to_string(std::max<Time>(1, delays[i])),
                std::to_string(reports[i].played.bytes),
                std::to_string(reports[i].dropped_client_late.bytes),
                std::to_string(reports[i].dropped_client_overflow.bytes),
                Table::pct(reports[i].byte_loss())});
  }
  series.emit(bench::BenchOptions{});
  if (json != nullptr) json->add_series("delay_grid", series);
}

void part_c_theorem39(std::size_t frames, unsigned threads,
                      sim::RunStats* stats, bench::JsonReport* json,
                      obs::Registry* reg) {
  const Stream s = trace::slice_frames(trace::stock_clip("cnn-news", frames),
                                       trace::ValueModel::throughput(),
                                       trace::Slicing::WholeFrame);
  std::cout << "\n(c) Theorem 3.9 — whole-frame throughput vs the "
               "(B-Lmax+1)/B guarantee\n\n";
  bench::Series series{.header = {"B(xMaxFrame)", "generic(bytes)",
                                  "optimal(bytes)", "measuredRatio",
                                  "guarantee"}};
  const Bytes rate = sim::relative_rate(s, 0.9);
  const std::vector<int> mults = {1, 2, 4, 8};
  struct Row {
    Plan plan;
    Bytes played = 0;
    double optimal_upper = 0.0;
  };
  sim::ParallelRunner runner(threads);
  bench::TaskTelemetry telemetry(reg != nullptr, mults.size());
  const auto rows = runner.map<Row>(
      mults.size(),
      [&](std::size_t i) {
        const Bytes buffer = mults[i] * s.max_frame_bytes();
        // Round the delay up so B = D*R stays >= Lmax (whole-frame slices).
        const Plan plan =
            Planner::from_delay_rate((buffer + rate - 1) / rate, rate);
        // Conservative comparison point: the quantized bracket's *upper*
        // bound on the optimum (a smaller measured ratio than against the
        // exact optimum, so the guarantee check only gets harder).
        const auto optimal = offline::quantized_optimal_bracket(
            s, plan.buffer, plan.rate,
            std::max<Bytes>(256, plan.buffer / 8192));
        return Row{
            .plan = plan,
            .played = sim::simulate(s, plan, "tail-drop", 1, telemetry.at(i))
                          .played.bytes,
            .optimal_upper = optimal.upper};
      },
      stats);
  if (reg != nullptr) telemetry.merge_into(*reg);
  for (std::size_t i = 0; i < mults.size(); ++i) {
    const double measured =
        static_cast<double>(rows[i].played) / rows[i].optimal_upper;
    series.add({Table::num(mults[i], 0), std::to_string(rows[i].played),
                Table::num(rows[i].optimal_upper, 0),
                Table::num(measured, 4),
                Table::num(Planner::throughput_guarantee(
                               rows[i].plan.buffer, s.max_slice_size()),
                           4)});
  }
  series.emit(bench::BenchOptions{});
  if (json != nullptr) json->add_series("theorem39", series);
}

void part_d_lemma36(unsigned threads, sim::RunStats* stats,
                    bench::JsonReport* json, obs::Registry* reg) {
  const Bytes b2 = 64;
  const Stream s = analysis::lemma36_stream(b2, /*batches=*/50);
  std::cout << "\n(d) Lemma 3.6 — tight batch stream (batch = " << b2
            << "): throughput(B1)/throughput(B2) vs bound B1/B2\n\n";
  bench::Series series{.header = {"B1", "B2", "measuredRatio", "bound"}};
  const std::vector<Bytes> buffers = {8, 16, 32, 64, b2};
  sim::ParallelRunner runner(threads);
  bench::TaskTelemetry telemetry(reg != nullptr, buffers.size());
  const auto throughputs = runner.map<Bytes>(
      buffers.size(),
      [&](std::size_t i) {
        const Plan plan = Planner::from_buffer_rate(buffers[i], 1);
        return sim::simulate(s, plan, "tail-drop", 1, telemetry.at(i))
            .played.bytes;
      },
      stats);
  if (reg != nullptr) telemetry.merge_into(*reg);
  const Bytes big_throughput = throughputs.back();
  for (std::size_t i = 0; i + 1 < buffers.size(); ++i) {
    series.add({std::to_string(buffers[i]), std::to_string(b2),
                Table::num(static_cast<double>(throughputs[i]) /
                               static_cast<double>(big_throughput),
                           4),
                Table::num(Planner::buffer_ratio_guarantee(buffers[i], b2),
                           4)});
  }
  series.emit(bench::BenchOptions{});
  if (json != nullptr) json->add_series("lemma36", series);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rtsmooth::bench::parse_options(argc, argv);
  const std::size_t frames = opts.frames ? opts.frames : (opts.quick ? 200 : 800);
  std::cout << "tab_tradeoff — Sect. 3 results on the cnn-news clip ("
            << frames << " frames)\n\n";
  rtsmooth::sim::RunStats stats;
  rtsmooth::bench::JsonReport json("tab_tradeoff", opts);
  rtsmooth::obs::Registry reg;
  auto* json_ptr = json.enabled() ? &json : nullptr;
  auto* reg_ptr = json.enabled() ? &reg : nullptr;
  part_a_theorem35(opts, frames, &stats, json_ptr, reg_ptr);
  part_b_delay_grid(frames, opts.threads, &stats, json_ptr, reg_ptr);
  part_c_theorem39(std::min<std::size_t>(frames, 400), opts.threads, &stats,
                   json_ptr, reg_ptr);
  part_d_lemma36(opts.threads, &stats, json_ptr, reg_ptr);
  json.write(stats, reg);
  rtsmooth::bench::print_run_stats(stats);
  return 0;
}
