// Theory table 1 — the B = D*R tradeoff (Sect. 3):
//   (a) Theorem 3.5 check: on the byte-slice clip, the generic algorithm's
//       throughput equals the off-line optimum exactly, for every drop
//       policy, across a (B, R) grid;
//   (b) Sect. 3.3 grid: fixing R and the ideal delay D* = B/R, sweeping the
//       actual delay shows loss above the minimum when D < B/R (underflow)
//       and no gain when D > B/R;
//   (c) Theorem 3.9 check: whole-frame slices stay within the
//       (B - Lmax + 1)/B guarantee of the DP optimum;
//   (d) Lemma 3.6 tight stream: measured throughput ratio between buffer
//       sizes meets the B1/B2 bound with near-equality.

#include <iostream>

#include "analysis/adversarial.h"
#include "bench_common.h"
#include "core/planner.h"
#include "offline/pareto_dp.h"
#include "offline/unit_optimal.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;

void part_a_theorem35(const bench::BenchOptions& opts, std::size_t frames) {
  const Stream s = trace::slice_frames(trace::stock_clip("cnn-news", frames),
                                       trace::ValueModel::throughput(),
                                       trace::Slicing::ByteSlices);
  std::cout << "(a) Theorem 3.5 — generic throughput == off-line optimum "
               "(byte slices, every policy)\n\n";
  bench::Series series{.header = {"R(xAvg)", "B(xMaxFrame)", "policy",
                                  "generic(bytes)", "optimal(bytes)",
                                  "equal"}};
  for (double rel : {0.8, 1.0}) {
    const Bytes rate = sim::relative_rate(s, rel);
    for (int mult : {1, 4}) {
      const Plan plan =
          Planner::from_buffer_rate(mult * s.max_frame_bytes(), rate);
      const Bytes optimal =
          offline::unit_optimal(s, plan.buffer, plan.rate).accepted_bytes;
      for (const char* policy : {"tail-drop", "greedy", "random"}) {
        const SimReport report = sim::simulate(s, plan, policy);
        series.add({Table::num(rel, 1), Table::num(mult, 0), policy,
                    std::to_string(report.played.bytes),
                    std::to_string(optimal),
                    report.played.bytes == optimal ? "yes" : "NO"});
      }
    }
  }
  series.emit(opts);
}

void part_b_delay_grid(std::size_t frames) {
  const Stream s = trace::slice_frames(trace::stock_clip("cnn-news", frames),
                                       trace::ValueModel::throughput(),
                                       trace::Slicing::ByteSlices);
  const Bytes rate = sim::relative_rate(s, 1.0);
  const Bytes buffer = 4 * s.max_frame_bytes();
  const Plan ideal = Planner::from_buffer_rate(buffer, rate);
  std::cout << "\n(b) Sect. 3.3 — loss vs smoothing delay around the ideal "
               "D* = B/R = "
            << ideal.delay << " (B fixed, client buffer = B)\n\n";
  bench::Series series{
      .header = {"D(steps)", "served(bytes)", "late(bytes)",
                 "clientOverflow(bytes)", "byteLoss"}};
  for (Time d :
       {ideal.delay / 4, ideal.delay / 2, ideal.delay, ideal.delay * 2}) {
    sim::SimConfig config{.server_buffer = ideal.buffer,
                          .client_buffer = ideal.buffer,
                          .rate = ideal.rate,
                          .smoothing_delay = std::max<Time>(1, d),
                          .link_delay = 1};
    sim::SmoothingSimulator simulator(s, config, make_policy("tail-drop"));
    const SimReport report = simulator.run();
    series.add({std::to_string(config.smoothing_delay),
                std::to_string(report.played.bytes),
                std::to_string(report.dropped_client_late.bytes),
                std::to_string(report.dropped_client_overflow.bytes),
                Table::pct(report.byte_loss())});
  }
  series.emit(bench::BenchOptions{});
}

void part_c_theorem39(std::size_t frames) {
  const Stream s = trace::slice_frames(trace::stock_clip("cnn-news", frames),
                                       trace::ValueModel::throughput(),
                                       trace::Slicing::WholeFrame);
  std::cout << "\n(c) Theorem 3.9 — whole-frame throughput vs the "
               "(B-Lmax+1)/B guarantee\n\n";
  bench::Series series{.header = {"B(xMaxFrame)", "generic(bytes)",
                                  "optimal(bytes)", "measuredRatio",
                                  "guarantee"}};
  const Bytes rate = sim::relative_rate(s, 0.9);
  for (int mult : {1, 2, 4, 8}) {
    const Bytes buffer = mult * s.max_frame_bytes();
    // Round the delay up so B = D*R stays >= Lmax (whole-frame slices).
    const Plan plan = Planner::from_delay_rate((buffer + rate - 1) / rate, rate);
    const SimReport report = sim::simulate(s, plan, "tail-drop");
    // Conservative comparison point: the quantized bracket's *upper* bound
    // on the optimum (a smaller measured ratio than against the exact
    // optimum, so the guarantee check only gets harder).
    const auto optimal = offline::quantized_optimal_bracket(
        s, plan.buffer, plan.rate, std::max<Bytes>(256, plan.buffer / 8192));
    const double measured =
        static_cast<double>(report.played.bytes) / optimal.upper;
    series.add({Table::num(mult, 0), std::to_string(report.played.bytes),
                Table::num(optimal.upper, 0), Table::num(measured, 4),
                Table::num(Planner::throughput_guarantee(
                               plan.buffer, s.max_slice_size()),
                           4)});
  }
  series.emit(bench::BenchOptions{});
}

void part_d_lemma36() {
  const Bytes b2 = 64;
  const Stream s = analysis::lemma36_stream(b2, /*batches=*/50);
  std::cout << "\n(d) Lemma 3.6 — tight batch stream (batch = " << b2
            << "): throughput(B1)/throughput(B2) vs bound B1/B2\n\n";
  bench::Series series{.header = {"B1", "B2", "measuredRatio", "bound"}};
  const Plan big = Planner::from_buffer_rate(b2, 1);
  const Bytes big_throughput = sim::simulate(s, big, "tail-drop").played.bytes;
  for (Bytes b1 : {8, 16, 32, 64}) {
    const Plan plan = Planner::from_buffer_rate(b1, 1);
    const Bytes throughput = sim::simulate(s, plan, "tail-drop").played.bytes;
    series.add({std::to_string(b1), std::to_string(b2),
                Table::num(static_cast<double>(throughput) /
                               static_cast<double>(big_throughput),
                           4),
                Table::num(Planner::buffer_ratio_guarantee(b1, b2), 4)});
  }
  series.emit(bench::BenchOptions{});
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rtsmooth::bench::parse_options(argc, argv);
  const std::size_t frames = opts.frames ? opts.frames : (opts.quick ? 200 : 800);
  std::cout << "tab_tradeoff — Sect. 3 results on the cnn-news clip ("
            << frames << " frames)\n\n";
  part_a_theorem35(opts, frames);
  part_b_delay_grid(frames);
  part_c_theorem39(std::min<std::size_t>(frames, 400));
  part_d_lemma36();
  return 0;
}
