// Figure 4 (paper Sect. 5.2): benefit of Tail-Drop, Greedy and Optimal
// relative to the total offered benefit, as the link rate varies from 0.4 to
// 1.4 times the average stream rate. Byte slices, buffer fixed at 4x the
// largest frame (the paper does not state its buffer; see EXPERIMENTS.md).
//
// Expected shape: Greedy "manages to salvage most of the benefit even when
// the rate drops well below the average rate"; Tail-Drop decays much
// faster; Optimal upper-bounds both and the three converge to 100% as the
// rate passes the average.

#include <iostream>

#include "bench_common.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 400 : 2000);
  const Stream s =
      bench::reference_stream(trace::Slicing::ByteSlices, frames);
  std::vector<double> fractions;
  for (double f = 0.40; f <= 1.41; f += opts.quick ? 0.2 : 0.05) {
    fractions.push_back(f);
  }
  bench::JsonReport json("fig4_benefit_vs_rate", opts);
  obs::Registry reg;
  sim::SweepSpec spec{.axis = sim::SweepAxis::RateFraction,
                      .values = fractions,
                      .policies = {"tail-drop", "greedy"},
                      .with_optimal = true,
                      .buffer_multiple = 4.0,
                      .threads = opts.threads};
  if (json.enabled()) spec.registry = &reg;
  const auto result = sim::sweep(s, spec);
  const auto& points = result.points;

  std::cout << "Fig. 4 — benefit (% of total) vs link rate, byte slices, "
               "buffer = 4 x max frame\n"
            << "clip: cnn-news, " << frames << " frames\n\n";
  bench::Series series{
      .header = {"rate(xAvg)", "TailDrop", "Greedy", "Optimal"}};
  for (const auto& point : points) {
    series.add({Table::num(point.x, 2),
                Table::pct(point.policies[0].report.benefit_fraction()),
                Table::pct(point.policies[1].report.benefit_fraction()),
                Table::pct(point.optimal.benefit_fraction)});
  }
  series.emit(opts);
  json.add_series("benefit_vs_rate", series);
  json.write(result.stats, reg);
  bench::print_run_stats(result.stats);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
