// Ablation — "pro-active" overflow avoidance (the paper's closing open
// problem, Sect. 6): does early-dropping cheap data before the buffer fills
// ever beat plain Greedy (which only drops on overflow)?
//
// Sweeps the proactive watermark/value-floor grid against Greedy and
// Tail-Drop on the reference clip at rates below the average. The expected
// outcome (and the reason the paper calls it an open problem) is nuanced:
// early drops cannot improve *unit-slice* benefit (Theorem 3.5 says overflow
// handling is already byte-optimal, so early drops only throw away bytes the
// buffer could still have sold), but they change *which* bytes survive.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "policies/proactive_threshold.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 300 : 1200);
  const Stream s =
      bench::reference_stream(trace::Slicing::ByteSlices, frames);
  std::cout << "abl_proactive — proactive early-drop vs Greedy/Tail-Drop "
               "(byte slices, buffer = 2 x max frame)\n"
            << "clip: cnn-news, " << frames << " frames\n\n";
  bench::Series series{.header = {"rate(xAvg)", "policy", "watermark",
                                  "valueFloor", "weightedLoss", "byteLoss"}};
  for (double rel : {0.8, 0.9, 1.0}) {
    const Bytes rate = sim::relative_rate(s, rel);
    const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
    for (const char* base : {"tail-drop", "greedy"}) {
      const SimReport report = sim::simulate(s, plan, base);
      series.add({Table::num(rel, 1), base, "-", "-",
                  Table::pct(report.weighted_loss()),
                  Table::pct(report.byte_loss())});
    }
    for (double watermark : {0.5, 0.75, 0.9}) {
      for (double floor : {1.0, 8.0}) {
        sim::SmoothingSimulator simulator(
            s, sim::SimConfig::balanced(plan),
            std::make_unique<ProactiveThresholdPolicy>(ProactiveConfig{
                .watermark = watermark, .value_floor = floor}));
        const SimReport report = simulator.run();
        series.add({Table::num(rel, 1), "proactive", Table::num(watermark, 2),
                    Table::num(floor, 1), Table::pct(report.weighted_loss()),
                    Table::pct(report.byte_loss())});
      }
    }
  }
  series.emit(opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
