// Ablation — "pro-active" overflow avoidance (the paper's closing open
// problem, Sect. 6): does early-dropping cheap data before the buffer fills
// ever beat plain Greedy (which only drops on overflow)?
//
// Sweeps the proactive watermark/value-floor grid against Greedy and
// Tail-Drop on the reference clip at rates below the average. The expected
// outcome (and the reason the paper calls it an open problem) is nuanced:
// early drops cannot improve *unit-slice* benefit (Theorem 3.5 says overflow
// handling is already byte-optimal, so early drops only throw away bytes the
// buffer could still have sold), but they change *which* bytes survive.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "policies/proactive_threshold.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 300 : 1200);
  const Stream s =
      bench::reference_stream(trace::Slicing::ByteSlices, frames);
  std::cout << "abl_proactive — proactive early-drop vs Greedy/Tail-Drop "
               "(byte slices, buffer = 2 x max frame)\n"
            << "clip: cnn-news, " << frames << " frames\n\n";
  bench::Series series{.header = {"rate(xAvg)", "policy", "watermark",
                                  "valueFloor", "weightedLoss", "byteLoss"}};
  // Flatten the (rate x policy-variant) grid into independent cells so the
  // whole table runs as one parallel batch in row order.
  struct Cell {
    double rel = 0.0;
    const char* base = nullptr;  // nullptr means proactive
    double watermark = 0.0;
    double floor = 0.0;
  };
  std::vector<Cell> cells;
  for (double rel : {0.8, 0.9, 1.0}) {
    for (const char* base : {"tail-drop", "greedy"}) {
      cells.push_back(Cell{.rel = rel, .base = base});
    }
    for (double watermark : {0.5, 0.75, 0.9}) {
      for (double floor : {1.0, 8.0}) {
        cells.push_back(Cell{.rel = rel, .watermark = watermark,
                             .floor = floor});
      }
    }
  }
  sim::RunStats stats;
  bench::JsonReport json("abl_proactive", opts);
  obs::Registry reg;
  bench::TaskTelemetry telemetry(json.enabled(), cells.size());
  sim::ParallelRunner runner(opts.threads);
  const auto reports = runner.map<SimReport>(
      cells.size(),
      [&](std::size_t i) {
        const Bytes rate = sim::relative_rate(s, cells[i].rel);
        const Plan plan =
            Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
        if (cells[i].base != nullptr) {
          return sim::simulate(s, plan, cells[i].base, 1, telemetry.at(i));
        }
        sim::SimConfig config = sim::SimConfig::balanced(plan);
        config.telemetry = telemetry.at(i);
        sim::SmoothingSimulator simulator(
            s, config,
            std::make_unique<ProactiveThresholdPolicy>(ProactiveConfig{
                .watermark = cells[i].watermark,
                .value_floor = cells[i].floor}));
        return simulator.run();
      },
      &stats);
  telemetry.merge_into(reg);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    series.add({Table::num(cells[i].rel, 1),
                cells[i].base != nullptr ? cells[i].base : "proactive",
                cells[i].base != nullptr ? "-" : Table::num(cells[i].watermark,
                                                            2),
                cells[i].base != nullptr ? "-" : Table::num(cells[i].floor, 1),
                Table::pct(reports[i].weighted_loss()),
                Table::pct(reports[i].byte_loss())});
  }
  series.emit(opts);
  json.add_series("proactive_grid", series);
  json.write(stats, reg);
  bench::print_run_stats(stats);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
