// Figure 6 (paper Sect. 5.3): weighted loss of Tail-Drop and Greedy for
// single-byte versus whole-frame slices, as a function of buffer size, at
// the average link rate.
//
// Expected shape: Greedy <= Tail-Drop in both granularities; the large gap
// in the byte-slice model is "only partially preserved" with whole-frame
// slices, and whole-frame losses exceed byte-slice losses especially at
// small buffers.

#include <iostream>

#include "bench_common.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 300 : 1200);
  const Stream bytes_stream =
      bench::reference_stream(trace::Slicing::ByteSlices, frames);
  const Stream frame_stream =
      bench::reference_stream(trace::Slicing::WholeFrame, frames);
  const Bytes rate = sim::relative_rate(bytes_stream, 1.00);

  std::vector<double> multiples;
  for (int m = 1; m <= 26; m += opts.quick ? 5 : 1) {
    multiples.push_back(m);
  }
  bench::JsonReport json("fig6_weighted_loss_slice_granularity", opts);
  obs::Registry reg;
  sim::SweepSpec spec{.axis = sim::SweepAxis::BufferMultiple,
                      .values = multiples,
                      .policies = {"tail-drop", "greedy"},
                      .rate = rate,
                      .threads = opts.threads};
  if (json.enabled()) spec.registry = &reg;  // both sweeps fold into one
  auto byte_result = sim::sweep(bytes_stream, spec);
  const auto frame_result = sim::sweep(frame_stream, spec);
  const auto& byte_points = byte_result.points;
  const auto& frame_points = frame_result.points;
  byte_result.stats += frame_result.stats;

  std::cout << "Fig. 6 — weighted loss of Tail-Drop and Greedy, byte vs "
               "whole-frame slices, R = average rate\n"
            << "clip: cnn-news, " << frames << " frames\n\n";
  bench::Series series{
      .header = {"buffer(xMaxFrame)", "TailDrop(byte)", "Greedy(byte)",
                 "TailDrop(frame)", "Greedy(frame)"}};
  for (std::size_t i = 0; i < byte_points.size(); ++i) {
    series.add(
        {Table::num(byte_points[i].x, 0),
         Table::pct(byte_points[i].policies[0].report.weighted_loss()),
         Table::pct(byte_points[i].policies[1].report.weighted_loss()),
         Table::pct(frame_points[i].policies[0].report.weighted_loss()),
         Table::pct(frame_points[i].policies[1].report.weighted_loss())});
  }
  series.emit(opts);
  json.add_series("weighted_loss_by_granularity", series);
  json.write(byte_result.stats, reg);
  bench::print_run_stats(byte_result.stats);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
