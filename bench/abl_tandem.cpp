// Ablation — buffer placement along a multi-hop path (the internetwork
// setting of Rexford & Towsley [15]): with a fixed total buffer budget and
// a bottleneck mid-path, where should the memory live? Sweeps front-loaded,
// even, and bottleneck-loaded splits at several budgets, plus the
// homogeneous-path sanity row (all drops at hop 1, downstream buffers
// free).

#include <iostream>

#include "bench_common.h"
#include "policies/tail_drop.h"
#include "sim/sweep.h"
#include "tandem/tandem.h"

namespace {

using namespace rtsmooth;
using namespace rtsmooth::tandem;

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 300 : 1200);
  const Stream s =
      bench::reference_stream(trace::Slicing::ByteSlices, frames);
  const Bytes fast = sim::relative_rate(s, 1.3);
  const Bytes slow = sim::relative_rate(s, 0.9);  // the bottleneck

  std::cout << "abl_tandem — buffer placement on a 3-hop path "
               "(fast-slow-fast: " << fast / 1024 << "/" << slow / 1024
            << "/" << fast / 1024 << " KB/slot), Tail-Drop per hop\n"
            << "clip: cnn-news, " << frames << " frames\n\n";

  bench::Series series{.header = {"budget(xMaxFrame)", "split",
                                  "hop1Drop%", "hop2Drop%", "hop3Drop%",
                                  "weightedLoss", "D(slots)"}};
  const Bytes floor = std::max(fast, slow);  // minimum workable hop buffer
  struct Split {
    const char* name;
    double shares[3];
  };
  constexpr Split kSplits[] = {
      {"front-loaded", {0.8, 0.1, 0.1}},
      {"even", {1.0 / 3, 1.0 / 3, 1.0 / 3}},
      {"bottleneck", {0.1, 0.8, 0.1}},
  };
  constexpr std::size_t kSplitCount = std::size(kSplits);
  const std::vector<int> budget_mults = {3, 6, 12};
  sim::RunStats stats;
  sim::ParallelRunner runner(opts.threads);
  const auto reports = runner.map<TandemReport>(
      budget_mults.size() * kSplitCount,
      [&](std::size_t i) {
        const Bytes budget =
            budget_mults[i / kSplitCount] * s.max_frame_bytes();
        const Split& split = kSplits[i % kSplitCount];
        std::vector<HopConfig> hops;
        const Bytes rates[3] = {fast, slow, fast};
        for (int h = 0; h < 3; ++h) {
          const auto share = static_cast<Bytes>(
              split.shares[h] * static_cast<double>(budget));
          hops.push_back(HopConfig{.buffer = std::max(floor, share),
                                   .rate = rates[h],
                                   .link_delay = 1});
        }
        TandemSimulator tandem(s, hops, TailDropPolicy{});
        return tandem.run();
      },
      &stats);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const TandemReport& report = reports[i];
    auto drop_pct = [&](std::size_t h) {
      return Table::pct(static_cast<double>(report.hop_drops[h].bytes) /
                        static_cast<double>(s.total_bytes()));
    };
    series.add({Table::num(budget_mults[i / kSplitCount], 0),
                kSplits[i % kSplitCount].name, drop_pct(0), drop_pct(1),
                drop_pct(2), Table::pct(report.end_to_end.weighted_loss()),
                std::to_string(report.smoothing_delay)});
  }
  series.emit(opts);
  // The tandem pipeline drives hops directly (no SmoothingSimulator), so
  // there is no registry to fill — the document still carries the series.
  bench::JsonReport json("abl_tandem", opts);
  json.add_series("buffer_placement", series);
  json.write(stats, obs::Registry{});
  bench::print_run_stats(stats);
  std::cout << "\nreading: memory at the bottleneck wins; front-loading "
               "wastes budget shaping traffic the fast first link could "
               "carry anyway.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
