// Gateway bench: the sharded statistical-multiplexing gateway under its
// three sharing policies, plus the BM_GatewayStep throughput measurement.
//
// Three sections:
//
//   1. `gateway_policies` — a gateway::sweep over stream counts x sharing
//      policies at fixed per-stream provisioning: the weighted-loss /
//      byte-loss table showing what weighted sharing buys over static
//      partitioning as N grows. Deterministic; part of the regression
//      baseline.
//   2. `gateway_churn` — one gateway run in segments with a churn wave
//      between each: the ledger columns must balance through every segment.
//      Deterministic; part of the regression baseline.
//   3. BM_GatewayStep — wall-clock stream-steps/sec of the hot step loop at
//      bench scale. NOT deterministic, so it lives in the quarantined
//      top-level `gateway` JSON section that tools/bench_diff.py never
//      compares (the CI regression gate reads only series + registry).
//
// The registry snapshot merges the sweep's cells (submission order) and the
// churn gateway's counters, so the document is byte-identical at any
// --threads, which is what the gateway thread-invariance ctest pins.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gateway/gateway.h"
#include "gateway/gateway_sweep.h"

namespace {

using namespace rtsmooth;
using gateway::ArrivalModel;
using gateway::Gateway;
using gateway::GatewayConfig;
using gateway::GatewayReport;
using gateway::SharePolicy;
using gateway::StreamId;
using gateway::StreamSpec;

/// The example's gold/silver/bronze population, pure in `i` so every sweep
/// cell at a given stream count sees the identical streams.
StreamSpec demo_stream(std::size_t i) {
  switch (i % 3) {
    case 0:
      return StreamSpec{.rate = 96,
                        .deadline = 8,
                        .weight_class = 0,
                        .arrivals = ArrivalModel::vbr(64, 0x9000 + i)};
    case 1:
      return StreamSpec{.rate = 48,
                        .deadline = 16,
                        .weight_class = 1,
                        .arrivals = ArrivalModel::vbr(32, 0x5000 + i)};
    default:
      return StreamSpec{.rate = 24,
                        .deadline = 32,
                        .weight_class = 2,
                        .arrivals = ArrivalModel::on_off(64, 2, 6, 0xB000 + i)};
  }
}

/// Mean subscribed rate of the demo population is 56 bytes/step/stream;
/// provision the link at ~70% of that for visible multiplexing pressure.
constexpr Bytes kRatePerStream = 40;

std::string pct(double fraction) {
  return Table::num(100.0 * fraction, 3);
}

void policies_section(const bench::BenchOptions& opts, Time steps,
                      sim::RunStats* stats, bench::JsonReport* json,
                      obs::Registry* reg) {
  gateway::GatewaySweepSpec spec;
  spec.stream_counts =
      opts.quick ? std::vector<std::size_t>{64, 256}
                 : std::vector<std::size_t>{256, 1024, 4096};
  spec.policies = {SharePolicy::Static, SharePolicy::WeightedShare,
                   SharePolicy::Priority};
  spec.steps = steps;
  spec.stream_factory = demo_stream;
  spec.base = GatewayConfig{.class_weights = {12.0, 8.0, 1.0}, .shards = 8};
  spec.rate_per_stream = kRatePerStream;
  spec.threads = opts.threads;
  spec.registry = reg;

  std::cout << "sharing policies at " << kRatePerStream
            << " B/step/stream provisioning (" << steps << " steps)\n";
  const gateway::GatewaySweepResult result = gateway::sweep(spec);
  *stats += result.stats;

  bench::Series series{.header = {"streams", "rate", "policy", "served",
                                  "dropped", "wLoss%", "loss%", "ok"}};
  for (const gateway::GatewaySweepPoint& point : result.points) {
    for (const gateway::GatewayPolicyOutcome& outcome : point.policies) {
      const GatewayReport& r = outcome.report;
      const bool ok = r.conserves() && r.violations == 0;
      series.add({std::to_string(point.streams), std::to_string(point.rate),
                  std::string(gateway::to_string(outcome.policy)),
                  std::to_string(r.served), std::to_string(r.dropped),
                  pct(r.weighted_loss(spec.base.class_weights)),
                  pct(r.byte_loss()), ok ? "yes" : "NO"});
    }
  }
  series.emit(opts);
  json->add_series("gateway_policies", series);
}

void churn_section(const bench::BenchOptions& opts, Time steps,
                   sim::RunStats* stats, bench::JsonReport* json,
                   obs::Registry* reg) {
  const std::size_t streams = opts.quick ? 120 : 600;
  Bytes subscribed = 0;
  for (std::size_t i = 0; i < streams; ++i) subscribed += demo_stream(i).rate;

  Gateway gw(GatewayConfig{
      .rate = std::max<Bytes>(1, subscribed * 7 / 10),
      .class_weights = {12.0, 8.0, 1.0},
      .sharing = SharePolicy::WeightedShare,
      .shards = 8,
      .threads = opts.threads,
      .telemetry = {.registry = reg}});
  std::vector<StreamId> ids;
  ids.reserve(streams);
  for (std::size_t i = 0; i < streams; ++i) {
    ids.push_back(*gw.add_stream(demo_stream(i)));
  }

  std::cout << "\nchurn ledger: " << streams
            << " streams, a churn wave between segments\n";
  bench::Series series{.header = {"segment", "live", "joins", "leaves",
                                  "admitted", "served", "dropped", "unserved",
                                  "backlog", "ok"}};
  constexpr int kSegments = 4;
  std::size_t next_spec = streams;
  for (int seg = 0; seg < kSegments; ++seg) {
    gw.run(std::max<Time>(1, steps / kSegments));
    if (seg + 1 < kSegments) {
      // Churn wave: every (seg+3)rd stream leaves, a fresh one joins.
      const auto stride = static_cast<std::size_t>(seg) + 3;
      for (std::size_t i = static_cast<std::size_t>(seg); i < ids.size();
           i += stride) {
        if (gw.remove_stream(ids[i])) {
          ids[i] = *gw.add_stream(demo_stream(next_spec++));
        }
      }
    }
    const GatewayReport r = gw.report();
    series.add({std::to_string(seg), std::to_string(gw.stream_count()),
                std::to_string(r.joins), std::to_string(r.leaves),
                std::to_string(r.admitted), std::to_string(r.served),
                std::to_string(r.dropped), std::to_string(r.unserved),
                std::to_string(r.backlog),
                r.conserves() && r.violations == 0 ? "yes" : "NO"});
  }
  series.emit(opts);
  json->add_series("gateway_churn", series);
  *stats += gw.run_stats();
}

/// BM_GatewayStep: wall-clock throughput of the contended weighted-share
/// step loop, reported as stream-steps/sec.
void throughput_section(const bench::BenchOptions& opts, Time steps,
                        bench::JsonReport* json) {
  const std::size_t streams = opts.quick ? 8192 : 65536;
  Bytes subscribed = 0;
  for (std::size_t i = 0; i < streams; ++i) subscribed += demo_stream(i).rate;

  Gateway gw(GatewayConfig{.rate = std::max<Bytes>(1, subscribed * 7 / 10),
                           .class_weights = {12.0, 8.0, 1.0},
                           .sharing = SharePolicy::WeightedShare,
                           .shards = 8,
                           .threads = opts.threads});
  for (std::size_t i = 0; i < streams; ++i) gw.add_stream(demo_stream(i));
  gw.run(4);  // warm the columns before the timed window

  const auto start = std::chrono::steady_clock::now();
  gw.run(steps);
  const auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  const auto stream_steps =
      static_cast<std::int64_t>(streams) * static_cast<std::int64_t>(steps);
  const double per_sec =
      wall_us > 0 ? 1e6 * static_cast<double>(stream_steps) /
                        static_cast<double>(wall_us)
                  : 0.0;
  std::cout << "\nBM_GatewayStep: " << streams << " streams x " << steps
            << " steps = " << stream_steps << " stream-steps in "
            << Table::num(static_cast<double>(wall_us) / 1000.0, 1)
            << " ms -> " << Table::num(per_sec / 1e6, 2)
            << "M stream-steps/sec\n";

  obs::Json section = obs::Json::object();
  section["streams"] = static_cast<std::int64_t>(streams);
  section["steps"] = static_cast<std::int64_t>(steps);
  section["stream_steps"] = stream_steps;
  section["wall_us"] = static_cast<std::int64_t>(wall_us);
  section["stream_steps_per_sec"] = per_sec;
  json->add_section("gateway", std::move(section));
}

int run(const bench::BenchOptions& opts) {
  // --frames doubles as the step count here (the gateway has no clip).
  const Time steps =
      opts.frames > 0 ? static_cast<Time>(opts.frames) : (opts.quick ? 96 : 192);

  obs::Registry reg;
  sim::RunStats stats;
  bench::JsonReport json("gateway", opts);

  policies_section(opts, steps, &stats, &json, &reg);
  churn_section(opts, steps, &stats, &json, &reg);
  throughput_section(opts, steps, &json);

  json.write(stats, reg);
  bench::print_run_stats(stats);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
