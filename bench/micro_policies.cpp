// Microbenchmarks (google-benchmark): server-buffer operations and
// per-policy shed cost, plus one end-to-end simulation throughput figure.
// Not a paper artifact — tracks the implementation's hot paths.

#include <benchmark/benchmark.h>

#include "microbench_main.h"

#include "core/server_buffer.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace {

using namespace rtsmooth;

const Stream& clip_stream() {
  static const Stream s = trace::slice_frames(
      trace::stock_clip("cnn-news", 400), trace::ValueModel::mpeg_default(),
      trace::Slicing::ByteSlices);
  return s;
}

void BM_BufferPushSend(benchmark::State& state) {
  const Stream& s = clip_stream();
  const auto runs = s.runs();
  std::vector<SentPiece> pieces;
  for (auto _ : state) {
    ServerBuffer buf;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      buf.push(runs[i], i, runs[i].count);
      pieces.clear();
      buf.send(runs[i].total_bytes(), pieces);
      benchmark::DoNotOptimize(pieces.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(runs.size()));
}
BENCHMARK(BM_BufferPushSend);

void BM_PolicyShed(benchmark::State& state, const char* policy_name) {
  const Stream& s = clip_stream();
  const auto runs = s.runs();
  auto policy = make_policy(policy_name);
  Bytes total = 0;
  for (const auto& run : runs) total += run.total_bytes();
  for (auto _ : state) {
    state.PauseTiming();
    ServerBuffer buf;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      buf.push(runs[i], i, runs[i].count);
    }
    state.ResumeTiming();
    policy->shed(buf, total / 2);  // shed half the clip in one call
    benchmark::DoNotOptimize(buf.occupancy());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (total - total / 2));
}
BENCHMARK_CAPTURE(BM_PolicyShed, tail_drop, "tail-drop");
BENCHMARK_CAPTURE(BM_PolicyShed, greedy, "greedy");
BENCHMARK_CAPTURE(BM_PolicyShed, head_drop, "head-drop");
BENCHMARK_CAPTURE(BM_PolicyShed, random, "random");

void BM_Simulate(benchmark::State& state, const char* policy_name) {
  const Stream& s = clip_stream();
  const Bytes rate = sim::relative_rate(s, 0.9);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  for (auto _ : state) {
    const SimReport report = sim::simulate(s, plan, policy_name);
    benchmark::DoNotOptimize(report.played.bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          s.total_bytes());
}
BENCHMARK_CAPTURE(BM_Simulate, tail_drop, "tail-drop");
BENCHMARK_CAPTURE(BM_Simulate, greedy, "greedy");

void BM_SimulateEventDriven(benchmark::State& state,
                            const char* policy_name) {
  const Stream& s = clip_stream();
  const Bytes rate = sim::relative_rate(s, 0.9);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  for (auto _ : state) {
    const SimReport report = sim::simulate(s, plan, policy_name, 1, {},
                                           sim::EngineKind::EventDriven);
    benchmark::DoNotOptimize(report.played.bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          s.total_bytes());
}
BENCHMARK_CAPTURE(BM_SimulateEventDriven, tail_drop, "tail-drop");
BENCHMARK_CAPTURE(BM_SimulateEventDriven, greedy, "greedy");

// The reference clip re-timed into five-frame bursts separated by long
// quiescent gaps — the regime the event engine exists for. The plan keeps
// the dense clip's rate so each burst drains quickly and the gaps stay
// quiescent; the slot core still walks every one of the ~160k slots.
const Stream& sparse_burst_stream() {
  static const Stream s = [] {
    const Stream& base = clip_stream();
    std::vector<SliceRun> runs(base.runs().begin(), base.runs().end());
    Time arrival = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (i > 0) arrival += (i % 5 == 0) ? 2000 : 1;
      runs[i].arrival = arrival;
    }
    return Stream::from_runs(std::move(runs));
  }();
  return s;
}

void BM_SimulateSparseBurst(benchmark::State& state,
                            sim::EngineKind engine) {
  const Stream& s = sparse_burst_stream();
  const Bytes rate = sim::relative_rate(clip_stream(), 0.9);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  for (auto _ : state) {
    const SimReport report =
        sim::simulate(s, plan, "tail-drop", 1, {}, engine);
    benchmark::DoNotOptimize(report.played.bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          s.total_bytes());
}
BENCHMARK_CAPTURE(BM_SimulateSparseBurst, slot_stepped,
                  sim::EngineKind::SlotStepped);
BENCHMARK_CAPTURE(BM_SimulateSparseBurst, event_driven,
                  sim::EngineKind::EventDriven);

}  // namespace

RTSMOOTH_BENCHMARK_MAIN()
