// Microbenchmarks (google-benchmark): server-buffer operations and
// per-policy shed cost, plus one end-to-end simulation throughput figure.
// Not a paper artifact — tracks the implementation's hot paths.

#include <benchmark/benchmark.h>

#include "microbench_main.h"

#include "core/server_buffer.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace {

using namespace rtsmooth;

const Stream& clip_stream() {
  static const Stream s = trace::slice_frames(
      trace::stock_clip("cnn-news", 400), trace::ValueModel::mpeg_default(),
      trace::Slicing::ByteSlices);
  return s;
}

void BM_BufferPushSend(benchmark::State& state) {
  const Stream& s = clip_stream();
  const auto runs = s.runs();
  std::vector<SentPiece> pieces;
  for (auto _ : state) {
    ServerBuffer buf;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      buf.push(runs[i], i, runs[i].count);
      pieces.clear();
      buf.send(runs[i].total_bytes(), pieces);
      benchmark::DoNotOptimize(pieces.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(runs.size()));
}
BENCHMARK(BM_BufferPushSend);

void BM_PolicyShed(benchmark::State& state, const char* policy_name) {
  const Stream& s = clip_stream();
  const auto runs = s.runs();
  auto policy = make_policy(policy_name);
  Bytes total = 0;
  for (const auto& run : runs) total += run.total_bytes();
  for (auto _ : state) {
    state.PauseTiming();
    ServerBuffer buf;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      buf.push(runs[i], i, runs[i].count);
    }
    state.ResumeTiming();
    policy->shed(buf, total / 2);  // shed half the clip in one call
    benchmark::DoNotOptimize(buf.occupancy());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (total - total / 2));
}
BENCHMARK_CAPTURE(BM_PolicyShed, tail_drop, "tail-drop");
BENCHMARK_CAPTURE(BM_PolicyShed, greedy, "greedy");
BENCHMARK_CAPTURE(BM_PolicyShed, head_drop, "head-drop");
BENCHMARK_CAPTURE(BM_PolicyShed, random, "random");

void BM_Simulate(benchmark::State& state, const char* policy_name) {
  const Stream& s = clip_stream();
  const Bytes rate = sim::relative_rate(s, 0.9);
  const Plan plan = Planner::from_buffer_rate(2 * s.max_frame_bytes(), rate);
  for (auto _ : state) {
    const SimReport report = sim::simulate(s, plan, policy_name);
    benchmark::DoNotOptimize(report.played.bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          s.total_bytes());
}
BENCHMARK_CAPTURE(BM_Simulate, tail_drop, "tail-drop");
BENCHMARK_CAPTURE(BM_Simulate, greedy, "greedy");

}  // namespace

RTSMOOTH_BENCHMARK_MAIN()
