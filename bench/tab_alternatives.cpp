// Theory table 4 — smoothing vs the introduction's alternatives (paper
// Sect. 1): for the same clip, what each strategy reserves and what it
// delivers, plus the statistical-multiplexing sweep (capacity per channel
// to hold weighted loss under 1%, alone vs aggregated).

#include <functional>
#include <iostream>

#include "alternatives/strategies.h"
#include "bench_common.h"
#include "sim/sweep.h"
#include "trace/mpeg_model.h"

namespace {

using namespace rtsmooth;
using namespace rtsmooth::alternatives;

void part_a_strategies(const Stream& stream, const bench::BenchOptions& opts,
                       sim::RunStats* stats, bench::JsonReport* json) {
  const Bytes avg = sim::relative_rate(stream, 1.0);
  std::cout << "(a) one channel, rate = average where applicable "
            << "(avg = " << Table::num(static_cast<double>(avg) / 1024, 1)
            << " KB/slot, peak frame = "
            << Table::num(static_cast<double>(stream.max_frame_bytes()) / 1024,
                          1)
            << " KB)\n\n";
  RenegotiationConfig rcbr;
  rcbr.window = 100;
  rcbr.headroom = 1.2;
  rcbr.buffer = 4 * stream.max_frame_bytes();
  rcbr.floor_rate = 1024;
  using StrategyFn = std::function<StrategyOutcome()>;
  const std::vector<StrategyFn> strategies = {
      [&] { return evaluate_peak_provision(stream); },
      [&] { return evaluate_truncation(stream, avg); },
      [&] { return evaluate_smoothing(stream, avg, 25, "tail-drop"); },
      [&] { return evaluate_smoothing(stream, avg, 25, "greedy"); },
      [&] { return evaluate_renegotiated_cbr(stream, rcbr); },
  };
  sim::ParallelRunner runner(opts.threads);
  const auto outcomes = runner.map<StrategyOutcome>(
      strategies.size(), [&](std::size_t i) { return strategies[i](); },
      stats);
  bench::Series series{.header = {"strategy", "peakKB", "avgKB",
                                  "delivered", "benefit", "delay",
                                  "bufferKB", "renegs"}};
  for (const StrategyOutcome& out : outcomes) {
    series.add({out.name, Table::num(out.reserved_peak / 1024, 1),
                Table::num(out.reserved_average / 1024, 1),
                Table::pct(out.delivered_fraction),
                Table::pct(out.benefit_fraction),
                std::to_string(out.added_delay),
                Table::num(static_cast<double>(out.buffer_bytes) / 1024, 0),
                std::to_string(out.renegotiations)});
  }
  series.emit(opts);
  if (json != nullptr) json->add_series("strategies", series);
}

void part_b_multiplexing(std::size_t frames, unsigned threads,
                         sim::RunStats* stats, bench::JsonReport* json) {
  // Short smoothing delay (0.2 s): per-channel provisioning must then cover
  // scene-level bursts, which rarely coincide across channels — the regime
  // where multiplexing pays.
  std::cout << "\n(b) statistical multiplexing: smoothing rate per channel "
               "for <= 1% weighted loss (delay 5)\n\n";
  bench::Series series{.header = {"channels", "perChannelAloneKB",
                                  "perChannelTogetherKB", "gain"}};
  // Channel generation is cheap and seed-indexed, so it stays serial; the
  // binary searches over the smoothing rate are the expensive part and fan
  // out — one task per channel, one per aggregate checkpoint.
  std::vector<Stream> channels;
  for (std::uint64_t k = 0; k < 16; ++k) {
    trace::MpegModelConfig cfg;
    cfg.scene_sigma = (k % 2 == 0) ? 0.30 : 0.55;  // heterogeneous mix
    trace::MpegTraceModel model(cfg, 31000 + k);
    channels.push_back(trace::slice_frames(model.generate(frames),
                                           trace::ValueModel::mpeg_default(),
                                           trace::Slicing::ByteSlices));
  }
  const std::vector<std::size_t> checkpoints = {1, 2, 4, 8, 16};
  sim::ParallelRunner runner(threads);
  const auto alone_rates = runner.map<double>(
      channels.size(),
      [&](std::size_t i) {
        return static_cast<double>(min_rate_for_loss(channels[i], 5, 0.01));
      },
      stats);
  const auto together_rates = runner.map<double>(
      checkpoints.size(),
      [&](std::size_t i) {
        const std::vector<Stream> prefix(channels.begin(),
                                         channels.begin() +
                                             static_cast<std::ptrdiff_t>(
                                                 checkpoints[i]));
        const Stream aggregate = merge_streams(prefix);
        return static_cast<double>(min_rate_for_loss(aggregate, 5, 0.01)) /
               static_cast<double>(checkpoints[i]);
      },
      stats);
  double sum_alone = 0.0;
  std::size_t next_checkpoint = 0;
  for (std::size_t n = 1; n <= channels.size(); ++n) {
    sum_alone += alone_rates[n - 1];
    if (next_checkpoint < checkpoints.size() &&
        n == checkpoints[next_checkpoint]) {
      const double together = together_rates[next_checkpoint];
      const double alone = sum_alone / static_cast<double>(n);
      series.add({std::to_string(n), Table::num(alone / 1024, 1),
                  Table::num(together / 1024, 1),
                  Table::num(alone / together, 2)});
      ++next_checkpoint;
    }
  }
  series.emit(bench::BenchOptions{});
  if (json != nullptr) json->add_series("multiplexing", series);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rtsmooth::bench::parse_options(argc, argv);
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 250 : 1000);
  const Stream stream =
      rtsmooth::bench::reference_stream(rtsmooth::trace::Slicing::ByteSlices,
                                        frames);
  std::cout << "tab_alternatives — smoothing vs the introduction's "
               "alternatives (" << frames << " frames)\n\n";
  rtsmooth::sim::RunStats stats;
  rtsmooth::bench::JsonReport json("tab_alternatives", opts);
  auto* json_ptr = json.enabled() ? &json : nullptr;
  part_a_strategies(stream, opts, &stats, json_ptr);
  part_b_multiplexing(opts.quick ? 250 : 500, opts.threads, &stats, json_ptr);
  // The strategy evaluators own their simulators internally, so no registry.
  json.write(stats, rtsmooth::obs::Registry{});
  rtsmooth::bench::print_run_stats(stats);
  return 0;
}
