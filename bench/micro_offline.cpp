// Microbenchmarks (google-benchmark): off-line solver scaling — the
// polymatroid greedy's O(n log T) on byte-slice clips and the Pareto DP on
// whole-frame clips, across clip lengths.

#include <benchmark/benchmark.h>

#include "microbench_main.h"

#include "offline/pareto_dp.h"
#include "offline/unit_optimal.h"
#include "sim/sweep.h"
#include "trace/slicer.h"
#include "trace/stock_clips.h"

namespace {

using namespace rtsmooth;

Stream make_stream(trace::Slicing slicing, std::size_t frames) {
  return trace::slice_frames(trace::stock_clip("cnn-news", frames),
                             trace::ValueModel::mpeg_default(), slicing);
}

void BM_UnitOptimal(benchmark::State& state) {
  const auto frames = static_cast<std::size_t>(state.range(0));
  const Stream s = make_stream(trace::Slicing::ByteSlices, frames);
  const Bytes rate = sim::relative_rate(s, 0.9);
  const Bytes buffer = 2 * s.max_frame_bytes();
  for (auto _ : state) {
    const auto result = offline::unit_optimal(s, buffer, rate);
    benchmark::DoNotOptimize(result.benefit);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_UnitOptimal)->Arg(250)->Arg(1000)->Arg(4000);

void BM_ParetoDp(benchmark::State& state) {
  const auto frames = static_cast<std::size_t>(state.range(0));
  const Stream s = make_stream(trace::Slicing::WholeFrame, frames);
  const Bytes rate = sim::relative_rate(s, 0.9);
  const Bytes buffer = 2 * s.max_frame_bytes();
  std::size_t peak = 0;
  for (auto _ : state) {
    const auto result = offline::pareto_dp_optimal(s, buffer, rate);
    benchmark::DoNotOptimize(result.benefit);
    peak = std::max(peak, result.peak_states);
  }
  state.counters["peak_states"] =
      benchmark::Counter(static_cast<double>(peak));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_ParetoDp)->Arg(100)->Arg(250)->Arg(500);

}  // namespace

RTSMOOTH_BENCHMARK_MAIN()
