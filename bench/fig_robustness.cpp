// Robustness sweeps, in two halves.
//
// 1. The paper reports that its results "reflect typical values for these
//    clips" (Sect. 5). The first table re-derives the key Fig. 2/3 orderings
//    on every stock clip and on fresh seeds of the MPEG model, so a reader
//    can check the shapes aren't an artifact of the one reference clip:
//    Optimal <= Greedy <= Tail-Drop (weighted loss), at two rates and two
//    buffer sizes per clip.
//
// 2. The fault sweeps take the Sect. 6 open problems (lossy / bursty /
//    rate-varying channels) and measure weighted loss vs. fault severity —
//    i.i.d. erasure rate, Gilbert-Elliott mean burst length, and throttle
//    outage fraction — under both client degradation modes (skip vs. stall)
//    and with the NACK/retransmit recovery path off and on. Each table's
//    last column checks that loss is monotone in severity.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <span>
#include <vector>

#include "bench_common.h"
#include "faults/fault_links.h"
#include "sim/sweep.h"
#include "trace/mpeg_model.h"

namespace {

using namespace rtsmooth;

void ordering_section(const bench::BenchOptions& opts, std::size_t frames) {
  std::cout << "Fig. 2/3 orderings across clips and seeds (" << frames
            << " frames each)\n";
  bench::Series series{.header = {"clip", "rate(xAvg)", "B(xMaxFrame)",
                                  "TailDrop", "Greedy", "Optimal",
                                  "ordering"}};

  auto add_clip = [&](const std::string& label,
                      const trace::FrameSequence& sequence) {
    const Stream s =
        trace::slice_frames(sequence, trace::ValueModel::mpeg_default(),
                            trace::Slicing::ByteSlices);
    for (double rel : {0.9, 1.1}) {
      const Bytes rate = sim::relative_rate(s, rel);
      for (double mult : {2.0, 8.0}) {
        const double multiples[] = {mult};
        const std::vector<std::string> policies = {"tail-drop", "greedy"};
        const auto points = sim::buffer_sweep(s, multiples, rate, policies,
                                              /*with_optimal=*/true);
        const auto& point = points.front();
        const double tail = point.policies[0].report.weighted_loss();
        const double greedy = point.policies[1].report.weighted_loss();
        const double optimal = point.optimal.weighted_loss;
        const bool ordered =
            optimal <= greedy + 1e-9 && greedy <= tail + 1e-9;
        series.add({label, Table::num(rel, 1), Table::num(mult, 0),
                    Table::pct(tail), Table::pct(greedy), Table::pct(optimal),
                    ordered ? "ok" : "VIOLATED"});
      }
    }
  };

  for (const auto& name : trace::stock_clip_names()) {
    add_clip(name, trace::stock_clip(name, frames));
  }
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    trace::MpegTraceModel model(trace::MpegModelConfig{}, seed);
    add_clip("cnn-news/seed" + std::to_string(seed), model.generate(frames));
  }
  series.emit(opts);
}

/// Runs one fault axis under skip/stall x recovery off/on and prints
/// weighted loss per cell plus a monotonicity verdict on the no-recovery
/// columns (recovery can legitimately flatten the curve).
void fault_section(const bench::BenchOptions& opts, const Stream& s,
                   const Plan& plan, const std::string& title,
                   const char* axis, int axis_decimals,
                   std::span<const double> severities,
                   const sim::FaultLinkFactory& make_link,
                   const char* csv_suffix) {
  std::cout << "\n" << title << "\n";
  bench::Series series{.header = {axis, "skip", "stall", "skip+rec",
                                  "stall+rec", "retx(B)", "stalls",
                                  "monotone"}};
  const auto plain = sim::fault_sweep(s, plan, "greedy", severities, make_link,
                                      RecoveryConfig{});
  const auto recovered = sim::fault_sweep(s, plan, "greedy", severities,
                                          make_link,
                                          RecoveryConfig{.enabled = true});
  double prev_skip = -1.0;
  double prev_stall = -1.0;
  for (std::size_t i = 0; i < severities.size(); ++i) {
    const double skip = plain[i].skip.weighted_loss();
    const double stall = plain[i].stall.weighted_loss();
    const bool monotone =
        skip >= prev_skip - 1e-12 && stall >= prev_stall - 1e-12;
    series.add({Table::num(severities[i], axis_decimals), Table::pct(skip),
                Table::pct(stall), Table::pct(recovered[i].skip.weighted_loss()),
                Table::pct(recovered[i].stall.weighted_loss()),
                std::to_string(recovered[i].skip.retransmitted_bytes),
                std::to_string(plain[i].stall.stall_steps),
                monotone ? "ok" : "VIOLATED"});
    prev_skip = skip;
    prev_stall = stall;
  }
  bench::BenchOptions section_opts = opts;
  if (opts.csv_path) section_opts.csv_path = *opts.csv_path + csv_suffix;
  series.emit(section_opts);
}

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 300 : 1000);
  std::cout << "fig_robustness — orderings across clips, then weighted loss "
               "vs. fault severity\n\n";
  ordering_section(opts, frames);

  // Whole-frame slices for the fault half: a frame then takes several steps
  // to transmit, so partial-frame underflow — the case where stall and skip
  // genuinely differ — can actually occur.
  const Stream s = bench::reference_stream(trace::Slicing::WholeFrame, frames);
  const Bytes rate = sim::relative_rate(s, 1.1);
  const Plan plan = Planner::from_buffer_rate(4 * s.max_frame_bytes(), rate);

  {
    const double probs[] = {0.0, 0.02, 0.05, 0.1, 0.2};
    fault_section(
        opts, s, plan, "i.i.d. erasure: weighted loss vs. loss probability",
        "p(loss)", 2, probs,
        [](double severity, Time link_delay) -> std::unique_ptr<Link> {
          return std::make_unique<faults::ErasureLink>(
              link_delay, severity,
              Rng(900 + static_cast<std::uint64_t>(severity * 1000)));
        },
        ".erasure.csv");
  }
  {
    // Severity = mean outage length 1/p_bad_to_good; entry rate fixed, so
    // longer bursts mean a larger fraction of steps spent in outage.
    // Geometric spacing: with ~20 bursts per run the realized outage
    // fraction is noisy, and adjacent severities must stay separated by
    // more than that noise for the monotone column to be meaningful.
    const double bursts[] = {0.0, 2.0, 8.0, 32.0};
    fault_section(
        opts, s, plan,
        "Gilbert-Elliott outages: weighted loss vs. mean burst length",
        "burst(steps)", 0, bursts,
        [](double severity, Time link_delay) -> std::unique_ptr<Link> {
          faults::GilbertElliottConfig config;
          config.p_good_to_bad = severity > 0.0 ? 0.02 : 0.0;
          config.p_bad_to_good = severity > 0.0 ? 1.0 / severity : 1.0;
          return std::make_unique<faults::GilbertElliottLink>(
              link_delay, config,
              Rng(7700 + static_cast<std::uint64_t>(severity)));
        },
        ".bursts.csv");
  }
  {
    // Severity = fraction of steps with zero deliverable rate; the active
    // steps carry 2R so the backlog can drain between outages. The period
    // is long enough that the outage window overruns the smoothing delay's
    // slack at the higher severities.
    const double outage_fraction[] = {0.0, 0.25, 0.5, 0.75};
    fault_section(
        opts, s, plan,
        "throttling: weighted loss vs. outage fraction (2R when active)",
        "outage", 2, outage_fraction,
        [rate](double severity, Time link_delay) -> std::unique_ptr<Link> {
          constexpr std::size_t kPeriod = 48;
          const auto zeros =
              static_cast<std::size_t>(severity * kPeriod + 0.5);
          std::vector<Bytes> pattern(kPeriod, 2 * rate);
          std::fill_n(pattern.begin(), zeros, Bytes{0});
          return std::make_unique<faults::ThrottledLink>(
              std::make_unique<FixedDelayLink>(link_delay),
              std::move(pattern));
        },
        ".throttle.csv");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
