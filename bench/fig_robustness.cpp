// Robustness sweep — the paper reports that its results "reflect typical
// values for these clips" (Sect. 5). This bench re-derives the key Fig. 2/3
// orderings on every stock clip and on fresh seeds of the MPEG model, so a
// reader can check the shapes aren't an artifact of the one reference clip:
//   Optimal <= Greedy <= Tail-Drop (weighted loss), at two rates and two
//   buffer sizes per clip.

#include <iostream>

#include "bench_common.h"
#include "sim/sweep.h"
#include "trace/mpeg_model.h"

namespace {

using namespace rtsmooth;

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 300 : 1000);
  std::cout << "fig_robustness — Fig. 2/3 orderings across clips and seeds ("
            << frames << " frames each)\n\n";
  bench::Series series{.header = {"clip", "rate(xAvg)", "B(xMaxFrame)",
                                  "TailDrop", "Greedy", "Optimal",
                                  "ordering"}};

  auto add_clip = [&](const std::string& label,
                      const trace::FrameSequence& sequence) {
    const Stream s =
        trace::slice_frames(sequence, trace::ValueModel::mpeg_default(),
                            trace::Slicing::ByteSlices);
    for (double rel : {0.9, 1.1}) {
      const Bytes rate = sim::relative_rate(s, rel);
      for (double mult : {2.0, 8.0}) {
        const double multiples[] = {mult};
        const std::vector<std::string> policies = {"tail-drop", "greedy"};
        const auto points = sim::buffer_sweep(s, multiples, rate, policies,
                                              /*with_optimal=*/true);
        const auto& point = points.front();
        const double tail = point.policies[0].report.weighted_loss();
        const double greedy = point.policies[1].report.weighted_loss();
        const double optimal = point.optimal.weighted_loss;
        const bool ordered =
            optimal <= greedy + 1e-9 && greedy <= tail + 1e-9;
        series.add({label, Table::num(rel, 1), Table::num(mult, 0),
                    Table::pct(tail), Table::pct(greedy), Table::pct(optimal),
                    ordered ? "ok" : "VIOLATED"});
      }
    }
  };

  for (const auto& name : trace::stock_clip_names()) {
    add_clip(name, trace::stock_clip(name, frames));
  }
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    trace::MpegTraceModel model(trace::MpegModelConfig{}, seed);
    add_clip("cnn-news/seed" + std::to_string(seed), model.generate(frames));
  }
  series.emit(opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
