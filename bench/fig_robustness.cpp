// Robustness sweeps, in two halves.
//
// 1. The paper reports that its results "reflect typical values for these
//    clips" (Sect. 5). The first table re-derives the key Fig. 2/3 orderings
//    on every stock clip and on fresh seeds of the MPEG model, so a reader
//    can check the shapes aren't an artifact of the one reference clip:
//    Optimal <= Greedy <= Tail-Drop (weighted loss), at two rates and two
//    buffer sizes per clip.
//
// 2. The fault sweeps take the Sect. 6 open problems (lossy / bursty /
//    rate-varying channels) and measure weighted loss vs. fault severity —
//    i.i.d. erasure rate, Gilbert-Elliott mean burst length, and throttle
//    outage fraction — under both client degradation modes (skip vs. stall)
//    and with the NACK/retransmit recovery path off and on. Each table's
//    last column checks that loss is monotone in severity.
//
// Every cell of both halves is an independent simulation, so the whole
// bench fans out over the ParallelRunner (--threads / RTSMOOTH_THREADS).

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "faults/fault_links.h"
#include "sim/sweep.h"
#include "trace/mpeg_model.h"

namespace {

using namespace rtsmooth;

void ordering_section(const bench::BenchOptions& opts, std::size_t frames,
                      sim::RunStats* stats, bench::JsonReport* json,
                      obs::Registry* reg) {
  std::cout << "Fig. 2/3 orderings across clips and seeds (" << frames
            << " frames each)\n";
  bench::Series series{.header = {"clip", "rate(xAvg)", "B(xMaxFrame)",
                                  "TailDrop", "Greedy", "Optimal",
                                  "ordering"}};

  // Materialize the clips first (cheap, sequential), then run the full
  // (clip x rate x buffer) grid as one parallel batch of cells.
  std::vector<std::pair<std::string, Stream>> clips;
  auto add_clip = [&](const std::string& label,
                      const trace::FrameSequence& sequence) {
    clips.emplace_back(
        label, trace::slice_frames(sequence, trace::ValueModel::mpeg_default(),
                                   trace::Slicing::ByteSlices));
  };
  for (const auto& name : trace::stock_clip_names()) {
    add_clip(name, trace::stock_clip(name, frames));
  }
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    trace::MpegTraceModel model(trace::MpegModelConfig{}, seed);
    add_clip("cnn-news/seed" + std::to_string(seed), model.generate(frames));
  }

  struct Cell {
    std::size_t clip = 0;
    double rel = 0.0;
    double mult = 0.0;
  };
  std::vector<Cell> cells;
  for (std::size_t c = 0; c < clips.size(); ++c) {
    for (double rel : {0.9, 1.1}) {
      for (double mult : {2.0, 8.0}) {
        cells.push_back(Cell{.clip = c, .rel = rel, .mult = mult});
      }
    }
  }

  sim::ParallelRunner runner(opts.threads);
  bench::TaskTelemetry telemetry(reg != nullptr, cells.size());
  const auto points = runner.map<sim::SweepPoint>(
      cells.size(),
      [&](std::size_t i) {
        const Stream& s = clips[cells[i].clip].second;
        // One cell per task: the inner sweep stays serial (threads = 1) and
        // records into the task's private registry.
        sim::SweepSpec spec{.axis = sim::SweepAxis::BufferMultiple,
                            .values = {cells[i].mult},
                            .policies = {"tail-drop", "greedy"},
                            .with_optimal = true,
                            .rate = sim::relative_rate(s, cells[i].rel),
                            .threads = 1};
        spec.registry = telemetry.at(i).registry;
        return sim::sweep(s, spec).points.front();
      },
      stats);
  if (reg != nullptr) telemetry.merge_into(*reg);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& point = points[i];
    const double tail = point.policies[0].report.weighted_loss();
    const double greedy = point.policies[1].report.weighted_loss();
    const double optimal = point.optimal.weighted_loss;
    const bool ordered = optimal <= greedy + 1e-9 && greedy <= tail + 1e-9;
    series.add({clips[cells[i].clip].first, Table::num(cells[i].rel, 1),
                Table::num(cells[i].mult, 0), Table::pct(tail),
                Table::pct(greedy), Table::pct(optimal),
                ordered ? "ok" : "VIOLATED"});
  }
  series.emit(opts);
  if (json != nullptr) json->add_series("orderings", series);
}

/// Runs one fault axis under skip/stall x recovery off/on and prints
/// weighted loss per cell plus a monotonicity verdict on the no-recovery
/// columns (recovery can legitimately flatten the curve).
void fault_section(const bench::BenchOptions& opts, const Stream& s,
                   const Plan& plan, const std::string& title,
                   const char* axis, int axis_decimals,
                   std::vector<double> severities,
                   sim::FaultLinkFactory make_link, const char* csv_suffix,
                   sim::RunStats* stats, bench::JsonReport* json,
                   obs::Registry* reg) {
  std::cout << "\n" << title << "\n";
  bench::Series series{.header = {axis, "skip", "stall", "skip+rec",
                                  "stall+rec", "retx(B)", "stalls",
                                  "monotone"}};
  sim::SweepSpec spec{.axis = sim::SweepAxis::FaultSeverity,
                      .values = std::move(severities),
                      .policies = {"greedy"},
                      .plan = plan,
                      .link_factory = std::move(make_link),
                      .threads = opts.threads};
  spec.registry = reg;
  const auto plain = sim::sweep(s, spec);
  spec.recovery = RecoveryConfig{.enabled = true};
  const auto recovered = sim::sweep(s, spec);
  *stats += plain.stats;
  *stats += recovered.stats;
  double prev_skip = -1.0;
  double prev_stall = -1.0;
  for (std::size_t i = 0; i < plain.faults.size(); ++i) {
    const double skip = plain.faults[i].skip.weighted_loss();
    const double stall = plain.faults[i].stall.weighted_loss();
    const bool monotone =
        skip >= prev_skip - 1e-12 && stall >= prev_stall - 1e-12;
    series.add(
        {Table::num(spec.values[i], axis_decimals), Table::pct(skip),
         Table::pct(stall), Table::pct(recovered.faults[i].skip.weighted_loss()),
         Table::pct(recovered.faults[i].stall.weighted_loss()),
         std::to_string(recovered.faults[i].skip.retransmitted_bytes),
         std::to_string(plain.faults[i].stall.stall_steps),
         monotone ? "ok" : "VIOLATED"});
    prev_skip = skip;
    prev_stall = stall;
  }
  bench::BenchOptions section_opts = opts;
  if (opts.csv_path) section_opts.csv_path = *opts.csv_path + csv_suffix;
  series.emit(section_opts);
  // csv_suffix doubles as the series name: ".erasure.csv" -> "erasure".
  if (json != nullptr) {
    std::string name(csv_suffix);
    name = name.substr(1, name.size() - 5);
    json->add_series(name, series);
  }
}

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 300 : 1000);
  std::cout << "fig_robustness — orderings across clips, then weighted loss "
               "vs. fault severity\n\n";
  sim::RunStats stats;
  bench::JsonReport json("fig_robustness", opts);
  obs::Registry reg;
  bench::JsonReport* json_ptr = json.enabled() ? &json : nullptr;
  obs::Registry* reg_ptr = json.enabled() ? &reg : nullptr;
  ordering_section(opts, frames, &stats, json_ptr, reg_ptr);

  // Whole-frame slices for the fault half: a frame then takes several steps
  // to transmit, so partial-frame underflow — the case where stall and skip
  // genuinely differ — can actually occur.
  const Stream s = bench::reference_stream(trace::Slicing::WholeFrame, frames);
  const Bytes rate = sim::relative_rate(s, 1.1);
  const Plan plan = Planner::from_buffer_rate(4 * s.max_frame_bytes(), rate);

  fault_section(
      opts, s, plan, "i.i.d. erasure: weighted loss vs. loss probability",
      "p(loss)", 2, {0.0, 0.02, 0.05, 0.1, 0.2},
      [](double severity, Time link_delay) -> std::unique_ptr<Link> {
        return std::make_unique<faults::ErasureLink>(
            link_delay, severity,
            Rng(900 + static_cast<std::uint64_t>(severity * 1000)));
      },
      ".erasure.csv", &stats, json_ptr, reg_ptr);
  // Severity = mean outage length 1/p_bad_to_good; entry rate fixed, so
  // longer bursts mean a larger fraction of steps spent in outage.
  // Geometric spacing: with ~20 bursts per run the realized outage
  // fraction is noisy, and adjacent severities must stay separated by
  // more than that noise for the monotone column to be meaningful.
  fault_section(
      opts, s, plan,
      "Gilbert-Elliott outages: weighted loss vs. mean burst length",
      "burst(steps)", 0, {0.0, 2.0, 8.0, 32.0},
      [](double severity, Time link_delay) -> std::unique_ptr<Link> {
        faults::GilbertElliottConfig config;
        config.p_good_to_bad = severity > 0.0 ? 0.02 : 0.0;
        config.p_bad_to_good = severity > 0.0 ? 1.0 / severity : 1.0;
        return std::make_unique<faults::GilbertElliottLink>(
            link_delay, config,
            Rng(7700 + static_cast<std::uint64_t>(severity)));
      },
      ".bursts.csv", &stats, json_ptr, reg_ptr);
  // Severity = fraction of steps with zero deliverable rate; the active
  // steps carry 2R so the backlog can drain between outages. The period
  // is long enough that the outage window overruns the smoothing delay's
  // slack at the higher severities.
  fault_section(
      opts, s, plan,
      "throttling: weighted loss vs. outage fraction (2R when active)",
      "outage", 2, {0.0, 0.25, 0.5, 0.75},
      [rate](double severity, Time link_delay) -> std::unique_ptr<Link> {
        constexpr std::size_t kPeriod = 48;
        const auto zeros = static_cast<std::size_t>(severity * kPeriod + 0.5);
        std::vector<Bytes> pattern(kPeriod, 2 * rate);
        std::fill_n(pattern.begin(), zeros, Bytes{0});
        return std::make_unique<faults::ThrottledLink>(
            std::make_unique<FixedDelayLink>(link_delay), std::move(pattern));
      },
      ".throttle.csv", &stats, json_ptr, reg_ptr);

  json.write(stats, reg);
  bench::print_run_stats(stats);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
