// Figure 5 (paper Sect. 5.3): the OPTIMAL weighted loss as a function of
// buffer size, for single-byte slices versus whole-frame slices, at the
// average link rate. "The difference ... may be as high as nearly a factor
// of 4 when the buffer is very small, but it shrinks when the buffer size
// increases."
//
// Byte-slice optimum: polymatroid greedy (exact). Whole-frame optimum:
// Pareto DP (exact unless the state cap is hit, flagged in the output).

#include <iostream>

#include "bench_common.h"
#include "offline/pareto_dp.h"
#include "offline/unit_optimal.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 300 : 1200);
  const Stream bytes_stream =
      bench::reference_stream(trace::Slicing::ByteSlices, frames);
  const Stream frame_stream =
      bench::reference_stream(trace::Slicing::WholeFrame, frames);
  const Bytes rate = sim::relative_rate(bytes_stream, 1.00);

  std::cout << "Fig. 5 — OPTIMAL weighted loss vs buffer size, byte slices "
               "vs whole-frame slices, R = average rate\n"
            << "clip: cnn-news, " << frames
            << " frames; whole-frame optimum bracketed by the quantized DP "
               "(see offline/pareto_dp.h)\n\n";
  bench::Series series{.header = {"buffer(xMaxFrame)", "OptByteSlices",
                                  "OptWholeFrame[lo", "hi]", "lossRatio"}};
  std::vector<int> multiples;
  for (int m = 1; m <= 26; m += opts.quick ? 5 : 1) multiples.push_back(m);

  // Both optima of one sweep point are independent solver calls on
  // read-only streams; fan every (point, solver) pair out over the runner.
  struct Row {
    double byte_loss = 0.0;
    double frame_loss_lo = 0.0;
    double frame_loss_hi = 0.0;
  };
  const Weight total = bytes_stream.total_weight();
  sim::ParallelRunner runner(opts.threads);
  sim::RunStats stats;
  const auto rows = runner.map<Row>(
      multiples.size(),
      [&](std::size_t i) {
        const Bytes buffer = multiples[i] * bytes_stream.max_frame_bytes();
        const Plan plan = Planner::from_buffer_rate(buffer, rate);
        Row row;
        const auto byte_opt =
            offline::unit_optimal(bytes_stream, plan.buffer, plan.rate);
        row.byte_loss = 1.0 - byte_opt.benefit / total;
        // Quantized bracket: optimistic benefit -> lower loss bound, and
        // vice versa. The quantum scales with the buffer so each DP stays
        // around 8k occupancy states regardless of the sweep point.
        const Bytes quantum = std::max<Bytes>(256, plan.buffer / 8192);
        const auto bracket = offline::quantized_optimal_bracket(
            frame_stream, plan.buffer, plan.rate, quantum);
        row.frame_loss_lo = 1.0 - bracket.upper / total;
        row.frame_loss_hi = 1.0 - bracket.lower / total;
        return row;
      },
      &stats);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const double mid = (row.frame_loss_lo + row.frame_loss_hi) / 2.0;
    const double ratio = row.byte_loss > 1e-12 ? mid / row.byte_loss : 1.0;
    series.add({Table::num(multiples[i], 0), Table::pct(row.byte_loss),
                Table::pct(row.frame_loss_lo), Table::pct(row.frame_loss_hi),
                Table::num(ratio, 2)});
  }
  series.emit(opts);
  // Offline solvers only — no simulator runs, so the registry stays empty.
  bench::JsonReport json("fig5_optimal_slice_granularity", opts);
  json.add_series("optimal_loss_vs_buffer", series);
  json.write(stats, obs::Registry{});
  bench::print_run_stats(stats);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
