// Figure 5 (paper Sect. 5.3): the OPTIMAL weighted loss as a function of
// buffer size, for single-byte slices versus whole-frame slices, at the
// average link rate. "The difference ... may be as high as nearly a factor
// of 4 when the buffer is very small, but it shrinks when the buffer size
// increases."
//
// Byte-slice optimum: polymatroid greedy (exact). Whole-frame optimum:
// Pareto DP (exact unless the state cap is hit, flagged in the output).

#include <iostream>

#include "bench_common.h"
#include "offline/pareto_dp.h"
#include "offline/unit_optimal.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 300 : 1200);
  const Stream bytes_stream =
      bench::reference_stream(trace::Slicing::ByteSlices, frames);
  const Stream frame_stream =
      bench::reference_stream(trace::Slicing::WholeFrame, frames);
  const Bytes rate = sim::relative_rate(bytes_stream, 1.00);

  std::cout << "Fig. 5 — OPTIMAL weighted loss vs buffer size, byte slices "
               "vs whole-frame slices, R = average rate\n"
            << "clip: cnn-news, " << frames
            << " frames; whole-frame optimum bracketed by the quantized DP "
               "(see offline/pareto_dp.h)\n\n";
  bench::Series series{.header = {"buffer(xMaxFrame)", "OptByteSlices",
                                  "OptWholeFrame[lo", "hi]", "lossRatio"}};
  for (int m = 1; m <= 26; m += opts.quick ? 5 : 1) {
    const Bytes buffer = m * bytes_stream.max_frame_bytes();
    const Plan plan = Planner::from_buffer_rate(buffer, rate);
    const Weight total = bytes_stream.total_weight();
    const auto byte_opt =
        offline::unit_optimal(bytes_stream, plan.buffer, plan.rate);
    const double byte_loss = 1.0 - byte_opt.benefit / total;
    // Quantized bracket: optimistic benefit -> lower loss bound, and vice
    // versa. The quantum scales with the buffer so each DP stays around
    // 8k occupancy states regardless of the sweep point.
    const Bytes quantum = std::max<Bytes>(256, plan.buffer / 8192);
    const auto bracket = offline::quantized_optimal_bracket(
        frame_stream, plan.buffer, plan.rate, quantum);
    const double frame_loss_lo = 1.0 - bracket.upper / total;
    const double frame_loss_hi = 1.0 - bracket.lower / total;
    const double mid = (frame_loss_lo + frame_loss_hi) / 2.0;
    const double ratio = byte_loss > 1e-12 ? mid / byte_loss : 1.0;
    series.add({Table::num(m, 0), Table::pct(byte_loss),
                Table::pct(frame_loss_lo), Table::pct(frame_loss_hi),
                Table::num(ratio, 2)});
  }
  series.emit(opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
