// Ablation — positive link jitter (the paper's Sect. 6 open problem):
// quantifies (i) how much data an uncompensated jittery link loses at the
// client and (ii) that budgeting delay +J and client space +J*R restores
// lossless reconstruction, making the remark "a jitter control algorithm
// adds to the buffer space requirement and to overall delay" concrete.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/link.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 300 : 1200);
  const Stream s =
      bench::reference_stream(trace::Slicing::ByteSlices, frames);
  const Bytes rate = sim::relative_rate(s, 1.0);
  const Plan plan = Planner::from_buffer_rate(4 * s.max_frame_bytes(), rate);
  const Time p = 2;

  std::cout << "abl_jitter — bounded link jitter J vs client compensation "
               "(buffer = 4 x max frame, R = average rate, P = " << p
            << ")\n" << "clip: cnn-news, " << frames << " frames\n\n";
  bench::Series series{.header = {"J", "compensated", "lateLoss(bytes)",
                                  "clientOverflow(bytes)", "weightedLoss"}};
  struct Cell {
    Time j = 0;
    bool compensated = false;
  };
  std::vector<Cell> cells;
  for (Time j : {0, 2, 4, 8, 16}) {
    for (bool compensated : {false, true}) {
      cells.push_back(Cell{.j = j, .compensated = compensated});
    }
  }
  sim::RunStats stats;
  bench::JsonReport json("abl_jitter", opts);
  obs::Registry reg;
  bench::TaskTelemetry telemetry(json.enabled(), cells.size());
  sim::ParallelRunner runner(opts.threads);
  const auto reports = runner.map<SimReport>(
      cells.size(),
      [&](std::size_t i) {
        sim::SimConfig config = sim::SimConfig::balanced(plan, p);
        if (cells[i].compensated) {
          config.smoothing_delay += cells[i].j;
          config.client_buffer += cells[i].j * plan.rate;
        }
        config.telemetry = telemetry.at(i);
        return sim::simulate(
            s, config, "greedy",
            std::make_unique<BoundedJitterLink>(p, cells[i].j, Rng(1234)));
      },
      &stats);
  telemetry.merge_into(reg);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    series.add({std::to_string(cells[i].j), cells[i].compensated ? "yes" : "no",
                std::to_string(reports[i].dropped_client_late.bytes),
                std::to_string(reports[i].dropped_client_overflow.bytes),
                Table::pct(reports[i].weighted_loss())});
  }
  series.emit(opts);
  json.add_series("jitter_grid", series);
  json.write(stats, reg);
  bench::print_run_stats(stats);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
