// Ablation — positive link jitter (the paper's Sect. 6 open problem):
// quantifies (i) how much data an uncompensated jittery link loses at the
// client and (ii) that budgeting delay +J and client space +J*R restores
// lossless reconstruction, making the remark "a jitter control algorithm
// adds to the buffer space requirement and to overall delay" concrete.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/link.h"
#include "policies/policy_factory.h"
#include "sim/simulator.h"
#include "sim/sweep.h"

namespace {

using namespace rtsmooth;

int run(const bench::BenchOptions& opts) {
  const std::size_t frames =
      opts.frames ? opts.frames : (opts.quick ? 300 : 1200);
  const Stream s =
      bench::reference_stream(trace::Slicing::ByteSlices, frames);
  const Bytes rate = sim::relative_rate(s, 1.0);
  const Plan plan = Planner::from_buffer_rate(4 * s.max_frame_bytes(), rate);
  const Time p = 2;

  std::cout << "abl_jitter — bounded link jitter J vs client compensation "
               "(buffer = 4 x max frame, R = average rate, P = " << p
            << ")\n" << "clip: cnn-news, " << frames << " frames\n\n";
  bench::Series series{.header = {"J", "compensated", "lateLoss(bytes)",
                                  "clientOverflow(bytes)", "weightedLoss"}};
  for (Time j : {0, 2, 4, 8, 16}) {
    for (bool compensated : {false, true}) {
      sim::SimConfig config = sim::SimConfig::balanced(plan, p);
      if (compensated) {
        config.smoothing_delay += j;
        config.client_buffer += j * plan.rate;
      }
      sim::SmoothingSimulator simulator(
          s, config, make_policy("greedy"),
          std::make_unique<BoundedJitterLink>(p, j, Rng(1234)));
      const SimReport report = simulator.run();
      series.add({std::to_string(j), compensated ? "yes" : "no",
                  std::to_string(report.dropped_client_late.bytes),
                  std::to_string(report.dropped_client_overflow.bytes),
                  Table::pct(report.weighted_loss())});
    }
  }
  series.emit(opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(rtsmooth::bench::parse_options(argc, argv));
}
