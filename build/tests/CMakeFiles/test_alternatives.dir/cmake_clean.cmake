file(REMOVE_RECURSE
  "CMakeFiles/test_alternatives.dir/test_alternatives.cpp.o"
  "CMakeFiles/test_alternatives.dir/test_alternatives.cpp.o.d"
  "test_alternatives"
  "test_alternatives.pdb"
  "test_alternatives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
