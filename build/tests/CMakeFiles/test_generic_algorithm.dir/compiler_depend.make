# Empty compiler generated dependencies file for test_generic_algorithm.
# This may be replaced when dependencies are built.
