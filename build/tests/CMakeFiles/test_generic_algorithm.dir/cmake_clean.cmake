file(REMOVE_RECURSE
  "CMakeFiles/test_generic_algorithm.dir/test_generic_algorithm.cpp.o"
  "CMakeFiles/test_generic_algorithm.dir/test_generic_algorithm.cpp.o.d"
  "test_generic_algorithm"
  "test_generic_algorithm.pdb"
  "test_generic_algorithm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generic_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
