
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_generic_algorithm.cpp" "tests/CMakeFiles/test_generic_algorithm.dir/test_generic_algorithm.cpp.o" "gcc" "tests/CMakeFiles/test_generic_algorithm.dir/test_generic_algorithm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsmooth_lossless.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_alternatives.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_tandem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
