# Empty dependencies file for test_server_buffer.
# This may be replaced when dependencies are built.
