file(REMOVE_RECURSE
  "CMakeFiles/test_server_buffer.dir/test_server_buffer.cpp.o"
  "CMakeFiles/test_server_buffer.dir/test_server_buffer.cpp.o.d"
  "test_server_buffer"
  "test_server_buffer.pdb"
  "test_server_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
