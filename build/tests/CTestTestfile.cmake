# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_slice[1]_include.cmake")
include("/root/repo/build/tests/test_server_buffer[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_generic_algorithm[1]_include.cmake")
include("/root/repo/build/tests/test_link[1]_include.cmake")
include("/root/repo/build/tests/test_client[1]_include.cmake")
include("/root/repo/build/tests/test_planner[1]_include.cmake")
include("/root/repo/build/tests/test_offline[1]_include.cmake")
include("/root/repo/build/tests/test_tradeoff[1]_include.cmake")
include("/root/repo/build/tests/test_competitive[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_dependency[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_jitter[1]_include.cmake")
include("/root/repo/build/tests/test_lossless[1]_include.cmake")
include("/root/repo/build/tests/test_alternatives[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_model_based[1]_include.cmake")
include("/root/repo/build/tests/test_tandem[1]_include.cmake")
include("/root/repo/build/tests/test_consistency[1]_include.cmake")
include("/root/repo/build/tests/test_regression[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
