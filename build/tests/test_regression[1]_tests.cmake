add_test([=[GoldenRegression.ReferenceScenarioIsPinned]=]  /root/repo/build/tests/test_regression [==[--gtest_filter=GoldenRegression.ReferenceScenarioIsPinned]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[GoldenRegression.ReferenceScenarioIsPinned]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_regression_TESTS GoldenRegression.ReferenceScenarioIsPinned)
