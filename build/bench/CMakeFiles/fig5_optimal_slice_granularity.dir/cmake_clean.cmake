file(REMOVE_RECURSE
  "CMakeFiles/fig5_optimal_slice_granularity.dir/fig5_optimal_slice_granularity.cpp.o"
  "CMakeFiles/fig5_optimal_slice_granularity.dir/fig5_optimal_slice_granularity.cpp.o.d"
  "fig5_optimal_slice_granularity"
  "fig5_optimal_slice_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_optimal_slice_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
