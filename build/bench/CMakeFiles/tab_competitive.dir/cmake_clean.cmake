file(REMOVE_RECURSE
  "CMakeFiles/tab_competitive.dir/tab_competitive.cpp.o"
  "CMakeFiles/tab_competitive.dir/tab_competitive.cpp.o.d"
  "tab_competitive"
  "tab_competitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_competitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
