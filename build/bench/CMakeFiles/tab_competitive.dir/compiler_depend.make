# Empty compiler generated dependencies file for tab_competitive.
# This may be replaced when dependencies are built.
