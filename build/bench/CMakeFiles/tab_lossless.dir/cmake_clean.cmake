file(REMOVE_RECURSE
  "CMakeFiles/tab_lossless.dir/tab_lossless.cpp.o"
  "CMakeFiles/tab_lossless.dir/tab_lossless.cpp.o.d"
  "tab_lossless"
  "tab_lossless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_lossless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
