# Empty compiler generated dependencies file for tab_lossless.
# This may be replaced when dependencies are built.
