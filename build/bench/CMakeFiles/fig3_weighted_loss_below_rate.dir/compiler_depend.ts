# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3_weighted_loss_below_rate.
