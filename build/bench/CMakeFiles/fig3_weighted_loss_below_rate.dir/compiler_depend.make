# Empty compiler generated dependencies file for fig3_weighted_loss_below_rate.
# This may be replaced when dependencies are built.
