file(REMOVE_RECURSE
  "CMakeFiles/fig3_weighted_loss_below_rate.dir/fig3_weighted_loss_below_rate.cpp.o"
  "CMakeFiles/fig3_weighted_loss_below_rate.dir/fig3_weighted_loss_below_rate.cpp.o.d"
  "fig3_weighted_loss_below_rate"
  "fig3_weighted_loss_below_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_weighted_loss_below_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
