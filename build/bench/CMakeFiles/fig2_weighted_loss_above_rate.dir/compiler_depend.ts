# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig2_weighted_loss_above_rate.
