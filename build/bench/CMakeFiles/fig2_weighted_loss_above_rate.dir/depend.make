# Empty dependencies file for fig2_weighted_loss_above_rate.
# This may be replaced when dependencies are built.
