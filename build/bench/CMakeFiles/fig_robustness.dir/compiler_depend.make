# Empty compiler generated dependencies file for fig_robustness.
# This may be replaced when dependencies are built.
