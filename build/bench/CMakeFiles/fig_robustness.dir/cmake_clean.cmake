file(REMOVE_RECURSE
  "CMakeFiles/fig_robustness.dir/fig_robustness.cpp.o"
  "CMakeFiles/fig_robustness.dir/fig_robustness.cpp.o.d"
  "fig_robustness"
  "fig_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
