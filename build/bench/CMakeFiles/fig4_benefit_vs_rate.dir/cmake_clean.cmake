file(REMOVE_RECURSE
  "CMakeFiles/fig4_benefit_vs_rate.dir/fig4_benefit_vs_rate.cpp.o"
  "CMakeFiles/fig4_benefit_vs_rate.dir/fig4_benefit_vs_rate.cpp.o.d"
  "fig4_benefit_vs_rate"
  "fig4_benefit_vs_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_benefit_vs_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
