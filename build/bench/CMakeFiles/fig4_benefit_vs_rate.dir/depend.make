# Empty dependencies file for fig4_benefit_vs_rate.
# This may be replaced when dependencies are built.
