# Empty compiler generated dependencies file for tab_alternatives.
# This may be replaced when dependencies are built.
