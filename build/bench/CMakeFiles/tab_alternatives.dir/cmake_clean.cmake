file(REMOVE_RECURSE
  "CMakeFiles/tab_alternatives.dir/tab_alternatives.cpp.o"
  "CMakeFiles/tab_alternatives.dir/tab_alternatives.cpp.o.d"
  "tab_alternatives"
  "tab_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
