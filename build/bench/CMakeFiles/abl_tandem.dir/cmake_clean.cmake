file(REMOVE_RECURSE
  "CMakeFiles/abl_tandem.dir/abl_tandem.cpp.o"
  "CMakeFiles/abl_tandem.dir/abl_tandem.cpp.o.d"
  "abl_tandem"
  "abl_tandem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tandem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
