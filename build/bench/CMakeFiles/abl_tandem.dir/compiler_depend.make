# Empty compiler generated dependencies file for abl_tandem.
# This may be replaced when dependencies are built.
