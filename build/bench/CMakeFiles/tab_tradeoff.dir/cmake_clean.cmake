file(REMOVE_RECURSE
  "CMakeFiles/tab_tradeoff.dir/tab_tradeoff.cpp.o"
  "CMakeFiles/tab_tradeoff.dir/tab_tradeoff.cpp.o.d"
  "tab_tradeoff"
  "tab_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
