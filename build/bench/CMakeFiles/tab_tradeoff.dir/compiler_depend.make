# Empty compiler generated dependencies file for tab_tradeoff.
# This may be replaced when dependencies are built.
