file(REMOVE_RECURSE
  "CMakeFiles/abl_dependency.dir/abl_dependency.cpp.o"
  "CMakeFiles/abl_dependency.dir/abl_dependency.cpp.o.d"
  "abl_dependency"
  "abl_dependency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dependency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
