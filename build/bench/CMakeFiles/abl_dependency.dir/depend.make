# Empty dependencies file for abl_dependency.
# This may be replaced when dependencies are built.
