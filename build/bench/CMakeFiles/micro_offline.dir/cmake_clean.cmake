file(REMOVE_RECURSE
  "CMakeFiles/micro_offline.dir/micro_offline.cpp.o"
  "CMakeFiles/micro_offline.dir/micro_offline.cpp.o.d"
  "micro_offline"
  "micro_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
