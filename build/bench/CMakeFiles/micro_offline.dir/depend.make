# Empty dependencies file for micro_offline.
# This may be replaced when dependencies are built.
