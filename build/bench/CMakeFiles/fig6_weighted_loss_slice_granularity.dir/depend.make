# Empty dependencies file for fig6_weighted_loss_slice_granularity.
# This may be replaced when dependencies are built.
