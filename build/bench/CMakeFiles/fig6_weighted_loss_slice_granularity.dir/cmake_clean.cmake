file(REMOVE_RECURSE
  "CMakeFiles/fig6_weighted_loss_slice_granularity.dir/fig6_weighted_loss_slice_granularity.cpp.o"
  "CMakeFiles/fig6_weighted_loss_slice_granularity.dir/fig6_weighted_loss_slice_granularity.cpp.o.d"
  "fig6_weighted_loss_slice_granularity"
  "fig6_weighted_loss_slice_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_weighted_loss_slice_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
