file(REMOVE_RECURSE
  "CMakeFiles/rtsmooth_alternatives.dir/alternatives/strategies.cpp.o"
  "CMakeFiles/rtsmooth_alternatives.dir/alternatives/strategies.cpp.o.d"
  "librtsmooth_alternatives.a"
  "librtsmooth_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsmooth_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
