# Empty dependencies file for rtsmooth_alternatives.
# This may be replaced when dependencies are built.
