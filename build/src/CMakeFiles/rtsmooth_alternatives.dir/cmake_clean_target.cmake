file(REMOVE_RECURSE
  "librtsmooth_alternatives.a"
)
