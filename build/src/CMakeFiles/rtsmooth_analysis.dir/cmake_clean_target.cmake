file(REMOVE_RECURSE
  "librtsmooth_analysis.a"
)
