# Empty dependencies file for rtsmooth_analysis.
# This may be replaced when dependencies are built.
