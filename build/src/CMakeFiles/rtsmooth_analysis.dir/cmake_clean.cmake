file(REMOVE_RECURSE
  "CMakeFiles/rtsmooth_analysis.dir/analysis/adversarial.cpp.o"
  "CMakeFiles/rtsmooth_analysis.dir/analysis/adversarial.cpp.o.d"
  "CMakeFiles/rtsmooth_analysis.dir/analysis/bounds.cpp.o"
  "CMakeFiles/rtsmooth_analysis.dir/analysis/bounds.cpp.o.d"
  "CMakeFiles/rtsmooth_analysis.dir/analysis/competitive.cpp.o"
  "CMakeFiles/rtsmooth_analysis.dir/analysis/competitive.cpp.o.d"
  "librtsmooth_analysis.a"
  "librtsmooth_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsmooth_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
