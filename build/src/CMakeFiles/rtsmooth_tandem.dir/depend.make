# Empty dependencies file for rtsmooth_tandem.
# This may be replaced when dependencies are built.
