file(REMOVE_RECURSE
  "librtsmooth_tandem.a"
)
