file(REMOVE_RECURSE
  "CMakeFiles/rtsmooth_tandem.dir/tandem/tandem.cpp.o"
  "CMakeFiles/rtsmooth_tandem.dir/tandem/tandem.cpp.o.d"
  "librtsmooth_tandem.a"
  "librtsmooth_tandem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsmooth_tandem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
