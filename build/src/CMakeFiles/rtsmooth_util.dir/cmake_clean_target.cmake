file(REMOVE_RECURSE
  "librtsmooth_util.a"
)
