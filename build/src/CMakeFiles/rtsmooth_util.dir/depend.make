# Empty dependencies file for rtsmooth_util.
# This may be replaced when dependencies are built.
