file(REMOVE_RECURSE
  "CMakeFiles/rtsmooth_util.dir/util/csv.cpp.o"
  "CMakeFiles/rtsmooth_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/rtsmooth_util.dir/util/rng.cpp.o"
  "CMakeFiles/rtsmooth_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/rtsmooth_util.dir/util/stats.cpp.o"
  "CMakeFiles/rtsmooth_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/rtsmooth_util.dir/util/table.cpp.o"
  "CMakeFiles/rtsmooth_util.dir/util/table.cpp.o.d"
  "librtsmooth_util.a"
  "librtsmooth_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsmooth_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
