
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/offline/brute_force.cpp" "src/CMakeFiles/rtsmooth_offline.dir/offline/brute_force.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_offline.dir/offline/brute_force.cpp.o.d"
  "/root/repo/src/offline/feasibility.cpp" "src/CMakeFiles/rtsmooth_offline.dir/offline/feasibility.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_offline.dir/offline/feasibility.cpp.o.d"
  "/root/repo/src/offline/pareto_dp.cpp" "src/CMakeFiles/rtsmooth_offline.dir/offline/pareto_dp.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_offline.dir/offline/pareto_dp.cpp.o.d"
  "/root/repo/src/offline/segment_tree.cpp" "src/CMakeFiles/rtsmooth_offline.dir/offline/segment_tree.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_offline.dir/offline/segment_tree.cpp.o.d"
  "/root/repo/src/offline/unit_optimal.cpp" "src/CMakeFiles/rtsmooth_offline.dir/offline/unit_optimal.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_offline.dir/offline/unit_optimal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsmooth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
