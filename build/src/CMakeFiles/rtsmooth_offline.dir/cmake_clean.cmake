file(REMOVE_RECURSE
  "CMakeFiles/rtsmooth_offline.dir/offline/brute_force.cpp.o"
  "CMakeFiles/rtsmooth_offline.dir/offline/brute_force.cpp.o.d"
  "CMakeFiles/rtsmooth_offline.dir/offline/feasibility.cpp.o"
  "CMakeFiles/rtsmooth_offline.dir/offline/feasibility.cpp.o.d"
  "CMakeFiles/rtsmooth_offline.dir/offline/pareto_dp.cpp.o"
  "CMakeFiles/rtsmooth_offline.dir/offline/pareto_dp.cpp.o.d"
  "CMakeFiles/rtsmooth_offline.dir/offline/segment_tree.cpp.o"
  "CMakeFiles/rtsmooth_offline.dir/offline/segment_tree.cpp.o.d"
  "CMakeFiles/rtsmooth_offline.dir/offline/unit_optimal.cpp.o"
  "CMakeFiles/rtsmooth_offline.dir/offline/unit_optimal.cpp.o.d"
  "librtsmooth_offline.a"
  "librtsmooth_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsmooth_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
