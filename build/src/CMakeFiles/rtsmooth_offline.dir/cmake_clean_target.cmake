file(REMOVE_RECURSE
  "librtsmooth_offline.a"
)
