# Empty compiler generated dependencies file for rtsmooth_offline.
# This may be replaced when dependencies are built.
