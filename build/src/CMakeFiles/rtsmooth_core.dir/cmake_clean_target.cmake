file(REMOVE_RECURSE
  "librtsmooth_core.a"
)
