
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cpp" "src/CMakeFiles/rtsmooth_core.dir/core/client.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_core.dir/core/client.cpp.o.d"
  "/root/repo/src/core/generic_algorithm.cpp" "src/CMakeFiles/rtsmooth_core.dir/core/generic_algorithm.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_core.dir/core/generic_algorithm.cpp.o.d"
  "/root/repo/src/core/link.cpp" "src/CMakeFiles/rtsmooth_core.dir/core/link.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_core.dir/core/link.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/rtsmooth_core.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_core.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/CMakeFiles/rtsmooth_core.dir/core/planner.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_core.dir/core/planner.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/CMakeFiles/rtsmooth_core.dir/core/schedule.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_core.dir/core/schedule.cpp.o.d"
  "/root/repo/src/core/server_buffer.cpp" "src/CMakeFiles/rtsmooth_core.dir/core/server_buffer.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_core.dir/core/server_buffer.cpp.o.d"
  "/root/repo/src/core/slice.cpp" "src/CMakeFiles/rtsmooth_core.dir/core/slice.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_core.dir/core/slice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsmooth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
