file(REMOVE_RECURSE
  "CMakeFiles/rtsmooth_core.dir/core/client.cpp.o"
  "CMakeFiles/rtsmooth_core.dir/core/client.cpp.o.d"
  "CMakeFiles/rtsmooth_core.dir/core/generic_algorithm.cpp.o"
  "CMakeFiles/rtsmooth_core.dir/core/generic_algorithm.cpp.o.d"
  "CMakeFiles/rtsmooth_core.dir/core/link.cpp.o"
  "CMakeFiles/rtsmooth_core.dir/core/link.cpp.o.d"
  "CMakeFiles/rtsmooth_core.dir/core/metrics.cpp.o"
  "CMakeFiles/rtsmooth_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/rtsmooth_core.dir/core/planner.cpp.o"
  "CMakeFiles/rtsmooth_core.dir/core/planner.cpp.o.d"
  "CMakeFiles/rtsmooth_core.dir/core/schedule.cpp.o"
  "CMakeFiles/rtsmooth_core.dir/core/schedule.cpp.o.d"
  "CMakeFiles/rtsmooth_core.dir/core/server_buffer.cpp.o"
  "CMakeFiles/rtsmooth_core.dir/core/server_buffer.cpp.o.d"
  "CMakeFiles/rtsmooth_core.dir/core/slice.cpp.o"
  "CMakeFiles/rtsmooth_core.dir/core/slice.cpp.o.d"
  "librtsmooth_core.a"
  "librtsmooth_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsmooth_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
