# Empty compiler generated dependencies file for rtsmooth_core.
# This may be replaced when dependencies are built.
