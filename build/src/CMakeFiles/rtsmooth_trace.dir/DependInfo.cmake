
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/dependency.cpp" "src/CMakeFiles/rtsmooth_trace.dir/trace/dependency.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_trace.dir/trace/dependency.cpp.o.d"
  "/root/repo/src/trace/gop.cpp" "src/CMakeFiles/rtsmooth_trace.dir/trace/gop.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_trace.dir/trace/gop.cpp.o.d"
  "/root/repo/src/trace/mpeg_model.cpp" "src/CMakeFiles/rtsmooth_trace.dir/trace/mpeg_model.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_trace.dir/trace/mpeg_model.cpp.o.d"
  "/root/repo/src/trace/slicer.cpp" "src/CMakeFiles/rtsmooth_trace.dir/trace/slicer.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_trace.dir/trace/slicer.cpp.o.d"
  "/root/repo/src/trace/stock_clips.cpp" "src/CMakeFiles/rtsmooth_trace.dir/trace/stock_clips.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_trace.dir/trace/stock_clips.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/CMakeFiles/rtsmooth_trace.dir/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_trace.dir/trace/trace_io.cpp.o.d"
  "/root/repo/src/trace/value_model.cpp" "src/CMakeFiles/rtsmooth_trace.dir/trace/value_model.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_trace.dir/trace/value_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsmooth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
