file(REMOVE_RECURSE
  "librtsmooth_trace.a"
)
