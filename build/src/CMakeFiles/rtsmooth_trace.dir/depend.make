# Empty dependencies file for rtsmooth_trace.
# This may be replaced when dependencies are built.
