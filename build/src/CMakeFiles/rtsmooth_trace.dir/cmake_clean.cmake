file(REMOVE_RECURSE
  "CMakeFiles/rtsmooth_trace.dir/trace/dependency.cpp.o"
  "CMakeFiles/rtsmooth_trace.dir/trace/dependency.cpp.o.d"
  "CMakeFiles/rtsmooth_trace.dir/trace/gop.cpp.o"
  "CMakeFiles/rtsmooth_trace.dir/trace/gop.cpp.o.d"
  "CMakeFiles/rtsmooth_trace.dir/trace/mpeg_model.cpp.o"
  "CMakeFiles/rtsmooth_trace.dir/trace/mpeg_model.cpp.o.d"
  "CMakeFiles/rtsmooth_trace.dir/trace/slicer.cpp.o"
  "CMakeFiles/rtsmooth_trace.dir/trace/slicer.cpp.o.d"
  "CMakeFiles/rtsmooth_trace.dir/trace/stock_clips.cpp.o"
  "CMakeFiles/rtsmooth_trace.dir/trace/stock_clips.cpp.o.d"
  "CMakeFiles/rtsmooth_trace.dir/trace/trace_io.cpp.o"
  "CMakeFiles/rtsmooth_trace.dir/trace/trace_io.cpp.o.d"
  "CMakeFiles/rtsmooth_trace.dir/trace/value_model.cpp.o"
  "CMakeFiles/rtsmooth_trace.dir/trace/value_model.cpp.o.d"
  "librtsmooth_trace.a"
  "librtsmooth_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsmooth_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
