file(REMOVE_RECURSE
  "librtsmooth_lossless.a"
)
