
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lossless/cumulative.cpp" "src/CMakeFiles/rtsmooth_lossless.dir/lossless/cumulative.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_lossless.dir/lossless/cumulative.cpp.o.d"
  "/root/repo/src/lossless/delay_optimizer.cpp" "src/CMakeFiles/rtsmooth_lossless.dir/lossless/delay_optimizer.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_lossless.dir/lossless/delay_optimizer.cpp.o.d"
  "/root/repo/src/lossless/online_window.cpp" "src/CMakeFiles/rtsmooth_lossless.dir/lossless/online_window.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_lossless.dir/lossless/online_window.cpp.o.d"
  "/root/repo/src/lossless/taut_string.cpp" "src/CMakeFiles/rtsmooth_lossless.dir/lossless/taut_string.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_lossless.dir/lossless/taut_string.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsmooth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
