file(REMOVE_RECURSE
  "CMakeFiles/rtsmooth_lossless.dir/lossless/cumulative.cpp.o"
  "CMakeFiles/rtsmooth_lossless.dir/lossless/cumulative.cpp.o.d"
  "CMakeFiles/rtsmooth_lossless.dir/lossless/delay_optimizer.cpp.o"
  "CMakeFiles/rtsmooth_lossless.dir/lossless/delay_optimizer.cpp.o.d"
  "CMakeFiles/rtsmooth_lossless.dir/lossless/online_window.cpp.o"
  "CMakeFiles/rtsmooth_lossless.dir/lossless/online_window.cpp.o.d"
  "CMakeFiles/rtsmooth_lossless.dir/lossless/taut_string.cpp.o"
  "CMakeFiles/rtsmooth_lossless.dir/lossless/taut_string.cpp.o.d"
  "librtsmooth_lossless.a"
  "librtsmooth_lossless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsmooth_lossless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
