# Empty compiler generated dependencies file for rtsmooth_lossless.
# This may be replaced when dependencies are built.
