file(REMOVE_RECURSE
  "librtsmooth_policies.a"
)
