
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/greedy_drop.cpp" "src/CMakeFiles/rtsmooth_policies.dir/policies/greedy_drop.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_policies.dir/policies/greedy_drop.cpp.o.d"
  "/root/repo/src/policies/head_drop.cpp" "src/CMakeFiles/rtsmooth_policies.dir/policies/head_drop.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_policies.dir/policies/head_drop.cpp.o.d"
  "/root/repo/src/policies/policy_factory.cpp" "src/CMakeFiles/rtsmooth_policies.dir/policies/policy_factory.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_policies.dir/policies/policy_factory.cpp.o.d"
  "/root/repo/src/policies/proactive_threshold.cpp" "src/CMakeFiles/rtsmooth_policies.dir/policies/proactive_threshold.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_policies.dir/policies/proactive_threshold.cpp.o.d"
  "/root/repo/src/policies/random_drop.cpp" "src/CMakeFiles/rtsmooth_policies.dir/policies/random_drop.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_policies.dir/policies/random_drop.cpp.o.d"
  "/root/repo/src/policies/tail_drop.cpp" "src/CMakeFiles/rtsmooth_policies.dir/policies/tail_drop.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_policies.dir/policies/tail_drop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsmooth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
