# Empty compiler generated dependencies file for rtsmooth_policies.
# This may be replaced when dependencies are built.
