file(REMOVE_RECURSE
  "CMakeFiles/rtsmooth_policies.dir/policies/greedy_drop.cpp.o"
  "CMakeFiles/rtsmooth_policies.dir/policies/greedy_drop.cpp.o.d"
  "CMakeFiles/rtsmooth_policies.dir/policies/head_drop.cpp.o"
  "CMakeFiles/rtsmooth_policies.dir/policies/head_drop.cpp.o.d"
  "CMakeFiles/rtsmooth_policies.dir/policies/policy_factory.cpp.o"
  "CMakeFiles/rtsmooth_policies.dir/policies/policy_factory.cpp.o.d"
  "CMakeFiles/rtsmooth_policies.dir/policies/proactive_threshold.cpp.o"
  "CMakeFiles/rtsmooth_policies.dir/policies/proactive_threshold.cpp.o.d"
  "CMakeFiles/rtsmooth_policies.dir/policies/random_drop.cpp.o"
  "CMakeFiles/rtsmooth_policies.dir/policies/random_drop.cpp.o.d"
  "CMakeFiles/rtsmooth_policies.dir/policies/tail_drop.cpp.o"
  "CMakeFiles/rtsmooth_policies.dir/policies/tail_drop.cpp.o.d"
  "librtsmooth_policies.a"
  "librtsmooth_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsmooth_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
