
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/rtsmooth_sim.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_sim.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/rtsmooth_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_sim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/step_trace.cpp" "src/CMakeFiles/rtsmooth_sim.dir/sim/step_trace.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_sim.dir/sim/step_trace.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/CMakeFiles/rtsmooth_sim.dir/sim/sweep.cpp.o" "gcc" "src/CMakeFiles/rtsmooth_sim.dir/sim/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsmooth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsmooth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
