file(REMOVE_RECURSE
  "librtsmooth_sim.a"
)
