file(REMOVE_RECURSE
  "CMakeFiles/rtsmooth_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/rtsmooth_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/rtsmooth_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/rtsmooth_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/rtsmooth_sim.dir/sim/step_trace.cpp.o"
  "CMakeFiles/rtsmooth_sim.dir/sim/step_trace.cpp.o.d"
  "CMakeFiles/rtsmooth_sim.dir/sim/sweep.cpp.o"
  "CMakeFiles/rtsmooth_sim.dir/sim/sweep.cpp.o.d"
  "librtsmooth_sim.a"
  "librtsmooth_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsmooth_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
