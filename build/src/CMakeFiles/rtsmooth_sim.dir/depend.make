# Empty dependencies file for rtsmooth_sim.
# This may be replaced when dependencies are built.
