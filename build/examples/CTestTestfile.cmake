# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_broadcast "/root/repo/build/examples/live_broadcast")
set_tests_properties(example_live_broadcast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vod_policy_comparison "/root/repo/build/examples/vod_policy_comparison" "cnn-news" "300")
set_tests_properties(example_vod_policy_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planner "/root/repo/build/examples/capacity_planner" "--rate" "36000" "--delay" "40")
set_tests_properties(example_capacity_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiplex_gateway "/root/repo/build/examples/multiplex_gateway" "3" "300")
set_tests_properties(example_multiplex_gateway PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_inspector "/root/repo/build/examples/trace_inspector" "cnn-news" "300")
set_tests_properties(example_trace_inspector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
