# Empty dependencies file for vod_policy_comparison.
# This may be replaced when dependencies are built.
