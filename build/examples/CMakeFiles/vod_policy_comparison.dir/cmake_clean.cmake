file(REMOVE_RECURSE
  "CMakeFiles/vod_policy_comparison.dir/vod_policy_comparison.cpp.o"
  "CMakeFiles/vod_policy_comparison.dir/vod_policy_comparison.cpp.o.d"
  "vod_policy_comparison"
  "vod_policy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_policy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
