# Empty compiler generated dependencies file for multiplex_gateway.
# This may be replaced when dependencies are built.
