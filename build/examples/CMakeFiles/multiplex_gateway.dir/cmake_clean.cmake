file(REMOVE_RECURSE
  "CMakeFiles/multiplex_gateway.dir/multiplex_gateway.cpp.o"
  "CMakeFiles/multiplex_gateway.dir/multiplex_gateway.cpp.o.d"
  "multiplex_gateway"
  "multiplex_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplex_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
