// Exact off-line optimal for variable-size slices (the comparator labelled
// "Optimal" in Figs. 5-6, whole-frame model), by dynamic programming over
// buffer occupancy with Pareto pruning.
//
// Correctness: off-line, drops normalize to arrival time, so a schedule is a
// keep/drop choice per slice; the only state the future depends on is the
// post-send occupancy Q(t) (the drain is deterministic work-conserving
// FIFO). For each step we keep the set of non-dominated (occupancy, weight)
// pairs — a state is dominated when another has occupancy <= and weight >=.
// A dominated state can never lead to a better completion (occupancy enters
// all future constraints monotonically), so pruning preserves optimality and
// the result is exact.
//
// Cost: the frontier is small in practice (hundreds for MPEG-like streams);
// `StateLimit` guards pathological growth — if it is ever hit, the solver
// keeps the best `limit` states by weight and sets `exact = false` so
// callers can tell an exact answer from a (still feasible) lower bound.

#pragma once

#include <cstddef>

#include "core/slice.h"
#include "core/types.h"
#include "offline/unit_optimal.h"

namespace rtsmooth::offline {

struct ParetoDpResult {
  Weight benefit = 0.0;
  bool exact = true;          ///< false iff the state limit truncated search
  std::size_t peak_states = 0;  ///< largest frontier seen (diagnostics)
};

/// Optimal benefit for `stream` with server buffer `buffer` and rate `rate`.
/// Exact for arbitrary slice sizes; intended for streams whose per-step
/// slice counts are small (whole frames, packets). For unit slices prefer
/// unit_optimal, which is O(n log T); tests cross-validate the two.
ParetoDpResult pareto_dp_optimal(const Stream& stream, Bytes buffer,
                                 Bytes rate,
                                 std::size_t state_limit = 1u << 20);

/// Provable bracket on the variable-size optimum via size quantization —
/// the workhorse for long whole-frame clips where the exact DP's frontier
/// explodes (it is exponential in the backlog depth in the worst case).
///
///   lower: DP on the *pessimistic* rounding (slice sizes rounded UP to
///          `quantum`, buffer and rate rounded DOWN) — every schedule
///          feasible there is feasible in the true instance, so this is an
///          achievable benefit: a valid lower bound.
///   upper: DP on the *optimistic* rounding (sizes DOWN, capacity UP) —
///          every truly feasible schedule is feasible there, so its optimum
///          upper-bounds the true one.
///
/// Occupancy states live on a grid of (buffer+rate)/quantum points, so each
/// DP runs in O(steps * (buffer+rate)/quantum). Shrinking `quantum` tightens
/// the bracket at linear cost.
struct OptimalBracket {
  Weight lower = 0.0;
  Weight upper = 0.0;
  Bytes quantum = 1;
};

OptimalBracket quantized_optimal_bracket(const Stream& stream, Bytes buffer,
                                         Bytes rate, Bytes quantum);

}  // namespace rtsmooth::offline
