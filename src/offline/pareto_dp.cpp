#include "offline/pareto_dp.h"

#include <algorithm>

#include "util/assert.h"

namespace rtsmooth::offline {
namespace {

struct State {
  Bytes occ;
  Weight weight;
};

/// Sorts by occupancy and removes dominated states: afterwards occupancy is
/// strictly increasing and weight strictly increasing (equal-occupancy
/// states keep the max weight; a heavier state with smaller occupancy
/// dominates everything after it).
void prune(std::vector<State>& states) {
  std::sort(states.begin(), states.end(), [](const State& a, const State& b) {
    if (a.occ != b.occ) return a.occ < b.occ;
    return a.weight > b.weight;
  });
  std::vector<State> kept;
  kept.reserve(states.size());
  Weight best = -1.0;
  for (const State& s : states) {
    if (s.weight > best) {
      kept.push_back(s);
      best = s.weight;
    }
  }
  states = std::move(kept);
}

/// One decision item: a single slice (size may be 0 after optimistic
/// quantization, meaning "free to accept").
struct Item {
  Bytes size;
  Weight weight;
};

/// Core DP over per-step item lists. See the header for the model: fold
/// each slice as keep/drop with transient cap buffer+rate, then drain
/// `rate` and require post-send occupancy <= buffer.
ParetoDpResult dp_core(const std::vector<std::vector<Item>>& steps,
                       Bytes buffer, Bytes rate, std::size_t state_limit) {
  ParetoDpResult result;
  const Bytes transient_cap = buffer + rate;
  std::vector<State> frontier{State{.occ = 0, .weight = 0.0}};
  std::vector<State> scratch;
  for (const auto& arrivals : steps) {
    for (const Item& item : arrivals) {
      scratch.clear();
      scratch.reserve(frontier.size() * 2);
      for (const State& s : frontier) {
        scratch.push_back(s);  // drop this slice
        const Bytes occ = s.occ + item.size;
        if (occ <= transient_cap) {  // keep it
          scratch.push_back(State{.occ = occ, .weight = s.weight + item.weight});
        }
      }
      prune(scratch);
      if (scratch.size() > state_limit) {
        // Keep the heaviest states; every kept state is still feasible, so
        // the answer becomes a lower bound.
        std::nth_element(
            scratch.begin(),
            scratch.begin() + static_cast<std::ptrdiff_t>(state_limit),
            scratch.end(),
            [](const State& a, const State& b) { return a.weight > b.weight; });
        scratch.resize(state_limit);
        prune(scratch);
        result.exact = false;
      }
      frontier.swap(scratch);
      result.peak_states = std::max(result.peak_states, frontier.size());
    }
    // Work-conserving send of up to `rate` bytes; post-send occupancy must
    // respect the buffer bound.
    scratch.clear();
    scratch.reserve(frontier.size());
    for (const State& s : frontier) {
      const Bytes occ = std::max<Bytes>(0, s.occ - rate);
      if (occ <= buffer) scratch.push_back(State{.occ = occ, .weight = s.weight});
    }
    prune(scratch);
    frontier.swap(scratch);
    RTS_ASSERT(!frontier.empty());  // the all-drop state always survives
  }
  for (const State& s : frontier) {
    result.benefit = std::max(result.benefit, s.weight);
  }
  return result;
}

/// Expands a stream into per-step item lists, transforming each slice size
/// with `resize` (identity for the exact solver, the two roundings for the
/// bracket).
template <typename Resize>
std::vector<std::vector<Item>> steps_of(const Stream& stream, Resize resize) {
  std::vector<std::vector<Item>> steps(
      static_cast<std::size_t>(stream.horizon()));
  for (const SliceRun& run : stream.runs()) {
    auto& list = steps[static_cast<std::size_t>(run.arrival)];
    const Bytes size = resize(run.slice_size);
    for (std::int64_t k = 0; k < run.count; ++k) {
      list.push_back(Item{.size = size, .weight = run.weight});
    }
  }
  return steps;
}

}  // namespace

ParetoDpResult pareto_dp_optimal(const Stream& stream, Bytes buffer,
                                 Bytes rate, std::size_t state_limit) {
  RTS_EXPECTS(buffer >= 1);
  RTS_EXPECTS(rate >= 1);
  RTS_EXPECTS(state_limit >= 2);
  if (stream.empty()) return {};
  return dp_core(steps_of(stream, [](Bytes s) { return s; }), buffer, rate,
                 state_limit);
}

OptimalBracket quantized_optimal_bracket(const Stream& stream, Bytes buffer,
                                         Bytes rate, Bytes quantum) {
  RTS_EXPECTS(buffer >= 1);
  RTS_EXPECTS(rate >= 1);
  RTS_EXPECTS(quantum >= 1);
  OptimalBracket bracket{.quantum = quantum};
  if (stream.empty()) return bracket;

  // Pessimistic instance: sizes up, capacity down. Feasible there =>
  // feasible in truth (occupancies dominate step by step), so the DP value
  // is achievable.
  {
    const Bytes b = buffer / quantum;
    const Bytes r = rate / quantum;
    RTS_EXPECTS(b >= 1 && r >= 1);  // quantum must not erase the resources
    const auto steps = steps_of(stream, [quantum](Bytes s) {
      return (s + quantum - 1) / quantum;
    });
    bracket.lower = dp_core(steps, b, r, 1u << 22).benefit;
  }
  // Optimistic instance: sizes down, capacity up. Every truly feasible
  // schedule stays feasible, so the DP value bounds the truth from above.
  {
    const Bytes b = (buffer + quantum - 1) / quantum;
    const Bytes r = (rate + quantum - 1) / quantum;
    const auto steps =
        steps_of(stream, [quantum](Bytes s) { return s / quantum; });
    bracket.upper = dp_core(steps, b, r, 1u << 22).benefit;
  }
  RTS_ENSURES(bracket.lower <= bracket.upper + 1e-9);
  return bracket;
}

}  // namespace rtsmooth::offline
