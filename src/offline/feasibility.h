// Feasibility of an accepted byte stream against (buffer B, rate R).
//
// Off-line, every drop can be moved to the arrival step (it only lowers
// occupancy), so a schedule is just an accepted subset. Feasibility is then
// Lindley's recursion with work-conserving drain:
//     Q(t) = max(0, Q(t-1) + a(t) - R),  require Q(t) <= B for all t,
// equivalently (Hall's condition over intervals):
//     for all t1 <= t2:  sum_{t in [t1,t2]} a(t)  <=  B + R*(t2-t1+1).
// Both forms are implemented; tests cross-check them against each other.

#pragma once

#include <span>
#include <utility>

#include "core/slice.h"
#include "core/types.h"

namespace rtsmooth::offline {

/// Accepted bytes per step: (time, bytes), strictly increasing times.
using ByteArrivals = std::vector<std::pair<Time, Bytes>>;

/// Aggregates a stream (all of it accepted) into per-step byte arrivals.
ByteArrivals arrivals_of(const Stream& stream);

/// Peak occupancy of the Lindley recursion (work-conserving drain at
/// `rate`). O(n) in the number of distinct arrival steps.
Bytes lindley_peak(std::span<const std::pair<Time, Bytes>> arrivals,
                   Bytes rate);

/// True iff the accepted stream fits in `buffer` when drained at `rate`.
bool feasible(std::span<const std::pair<Time, Bytes>> arrivals, Bytes buffer,
              Bytes rate);

/// The Hall/interval form, O(n^2): for every pair of arrival steps, checks
/// sum <= B + R*len. Used as an independent oracle in tests.
bool feasible_interval_form(std::span<const std::pair<Time, Bytes>> arrivals,
                            Bytes buffer, Bytes rate);

}  // namespace rtsmooth::offline
