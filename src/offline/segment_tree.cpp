#include "offline/segment_tree.h"

#include <algorithm>
#include <limits>

#include "util/assert.h"

namespace rtsmooth::offline {

RangeAddTree::RangeAddTree(std::size_t n, std::int64_t base, std::int64_t step)
    : n_(n) {
  RTS_EXPECTS(n >= 1);
  nodes_.resize(4 * n);
  build(1, 0, n_ - 1, base, step);
}

void RangeAddTree::build(std::size_t node, std::size_t lo, std::size_t hi,
                         std::int64_t base, std::int64_t step) {
  if (lo == hi) {
    const std::int64_t v = base + step * static_cast<std::int64_t>(lo);
    nodes_[node].max = nodes_[node].min = v;
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  build(2 * node, lo, mid, base, step);
  build(2 * node + 1, mid + 1, hi, base, step);
  nodes_[node].max = std::max(nodes_[2 * node].max, nodes_[2 * node + 1].max);
  nodes_[node].min = std::min(nodes_[2 * node].min, nodes_[2 * node + 1].min);
}

void RangeAddTree::add(std::size_t lo, std::size_t hi, std::int64_t delta) {
  RTS_EXPECTS(lo <= hi && hi < n_);
  add(1, 0, n_ - 1, lo, hi, delta);
}

void RangeAddTree::add(std::size_t node, std::size_t node_lo,
                       std::size_t node_hi, std::size_t lo, std::size_t hi,
                       std::int64_t delta) {
  if (hi < node_lo || node_hi < lo) return;
  if (lo <= node_lo && node_hi <= hi) {
    nodes_[node].pending += delta;
    nodes_[node].max += delta;
    nodes_[node].min += delta;
    return;
  }
  const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
  add(2 * node, node_lo, mid, lo, hi, delta);
  add(2 * node + 1, mid + 1, node_hi, lo, hi, delta);
  nodes_[node].max =
      nodes_[node].pending +
      std::max(nodes_[2 * node].max, nodes_[2 * node + 1].max);
  nodes_[node].min =
      nodes_[node].pending +
      std::min(nodes_[2 * node].min, nodes_[2 * node + 1].min);
}

std::int64_t RangeAddTree::range_max(std::size_t lo, std::size_t hi) const {
  RTS_EXPECTS(lo <= hi && hi < n_);
  return query_max(1, 0, n_ - 1, lo, hi, 0);
}

std::int64_t RangeAddTree::range_min(std::size_t lo, std::size_t hi) const {
  RTS_EXPECTS(lo <= hi && hi < n_);
  return query_min(1, 0, n_ - 1, lo, hi, 0);
}

std::int64_t RangeAddTree::query_max(std::size_t node, std::size_t node_lo,
                                     std::size_t node_hi, std::size_t lo,
                                     std::size_t hi, std::int64_t acc) const {
  if (hi < node_lo || node_hi < lo) {
    return std::numeric_limits<std::int64_t>::min();
  }
  if (lo <= node_lo && node_hi <= hi) return acc + nodes_[node].max;
  const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
  const std::int64_t with_pending = acc + nodes_[node].pending;
  return std::max(
      query_max(2 * node, node_lo, mid, lo, hi, with_pending),
      query_max(2 * node + 1, mid + 1, node_hi, lo, hi, with_pending));
}

std::int64_t RangeAddTree::query_min(std::size_t node, std::size_t node_lo,
                                     std::size_t node_hi, std::size_t lo,
                                     std::size_t hi, std::int64_t acc) const {
  if (hi < node_lo || node_hi < lo) {
    return std::numeric_limits<std::int64_t>::max();
  }
  if (lo <= node_lo && node_hi <= hi) return acc + nodes_[node].min;
  const std::size_t mid = node_lo + (node_hi - node_lo) / 2;
  const std::int64_t with_pending = acc + nodes_[node].pending;
  return std::min(
      query_min(2 * node, node_lo, mid, lo, hi, with_pending),
      query_min(2 * node + 1, mid + 1, node_hi, lo, hi, with_pending));
}

}  // namespace rtsmooth::offline
