// Range-add / range-min / range-max segment tree over int64, the workhorse
// of the off-line unit-slice optimal (see unit_optimal.h): it maintains the
// prefix-sum curve F of the accepted stream, where the insertion slack at
// time t is B - (max F on [t+1, T] - min F on [0, t]).

#pragma once

#include <cstdint>
#include <vector>

namespace rtsmooth::offline {

class RangeAddTree {
 public:
  /// Tree over indices [0, n). All values start at `init(i)` = base + step*i
  /// (an affine ramp covers both the all-zero case and the -R*t drain curve
  /// the solver starts from).
  RangeAddTree(std::size_t n, std::int64_t base, std::int64_t step);

  std::size_t size() const { return n_; }

  /// Adds `delta` to every index in [lo, hi] (inclusive).
  void add(std::size_t lo, std::size_t hi, std::int64_t delta);

  /// Max / min over [lo, hi] (inclusive).
  std::int64_t range_max(std::size_t lo, std::size_t hi) const;
  std::int64_t range_min(std::size_t lo, std::size_t hi) const;

 private:
  struct Node {
    std::int64_t max = 0;
    std::int64_t min = 0;
    std::int64_t pending = 0;  ///< add applying to the whole subtree
  };

  void build(std::size_t node, std::size_t lo, std::size_t hi,
             std::int64_t base, std::int64_t step);
  void add(std::size_t node, std::size_t node_lo, std::size_t node_hi,
           std::size_t lo, std::size_t hi, std::int64_t delta);
  std::int64_t query_max(std::size_t node, std::size_t node_lo,
                         std::size_t node_hi, std::size_t lo, std::size_t hi,
                         std::int64_t acc) const;
  std::int64_t query_min(std::size_t node, std::size_t node_lo,
                         std::size_t node_hi, std::size_t lo, std::size_t hi,
                         std::int64_t acc) const;

  std::size_t n_;
  std::vector<Node> nodes_;
};

}  // namespace rtsmooth::offline
