#include "offline/feasibility.h"

#include <algorithm>
#include <map>

#include "util/assert.h"

namespace rtsmooth::offline {

ByteArrivals arrivals_of(const Stream& stream) {
  std::map<Time, Bytes> per_step;
  for (const SliceRun& run : stream.runs()) {
    per_step[run.arrival] += run.total_bytes();
  }
  ByteArrivals out;
  out.reserve(per_step.size());
  for (const auto& [t, bytes] : per_step) out.emplace_back(t, bytes);
  return out;
}

Bytes lindley_peak(std::span<const std::pair<Time, Bytes>> arrivals,
                   Bytes rate) {
  RTS_EXPECTS(rate >= 1);
  Bytes peak = 0;
  Bytes q = 0;
  Time prev = 0;
  bool first = true;
  for (const auto& [t, bytes] : arrivals) {
    RTS_EXPECTS(bytes >= 0);
    if (!first) {
      RTS_EXPECTS(t > prev);
      // Idle steps between arrivals drain the queue.
      const Time gap = t - prev - 1;
      q = std::max<Bytes>(0, q - rate * gap);
    }
    first = false;
    prev = t;
    q = std::max<Bytes>(0, q + bytes - rate);
    peak = std::max(peak, q);
  }
  return peak;
}

bool feasible(std::span<const std::pair<Time, Bytes>> arrivals, Bytes buffer,
              Bytes rate) {
  RTS_EXPECTS(buffer >= 0);
  return lindley_peak(arrivals, rate) <= buffer;
}

bool feasible_interval_form(std::span<const std::pair<Time, Bytes>> arrivals,
                            Bytes buffer, Bytes rate) {
  RTS_EXPECTS(buffer >= 0);
  RTS_EXPECTS(rate >= 1);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    Bytes sum = 0;
    for (std::size_t j = i; j < arrivals.size(); ++j) {
      sum += arrivals[j].second;
      const Time len = arrivals[j].first - arrivals[i].first + 1;
      if (sum > buffer + rate * len) return false;
    }
  }
  return true;
}

}  // namespace rtsmooth::offline
