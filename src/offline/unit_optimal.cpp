#include "offline/unit_optimal.h"

#include <algorithm>
#include <numeric>

#include "offline/segment_tree.h"
#include "util/assert.h"

namespace rtsmooth::offline {

OfflineResult unit_optimal(const Stream& stream, Bytes buffer, Bytes rate) {
  RTS_EXPECTS(buffer >= 1);
  RTS_EXPECTS(rate >= 1);
  RTS_EXPECTS(stream.unit_slices());
  OfflineResult result;
  result.accepted_per_run.assign(stream.run_count(), 0);
  if (stream.empty()) return result;

  const Time horizon = stream.horizon();  // arrivals are in [0, horizon)
  // G has indices 0..horizon where G(j) = F(j-1), G(0) = 0. With nothing
  // accepted F(t) = -R*(t+1), so G(j) = -R*j: an affine ramp.
  const auto n = static_cast<std::size_t>(horizon) + 1;
  RangeAddTree g(n, /*base=*/0, /*step=*/-rate);

  // Greedy order: decreasing byte value; ties by arrival then index for
  // determinism (any tie order yields the same optimal total).
  std::vector<std::size_t> order(stream.run_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto runs = stream.runs();
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double va = runs[a].byte_value();
    const double vb = runs[b].byte_value();
    if (va != vb) return va > vb;
    if (runs[a].arrival != runs[b].arrival) {
      return runs[a].arrival < runs[b].arrival;
    }
    return a < b;
  });

  for (std::size_t idx : order) {
    const SliceRun& run = runs[idx];
    const auto t = static_cast<std::size_t>(run.arrival);
    // Constraint pairs (t1-1, t2) with t1 <= t <= t2 map to G indices
    // v in [0, t] and u in [t+1, horizon].
    const std::int64_t hi = g.range_max(t + 1, n - 1);
    const std::int64_t lo = g.range_min(0, t);
    const Bytes slack = buffer - (hi - lo);
    const std::int64_t take =
        std::clamp<std::int64_t>(slack, 0, run.count);
    if (take == 0) continue;
    g.add(t + 1, n - 1, take);
    result.accepted_per_run[idx] = take;
    result.benefit += run.weight * static_cast<Weight>(take);
    result.accepted_bytes += take;  // unit slices: bytes == slices
    result.accepted_slices += take;
  }
  return result;
}

}  // namespace rtsmooth::offline
