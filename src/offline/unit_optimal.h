// Exact off-line optimal for unit-size slices (the comparator labelled
// "Optimal" in the paper's Figs. 2-4, byte-slice model).
//
// Why greedy-by-value is exact here: with unit slices, an accepted byte
// arriving at t must be transmitted in a link slot in [t, t + B/R] (FIFO +
// work conservation, Lemma 3.2), and slots hold R bytes each. The feasible
// sets are therefore the independent sets of a transversal matroid (bytes
// matched to slot capacities); run-length aggregation turns it into an
// integral polymatroid. For matroids/polymatroids, greedy in decreasing
// weight with exact feasibility slack maximizes total weight.
//
// The slack computation avoids quantifying over intervals: let
// F(t) = sum_{i<=t} (a(i) - R) be the drain-adjusted prefix sum of accepted
// bytes. The interval constraint "for all t1<=t2 containing t:
// a[t1..t2] <= B + R*len" becomes F(t2) - F(t1-1) <= B, so the max insertable
// at t is  B - (max_{u>=t} F(u) - min_{v<t} F(v)),  maintained with a
// range-add/min/max segment tree in O(log T) per run: O(n log T) total.

#pragma once

#include <vector>

#include "core/slice.h"
#include "core/types.h"

namespace rtsmooth::offline {

struct OfflineResult {
  Weight benefit = 0.0;       ///< total accepted weight
  Bytes accepted_bytes = 0;
  std::int64_t accepted_slices = 0;
  /// Slices accepted from each run (indexed like stream.runs()); empty for
  /// solvers that do not reconstruct the selection.
  std::vector<std::int64_t> accepted_per_run;
};

/// Computes the optimal benefit for `stream` with server buffer `buffer` and
/// link rate `rate`. Requires stream.unit_slices() (Lmax == 1) — for
/// variable sizes use pareto_dp_optimal, which is exact for any sizes.
OfflineResult unit_optimal(const Stream& stream, Bytes buffer, Bytes rate);

}  // namespace rtsmooth::offline
