// Exponential reference solver: enumerates every subset of slices and keeps
// the best feasible benefit. The test oracle for unit_optimal and
// pareto_dp_optimal; unusable beyond ~20 slices by construction.

#pragma once

#include <cstddef>

#include "core/slice.h"
#include "core/types.h"
#include "offline/unit_optimal.h"

namespace rtsmooth::offline {

/// Optimal benefit by exhaustive search. Requires the stream's total slice
/// count to be at most `max_slices` (default 22; 2^22 subsets is the
/// practical ceiling) — aborts via contract otherwise, because silently
/// running forever is not an option for an oracle.
Weight brute_force_optimal(const Stream& stream, Bytes buffer, Bytes rate,
                           std::size_t max_slices = 22);

}  // namespace rtsmooth::offline
