#include "offline/brute_force.h"

#include <algorithm>
#include <vector>

#include "offline/feasibility.h"
#include "util/assert.h"

namespace rtsmooth::offline {

Weight brute_force_optimal(const Stream& stream, Bytes buffer, Bytes rate,
                           std::size_t max_slices) {
  RTS_EXPECTS(buffer >= 0);
  RTS_EXPECTS(rate >= 1);
  const auto n = static_cast<std::size_t>(stream.total_slices());
  RTS_EXPECTS(n <= max_slices);
  RTS_EXPECTS(n <= 62);

  // Expand runs into individual slices.
  struct Item {
    Time arrival;
    Bytes size;
    Weight weight;
  };
  std::vector<Item> items;
  items.reserve(n);
  for (const SliceRun& run : stream.runs()) {
    for (std::int64_t k = 0; k < run.count; ++k) {
      items.push_back(Item{.arrival = run.arrival,
                           .size = run.slice_size,
                           .weight = run.weight});
    }
  }

  Weight best = 0.0;
  std::vector<std::pair<Time, Bytes>> arrivals;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    Weight w = 0.0;
    arrivals.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i & 1) == 0) continue;
      w += items[i].weight;
      // Items are sorted by arrival (runs are); merge same-step bytes.
      if (!arrivals.empty() && arrivals.back().first == items[i].arrival) {
        arrivals.back().second += items[i].size;
      } else {
        arrivals.emplace_back(items[i].arrival, items[i].size);
      }
    }
    if (w <= best) continue;
    if (feasible(arrivals, buffer, rate)) best = w;
  }
  return best;
}

}  // namespace rtsmooth::offline
