#include "gateway/gateway.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "obs/flight_recorder.h"
#include "util/assert.h"

namespace rtsmooth::gateway {
namespace {

/// floor(budget * part / total); all non-negative int64, product in 128 bits.
Bytes weighted_floor(Bytes budget, Bytes part, Bytes total) {
  return static_cast<Bytes>(static_cast<__uint128_t>(budget) *
                            static_cast<__uint128_t>(part) /
                            static_cast<__uint128_t>(total));
}

}  // namespace

std::string GatewayConfig::validate() const {
  if (rate < 1) return "gateway rate must be >= 1 byte/step";
  if (class_weights.empty()) return "gateway needs at least one weight class";
  for (const double w : class_weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      return "class weights must be finite and > 0";
    }
  }
  if (!(overbook > 0.0) || !std::isfinite(overbook)) {
    return "overbook factor must be finite and > 0";
  }
  if (shards < 1) return "gateway needs at least one shard";
  return "";
}

bool GatewayReport::conserves() const {
  if (admitted != served + dropped + unserved + backlog) return false;
  if (served != served_on_time + served_late) return false;
  ClassTotals sum;
  for (const ClassTotals& c : by_class) {
    if (c.served != c.on_time + c.late) return false;
    sum += c;
  }
  return sum.admitted == admitted && sum.served == served &&
         sum.dropped == dropped && sum.unserved == unserved &&
         sum.on_time == served_on_time && sum.late == served_late;
}

double GatewayReport::weighted_loss(
    const std::vector<double>& class_weights) const {
  double lost = 0.0;
  double offered = 0.0;
  for (std::size_t k = 0; k < by_class.size(); ++k) {
    const double w =
        k < class_weights.size() ? class_weights[k] : 1.0;
    lost += w * static_cast<double>(by_class[k].dropped +
                                    by_class[k].unserved);
    offered += w * static_cast<double>(by_class[k].admitted);
  }
  return offered > 0.0 ? lost / offered : 0.0;
}

double GatewayReport::byte_loss() const {
  return admitted > 0
             ? static_cast<double>(dropped + unserved) /
                   static_cast<double>(admitted)
             : 0.0;
}

Gateway::Gateway(GatewayConfig config)
    : config_(std::move(config)),
      pool_(config_.shards),
      runner_(config_.threads) {
  if (const std::string problem = config_.validate(); !problem.empty()) {
    throw std::invalid_argument("GatewayConfig: " + problem);
  }
  const std::size_t classes = config_.class_weights.size();
  scratch_.resize(config_.shards);
  for (ShardScratch& sc : scratch_) {
    sc.class_demand.assign(classes, 0);
    sc.class_budget.assign(classes, 0);
    sc.class_used.assign(classes, 0);
    sc.class_dropped.assign(classes, 0);
  }
  class_demand_.assign(classes, 0);
  class_budget_.assign(classes, 0);
  shard_demand_.assign(config_.shards, 0);
  shard_budget_.assign(config_.shards, 0);
  class_order_.resize(classes);
  std::iota(class_order_.begin(), class_order_.end(), std::size_t{0});
  std::stable_sort(class_order_.begin(), class_order_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return config_.class_weights[a] > config_.class_weights[b];
                   });
  totals_.by_class.assign(classes, ClassTotals{});

  if (obs::Registry* reg = config_.telemetry.registry) {
    ctr_admitted_ = &reg->counter("gateway.admitted_bytes");
    ctr_served_ = &reg->counter("gateway.served_bytes");
    ctr_dropped_ = &reg->counter("gateway.dropped_bytes");
    ctr_unserved_ = &reg->counter("gateway.unserved_bytes");
    ctr_joins_ = &reg->counter("gateway.joins");
    ctr_leaves_ = &reg->counter("gateway.leaves");
    ctr_rejected_ = &reg->counter("gateway.rejected_joins");
    ctr_violations_ = &reg->counter("gateway.violations");
    ctr_on_time_ = &reg->counter("gateway.on_time_bytes");
    ctr_late_ = &reg->counter("gateway.late_bytes");
    gauge_backlog_ = &reg->gauge("gateway.max_backlog_bytes");
    gauge_max_lateness_ = &reg->gauge("gateway.max_lateness_steps");
    hist_step_served_ = &reg->histogram("gateway.step_served_bytes",
                                        obs::HistogramSpec::exponential(64, 16));
    const obs::HistogramSpec steps_spec = obs::HistogramSpec::exponential(1, 16);
    hist_slack_ = &reg->histogram("gateway.slack_steps", steps_spec);
    hist_lateness_ = &reg->histogram("gateway.lateness_steps", steps_spec);
    hist_class_lateness_.reserve(classes);
    ctr_class_on_time_.reserve(classes);
    ctr_class_late_.reserve(classes);
    ctr_class_shed_.reserve(classes);
    for (std::size_t k = 0; k < classes; ++k) {
      const std::string prefix = "gateway.c" + std::to_string(k);
      hist_class_lateness_.push_back(
          &reg->histogram(prefix + ".lateness_steps", steps_spec));
      ctr_class_on_time_.push_back(&reg->counter(prefix + ".on_time_bytes"));
      ctr_class_late_.push_back(&reg->counter(prefix + ".late_bytes"));
      ctr_class_shed_.push_back(&reg->counter(prefix + ".shed_bytes"));
    }
  }
  if (obs::FlightRecorder* rec = config_.telemetry.recorder) {
    obs::Json context = obs::Json::object();
    context["component"] = "gateway";
    context["rate"] = config_.rate;
    context["shards"] = static_cast<std::int64_t>(config_.shards);
    context["sharing"] = std::string(to_string(config_.sharing));
    context["classes"] = static_cast<std::int64_t>(
        config_.class_weights.size());
    rec->set_context(std::move(context));
  }
}

std::optional<StreamId> Gateway::add_stream(const StreamSpec& spec) {
  if (const std::string problem =
          spec.validate(config_.class_weights.size());
      !problem.empty()) {
    throw std::invalid_argument("StreamSpec: " + problem);
  }
  if (config_.admission == AdmissionPolicy::CapacityCheck) {
    const double subscribed =
        static_cast<double>(pool_.subscribed_rate() + spec.rate);
    if (subscribed > config_.overbook * static_cast<double>(config_.rate)) {
      ++totals_.rejected_joins;
      if (ctr_rejected_ != nullptr) ctr_rejected_->add();
      return std::nullopt;
    }
  }
  const StreamId id = pool_.add(spec, now_);
  ++totals_.joins;
  if (ctr_joins_ != nullptr) ctr_joins_->add();
  return id;
}

std::optional<StreamStats> Gateway::remove_stream(StreamId id) {
  std::optional<StreamStats> stats = pool_.remove(id, now_);
  if (!stats) return std::nullopt;
  ++totals_.leaves;
  totals_.backlog -= stats->unserved;  // live backlog shrank by the write-off
  totals_.unserved += stats->unserved;
  ClassTotals& cls = totals_.by_class[stats->weight_class];
  cls.admitted += stats->admitted;
  cls.served += stats->served;
  cls.dropped += stats->dropped;
  cls.unserved += stats->unserved;
  cls.on_time += stats->served_on_time;
  cls.late += stats->served_late;
  cls.max_lateness = std::max(cls.max_lateness, stats->max_lateness);
  if (ctr_leaves_ != nullptr) ctr_leaves_->add();
  if (ctr_unserved_ != nullptr) ctr_unserved_->add(stats->unserved);
  return stats;
}

template <typename Fn>
void Gateway::for_each_shard(Fn&& fn) {
  const std::size_t n = pool_.shard_count();
  if (runner_.threads() <= 1 || n <= 1) {
    // In-place serial path: no task vector, no pool — and, per the
    // determinism contract, the reference the parallel path must match.
    for (std::size_t s = 0; s < n; ++s) fn(s);
    run_stats_.tasks += n;
    run_stats_.threads = std::max(run_stats_.threads, 1U);
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    tasks.push_back([&fn, s] { fn(s); });
  }
  run_stats_ += runner_.run(std::move(tasks));
}

void Gateway::arrive_and_demand(std::size_t s) {
  Shard& sh = pool_.shard(s);
  ShardScratch& sc = scratch_[s];
  std::fill(sc.class_demand.begin(), sc.class_demand.end(), Bytes{0});
  sc.step_admitted = 0;
  const std::vector<Bytes>* scripts = pool_.scripts().data();
  const std::size_t n = sh.size();
  const bool cap_at_nominal = config_.sharing == SharePolicy::Static;
  for (std::size_t i = 0; i < n; ++i) {
    const Bytes a = arrival_bytes(sh, scripts, i, now_ - sh.joined[i]);
    sh.backlog[i] += a;
    sh.admitted[i] += a;
    sc.step_admitted += a;
    if (a > 0) sh.cohorts[i].push_back(now_, a);
    // Static streams never ask for more than their nominal rate; the other
    // policies bid their whole backlog and let the budget split decide.
    sh.demand[i] = cap_at_nominal ? std::min(sh.backlog[i], sh.rate[i])
                                  : sh.backlog[i];
    sc.class_demand[sh.klass[i]] += sh.demand[i];
  }
}

void Gateway::settle_cohorts(Shard& sh, ShardScratch& sc, std::size_t i,
                             Bytes send, Bytes drop) {
  CohortRing& ring = sh.cohorts[i];
  const Time deadline = sh.deadline[i];
  const bool sampling = ctr_on_time_ != nullptr;
  // Serve from the head: oldest bytes leave first, so each consumed span
  // has an exact wait = now - arrival. On time iff wait <= D_i.
  Bytes remaining = send;
  while (remaining > 0) {
    CohortRing::Cohort& c = ring.front();
    const Bytes take = std::min(c.bytes, remaining);
    const Time wait = now_ - c.arrival;
    if (wait <= deadline) {
      sh.on_time[i] += take;
      sc.step_on_time += take;
      if (sampling) {
        sc.samples.push_back(
            LatenessSample{sh.klass[i], deadline - wait, take, false});
      }
    } else {
      const Time lateness = wait - deadline;
      sh.late[i] += take;
      sc.step_late += take;
      sh.max_late[i] = std::max(sh.max_late[i], lateness);
      sc.step_max_late = std::max(sc.step_max_late, lateness);
      if (sampling) {
        sc.samples.push_back(
            LatenessSample{sh.klass[i], lateness, take, true});
      }
    }
    c.bytes -= take;
    remaining -= take;
    if (c.bytes == 0) ring.pop_front();
  }
  // Shed from the tail: Eq. (3) drops the newest bytes (the ones that
  // overflowed B_i); dropped bytes are in the drop ledger, not lateness.
  Bytes shed = drop;
  while (shed > 0) {
    CohortRing::Cohort& c = ring.back();
    const Bytes take = std::min(c.bytes, shed);
    c.bytes -= take;
    shed -= take;
    if (c.bytes == 0) ring.pop_back();
  }
}

void Gateway::allocate_budgets() {
  const std::size_t classes = config_.class_weights.size();
  const std::size_t shards = pool_.shard_count();

  // Total demand per class across shards.
  for (std::size_t k = 0; k < classes; ++k) {
    Bytes total = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      total += scratch_[s].class_demand[k];
    }
    class_demand_[k] = total;
  }

  // Divide R across classes.
  if (config_.sharing == SharePolicy::Static) {
    // Class-blind: demands are already capped at the nominal rates, so this
    // only scales proportionally when the sum of nominal demands exceeds R.
    apportion(config_.rate, class_demand_, class_budget_);
  } else if (config_.sharing == SharePolicy::Priority) {
    Bytes remaining = config_.rate;
    std::fill(class_budget_.begin(), class_budget_.end(), Bytes{0});
    for (const std::size_t k : class_order_) {
      const Bytes grant = std::min(class_demand_[k], remaining);
      class_budget_[k] = grant;
      remaining -= grant;
    }
  } else {
    water_fill(config_.rate, config_.class_weights, class_demand_,
               class_budget_);
  }

  // Split each class budget across shards in proportion to shard demand.
  for (std::size_t k = 0; k < classes; ++k) {
    for (std::size_t s = 0; s < shards; ++s) {
      shard_demand_[s] = scratch_[s].class_demand[k];
    }
    apportion(class_budget_[k], shard_demand_, shard_budget_);
    for (std::size_t s = 0; s < shards; ++s) {
      scratch_[s].class_budget[k] = shard_budget_[s];
    }
  }
}

void Gateway::serve_and_drop(std::size_t s) {
  Shard& sh = pool_.shard(s);
  ShardScratch& sc = scratch_[s];
  sc.step_served = 0;
  sc.step_dropped = 0;
  sc.step_on_time = 0;
  sc.step_late = 0;
  sc.step_max_late = 0;
  sc.samples.clear();
  sc.backlog_total = 0;
  std::fill(sc.class_dropped.begin(), sc.class_dropped.end(), Bytes{0});
  const std::size_t n = sh.size();

  // Largest-remainder apportionment of each class's shard budget across the
  // shard's streams, fused over the mixed-class columns: floors first, then
  // the remainder bytes in ascending slot order (sharing.h apportion(),
  // inlined here so one pass covers every class).
  std::fill(sc.class_used.begin(), sc.class_used.end(), Bytes{0});
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t k = sh.klass[i];
    const Bytes total = sc.class_demand[k];
    sh.alloc[i] = total > 0
                      ? weighted_floor(sc.class_budget[k], sh.demand[i], total)
                      : 0;
    sc.class_used[k] += sh.alloc[i];
  }
  for (std::size_t k = 0; k < sc.class_used.size(); ++k) {
    sc.class_used[k] = sc.class_budget[k] - sc.class_used[k];  // leftover now
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t k = sh.klass[i];
    Bytes& leftover = sc.class_used[k];
    if (leftover > 0) {
      const Bytes extra = std::min(leftover, sh.demand[i] - sh.alloc[i]);
      sh.alloc[i] += extra;
      leftover -= extra;
    }
    // Serve (Eq. (2) per stream), then shed down to B_i (Eq. (3)).
    const Bytes send = sh.alloc[i];
    sh.backlog[i] -= send;
    sh.served[i] += send;
    sc.step_served += send;
    const Bytes drop = std::max<Bytes>(0, sh.backlog[i] - sh.buffer[i]);
    sh.backlog[i] -= drop;
    sh.dropped[i] += drop;
    sc.step_dropped += drop;
    sc.class_dropped[k] += drop;
    sc.backlog_total += sh.backlog[i];
    settle_cohorts(sh, sc, i, send, drop);
  }
}

void Gateway::step() {
  if (config_.sharing == SharePolicy::Static &&
      pool_.subscribed_rate() <= config_.rate) {
    // Uncontended static sharing: sum(min(backlog_i, r_i)) <= sum(r_i) <= R,
    // so no cross-stream coupling exists and arrivals, service at
    // min(backlog, r_i) and the Eq. (3) shed fuse into one shard-parallel
    // pass. (The budgeted path below computes the identical allocation —
    // apportion() grants every demand when they fit — this is purely the
    // fast path.)
    for_each_shard([this](std::size_t s) {
      Shard& sh = pool_.shard(s);
      ShardScratch& sc = scratch_[s];
      sc.step_admitted = 0;
      sc.step_served = 0;
      sc.step_dropped = 0;
      sc.step_on_time = 0;
      sc.step_late = 0;
      sc.step_max_late = 0;
      sc.samples.clear();
      sc.backlog_total = 0;
      std::fill(sc.class_dropped.begin(), sc.class_dropped.end(), Bytes{0});
      const std::vector<Bytes>* scripts = pool_.scripts().data();
      const std::size_t n = sh.size();
      for (std::size_t i = 0; i < n; ++i) {
        const Bytes a = arrival_bytes(sh, scripts, i, now_ - sh.joined[i]);
        sh.backlog[i] += a;
        sh.admitted[i] += a;
        sc.step_admitted += a;
        if (a > 0) sh.cohorts[i].push_back(now_, a);
        const Bytes send = std::min(sh.backlog[i], sh.rate[i]);
        sh.backlog[i] -= send;
        sh.served[i] += send;
        sc.step_served += send;
        const Bytes drop = std::max<Bytes>(0, sh.backlog[i] - sh.buffer[i]);
        sh.backlog[i] -= drop;
        sh.dropped[i] += drop;
        sc.step_dropped += drop;
        sc.class_dropped[sh.klass[i]] += drop;
        sc.backlog_total += sh.backlog[i];
        settle_cohorts(sh, sc, i, send, drop);
      }
    });
  } else {
    for_each_shard([this](std::size_t s) { arrive_and_demand(s); });
    allocate_budgets();
    for_each_shard([this](std::size_t s) { serve_and_drop(s); });
  }
  fold_step();
}

void Gateway::fold_step() {
  Bytes admitted = 0;
  Bytes served = 0;
  Bytes dropped = 0;
  Bytes backlog = 0;
  Bytes on_time = 0;
  Bytes late = 0;
  Time step_max_late = 0;
  for (const ShardScratch& sc : scratch_) {  // fixed shard order
    admitted += sc.step_admitted;
    served += sc.step_served;
    dropped += sc.step_dropped;
    backlog += sc.backlog_total;
    on_time += sc.step_on_time;
    late += sc.step_late;
    step_max_late = std::max(step_max_late, sc.step_max_late);
  }

  totals_.admitted += admitted;
  totals_.served += served;
  totals_.dropped += dropped;
  totals_.served_on_time += on_time;
  totals_.served_late += late;
  const Time prev_max_lateness = totals_.max_lateness;
  totals_.max_lateness = std::max(totals_.max_lateness, step_max_late);
  const Bytes prev_backlog = totals_.backlog;
  totals_.backlog = backlog;
  totals_.max_backlog = std::max(totals_.max_backlog, backlog);
  totals_.max_step_served = std::max(totals_.max_step_served, served);
  ++totals_.steps;

  // Step invariants: the link never carries more than R, and the step's
  // byte flows balance. Violations are recorded, not fatal — the flight
  // recorder freezes the window for forensics, like the simulator's
  // InvariantMonitor.
  obs::FlightRecorder* rec = config_.telemetry.recorder;
  if (served > config_.rate) {
    ++totals_.violations;
    if (ctr_violations_ != nullptr) ctr_violations_->add();
    if (rec != nullptr) {
      rec->on_violation(now_, "gateway.oversend", served - config_.rate);
    }
  }
  const Bytes imbalance = admitted - served - dropped -
                          (backlog - prev_backlog);
  if (imbalance != 0) {
    ++totals_.violations;
    if (ctr_violations_ != nullptr) ctr_violations_->add();
    if (rec != nullptr) {
      rec->on_violation(now_, "gateway.conservation", imbalance);
    }
  }

  if (ctr_admitted_ != nullptr) {
    ctr_admitted_->add(admitted);
    ctr_served_->add(served);
    ctr_dropped_->add(dropped);
    ctr_on_time_->add(on_time);
    ctr_late_->add(late);
    gauge_backlog_->update(backlog);
    gauge_max_lateness_->update(totals_.max_lateness);
    hist_step_served_->record(served);
    // Drain the shard-local lateness observations serially, in fixed
    // shard order — same determinism discipline as the tallies above.
    for (ShardScratch& sc : scratch_) {
      for (const LatenessSample& sample : sc.samples) {
        if (sample.late) {
          hist_lateness_->record(sample.steps, sample.bytes);
          hist_class_lateness_[sample.klass]->record(sample.steps,
                                                     sample.bytes);
          ctr_class_late_[sample.klass]->add(sample.bytes);
        } else {
          hist_slack_->record(sample.steps, sample.bytes);
          ctr_class_on_time_[sample.klass]->add(sample.bytes);
        }
      }
      sc.samples.clear();
      for (std::size_t k = 0; k < sc.class_dropped.size(); ++k) {
        if (sc.class_dropped[k] != 0) {
          ctr_class_shed_[k]->add(sc.class_dropped[k]);
        }
      }
    }
  }
  if (rec != nullptr && totals_.max_lateness > prev_max_lateness) {
    // A fresh lateness high-water mark lands in the incident context, so a
    // frozen window names how far past its deadline the worst byte was.
    rec->annotate("max_lateness_steps", obs::Json(totals_.max_lateness));
  }
  if (rec != nullptr) {
    rec->record(obs::StepRecord{.t = now_,
                                .arrived = admitted,
                                .sent = served,
                                .delivered = served,
                                .played = served,
                                .dropped_server = dropped,
                                .dropped_client = 0,
                                .retransmitted = 0,
                                .server_occupancy = backlog,
                                .client_occupancy = 0,
                                .link_idle = served == 0,
                                .stalled = false});
  }
  ++now_;
}

void Gateway::run(Time n) {
  for (Time i = 0; i < n; ++i) step();
}

GatewayReport Gateway::report() const {
  GatewayReport r = totals_;  // departed totals + counters + step tallies
  for (std::size_t s = 0; s < pool_.shard_count(); ++s) {
    const Shard& sh = pool_.shard(s);
    for (std::size_t i = 0; i < sh.size(); ++i) {
      ClassTotals& cls = r.by_class[sh.klass[i]];
      cls.admitted += sh.admitted[i];
      cls.served += sh.served[i];
      cls.dropped += sh.dropped[i];
      cls.on_time += sh.on_time[i];
      cls.late += sh.late[i];
      cls.max_lateness = std::max(cls.max_lateness, sh.max_late[i]);
    }
  }
  return r;
}

}  // namespace rtsmooth::gateway
