// Link-sharing arithmetic for the multiplex gateway: how one shared link of
// rate R is divided among weight classes and streams each step.
//
// Everything here is pure integer arithmetic over byte counts — no floats in
// the allocation path beyond the class weights themselves, no sorting of
// runtime-sized arrays, no iteration order that depends on container
// internals — because these functions sit inside the shard fan-out and must
// produce byte-identical allocations for any thread count (DESIGN.md
// Sect. 9/14). Ties are always broken in ascending index order.

#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "core/types.h"

namespace rtsmooth::gateway {

/// How the link rate R is shared among streams each step.
enum class SharePolicy {
  /// Every stream is served at most its nominal rate r_i; leftover link
  /// capacity is NOT redistributed. When the nominal demands themselves
  /// exceed R (an oversubscribed link), the shortfall is split in
  /// proportion to demand, class-blind — the link never carries more than
  /// R. Uncontended (sum r_i <= R) this is N independent paper
  /// configurations riding one link — the regime the small-N differential
  /// test checks against per-stream ReferenceSimulator runs.
  Static,
  /// Work-conserving weighted sharing: R is water-filled across weight
  /// classes by class weight, then apportioned within each class in
  /// proportion to per-stream demand. No byte idles while any stream has
  /// backlog.
  WeightedShare,
  /// Strict priority: classes in descending weight order take what they
  /// demand; lighter classes get the remainder. Starvation is the point.
  Priority,
};

/// "static", "weighted-share", "priority".
std::string_view to_string(SharePolicy policy);
std::optional<SharePolicy> parse_share_policy(std::string_view name);

/// Water-fills `budget` bytes across classes: class k asks for demand[k] and
/// carries weight weights[k] (> 0). Classes whose weighted share exceeds
/// their demand are granted exactly their demand and the surplus
/// redistributes among the still-hungry classes by weight; fractional-byte
/// remainders go one byte at a time in ascending class index. Postcondition:
/// sum(out) == min(budget, sum(demand)) and out[k] <= demand[k].
void water_fill(Bytes budget, std::span<const double> weights,
                std::span<const Bytes> demand, std::span<Bytes> out);

/// Largest-remainder apportionment of `budget` bytes proportional to
/// `demand`: grant floor(budget * demand[i] / total_demand) each, then hand
/// out the remainder bytes in ascending index order, never exceeding
/// demand[i]. Postcondition: sum(out) == min(budget, sum(demand)) and
/// out[i] <= demand[i]. O(n), no sort, deterministic.
void apportion(Bytes budget, std::span<const Bytes> demand,
               std::span<Bytes> out);

}  // namespace rtsmooth::gateway
