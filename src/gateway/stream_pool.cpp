#include "gateway/stream_pool.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace rtsmooth::gateway {

ArrivalModel ArrivalModel::constant(Bytes per_step) {
  return ArrivalModel{.kind = Kind::Constant, .bytes = per_step};
}

ArrivalModel ArrivalModel::on_off(Bytes burst, Time on, Time off,
                                  std::uint64_t seed) {
  return ArrivalModel{
      .kind = Kind::OnOff, .bytes = burst, .on = on, .off = off, .seed = seed};
}

ArrivalModel ArrivalModel::vbr(Bytes mean, std::uint64_t seed) {
  return ArrivalModel{.kind = Kind::Vbr, .bytes = mean, .seed = seed};
}

ArrivalModel ArrivalModel::from_script(std::vector<Bytes> bytes_per_step) {
  ArrivalModel model;
  model.kind = Kind::Script;
  model.script = std::move(bytes_per_step);
  return model;
}

std::string StreamSpec::validate(std::size_t class_count) const {
  if (rate < 1) return "stream rate must be >= 1 byte/step";
  if (deadline < 1) return "stream deadline must be >= 1 step";
  if (weight_class >= class_count) {
    return "weight_class " + std::to_string(weight_class) +
           " out of range (gateway has " + std::to_string(class_count) +
           " classes)";
  }
  if (arrivals.bytes < 0) return "arrival bytes must be >= 0";
  if (arrivals.kind == ArrivalModel::Kind::OnOff) {
    if (arrivals.on < 1) return "on-off arrival model needs on >= 1";
    if (arrivals.off < 0) return "on-off arrival model needs off >= 0";
  }
  if (arrivals.kind == ArrivalModel::Kind::Script) {
    for (const Bytes b : arrivals.script) {
      if (b < 0) return "scripted arrivals must be >= 0";
    }
  }
  return "";
}

Bytes arrival_bytes(const Shard& shard, const std::vector<Bytes>* scripts,
                    std::size_t i, Time local_t) {
  switch (static_cast<ArrivalModel::Kind>(shard.arr_kind[i])) {
    case ArrivalModel::Kind::Constant:
      return shard.arr_bytes[i];
    case ArrivalModel::Kind::OnOff: {
      const Time period = shard.arr_period[i];
      const Time phase =
          (local_t + static_cast<Time>(shard.arr_seed[i] %
                                       static_cast<std::uint64_t>(period))) %
          period;
      return phase < shard.arr_on[i] ? shard.arr_bytes[i] : 0;
    }
    case ArrivalModel::Kind::Vbr: {
      // Stateless draw: uniform-ish in [0, 2*mean] with an I-frame-like
      // burst of 6*mean roughly every 32 steps. Integer only, so the trace
      // is bit-identical on every platform.
      const Bytes mean = shard.arr_bytes[i];
      if (mean == 0) return 0;
      const std::uint64_t h =
          mix64(shard.arr_seed[i] ^
                (static_cast<std::uint64_t>(local_t) * 0x8CB92BA72F3D8DD7ULL));
      Bytes a = static_cast<Bytes>(
          h % static_cast<std::uint64_t>(2 * mean + 1));
      if (((h >> 57) & 31U) == 0) a += 6 * mean;
      return a;
    }
    case ArrivalModel::Kind::Script: {
      const std::int32_t s = shard.arr_script[i];
      if (s < 0) return 0;
      const std::vector<Bytes>& script = scripts[s];
      return local_t < static_cast<Time>(script.size())
                 ? script[static_cast<std::size_t>(local_t)]
                 : 0;
    }
  }
  return 0;
}

void CohortRing::grow() {
  std::vector<Cohort> bigger(std::max<std::size_t>(slots_.size() * 2, 4));
  for (std::size_t i = 0; i < size_; ++i) {
    bigger[i] = slots_[(head_ + i) % slots_.size()];
  }
  slots_ = std::move(bigger);
  head_ = 0;
}

StreamPool::StreamPool(std::size_t shards) : shards_(std::max<std::size_t>(shards, 1)) {}

StreamId StreamPool::add(const StreamSpec& spec, Time now) {
  const StreamId id = next_id_++;
  const auto s = static_cast<std::uint32_t>(id % shards_.size());
  Shard& shard = shards_[s];
  const auto slot = static_cast<std::uint32_t>(shard.size());

  shard.id.push_back(id);
  shard.klass.push_back(static_cast<std::uint32_t>(spec.weight_class));
  shard.rate.push_back(spec.rate);
  shard.buffer.push_back(spec.buffer());
  shard.deadline.push_back(spec.deadline);
  shard.backlog.push_back(0);
  shard.demand.push_back(0);
  shard.alloc.push_back(0);
  shard.admitted.push_back(0);
  shard.served.push_back(0);
  shard.dropped.push_back(0);
  shard.on_time.push_back(0);
  shard.late.push_back(0);
  shard.max_late.push_back(0);
  shard.cohorts.emplace_back();
  shard.joined.push_back(now);
  shard.arr_kind.push_back(static_cast<std::uint8_t>(spec.arrivals.kind));
  shard.arr_bytes.push_back(spec.arrivals.bytes);
  shard.arr_on.push_back(spec.arrivals.on);
  shard.arr_period.push_back(spec.arrivals.on + spec.arrivals.off);
  shard.arr_seed.push_back(spec.arrivals.seed);
  if (spec.arrivals.kind == ArrivalModel::Kind::Script) {
    shard.arr_script.push_back(static_cast<std::int32_t>(scripts_.size()));
    scripts_.push_back(spec.arrivals.script);
  } else {
    shard.arr_script.push_back(-1);
  }

  where_.emplace(id, std::make_pair(s, slot));
  subscribed_ += spec.rate;
  ++live_;
  return id;
}

std::optional<StreamStats> StreamPool::remove(StreamId id, Time now) {
  const auto it = where_.find(id);
  if (it == where_.end()) return std::nullopt;
  const auto [s, slot] = it->second;
  Shard& shard = shards_[s];

  StreamStats stats = row(shard, slot);
  stats.unserved += stats.backlog;  // write the residue off into the ledger
  stats.backlog = 0;
  stats.left = now;

  subscribed_ -= shard.rate[slot];
  --live_;
  where_.erase(it);

  const std::size_t last = shard.size() - 1;
  if (slot != last) {
    shard.id[slot] = shard.id[last];
    shard.klass[slot] = shard.klass[last];
    shard.rate[slot] = shard.rate[last];
    shard.buffer[slot] = shard.buffer[last];
    shard.deadline[slot] = shard.deadline[last];
    shard.backlog[slot] = shard.backlog[last];
    shard.demand[slot] = shard.demand[last];
    shard.alloc[slot] = shard.alloc[last];
    shard.admitted[slot] = shard.admitted[last];
    shard.served[slot] = shard.served[last];
    shard.dropped[slot] = shard.dropped[last];
    shard.on_time[slot] = shard.on_time[last];
    shard.late[slot] = shard.late[last];
    shard.max_late[slot] = shard.max_late[last];
    shard.cohorts[slot] = std::move(shard.cohorts[last]);
    shard.joined[slot] = shard.joined[last];
    shard.arr_kind[slot] = shard.arr_kind[last];
    shard.arr_bytes[slot] = shard.arr_bytes[last];
    shard.arr_on[slot] = shard.arr_on[last];
    shard.arr_period[slot] = shard.arr_period[last];
    shard.arr_seed[slot] = shard.arr_seed[last];
    shard.arr_script[slot] = shard.arr_script[last];
    where_[shard.id[slot]] = std::make_pair(s, slot);
  }
  shard.id.pop_back();
  shard.klass.pop_back();
  shard.rate.pop_back();
  shard.buffer.pop_back();
  shard.deadline.pop_back();
  shard.backlog.pop_back();
  shard.demand.pop_back();
  shard.alloc.pop_back();
  shard.admitted.pop_back();
  shard.served.pop_back();
  shard.dropped.pop_back();
  shard.on_time.pop_back();
  shard.late.pop_back();
  shard.max_late.pop_back();
  shard.cohorts.pop_back();
  shard.joined.pop_back();
  shard.arr_kind.pop_back();
  shard.arr_bytes.pop_back();
  shard.arr_on.pop_back();
  shard.arr_period.pop_back();
  shard.arr_seed.pop_back();
  shard.arr_script.pop_back();
  return stats;
}

StreamStats StreamPool::row(const Shard& shard, std::size_t i) const {
  return StreamStats{.id = shard.id[i],
                     .weight_class = shard.klass[i],
                     .admitted = shard.admitted[i],
                     .served = shard.served[i],
                     .dropped = shard.dropped[i],
                     .unserved = 0,
                     .backlog = shard.backlog[i],
                     .served_on_time = shard.on_time[i],
                     .served_late = shard.late[i],
                     .max_lateness = shard.max_late[i],
                     .joined = shard.joined[i],
                     .left = kNever};
}

std::optional<StreamStats> StreamPool::stats(StreamId id) const {
  const auto it = where_.find(id);
  if (it == where_.end()) return std::nullopt;
  return row(shards_[it->second.first], it->second.second);
}

std::vector<StreamStats> StreamPool::all_stats() const {
  std::vector<StreamStats> out;
  out.reserve(live_);
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < shard.size(); ++i) {
      out.push_back(row(shard, i));
    }
  }
  return out;
}

}  // namespace rtsmooth::gateway
