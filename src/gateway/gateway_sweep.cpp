#include "gateway/gateway_sweep.h"

#include <stdexcept>
#include <utility>

namespace rtsmooth::gateway {
namespace {

/// Per-cell registries, folded into the spec's registry in submission
/// order after the batch — the CellTelemetry pattern of sim/sweep.cpp.
class CellRegistries {
 public:
  CellRegistries(const GatewaySweepSpec& spec, std::size_t cells)
      : spec_(&spec) {
    if (spec.registry != nullptr) registries_.resize(cells);
  }

  obs::Telemetry at(std::size_t k) {
    obs::Telemetry telemetry;
    if (!registries_.empty()) telemetry.registry = &registries_[k];
    return telemetry;
  }

  void fold() {
    if (spec_->registry == nullptr) return;
    for (const obs::Registry& cell : registries_) {
      spec_->registry->merge(cell);
    }
  }

 private:
  const GatewaySweepSpec* spec_;
  std::vector<obs::Registry> registries_;
};

GatewayReport run_cell(const GatewaySweepSpec& spec, std::size_t streams,
                       Bytes rate, SharePolicy policy,
                       obs::Telemetry telemetry) {
  GatewayConfig config = spec.base;
  config.rate = rate;
  config.sharing = policy;
  config.threads = 1;  // the grid is the unit of parallelism
  config.telemetry = telemetry;
  Gateway gateway(std::move(config));
  for (std::size_t i = 0; i < streams; ++i) {
    gateway.add_stream(spec.stream_factory(i));
  }
  gateway.run(spec.steps);
  return gateway.report();
}

}  // namespace

GatewaySweepResult sweep(const GatewaySweepSpec& spec) {
  if (spec.stream_counts.empty()) {
    throw std::invalid_argument("gateway sweep: no stream counts to run");
  }
  if (spec.policies.empty()) {
    throw std::invalid_argument("gateway sweep: no sharing policies to run");
  }
  if (!spec.stream_factory) {
    throw std::invalid_argument("gateway sweep: stream_factory is required");
  }
  if (spec.steps < 1) {
    throw std::invalid_argument("gateway sweep: steps must be >= 1");
  }
  if (const std::string problem = spec.base.validate(); !problem.empty()) {
    throw std::invalid_argument("gateway sweep: base config: " + problem);
  }

  GatewaySweepResult result;
  result.points.resize(spec.stream_counts.size());
  const std::size_t cells =
      spec.stream_counts.size() * spec.policies.size();
  CellRegistries registries(spec, cells);

  std::vector<std::function<void()>> tasks;
  tasks.reserve(cells);
  for (std::size_t p = 0; p < spec.stream_counts.size(); ++p) {
    GatewaySweepPoint* point = &result.points[p];
    point->streams = spec.stream_counts[p];
    point->rate =
        spec.rate_per_stream > 0
            ? spec.rate_per_stream * static_cast<Bytes>(point->streams)
            : spec.base.rate;
    point->policies.resize(spec.policies.size());
    for (std::size_t q = 0; q < spec.policies.size(); ++q) {
      const std::size_t k = tasks.size();
      GatewayPolicyOutcome* outcome = &point->policies[q];
      outcome->policy = spec.policies[q];
      tasks.push_back([&spec, &registries, point, outcome, k] {
        const obs::Telemetry tel = registries.at(k);
        const obs::Span cell_span(tel, "gateway.sweep.cell");
        outcome->report = run_cell(spec, point->streams, point->rate,
                                   outcome->policy, tel);
      });
    }
  }

  sim::ParallelRunner runner(spec.threads);
  result.stats = runner.run(std::move(tasks), spec.progress);
  registries.fold();
  return result;
}

}  // namespace rtsmooth::gateway
