// The statistical-multiplexing gateway: one shared link of rate R stepped
// over N concurrent streams, each its own paper-style smoothing
// configuration (buffer B_i = r_i * D_i, Theorem 3.5) riding the common
// link under a weighted sharing policy.
//
// Per step t, mirroring the generic server algorithm (Eqs. (2), (3))
// per stream:
//
//   1. arrivals:  backlog_i += A_i(t)          (stateless arrival models)
//   2. allocate:  the SharePolicy divides R across classes and streams
//                 against demand_i = backlog_i
//   3. serve:     backlog_i -= alloc_i                        (Eq. (2))
//   4. drop:      shed max(0, backlog_i - B_i) per stream     (Eq. (3))
//
// Phases 1 and 3–4 run shard-parallel on a ParallelRunner; phase 2 is a
// serial reduce over per-shard class demands. Shard count is a config
// parameter independent of thread count, per-shard results fold in shard
// order, so output is byte-identical for any pool width (DESIGN.md
// Sect. 9/14).
//
// Churn is first-class: streams join and leave mid-run, and the ledger
// invariant `admitted == served + dropped + unserved + backlog` holds per
// stream and in aggregate at every step — like the daemon's ingest ledger.

#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gateway/sharing.h"
#include "gateway/stream_pool.h"
#include "obs/telemetry.h"
#include "sim/runner.h"

namespace rtsmooth::gateway {

/// Whether a join request is admitted.
enum class AdmissionPolicy {
  AcceptAll,      ///< every valid spec joins
  CapacityCheck,  ///< join only while sum(r_i) + r <= overbook * R
};

struct GatewayConfig {
  Bytes rate = 1;  ///< R: shared link bytes per step
  /// One weight per service class, all > 0 (e.g. {12, 8, 1} mirroring the
  /// paper's I:P:B values). Streams name a class by index.
  std::vector<double> class_weights = {1.0};
  SharePolicy sharing = SharePolicy::WeightedShare;
  AdmissionPolicy admission = AdmissionPolicy::AcceptAll;
  /// CapacityCheck headroom: admit while sum(r_i) <= overbook * R.
  /// Statistical multiplexing is the whole point, so > 1 is the norm.
  double overbook = 1.0;
  /// Fixed shard count — the unit of parallel work AND of deterministic
  /// fold order. Never derived from the thread count.
  std::size_t shards = 8;
  /// ParallelRunner width: 0 = RTSMOOTH_THREADS / hardware, 1 = serial.
  unsigned threads = 0;
  /// Null by default (free). With a registry the gateway keeps gateway.*
  /// counters/gauges/histograms; with a flight recorder every step lands in
  /// the ring and conservation/oversend violations freeze incidents.
  obs::Telemetry telemetry{};

  /// First problem with the config, or empty when runnable.
  std::string validate() const;
};

/// Per-class slice of the gateway ledger.
struct ClassTotals {
  Bytes admitted = 0;
  Bytes served = 0;
  Bytes dropped = 0;
  Bytes unserved = 0;
  Bytes on_time = 0;      ///< served within the stream's deadline D_i
  Bytes late = 0;         ///< served after D_i expired
  Time max_lateness = 0;  ///< peak (wait - D_i) over the class's late bytes

  ClassTotals& operator+=(const ClassTotals& o) {
    admitted += o.admitted;
    served += o.served;
    dropped += o.dropped;
    unserved += o.unserved;
    on_time += o.on_time;
    late += o.late;
    max_lateness = std::max(max_lateness, o.max_lateness);
    return *this;
  }
  bool operator==(const ClassTotals&) const = default;
};

/// Aggregate report of a gateway run (live + departed streams).
struct GatewayReport {
  Bytes admitted = 0;
  Bytes served = 0;
  Bytes dropped = 0;
  Bytes unserved = 0;  ///< written off at stream departure
  Bytes backlog = 0;   ///< still buffered across live streams
  Bytes served_on_time = 0;  ///< served bytes that waited <= their D_i
  Bytes served_late = 0;     ///< served bytes that missed their deadline
  Time max_lateness = 0;     ///< peak (wait - D_i) over all late bytes
  std::vector<ClassTotals> by_class;

  Time steps = 0;
  std::int64_t joins = 0;
  std::int64_t leaves = 0;
  std::int64_t rejected_joins = 0;
  Bytes max_backlog = 0;      ///< peak total backlog after any step
  Bytes max_step_served = 0;  ///< peak link usage in one step (<= R)
  std::int64_t violations = 0;  ///< conservation / oversend check failures

  /// admitted == served + dropped + unserved + backlog AND
  /// served == served_on_time + served_late, here and per class.
  bool conserves() const;
  /// Weight-scaled loss fraction: lost = dropped + unserved, weighted by
  /// the class weights the report was built with.
  double weighted_loss(const std::vector<double>& class_weights) const;
  /// Unweighted byte loss fraction.
  double byte_loss() const;

  bool operator==(const GatewayReport&) const = default;
};

class Gateway {
 public:
  /// Throws std::invalid_argument with the validate() message on a bad
  /// config.
  explicit Gateway(GatewayConfig config);

  /// Admission-checked join. Throws std::invalid_argument on a malformed
  /// spec; returns nullopt (and counts a rejected join) when the admission
  /// policy refuses. The stream starts arriving on the NEXT step.
  std::optional<StreamId> add_stream(const StreamSpec& spec);

  /// Removes a live stream, writing its backlog off as unserved in the
  /// ledger, and returns its final row. nullopt for unknown ids.
  std::optional<StreamStats> remove_stream(StreamId id);

  /// Advances the shared link one step over all live streams.
  void step();
  /// step() `n` times.
  void run(Time n);

  Time now() const { return now_; }
  std::size_t stream_count() const { return pool_.size(); }
  Bytes subscribed_rate() const { return pool_.subscribed_rate(); }
  /// Live ledger row for one stream / all live streams in deterministic
  /// (shard, slot) order.
  std::optional<StreamStats> stream_stats(StreamId id) const {
    return pool_.stats(id);
  }
  std::vector<StreamStats> all_stream_stats() const {
    return pool_.all_stats();
  }

  /// Aggregate ledger: departed streams' totals plus everything live.
  GatewayReport report() const;

  const GatewayConfig& config() const { return config_; }
  /// Batch timing accumulated over the parallel phases.
  const sim::RunStats& run_stats() const { return run_stats_; }

 private:
  /// One lateness observation collected shard-locally during the parallel
  /// phase and drained into the registry histograms serially in
  /// fold_step() (fixed shard order — merged snapshots stay byte-identical
  /// for any thread count). `steps` is slack for on-time bytes and
  /// lateness for late ones.
  struct LatenessSample {
    std::uint32_t klass = 0;
    Time steps = 0;
    Bytes bytes = 0;
    bool late = false;
  };

  /// Per-shard per-step scratch each shard task owns exclusively.
  struct ShardScratch {
    std::vector<Bytes> class_demand;  ///< per class, this shard
    std::vector<Bytes> class_budget;  ///< per class, granted to this shard
    std::vector<Bytes> class_used;    ///< per class, floors granted so far
    std::vector<Bytes> class_dropped; ///< per class, this step's Eq. (3) shed
    Bytes step_admitted = 0;
    Bytes step_served = 0;
    Bytes step_dropped = 0;
    Bytes step_on_time = 0;
    Bytes step_late = 0;
    Time step_max_late = 0;
    Bytes backlog_total = 0;
    std::vector<LatenessSample> samples;  ///< registry-enabled runs only
  };

  void arrive_and_demand(std::size_t s);
  void allocate_budgets();
  void serve_and_drop(std::size_t s);
  void settle_cohorts(Shard& sh, ShardScratch& sc, std::size_t i, Bytes send,
                      Bytes drop);
  template <typename Fn>
  void for_each_shard(Fn&& fn);
  void fold_step();

  GatewayConfig config_;
  StreamPool pool_;
  sim::ParallelRunner runner_;
  sim::RunStats run_stats_;
  std::vector<ShardScratch> scratch_;
  // Serial-phase scratch (class water-fill + shard apportionment).
  std::vector<Bytes> class_demand_;
  std::vector<Bytes> class_budget_;
  std::vector<Bytes> shard_demand_;
  std::vector<Bytes> shard_budget_;
  std::vector<std::size_t> class_order_;  ///< priority order (weight desc)

  Time now_ = 0;
  GatewayReport totals_;  ///< departed + cumulative step tallies

  // Cached telemetry instruments (resolved once; null registry = all null).
  obs::Counter* ctr_admitted_ = nullptr;
  obs::Counter* ctr_served_ = nullptr;
  obs::Counter* ctr_dropped_ = nullptr;
  obs::Counter* ctr_unserved_ = nullptr;
  obs::Counter* ctr_joins_ = nullptr;
  obs::Counter* ctr_leaves_ = nullptr;
  obs::Counter* ctr_rejected_ = nullptr;
  obs::Counter* ctr_violations_ = nullptr;
  obs::Counter* ctr_on_time_ = nullptr;
  obs::Counter* ctr_late_ = nullptr;
  obs::Gauge* gauge_backlog_ = nullptr;
  obs::Gauge* gauge_max_lateness_ = nullptr;
  obs::Histogram* hist_step_served_ = nullptr;
  obs::Histogram* hist_slack_ = nullptr;
  obs::Histogram* hist_lateness_ = nullptr;
  std::vector<obs::Histogram*> hist_class_lateness_;  ///< one per class
  // Per-class byte counters ("gateway.cK.*"), folded serially in fixed
  // shard order each step so the timeline can track per-class lateness
  // and shed series deterministically.
  std::vector<obs::Counter*> ctr_class_on_time_;
  std::vector<obs::Counter*> ctr_class_late_;
  std::vector<obs::Counter*> ctr_class_shed_;
};

}  // namespace rtsmooth::gateway
