// Declarative gateway grids: the gateway-side twin of sim/sweep.h. A
// GatewaySweepSpec names a StreamCount axis and a set of sharing policies;
// sweep() runs one independent Gateway per (stream count, policy) cell,
// fans the cells out over a ParallelRunner, and folds per-cell telemetry
// back in submission order — the same declarative entry point, parallel
// execution, and merged-registry semantics simulator sweeps get.
//
// Inside a cell the gateway always runs serial (threads = 1): the grid is
// the unit of parallelism, and nesting pools would oversubscribe without
// changing any result (cells are byte-identical at any width by the
// Sect. 9 contract).

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "gateway/gateway.h"
#include "obs/telemetry.h"
#include "sim/runner.h"

namespace rtsmooth::gateway {

/// One sharing policy's outcome at one stream count.
struct GatewayPolicyOutcome {
  SharePolicy policy = SharePolicy::Static;
  GatewayReport report;

  bool operator==(const GatewayPolicyOutcome&) const = default;
};

/// One stream-count grid point: every requested policy run on the identical
/// stream population.
struct GatewaySweepPoint {
  std::size_t streams = 0;
  Bytes rate = 0;  ///< the link rate this point actually ran
  std::vector<GatewayPolicyOutcome> policies;

  bool operator==(const GatewaySweepPoint&) const = default;
};

struct GatewaySweepSpec {
  /// The swept axis: one grid point per stream count, in this order.
  std::vector<std::size_t> stream_counts;
  /// Sharing policies run at every point.
  std::vector<SharePolicy> policies = {SharePolicy::Static,
                                       SharePolicy::WeightedShare};
  /// Steps each cell advances.
  Time steps = 256;
  /// Builds stream i's spec (i in [0, streams)); must be pure — cells may
  /// invoke it concurrently, and every cell at a given stream count must
  /// see the identical population.
  std::function<StreamSpec(std::size_t)> stream_factory;

  /// Cell gateway template: rate/class_weights/admission/overbook/shards
  /// are taken from here; sharing comes from `policies`, threads is forced
  /// to 1 per cell, telemetry is replaced by the per-cell registry.
  GatewayConfig base;
  /// When > 0, each point runs at rate = rate_per_stream * streams instead
  /// of base.rate — the axis that holds per-stream provisioning fixed while
  /// N grows (the statistical-multiplexing question).
  Bytes rate_per_stream = 0;

  /// Grid pool width: 0 = RTSMOOTH_THREADS / hardware, 1 = serial.
  unsigned threads = 0;
  /// Merged telemetry for the whole grid, same isolation pattern as
  /// SweepSpec::registry: each cell steps against its own private registry
  /// and the cells fold in submission order. Null: no telemetry, no cost.
  obs::Registry* registry = nullptr;
  /// Per-cell completion callback, forwarded to the ParallelRunner.
  sim::ParallelRunner::Progress progress;
};

struct GatewaySweepResult {
  std::vector<GatewaySweepPoint> points;
  sim::RunStats stats;
};

/// Runs the gateway grid. Throws std::invalid_argument on an unrunnable
/// spec (no stream counts, no policies, missing stream_factory, steps < 1,
/// or a base config that fails validate()).
GatewaySweepResult sweep(const GatewaySweepSpec& spec);

}  // namespace rtsmooth::gateway
