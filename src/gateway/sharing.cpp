#include "gateway/sharing.h"

#include <algorithm>
#include <vector>

#include "util/assert.h"

namespace rtsmooth::gateway {
namespace {

/// floor(budget * part / total) without overflow: all inputs are
/// non-negative int64 byte counts, so the product needs (and fits) 128 bits.
Bytes weighted_floor(Bytes budget, Bytes part, Bytes total) {
  RTS_ASSERT(total > 0);
  return static_cast<Bytes>(static_cast<__uint128_t>(budget) *
                            static_cast<__uint128_t>(part) /
                            static_cast<__uint128_t>(total));
}

}  // namespace

std::string_view to_string(SharePolicy policy) {
  switch (policy) {
    case SharePolicy::Static: return "static";
    case SharePolicy::WeightedShare: return "weighted-share";
    case SharePolicy::Priority: return "priority";
  }
  return "static";
}

std::optional<SharePolicy> parse_share_policy(std::string_view name) {
  if (name == "static") return SharePolicy::Static;
  if (name == "weighted-share") return SharePolicy::WeightedShare;
  if (name == "priority") return SharePolicy::Priority;
  return std::nullopt;
}

void water_fill(Bytes budget, std::span<const double> weights,
                std::span<const Bytes> demand, std::span<Bytes> out) {
  RTS_ASSERT(weights.size() == demand.size() && out.size() == demand.size());
  std::fill(out.begin(), out.end(), Bytes{0});
  Bytes remaining = std::max<Bytes>(budget, 0);

  // The active set shrinks by at least one class per outer round, so the
  // loop runs at most |classes| times. Class count is small (a handful of
  // service tiers), so the O(C^2) worst case is irrelevant next to the
  // per-stream work it feeds.
  std::vector<std::size_t> active;
  active.reserve(demand.size());
  for (std::size_t k = 0; k < demand.size(); ++k) {
    RTS_ASSERT(demand[k] >= 0);
    if (demand[k] > 0) active.push_back(k);
  }

  while (remaining > 0 && !active.empty()) {
    double total_w = 0.0;
    for (const std::size_t k : active) total_w += weights[k];
    RTS_ASSERT(total_w > 0.0);

    // Weighted share of the *current* remainder, as an exact integer:
    // scale the double weights to a common 2^20 grid first so the division
    // below is pure integer arithmetic (bit-identical on every platform).
    constexpr std::int64_t kGrid = 1 << 20;
    std::int64_t grid_total = 0;
    std::vector<std::int64_t> grid(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      grid[i] = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(weights[active[i]] / total_w * kGrid));
      grid_total += grid[i];
    }

    // Pass 1: fully satisfy every class whose remaining need fits inside
    // its share; their surplus returns to the pool for the next round.
    bool satisfied_any = false;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const std::size_t k = active[i];
      const Bytes share = weighted_floor(remaining, grid[i], grid_total);
      const Bytes need = demand[k] - out[k];
      if (need <= share) {
        out[k] = demand[k];
        remaining -= need;
        satisfied_any = true;
      }
    }
    if (satisfied_any) {
      std::erase_if(active, [&](std::size_t k) { return out[k] == demand[k]; });
      continue;
    }

    // Every class wants more than its share: grant the floors, then the
    // sub-share remainder one byte at a time in index order (each active
    // class strictly needs more than its floor, so +1 never overshoots).
    Bytes granted = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const Bytes share = weighted_floor(remaining, grid[i], grid_total);
      out[active[i]] += share;
      granted += share;
    }
    Bytes leftover = remaining - granted;
    for (std::size_t i = 0; i < active.size() && leftover > 0; ++i) {
      const std::size_t k = active[i];
      if (out[k] < demand[k]) {
        ++out[k];
        --leftover;
      }
    }
    remaining = leftover;
    break;  // nothing left to redistribute: every class is below demand
  }
}

void apportion(Bytes budget, std::span<const Bytes> demand,
               std::span<Bytes> out) {
  RTS_ASSERT(out.size() == demand.size());
  std::fill(out.begin(), out.end(), Bytes{0});
  if (budget <= 0) return;

  Bytes total = 0;
  for (const Bytes d : demand) {
    RTS_ASSERT(d >= 0);
    total += d;
  }
  if (total == 0) return;
  if (total <= budget) {
    std::copy(demand.begin(), demand.end(), out.begin());
    return;
  }

  Bytes granted = 0;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    out[i] = weighted_floor(budget, demand[i], total);
    granted += out[i];
  }
  Bytes leftover = budget - granted;
  for (std::size_t i = 0; i < demand.size() && leftover > 0; ++i) {
    const Bytes extra = std::min(leftover, demand[i] - out[i]);
    out[i] += extra;
    leftover -= extra;
  }
}

}  // namespace rtsmooth::gateway
