// The gateway's stream table: per-stream state for N concurrent streams,
// stored structure-of-arrays and partitioned into a fixed number of shards
// so one shard steps cache-linearly and shards fan out across cores.
//
// Layout contract (DESIGN.md Sect. 14):
//
//   * Columns, not structs. Each shard keeps one contiguous vector per
//     field (rate, buffer, backlog, tallies, arrival parameters); the hot
//     per-step loops touch only the columns they need, so a shard of 100k
//     streams streams through cache instead of striding over fat records.
//   * Shard placement is a pure function of the join sequence number
//     (round-robin), NOT of the thread count — the shard map is identical
//     whether the gateway runs serial or 8-wide, which is what makes the
//     byte-identical determinism contract (Sect. 9) hold under churn.
//   * Removal is swap-with-last inside the owning shard. Iteration order
//     within a shard therefore depends on churn history — which is fine,
//     because every fold over streams is either commutative (sums) or goes
//     through the id -> location map.
//
// Arrival generation is stateless: each stream's arrivals are a pure
// function of (model, local step), with the pseudo-random VBR model driven
// by a splitmix64 hash of (seed, step). No RNG state to carry, nothing to
// rewind on churn, and any stream's trace can be replayed independently.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.h"

namespace rtsmooth::gateway {

/// Stable stream handle: the join sequence number, never reused.
using StreamId = std::uint64_t;

/// Per-stream arrival process, evaluated statelessly at each local step
/// (steps since the stream joined).
struct ArrivalModel {
  enum class Kind : std::uint8_t {
    Constant,  ///< `bytes` every step
    OnOff,     ///< `bytes` for `on` steps, silence for `off`, phase-shifted
               ///< by `seed`
    Vbr,       ///< pseudo-random around mean `bytes` with periodic bursts,
               ///< hash-driven from `seed` — an MPEG-ish envelope
    Script,    ///< explicit per-step byte counts; 0 after the script ends
  };

  Kind kind = Kind::Constant;
  Bytes bytes = 0;  ///< per-step bytes / burst size / VBR mean
  Time on = 1;      ///< OnOff: steps transmitting per period
  Time off = 0;     ///< OnOff: silent steps per period
  std::uint64_t seed = 0;
  std::vector<Bytes> script;

  static ArrivalModel constant(Bytes per_step);
  static ArrivalModel on_off(Bytes burst, Time on, Time off,
                             std::uint64_t seed);
  static ArrivalModel vbr(Bytes mean, std::uint64_t seed);
  static ArrivalModel from_script(std::vector<Bytes> bytes_per_step);
};

/// What a joining stream declares: its nominal rate r, its deadline D, and
/// its weight class. The per-stream smoothing buffer is the paper's
/// identity applied per stream: B_i = r_i * D_i (Theorem 3.5) — a stream
/// trades its deadline for burst absorption exactly as a solo link would.
struct StreamSpec {
  Bytes rate = 1;              ///< r_i: nominal bytes/step on the shared link
  Time deadline = 1;           ///< D_i: smoothing delay budget in steps
  std::size_t weight_class = 0;
  ArrivalModel arrivals{};

  /// B_i = r_i * D_i.
  Bytes buffer() const { return rate * deadline; }

  /// First problem with the spec against a gateway with `class_count`
  /// weight classes, or empty when admissible.
  std::string validate(std::size_t class_count) const;
};

/// Ledger row for one stream, live or departed. The churn conservation
/// contract: every admitted byte is served, dropped (buffer overflow,
/// Eq. (3) per stream), written off as unserved at leave, or still
/// backlogged — and every served byte is either on time (waited <= D_i)
/// or late.
struct StreamStats {
  StreamId id = 0;
  std::size_t weight_class = 0;
  Bytes admitted = 0;
  Bytes served = 0;
  Bytes dropped = 0;
  Bytes unserved = 0;  ///< backlog written off when the stream left
  Bytes backlog = 0;   ///< still buffered (live streams only)
  Bytes served_on_time = 0;  ///< served bytes that waited <= D_i steps
  Bytes served_late = 0;     ///< served bytes that waited > D_i steps
  Time max_lateness = 0;     ///< peak (wait - D_i) over late bytes; 0 if none
  Time joined = 0;
  Time left = kNever;

  bool conserves() const {
    return admitted == served + dropped + unserved + backlog &&
           served == served_on_time + served_late;
  }
  bool operator==(const StreamStats&) const = default;
};

/// FIFO ring of arrival cohorts backing one stream's backlog: which step
/// each backlogged byte arrived at. Serving consumes the head (oldest
/// bytes first, matching the per-stream FIFO buffer), the Eq. (3) shed
/// consumes the tail (the newest bytes are the ones over B_i). The cohort
/// bytes sum to the stream's backlog column at every step boundary, so
/// wait = serve_step - arrival is exact per byte. Capacity grows
/// amortized and is recycled across steps — no steady-state allocation.
class CohortRing {
 public:
  struct Cohort {
    Time arrival = 0;
    Bytes bytes = 0;
  };

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  Cohort& front() { return slots_[head_]; }
  Cohort& back() { return slots_[(head_ + size_ - 1) % slots_.size()]; }

  void push_back(Time arrival, Bytes bytes) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) % slots_.size()] = Cohort{arrival, bytes};
    ++size_;
  }
  void pop_front() {
    head_ = (head_ + 1) % slots_.size();
    --size_;
  }
  void pop_back() { --size_; }

 private:
  void grow();

  std::vector<Cohort> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// One shard's SoA columns. Exposed publicly (rather than hidden behind
/// per-stream accessors) because the gateway's step kernels ARE the reason
/// this layout exists; everything else goes through StreamPool's id-based
/// API.
struct Shard {
  std::vector<StreamId> id;
  std::vector<std::uint32_t> klass;
  std::vector<Bytes> rate;
  std::vector<Bytes> buffer;
  std::vector<Time> deadline;  ///< D_i: the stream's lateness budget
  std::vector<Bytes> backlog;
  std::vector<Bytes> demand;  ///< per-step scratch: backlog after arrivals
  std::vector<Bytes> alloc;   ///< per-step scratch: link bytes granted
  std::vector<Bytes> admitted;
  std::vector<Bytes> served;
  std::vector<Bytes> dropped;
  std::vector<Bytes> on_time;   ///< served bytes that waited <= D_i
  std::vector<Bytes> late;      ///< served bytes that waited > D_i
  std::vector<Time> max_late;   ///< peak lateness (wait - D_i) so far
  std::vector<CohortRing> cohorts;  ///< arrival-step FIFO behind backlog
  std::vector<Time> joined;
  // Arrival-model columns (see ArrivalModel).
  std::vector<std::uint8_t> arr_kind;
  std::vector<Bytes> arr_bytes;
  std::vector<Time> arr_on;
  std::vector<Time> arr_period;  ///< on + off
  std::vector<std::uint64_t> arr_seed;
  std::vector<std::int32_t> arr_script;  ///< index into scripts, -1 if none

  std::size_t size() const { return id.size(); }
};

/// splitmix64 finalizer: the stateless hash behind the VBR arrival model.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Bytes stream `i` of `shard` offers at local step `local_t` (steps since
/// join). Pure; safe to call from any shard task.
Bytes arrival_bytes(const Shard& shard, const std::vector<Bytes>* scripts,
                    std::size_t i, Time local_t);

/// The sharded stream table. Admission policy is the Gateway's business;
/// the pool just stores, locates, and swap-removes.
class StreamPool {
 public:
  /// `shards` >= 1; fixed for the pool's lifetime (determinism depends on
  /// the shard map never changing with the execution width).
  explicit StreamPool(std::size_t shards);

  /// Places the stream on shard (join_seq % shards) and returns its id.
  /// The spec must already be validated.
  StreamId add(const StreamSpec& spec, Time now);

  /// Removes the stream, folding its remaining backlog into `unserved`, and
  /// returns its final ledger row (left = now). Returns nullopt for an
  /// unknown or already-removed id.
  std::optional<StreamStats> remove(StreamId id, Time now);

  bool contains(StreamId id) const { return where_.count(id) > 0; }
  /// Live ledger row; nullopt for unknown ids.
  std::optional<StreamStats> stats(StreamId id) const;
  /// All live rows in (shard, slot) order — deterministic given the same
  /// churn history.
  std::vector<StreamStats> all_stats() const;

  std::size_t size() const { return live_; }
  std::size_t shard_count() const { return shards_.size(); }
  /// Sum of live nominal rates, maintained incrementally (admission math).
  Bytes subscribed_rate() const { return subscribed_; }

  Shard& shard(std::size_t s) { return shards_[s]; }
  const Shard& shard(std::size_t s) const { return shards_[s]; }
  /// Script side-table (append-only), indexed by Shard::arr_script.
  const std::vector<std::vector<Bytes>>& scripts() const { return scripts_; }

 private:
  StreamStats row(const Shard& shard, std::size_t i) const;

  std::vector<Shard> shards_;
  std::vector<std::vector<Bytes>> scripts_;
  /// id -> (shard, slot); slot is patched on swap-remove.
  std::unordered_map<StreamId, std::pair<std::uint32_t, std::uint32_t>> where_;
  StreamId next_id_ = 0;
  std::size_t live_ = 0;
  Bytes subscribed_ = 0;
};

}  // namespace rtsmooth::gateway
