#include "faults/fault_links.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace rtsmooth::faults {
namespace {

std::unique_ptr<Link> fixed(Time propagation_delay) {
  return std::make_unique<FixedDelayLink>(propagation_delay);
}

/// Drains the NACKs due at step t from a pending queue (kept sorted by
/// construction: losses are scheduled in submission order and the feedback
/// delay is constant).
template <typename Queue>
std::vector<Nack> drain_nacks(Queue& queue, Time t) {
  std::vector<Nack> out;
  while (!queue.empty() && queue.front().at <= t) {
    out.push_back(std::move(queue.front().nack));
    queue.pop_front();
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- Erasure

ErasureLink::ErasureLink(std::unique_ptr<Link> inner, double loss_probability,
                         Rng rng, Time feedback_delay)
    : inner_(std::move(inner)),
      p_(loss_probability),
      rng_(rng),
      feedback_delay_(feedback_delay >= 0 ? feedback_delay
                                          : inner_->min_delay()) {
  RTS_EXPECTS(inner_ != nullptr);
  RTS_EXPECTS(loss_probability >= 0.0 && loss_probability <= 1.0);
}

ErasureLink::ErasureLink(Time propagation_delay, double loss_probability,
                         Rng rng, Time feedback_delay)
    : ErasureLink(fixed(propagation_delay), loss_probability, rng,
                  feedback_delay) {}

void ErasureLink::set_telemetry(obs::Telemetry telemetry) {
  inner_->set_telemetry(telemetry);
  if (telemetry.registry == nullptr) return;
  obs::Registry& reg = *telemetry.registry;
  erased_pieces_ = &reg.counter("link.erased_pieces");
  erased_bytes_ = &reg.counter("link.erased_bytes");
  loss_run_hist_ = &reg.histogram("link.loss_run",
                                  obs::HistogramSpec::exponential(1, 16));
}

void ErasureLink::submit(Time t, std::vector<SentPiece> pieces) {
  std::vector<SentPiece> kept;
  kept.reserve(pieces.size());
  for (SentPiece& piece : pieces) {
    if (p_ > 0.0 && rng_.bernoulli(p_)) {
      // The loss becomes knowable once the piece fails to arrive; feedback
      // takes feedback_delay more steps to reach the server.
      pending_nacks_.push_back(PendingNack{
          .at = t + inner_->min_delay() + feedback_delay_,
          .nack = Nack{.piece = piece, .sent_at = t}});
      if (erased_pieces_ != nullptr) {
        erased_pieces_->add(1);
        erased_bytes_->add(piece.bytes);
        ++loss_run_;
      }
      continue;
    }
    if (loss_run_ > 0) {
      // A surviving piece ends the consecutive-erasure run. (A run still
      // open when the stream ends is not flushed — it has no defined end.)
      loss_run_hist_->record(loss_run_);
      loss_run_ = 0;
    }
    kept.push_back(std::move(piece));
  }
  inner_->submit(t, std::move(kept));
}

std::vector<SentPiece> ErasureLink::deliver(Time t) { return inner_->deliver(t); }

std::vector<Nack> ErasureLink::collect_nacks(Time t) {
  return drain_nacks(pending_nacks_, t);
}

Time ErasureLink::next_activity(Time now) const {
  Time at = inner_->next_activity(now);
  if (!pending_nacks_.empty()) at = std::min(at, pending_nacks_.front().at);
  return at;
}

// --------------------------------------------------------- Gilbert-Elliott

GilbertElliottLink::GilbertElliottLink(std::unique_ptr<Link> inner,
                                       GilbertElliottConfig config, Rng rng,
                                       Time feedback_delay)
    : inner_(std::move(inner)),
      config_(config),
      rng_(rng),
      feedback_delay_(feedback_delay >= 0 ? feedback_delay
                                          : inner_->min_delay()) {
  RTS_EXPECTS(inner_ != nullptr);
  RTS_EXPECTS(config.p_good_to_bad >= 0.0 && config.p_good_to_bad <= 1.0);
  RTS_EXPECTS(config.p_bad_to_good >= 0.0 && config.p_bad_to_good <= 1.0);
  RTS_EXPECTS(config.loss_good >= 0.0 && config.loss_good <= 1.0);
  RTS_EXPECTS(config.loss_bad >= 0.0 && config.loss_bad <= 1.0);
}

GilbertElliottLink::GilbertElliottLink(Time propagation_delay,
                                       GilbertElliottConfig config, Rng rng,
                                       Time feedback_delay)
    : GilbertElliottLink(fixed(propagation_delay), config, rng,
                         feedback_delay) {}

void GilbertElliottLink::set_telemetry(obs::Telemetry telemetry) {
  inner_->set_telemetry(telemetry);
  if (telemetry.registry == nullptr) return;
  obs::Registry& reg = *telemetry.registry;
  erased_pieces_ = &reg.counter("link.erased_pieces");
  erased_bytes_ = &reg.counter("link.erased_bytes");
  loss_run_hist_ = &reg.histogram("link.loss_run",
                                  obs::HistogramSpec::exponential(1, 16));
}

void GilbertElliottLink::ensure_state(Time t) {
  // One transition draw per elapsed step, so the burst-length distribution
  // is independent of traffic (an idle channel still churns states).
  while (state_time_ < t) {
    ++state_time_;
    if (state_time_ == 0) continue;  // initial state is Good by convention
    const double flip =
        bad_ ? config_.p_bad_to_good : config_.p_good_to_bad;
    if (flip > 0.0 && rng_.bernoulli(flip)) {
      bad_ = !bad_;
      if (loss_run_hist_ != nullptr) {
        if (bad_) {
          bad_since_ = state_time_;
        } else if (bad_since_ >= 0) {
          // Burst over: its length in steps is the "link.loss_run" sample.
          loss_run_hist_->record(state_time_ - bad_since_);
          bad_since_ = -1;
        }
      }
    }
  }
}

void GilbertElliottLink::submit(Time t, std::vector<SentPiece> pieces) {
  ensure_state(t);
  const double loss = bad_ ? config_.loss_bad : config_.loss_good;
  std::vector<SentPiece> kept;
  kept.reserve(pieces.size());
  for (SentPiece& piece : pieces) {
    if (loss > 0.0 && rng_.bernoulli(loss)) {
      pending_nacks_.push_back(PendingNack{
          .at = t + inner_->min_delay() + feedback_delay_,
          .nack = Nack{.piece = piece, .sent_at = t}});
      if (erased_pieces_ != nullptr) {
        erased_pieces_->add(1);
        erased_bytes_->add(piece.bytes);
      }
      continue;
    }
    kept.push_back(std::move(piece));
  }
  inner_->submit(t, std::move(kept));
}

std::vector<SentPiece> GilbertElliottLink::deliver(Time t) {
  ensure_state(t);
  return inner_->deliver(t);
}

std::vector<Nack> GilbertElliottLink::collect_nacks(Time t) {
  return drain_nacks(pending_nacks_, t);
}

Time GilbertElliottLink::next_activity(Time now) const {
  Time at = inner_->next_activity(now);
  if (!pending_nacks_.empty()) at = std::min(at, pending_nacks_.front().at);
  return at;
}

// -------------------------------------------------------------- Throttled

ThrottledLink::ThrottledLink(std::unique_ptr<Link> inner,
                             std::vector<Bytes> rate_pattern)
    : inner_(std::move(inner)), pattern_(std::move(rate_pattern)) {
  RTS_EXPECTS(inner_ != nullptr);
  RTS_EXPECTS(!pattern_.empty());
  bool positive = false;
  for (Bytes cap : pattern_) {
    RTS_EXPECTS(cap >= 0);
    positive = positive || cap > 0;
  }
  RTS_EXPECTS(positive);  // an all-zero pattern would never drain
}

ThrottledLink::ThrottledLink(Time propagation_delay, Bytes rate_cap)
    : ThrottledLink(fixed(propagation_delay), std::vector<Bytes>{rate_cap}) {}

void ThrottledLink::set_telemetry(obs::Telemetry telemetry) {
  inner_->set_telemetry(telemetry);
  if (telemetry.registry == nullptr) return;
  obs::Registry& reg = *telemetry.registry;
  split_pieces_ = &reg.counter("link.split_pieces");
  max_backlog_ = &reg.gauge("link.max_backlog");
}

Bytes ThrottledLink::cap_at(Time t) const {
  return pattern_[static_cast<std::size_t>(t) % pattern_.size()];
}

Time ThrottledLink::next_activity(Time now) const {
  Time at = inner_->next_activity(now);
  if (queued_ > 0) {
    for (std::size_t i = 0; i < pattern_.size(); ++i) {
      const Time step = now + static_cast<Time>(i);
      if (cap_at(step) > 0) {
        at = std::min(at, step);
        break;
      }
    }
  }
  return at;
}

void ThrottledLink::submit(Time t, std::vector<SentPiece> pieces) {
  (void)t;  // admission happens in deliver(), against that step's cap
  for (SentPiece& piece : pieces) {
    queued_ += piece.bytes;
    pending_.push_back(std::move(piece));
  }
  if (max_backlog_ != nullptr) max_backlog_->update(queued_);
}

std::vector<SentPiece> ThrottledLink::deliver(Time t) {
  Bytes budget = std::min(cap_at(t), queued_);
  std::vector<SentPiece> admitted;
  while (budget > 0) {
    RTS_ASSERT(!pending_.empty());
    SentPiece& head = pending_.front();
    if (head.bytes <= budget) {
      budget -= head.bytes;
      queued_ -= head.bytes;
      admitted.push_back(std::move(head));
      pending_.pop_front();
      continue;
    }
    // Split the piece at the cap. Slice completions ride with the tail
    // fragment: a slice finishes only when its last byte gets through, and
    // without intra-piece offsets the tail is the only sound place to count
    // them (the client ignores the field either way).
    SentPiece fragment = head;
    fragment.bytes = budget;
    fragment.completed_slices = 0;
    if (split_pieces_ != nullptr) split_pieces_->add(1);
    head.bytes -= budget;
    queued_ -= budget;
    budget = 0;
    admitted.push_back(fragment);
  }
  inner_->submit(t, std::move(admitted));
  return inner_->deliver(t);
}

}  // namespace rtsmooth::faults
