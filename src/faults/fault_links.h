// Fault-injection links (DESIGN.md "Fault model & recovery semantics").
//
// The paper's channel (Sect. 2, Fig. 1) is lossless with constant delay P;
// Sect. 6 leaves jittery and faulty channels open. These decorators inject
// the three classic impairments around *any* inner link, so they compose
// with each other and with BoundedJitterLink:
//
//   ErasureLink        — i.i.d. per-piece loss with probability p
//   GilbertElliottLink — bursty loss from a 2-state good/bad Markov chain
//   ThrottledLink      — time-varying deliverable rate (congestion/outage)
//
// All are seeded and deterministic. At severity zero (p = 0, always-good,
// cap >= R) each is byte-identical to its inner link — a test pins exact
// SimReport equality against FixedDelayLink on the reference clip.
//
// Loss feedback: an erased piece becomes a Nack surfaced to the server at
// (would-be delivery time) + feedback_delay, modelling a client-side gap
// detector plus the reverse path. The links never retransmit on their own —
// that decision (deadline check, retry budget, backoff) belongs to the
// server's recovery path in core/generic_algorithm.h.

#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "core/link.h"
#include "core/types.h"
#include "util/rng.h"

namespace rtsmooth::faults {

/// I.i.d. per-piece erasure: each submitted piece is lost with probability
/// `loss_probability`, independently. Lost pieces are NACKed.
class ErasureLink final : public Link {
 public:
  /// `feedback_delay` < 0 means "one propagation delay" (symmetric reverse
  /// path): the NACK reaches the server at t + 2 * inner->min_delay().
  ErasureLink(std::unique_ptr<Link> inner, double loss_probability, Rng rng,
              Time feedback_delay = -1);
  /// Convenience: erasures over a FixedDelayLink(propagation_delay).
  ErasureLink(Time propagation_delay, double loss_probability, Rng rng,
              Time feedback_delay = -1);

  void submit(Time t, std::vector<SentPiece> pieces) override;
  std::vector<SentPiece> deliver(Time t) override;
  std::vector<Nack> collect_nacks(Time t) override;
  bool idle() const override { return inner_->idle() && pending_nacks_.empty(); }
  Time min_delay() const override { return inner_->min_delay(); }
  /// Inner deliveries plus the head pending NACK's feedback-due step.
  Time next_activity(Time now) const override;
  void advance_to(Time t) override { inner_->advance_to(t); }
  /// Counts erased pieces/bytes and the length of each consecutive-erasure
  /// run ("link.loss_run", flushed when a piece survives). Forwards to the
  /// inner link.
  void set_telemetry(obs::Telemetry telemetry) override;

  double loss_probability() const { return p_; }

 private:
  std::unique_ptr<Link> inner_;
  double p_;
  Rng rng_;
  Time feedback_delay_;
  struct PendingNack {
    Time at;
    Nack nack;
  };
  std::deque<PendingNack> pending_nacks_;
  obs::Counter* erased_pieces_ = nullptr;
  obs::Counter* erased_bytes_ = nullptr;
  obs::Histogram* loss_run_hist_ = nullptr;
  std::int64_t loss_run_ = 0;  ///< consecutive erased pieces, not yet flushed
};

/// Parameters of the Gilbert-Elliott two-state loss chain. The state
/// advances once per step; pieces submitted in a step see that step's state.
struct GilbertElliottConfig {
  double p_good_to_bad = 0.0;  ///< per-step transition Good -> Bad
  double p_bad_to_good = 1.0;  ///< per-step transition Bad -> Good
  double loss_good = 0.0;      ///< erasure probability while Good
  double loss_bad = 1.0;       ///< erasure probability while Bad (outage)
};

/// Bursty good/bad outage channel. With p_good_to_bad = 0 (always-good) it
/// is byte-identical to its inner link. Mean burst length in steps is
/// 1 / p_bad_to_good.
class GilbertElliottLink final : public Link {
 public:
  GilbertElliottLink(std::unique_ptr<Link> inner, GilbertElliottConfig config,
                     Rng rng, Time feedback_delay = -1);
  GilbertElliottLink(Time propagation_delay, GilbertElliottConfig config,
                     Rng rng, Time feedback_delay = -1);

  void submit(Time t, std::vector<SentPiece> pieces) override;
  std::vector<SentPiece> deliver(Time t) override;
  std::vector<Nack> collect_nacks(Time t) override;
  bool idle() const override { return inner_->idle() && pending_nacks_.empty(); }
  Time min_delay() const override { return inner_->min_delay(); }
  /// Inner deliveries plus the head pending NACK. The loss chain itself
  /// needs no bounding event: it only touches pieces at submit time, and
  /// ensure_state() catches up lazily with identical RNG draws, so skipped
  /// spans cannot change what it erases.
  Time next_activity(Time now) const override;
  /// Replays the chain through the skipped span — the per-step deliver()
  /// polls the slot loop would have issued — so transition draws and burst-
  /// length records land exactly as they would have, step by step.
  void advance_to(Time t) override {
    ensure_state(t);
    inner_->advance_to(t);
  }
  /// Counts erased pieces/bytes and each completed Bad-state burst length in
  /// steps ("link.loss_run"). Forwards to the inner link.
  void set_telemetry(obs::Telemetry telemetry) override;

  bool in_bad_state() const { return bad_; }

 private:
  void ensure_state(Time t);

  std::unique_ptr<Link> inner_;
  GilbertElliottConfig config_;
  Rng rng_;
  Time feedback_delay_;
  bool bad_ = false;
  Time state_time_ = -1;  ///< last step the chain was advanced to
  struct PendingNack {
    Time at;
    Nack nack;
  };
  std::deque<PendingNack> pending_nacks_;
  obs::Counter* erased_pieces_ = nullptr;
  obs::Counter* erased_bytes_ = nullptr;
  obs::Histogram* loss_run_hist_ = nullptr;
  Time bad_since_ = -1;  ///< step the current Bad burst began
};

/// Time-varying deliverable rate: at step t at most
/// `rate_pattern[t % rate_pattern.size()]` bytes enter the inner link;
/// the excess queues (FIFO) and drains as capacity returns. Models
/// congestion dips and outage windows (a 0 entry is a full stall). Never
/// loses data — severe throttling shows up as deadline misses at the
/// client, not as NACKs.
class ThrottledLink final : public Link {
 public:
  ThrottledLink(std::unique_ptr<Link> inner, std::vector<Bytes> rate_pattern);
  /// Convenience: a constant cap over a FixedDelayLink(propagation_delay).
  ThrottledLink(Time propagation_delay, Bytes rate_cap);

  void submit(Time t, std::vector<SentPiece> pieces) override;
  std::vector<SentPiece> deliver(Time t) override;
  bool idle() const override { return inner_->idle() && queued_ == 0; }
  Time min_delay() const override { return inner_->min_delay(); }
  /// Inner deliveries, plus — while bytes are queued at the throttle — the
  /// next step whose cap admits them into the inner link (the pattern has a
  /// positive entry, so the scan over one period always finds it).
  Time next_activity(Time now) const override;
  void advance_to(Time t) override { inner_->advance_to(t); }
  /// Tracks the throttle backlog high-watermark and piece splits at the cap.
  /// Forwards to the inner link.
  void set_telemetry(obs::Telemetry telemetry) override;

  Bytes cap_at(Time t) const;

 private:
  std::unique_ptr<Link> inner_;
  std::vector<Bytes> pattern_;
  std::deque<SentPiece> pending_;
  Bytes queued_ = 0;
  obs::Counter* split_pieces_ = nullptr;
  obs::Gauge* max_backlog_ = nullptr;
};

}  // namespace rtsmooth::faults
