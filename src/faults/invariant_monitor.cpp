#include "faults/invariant_monitor.h"

#include <algorithm>

#include "util/assert.h"

namespace rtsmooth::faults {

InvariantMonitor::InvariantMonitor(Bytes server_buffer, Bytes rate)
    : server_buffer_(server_buffer),
      sojourn_bound_((server_buffer + rate - 1) / rate) {
  RTS_EXPECTS(server_buffer >= 1);
  RTS_EXPECTS(rate >= 1);
}

void InvariantMonitor::record(Time t,
                              std::int64_t InvariantViolations::*counter) {
  violations_.*counter += 1;
  violations_.first = std::min(violations_.first, t);
}

void InvariantMonitor::check(Time t, const SmoothingServer& server,
                             const Client& client) {
  const ServerBuffer& buffer = server.buffer();
  if (buffer.occupancy() > server_buffer_) {
    record(t, &InvariantViolations::server_occupancy);
  }
  if (buffer.chunk_count() > 0) {
    // The head chunk's bytes arrived at its run's arrival step; under the
    // work-conserving generic algorithm they leave within B/R (Lemma 3.2).
    const Time age = t - buffer.chunk(0).run->arrival;
    if (age > sojourn_bound_) {
      record(t, &InvariantViolations::server_sojourn);
    }
  }
  if (client.overflow_bytes_so_far() > prev_overflow_) {
    record(t, &InvariantViolations::client_overflow);
  }
  if (client.late_bytes_so_far() > prev_late_ ||
      client.underflow_events() > prev_underflow_events_) {
    record(t, &InvariantViolations::client_underflow);
  }
  prev_overflow_ = client.overflow_bytes_so_far();
  prev_late_ = client.late_bytes_so_far();
  prev_underflow_events_ = client.underflow_events();
}

}  // namespace rtsmooth::faults
