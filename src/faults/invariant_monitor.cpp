#include "faults/invariant_monitor.h"

#include <algorithm>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/trace_writer.h"
#include "util/assert.h"

namespace rtsmooth::faults {

InvariantMonitor::InvariantMonitor(Bytes server_buffer, Bytes rate,
                                   obs::Telemetry telemetry)
    : server_buffer_(server_buffer),
      sojourn_bound_((server_buffer + rate - 1) / rate),
      telemetry_(telemetry) {
  RTS_EXPECTS(server_buffer >= 1);
  RTS_EXPECTS(rate >= 1);
}

void InvariantMonitor::record(Time t,
                              std::int64_t InvariantViolations::*counter,
                              std::string_view kind, std::int64_t magnitude) {
  violations_.*counter += 1;
  violations_.first = std::min(violations_.first, t);
  if (telemetry_.registry != nullptr) {
    telemetry_.registry->counter(std::string("invariant.") += kind).add(1);
  }
  if (telemetry_.tracer != nullptr) {
    obs::Json event = obs::Json::object();
    event["type"] = "violation";
    event["t"] = t;
    event["kind"] = kind;
    event["magnitude"] = magnitude;
    telemetry_.tracer->write(event);
  }
  if (telemetry_.recorder != nullptr) {
    // The simulator records step t before check(), so the captured window
    // ends on the violating step itself.
    telemetry_.recorder->on_violation(t, kind, magnitude);
  }
}

void InvariantMonitor::check(Time t, const SmoothingServer& server,
                             const Client& client) {
  const ServerBuffer& buffer = server.buffer();
  if (buffer.occupancy() > server_buffer_) {
    record(t, &InvariantViolations::server_occupancy, "server_occupancy",
           buffer.occupancy() - server_buffer_);
  }
  if (buffer.chunk_count() > 0) {
    // The head chunk's bytes arrived at its run's arrival step; under the
    // work-conserving generic algorithm they leave within B/R (Lemma 3.2).
    const Time age = t - buffer.chunk(0).run->arrival;
    if (age > sojourn_bound_) {
      record(t, &InvariantViolations::server_sojourn, "server_sojourn",
             age - sojourn_bound_);
    }
  }
  if (client.overflow_bytes_so_far() > prev_overflow_) {
    record(t, &InvariantViolations::client_overflow, "client_overflow",
           client.overflow_bytes_so_far() - prev_overflow_);
  }
  if (client.late_bytes_so_far() > prev_late_ ||
      client.underflow_events() > prev_underflow_events_) {
    record(t, &InvariantViolations::client_underflow, "client_underflow",
           (client.late_bytes_so_far() - prev_late_) +
               (client.underflow_events() - prev_underflow_events_));
  }
  prev_overflow_ = client.overflow_bytes_so_far();
  prev_late_ = client.late_bytes_so_far();
  prev_underflow_events_ = client.underflow_events();
}

}  // namespace rtsmooth::faults
