// Non-aborting watchdog for the paper's Lemma 3.2-3.4 guarantees.
//
// The contract macros in util/assert.h abort on violation, which is right
// for *internal* accounting invariants (a negative occupancy is a bug). The
// paper's *model* guarantees are different: on a faulty channel they are
// expected to fail, and the interesting question is how often and how early.
// The monitor checks them every step and records violations into
// SimReport::invariants, so a faulty-link run degrades gracefully and the
// robustness bench can report how far a channel pushes the system from the
// paper's regime:
//
//   server occupancy  |Bs(t)| <= B                  (Eq. (3) post-state)
//   server sojourn    every buffered byte leaves within ceil(B/R) of
//                     arrival (Lemma 3.2) — retransmission priority can
//                     stretch this, which is exactly worth observing
//   client overflow   no delivered byte is evicted for space (Lemma 3.4)
//   client underflow  no transmitted byte misses its deadline: no late
//                     deliveries, no partial slice at playout (Lemma 3.3)
//
// Server-intentional drops (Eq. (3)) are not violations — the paper's model
// sheds load at the server on purpose; link write-offs appear in
// SimReport::lost_link, not here.

#pragma once

#include "core/client.h"
#include "core/generic_algorithm.h"
#include "core/metrics.h"
#include "core/types.h"
#include "obs/telemetry.h"

namespace rtsmooth::faults {

class InvariantMonitor {
 public:
  /// With a non-null `telemetry`, every violation additionally increments
  /// an "invariant.<kind>" counter; a tracer gets a JSONL event
  /// {"type":"violation","t":...,"kind":...,"magnitude":...}; a flight
  /// recorder captures the trailing step window as an incident report
  /// (obs/flight_recorder.h).
  /// Magnitude is the overshoot in the invariant's own unit: bytes over B
  /// (server_occupancy / client_overflow), steps over ceil(B/R)
  /// (server_sojourn), late bytes + partial-slice events (client_underflow).
  InvariantMonitor(Bytes server_buffer, Bytes rate,
                   obs::Telemetry telemetry = {});

  /// Checks the post-step state; call once per step after client playout.
  void check(Time t, const SmoothingServer& server, const Client& client);

  const InvariantViolations& violations() const { return violations_; }

  /// Copies the verdict into the report. Call once, after the final step.
  void finalize(SimReport& report) const { report.invariants = violations_; }

 private:
  void record(Time t, std::int64_t InvariantViolations::*counter,
              std::string_view kind, std::int64_t magnitude);

  Bytes server_buffer_;
  Time sojourn_bound_;  ///< ceil(B / R)
  obs::Telemetry telemetry_;
  Bytes prev_overflow_ = 0;
  Bytes prev_late_ = 0;
  std::int64_t prev_underflow_events_ = 0;
  InvariantViolations violations_;
};

}  // namespace rtsmooth::faults
