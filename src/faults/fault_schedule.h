// Scheduled mid-run fault flips (DESIGN.md Sect. 13): a piecewise-constant
// fault program for long-running serving, composing the erasure and
// throttling impairments of fault_links.h under one time-indexed schedule.
//
// A schedule is a sorted list of phases; from `phase.from` onward, pieces
// are erased i.i.d. with `loss_probability` (NACKed back to the server like
// ErasureLink) and at most `rate_cap` bytes per step enter the inner link
// (the excess queues FIFO like ThrottledLink; -1 = uncapped). An optional
// `period` makes the program cyclic — phase lookup uses t mod period — so a
// soak of unbounded length keeps flipping between calm and impaired
// regimes. At loss 0 / cap -1 a phase is byte-identical to the inner link.

#pragma once

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/link.h"
#include "core/types.h"
#include "util/rng.h"

namespace rtsmooth::faults {

struct FaultPhase {
  Time from = 0;                ///< first step this phase applies to
  double loss_probability = 0.0;
  Bytes rate_cap = -1;          ///< bytes/step admitted; -1 = uncapped
};

class ScheduledFaultLink final : public Link {
 public:
  /// `phases` must be non-empty with strictly increasing `from`, starting
  /// at 0. `period` > 0 repeats the program every `period` steps (every
  /// phase.from must then be < period); 0 = one-shot.
  ScheduledFaultLink(std::unique_ptr<Link> inner,
                     std::vector<FaultPhase> phases, Rng rng,
                     Time feedback_delay = -1, Time period = 0);

  void submit(Time t, std::vector<SentPiece> pieces) override;
  std::vector<SentPiece> deliver(Time t) override;
  std::vector<Nack> collect_nacks(Time t) override;
  bool idle() const override {
    return inner_->idle() && queued_ == 0 && pending_nacks_.empty();
  }
  Time min_delay() const override { return inner_->min_delay(); }
  /// Counts erased pieces/bytes ("link.erased_pieces"/"link.erased_bytes"),
  /// piece splits at the cap, and the throttle-backlog high-watermark.
  /// Forwards to the inner link.
  void set_telemetry(obs::Telemetry telemetry) override;

  const FaultPhase& phase_at(Time t) const;

 private:
  std::unique_ptr<Link> inner_;
  std::vector<FaultPhase> phases_;
  Rng rng_;
  Time feedback_delay_;
  Time period_;
  struct PendingNack {
    Time at;
    Nack nack;
  };
  std::deque<PendingNack> pending_nacks_;
  std::deque<SentPiece> pending_;
  Bytes queued_ = 0;
  obs::Counter* erased_pieces_ = nullptr;
  obs::Counter* erased_bytes_ = nullptr;
  obs::Counter* split_pieces_ = nullptr;
  obs::Gauge* max_backlog_ = nullptr;
};

/// Parses "from:loss:cap[,from:loss:cap...]" (e.g. "0:0:-1,5000:0.3:-1,
/// 8000:0:256") into a phase list; throws std::invalid_argument naming the
/// offending token on malformed input, non-ascending times, or loss outside
/// [0, 1].
std::vector<FaultPhase> parse_fault_schedule(std::string_view text);

}  // namespace rtsmooth::faults
