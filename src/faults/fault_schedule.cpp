#include "faults/fault_schedule.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>
#include <utility>

#include "util/assert.h"

namespace rtsmooth::faults {

ScheduledFaultLink::ScheduledFaultLink(std::unique_ptr<Link> inner,
                                       std::vector<FaultPhase> phases,
                                       Rng rng, Time feedback_delay,
                                       Time period)
    : inner_(std::move(inner)),
      phases_(std::move(phases)),
      rng_(rng),
      feedback_delay_(feedback_delay >= 0 ? feedback_delay
                                          : inner_->min_delay()),
      period_(period) {
  RTS_EXPECTS(inner_ != nullptr);
  RTS_EXPECTS(!phases_.empty());
  RTS_EXPECTS(phases_.front().from == 0);
  RTS_EXPECTS(period_ >= 0);
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const FaultPhase& p = phases_[i];
    RTS_EXPECTS(p.loss_probability >= 0.0 && p.loss_probability <= 1.0);
    RTS_EXPECTS(p.rate_cap >= -1);
    if (i > 0) RTS_EXPECTS(p.from > phases_[i - 1].from);
    if (period_ > 0) RTS_EXPECTS(p.from < period_);
  }
}

const FaultPhase& ScheduledFaultLink::phase_at(Time t) const {
  const Time tm = period_ > 0 ? t % period_ : t;
  // Schedules hold a handful of phases; a reverse linear scan beats keeping
  // a cursor that a cyclic program would have to rewind anyway.
  for (std::size_t i = phases_.size(); i-- > 0;) {
    if (phases_[i].from <= tm) return phases_[i];
  }
  return phases_.front();
}

void ScheduledFaultLink::set_telemetry(obs::Telemetry telemetry) {
  inner_->set_telemetry(telemetry);
  if (telemetry.registry == nullptr) return;
  obs::Registry& reg = *telemetry.registry;
  erased_pieces_ = &reg.counter("link.erased_pieces");
  erased_bytes_ = &reg.counter("link.erased_bytes");
  split_pieces_ = &reg.counter("link.split_pieces");
  max_backlog_ = &reg.gauge("link.max_backlog");
}

void ScheduledFaultLink::submit(Time t, std::vector<SentPiece> pieces) {
  const double loss = phase_at(t).loss_probability;
  for (SentPiece& piece : pieces) {
    if (loss > 0.0 && rng_.bernoulli(loss)) {
      pending_nacks_.push_back(PendingNack{
          .at = t + inner_->min_delay() + feedback_delay_,
          .nack = Nack{.piece = piece, .sent_at = t}});
      if (erased_pieces_ != nullptr) {
        erased_pieces_->add(1);
        erased_bytes_->add(piece.bytes);
      }
      continue;
    }
    queued_ += piece.bytes;
    pending_.push_back(std::move(piece));
  }
  if (max_backlog_ != nullptr) max_backlog_->update(queued_);
}

std::vector<SentPiece> ScheduledFaultLink::deliver(Time t) {
  const Bytes cap = phase_at(t).rate_cap;
  Bytes budget = cap < 0 ? queued_ : std::min(cap, queued_);
  std::vector<SentPiece> admitted;
  while (budget > 0) {
    RTS_ASSERT(!pending_.empty());
    SentPiece& head = pending_.front();
    if (head.bytes <= budget) {
      budget -= head.bytes;
      queued_ -= head.bytes;
      admitted.push_back(std::move(head));
      pending_.pop_front();
      continue;
    }
    // Split at the cap; completions ride with the tail fragment (same
    // rationale as ThrottledLink::deliver).
    SentPiece fragment = head;
    fragment.bytes = budget;
    fragment.completed_slices = 0;
    if (split_pieces_ != nullptr) split_pieces_->add(1);
    head.bytes -= budget;
    queued_ -= budget;
    budget = 0;
    admitted.push_back(fragment);
  }
  inner_->submit(t, std::move(admitted));
  return inner_->deliver(t);
}

std::vector<Nack> ScheduledFaultLink::collect_nacks(Time t) {
  // NACK feedback times are non-decreasing in submission order (constant
  // feedback delay), so the front of the queue is always the earliest due.
  std::vector<Nack> out;
  while (!pending_nacks_.empty() && pending_nacks_.front().at <= t) {
    out.push_back(std::move(pending_nacks_.front().nack));
    pending_nacks_.pop_front();
  }
  return out;
}

std::vector<FaultPhase> parse_fault_schedule(std::string_view text) {
  const auto fail = [](std::string_view token, const char* why) {
    throw std::invalid_argument("fault schedule: " + std::string(why) +
                                " in '" + std::string(token) + "'");
  };
  std::vector<FaultPhase> phases;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view token = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) fail(text, "empty phase");
    const std::size_t c1 = token.find(':');
    const std::size_t c2 =
        c1 == std::string_view::npos ? c1 : token.find(':', c1 + 1);
    if (c1 == std::string_view::npos || c2 == std::string_view::npos) {
      fail(token, "expected from:loss:cap");
    }
    FaultPhase phase;
    const std::string_view from_s = token.substr(0, c1);
    const std::string_view loss_s = token.substr(c1 + 1, c2 - c1 - 1);
    const std::string_view cap_s = token.substr(c2 + 1);
    auto r1 = std::from_chars(from_s.data(), from_s.data() + from_s.size(),
                              phase.from);
    if (r1.ec != std::errc{} || r1.ptr != from_s.data() + from_s.size() ||
        phase.from < 0) {
      fail(token, "bad phase start");
    }
    auto r2 = std::from_chars(loss_s.data(), loss_s.data() + loss_s.size(),
                              phase.loss_probability);
    if (r2.ec != std::errc{} || r2.ptr != loss_s.data() + loss_s.size() ||
        phase.loss_probability < 0.0 || phase.loss_probability > 1.0) {
      fail(token, "loss probability must be in [0, 1]");
    }
    auto r3 = std::from_chars(cap_s.data(), cap_s.data() + cap_s.size(),
                              phase.rate_cap);
    if (r3.ec != std::errc{} || r3.ptr != cap_s.data() + cap_s.size() ||
        phase.rate_cap < -1) {
      fail(token, "bad rate cap");
    }
    if (!phases.empty() && phase.from <= phases.back().from) {
      fail(token, "phase starts must be strictly increasing");
    }
    phases.push_back(phase);
    if (comma == text.size()) break;
  }
  if (phases.empty() || phases.front().from != 0) {
    throw std::invalid_argument(
        "fault schedule: first phase must start at step 0");
  }
  return phases;
}

}  // namespace rtsmooth::faults
