// Optimal lossless smoothing — the "taut string" / shortest-path schedule
// of Salehi, Zhang, Kurose & Towsley [16] that the paper's related-work
// section builds on. Given a lower wall L (cumulative playout: data the
// client must have received by t) and an upper wall U (cumulative limit:
// data available at the server and fitting the client buffer), the
// transmission schedule that follows the shortest path threaded between the
// walls simultaneously minimizes the peak rate and the rate variability.
//
// Used here as the *lossless* comparator to the paper's lossy model: it
// answers "what link rate would zero loss have required?" for a given
// (delay, client buffer) budget — the tradeoff the introduction motivates.

#pragma once

#include <vector>

#include "core/types.h"
#include "lossless/cumulative.h"

namespace rtsmooth::lossless {

/// One constant-rate segment of a schedule: slots [start, end) at `rate`
/// bytes/slot (fractional — the optimal schedule's rates are generally not
/// integral).
struct RateSegment {
  Time start = 0;
  Time end = 0;
  double rate = 0.0;
};

/// A piecewise-CBR lossless schedule.
struct LosslessSchedule {
  std::vector<RateSegment> segments;
  double peak_rate = 0.0;     ///< max segment rate
  std::size_t changes = 0;    ///< rate changes (segments - 1, if any)

  /// Cumulative bytes sent through slot t (end of slot), interpolating the
  /// segments. Exact at segment boundaries.
  double sent_through(Time t) const;
};

/// Computes the taut-string schedule between walls `lower` and `upper`,
/// starting at (−1 end .. slot 0 start) with 0 bytes sent and ending having
/// sent lower.total(). Preconditions: the walls have equal length,
/// lower.at(t) <= upper.at(t) for all t, and upper.at(t) >= 0.
LosslessSchedule taut_string(const CumulativeCurve& lower,
                             const CumulativeCurve& upper);

/// Convenience walls for the live-smoothing setting: frames arrive per
/// `arrivals`, playback starts after `delay` slots, the client holds at
/// most `client_buffer` bytes.
///   lower(t) = arrivals(t - delay)           (all of frame k by k + delay)
///   upper(t) = min(arrivals(t), lower(t) + client_buffer)
struct SmoothingWalls {
  CumulativeCurve lower;
  CumulativeCurve upper;
};
SmoothingWalls live_walls(const CumulativeCurve& arrivals, Time delay,
                          Bytes client_buffer);

/// Minimum feasible peak rate between the walls, by the interval duality
///   min peak = max over t1 < t2 of (L(t2) - U(t1)) / (t2 - t1)
/// (with U(-1) treated as 0). Tests cross-check taut_string against this.
double min_peak_rate_bound(const CumulativeCurve& lower,
                           const CumulativeCurve& upper);

}  // namespace rtsmooth::lossless
