#include "lossless/cumulative.h"

#include <algorithm>

#include "util/assert.h"

namespace rtsmooth::lossless {

CumulativeCurve CumulativeCurve::from_increments(
    std::span<const Bytes> increments) {
  CumulativeCurve curve;
  curve.cumulative_.reserve(increments.size());
  Bytes acc = 0;
  for (Bytes inc : increments) {
    RTS_EXPECTS(inc >= 0);
    acc += inc;
    curve.cumulative_.push_back(acc);
  }
  return curve;
}

CumulativeCurve CumulativeCurve::from_frames(
    const trace::FrameSequence& frames) {
  std::vector<Bytes> increments;
  increments.reserve(frames.size());
  for (const trace::Frame& f : frames) increments.push_back(f.size);
  return from_increments(increments);
}

Bytes CumulativeCurve::at(Time t) const {
  if (t < 0 || cumulative_.empty()) return 0;
  if (t >= length()) return total();
  return cumulative_[static_cast<std::size_t>(t)];
}

CumulativeCurve CumulativeCurve::delayed(Time d) const {
  RTS_EXPECTS(d >= 0);
  CumulativeCurve curve;
  const Time n = length() + d;
  curve.cumulative_.reserve(static_cast<std::size_t>(n));
  for (Time t = 0; t < n; ++t) curve.cumulative_.push_back(at(t - d));
  return curve;
}

Bytes CumulativeCurve::peak_increment() const {
  Bytes peak = 0;
  Bytes prev = 0;
  for (Bytes v : cumulative_) {
    peak = std::max(peak, v - prev);
    prev = v;
  }
  return peak;
}

double CumulativeCurve::peak_window_rate(Time w) const {
  RTS_EXPECTS(w >= 1);
  double peak = 0.0;
  for (Time t = 0; t < length(); ++t) {
    const Bytes window = at(t) - at(t - w);
    peak = std::max(peak, static_cast<double>(window) /
                              static_cast<double>(w));
  }
  return peak;
}

}  // namespace rtsmooth::lossless
