#include "lossless/online_window.h"

#include <algorithm>

#include "util/assert.h"

namespace rtsmooth::lossless {

LosslessSchedule online_smooth(const SmoothingWalls& walls, Time window,
                               BlockAnchor anchor) {
  RTS_EXPECTS(window >= 1);
  RTS_EXPECTS(walls.lower.length() == walls.upper.length());
  const Time n = walls.lower.length();
  LosslessSchedule out;
  Bytes sent = 0;  // cumulative bytes scheduled so far (block boundaries
                   // land on integral wall values, so this stays exact)
  for (Time start = 0; start < n; start += window) {
    const Time end = std::min(start + window, n);  // block is [start, end)
    const Bytes target =
        end == n || anchor == BlockAnchor::Drain
            ? walls.lower.at(end - 1)
            : std::min(walls.upper.at(end - 1), walls.lower.total());
    RTS_ASSERT(target >= sent);

    // Build block-local walls relative to `sent`, with the endpoint pinned
    // to `target` (taut_string pins via its upper clamp at lower.total()).
    std::vector<Bytes> lower_inc;
    std::vector<Bytes> upper_inc;
    Bytes prev_l = 0;
    Bytes prev_u = 0;
    for (Time t = start; t < end; ++t) {
      Bytes l = std::max<Bytes>(0, walls.lower.at(t) - sent);
      Bytes u = std::max(l, walls.upper.at(t) - sent);
      if (t == end - 1) {
        l = target - sent;
        u = target - sent;
      }
      // Pinning can only raise the lower wall at the very end; keep the
      // curves nondecreasing for from_increments.
      l = std::max(l, prev_l);
      u = std::max({u, l, prev_u});
      lower_inc.push_back(l - prev_l);
      upper_inc.push_back(u - prev_u);
      prev_l = l;
      prev_u = u;
    }
    const LosslessSchedule block =
        taut_string(CumulativeCurve::from_increments(lower_inc),
                    CumulativeCurve::from_increments(upper_inc));
    for (const RateSegment& seg : block.segments) {
      out.segments.push_back(RateSegment{.start = seg.start + start,
                                         .end = seg.end + start,
                                         .rate = seg.rate});
    }
    sent = target;
  }
  for (const RateSegment& seg : out.segments) {
    out.peak_rate = std::max(out.peak_rate, seg.rate);
  }
  out.changes = out.segments.empty() ? 0 : out.segments.size() - 1;
  return out;
}

}  // namespace rtsmooth::lossless
