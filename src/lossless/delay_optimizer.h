// Startup-delay optimization for lossless smoothing — the question of Zhao
// et al. [23] in the paper's related work: how much initial delay buys how
// much peak-bandwidth reduction, and past which delay there is no further
// reduction.

#pragma once

#include "core/types.h"
#include "lossless/cumulative.h"
#include "lossless/taut_string.h"

namespace rtsmooth::lossless {

/// Minimum feasible peak link rate for a lossless schedule of `arrivals`
/// with startup delay `delay` and client buffer `client_buffer`
/// (the taut-string schedule's peak). Nonincreasing in both parameters.
double min_peak_for_delay(const CumulativeCurve& arrivals, Time delay,
                          Bytes client_buffer);

/// Smallest startup delay whose lossless peak rate is at most `rate`.
/// Returns -1 if even `max_delay` does not suffice (the buffer caps how
/// much delay can help). Binary search over the monotone peak(delay).
Time min_delay_for_rate(const CumulativeCurve& arrivals, double rate,
                        Bytes client_buffer, Time max_delay);

struct DelayKnee {
  Time delay = 0;          ///< smallest delay achieving the floor
  double peak_rate = 0.0;  ///< the floor: peak at that delay
  double peak_at_zero = 0.0;  ///< peak with no startup delay, for contrast
};

/// Zhao et al.'s "optimal initial delay": the smallest delay after which
/// added delay no longer reduces the peak rate (within `tolerance`,
/// relative). The floor itself is buffer-limited: bursts longer than the
/// client buffer can absorb must still be carried by the link.
DelayKnee optimal_initial_delay(const CumulativeCurve& arrivals,
                                Bytes client_buffer,
                                double tolerance = 1e-6);

}  // namespace rtsmooth::lossless
