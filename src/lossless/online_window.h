// On-line lossless smoothing by piecewise taut strings — the sliding-window
// idea of Rexford et al. [14] (refined by Chang et al. [5]): a live source
// cannot know the whole stream, so the optimal off-line schedule is applied
// block by block over a lookahead window. Peak rate degrades gracefully as
// the window shrinks; with the window spanning the whole stream it equals
// the off-line optimum. The bench tab_lossless sweeps that convergence.

#pragma once

#include "core/types.h"
#include "lossless/taut_string.h"

namespace rtsmooth::lossless {

/// Where each block's schedule should land within the feasible corridor.
enum class BlockAnchor {
  Drain,     ///< end each block at the lower wall (client nearly empty)
  Prefetch,  ///< end each block as high as feasible (client full)
};

/// Computes an on-line schedule over `walls` using taut strings on blocks
/// of `window` slots. Each block sees only that much lookahead; the block
/// endpoint is pinned per `anchor`. Requires window >= 1. The result is
/// always feasible; its peak rate is >= the full taut string's.
LosslessSchedule online_smooth(const SmoothingWalls& walls, Time window,
                               BlockAnchor anchor);

}  // namespace rtsmooth::lossless
