#include "lossless/taut_string.h"

#include <algorithm>
#include <limits>

#include "util/assert.h"

namespace rtsmooth::lossless {

double LosslessSchedule::sent_through(Time t) const {
  double sent = 0.0;
  for (const RateSegment& seg : segments) {
    if (t < seg.start) break;
    const Time covered = std::min(t + 1, seg.end) - seg.start;
    sent += seg.rate * static_cast<double>(covered);
  }
  return sent;
}

LosslessSchedule taut_string(const CumulativeCurve& lower,
                             const CumulativeCurve& upper) {
  RTS_EXPECTS(lower.length() == upper.length());
  RTS_EXPECTS(lower.length() >= 1);
  const Time n = lower.length();
  const double total = static_cast<double>(lower.total());

  // Wall accessors. The path starts at (t = -1, 0 bytes) and must end at
  // (n-1, lower.total()); sending beyond the total is useless, so the upper
  // wall is clamped to it, which also pins the endpoint.
  auto wall_l = [&](Time t) { return static_cast<double>(lower.at(t)); };
  auto wall_u = [&](Time t) {
    const double u = static_cast<double>(
        std::min(upper.at(t), lower.total()));
    return t == n - 1 ? total : u;
  };
  for (Time t = 0; t < n; ++t) {
    RTS_EXPECTS(lower.at(t) <= std::min(upper.at(t), lower.total()) ||
                t == n - 1);
  }

  LosslessSchedule schedule;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kEps = 1e-9;
  Time t0 = -1;
  double s0 = 0.0;
  auto emit = [&](Time end, double rate) {
    RTS_ASSERT(end > t0);
    schedule.segments.push_back(
        RateSegment{.start = t0 + 1, .end = end + 1, .rate = rate});
    s0 += rate * static_cast<double>(end - t0);
    t0 = end;
  };

  while (t0 < n - 1) {
    double hi = kInf;   // tightest upper-wall slope seen
    double lo = -kInf;  // tightest lower-wall slope seen
    Time hi_t = t0;
    Time lo_t = t0;
    bool pinched = false;
    for (Time t = t0 + 1; t < n; ++t) {
      const auto dt = static_cast<double>(t - t0);
      const double up = (wall_u(t) - s0) / dt;
      const double dn = (wall_l(t) - s0) / dt;
      if (dn > hi + kEps) {
        // The cone closed against the upper wall: ride it to the pinch.
        emit(hi_t, hi);
        pinched = true;
        break;
      }
      if (up < lo - kEps) {
        // Closed against the lower wall.
        emit(lo_t, lo);
        pinched = true;
        break;
      }
      if (up < hi) {
        hi = up;
        hi_t = t;
      }
      if (dn > lo) {
        lo = dn;
        lo_t = t;
      }
    }
    if (!pinched) {
      // The endpoint (n-1, total) is inside the cone (the clamp makes
      // wall_u(n-1) == wall_l(n-1) == total): go straight to it.
      const auto dt = static_cast<double>(n - 1 - t0);
      emit(n - 1, (total - s0) / dt);
    }
  }

  for (const RateSegment& seg : schedule.segments) {
    schedule.peak_rate = std::max(schedule.peak_rate, seg.rate);
  }
  schedule.changes =
      schedule.segments.empty() ? 0 : schedule.segments.size() - 1;
  RTS_ENSURES(std::abs(s0 - total) < 1e-6 * std::max(1.0, total));
  return schedule;
}

SmoothingWalls live_walls(const CumulativeCurve& arrivals, Time delay,
                          Bytes client_buffer) {
  RTS_EXPECTS(delay >= 0);
  RTS_EXPECTS(client_buffer >= 0);
  const Time n = arrivals.length() + delay;
  std::vector<Bytes> lower_inc;
  std::vector<Bytes> upper_inc;
  lower_inc.reserve(static_cast<std::size_t>(n));
  upper_inc.reserve(static_cast<std::size_t>(n));
  Bytes prev_l = 0;
  Bytes prev_u = 0;
  for (Time t = 0; t < n; ++t) {
    const Bytes l = arrivals.at(t - delay);
    const Bytes u = std::max(l, std::min(arrivals.at(t), l + client_buffer));
    lower_inc.push_back(l - prev_l);
    upper_inc.push_back(std::max<Bytes>(0, u - prev_u));
    prev_l = l;
    prev_u = std::max(u, prev_u);  // keep the wall nondecreasing
  }
  return SmoothingWalls{
      .lower = CumulativeCurve::from_increments(lower_inc),
      .upper = CumulativeCurve::from_increments(upper_inc)};
}

double min_peak_rate_bound(const CumulativeCurve& lower,
                           const CumulativeCurve& upper) {
  RTS_EXPECTS(lower.length() == upper.length());
  const Time n = lower.length();
  const auto total = static_cast<double>(lower.total());
  double bound = 0.0;
  for (Time t2 = 0; t2 < n; ++t2) {
    const double l2 = static_cast<double>(lower.at(t2));
    // t1 = -1 stands for the origin (0 bytes sent before slot 0).
    for (Time t1 = -1; t1 < t2; ++t1) {
      const double u1 =
          t1 < 0 ? 0.0
                 : std::min(static_cast<double>(upper.at(t1)), total);
      const double demand = (l2 - u1) / static_cast<double>(t2 - t1);
      bound = std::max(bound, demand);
    }
  }
  return bound;
}

}  // namespace rtsmooth::lossless
