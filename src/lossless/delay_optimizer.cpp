#include "lossless/delay_optimizer.h"

#include "util/assert.h"

namespace rtsmooth::lossless {

double min_peak_for_delay(const CumulativeCurve& arrivals, Time delay,
                          Bytes client_buffer) {
  const SmoothingWalls walls = live_walls(arrivals, delay, client_buffer);
  return taut_string(walls.lower, walls.upper).peak_rate;
}

Time min_delay_for_rate(const CumulativeCurve& arrivals, double rate,
                        Bytes client_buffer, Time max_delay) {
  RTS_EXPECTS(rate > 0.0);
  RTS_EXPECTS(max_delay >= 0);
  if (min_peak_for_delay(arrivals, max_delay, client_buffer) > rate) {
    return -1;
  }
  Time lo = 0;
  Time hi = max_delay;
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (min_peak_for_delay(arrivals, mid, client_buffer) <= rate) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

DelayKnee optimal_initial_delay(const CumulativeCurve& arrivals,
                                Bytes client_buffer, double tolerance) {
  RTS_EXPECTS(tolerance >= 0.0);
  DelayKnee knee;
  knee.peak_at_zero = min_peak_for_delay(arrivals, 0, client_buffer);
  // Past one full stream length, extra delay cannot help: every byte could
  // already be held back arbitrarily long.
  const Time max_delay = arrivals.length();
  const double floor = min_peak_for_delay(arrivals, max_delay, client_buffer);
  const Time found = min_delay_for_rate(
      arrivals, floor * (1.0 + tolerance), client_buffer, max_delay);
  knee.delay = found < 0 ? max_delay : found;
  knee.peak_rate = min_peak_for_delay(arrivals, knee.delay, client_buffer);
  return knee;
}

}  // namespace rtsmooth::lossless
