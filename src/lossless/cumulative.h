// Cumulative byte curves — the vocabulary of the lossless-smoothing
// literature the paper builds on (Salehi et al. [16], Rexford et al. [14],
// Zhao et al. [23]). A curve maps slot t to the total bytes up to and
// including t; arrival curves, playout curves and transmission schedules
// are all curves of this kind.

#pragma once

#include <span>
#include <vector>

#include "core/types.h"
#include "trace/frame.h"

namespace rtsmooth::lossless {

/// Nondecreasing cumulative curve over slots 0..length()-1.
class CumulativeCurve {
 public:
  CumulativeCurve() = default;

  /// From per-slot increments (e.g. frame sizes).
  static CumulativeCurve from_increments(std::span<const Bytes> increments);
  static CumulativeCurve from_frames(const trace::FrameSequence& frames);

  /// Cumulative bytes through slot t; 0 for t < 0, total() past the end.
  Bytes at(Time t) const;

  Bytes total() const { return cumulative_.empty() ? 0 : cumulative_.back(); }
  Time length() const { return static_cast<Time>(cumulative_.size()); }

  /// The curve delayed by d slots: value(t) = at(t - d). Models a playout
  /// that starts d slots after the source (startup delay).
  CumulativeCurve delayed(Time d) const;

  /// Peak per-slot increment (the unsmoothed bandwidth requirement).
  Bytes peak_increment() const;

  /// Max average rate over any window of exactly w slots — the empirical
  /// envelope used to reason about burst length.
  double peak_window_rate(Time w) const;

  std::span<const Bytes> values() const { return cumulative_; }

 private:
  std::vector<Bytes> cumulative_;
};

}  // namespace rtsmooth::lossless
