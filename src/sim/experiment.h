// Experiment helpers shared by the figure benches and examples: run a set of
// named policies on one configuration, and compute the off-line optimal
// comparator with the right solver for the stream's slice model.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/planner.h"
#include "core/slice.h"

namespace rtsmooth::sim {

struct PolicyOutcome {
  std::string policy;
  SimReport report;
};

/// Simulates every named policy on `stream` under the balanced plan.
std::vector<PolicyOutcome> run_policies(const Stream& stream, const Plan& plan,
                                        std::span<const std::string> policies,
                                        Time link_delay = 1);

struct OptimalPoint {
  double weighted_loss = 0.0;
  double benefit_fraction = 1.0;
  bool exact = true;  ///< false if the Pareto DP hit its state limit
};

/// Off-line optimal for the server-side problem (buffer B, rate R): exact
/// polymatroid greedy for unit slices, exact Pareto DP otherwise.
OptimalPoint offline_optimal(const Stream& stream, Bytes buffer, Bytes rate);

}  // namespace rtsmooth::sim
