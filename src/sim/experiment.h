// Experiment helpers shared by the figure benches and examples: run a set of
// named policies on one configuration, and compute the off-line optimal
// comparator with the right solver for the stream's slice model.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/planner.h"
#include "core/slice.h"

namespace rtsmooth::sim {

struct PolicyOutcome {
  std::string policy;
  SimReport report;

  bool operator==(const PolicyOutcome&) const = default;
};

/// Simulates every named policy on `stream` under the balanced plan. Each
/// policy runs as an independent task on a ParallelRunner (sim/runner.h):
/// `threads = 0` defers to RTSMOOTH_THREADS / the hardware, `threads = 1`
/// runs serially in place; the outcomes are identical either way and keep
/// the order of `policies`.
std::vector<PolicyOutcome> run_policies(const Stream& stream, const Plan& plan,
                                        std::span<const std::string> policies,
                                        Time link_delay = 1,
                                        unsigned threads = 0);

struct OptimalPoint {
  double weighted_loss = 0.0;
  double benefit_fraction = 1.0;
  bool exact = true;  ///< false if the Pareto DP hit its state limit

  bool operator==(const OptimalPoint&) const = default;
};

/// Off-line optimal for the server-side problem (buffer B, rate R): exact
/// polymatroid greedy for unit slices, exact Pareto DP otherwise.
OptimalPoint offline_optimal(const Stream& stream, Bytes buffer, Bytes rate);

}  // namespace rtsmooth::sim
