#include "sim/sweep.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "policies/policy_factory.h"
#include "util/assert.h"

namespace rtsmooth::sim {
namespace {

Bytes buffer_from_multiple(const Stream& stream, double multiple) {
  return static_cast<Bytes>(
      std::llround(multiple * static_cast<double>(stream.max_frame_bytes())));
}

/// The fixed link rate of a BufferMultiple / FaultSeverity sweep: explicit,
/// or the stream's average when the spec leaves it 0.
Bytes fixed_rate(const Stream& stream, const SweepSpec& spec) {
  return spec.rate > 0 ? spec.rate : relative_rate(stream, 1.0);
}

Plan plan_for_buffer(const Stream& stream, Bytes buffer, Bytes rate) {
  if (buffer < stream.max_slice_size()) {
    throw std::invalid_argument(
        "sweep: buffer (" + std::to_string(buffer) +
        " bytes) is smaller than the stream's largest slice (" +
        std::to_string(stream.max_slice_size()) +
        " bytes); grow the swept multiple or cut finer slices");
  }
  // Round the delay *up* so B = D*R never shrinks below the requested
  // size (shrinking could violate B >= Lmax for whole-frame slices).
  return Planner::from_delay_rate((buffer + rate - 1) / rate, rate);
}

SimReport fault_run(const Stream& stream, const SweepSpec& spec,
                    const Plan& plan, const std::string& policy,
                    double severity, UnderflowPolicy underflow) {
  SimConfig config = SimConfig::balanced(plan, spec.link_delay);
  config.underflow = underflow;
  config.max_stall = spec.max_stall;
  config.recovery = spec.recovery;
  SmoothingSimulator simulator(stream, config, make_policy(policy),
                               spec.link_factory(severity, spec.link_delay));
  return simulator.run();
}

SweepResult fault_axis_sweep(const Stream& stream, const SweepSpec& spec) {
  if (!spec.link_factory) {
    throw std::invalid_argument(
        "sweep: the FaultSeverity axis requires SweepSpec::link_factory");
  }
  if (spec.policies.empty()) {
    throw std::invalid_argument(
        "sweep: the FaultSeverity axis needs one policy in "
        "SweepSpec::policies");
  }
  const std::string& policy = spec.policies.front();
  const Plan plan =
      spec.plan ? *spec.plan
                : Planner::from_buffer_rate(
                      buffer_from_multiple(stream, spec.buffer_multiple),
                      fixed_rate(stream, spec));
  SweepResult result;
  result.faults.resize(spec.values.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(2 * spec.values.size());
  for (std::size_t i = 0; i < spec.values.size(); ++i) {
    FaultPoint* point = &result.faults[i];
    point->severity = spec.values[i];
    tasks.push_back([&stream, &spec, &policy, plan, point] {
      point->skip = fault_run(stream, spec, plan, policy, point->severity,
                              UnderflowPolicy::Skip);
    });
    tasks.push_back([&stream, &spec, &policy, plan, point] {
      point->stall = fault_run(stream, spec, plan, policy, point->severity,
                               UnderflowPolicy::Stall);
    });
  }
  result.stats = ParallelRunner(spec.threads).run(std::move(tasks));
  return result;
}

}  // namespace

Bytes relative_rate(const Stream& stream, double fraction) {
  RTS_EXPECTS(fraction > 0.0);
  return std::max<Bytes>(
      1, static_cast<Bytes>(std::llround(fraction * stream.average_rate())));
}

SweepResult sweep(const Stream& stream, const SweepSpec& spec) {
  if (spec.axis == SweepAxis::FaultSeverity) {
    return fault_axis_sweep(stream, spec);
  }
  if (spec.policies.empty() && !spec.with_optimal) {
    throw std::invalid_argument(
        "sweep: nothing to run per point — give SweepSpec::policies at "
        "least one entry or set with_optimal");
  }
  SweepResult result;
  result.points.resize(spec.values.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(spec.values.size() *
                (spec.policies.size() + (spec.with_optimal ? 1 : 0)));
  for (std::size_t i = 0; i < spec.values.size(); ++i) {
    SweepPoint* point = &result.points[i];
    point->x = spec.values[i];
    const Bytes rate = spec.axis == SweepAxis::BufferMultiple
                           ? fixed_rate(stream, spec)
                           : relative_rate(stream, point->x);
    const Bytes buffer =
        spec.axis == SweepAxis::BufferMultiple
            ? buffer_from_multiple(stream, point->x)
            : buffer_from_multiple(stream, spec.buffer_multiple);
    point->plan = plan_for_buffer(stream, buffer, rate);
    point->policies.resize(spec.policies.size());
    for (std::size_t j = 0; j < spec.policies.size(); ++j) {
      point->policies[j].policy = spec.policies[j];
      tasks.push_back([&stream, &spec, point, j] {
        point->policies[j].report = simulate(
            stream, point->plan, point->policies[j].policy, spec.link_delay);
      });
    }
    if (spec.with_optimal) {
      point->has_optimal = true;
      tasks.push_back([&stream, point] {
        point->optimal =
            offline_optimal(stream, point->plan.buffer, point->plan.rate);
      });
    }
  }
  result.stats = ParallelRunner(spec.threads).run(std::move(tasks));
  return result;
}

// ---------------------------------------------------------------------------
// Deprecated wrappers. Serial (threads = 1), matching their historical
// behaviour; new code states the grid in a SweepSpec instead.

std::vector<SweepPoint> buffer_sweep(const Stream& stream,
                                     std::span<const double> buffer_multiples,
                                     Bytes rate,
                                     std::span<const std::string> policies,
                                     bool with_optimal) {
  SweepSpec spec{.axis = SweepAxis::BufferMultiple,
                 .values = {buffer_multiples.begin(), buffer_multiples.end()},
                 .policies = {policies.begin(), policies.end()},
                 .with_optimal = with_optimal,
                 .rate = rate,
                 .threads = 1};
  return sweep(stream, spec).points;
}

std::vector<SweepPoint> rate_sweep(const Stream& stream,
                                   std::span<const double> rate_fractions,
                                   double buffer_multiple,
                                   std::span<const std::string> policies,
                                   bool with_optimal) {
  SweepSpec spec{.axis = SweepAxis::RateFraction,
                 .values = {rate_fractions.begin(), rate_fractions.end()},
                 .policies = {policies.begin(), policies.end()},
                 .with_optimal = with_optimal,
                 .buffer_multiple = buffer_multiple,
                 .threads = 1};
  return sweep(stream, spec).points;
}

std::vector<FaultPoint> fault_sweep(const Stream& stream, const Plan& plan,
                                    std::string_view policy,
                                    std::span<const double> severities,
                                    const FaultLinkFactory& make_link,
                                    const RecoveryConfig& recovery,
                                    Time max_stall, Time link_delay) {
  RTS_EXPECTS(make_link != nullptr);
  SweepSpec spec{.axis = SweepAxis::FaultSeverity,
                 .values = {severities.begin(), severities.end()},
                 .policies = {std::string(policy)},
                 .plan = plan,
                 .link_factory = make_link,
                 .recovery = recovery,
                 .max_stall = max_stall,
                 .link_delay = link_delay,
                 .threads = 1};
  return sweep(stream, spec).faults;
}

}  // namespace rtsmooth::sim
