#include "sim/sweep.h"

#include <algorithm>
#include <cmath>

#include "policies/policy_factory.h"
#include "util/assert.h"

namespace rtsmooth::sim {

Bytes relative_rate(const Stream& stream, double fraction) {
  RTS_EXPECTS(fraction > 0.0);
  return std::max<Bytes>(
      1, static_cast<Bytes>(std::llround(fraction * stream.average_rate())));
}

std::vector<SweepPoint> buffer_sweep(const Stream& stream,
                                     std::span<const double> buffer_multiples,
                                     Bytes rate,
                                     std::span<const std::string> policies,
                                     bool with_optimal) {
  std::vector<SweepPoint> out;
  out.reserve(buffer_multiples.size());
  for (double mult : buffer_multiples) {
    const auto buffer = static_cast<Bytes>(
        std::llround(mult * static_cast<double>(stream.max_frame_bytes())));
    RTS_EXPECTS(buffer >= stream.max_slice_size());
    // Round the delay *up* so B = D*R never shrinks below the requested
    // size (shrinking could violate B >= Lmax for whole-frame slices).
    const Plan plan =
        Planner::from_delay_rate((buffer + rate - 1) / rate, rate);
    SweepPoint point{.x = mult, .plan = plan};
    point.policies = run_policies(stream, plan, policies);
    if (with_optimal) {
      point.optimal = offline_optimal(stream, plan.buffer, plan.rate);
      point.has_optimal = true;
    }
    out.push_back(std::move(point));
  }
  return out;
}

std::vector<SweepPoint> rate_sweep(const Stream& stream,
                                   std::span<const double> rate_fractions,
                                   double buffer_multiple,
                                   std::span<const std::string> policies,
                                   bool with_optimal) {
  std::vector<SweepPoint> out;
  out.reserve(rate_fractions.size());
  for (double fraction : rate_fractions) {
    const Bytes rate = relative_rate(stream, fraction);
    const auto buffer = static_cast<Bytes>(std::llround(
        buffer_multiple * static_cast<double>(stream.max_frame_bytes())));
    RTS_EXPECTS(buffer >= stream.max_slice_size());
    const Plan plan =
        Planner::from_delay_rate((buffer + rate - 1) / rate, rate);
    SweepPoint point{.x = fraction, .plan = plan};
    point.policies = run_policies(stream, plan, policies);
    if (with_optimal) {
      point.optimal = offline_optimal(stream, plan.buffer, plan.rate);
      point.has_optimal = true;
    }
    out.push_back(std::move(point));
  }
  return out;
}

std::vector<FaultPoint> fault_sweep(const Stream& stream, const Plan& plan,
                                    std::string_view policy,
                                    std::span<const double> severities,
                                    const FaultLinkFactory& make_link,
                                    const RecoveryConfig& recovery,
                                    Time max_stall, Time link_delay) {
  RTS_EXPECTS(make_link != nullptr);
  auto run_one = [&](double severity, UnderflowPolicy underflow) {
    SimConfig config = SimConfig::balanced(plan, link_delay);
    config.underflow = underflow;
    config.max_stall = max_stall;
    config.recovery = recovery;
    SmoothingSimulator simulator(stream, config, make_policy(policy),
                                 make_link(severity, link_delay));
    return simulator.run();
  };
  std::vector<FaultPoint> out;
  out.reserve(severities.size());
  for (double severity : severities) {
    out.push_back(FaultPoint{.severity = severity,
                             .skip = run_one(severity, UnderflowPolicy::Skip),
                             .stall = run_one(severity, UnderflowPolicy::Stall)});
  }
  return out;
}

}  // namespace rtsmooth::sim
