#include "sim/sweep.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "policies/policy_factory.h"
#include "util/assert.h"

namespace rtsmooth::sim {
namespace {

Bytes buffer_from_multiple(const Stream& stream, double multiple) {
  return static_cast<Bytes>(
      std::llround(multiple * static_cast<double>(stream.max_frame_bytes())));
}

/// The fixed link rate of a BufferMultiple / FaultSeverity sweep: explicit,
/// or the stream's average when the spec leaves it 0.
Bytes fixed_rate(const Stream& stream, const SweepSpec& spec) {
  return spec.rate > 0 ? spec.rate : relative_rate(stream, 1.0);
}

Plan plan_for_buffer(const Stream& stream, Bytes buffer, Bytes rate) {
  if (buffer < stream.max_slice_size()) {
    throw std::invalid_argument(
        "sweep: buffer (" + std::to_string(buffer) +
        " bytes) is smaller than the stream's largest slice (" +
        std::to_string(stream.max_slice_size()) +
        " bytes); grow the swept multiple or cut finer slices");
  }
  // Round the delay *up* so B = D*R never shrinks below the requested
  // size (shrinking could violate B >= Lmax for whole-frame slices).
  return Planner::from_delay_rate((buffer + rate - 1) / rate, rate);
}

SimReport fault_run(const Stream& stream, const SweepSpec& spec,
                    const Plan& plan, const std::string& policy,
                    double severity, UnderflowPolicy underflow,
                    obs::Telemetry telemetry) {
  SimConfig config = SimConfig::balanced(plan, spec.link_delay);
  config.underflow = underflow;
  config.max_stall = spec.max_stall;
  config.recovery = spec.recovery;
  config.engine = spec.engine;
  config.telemetry = telemetry;
  SmoothingSimulator simulator(stream, config, make_policy(policy),
                               spec.link_factory(severity, spec.link_delay));
  return simulator.run();
}

/// Per-cell telemetry isolation. Cells may run on any thread, so each gets
/// a private registry and flight recorder (slot k for task k); fold()
/// merges both in submission order afterwards, making the merged snapshot
/// and incident list independent of the thread count (DESIGN.md Sect. 9).
class CellTelemetry {
 public:
  CellTelemetry(const SweepSpec& spec, std::size_t tasks) : spec_(&spec) {
    if (spec.registry != nullptr) registries_.resize(tasks);
    if (spec.recorder != nullptr) {
      recorders_.reserve(tasks);
      for (std::size_t i = 0; i < tasks; ++i) {
        recorders_.emplace_back(spec.recorder->config());
        recorders_.back().annotate("cell", static_cast<std::int64_t>(i));
      }
    }
  }

  /// Incident context tag for cell k; call before the batch runs.
  void annotate(std::size_t k, std::string_view key, obs::Json value) {
    if (!recorders_.empty()) recorders_[k].annotate(key, std::move(value));
  }

  obs::Telemetry at(std::size_t k) {
    obs::Telemetry telemetry;
    if (!registries_.empty()) telemetry.registry = &registries_[k];
    if (!recorders_.empty()) telemetry.recorder = &recorders_[k];
    return telemetry;
  }

  void fold() {
    if (spec_->registry != nullptr) {
      for (const obs::Registry& cell : registries_) {
        spec_->registry->merge(cell);
      }
    }
    if (spec_->recorder != nullptr) {
      for (const obs::FlightRecorder& cell : recorders_) {
        spec_->recorder->merge(cell);
      }
    }
  }

 private:
  const SweepSpec* spec_;
  std::vector<obs::Registry> registries_;
  std::vector<obs::FlightRecorder> recorders_;
};

SweepResult fault_axis_sweep(const Stream& stream, const SweepSpec& spec) {
  if (!spec.link_factory) {
    throw std::invalid_argument(
        "sweep: the FaultSeverity axis requires SweepSpec::link_factory");
  }
  if (spec.policies.empty()) {
    throw std::invalid_argument(
        "sweep: the FaultSeverity axis needs one policy in "
        "SweepSpec::policies");
  }
  const std::string& policy = spec.policies.front();
  const Plan plan =
      spec.plan ? *spec.plan
                : Planner::from_buffer_rate(
                      buffer_from_multiple(stream, spec.buffer_multiple),
                      fixed_rate(stream, spec));
  SweepResult result;
  result.faults.resize(spec.values.size());
  CellTelemetry cells(spec, 2 * spec.values.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(2 * spec.values.size());
  for (std::size_t i = 0; i < spec.values.size(); ++i) {
    FaultPoint* point = &result.faults[i];
    point->severity = spec.values[i];
    const std::size_t k = tasks.size();
    cells.annotate(k, "severity", point->severity);
    cells.annotate(k, "underflow", "skip");
    cells.annotate(k + 1, "severity", point->severity);
    cells.annotate(k + 1, "underflow", "stall");
    tasks.push_back([&stream, &spec, &policy, &cells, plan, point, k] {
      const obs::Telemetry tel = cells.at(k);
      const obs::Span cell_span(tel, "sweep.cell");
      point->skip = fault_run(stream, spec, plan, policy, point->severity,
                              UnderflowPolicy::Skip, tel);
    });
    tasks.push_back([&stream, &spec, &policy, &cells, plan, point, k] {
      const obs::Telemetry tel = cells.at(k + 1);
      const obs::Span cell_span(tel, "sweep.cell");
      point->stall = fault_run(stream, spec, plan, policy, point->severity,
                               UnderflowPolicy::Stall, tel);
    });
  }
  result.stats =
      ParallelRunner(spec.threads).run(std::move(tasks), spec.progress);
  cells.fold();
  return result;
}

}  // namespace

Bytes relative_rate(const Stream& stream, double fraction) {
  RTS_EXPECTS(fraction > 0.0);
  return std::max<Bytes>(
      1, static_cast<Bytes>(std::llround(fraction * stream.average_rate())));
}

SweepResult sweep(const Stream& stream, const SweepSpec& spec) {
  if (spec.axis == SweepAxis::FaultSeverity) {
    return fault_axis_sweep(stream, spec);
  }
  if (spec.policies.empty() && !spec.with_optimal) {
    throw std::invalid_argument(
        "sweep: nothing to run per point — give SweepSpec::policies at "
        "least one entry or set with_optimal");
  }
  SweepResult result;
  result.points.resize(spec.values.size());
  const std::size_t per_point =
      spec.policies.size() + (spec.with_optimal ? 1 : 0);
  CellTelemetry cells(spec, spec.values.size() * per_point);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(spec.values.size() * per_point);
  for (std::size_t i = 0; i < spec.values.size(); ++i) {
    SweepPoint* point = &result.points[i];
    point->x = spec.values[i];
    const Bytes rate = spec.axis == SweepAxis::BufferMultiple
                           ? fixed_rate(stream, spec)
                           : relative_rate(stream, point->x);
    const Bytes buffer =
        spec.axis == SweepAxis::BufferMultiple
            ? buffer_from_multiple(stream, point->x)
            : buffer_from_multiple(stream, spec.buffer_multiple);
    point->plan = plan_for_buffer(stream, buffer, rate);
    point->policies.resize(spec.policies.size());
    for (std::size_t j = 0; j < spec.policies.size(); ++j) {
      point->policies[j].policy = spec.policies[j];
      const std::size_t k = tasks.size();
      cells.annotate(k, "x", point->x);
      tasks.push_back([&stream, &spec, &cells, point, j, k] {
        const obs::Telemetry tel = cells.at(k);
        const obs::Span cell_span(tel, "sweep.cell");
        point->policies[j].report =
            simulate(stream, point->plan, point->policies[j].policy,
                     spec.link_delay, tel, spec.engine);
      });
    }
    if (spec.with_optimal) {
      point->has_optimal = true;
      const std::size_t k = tasks.size();
      cells.annotate(k, "x", point->x);
      tasks.push_back([&stream, &cells, point, k] {
        const obs::Span cell_span(cells.at(k), "sweep.cell");
        point->optimal =
            offline_optimal(stream, point->plan.buffer, point->plan.rate);
      });
    }
  }
  result.stats =
      ParallelRunner(spec.threads).run(std::move(tasks), spec.progress);
  cells.fold();
  return result;
}

}  // namespace rtsmooth::sim
