#include "sim/step_trace.h"

#include <stdexcept>

#include "util/csv.h"

namespace rtsmooth::sim {

void write_step_trace(const std::string& path, const ScheduleRecorder& rec) {
  if (rec.level() != ScheduleRecorder::Level::RunsAndSteps) {
    throw std::invalid_argument(
        "write_step_trace: the recorder was created at Level::RunsOnly, so "
        "there are no per-step sets to write — construct the "
        "ScheduleRecorder with Level::RunsAndSteps to capture them");
  }
  CsvWriter csv(path);
  csv.row({"t", "arrived", "sent", "delivered", "played", "dropped_server",
           "dropped_client", "server_occupancy", "client_occupancy"});
  for (const StepSets& step : rec.steps()) {
    csv.row({CsvWriter::field(step.t), CsvWriter::field(step.arrived),
             CsvWriter::field(step.sent), CsvWriter::field(step.delivered),
             CsvWriter::field(step.played),
             CsvWriter::field(step.dropped_server),
             CsvWriter::field(step.dropped_client),
             CsvWriter::field(step.server_occupancy),
             CsvWriter::field(step.client_occupancy)});
  }
}

}  // namespace rtsmooth::sim
