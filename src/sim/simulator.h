// End-to-end slotted simulation of the smoothing system of Fig. 1:
// source -> server buffer -> link -> client buffer -> playout device.
//
// Per step t (the event order fixed in Sect. 2.2): loss feedback (NACKs)
// reaches the server; the frame A(t) arrives at the server; the server
// drops, retransmits and sends per the generic algorithm (Eqs. (2),(3))
// with its DropPolicy; the link delivers R(t) = S(t-P); the client stores,
// then plays the frame whose playout step this is (PT = AT + P + D, shifted
// by any rebuffering under UnderflowPolicy::Stall). The run continues past
// the last arrival until the server (buffer and retransmission queue), link
// (including pending loss feedback) and playout pipeline fully drain, so
// reports always satisfy conservation — even on faulty links.
//
// An InvariantMonitor (src/faults/) watches the Lemma 3.2-3.4 guarantees
// every step and records violations into the report instead of aborting:
// faulty channels are supposed to break them, and the measure of interest
// is by how much.

#pragma once

#include <memory>
#include <string>

#include "core/client.h"
#include "core/event_engine.h"
#include "core/generic_algorithm.h"
#include "core/link.h"
#include "core/metrics.h"
#include "core/planner.h"
#include "core/schedule.h"
#include "core/slice.h"
#include "obs/telemetry.h"

namespace rtsmooth::sim {

struct SimConfig {
  Bytes server_buffer = 1;  ///< Bs
  Bytes client_buffer = 1;  ///< Bc
  Bytes rate = 1;           ///< R
  Time smoothing_delay = 1; ///< D
  Time link_delay = 1;      ///< P
  /// Playout convention; see core/client.h. The timer mode is the paper's
  /// synchronization-free protocol of Sect. 3.3.
  PlayoutMode playout = PlayoutMode::ArrivalPlusOffset;

  /// Client degradation mode when the due frame is incomplete (faulty links
  /// only — on the paper's lossless channel underflow never happens).
  UnderflowPolicy underflow = UnderflowPolicy::Skip;
  /// Max rebuffering steps spent on any one frame (Stall only).
  Time max_stall = 16;

  /// NACK/retransmit behaviour for lossy links; `smoothing_delay` inside is
  /// filled in by the simulator, callers only set the other fields.
  RecoveryConfig recovery{};

  /// Main-loop selection (core/event_engine.h). Both engines produce
  /// byte-identical reports, registry snapshots, traces and incidents — the
  /// three-way differential harness pins this — so the choice is purely a
  /// performance knob: EventDriven skips quiescent spans and wins big on
  /// sparse or long-horizon streams.
  EngineKind engine = EngineKind::SlotStepped;

  /// Telemetry handle, null by default (instrumentation costs nothing; see
  /// obs/telemetry.h). With a registry the run fills counters and the
  /// occupancy / sojourn / stall / drop-burst histograms; with a tracer it
  /// emits one JSONL event per step plus config/violation/run events — a
  /// machine-readable superset of the CSV step trace. With a flight
  /// recorder (obs/flight_recorder.h) every step lands in its ring and an
  /// invariant violation freezes the trailing window into an
  /// `rtsmooth-incident-v1` report.
  obs::Telemetry telemetry{};

  /// The paper's recommended configuration: Bs = Bc = B = D*R.
  static SimConfig balanced(const Plan& plan, Time link_delay = 1) {
    return SimConfig{.server_buffer = plan.buffer,
                     .client_buffer = plan.buffer,
                     .rate = plan.rate,
                     .smoothing_delay = plan.delay,
                     .link_delay = link_delay};
  }

  /// Validates the configuration against `stream` and returns a
  /// human-readable description of the first problem, or an empty string if
  /// the configuration is runnable. Notably checks the documented
  /// precondition server_buffer >= the stream's largest slice — a slice
  /// that can never fit could never be scheduled.
  std::string validate(const Stream& stream) const;
};

class SmoothingSimulator {
 public:
  /// `link` defaults to FixedDelayLink(config.link_delay). The stream must
  /// outlive the simulator. Throws std::invalid_argument with the
  /// config.validate() message if the configuration is not runnable.
  SmoothingSimulator(const Stream& stream, SimConfig config,
                     std::unique_ptr<DropPolicy> policy,
                     std::unique_ptr<Link> link = nullptr);

  /// Runs the whole schedule to drain. Call once. Pass a recorder to keep
  /// per-run outcomes / per-step set sizes for inspection.
  SimReport run(ScheduleRecorder* rec = nullptr);

  const SimConfig& config() const { return config_; }

 private:
  const Stream* stream_;
  SimConfig config_;
  SmoothingServer server_;
  std::unique_ptr<Link> link_;
  Client client_;
  bool ran_ = false;
};

/// One-call convenience: simulate `stream` under the balanced plan with the
/// named policy (see policy_factory.h). Pass a telemetry handle to collect
/// counters/histograms or a JSONL trace for the run; `engine` selects the
/// main loop (byte-identical either way).
SimReport simulate(const Stream& stream, const Plan& plan,
                   std::string_view policy_name, Time link_delay = 1,
                   obs::Telemetry telemetry = {},
                   EngineKind engine = EngineKind::SlotStepped);

/// One-call convenience for callers with a hand-built configuration or a
/// custom (e.g. faulty) link: simulate `stream` under `config` with the
/// named policy. `link` defaults to FixedDelayLink(config.link_delay).
SimReport simulate(const Stream& stream, const SimConfig& config,
                   std::string_view policy_name,
                   std::unique_ptr<Link> link = nullptr);

}  // namespace rtsmooth::sim
