#include "sim/simulator.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "faults/invariant_monitor.h"
#include "policies/policy_factory.h"
#include "util/assert.h"

namespace rtsmooth::sim {
namespace {

/// Throws with the validation message before any member with aborting
/// preconditions is constructed.
const Stream& validated(const Stream& stream, const SimConfig& config) {
  std::string problem = config.validate(stream);
  if (!problem.empty()) {
    throw std::invalid_argument("SimConfig: " + std::move(problem));
  }
  return stream;
}

ServerConfig server_config(const SimConfig& config) {
  ServerConfig sc{.buffer = config.server_buffer,
                  .rate = config.rate,
                  .recovery = config.recovery};
  // The deadline test lives at the server but D is a simulation-level
  // parameter; keep callers from having to thread it twice.
  sc.recovery.smoothing_delay = config.smoothing_delay;
  return sc;
}

}  // namespace

std::string SimConfig::validate(const Stream& stream) const {
  std::ostringstream msg;
  if (server_buffer < 1) {
    msg << "server_buffer must be >= 1, got " << server_buffer;
  } else if (client_buffer < 1) {
    msg << "client_buffer must be >= 1, got " << client_buffer;
  } else if (rate < 1) {
    msg << "rate must be >= 1 byte/step, got " << rate;
  } else if (smoothing_delay < 0) {
    msg << "smoothing_delay must be >= 0, got " << smoothing_delay;
  } else if (link_delay < 0) {
    msg << "link_delay must be >= 0, got " << link_delay;
  } else if (server_buffer < stream.max_slice_size()) {
    msg << "server_buffer (" << server_buffer
        << " bytes) is smaller than the stream's largest slice ("
        << stream.max_slice_size()
        << " bytes); a slice that cannot fit the buffer can never be "
           "scheduled — grow the buffer or cut finer slices";
  } else if (max_stall < 0) {
    msg << "max_stall must be >= 0, got " << max_stall;
  } else if (recovery.max_retries < 0) {
    msg << "recovery.max_retries must be >= 0, got " << recovery.max_retries;
  } else if (recovery.backoff_base < 1) {
    msg << "recovery.backoff_base must be >= 1 slot, got "
        << recovery.backoff_base;
  } else if (recovery.backoff_base > 0 && recovery.max_retries > 62) {
    msg << "recovery.max_retries (" << recovery.max_retries
        << ") would overflow the exponential backoff; keep it <= 62";
  }
  return std::move(msg).str();
}

SmoothingSimulator::SmoothingSimulator(const Stream& stream, SimConfig config,
                                       std::unique_ptr<DropPolicy> policy,
                                       std::unique_ptr<Link> link)
    : stream_(&validated(stream, config)),
      config_(config),
      server_(server_config(config), std::move(policy)),
      link_(link ? std::move(link)
                 : std::make_unique<FixedDelayLink>(config.link_delay)),
      client_(stream, config.client_buffer,
              config.link_delay + config.smoothing_delay, config.playout,
              config.smoothing_delay, config.underflow, config.max_stall) {}

SimReport SmoothingSimulator::run(ScheduleRecorder* rec) {
  RTS_EXPECTS(!ran_);
  ran_ = true;
  SimReport report;
  ArrivalCursor cursor(*stream_);
  faults::InvariantMonitor monitor(config_.server_buffer, config_.rate);
  server_.set_link_loss_sink(
      [this](const SliceRun& /*run*/, std::size_t run_index, Bytes bytes) {
        client_.add_link_loss(run_index, bytes);
      });
  const Time horizon = stream_->horizon();
  const Time playout_offset = config_.link_delay + config_.smoothing_delay;
  const Time last_playout = horizon - 1 + playout_offset;
  // Hard ceiling against accounting bugs keeping the loop alive: everything
  // must drain within the horizon plus transmit time plus pipeline depth.
  // Faults extend the pipeline by bounded amounts — client rebuffering
  // (counted as it happens) and the loss-feedback round trip — so the
  // ceiling moves with them instead of aborting a legitimately slow run.
  const Time limit = horizon + playout_offset +
                     stream_->total_bytes() / config_.rate + 16 +
                     8 * (link_->min_delay() + 1) + 256;
  Time t = 0;
  for (; t <= last_playout || !server_.idle() || !link_->idle() ||
         client_.occupancy() > 0;  // timer-mode playout can trail the offset
       ++t) {
    RTS_ASSERT(t <= limit + client_.stall_steps());
    if (rec != nullptr) rec->begin_step(t);
    const auto nacks = link_->collect_nacks(t);
    auto pieces = server_.step(t, cursor.step(t), nacks, report, rec);
    link_->submit(t, std::move(pieces));
    const auto delivered = link_->deliver(t);
    client_.deliver(t, delivered, report, rec);
    client_.play(t, report, rec);
    monitor.check(t, server_, client_);
    if (rec != nullptr) rec->step().client_occupancy = client_.occupancy();
  }
  report.steps = t;
  client_.finalize(report);
  server_.account_residual(report);
  monitor.finalize(report);
  RTS_ENSURES(report.conserves());
  return report;
}

SimReport simulate(const Stream& stream, const Plan& plan,
                   std::string_view policy_name, Time link_delay) {
  SmoothingSimulator simulator(stream, SimConfig::balanced(plan, link_delay),
                               make_policy(policy_name));
  return simulator.run();
}

SimReport simulate(const Stream& stream, const SimConfig& config,
                   std::string_view policy_name, std::unique_ptr<Link> link) {
  SmoothingSimulator simulator(stream, config, make_policy(policy_name),
                               std::move(link));
  return simulator.run();
}

}  // namespace rtsmooth::sim
