#include "sim/simulator.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "faults/invariant_monitor.h"
#include "obs/flight_recorder.h"
#include "obs/trace_writer.h"
#include "policies/policy_factory.h"
#include "util/assert.h"

namespace rtsmooth::sim {
namespace {

/// Throws with the validation message before any member with aborting
/// preconditions is constructed.
const Stream& validated(const Stream& stream, const SimConfig& config) {
  std::string problem = config.validate(stream);
  if (!problem.empty()) {
    throw std::invalid_argument("SimConfig: " + std::move(problem));
  }
  return stream;
}

Bytes piece_bytes(std::span<const SentPiece> pieces) {
  Bytes sum = 0;
  for (const SentPiece& piece : pieces) sum += piece.bytes;
  return sum;
}

/// Everything the client has discarded so far, matching the CSV step trace's
/// dropped_client semantics (late + overflow + partial slices at playout).
Bytes client_dropped_so_far(const Client& client) {
  return client.late_bytes_so_far() + client.overflow_bytes_so_far() +
         client.leftover_bytes_so_far();
}

/// Binds the run loop's lambdas to the ops interface run_event_driven()
/// expects (core/event_engine.h). Holds references: the lambdas capture the
/// loop state by reference and live for the whole run.
template <typename More, typename Quiescent, typename Collect, typename Absorb,
          typename Live>
struct EngineOps {
  More& more_fn;
  Quiescent& quiescent_fn;
  Collect& collect_fn;
  Absorb& absorb_fn;
  Live& live_fn;
  bool more(Time t) { return more_fn(t); }
  bool quiescent(Time t) { return quiescent_fn(t); }
  void collect_events(Time t, EventQueue& queue) { collect_fn(t, queue); }
  void absorb_span(Time t0, Time t1) { absorb_fn(t0, t1); }
  void live_step(Time t) { live_fn(t); }
};

ServerConfig server_config(const SimConfig& config) {
  ServerConfig sc{.buffer = config.server_buffer,
                  .rate = config.rate,
                  .recovery = config.recovery};
  // The deadline test lives at the server but D is a simulation-level
  // parameter; keep callers from having to thread it twice.
  sc.recovery.smoothing_delay = config.smoothing_delay;
  return sc;
}

}  // namespace

std::string SimConfig::validate(const Stream& stream) const {
  // Happy-path exit before any ostringstream is constructed: validate runs
  // once per simulation, and sweeps construct simulators by the thousand.
  if (server_buffer >= 1 && client_buffer >= 1 && rate >= 1 &&
      smoothing_delay >= 0 && link_delay >= 0 &&
      server_buffer >= stream.max_slice_size() && max_stall >= 0 &&
      recovery.max_retries >= 0 && recovery.backoff_base >= 1 &&
      recovery.max_retries <= 62) {
    return {};
  }
  std::ostringstream msg;
  if (server_buffer < 1) {
    msg << "server_buffer must be >= 1, got " << server_buffer;
  } else if (client_buffer < 1) {
    msg << "client_buffer must be >= 1, got " << client_buffer;
  } else if (rate < 1) {
    msg << "rate must be >= 1 byte/step, got " << rate;
  } else if (smoothing_delay < 0) {
    msg << "smoothing_delay must be >= 0, got " << smoothing_delay;
  } else if (link_delay < 0) {
    msg << "link_delay must be >= 0, got " << link_delay;
  } else if (server_buffer < stream.max_slice_size()) {
    msg << "server_buffer (" << server_buffer
        << " bytes) is smaller than the stream's largest slice ("
        << stream.max_slice_size()
        << " bytes); a slice that cannot fit the buffer can never be "
           "scheduled — grow the buffer or cut finer slices";
  } else if (max_stall < 0) {
    msg << "max_stall must be >= 0, got " << max_stall;
  } else if (recovery.max_retries < 0) {
    msg << "recovery.max_retries must be >= 0, got " << recovery.max_retries;
  } else if (recovery.backoff_base < 1) {
    msg << "recovery.backoff_base must be >= 1 slot, got "
        << recovery.backoff_base;
  } else if (recovery.backoff_base > 0 && recovery.max_retries > 62) {
    msg << "recovery.max_retries (" << recovery.max_retries
        << ") would overflow the exponential backoff; keep it <= 62";
  }
  return std::move(msg).str();
}

SmoothingSimulator::SmoothingSimulator(const Stream& stream, SimConfig config,
                                       std::unique_ptr<DropPolicy> policy,
                                       std::unique_ptr<Link> link)
    : stream_(&validated(stream, config)),
      config_(config),
      server_(server_config(config), std::move(policy)),
      link_(link ? std::move(link)
                 : std::make_unique<FixedDelayLink>(config.link_delay)),
      client_(stream, config.client_buffer,
              config.link_delay + config.smoothing_delay, config.playout,
              config.smoothing_delay, config.underflow, config.max_stall) {
  if (config_.telemetry.enabled()) {
    server_.set_telemetry(config_.telemetry);
    client_.set_telemetry(config_.telemetry);
    link_->set_telemetry(config_.telemetry);
  }
}

SimReport SmoothingSimulator::run(ScheduleRecorder* rec) {
  RTS_EXPECTS(!ran_);
  ran_ = true;
  SimReport report;
  ArrivalCursor cursor(*stream_);
  faults::InvariantMonitor monitor(config_.server_buffer, config_.rate,
                                   config_.telemetry);
  server_.set_link_loss_sink(
      [this](const SliceRun& /*run*/, std::size_t run_index, Bytes bytes) {
        client_.add_link_loss(run_index, bytes);
      });

  // Telemetry instruments, resolved once; all null when disabled, so the
  // per-step cost of the instrumentation below is a handful of predictable
  // branches.
  obs::Registry* reg = config_.telemetry.registry;
  obs::TraceWriter* tracer = config_.telemetry.tracer;
  obs::FlightRecorder* recorder = config_.telemetry.recorder;
  obs::Histogram* sojourn_hist = nullptr;
  obs::Histogram* burst_hist = nullptr;
  if (reg != nullptr) {
    // Lemma 3.2 in distribution form: on a lossless balanced run every
    // byte-weighted sample is <= ceil(B/R), so max() pins the bound.
    sojourn_hist = &reg->histogram("byte.sojourn_steps",
                                   obs::HistogramSpec::exponential(1, 24));
    burst_hist = &reg->histogram("drop.burst_length",
                                 obs::HistogramSpec::exponential(1, 16));
  }
  // The tracer's config event and the flight recorder's incident context
  // carry the same run parameters, so an incident report stays
  // self-contained (DESIGN.md Sect. 11).
  const auto fill_config = [this](obs::Json& event) {
    event["server_buffer"] = config_.server_buffer;
    event["client_buffer"] = config_.client_buffer;
    event["rate"] = config_.rate;
    event["smoothing_delay"] = config_.smoothing_delay;
    event["link_delay"] = config_.link_delay;
    event["runs"] = static_cast<std::int64_t>(stream_->run_count());
  };
  if (tracer != nullptr) {
    obs::Json event = obs::Json::object();
    event["type"] = "config";
    fill_config(event);
    tracer->write(event);
  }
  if (recorder != nullptr) {
    // annotate() rather than set_context(): a sweep cell tags its recorder
    // (severity, cell index) before the run, and those keys must survive.
    obs::Json context = obs::Json::object();
    fill_config(context);
    context["policy"] = server_.policy().name();
    for (std::size_t i = 0; i < context.keys().size(); ++i) {
      recorder->annotate(context.keys()[i], context.items()[i]);
    }
  }
  std::int64_t drop_burst = 0;  ///< consecutive steps with server drops

  const Time horizon = stream_->horizon();
  const Time playout_offset = config_.link_delay + config_.smoothing_delay;
  const Time last_playout = horizon - 1 + playout_offset;
  // Hard ceiling against accounting bugs keeping the loop alive: everything
  // must drain within the horizon plus transmit time plus pipeline depth.
  // Faults extend the pipeline by bounded amounts — client rebuffering
  // (counted as it happens) and the loss-feedback round trip — so the
  // ceiling moves with them instead of aborting a legitimately slow run.
  const Time limit = horizon + playout_offset +
                     stream_->total_bytes() / config_.rate + 16 +
                     8 * (link_->min_delay() + 1) + 256;
  // One piece vector cycles through server -> link -> client: step_into
  // fills it, submit moves it into the link's ring, deliver hands a
  // previously submitted vector back, and the loop re-adopts that storage
  // for the next step. After the pipeline fills (P steps), the steady-state
  // loop performs no heap allocation at all — the zero-allocation guard
  // test pins this (DESIGN.md Sect. 12).
  std::vector<SentPiece> pieces;
  Time t = 0;

  const auto more = [&](Time now) {
    return now <= last_playout || !server_.idle() || !link_->idle() ||
           client_.occupancy() > 0;  // timer-mode playout can trail the offset
  };

  const auto live_step = [&](Time now) {
    RTS_ASSERT(now <= limit + client_.stall_steps());
    if (rec != nullptr) rec->begin_step(now);
    // Pre-step snapshots for the per-step deltas the tracer and flight
    // recorder report. All zero (and unread) when nothing is observing, so
    // the un-instrumented loop does not pay for them.
    const bool observing = tracer != nullptr || recorder != nullptr;
    const Bytes drops_before = (observing || sojourn_hist != nullptr)
                                   ? report.dropped_server.bytes
                                   : 0;
    const Bytes played_before = observing ? report.played.bytes : 0;
    const Bytes client_dropped_before =
        observing ? client_dropped_so_far(client_) : 0;
    const Bytes retx_before = observing ? report.retransmitted_bytes : 0;
    const Time stalls_before = observing ? client_.stall_steps() : 0;

    const auto nacks = link_->collect_nacks(now);
    const ArrivalBatch batch = cursor.step(now);
    Bytes arrived = 0;
    if (observing) {
      for (const SliceRun& run : batch.runs) arrived += run.total_bytes();
    }
    pieces.clear();
    {
      const obs::Span step_span(config_.telemetry, "server.step");
      server_.step_into(now, batch, nacks, report, rec, pieces);
    }
    const Bytes sent = observing ? piece_bytes(pieces) : 0;
    if (sojourn_hist != nullptr) {
      for (const SentPiece& piece : pieces) {
        sojourn_hist->record(now - piece.run->arrival, piece.bytes);
      }
      const Bytes dropped_now = report.dropped_server.bytes - drops_before;
      if (dropped_now > 0) {
        ++drop_burst;
      } else if (drop_burst > 0) {
        burst_hist->record(drop_burst);
        drop_burst = 0;
      }
    }
    // An empty send is not submitted: moving an empty vector into the link
    // would surrender (and free) the storage being recycled.
    if (!pieces.empty()) link_->submit(now, std::move(pieces));
    auto delivered = link_->deliver(now);
    client_.deliver(now, delivered, report, rec);
    client_.play(now, report, rec);
    if (recorder != nullptr) {
      // Appended *before* monitor.check so a violation at step t captures a
      // window whose last record is step t itself.
      obs::StepRecord step;
      step.t = now;
      step.arrived = arrived;
      step.sent = sent;
      step.delivered = piece_bytes(delivered);
      step.played =
          static_cast<std::int64_t>(report.played.bytes - played_before);
      step.dropped_server =
          static_cast<std::int64_t>(report.dropped_server.bytes - drops_before);
      step.dropped_client = static_cast<std::int64_t>(
          client_dropped_so_far(client_) - client_dropped_before);
      step.retransmitted =
          static_cast<std::int64_t>(report.retransmitted_bytes - retx_before);
      step.server_occupancy = server_.buffer().occupancy();
      step.client_occupancy = client_.occupancy();
      step.link_idle = link_->idle();
      step.stalled = client_.stall_steps() > stalls_before;
      recorder->record(step);
    }
    monitor.check(now, server_, client_);
    if (rec != nullptr) rec->step().client_occupancy = client_.occupancy();
    if (tracer != nullptr) {
      // Violation events for this step (from monitor.check above) precede
      // the step event itself.
      obs::Json event = obs::Json::object();
      event["type"] = "step";
      event["t"] = now;
      event["arrived"] = arrived;
      event["sent"] = sent;
      event["delivered"] = piece_bytes(delivered);
      event["played"] = report.played.bytes - played_before;
      event["dropped_server"] = report.dropped_server.bytes - drops_before;
      event["dropped_client"] =
          client_dropped_so_far(client_) - client_dropped_before;
      event["retransmitted"] = report.retransmitted_bytes - retx_before;
      event["server_occupancy"] = server_.buffer().occupancy();
      event["client_occupancy"] = client_.occupancy();
      event["stalled"] = client_.stall_steps() > stalls_before;
      tracer->write(event);
    }
    // Close the recycling loop: the delivered batch rode in on the vector
    // submitted P steps ago; take its storage back for the next send.
    if (pieces.capacity() < delivered.capacity()) pieces = std::move(delivered);
  };

  if (config_.engine == EngineKind::SlotStepped) {
    for (; more(t); ++t) live_step(t);
  } else {
    // Event-driven loop (core/event_engine.h): same live_step body, same
    // exit condition, but quiescent spans between events are absorbed
    // wholesale instead of stepped through.
    const auto quiescent = [&](Time /*now*/) {
      return server_.idle() && client_.occupancy() == 0;
    };
    const auto collect_events = [&](Time now, EventQueue& queue) {
      const Time arrival = cursor.next_arrival();
      if (arrival != kNever) queue.push({arrival, EventKind::Arrival});
      // next_activity folds the fault decorators' state events (NACK
      // feedback due, throttle windows) into the drain bound.
      const Time drain = link_->next_activity(now);
      if (drain != kNever) queue.push({drain, EventKind::Drain});
      const Time deadline = client_.next_playout_event(now);
      if (deadline != kNever) queue.push({deadline, EventKind::Deadline});
      queue.push({last_playout + 1, EventKind::Horizon});
    };
    const auto absorb_span = [&](Time t0, Time t1) {
      RTS_ASSERT(t0 <= limit + client_.stall_steps());
      const std::int64_t skipped = t1 - t0;
      // A drop burst cannot straddle a quiescent span: the span's first
      // no-drop step ends it, exactly where the slot loop would flush.
      if (burst_hist != nullptr && drop_burst > 0) {
        burst_hist->record(drop_burst);
        drop_burst = 0;
      }
      // Autonomous link state (the Gilbert-Elliott chain) evolves with
      // time, not traffic: replay the per-step deliver() polls the slot
      // loop would have issued, so RNG consumption and burst-length records
      // stay draw-for-draw identical.
      link_->advance_to(t1 - 1);
      server_.record_idle_steps(skipped);
      client_.record_idle_steps(skipped);
      if (rec == nullptr && tracer == nullptr && recorder == nullptr) return;
      // Observers see every slot: back-fill the all-zero steps so step
      // traces, schedule recordings and incident windows stay
      // byte-identical to the slot loop's.
      const bool link_idle = link_->idle();  // constant across the span
      for (Time s = t0; s < t1; ++s) {
        if (rec != nullptr) {
          rec->begin_step(s);
          rec->step().server_occupancy = 0;
          rec->step().client_occupancy = 0;
        }
        if (recorder != nullptr) {
          obs::StepRecord step;
          step.t = s;
          step.link_idle = link_idle;
          recorder->record(step);
        }
        if (tracer != nullptr) {
          obs::Json event = obs::Json::object();
          event["type"] = "step";
          event["t"] = s;
          event["arrived"] = 0;
          event["sent"] = 0;
          event["delivered"] = 0;
          event["played"] = 0;
          event["dropped_server"] = 0;
          event["dropped_client"] = 0;
          event["retransmitted"] = 0;
          event["server_occupancy"] = 0;
          event["client_occupancy"] = 0;
          event["stalled"] = false;
          tracer->write(event);
        }
      }
    };
    t = run_event_driven(
        t, EngineOps{more, quiescent, collect_events, absorb_span, live_step});
  }
  if (burst_hist != nullptr && drop_burst > 0) {
    burst_hist->record(drop_burst);  // a burst running into the drain tail
  }
  report.steps = t;
  client_.finalize(report);
  server_.account_residual(report);
  monitor.finalize(report);
  if (reg != nullptr) {
    reg->counter("sim.steps").add(report.steps);
    reg->counter("sim.runs").add(1);
    reg->counter("sim.stall_steps").add(report.stall_steps);
  }
  if (tracer != nullptr) {
    obs::Json event = obs::Json::object();
    event["type"] = "run";
    event["steps"] = report.steps;
    event["offered_bytes"] = report.offered.bytes;
    event["played_bytes"] = report.played.bytes;
    event["dropped_server_bytes"] = report.dropped_server.bytes;
    event["dropped_client_overflow_bytes"] =
        report.dropped_client_overflow.bytes;
    event["dropped_client_late_bytes"] = report.dropped_client_late.bytes;
    event["lost_link_bytes"] = report.lost_link.bytes;
    event["residual_bytes"] = report.residual.bytes;
    event["retransmitted_bytes"] = report.retransmitted_bytes;
    event["stall_steps"] = report.stall_steps;
    event["invariant_violations"] = report.invariants.total();
    tracer->write(event);
  }
  RTS_ENSURES(report.conserves());
  return report;
}

SimReport simulate(const Stream& stream, const Plan& plan,
                   std::string_view policy_name, Time link_delay,
                   obs::Telemetry telemetry, EngineKind engine) {
  SimConfig config = SimConfig::balanced(plan, link_delay);
  config.telemetry = telemetry;
  config.engine = engine;
  SmoothingSimulator simulator(stream, config, make_policy(policy_name));
  return simulator.run();
}

SimReport simulate(const Stream& stream, const SimConfig& config,
                   std::string_view policy_name, std::unique_ptr<Link> link) {
  SmoothingSimulator simulator(stream, config, make_policy(policy_name),
                               std::move(link));
  return simulator.run();
}

}  // namespace rtsmooth::sim
