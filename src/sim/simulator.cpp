#include "sim/simulator.h"

#include <algorithm>

#include "policies/policy_factory.h"
#include "util/assert.h"

namespace rtsmooth::sim {

SmoothingSimulator::SmoothingSimulator(const Stream& stream, SimConfig config,
                                       std::unique_ptr<DropPolicy> policy,
                                       std::unique_ptr<Link> link)
    : stream_(&stream),
      config_(config),
      server_(ServerConfig{.buffer = config.server_buffer, .rate = config.rate},
              std::move(policy)),
      link_(link ? std::move(link)
                 : std::make_unique<FixedDelayLink>(config.link_delay)),
      client_(stream, config.client_buffer,
              config.link_delay + config.smoothing_delay, config.playout,
              config.smoothing_delay) {
  RTS_EXPECTS(config.server_buffer >= stream.max_slice_size());
  RTS_EXPECTS(config.client_buffer >= 1);
  RTS_EXPECTS(config.rate >= 1);
  RTS_EXPECTS(config.smoothing_delay >= 0);
  RTS_EXPECTS(config.link_delay >= 0);
}

SimReport SmoothingSimulator::run(ScheduleRecorder* rec) {
  RTS_EXPECTS(!ran_);
  ran_ = true;
  SimReport report;
  ArrivalCursor cursor(*stream_);
  const Time horizon = stream_->horizon();
  const Time playout_offset = config_.link_delay + config_.smoothing_delay;
  const Time last_playout = horizon - 1 + playout_offset;
  // Hard ceiling against accounting bugs keeping the loop alive: everything
  // must drain within the horizon plus transmit time plus pipeline depth.
  const Time limit = horizon + playout_offset +
                     stream_->total_bytes() / config_.rate + 16;
  Time t = 0;
  for (; t <= last_playout || !server_.buffer().empty() || !link_->idle() ||
         client_.occupancy() > 0;  // timer-mode playout can trail the offset
       ++t) {
    RTS_ASSERT(t <= limit);
    if (rec != nullptr) rec->begin_step(t);
    auto pieces = server_.step(t, cursor.step(t), report, rec);
    link_->submit(t, std::move(pieces));
    const auto delivered = link_->deliver(t);
    client_.deliver(t, delivered, report, rec);
    client_.play(t, report, rec);
    if (rec != nullptr) rec->step().client_occupancy = client_.occupancy();
  }
  report.steps = t;
  client_.finalize(report);
  server_.account_residual(report);
  RTS_ENSURES(report.conserves());
  return report;
}

SimReport simulate(const Stream& stream, const Plan& plan,
                   std::string_view policy_name, Time link_delay) {
  SmoothingSimulator simulator(stream, SimConfig::balanced(plan, link_delay),
                               make_policy(policy_name));
  return simulator.run();
}

}  // namespace rtsmooth::sim
