#include "sim/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

namespace rtsmooth::sim {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

/// Sanity ceiling: more workers than this only adds contention on the kinds
/// of batches the benches run.
constexpr unsigned kMaxThreads = 256;

unsigned env_threads() {
  const char* env = std::getenv("RTSMOOTH_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return 0;  // not a number: ignore
  return static_cast<unsigned>(std::min<unsigned long>(value, kMaxThreads));
}

}  // namespace

double RunStats::speedup() const {
  return wall_us > 0 ? static_cast<double>(total_task_us) /
                           static_cast<double>(wall_us)
                     : 1.0;
}

std::string RunStats::summary() const {
  std::ostringstream os;
  os << tasks << " task" << (tasks == 1 ? "" : "s") << " on " << threads
     << " thread" << (threads == 1 ? "" : "s") << ": " << total_task_us / 1000
     << "ms total, max task " << max_task_us / 1000 << "ms, wall "
     << wall_us / 1000 << "ms";
  if (threads > 1) {
    os << " (" << static_cast<double>(static_cast<std::int64_t>(
                      speedup() * 10 + 0.5)) /
                      10
       << "x)";
  }
  return std::move(os).str();
}

RunStats& RunStats::operator+=(const RunStats& o) {
  tasks += o.tasks;
  threads = std::max(threads, o.threads);
  total_task_us += o.total_task_us;
  max_task_us = std::max(max_task_us, o.max_task_us);
  queue_us += o.queue_us;
  wall_us += o.wall_us;
  return *this;
}

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return std::min(requested, kMaxThreads);
  if (const unsigned env = env_threads(); env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? std::min(hw, kMaxThreads) : 1;
}

ParallelRunner::ParallelRunner(unsigned threads)
    : threads_(resolve_threads(threads)) {}

RunStats ParallelRunner::run(std::vector<std::function<void()>> tasks,
                             const Progress& progress) {
  RunStats stats;
  stats.tasks = tasks.size();
  const auto width = static_cast<unsigned>(std::min<std::size_t>(
      threads_, std::max<std::size_t>(tasks.size(), 1)));
  stats.threads = width;
  const auto batch_start = Clock::now();

  if (width <= 1) {
    // In-place serial path: no pool, no atomics — `threads=1` is the
    // reference execution the parallel path must match byte for byte.
    std::size_t done = 0;
    for (auto& task : tasks) {
      const auto start = Clock::now();
      stats.queue_us += us_between(batch_start, start);
      task();
      const std::int64_t us = us_between(start, Clock::now());
      stats.total_task_us += us;
      stats.max_task_us = std::max(stats.max_task_us, us);
      if (progress) progress(++done, tasks.size());
    }
    stats.wall_us = us_between(batch_start, Clock::now());
    return stats;
  }

  std::atomic<std::size_t> next{0};
  std::size_t done = 0;  // guarded by merge_mutex
  std::vector<std::exception_ptr> errors(tasks.size());
  std::mutex merge_mutex;
  auto worker = [&] {
    std::int64_t local_total = 0;
    std::int64_t local_max = 0;
    std::int64_t local_queue = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) break;
      const auto start = Clock::now();
      local_queue += us_between(batch_start, start);
      try {
        tasks[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
      const std::int64_t us = us_between(start, Clock::now());
      local_total += us;
      local_max = std::max(local_max, us);
      if (progress) {
        const std::lock_guard<std::mutex> lock(merge_mutex);
        progress(++done, tasks.size());
      }
    }
    const std::lock_guard<std::mutex> lock(merge_mutex);
    stats.total_task_us += local_total;
    stats.max_task_us = std::max(stats.max_task_us, local_max);
    stats.queue_us += local_queue;
  };

  std::vector<std::thread> pool;
  pool.reserve(width);
  for (unsigned t = 0; t < width; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  stats.wall_us = us_between(batch_start, Clock::now());

  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return stats;
}

}  // namespace rtsmooth::sim
