// Parameter sweeps matching the axes of the paper's figures: weighted loss
// as a function of buffer size (in multiples of the largest frame,
// Figs. 2/3/5/6) and of link rate (relative to the average stream rate,
// Fig. 4). `fault_sweep` adds the robustness axis the paper leaves open
// (Sect. 6): weighted loss as a function of channel-fault severity, under
// both client degradation modes.

#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/link.h"
#include "core/planner.h"
#include "sim/experiment.h"
#include "sim/simulator.h"

namespace rtsmooth::sim {

struct SweepPoint {
  double x = 0.0;  ///< buffer multiple of max frame, or rate fraction of avg
  Plan plan;       ///< the balanced B = D*R configuration actually run
  std::vector<PolicyOutcome> policies;
  OptimalPoint optimal;  ///< meaningful only when requested
  bool has_optimal = false;
};

/// For each multiple m, runs with B = m * stream.max_frame_bytes() and the
/// given fixed rate (D derived from B = D*R). Multiples below 1 are invalid
/// for whole-frame slicing (a frame must fit the buffer).
std::vector<SweepPoint> buffer_sweep(const Stream& stream,
                                     std::span<const double> buffer_multiples,
                                     Bytes rate,
                                     std::span<const std::string> policies,
                                     bool with_optimal);

/// For each fraction f, runs with R = round(f * stream.average_rate()) and
/// a buffer of `buffer_multiple` times the largest frame.
std::vector<SweepPoint> rate_sweep(const Stream& stream,
                                   std::span<const double> rate_fractions,
                                   double buffer_multiple,
                                   std::span<const std::string> policies,
                                   bool with_optimal);

/// Rounds a relative link rate to at least 1 byte/step.
Bytes relative_rate(const Stream& stream, double fraction);

/// One fault-severity point: the identical stream/plan/policy run under both
/// client degradation modes on a link built at that severity.
struct FaultPoint {
  double severity = 0.0;
  SimReport skip;   ///< UnderflowPolicy::Skip (concealment)
  SimReport stall;  ///< UnderflowPolicy::Stall (rebuffer-and-resync)
};

/// Builds the faulty link for one sweep point. `severity` is whatever the
/// caller sweeps (erasure probability, outage rate, throttle depth);
/// severity 0 must mean "no faults".
using FaultLinkFactory =
    std::function<std::unique_ptr<Link>(double severity, Time link_delay)>;

/// For each severity, simulates `policy` on the balanced plan over
/// make_link(severity), once per underflow policy, with the given recovery
/// settings. All runs are deterministic for a deterministic factory.
std::vector<FaultPoint> fault_sweep(const Stream& stream, const Plan& plan,
                                    std::string_view policy,
                                    std::span<const double> severities,
                                    const FaultLinkFactory& make_link,
                                    const RecoveryConfig& recovery,
                                    Time max_stall = 16, Time link_delay = 1);

}  // namespace rtsmooth::sim
