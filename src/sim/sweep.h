// Parameter sweeps matching the axes of the paper's figures: weighted loss
// as a function of buffer size (in multiples of the largest frame,
// Figs. 2/3/5/6), of link rate (relative to the average stream rate,
// Fig. 4), and of channel-fault severity (the Sect. 6 robustness axis the
// paper leaves open, under both client degradation modes).
//
// All three axes share one entry point: describe the grid in a SweepSpec
// and call sweep(). Every grid cell is an independent simulation — each
// task owns its seeded RNG and the Stream is read-only — so sweep() fans
// the cells out over a ParallelRunner (see sim/runner.h). Results are
// byte-identical to the serial path for any thread count; `threads = 1`
// runs in place with no pool.

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/link.h"
#include "core/planner.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "sim/simulator.h"

namespace rtsmooth::sim {

struct SweepPoint {
  double x = 0.0;  ///< buffer multiple of max frame, or rate fraction of avg
  Plan plan;       ///< the balanced B = D*R configuration actually run
  std::vector<PolicyOutcome> policies;
  OptimalPoint optimal;  ///< meaningful only when requested
  bool has_optimal = false;

  bool operator==(const SweepPoint&) const = default;
};

/// One fault-severity point: the identical stream/plan/policy run under both
/// client degradation modes on a link built at that severity.
struct FaultPoint {
  double severity = 0.0;
  SimReport skip;   ///< UnderflowPolicy::Skip (concealment)
  SimReport stall;  ///< UnderflowPolicy::Stall (rebuffer-and-resync)

  bool operator==(const FaultPoint&) const = default;
};

/// Builds the faulty link for one sweep point. `severity` is whatever the
/// caller sweeps (erasure probability, outage rate, throttle depth);
/// severity 0 must mean "no faults". sweep() may invoke the factory from
/// several threads at once, so it must be safe to call concurrently —
/// stateless lambdas that construct a fresh seeded link qualify.
using FaultLinkFactory =
    std::function<std::unique_ptr<Link>(double severity, Time link_delay)>;

/// Which parameter `SweepSpec::values` ranges over.
enum class SweepAxis {
  BufferMultiple,  ///< B = value * max_frame_bytes, fixed rate (Figs. 2/3/6)
  RateFraction,    ///< R = value * average_rate, fixed buffer (Fig. 4)
  FaultSeverity,   ///< link built by link_factory(value) (fig_robustness)
};

/// One declarative description of a sweep — the grid, the fixed parameters,
/// and the execution width — consumed by sweep().
struct SweepSpec {
  SweepAxis axis = SweepAxis::BufferMultiple;
  /// The swept parameter, one result entry per value, in this order.
  std::vector<double> values;
  /// Drop policies run at every point (see policies/policy_factory.h). The
  /// FaultSeverity axis runs only the first entry (a fault point compares
  /// degradation modes, not policies).
  std::vector<std::string> policies = {"tail-drop", "greedy"};
  /// Also compute the off-line optimal comparator at each point
  /// (BufferMultiple / RateFraction axes only).
  bool with_optimal = false;

  // ---- fixed complements of the swept axis ----
  /// Link rate for the BufferMultiple and FaultSeverity axes; 0 derives the
  /// stream's average rate. Ignored by RateFraction (the axis sets R).
  Bytes rate = 0;
  /// Buffer size in multiples of the largest frame, for the RateFraction
  /// and FaultSeverity axes. Ignored by BufferMultiple (the axis sets B).
  double buffer_multiple = 4.0;
  /// FaultSeverity only: run this exact plan instead of deriving one from
  /// buffer_multiple and rate.
  std::optional<Plan> plan;

  // ---- fault-axis channel model ----
  FaultLinkFactory link_factory;  ///< required for FaultSeverity
  RecoveryConfig recovery{};      ///< NACK/retransmit settings per run
  Time max_stall = 16;            ///< rebuffer budget (Stall mode)

  /// Constant link propagation delay P for every run, all axes.
  Time link_delay = 1;

  /// Simulation main loop for every cell (core/event_engine.h). Grid
  /// results, merged registries and incident lists are byte-identical for
  /// either engine; EventDriven is faster on sparse or long-horizon
  /// streams.
  EngineKind engine = EngineKind::SlotStepped;

  /// Pool width: 0 defers to RTSMOOTH_THREADS / hardware_concurrency, 1 is
  /// the in-place serial path. Output is identical either way.
  unsigned threads = 0;

  // ---- observability ----
  /// Merged telemetry for the whole grid. Each cell simulates against its
  /// own private registry (cells may run on any thread); after the batch
  /// the cell registries fold into *registry in submission order, so the
  /// snapshot is byte-identical for any thread count. Every cell also times
  /// itself under a "sweep.cell" Span. Null: no telemetry, no cost.
  obs::Registry* registry = nullptr;
  /// Merged incident sink for the whole grid, same isolation pattern as
  /// `registry`: each cell flies its own FlightRecorder built from
  /// recorder->config() and annotated with the cell's coordinates
  /// (severity / x value, policy, cell index), and incidents fold into
  /// *recorder in submission order — the merged incident list is
  /// byte-identical for any thread count. Null: no recording, no cost.
  obs::FlightRecorder* recorder = nullptr;
  /// Per-cell completion callback, forwarded to the ParallelRunner.
  ParallelRunner::Progress progress;
};

/// Results of one sweep(): `points` for the BufferMultiple / RateFraction
/// axes, `faults` for the FaultSeverity axis (the other vector stays
/// empty), plus batch timing.
struct SweepResult {
  std::vector<SweepPoint> points;
  std::vector<FaultPoint> faults;
  RunStats stats;
};

/// Runs the sweep described by `spec` on `stream`. Throws
/// std::invalid_argument on an unrunnable spec (nothing to run per point —
/// no policies and no optimal, missing link_factory on the fault axis, a
/// buffer smaller than the stream's largest slice).
SweepResult sweep(const Stream& stream, const SweepSpec& spec);

/// Rounds a relative link rate to at least 1 byte/step.
Bytes relative_rate(const Stream& stream, double fraction);

}  // namespace rtsmooth::sim
