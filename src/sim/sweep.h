// Parameter sweeps matching the axes of the paper's figures: weighted loss
// as a function of buffer size (in multiples of the largest frame,
// Figs. 2/3/5/6) and of link rate (relative to the average stream rate,
// Fig. 4).

#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/planner.h"
#include "sim/experiment.h"

namespace rtsmooth::sim {

struct SweepPoint {
  double x = 0.0;  ///< buffer multiple of max frame, or rate fraction of avg
  Plan plan;       ///< the balanced B = D*R configuration actually run
  std::vector<PolicyOutcome> policies;
  OptimalPoint optimal;  ///< meaningful only when requested
  bool has_optimal = false;
};

/// For each multiple m, runs with B = m * stream.max_frame_bytes() and the
/// given fixed rate (D derived from B = D*R). Multiples below 1 are invalid
/// for whole-frame slicing (a frame must fit the buffer).
std::vector<SweepPoint> buffer_sweep(const Stream& stream,
                                     std::span<const double> buffer_multiples,
                                     Bytes rate,
                                     std::span<const std::string> policies,
                                     bool with_optimal);

/// For each fraction f, runs with R = round(f * stream.average_rate()) and
/// a buffer of `buffer_multiple` times the largest frame.
std::vector<SweepPoint> rate_sweep(const Stream& stream,
                                   std::span<const double> rate_fractions,
                                   double buffer_multiple,
                                   std::span<const std::string> policies,
                                   bool with_optimal);

/// Rounds a relative link rate to at least 1 byte/step.
Bytes relative_rate(const Stream& stream, double fraction);

}  // namespace rtsmooth::sim
