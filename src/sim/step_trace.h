// Step-trace export: dumps a recorded schedule's per-step sets A(t), S(t),
// R(t), P(t), D(t) and buffer occupancies as CSV, so a schedule can be
// plotted or diffed outside the harness (the per-step sets are exactly the
// objects the paper's proofs manipulate).

#pragma once

#include <string>

#include "core/schedule.h"

namespace rtsmooth::sim {

/// Writes one CSV row per recorded step. The recorder must have been
/// created at Level::RunsAndSteps; throws std::invalid_argument otherwise —
/// silently writing an empty trace would be worse. Columns:
///   t, arrived, sent, delivered, played, dropped_server, dropped_client,
///   server_occupancy, client_occupancy
void write_step_trace(const std::string& path, const ScheduleRecorder& rec);

}  // namespace rtsmooth::sim
