// Parallel batch execution for independent simulation tasks.
//
// Every figure/table bench replays the same read-only Stream under dozens of
// independent (plan, policy, link, severity) combinations; each combination
// is a pure function of its inputs (seeded RNGs live inside the task, the
// Stream is never mutated). ParallelRunner exploits that: a fixed pool of
// std::thread workers pulls tasks off a shared index — no work stealing, no
// task dependencies — and results land in submission order, so a parallel
// batch is byte-identical to running the same tasks in a serial loop.
//
// Width control, in priority order:
//   1. an explicit `threads` argument (SweepSpec::threads, --threads N),
//   2. the RTSMOOTH_THREADS environment variable,
//   3. std::thread::hardware_concurrency().
// Width 1 executes in place on the calling thread (no pool, no atomics), so
// `threads=1` *is* the serial path rather than merely approximating it.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rtsmooth::sim {

/// Per-batch timing observability: the repo's first perf hook. Benches print
/// `summary()`; future BENCH_*.json trajectories can record the fields.
struct RunStats {
  std::size_t tasks = 0;        ///< tasks executed in the batch
  unsigned threads = 1;         ///< pool width actually used
  std::int64_t total_task_us = 0;  ///< sum of per-task wall time (~cpu time)
  std::int64_t max_task_us = 0;    ///< slowest single task
  std::int64_t queue_us = 0;  ///< sum of per-task wait from batch start to
                              ///< task start — queueing delay behind the
                              ///< pool; grows with tasks/threads
  std::int64_t wall_us = 0;        ///< end-to-end batch time

  /// total_task_us / wall_us — average task concurrency. Equals the
  /// parallel speedup when the pool is not oversubscribed (threads <=
  /// cores); on an oversubscribed host tasks time-slice, inflating their
  /// individual wall spans, and this reads as concurrency, not speedup.
  /// 1.0 when serial.
  double speedup() const;
  /// One line for bench output, e.g.
  /// "78 tasks on 8 threads: 4123ms total, max task 102ms, wall 612ms (6.7x)".
  std::string summary() const;

  /// Merges another batch into this one (benches that run several batches
  /// report the aggregate). Wall time adds: batches ran back to back.
  RunStats& operator+=(const RunStats& o);
};

/// Resolves a requested width against RTSMOOTH_THREADS and the hardware:
/// `requested` > 0 wins, else the environment variable, else
/// hardware_concurrency(); always returns at least 1.
unsigned resolve_threads(unsigned requested);

/// Executes a batch of independent tasks on a fixed thread pool.
///
/// Contract for tasks: each task owns all state it mutates (write to your
/// own pre-allocated result slot; seed your own RNG). Tasks must not touch
/// shared mutable state — the Stream and any captured configuration are
/// read-only. A task that throws does not abort the batch: the remaining
/// tasks still run, then the exception thrown by the lowest-indexed failing
/// task is rethrown (deterministic, like the serial loop).
class ParallelRunner {
 public:
  /// `threads == 0` defers to RTSMOOTH_THREADS / the hardware; see
  /// resolve_threads().
  explicit ParallelRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Called after each task completes with (done, total). Invocations are
  /// serialized but their order follows completion, not submission; keep
  /// the callback cheap — it runs under the pool's merge lock.
  using Progress = std::function<void(std::size_t done, std::size_t total)>;

  /// Runs every task; task i's side effects are its own. Returns timing
  /// stats for the batch. `progress`, when given, is notified once per
  /// completed task.
  RunStats run(std::vector<std::function<void()>> tasks,
               const Progress& progress = nullptr);

  /// Convenience: `results[i] = fn(i)` for i in [0, count), results in index
  /// order. R must be default-constructible and movable. Accumulates timing
  /// into *stats when given.
  template <typename R, typename Fn>
  std::vector<R> map(std::size_t count, Fn&& fn, RunStats* stats = nullptr) {
    std::vector<R> results(count);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      tasks.push_back([&results, &fn, i] { results[i] = fn(i); });
    }
    const RunStats batch = run(std::move(tasks));
    if (stats != nullptr) *stats += batch;
    return results;
  }

 private:
  unsigned threads_;
};

}  // namespace rtsmooth::sim
