#include "sim/experiment.h"

#include <algorithm>

#include "offline/pareto_dp.h"
#include "offline/unit_optimal.h"
#include "sim/runner.h"
#include "sim/simulator.h"

namespace rtsmooth::sim {

std::vector<PolicyOutcome> run_policies(const Stream& stream, const Plan& plan,
                                        std::span<const std::string> policies,
                                        Time link_delay, unsigned threads) {
  std::vector<PolicyOutcome> out(policies.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(policies.size());
  for (std::size_t i = 0; i < policies.size(); ++i) {
    out[i].policy = policies[i];
    tasks.push_back([&stream, &plan, &out, link_delay, i] {
      out[i].report = simulate(stream, plan, out[i].policy, link_delay);
    });
  }
  ParallelRunner(threads).run(std::move(tasks));
  return out;
}

OptimalPoint offline_optimal(const Stream& stream, Bytes buffer, Bytes rate) {
  OptimalPoint point;
  const Weight total = stream.total_weight();
  if (total <= 0.0) return point;
  Weight benefit = 0.0;
  if (stream.unit_slices()) {
    benefit = offline::unit_optimal(stream, buffer, rate).benefit;
  } else if (stream.total_slices() <= 256) {
    const auto dp = offline::pareto_dp_optimal(stream, buffer, rate);
    benefit = dp.benefit;
    point.exact = dp.exact;
  } else {
    // Long variable-size streams: the exact frontier explodes, so take the
    // midpoint of the provable quantized bracket (see pareto_dp.h) at a
    // ~1/2048 resolution of the buffer.
    const Bytes quantum = std::max<Bytes>(1, buffer / 2048);
    const auto bracket =
        offline::quantized_optimal_bracket(stream, buffer, rate, quantum);
    benefit = (bracket.lower + bracket.upper) / 2.0;
    point.exact = bracket.upper - bracket.lower < 1e-9;
  }
  point.benefit_fraction = benefit / total;
  point.weighted_loss = 1.0 - point.benefit_fraction;
  return point;
}

}  // namespace rtsmooth::sim
