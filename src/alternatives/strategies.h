// The introduction's alternatives to smoothing (paper Sect. 1): the
// "fundamental conflict between variable bandwidth requirement and constant
// bandwidth supply" can be resolved by
//   * degradation — truncating the stream to the link rate [7],
//   * peak-rate reservation — lossless but wasteful [13],
//   * statistical multiplexing — sharing a link across streams [12],
//   * renegotiation — piecewise-CBR reallocation (RCBR) [9],
//   * smoothing — this library.
// This module implements each as a comparable strategy so the
// tab_alternatives bench can put the paper's choice in context. All
// strategies are scored with the same clip, the same value model and the
// same outcome fields.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/planner.h"
#include "core/slice.h"
#include "core/types.h"

namespace rtsmooth::alternatives {

/// Common scorecard. `reserved_peak` is what the network must be able to
/// carry at once — the provisioning cost; `reserved_average` is the average
/// committed capacity (differs from peak only for renegotiated service).
struct StrategyOutcome {
  std::string name;
  double reserved_peak = 0.0;     ///< bytes/slot committed at the maximum
  double reserved_average = 0.0;  ///< mean committed bytes/slot
  double delivered_fraction = 0.0;      ///< bytes through, on time
  double benefit_fraction = 0.0;        ///< weight through, on time
  Time added_delay = 0;                 ///< smoothing/startup delay, slots
  Bytes buffer_bytes = 0;               ///< buffer per side
  std::int64_t renegotiations = 0;      ///< rate changes signalled
};

/// Reserve the peak frame rate: lossless, delay-free, expensive.
StrategyOutcome evaluate_peak_provision(const Stream& stream);

/// Truncate to a CBR link with no smoothing buffer beyond one slot's worth:
/// whatever exceeds the rate in a slot is dropped (degradation of service).
StrategyOutcome evaluate_truncation(const Stream& stream, Bytes rate);

/// The paper's smoothing at B = D*R with the given drop policy.
StrategyOutcome evaluate_smoothing(const Stream& stream, Bytes rate,
                                   Time delay, std::string_view policy);

struct RenegotiationConfig {
  Time window = 100;       ///< slots between renegotiations
  double headroom = 1.1;   ///< requested rate = recent mean * headroom
  Bytes buffer = 1;        ///< server buffer absorbing within-window error
  Bytes floor_rate = 1;    ///< networks do not allocate below this
};

/// Renegotiated CBR (RCBR-style): every `window` slots the sender requests
/// a new rate based on the previous window's mean. Scored server-side (the
/// client needs only a window-scale buffer).
StrategyOutcome evaluate_renegotiated_cbr(const Stream& stream,
                                          const RenegotiationConfig& config);

/// Merges per-channel streams into one aggregate arrival process (the
/// statistical-multiplexing substrate): runs keep their identity, arrivals
/// interleave.
Stream merge_streams(std::span<const Stream> streams);

/// Smallest link rate (bytes/slot) at which the smoothing strategy's
/// weighted loss is at most `loss_budget`, found by bisection in
/// [1, peak frame]. Used to compare per-stream vs multiplexed provisioning.
Bytes min_rate_for_loss(const Stream& stream, Time delay, double loss_budget,
                        std::string_view policy = "greedy");

}  // namespace rtsmooth::alternatives
